package looppart_test

import (
	"bytes"
	"context"
	"reflect"
	"strings"
	"testing"

	"looppart"
	"looppart/internal/paperex"
)

var serviceNest = `
doall (i, 1, 64)
  doall (j, 1, 64)
    A[i,j] = B[i,j] + B[i+1,j+3]
  enddoall
enddoall
`

func TestServicePlanHitIsBitIdentical(t *testing.T) {
	svc := looppart.NewService(looppart.ServiceOptions{})
	req := looppart.PlanRequest{Source: serviceNest, Procs: 16, Strategy: "rect"}

	first, err := svc.Plan(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if first.Status != "miss" {
		t.Errorf("first status = %q, want miss", first.Status)
	}
	second, err := svc.Plan(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if second.Status != "hit" {
		t.Errorf("second status = %q, want hit", second.Status)
	}
	if !bytes.Equal(first.Raw, second.Raw) {
		t.Errorf("hit bytes differ from miss bytes:\n%s\nvs\n%s", first.Raw, second.Raw)
	}
	st := svc.Stats()
	if st.Searches != 1 || st.CacheHits != 1 || st.Requests != 2 {
		t.Errorf("stats = %+v", st)
	}
}

func TestServiceCanonicalizationSharesEntries(t *testing.T) {
	svc := looppart.NewService(looppart.ServiceOptions{})
	renamed := strings.NewReplacer("i,", "row,", "[i", "[row", "j", "col").Replace(serviceNest)
	reordered := strings.Replace(serviceNest, "B[i,j] + B[i+1,j+3]", "B[i+1,j+3] + B[i,j]", 1)

	base, err := svc.Plan(context.Background(), looppart.PlanRequest{Source: serviceNest, Procs: 16})
	if err != nil {
		t.Fatal(err)
	}
	for name, src := range map[string]string{"renamed indices": renamed, "reordered refs": reordered} {
		resp, err := svc.Plan(context.Background(), looppart.PlanRequest{Source: src, Procs: 16})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if resp.Status != "hit" {
			t.Errorf("%s: status = %q, want hit (key %s vs %s)", name, resp.Status, resp.Key, base.Key)
		}
		if !bytes.Equal(resp.Raw, base.Raw) {
			t.Errorf("%s: bytes differ", name)
		}
	}
	if st := svc.Stats(); st.Searches != 1 {
		t.Errorf("searches = %d, want 1", st.Searches)
	}
}

// TestServiceRenderedMatchesLibrary pins the acceptance criterion: the
// served plan line is bit-identical to what the library (and therefore
// cmd/looppart) prints for the same nest/procs/strategy.
func TestServiceRenderedMatchesLibrary(t *testing.T) {
	svc := looppart.NewService(looppart.ServiceOptions{})
	for _, tc := range []struct {
		name, src, strategy string
		params              map[string]int64
		procs               int
	}{
		{"example2/auto", paperex.Example2, "auto", nil, 16},
		{"example3/rect", paperex.Example3, "rect", map[string]int64{"N": 64}, 16},
		{"example8/rect", paperex.Example8, "rect", map[string]int64{"N": 32}, 64},
		{"example8/skewed", paperex.Example8, "skewed", map[string]int64{"N": 32}, 16},
		{"example10/auto", paperex.Example10, "auto", map[string]int64{"N": 64}, 16},
	} {
		resp, err := svc.Plan(context.Background(), looppart.PlanRequest{
			Source: tc.src, Params: tc.params, Procs: tc.procs, Strategy: tc.strategy,
		})
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		prog, err := looppart.Parse(tc.src, tc.params)
		if err != nil {
			t.Fatal(err)
		}
		strategy, _ := looppart.ParseStrategy(tc.strategy)
		plan, err := prog.Partition(tc.procs, strategy)
		if err != nil {
			t.Fatal(err)
		}
		if resp.Result.Rendered != plan.String() {
			t.Errorf("%s: served %q != library %q", tc.name, resp.Result.Rendered, plan.String())
		}
		if want := looppart.CanonicalKey(prog, tc.procs, strategy); resp.Key != want {
			t.Errorf("%s: key %q != CanonicalKey %q", tc.name, resp.Key, want)
		}
	}
}

func TestServiceExplain(t *testing.T) {
	svc := looppart.NewService(looppart.ServiceOptions{})
	req := looppart.PlanRequest{Source: serviceNest, Procs: 16, Strategy: "rect"}
	resp, trace, err := svc.Explain(req)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(trace, "partition.rect.chosen") {
		t.Errorf("trace lacks the chosen-shape event:\n%s", trace)
	}
	// The explain run fills the cache with the same bytes the normal
	// path would serve.
	cached, err := svc.Plan(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if cached.Status != "hit" || !bytes.Equal(cached.Raw, resp.Raw) {
		t.Errorf("explain did not prime the cache identically (status %s)", cached.Status)
	}
}

func TestServiceErrorsNotCached(t *testing.T) {
	svc := looppart.NewService(looppart.ServiceOptions{})
	// The synchronizing matmul has no communication-free partition, so
	// comm-free fails.
	req := looppart.PlanRequest{
		Source: paperex.MatmulSync, Params: map[string]int64{"N": 16},
		Procs: 16, Strategy: "comm-free",
	}
	for i := 0; i < 2; i++ {
		if _, err := svc.Plan(context.Background(), req); err == nil {
			t.Fatalf("request %d: expected error", i)
		}
	}
	st := svc.Stats()
	if st.Errors != 2 || st.Searches != 2 {
		t.Errorf("stats = %+v (errors must not be cached)", st)
	}

	if _, err := svc.Plan(context.Background(), looppart.PlanRequest{Source: serviceNest, Procs: 0}); err == nil {
		t.Error("procs 0 accepted")
	}
	if _, err := svc.Plan(context.Background(), looppart.PlanRequest{Source: serviceNest, Procs: 4, Strategy: "nope"}); err == nil {
		t.Error("unknown strategy accepted")
	}
	if _, err := svc.Plan(context.Background(), looppart.PlanRequest{Source: "not a loop", Procs: 4}); err == nil {
		t.Error("parse error accepted")
	}
}

func TestParseStrategy(t *testing.T) {
	for _, s := range []looppart.Strategy{
		looppart.Auto, looppart.Rect, looppart.Skewed, looppart.CommFree,
		looppart.Rows, looppart.Columns, looppart.Blocks, looppart.AbrahamHudak,
	} {
		got, ok := looppart.ParseStrategy(s.String())
		if !ok || got != s {
			t.Errorf("ParseStrategy(%q) = %v, %v", s.String(), got, ok)
		}
	}
	if _, ok := looppart.ParseStrategy("unknown"); ok {
		t.Error("ParseStrategy accepted an unknown name")
	}
}

// TestServiceDecodedHitMatchesMiss pins the decoded-alongside-bytes cache
// contract: a hit's Result (served from the cache's decoded entry, no
// per-hit JSON parse) must equal the miss's Result and re-encode to the
// exact cached bytes — and each response must own its Result struct, so
// a caller reassigning fields cannot corrupt later hits.
func TestServiceDecodedHitMatchesMiss(t *testing.T) {
	svc := looppart.NewService(looppart.ServiceOptions{})
	req := looppart.PlanRequest{Source: serviceNest, Procs: 16, Strategy: "rect"}

	miss, err := svc.Plan(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	hit, err := svc.Plan(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if hit.Status != "hit" {
		t.Fatalf("second status = %q, want hit", hit.Status)
	}
	if !reflect.DeepEqual(miss.Result, hit.Result) {
		t.Errorf("hit result %+v != miss result %+v", hit.Result, miss.Result)
	}
	if hit.Result == miss.Result {
		t.Error("hit and miss share one Result struct; responses must own theirs")
	}

	// Clobber the hit's Result struct; the next hit must be pristine.
	hit.Result.Rendered = "clobbered"
	hit.Result.Procs = -1
	again, err := svc.Plan(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(miss.Result, again.Result) {
		t.Errorf("a caller's write leaked into the cache: %+v", again.Result)
	}
	if !bytes.Equal(miss.Raw, again.Raw) {
		t.Error("raw bytes drifted across hits")
	}
}
