package looppart

import (
	"fmt"
	"strings"
	"testing"

	"looppart/internal/paperex"
	"looppart/internal/telemetry"
)

func TestParseAndReport(t *testing.T) {
	prog, err := Parse(paperex.Example10, map[string]int64{"N": 60})
	if err != nil {
		t.Fatal(err)
	}
	r := prog.Report()
	if len(r.Classes) != 4 {
		t.Fatalf("classes = %d", len(r.Classes))
	}
	if !r.HasClosed || r.RectCoeffs[0] != 3 || r.RectCoeffs[1] != 2 {
		t.Fatalf("coeffs = %v", r.RectCoeffs)
	}
	if len(r.CommFreeDirs) != 0 {
		t.Fatalf("Example 10 should have no comm-free dirs, got %v", r.CommFreeDirs)
	}
	s := r.String()
	for _, want := range []string{"uniformly intersecting classes: 4", "no communication-free partition"} {
		if !strings.Contains(s, want) {
			t.Errorf("report missing %q:\n%s", want, s)
		}
	}
}

func TestParseError(t *testing.T) {
	if _, err := Parse("garbage", nil); err == nil {
		t.Fatal("garbage parsed")
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	MustParse("garbage", nil)
}

func TestAutoPrefersCommFree(t *testing.T) {
	prog := MustParse(paperex.Example2, nil)
	plan, err := prog.Partition(100, Auto)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Strategy != CommFree || plan.Slab == nil {
		t.Fatalf("auto plan = %v", plan)
	}
	m, err := plan.Simulate(SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if m.SharedData != 0 || m.CoherenceMisses != 0 {
		t.Fatalf("comm-free plan shares data: %v", m)
	}
}

func TestAutoFallsBackToRect(t *testing.T) {
	prog := MustParse(paperex.Example10, map[string]int64{"N": 40})
	plan, err := prog.Partition(16, Auto)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Strategy != Rect || plan.Tile == nil {
		t.Fatalf("auto plan = %v", plan)
	}
}

func TestStrategyOrderingExample2(t *testing.T) {
	// The headline experiment through the public API: columns beat
	// blocks beat rows on simulated misses.
	prog := MustParse(paperex.Example2, nil)
	miss := map[Strategy]float64{}
	for _, s := range []Strategy{Rows, Columns, Blocks} {
		plan, err := prog.Partition(100, s)
		if err != nil {
			t.Fatal(err)
		}
		m, err := plan.Simulate(SimOptions{})
		if err != nil {
			t.Fatal(err)
		}
		miss[s] = m.MissesPerProc()
	}
	if !(miss[Columns] < miss[Blocks] && miss[Blocks] < miss[Rows]) {
		t.Fatalf("ordering wrong: %v", miss)
	}
	if miss[Columns] != 204 || miss[Blocks] != 240 {
		t.Fatalf("paper numbers: columns=%v blocks=%v", miss[Columns], miss[Blocks])
	}
}

func TestCommFreeFailsWhenNoneExists(t *testing.T) {
	prog := MustParse(paperex.Example10, map[string]int64{"N": 40})
	if _, err := prog.Partition(8, CommFree); err == nil {
		t.Fatal("comm-free should fail for Example 10")
	}
}

func TestSkewedStrategyExample3(t *testing.T) {
	prog := MustParse(paperex.Example3, map[string]int64{"N": 24})
	plan, err := prog.Partition(8, Skewed)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Tile == nil || plan.Tile.IsRect() {
		t.Fatalf("skewed plan = %v", plan)
	}
	rect, err := prog.Partition(8, Rect)
	if err != nil {
		t.Fatal(err)
	}
	ms, err := plan.Simulate(SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	mr, err := rect.Simulate(SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if ms.SharedData >= mr.SharedData {
		t.Fatalf("skewed sharing %d not below rect %d", ms.SharedData, mr.SharedData)
	}
}

func TestAbrahamHudakStrategy(t *testing.T) {
	src := `
doall (i, 1, 32)
  doall (j, 1, 32)
    B[i,j] = B[i-1,j] + B[i+1,j] + B[i,j-2] + B[i,j+2]
  enddoall
enddoall`
	prog := MustParse(src, nil)
	plan, err := prog.Partition(16, AbrahamHudak)
	if err != nil {
		t.Fatal(err)
	}
	ours, err := prog.Partition(16, Rect)
	if err != nil {
		t.Fatal(err)
	}
	if plan.PredictedFootprint != ours.PredictedFootprint {
		t.Fatalf("A–H %v vs ours %v", plan, ours)
	}
}

func TestExecuteMatchesSequentialThroughAPI(t *testing.T) {
	prog := MustParse(paperex.MatmulSync, map[string]int64{"N": 6})
	plan, err := prog.Partition(4, Blocks)
	if err != nil {
		t.Fatal(err)
	}
	st, err := plan.Execute()
	if err != nil {
		t.Fatal(err)
	}
	if st["C"] == nil {
		t.Fatal("store missing C")
	}
}

func TestSimulateMesh(t *testing.T) {
	prog := MustParse(paperex.Example8, map[string]int64{"N": 16})
	plan, err := prog.Partition(8, Rect)
	if err != nil {
		t.Fatal(err)
	}
	aligned, err := plan.SimulateMesh(MeshOptions{Aligned: true})
	if err != nil {
		t.Fatal(err)
	}
	hashed, err := plan.SimulateMesh(MeshOptions{Aligned: false})
	if err != nil {
		t.Fatal(err)
	}
	if aligned.LocalMisses <= hashed.LocalMisses {
		t.Fatalf("aligned local %d not above hashed %d", aligned.LocalMisses, hashed.LocalMisses)
	}
	if aligned.Cost >= hashed.Cost {
		t.Fatalf("aligned cost %v not below hashed %v", aligned.Cost, hashed.Cost)
	}
}

func TestSimulateMeshRequiresTilePlan(t *testing.T) {
	prog := MustParse(paperex.Example2, nil)
	plan, err := prog.Partition(100, CommFree)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := plan.SimulateMesh(MeshOptions{}); err == nil {
		t.Fatal("slab plan accepted for mesh simulation")
	}
}

func TestParseDatum(t *testing.T) {
	name, idx, err := ParseDatum("B[12,-7,0]")
	if err != nil {
		t.Fatal(err)
	}
	if name != "B" || len(idx) != 3 || idx[0] != 12 || idx[1] != -7 || idx[2] != 0 {
		t.Fatalf("parsed %s %v", name, idx)
	}
	for _, bad := range []string{"B", "B[", "B[]", "B[1,]", "B[x]", ""} {
		if _, _, err := ParseDatum(bad); err == nil {
			t.Errorf("accepted %q", bad)
		}
	}
}

func TestStrategyStrings(t *testing.T) {
	for s, want := range map[Strategy]string{
		Auto: "auto", Rect: "rect", Skewed: "skewed", CommFree: "comm-free",
		Rows: "rows", Columns: "columns", Blocks: "blocks", AbrahamHudak: "abraham-hudak",
		Strategy(99): "unknown",
	} {
		if s.String() != want {
			t.Errorf("%d.String() = %q", s, s.String())
		}
	}
}

func TestUnknownStrategy(t *testing.T) {
	prog := MustParse(paperex.Example2, nil)
	if _, err := prog.Partition(4, Strategy(99)); err == nil {
		t.Fatal("unknown strategy accepted")
	}
}

func TestPlanStringAndSpace(t *testing.T) {
	prog := MustParse(paperex.Example2, nil)
	plan, err := prog.Partition(100, Rect)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan.String(), "rect plan for 100 procs") {
		t.Fatalf("plan string %q", plan.String())
	}
	if prog.Space().Size() != 10000 {
		t.Fatalf("space = %d", prog.Space().Size())
	}
}

func TestLoadImbalance(t *testing.T) {
	prog := MustParse(paperex.Example2, nil)
	plan, err := prog.Partition(100, Columns)
	if err != nil {
		t.Fatal(err)
	}
	if got := plan.LoadImbalance(); got != 1.0 {
		t.Fatalf("column strips imbalance = %v", got)
	}
	// A skewed comm-free slab plan on Example 8 is imbalanced.
	prog8 := MustParse(paperex.Example8, map[string]int64{"N": 12})
	cf, err := prog8.Partition(8, CommFree)
	if err != nil {
		t.Skip("no comm-free plan at this size")
	}
	if got := cf.LoadImbalance(); got <= 1.0 {
		t.Fatalf("skewed slabs should be imbalanced, got %v", got)
	}
}

func TestSimulateBlockedSmallCache(t *testing.T) {
	src := `
doall (i, 1, 24)
  doall (j, 1, 24)
    A[i,j] = B[i-1,j] + B[i+1,j] + B[i,j-1] + B[i,j+1]
  enddoall
enddoall`
	prog := MustParse(src, nil)
	plan, err := prog.Partition(1, Rect)
	if err != nil {
		t.Fatal(err)
	}
	// Row-scan order = subtile of full rows; blocked = 6×6.
	rowScan, err := plan.SimulateBlocked([]int64{1, 24}, 64)
	if err != nil {
		t.Fatal(err)
	}
	blocked, err := plan.SimulateBlocked([]int64{6, 6}, 64)
	if err != nil {
		t.Fatal(err)
	}
	if blocked.Misses() >= rowScan.Misses() {
		t.Fatalf("blocked %d misses not below row scan %d", blocked.Misses(), rowScan.Misses())
	}
	// On infinite caches ordering cannot matter.
	inf1, err := plan.SimulateBlocked([]int64{1, 24}, 0)
	if err != nil {
		t.Fatal(err)
	}
	inf2, err := plan.SimulateBlocked([]int64{6, 6}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if inf1.Misses() != inf2.Misses() {
		t.Fatalf("infinite-cache misses differ: %d vs %d", inf1.Misses(), inf2.Misses())
	}
}

func TestSimulateBlockedErrors(t *testing.T) {
	prog := MustParse(paperex.Example2, nil)
	plan, err := prog.Partition(100, Columns)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := plan.SimulateBlocked([]int64{10}, 0); err == nil {
		t.Fatal("rank mismatch accepted")
	}
}

func TestSimulatePublishesMetricsTelemetry(t *testing.T) {
	// Acceptance check for the telemetry subsystem: the counters a
	// simulation publishes must equal the cachesim.Metrics it returns.
	reg := telemetry.New()
	prev := telemetry.SetActive(reg)
	defer telemetry.SetActive(prev)

	prog := MustParse(paperex.Example8, map[string]int64{"N": 24})
	plan, err := prog.Partition(16, Rect)
	if err != nil {
		t.Fatal(err)
	}
	m, err := plan.Simulate(SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	prefix := "sim." + plan.Strategy.String() + "."
	for name, want := range map[string]int64{
		"accesses":         m.Accesses,
		"misses":           m.Misses(),
		"cold_misses":      m.ColdMisses,
		"coherence_misses": m.CoherenceMisses,
		"capacity_misses":  m.CapacityMisses,
		"invalidations":    m.Invalidations,
		"network_traffic":  m.NetworkTraffic,
		"shared_data":      m.SharedData,
	} {
		if got := snap.Counters[prefix+name]; got != want {
			t.Errorf("counter %s%s = %d, want %d (the returned Metrics)", prefix, name, got, want)
		}
	}
	if got := snap.Gauges[prefix+"misses_per_proc"]; got != m.MissesPerProc() {
		t.Errorf("misses_per_proc gauge = %v, want %v", got, m.MissesPerProc())
	}
	for p, want := range m.PerProc {
		name := fmt.Sprintf("%sproc.%d.misses", prefix, p)
		if got := snap.Counters[name]; got != want {
			t.Errorf("counter %s = %d, want %d", name, got, want)
		}
	}
	// A simulate span must have been recorded for the strategy.
	var found bool
	for _, sp := range reg.Spans() {
		if sp.Name == "simulate."+plan.Strategy.String() {
			found = true
		}
	}
	if !found {
		t.Errorf("no simulate.%s span recorded", plan.Strategy)
	}
}
