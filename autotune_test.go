package looppart_test

import (
	"bytes"
	"context"
	"fmt"
	"sync"
	"testing"

	"looppart"
	"looppart/internal/autotune"
	"looppart/internal/paperex"
)

// exampleNests are the nests the examples/ programs run (with bounds
// shrunk so simulation stays fast); the acceptance invariant must hold on
// each of them as well as on the full paper suite.
var exampleNests = map[string]struct {
	src    string
	params map[string]int64
}{
	"quickstart": {`
doall (i, 1, N)
  doall (j, 1, N)
    A[i,j] = B[i-1,j] + B[i+1,j] + B[i,j-1] + B[i,j+1]
  enddoall
enddoall`, map[string]int64{"N": 12}},
	"matmul": {`
doall (i, 1, N)
  doall (j, 1, N)
    doall (k, 1, N)
      l$C[i,j] = C[i,j] + A[i,k] * B[k,j]
    enddoall
  enddoall
enddoall`, map[string]int64{"N": 6}},
	"pipeline": {`
doall (i, 1, N)
  doall (j, 1, N)
    A[i,j] = B[i-2,j] + B[i,j-1] + C[i+j,j] + C[i+j+1,j+3]
  enddoall
enddoall`, map[string]int64{"N": 12}},
	"skewed": {`
doall (i, 101, 124)
  doall (j, 1, 24)
    A[i,j] = B[i+j, i-j-1] + B[i+j+4, i-j+3]
  enddoall
enddoall`, nil},
	"datadist": {`
doall (i, 1, N)
  doall (j, 1, N)
    A[i,j] = B[i,j] + B[i+1,j+3]
  enddoall
enddoall`, map[string]int64{"N": 12}},
	"stencil3d": {`
doall (i, 1, N)
  doall (j, 1, N)
    doall (k, 1, N)
      A[i,j,k] = B[i-1,j,k+1] + B[i,j+1,k] + B[i+1,j-2,k-3]
    enddoall
  enddoall
enddoall`, map[string]int64{"N": 6}},
}

// TestAutotunedPlanNeverWorseThanAnalytic is the subsystem's acceptance
// invariant, end to end: on every examples/ nest and every nest of the
// paper experiment suite, the plan Autotune ships simulates at most as
// many cache misses as the plan the pure analytic pipeline ships.
func TestAutotunedPlanNeverWorseThanAnalytic(t *testing.T) {
	type c struct {
		src    string
		params map[string]int64
	}
	cases := map[string]c{}
	for name, ex := range exampleNests {
		cases["examples/"+name] = c{ex.src, ex.params}
	}
	for name, src := range paperex.All {
		cases["paperex/"+name] = c{src, map[string]int64{"N": 12, "T": 2}}
	}
	const procs = 4
	for name, tc := range cases {
		prog, err := looppart.Parse(tc.src, tc.params)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		analytic, err := prog.Partition(procs, looppart.Rect)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		tuned, res, err := prog.Autotune(procs, looppart.Rect, looppart.AutotuneOptions{TopK: 4})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res == nil {
			t.Fatalf("%s: rect autotune returned no tournament", name)
		}
		mAnalytic, err := analytic.Simulate(looppart.SimOptions{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		mTuned, err := tuned.Simulate(looppart.SimOptions{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if mTuned.Misses() > mAnalytic.Misses() {
			t.Errorf("%s: autotuned plan %s simulates %d misses, analytic plan %s simulates %d",
				name, tuned.String(), mTuned.Misses(), analytic.String(), mAnalytic.Misses())
		}
	}
}

// Auto with a communication-free nest needs no tournament: the comm-free
// plan already moves nothing between processors.
func TestAutotuneAutoResolvesCommFree(t *testing.T) {
	prog, err := looppart.Parse(paperex.Example2, nil)
	if err != nil {
		t.Fatal(err)
	}
	plan, res, err := prog.Autotune(4, looppart.Auto, looppart.AutotuneOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res != nil {
		t.Errorf("comm-free resolution ran a tournament: %+v", res)
	}
	if plan.Slab == nil || !plan.Slab.CommFree {
		t.Errorf("plan = %s, want comm-free slab", plan.String())
	}
}

func TestServiceAutotuneMode(t *testing.T) {
	svc := looppart.NewService(looppart.ServiceOptions{AutotuneK: 4})
	if !svc.Autotuned() {
		t.Fatal("AutotuneK did not enable autotune mode")
	}
	req := looppart.PlanRequest{Source: serviceNest, Procs: 16, Strategy: "rect"}
	first, err := svc.Plan(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !first.Result.Autotuned {
		t.Error("served plan not marked autotuned")
	}
	if first.Result.MeasuredMisses <= 0 {
		t.Errorf("measured misses = %d, want > 0", first.Result.MeasuredMisses)
	}
	second, err := svc.Plan(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if second.Status != "hit" || !bytes.Equal(first.Raw, second.Raw) {
		t.Errorf("autotuned hit not byte-identical (status %q)", second.Status)
	}
}

func TestServiceTournamentOnDemand(t *testing.T) {
	svc := looppart.NewService(looppart.ServiceOptions{})
	req := looppart.PlanRequest{Source: serviceNest, Procs: 16, Strategy: "rect"}
	res, err := svc.Tournament(req)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Candidates) < 2 {
		t.Fatalf("tournament ran %d candidates", len(res.Candidates))
	}
	w := res.WinnerCandidate()
	if w.MeasuredMisses > res.Candidates[0].MeasuredMisses {
		t.Errorf("winner %d misses > analytic %d", w.MeasuredMisses, res.Candidates[0].MeasuredMisses)
	}
	// The tournament persisted its winner into the cache: the next Plan
	// for the same nest hits.
	resp, err := svc.Plan(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != "hit" {
		t.Errorf("post-tournament Plan status = %q, want hit", resp.Status)
	}
}

// TestServiceStoreWarmRestart is the persistence acceptance criterion: a
// "restarted daemon" (a second Service over the same store directory)
// serves its first repeat request as a byte-identical hit without
// re-running the search — including under concurrent repeat requests
// (run with -race in scripts/verify.sh).
func TestServiceStoreWarmRestart(t *testing.T) {
	dir := t.TempDir()
	fp := autotune.ModelFingerprint()
	open := func() *looppart.Service {
		store, err := autotune.OpenStore(dir, fp)
		if err != nil {
			t.Fatal(err)
		}
		return looppart.NewService(looppart.ServiceOptions{Store: store})
	}
	req := looppart.PlanRequest{Source: serviceNest, Procs: 16, Strategy: "rect"}

	svc1 := open()
	first, err := svc1.Plan(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if first.Status != "miss" {
		t.Fatalf("cold request status = %q, want miss", first.Status)
	}

	// "Restart the daemon": a fresh service, fresh empty LRU, same disk.
	svc2 := open()
	if got := svc2.Stats().WarmLoaded; got != 1 {
		t.Fatalf("warm-loaded %d entries, want 1", got)
	}
	const workers = 8
	var wg sync.WaitGroup
	responses := make([]*looppart.PlanResponse, workers)
	errs := make([]error, workers)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			responses[i], errs[i] = svc2.Plan(context.Background(), req)
		}(i)
	}
	wg.Wait()
	for i := 0; i < workers; i++ {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		if responses[i].Status != "hit" {
			t.Errorf("worker %d: status %q, want hit (no re-search after restart)", i, responses[i].Status)
		}
		if !bytes.Equal(responses[i].Raw, first.Raw) {
			t.Errorf("worker %d: restarted response differs from the original bytes", i)
		}
	}
	if st := svc2.Stats(); st.Searches != 0 {
		t.Errorf("restarted service ran %d searches, want 0", st.Searches)
	}
}

// A store populated in autotune mode serves the tournament winner across
// restarts, and the analytic-vs-autotuned encodings never mix: the store
// key includes the machine fingerprint.
func TestServiceStoreIsolatesFingerprints(t *testing.T) {
	dir := t.TempDir()
	req := looppart.PlanRequest{Source: serviceNest, Procs: 16, Strategy: "rect"}

	model := autotune.ModelFingerprint()
	tunedFp := model
	tunedFp.MissCost = 40 // a differently calibrated machine

	storeA, err := autotune.OpenStore(dir, model)
	if err != nil {
		t.Fatal(err)
	}
	svcA := looppart.NewService(looppart.ServiceOptions{Store: storeA})
	respA, err := svcA.Plan(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}

	storeB, err := autotune.OpenStore(dir, tunedFp)
	if err != nil {
		t.Fatal(err)
	}
	svcB := looppart.NewService(looppart.ServiceOptions{Store: storeB, AutotuneK: 4, Fingerprint: tunedFp})
	if got := svcB.Stats().WarmLoaded; got != 0 {
		t.Fatalf("fingerprint-mismatched store warm-loaded %d entries, want 0", got)
	}
	respB, err := svcB.Plan(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if respB.Status != "miss" {
		t.Errorf("differently fingerprinted service served %q, want miss", respB.Status)
	}
	if !respB.Result.Autotuned || respA.Result.Autotuned {
		t.Errorf("autotuned flags: A=%v B=%v, want false/true",
			respA.Result.Autotuned, respB.Result.Autotuned)
	}
}

// The service's stats expose the store so /metrics can publish it.
func TestServiceStatsIncludeStore(t *testing.T) {
	store, err := autotune.OpenStore(t.TempDir(), autotune.ModelFingerprint())
	if err != nil {
		t.Fatal(err)
	}
	svc := looppart.NewService(looppart.ServiceOptions{Store: store})
	if _, err := svc.Plan(context.Background(), looppart.PlanRequest{Source: serviceNest, Procs: 8}); err != nil {
		t.Fatal(err)
	}
	st := svc.Stats()
	if st.Store == nil {
		t.Fatal("stats missing store section")
	}
	if st.Store.Entries != 1 || st.Store.Puts != 1 {
		t.Errorf("store stats = %+v, want 1 entry, 1 put", *st.Store)
	}
	if st.Store.Fingerprint == "" {
		t.Error("store stats missing fingerprint")
	}
	_ = fmt.Sprintf("%+v", st) // the struct must remain printable for the daemon's shutdown line
}
