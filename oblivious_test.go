package looppart

import (
	"strings"
	"testing"
)

const obliviousStencilSrc = `
doall (i, 0, 31)
  doall (j, 0, 31)
    A[i,j] = A[i,j-1] + B[i,j]
  enddoall
enddoall
`

// The cache-oblivious plan's defining property: its locality must hold up
// across cache sizes it never saw. Replaying the same plan on caches of
// 64, 128, and 256 lines, the miss counts must stay within a constant
// factor — a tiling tuned to one size would blow past this on the others.
func TestObliviousConstantFactorAcrossCacheSizes(t *testing.T) {
	prog := MustParse(obliviousStencilSrc, nil)
	plan, err := prog.Partition(4, Oblivious)
	if err != nil {
		t.Fatalf("oblivious partition: %v", err)
	}
	if plan.Oblivious == nil || !plan.Concrete() {
		t.Fatalf("concrete nest must yield a concrete oblivious plan, got %v", plan)
	}
	var lo, hi int64
	for _, lines := range []int{64, 128, 256} {
		m, err := plan.Simulate(SimOptions{CacheLines: lines})
		if err != nil {
			t.Fatalf("simulate at %d lines: %v", lines, err)
		}
		misses := m.Misses()
		if misses <= 0 {
			t.Fatalf("replay at %d lines measured no misses", lines)
		}
		if lo == 0 || misses < lo {
			lo = misses
		}
		if misses > hi {
			hi = misses
		}
	}
	const maxRatio = 8
	if hi > maxRatio*lo {
		t.Fatalf("miss counts across cache sizes spread %d..%d, beyond the constant factor %d", lo, hi, maxRatio)
	}
}

// Every processor must receive work when the space is large enough, and
// assignments must be in range and deterministic.
func TestObliviousAssignCoversProcessors(t *testing.T) {
	prog := MustParse(obliviousStencilSrc, nil)
	const procs = 8
	plan, err := prog.Partition(procs, Oblivious)
	if err != nil {
		t.Fatalf("partition: %v", err)
	}
	counts := make([]int64, procs)
	for i := int64(0); i < 32; i++ {
		for j := int64(0); j < 32; j++ {
			p := plan.Assign([]int64{i, j})
			if p < 0 || p >= procs {
				t.Fatalf("assign(%d,%d) = %d out of range", i, j, p)
			}
			if q := plan.Assign([]int64{i, j}); q != p {
				t.Fatalf("assign not deterministic at (%d,%d): %d vs %d", i, j, p, q)
			}
			counts[p]++
		}
	}
	for p, c := range counts {
		if c == 0 {
			t.Fatalf("processor %d received no iterations: %v", p, counts)
		}
	}
}

// A `?N` nest parses, plans only under the oblivious strategy (Auto
// routes there), and refuses concrete replay.
func TestObliviousSymbolicBounds(t *testing.T) {
	src := `
doall (i, 0, ?N)
  doall (j, 0, 31)
    A[i,j] = A[i,j-1]
  enddoall
enddoall
`
	prog, err := Parse(src, nil)
	if err != nil {
		t.Fatalf("parse symbolic nest: %v", err)
	}
	if !prog.Nest.Symbolic() {
		t.Fatal("nest should report symbolic bounds")
	}
	if !strings.Contains(prog.Nest.String(), "?N") {
		t.Fatalf("rendering lost the symbolic bound:\n%s", prog.Nest)
	}

	if _, err := prog.Partition(4, Rect); err == nil || !strings.Contains(err.Error(), "symbolic") {
		t.Fatalf("rect on symbolic bounds = %v, want symbolic-bounds refusal", err)
	}

	plan, err := prog.Partition(4, Oblivious)
	if err != nil {
		t.Fatalf("oblivious partition: %v", err)
	}
	if plan.Concrete() {
		t.Fatal("symbolic plan must not carry a concrete assignment")
	}
	if !plan.Oblivious.Symbolic {
		t.Fatal("plan descriptor lost the symbolic flag")
	}
	if _, err := plan.Simulate(SimOptions{}); err == nil {
		t.Fatal("simulating a symbolic plan must fail")
	}
	if err := plan.ExecuteOn(nil); err == nil {
		t.Fatal("executing a symbolic plan must fail")
	}

	auto, err := prog.Partition(4, Auto)
	if err != nil {
		t.Fatalf("auto on symbolic nest: %v", err)
	}
	if auto.Strategy != Oblivious {
		t.Fatalf("auto resolved %v, want oblivious", auto.Strategy)
	}
}
