package looppart

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"sync/atomic"

	"looppart/internal/plancache"
	"looppart/internal/telemetry"
)

// ParseStrategy maps a strategy name (the CLI and HTTP spelling) to its
// Strategy value.
func ParseStrategy(name string) (Strategy, bool) {
	for _, s := range []Strategy{Auto, Rect, Skewed, CommFree, Rows, Columns, Blocks, AbrahamHudak} {
		if s.String() == name {
			return s, true
		}
	}
	return 0, false
}

// CanonicalKey returns the plan-cache key for partitioning the program on
// procs processors with the given strategy. The key is derived from the
// canonicalized nest (renamed indices, sorted references, resolved
// parameters), so the same nest modulo whitespace, index naming, and
// reference order maps to the same key.
func CanonicalKey(prog *Program, procs int, strategy Strategy) string {
	return plancache.Key(prog.Nest, procs, strategy.String())
}

// PlanRequest is one planning question: a loop source, its parameter
// bindings, the processor count, and the strategy name ("" = auto).
type PlanRequest struct {
	Source   string           `json:"source"`
	Params   map[string]int64 `json:"params,omitempty"`
	Procs    int              `json:"procs"`
	Strategy string           `json:"strategy,omitempty"`
}

// PlanResult is the served answer. It is what the cache stores (as
// canonical JSON), so a cache hit is bit-identical to the miss that
// filled it.
type PlanResult struct {
	// Key is the canonical cache key the request mapped to.
	Key string `json:"key"`
	// Strategy is the requested strategy; Resolved is the one the plan
	// actually uses (Auto resolves to comm-free or rect).
	Strategy string `json:"strategy"`
	Resolved string `json:"resolved"`
	Procs    int    `json:"procs"`

	// Kind is "tile" or "slab". Tile plans carry the extents (rectangular)
	// or the full L matrix rows (skewed); slab plans carry the hyperplane.
	Kind         string    `json:"kind"`
	TileExtents  []int64   `json:"tile_extents,omitempty"`
	TileMatrix   [][]int64 `json:"tile_matrix,omitempty"`
	SlabNormal   []int64   `json:"slab_normal,omitempty"`
	SlabWidth    int64     `json:"slab_width,omitempty"`
	SlabCommFree bool      `json:"slab_comm_free,omitempty"`

	PredictedFootprint float64 `json:"predicted_footprint,omitempty"`
	PredictedTraffic   float64 `json:"predicted_traffic,omitempty"`

	// Rendered is plan.String() — byte-identical to the partition line
	// cmd/looppart prints for the same nest/procs/strategy.
	Rendered string `json:"rendered"`
}

// PlanResponse pairs the decoded result with its canonical encoding and
// how it was served.
type PlanResponse struct {
	Key string
	// Status is "miss" (this request ran the search), "hit" (served from
	// the cache), or "dedup" (joined a search another request started).
	Status string
	// Raw is the canonical JSON encoding of the PlanResult; identical
	// bytes whether the request hit or missed.
	Raw []byte
	// Result is the decoded result (shares no state with the cache).
	Result *PlanResult
}

// Hit reports whether the response was served without running a search.
func (r *PlanResponse) Hit() bool { return r.Status != "miss" }

// ServiceOptions configures a Service.
type ServiceOptions struct {
	// CacheBytes bounds the plan cache (plancache.DefaultMaxBytes when 0).
	CacheBytes int64
}

// Service is the embeddable planning facade behind cmd/looppartd: it
// answers PlanRequests through a canonicalized plan cache with
// singleflight deduplication, so repeated and concurrent requests for the
// same nest cost one search. A Service is safe for concurrent use.
type Service struct {
	cache *plancache.Cache
	group plancache.Group

	requests  atomic.Int64
	searches  atomic.Int64
	cacheHits atomic.Int64 // memory hits + singleflight joins
	errors    atomic.Int64
}

// NewService returns a ready Service.
func NewService(opts ServiceOptions) *Service {
	return &Service{cache: plancache.NewCache(opts.CacheBytes)}
}

// ServiceStats is a point-in-time view of the service counters.
type ServiceStats struct {
	Requests int64 `json:"requests"`
	// Searches counts partition searches actually executed.
	Searches int64 `json:"searches"`
	// CacheHits counts requests served without a search of their own:
	// plan-cache hits plus singleflight joins.
	CacheHits int64           `json:"cache_hits"`
	Errors    int64           `json:"errors"`
	Cache     plancache.Stats `json:"cache"`
}

// Stats returns the current counters.
func (s *Service) Stats() ServiceStats {
	return ServiceStats{
		Requests:  s.requests.Load(),
		Searches:  s.searches.Load(),
		CacheHits: s.cacheHits.Load(),
		Errors:    s.errors.Load(),
		Cache:     s.cache.Stats(),
	}
}

// CacheStats returns the plan-cache counters.
func (s *Service) CacheStats() plancache.Stats { return s.cache.Stats() }

// Plan answers req, serving from the cache when possible. ctx bounds only
// this caller's wait: an in-flight search continues after ctx expires and
// still fills the cache. Errors are not cached.
func (s *Service) Plan(ctx context.Context, req PlanRequest) (*PlanResponse, error) {
	s.requests.Add(1)
	reg := telemetry.Active()
	reg.Counter("service.plan.requests").Add(1)

	prog, procs, strategy, err := s.prepare(req)
	if err != nil {
		s.errors.Add(1)
		reg.Counter("service.plan.errors").Add(1)
		return nil, err
	}
	key := CanonicalKey(prog, procs, strategy)

	if raw, ok := s.cache.Get(key); ok {
		s.cacheHits.Add(1)
		reg.Counter("service.plan.cache_hit").Add(1)
		return response(key, "hit", raw)
	}

	raw, shared, err := s.group.Do(ctx, key, func() ([]byte, error) {
		s.searches.Add(1)
		reg.Counter("service.plan.search").Add(1)
		raw, err := s.search(prog, key, procs, req.Strategy, strategy)
		if err != nil {
			return nil, err
		}
		s.cache.Put(key, raw)
		return raw, nil
	})
	if err != nil {
		s.errors.Add(1)
		reg.Counter("service.plan.errors").Add(1)
		return nil, err
	}
	status := "miss"
	if shared {
		// Joining a flight is a logical cache hit: the plan this request
		// needed was already being produced.
		status = "dedup"
		s.cacheHits.Add(1)
		reg.Counter("service.plan.cache_hit").Add(1)
	}
	return response(key, status, raw)
}

// Explain answers req with a fresh, uncached pipeline run and returns the
// decision trace alongside the result. It temporarily installs a private
// telemetry registry to collect the trace, so the caller must guarantee
// no concurrent planning (cmd/looppartd serializes explain requests
// behind a write lock). The computed plan still fills the cache, with
// bytes identical to the normal path.
func (s *Service) Explain(req PlanRequest) (*PlanResponse, string, error) {
	s.requests.Add(1)
	reg := telemetry.New()
	prev := telemetry.SetActive(reg)
	defer telemetry.SetActive(prev)

	prog, procs, strategy, err := s.prepare(req)
	if err != nil {
		s.errors.Add(1)
		return nil, "", err
	}
	key := CanonicalKey(prog, procs, strategy)
	s.searches.Add(1)
	raw, err := s.search(prog, key, procs, req.Strategy, strategy)
	if err != nil {
		s.errors.Add(1)
		return nil, "", err
	}
	s.cache.Put(key, raw)
	resp, err := response(key, "bypass", raw)
	if err != nil {
		return nil, "", err
	}
	return resp, reg.FormatDecisionTrace(), nil
}

// prepare validates and parses the request.
func (s *Service) prepare(req PlanRequest) (*Program, int, Strategy, error) {
	if req.Procs < 1 {
		return nil, 0, 0, fmt.Errorf("looppart: procs must be >= 1 (got %d)", req.Procs)
	}
	name := req.Strategy
	if name == "" {
		name = Auto.String()
	}
	strategy, ok := ParseStrategy(name)
	if !ok {
		return nil, 0, 0, fmt.Errorf("looppart: unknown strategy %q", req.Strategy)
	}
	prog, err := Parse(req.Source, req.Params)
	if err != nil {
		return nil, 0, 0, err
	}
	return prog, req.Procs, strategy, nil
}

// search runs the partition search and encodes the result canonically.
func (s *Service) search(prog *Program, key string, procs int, requested string, strategy Strategy) ([]byte, error) {
	if requested == "" {
		requested = strategy.String()
	}
	plan, err := prog.Partition(procs, strategy)
	if err != nil {
		return nil, err
	}
	res := &PlanResult{
		Key:                key,
		Strategy:           requested,
		Resolved:           plan.Strategy.String(),
		Procs:              procs,
		PredictedFootprint: plan.PredictedFootprint,
		PredictedTraffic:   plan.PredictedTraffic,
		Rendered:           plan.String(),
	}
	switch {
	case plan.Slab != nil:
		res.Kind = "slab"
		res.SlabNormal = plan.Slab.Normal
		res.SlabWidth = plan.Slab.Width
		res.SlabCommFree = plan.Slab.CommFree
	case plan.Tile != nil:
		res.Kind = "tile"
		if plan.Tile.IsRect() {
			res.TileExtents = plan.Tile.Extents()
		} else {
			l := plan.Tile.L
			res.TileMatrix = make([][]int64, l.Rows())
			for i := range res.TileMatrix {
				row := make([]int64, l.Cols())
				for j := range row {
					row[j] = l.At(i, j)
				}
				res.TileMatrix[i] = row
			}
		}
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetEscapeHTML(false)
	if err := enc.Encode(res); err != nil {
		return nil, err
	}
	// Drop Encode's trailing newline so the stored value is exactly the
	// JSON object; transports add their own framing.
	return bytes.TrimRight(buf.Bytes(), "\n"), nil
}

// response decodes raw into a PlanResponse.
func response(key, status string, raw []byte) (*PlanResponse, error) {
	res := &PlanResult{}
	if err := json.Unmarshal(raw, res); err != nil {
		return nil, fmt.Errorf("looppart: corrupt cached plan for %s: %v", key, err)
	}
	return &PlanResponse{Key: key, Status: status, Raw: raw, Result: res}, nil
}
