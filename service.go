package looppart

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"looppart/internal/autotune"
	"looppart/internal/commsets"
	"looppart/internal/obs"
	"looppart/internal/partition"
	"looppart/internal/plancache"
	"looppart/internal/telemetry"
)

// ParseStrategy maps a strategy name (the CLI and HTTP spelling) to its
// Strategy value.
func ParseStrategy(name string) (Strategy, bool) {
	for _, s := range []Strategy{Auto, Rect, Skewed, CommFree, Rows, Columns, Blocks, AbrahamHudak, LowerBound, Oblivious} {
		if s.String() == name {
			return s, true
		}
	}
	return 0, false
}

// CanonicalKey returns the plan-cache key for partitioning the program on
// procs processors with the given strategy. The key is derived from the
// canonicalized nest (renamed indices, sorted references, resolved
// parameters), so the same nest modulo whitespace, index naming, and
// reference order maps to the same key.
func CanonicalKey(prog *Program, procs int, strategy Strategy) string {
	return plancache.Key(prog.Nest, procs, strategy.String())
}

// PlanRequest is one planning question: a loop source, its parameter
// bindings, the processor count, and the strategy name ("" = auto).
type PlanRequest struct {
	Source   string           `json:"source"`
	Params   map[string]int64 `json:"params,omitempty"`
	Procs    int              `json:"procs"`
	Strategy string           `json:"strategy,omitempty"`
}

// PlanResult is the served answer. It is what the cache stores (as
// canonical JSON), so a cache hit is bit-identical to the miss that
// filled it.
type PlanResult struct {
	// Key is the canonical cache key the request mapped to.
	Key string `json:"key"`
	// Strategy is the requested strategy; Resolved is the one the plan
	// actually uses (Auto resolves to comm-free or rect).
	Strategy string `json:"strategy"`
	Resolved string `json:"resolved"`
	Procs    int    `json:"procs"`

	// Kind is "tile", "slab", or "oblivious". Tile plans carry the extents
	// (rectangular) or the full L matrix rows (skewed); slab plans carry
	// the hyperplane; oblivious plans carry the bisection split order.
	Kind         string    `json:"kind"`
	TileExtents  []int64   `json:"tile_extents,omitempty"`
	TileMatrix   [][]int64 `json:"tile_matrix,omitempty"`
	SlabNormal   []int64   `json:"slab_normal,omitempty"`
	SlabWidth    int64     `json:"slab_width,omitempty"`
	SlabCommFree bool      `json:"slab_comm_free,omitempty"`
	// ObliviousOrder is the recursive-bisection dimension priority;
	// ObliviousSymbolic marks a policy-only plan over `?N` bounds.
	ObliviousOrder    []int `json:"oblivious_order,omitempty"`
	ObliviousSymbolic bool  `json:"oblivious_symbolic,omitempty"`

	PredictedFootprint float64 `json:"predicted_footprint,omitempty"`
	PredictedTraffic   float64 `json:"predicted_traffic,omitempty"`

	// Autotuned marks a plan selected by a measured tournament rather
	// than the analytic argmin alone; MeasuredMisses is the winner's
	// simulated miss count and AutotuneRank its analytic rank (0 = the
	// tournament confirmed the analytic choice). All three are absent on
	// analytic plans, keeping their encoding unchanged.
	Autotuned      bool  `json:"autotuned,omitempty"`
	MeasuredMisses int64 `json:"measured_misses,omitempty"`
	AutotuneRank   int   `json:"autotune_rank,omitempty"`

	// Comm is the plan's communication certificate — the exact per-epoch
	// inter-processor word total and its per-processor shape
	// (internal/commsets) — attached only when the service runs with
	// ServiceOptions.CommSets, so default encodings are unchanged.
	Comm *commsets.Summary `json:"comm,omitempty"`

	// CommLowerBound is the Dinh–Demmel communication lower bound for the
	// nest over this processor count, and CommOptimalityPct is
	// 100·bound/measured-words — how close the served plan's exact
	// communication comes to the best any rectangular partition could do.
	// Both are attached only alongside Comm and only for plans resolved in
	// the rectangular-grid family (pointers, so a genuine zero survives
	// omitempty while legacy encodings stay byte-identical).
	CommLowerBound    *int64   `json:"comm_lower_bound,omitempty"`
	CommOptimalityPct *float64 `json:"comm_optimality_pct,omitempty"`

	// Rendered is plan.String() — byte-identical to the partition line
	// cmd/looppart prints for the same nest/procs/strategy.
	Rendered string `json:"rendered"`
}

// PlanResponse pairs the decoded result with its canonical encoding and
// how it was served.
type PlanResponse struct {
	Key string
	// Status is "miss" (this request ran the search), "hit" (served from
	// the cache), "hot" (served from the lock-free hot tier), "dedup"
	// (joined a search another request started), or "peer" (filled with
	// the key-owner replica's canonical bytes).
	Status string
	// Raw is the canonical JSON encoding of the PlanResult; identical
	// bytes whether the request hit or missed.
	Raw []byte
	// Result is the decoded result. The struct is owned by this response
	// — callers may reassign its fields — but its slices (tile extents,
	// matrix rows, slab normal) may be shared with the cache's decoded
	// entry and are read-only, the same contract as Raw.
	Result *PlanResult
}

// Hit reports whether the response was served without running a search.
func (r *PlanResponse) Hit() bool { return r.Status != "miss" }

// PeerFiller fetches a plan's canonical bytes from the replica that
// owns its key on the cluster's consistent-hash ring (internal/cluster
// implements it). Fill returns ok=false when this replica should search
// locally instead: it owns the key itself, the owner's circuit breaker
// is open, or the owner could not answer in time. reqBody is the
// marshaled PlanRequest the owner replans from; the returned bytes are
// the owner's canonical PlanResult encoding, byte-identical to what the
// owner itself serves.
type PeerFiller interface {
	Fill(ctx context.Context, key string, reqBody []byte) ([]byte, bool)
}

// ServiceOptions configures a Service.
type ServiceOptions struct {
	// CacheBytes bounds the plan cache (plancache.DefaultMaxBytes when 0).
	CacheBytes int64
	// Store, when non-nil, persists every served plan and warm-starts
	// the in-memory cache from past sessions at construction. The store
	// is keyed by canonical plan key + machine fingerprint + schema, so
	// a restarted daemon serves its first repeat request as a
	// byte-identical hit without re-running the search.
	Store *autotune.Store
	// AutotuneK, when > 0, switches searches to measured tournaments
	// over the top-K analytic candidates (Program.Autotune). 0 keeps the
	// pure analytic pipeline.
	AutotuneK int
	// Fingerprint supplies the tournament's cost constants; zero value
	// means the model defaults. Ignored when AutotuneK == 0.
	Fingerprint autotune.Fingerprint
	// AutotuneCacheLines bounds the simulated caches during tournament
	// replays (0 = infinite, the paper's model). Ignored when
	// AutotuneK == 0.
	AutotuneCacheLines int
	// HotKeys, when > 0, pins the top-N hottest plans in an immutable
	// lock-free tier above the LRU (plancache.HotTier): a hot hit is an
	// atomic pointer load plus a map read, no LRU mutex. 0 disables.
	HotKeys int
	// HotRebuildEvery is the request cadence at which the hot tier is
	// re-snapshotted from the LRU's hit counts
	// (plancache.DefaultHotRebuildEvery when 0).
	HotRebuildEvery int
	// PeerFill, when non-nil, lets a local miss ask the key-owner
	// replica for the canonical bytes before searching. The fill runs
	// inside the singleflight, so concurrent misses for one key cost at
	// most one peer round-trip — and, fleet-wide, one search.
	PeerFill PeerFiller
	// CommSets attaches each searched plan's communication-set summary
	// (exact words per epoch) to the served result. Off by default: the
	// analysis costs a pass over the plan's reference classes, and the
	// extra field changes the canonical plan bytes.
	CommSets bool
	// Strategies, when non-empty, is the set of strategy names this
	// service will plan (the -strategies flag): requests naming any other
	// strategy are rejected before parsing. Empty means all registered
	// strategies are enabled.
	Strategies []string
}

// Service is the embeddable planning facade behind cmd/looppartd: it
// answers PlanRequests through a canonicalized plan cache with
// singleflight deduplication, so repeated and concurrent requests for the
// same nest cost one search. A Service is safe for concurrent use.
type Service struct {
	cache          *plancache.Cache
	hot            *plancache.HotTier
	hotEvery       int64
	group          plancache.Group
	peer           PeerFiller
	store          *autotune.Store
	autotuneK      int
	fingerprint    autotune.Fingerprint
	autotuneCLines int
	commSets       bool
	strategies     map[string]bool // enabled strategy names; nil = all

	requests      atomic.Int64
	searches      atomic.Int64
	cacheHits     atomic.Int64 // memory hits + singleflight joins
	hotHits       atomic.Int64 // served from the lock-free hot tier
	peerHits      atomic.Int64 // filled from the key-owner replica
	peerFallbacks atomic.Int64 // peer fill declined/failed, searched locally
	storeHits     atomic.Int64 // served from the persistent store
	errors        atomic.Int64
	warmLoaded    atomic.Int64 // entries loaded from the store at boot
}

// NewService returns a ready Service. When a store is configured, its
// entries (this machine fingerprint's, valid ones only) are loaded into
// the in-memory cache before the service answers anything.
func NewService(opts ServiceOptions) *Service {
	s := &Service{
		cache:          plancache.NewCache(opts.CacheBytes),
		hot:            plancache.NewHotTier(opts.HotKeys),
		hotEvery:       int64(opts.HotRebuildEvery),
		peer:           opts.PeerFill,
		store:          opts.Store,
		autotuneK:      opts.AutotuneK,
		fingerprint:    opts.Fingerprint,
		autotuneCLines: opts.AutotuneCacheLines,
		commSets:       opts.CommSets,
	}
	if len(opts.Strategies) > 0 {
		s.strategies = make(map[string]bool, len(opts.Strategies))
		for _, name := range opts.Strategies {
			s.strategies[name] = true
		}
	}
	if s.hotEvery <= 0 {
		s.hotEvery = plancache.DefaultHotRebuildEvery
	}
	if s.hot != nil {
		// A key the LRU evicts or re-fills with different bytes must stop
		// serving from the hot snapshot immediately, not at the next
		// rebuild.
		s.cache.OnInvalidate(s.hot.Invalidate)
	}
	if s.store != nil {
		var loaded int64
		_ = s.store.Each(func(key string, val []byte) {
			s.cache.Put(key, val)
			loaded++
		})
		s.warmLoaded.Store(loaded)
		telemetry.Active().Counter("service.store.warm_loaded").Add(loaded)
	}
	return s
}

// ServiceStats is a point-in-time view of the service counters.
type ServiceStats struct {
	Requests int64 `json:"requests"`
	// Searches counts partition searches actually executed.
	Searches int64 `json:"searches"`
	// CacheHits counts requests served without a search of their own:
	// plan-cache hits plus singleflight joins.
	CacheHits int64 `json:"cache_hits"`
	// HotHits counts requests served from the lock-free hot tier
	// (included in CacheHits: a hot hit is still a local cache hit).
	HotHits int64 `json:"hot_hits,omitempty"`
	// PeerHits counts misses filled with the key-owner replica's
	// canonical bytes instead of a local search.
	PeerHits int64 `json:"peer_hits,omitempty"`
	// PeerFallbacks counts misses where the peer fill declined or
	// failed and the search ran locally after all.
	PeerFallbacks int64 `json:"peer_fallbacks,omitempty"`
	// StoreHits counts requests served from the persistent store after
	// missing the in-memory cache (e.g. post-eviction).
	StoreHits int64 `json:"store_hits,omitempty"`
	// WarmLoaded counts store entries preloaded into the cache at boot.
	WarmLoaded int64                `json:"warm_loaded,omitempty"`
	Errors     int64                `json:"errors"`
	Cache      plancache.Stats      `json:"cache"`
	Hot        *plancache.HotStats  `json:"hot,omitempty"`
	Store      *autotune.StoreStats `json:"store,omitempty"`
}

// Stats returns the current counters.
func (s *Service) Stats() ServiceStats {
	st := ServiceStats{
		Requests:      s.requests.Load(),
		Searches:      s.searches.Load(),
		CacheHits:     s.cacheHits.Load(),
		HotHits:       s.hotHits.Load(),
		PeerHits:      s.peerHits.Load(),
		PeerFallbacks: s.peerFallbacks.Load(),
		StoreHits:     s.storeHits.Load(),
		WarmLoaded:    s.warmLoaded.Load(),
		Errors:        s.errors.Load(),
		Cache:         s.cache.Stats(),
	}
	if s.hot != nil {
		hs := s.hot.Stats()
		st.Hot = &hs
	}
	if s.store != nil {
		ss := s.store.Stats()
		st.Store = &ss
	}
	return st
}

// Autotuned reports whether searches run measured tournaments.
func (s *Service) Autotuned() bool { return s.autotuneK > 0 }

// TopKeys returns the k most-served plan-cache entries with their hit
// counts and byte occupancy (the /debug/cache hot-key dump).
func (s *Service) TopKeys(k int) []plancache.KeyStat { return s.cache.TopKeys(k) }

// Flights snapshots the live singleflight flights — key, owner trace ID,
// and how many coalesced waiters are blocked on each (for /debug/cache).
func (s *Service) Flights() []plancache.FlightInfo { return s.group.Flights() }

// CacheStats returns the plan-cache counters.
func (s *Service) CacheStats() plancache.Stats { return s.cache.Stats() }

// Plan answers req, serving from the cache when possible. ctx bounds only
// this caller's wait: an in-flight search continues after ctx expires and
// still fills the cache. Errors are not cached.
//
// With a PeerFiller configured, a miss asks the key-owner replica
// before searching; with a hot tier, the hottest keys are served above
// the LRU without taking its lock.
func (s *Service) Plan(ctx context.Context, req PlanRequest) (*PlanResponse, error) {
	return s.plan(ctx, req, true)
}

// PlanLocal is Plan without the peer-fill hop: the answer is produced
// from this replica's caches and search alone. It is what the
// /v1/peer/plan handler serves, so a fill is structurally one hop —
// an owner never forwards a peer's question to a third replica.
func (s *Service) PlanLocal(ctx context.Context, req PlanRequest) (*PlanResponse, error) {
	return s.plan(ctx, req, false)
}

// RebuildHot re-snapshots the hot tier from the LRU immediately (the
// service refreshes it every HotRebuildEvery requests on its own).
func (s *Service) RebuildHot() {
	s.hot.Rebuild(s.cache)
}

func (s *Service) plan(ctx context.Context, req PlanRequest, allowPeer bool) (*PlanResponse, error) {
	n := s.requests.Add(1)
	reg := telemetry.Active()
	reg.Counter("service.plan.requests").Add(1)
	if s.hot != nil && n%s.hotEvery == 0 {
		// Periodic snapshot refresh; hits between rebuilds serve the
		// previous snapshot lock-free.
		s.hot.Rebuild(s.cache)
	}

	prog, procs, strategy, err := s.prepare(req)
	if err != nil {
		s.errors.Add(1)
		reg.Counter("service.plan.errors").Add(1)
		return nil, err
	}
	key := CanonicalKey(prog, procs, strategy)
	// Stamp the canonical key on the enclosing request span (the server's
	// root), so a flight record is findable by key.
	obs.SpanFrom(ctx).SetAttr("key", key)

	if raw, dec, ok := s.hot.Get(key); ok {
		s.hotHits.Add(1)
		s.cacheHits.Add(1)
		reg.Counter("service.plan.hot_hit").Add(1)
		reg.Counter("service.plan.cache_hit").Add(1)
		if pr, ok := dec.(*PlanResult); ok {
			return responseFromDecoded(key, "hot", raw, pr), nil
		}
		return response(key, "hot", raw)
	}

	_, csp := obs.StartSpan(ctx, "cache.lookup")
	raw, dec, ok := s.cache.GetDecoded(key)
	if ok {
		csp.SetAttr("outcome", "hit")
		csp.End()
		s.cacheHits.Add(1)
		reg.Counter("service.plan.cache_hit").Add(1)
		if pr, ok := dec.(*PlanResult); ok {
			// The decoded result rides the cache entry: a hit costs a
			// struct copy, not a JSON parse of bytes we produced ourselves.
			return responseFromDecoded(key, "hit", raw, pr), nil
		}
		return response(key, "hit", raw)
	}
	csp.SetAttr("outcome", "miss")
	csp.End()
	if s.store != nil {
		_, ssp := obs.StartSpan(ctx, "store.lookup")
		if raw, ok := s.store.Get(key); ok {
			// Evicted from memory (or written by another process) but
			// still on disk: re-admit and serve the stored bytes — the
			// same canonical encoding a memory hit returns. The one decode
			// this path pays is stored alongside the bytes, so subsequent
			// memory hits skip it.
			ssp.SetAttr("outcome", "hit")
			ssp.End()
			dec := &PlanResult{}
			if err := json.Unmarshal(raw, dec); err != nil {
				s.errors.Add(1)
				reg.Counter("service.plan.errors").Add(1)
				return nil, fmt.Errorf("looppart: corrupt cached plan for %s: %v", key, err)
			}
			s.cache.PutDecoded(key, raw, dec)
			s.storeHits.Add(1)
			s.cacheHits.Add(1)
			reg.Counter("service.plan.store_hit").Add(1)
			return responseFromDecoded(key, "hit", raw, dec), nil
		}
		ssp.SetAttr("outcome", "miss")
		ssp.End()
	}

	// The singleflight span wraps the wait; fn captures sfctx so that when
	// this caller owns the flight, the search spans attach under it. A
	// coalesced waiter's fn never runs — its span records the owner's
	// trace ID instead, linking the two trees.
	sfctx, sfsp := obs.StartSpan(ctx, "singleflight")
	var searched *PlanResult
	var filled *PlanResult
	raw, shared, ownerTrace, err := s.group.Do(sfctx, key, func() ([]byte, error) {
		// Peer fill runs inside the flight: the local duplicates already
		// collapsed here, and on the key-owner replica the fill requests
		// collapse into its own singleflight — one search fleet-wide.
		if allowPeer && s.peer != nil {
			if dec, raw := s.peerFill(sfctx, key, req); dec != nil {
				filled = dec
				return raw, nil
			}
			s.peerFallbacks.Add(1)
			reg.Counter("service.plan.peer_fallback").Add(1)
		}
		s.searches.Add(1)
		reg.Counter("service.plan.search").Add(1)
		sctx, ssp := obs.StartSpan(sfctx, "search")
		ssp.SetAttr("strategy", strategy.String())
		ssp.SetAttr("procs", procs)
		ssp.SetAttr("autotune_k", s.autotuneK)
		raw, dec, err := s.search(sctx, prog, key, procs, req.Strategy, strategy)
		ssp.End()
		if err != nil {
			return nil, err
		}
		_, psp := obs.StartSpan(sfctx, "store.persist")
		psp.SetAttr("bytes", len(raw))
		s.cache.PutDecoded(key, raw, dec)
		s.persist(key, raw)
		psp.End()
		searched = dec
		return raw, nil
	})
	if shared {
		sfsp.SetAttr("role", "waiter")
		if ownerTrace != "" {
			sfsp.SetAttr("owner_trace", ownerTrace)
		}
	} else {
		sfsp.SetAttr("role", "owner")
	}
	sfsp.End()
	if err != nil {
		s.errors.Add(1)
		reg.Counter("service.plan.errors").Add(1)
		return nil, err
	}
	status := "miss"
	if shared {
		// Joining a flight is a logical cache hit: the plan this request
		// needed was already being produced.
		status = "dedup"
		s.cacheHits.Add(1)
		reg.Counter("service.plan.cache_hit").Add(1)
	} else if filled != nil {
		// This caller owned the flight and the key-owner replica supplied
		// the canonical bytes: no local search ran.
		s.peerHits.Add(1)
		reg.Counter("service.plan.peer_hit").Add(1)
		return responseFromDecoded(key, "peer", raw, filled), nil
	} else if searched != nil {
		// This caller owned the flight: the result it just encoded is the
		// result — no round-trip through JSON.
		return responseFromDecoded(key, status, raw, searched), nil
	}
	return response(key, status, raw)
}

// peerFill asks the key-owner replica for key's canonical bytes and, on
// success, admits them locally exactly as a search would — cache and
// store both — so the next request for key is an ordinary local hit.
// Returns (nil, nil) when the fill declined (self-owned key, breaker
// open, owner unreachable) or the owner's bytes failed validation; the
// caller then searches locally.
func (s *Service) peerFill(ctx context.Context, key string, req PlanRequest) (*PlanResult, []byte) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, nil
	}
	raw, ok := s.peer.Fill(ctx, key, body)
	if !ok {
		return nil, nil
	}
	dec := &PlanResult{}
	if err := json.Unmarshal(raw, dec); err != nil || dec.Key != key {
		// The owner answered with bytes that are not this key's plan —
		// version skew or corruption. Never cache the mismatch; search
		// locally instead.
		telemetry.Active().Counter("service.plan.peer_bad_fill").Add(1)
		return nil, nil
	}
	_, psp := obs.StartSpan(ctx, "store.persist")
	psp.SetAttr("bytes", len(raw))
	psp.SetAttr("source", "peer")
	s.cache.PutDecoded(key, raw, dec)
	s.persist(key, raw)
	psp.End()
	return dec, raw
}

// CommSummary computes the communication-set summary for a served plan
// on demand (the ?commsets=1 envelope): the plan is reconstructed from
// the serialized result alone — like Verify — so the certificate
// describes what was actually served. Works regardless of
// ServiceOptions.CommSets; results already carrying a summary are
// answered from the attached one without recomputation.
func (s *Service) CommSummary(ctx context.Context, req PlanRequest, res *PlanResult) (*commsets.Summary, error) {
	if res.Comm != nil {
		return res.Comm, nil
	}
	prog, procs, _, err := s.prepare(req)
	if err != nil {
		return nil, err
	}
	if procs != res.Procs {
		return nil, fmt.Errorf("looppart: request procs %d != served procs %d", procs, res.Procs)
	}
	plan, err := prog.PlanFromResult(res)
	if err != nil {
		return nil, err
	}
	return plan.CommSummary(ctx)
}

// CommOptimality scores a served plan's exact communication word count
// against the nest's Dinh–Demmel lower bound (the ?commsets=1 envelope's
// comm_lower_bound / comm_optimality_pct fields). It returns non-nil only
// for plans resolved in the rectangular-grid family — rect and lowerbound
// — whose tiles are rectangular: only those provably come from the
// factorization grids the bound minimizes over. Nil results mean "no
// claim", never an error: the envelope simply omits the fields.
func (s *Service) CommOptimality(req PlanRequest, res *PlanResult, words int64) (*int64, *float64) {
	if (res.Resolved != Rect.String() && res.Resolved != LowerBound.String()) ||
		res.Kind != "tile" || len(res.TileExtents) == 0 {
		return nil, nil
	}
	if res.CommLowerBound != nil && res.CommOptimalityPct != nil {
		return res.CommLowerBound, res.CommOptimalityPct
	}
	prog, err := Parse(req.Source, req.Params)
	if err != nil {
		return nil, nil
	}
	lb, err := partition.CommLowerBound(prog.Analysis, res.Procs)
	if err != nil {
		return nil, nil
	}
	bound := lb.Words
	var pct float64
	switch {
	case words > 0:
		pct = 100 * float64(bound) / float64(words)
	case bound == 0:
		pct = 100
	}
	return &bound, &pct
}

// Explain answers req with a fresh, uncached pipeline run and returns the
// decision trace alongside the result. It temporarily installs a private
// telemetry registry to collect the trace, so the caller must guarantee
// no concurrent planning (cmd/looppartd serializes explain requests
// behind a write lock). The computed plan still fills the cache, with
// bytes identical to the normal path.
func (s *Service) Explain(req PlanRequest) (*PlanResponse, string, error) {
	s.requests.Add(1)
	reg := telemetry.New()
	prev := telemetry.SetActive(reg)
	defer telemetry.SetActive(prev)

	prog, procs, strategy, err := s.prepare(req)
	if err != nil {
		s.errors.Add(1)
		return nil, "", err
	}
	key := CanonicalKey(prog, procs, strategy)
	s.searches.Add(1)
	raw, dec, err := s.search(context.Background(), prog, key, procs, req.Strategy, strategy)
	if err != nil {
		s.errors.Add(1)
		return nil, "", err
	}
	s.cache.PutDecoded(key, raw, dec)
	s.persist(key, raw)
	return responseFromDecoded(key, "bypass", raw, dec), reg.FormatDecisionTrace(), nil
}

// prepare validates and parses the request.
func (s *Service) prepare(req PlanRequest) (*Program, int, Strategy, error) {
	if req.Procs < 1 {
		return nil, 0, 0, fmt.Errorf("looppart: procs must be >= 1 (got %d)", req.Procs)
	}
	name := req.Strategy
	if name == "" {
		name = Auto.String()
	}
	strategy, ok := ParseStrategy(name)
	if !ok {
		return nil, 0, 0, fmt.Errorf("looppart: unknown strategy %q", req.Strategy)
	}
	if s.strategies != nil && !s.strategies[name] {
		enabled := make([]string, 0, len(s.strategies))
		for n := range s.strategies {
			enabled = append(enabled, n)
		}
		sort.Strings(enabled)
		return nil, 0, 0, fmt.Errorf("looppart: strategy %q is not enabled (enabled: %s)",
			name, strings.Join(enabled, ", "))
	}
	telemetry.Active().Counter("service.plan.strategy." + strategy.String()).Add(1)
	prog, err := Parse(req.Source, req.Params)
	if err != nil {
		return nil, 0, 0, err
	}
	return prog, req.Procs, strategy, nil
}

// persist writes a served plan through to the store, if one is attached.
// Store failures are counted, never fatal: the plan is already served and
// cached in memory.
func (s *Service) persist(key string, raw []byte) {
	if s.store == nil {
		return
	}
	if err := s.store.Put(key, raw); err != nil {
		telemetry.Active().Counter("service.store.put_errors").Add(1)
	}
}

// Tournament runs a measured plan tournament for req on demand and
// returns the full predicted-vs-measured result, regardless of the
// service's autotune mode. The winner is persisted like any served plan,
// so a later Plan call for the same nest hits.
func (s *Service) Tournament(req PlanRequest) (*autotune.Result, error) {
	s.requests.Add(1)
	prog, procs, strategy, err := s.prepare(req)
	if err != nil {
		s.errors.Add(1)
		return nil, err
	}
	k := s.autotuneK
	if k <= 0 {
		k = 4
	}
	s.searches.Add(1)
	plan, res, err := prog.Autotune(procs, strategy, AutotuneOptions{
		TopK: k, Fingerprint: s.fingerprint, CacheLines: s.autotuneCLines,
	})
	if err != nil {
		s.errors.Add(1)
		return nil, err
	}
	if res == nil {
		// Comm-free or a fixed-shape strategy: no tournament to report.
		return nil, fmt.Errorf("looppart: strategy %s resolves without a tournament (plan %s)",
			strategy.String(), plan.String())
	}
	key := CanonicalKey(prog, procs, strategy)
	if raw, dec, err := s.encode(context.Background(), plan, res, key, req.Strategy, strategy, procs); err == nil {
		s.cache.PutDecoded(key, raw, dec)
		s.persist(key, raw)
	}
	return res, nil
}

// search runs the partition search (a measured tournament in autotune
// mode) and encodes the result canonically, returning both the canonical
// bytes and the decoded result they encode.
func (s *Service) search(ctx context.Context, prog *Program, key string, procs int, requested string, strategy Strategy) ([]byte, *PlanResult, error) {
	var (
		plan *Plan
		res  *autotune.Result
		err  error
	)
	if s.autotuneK > 0 {
		plan, res, err = prog.AutotuneCtx(ctx, procs, strategy, AutotuneOptions{
			TopK: s.autotuneK, Fingerprint: s.fingerprint, CacheLines: s.autotuneCLines,
		})
	} else {
		plan, err = prog.PartitionCtx(ctx, procs, strategy)
	}
	if err != nil {
		return nil, nil, err
	}
	return s.encode(ctx, plan, res, key, requested, strategy, procs)
}

// encodeBufPool recycles the JSON render buffers: encode copies the
// canonical bytes out (the cache retains them indefinitely), so the
// buffer itself can be reused across requests.
var encodeBufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// encode renders the canonical JSON for a served plan (res non-nil marks
// a tournament winner), returning the bytes and the PlanResult they
// encode so callers can cache both without a decode round-trip.
func (s *Service) encode(ctx context.Context, plan *Plan, res *autotune.Result, key, requested string, strategy Strategy, procs int) ([]byte, *PlanResult, error) {
	if requested == "" {
		requested = strategy.String()
	}
	result := &PlanResult{
		Key:                key,
		Strategy:           requested,
		Resolved:           plan.Strategy.String(),
		Procs:              procs,
		PredictedFootprint: plan.PredictedFootprint,
		PredictedTraffic:   plan.PredictedTraffic,
		Rendered:           plan.String(),
	}
	if res != nil {
		w := res.WinnerCandidate()
		result.Autotuned = true
		result.MeasuredMisses = w.MeasuredMisses
		result.AutotuneRank = w.Rank
	}
	if s.commSets {
		// Best-effort: a plan whose communication sets cannot be computed
		// (e.g. scan budget exceeded) is still a valid plan; it is served
		// without the certificate.
		if sum, err := plan.CommSummary(ctx); err == nil {
			result.Comm = sum
		} else {
			telemetry.Active().Counter("service.plan.comm_errors").Add(1)
		}
	}
	switch {
	case plan.Slab != nil:
		result.Kind = "slab"
		result.SlabNormal = plan.Slab.Normal
		result.SlabWidth = plan.Slab.Width
		result.SlabCommFree = plan.Slab.CommFree
	case plan.Tile != nil:
		result.Kind = "tile"
		if plan.Tile.IsRect() {
			result.TileExtents = plan.Tile.Extents()
		} else {
			l := plan.Tile.L
			result.TileMatrix = make([][]int64, l.Rows())
			for i := range result.TileMatrix {
				row := make([]int64, l.Cols())
				for j := range row {
					row[j] = l.At(i, j)
				}
				result.TileMatrix[i] = row
			}
		}
	case plan.Oblivious != nil:
		result.Kind = "oblivious"
		result.ObliviousOrder = plan.Oblivious.Order
		result.ObliviousSymbolic = plan.Oblivious.Symbolic
	}
	// With the exact word count in hand, sandwich it against the
	// communication lower bound — but only for plans the rectangular-grid
	// family produced (rect and lowerbound): those provably come from the
	// same factorization grids the bound minimizes over, so bound ≤ words
	// is an invariant, not a hope. Skewed and fixed-shape plans may sit
	// outside that family.
	if result.Comm != nil && (plan.Strategy == Rect || plan.Strategy == LowerBound) &&
		plan.Tile != nil && plan.Tile.IsRect() {
		if lb, err := partition.CommLowerBound(plan.Program.Analysis, procs); err == nil {
			bound := lb.Words
			var pct float64
			switch {
			case result.Comm.Words > 0:
				pct = 100 * float64(bound) / float64(result.Comm.Words)
			case bound == 0:
				pct = 100 // zero communication is trivially optimal
			}
			result.CommLowerBound = &bound
			result.CommOptimalityPct = &pct
		}
	}
	buf := encodeBufPool.Get().(*bytes.Buffer)
	defer encodeBufPool.Put(buf)
	buf.Reset()
	enc := json.NewEncoder(buf)
	enc.SetEscapeHTML(false)
	if err := enc.Encode(result); err != nil {
		return nil, nil, err
	}
	// Drop Encode's trailing newline so the stored value is exactly the
	// JSON object; transports add their own framing. Copy out of the
	// pooled buffer: the cache keeps the returned slice.
	b := bytes.TrimRight(buf.Bytes(), "\n")
	raw := make([]byte, len(b))
	copy(raw, b)
	return raw, result, nil
}

// response decodes raw into a PlanResponse.
func response(key, status string, raw []byte) (*PlanResponse, error) {
	res := &PlanResult{}
	if err := json.Unmarshal(raw, res); err != nil {
		return nil, fmt.Errorf("looppart: corrupt cached plan for %s: %v", key, err)
	}
	return &PlanResponse{Key: key, Status: status, Raw: raw, Result: res}, nil
}

// responseFromDecoded builds a PlanResponse around an already-decoded
// result without re-parsing raw. The PlanResult struct is copied so the
// response owns it; the slices inside stay shared with the cache entry
// under its read-only contract.
func responseFromDecoded(key, status string, raw []byte, dec *PlanResult) *PlanResponse {
	res := *dec
	return &PlanResponse{Key: key, Status: status, Raw: raw, Result: &res}
}
