module looppart

go 1.22
