package looppart

import (
	"context"
	"testing"

	"looppart/internal/loopir"
)

// FuzzPlanPipeline drives the full served pipeline — parse → analyze →
// optimize → encode → reconstruct → verify — on fuzzer-mutated sources,
// processor counts, and strategies. Every plan the service answers with
// must survive its own self-check: reconstructable from the serialized
// fields, rendering byte-identically, covering the iteration space, and
// (for enumerable tiles) with a footprint model that matches enumeration
// under the documented rules.
func FuzzPlanPipeline(f *testing.F) {
	f.Add("doall (i, 0, 15) doall (j, 0, 15) A[i, j] = A[i, j - 1] + A[i - 1, j] enddoall enddoall", 4, 0)
	f.Add("doall (i, 0, 15) doall (j, 0, 15) A[i] = A[i] + B[i, j] enddoall enddoall", 4, 0)
	f.Add("doall (i, 1, 12) doall (j, 1, 12) B[i, j] = B[i - 1, j + 1] + B[i + 1, j] enddoall enddoall", 4, 2)
	f.Add("doall (i, 0, 11) A[2*i] = A[2*i + 3] enddoall", 3, 1)
	f.Fuzz(func(t *testing.T, src string, procs, stratIdx int) {
		n, err := loopir.Parse(src, nil)
		if err != nil || n.Validate() != nil || !fuzzPlannable(n) {
			t.Skip()
		}
		if procs < 1 {
			procs = 1
		}
		procs = 1 + (procs-1)%8
		strategies := []Strategy{Auto, Rect, Skewed, Rows, Columns, Blocks}
		if stratIdx < 0 {
			stratIdx = -stratIdx
		}
		strategy := strategies[stratIdx%len(strategies)]

		svc := NewService(ServiceOptions{})
		req := PlanRequest{Source: src, Procs: procs, Strategy: strategy.String()}
		resp, err := svc.Plan(context.Background(), req)
		if err != nil {
			t.Skip() // unplannable nests are rejections, not failures
		}
		if rep := svc.Verify(req, resp.Result); !rep.OK() {
			t.Fatalf("served plan fails verification for procs=%d strategy=%s:\n%s\n%v",
				procs, strategy, src, rep)
		}
	})
}

// fuzzPlannable bounds fuzzer-built nests so planning and verification
// stay fast and the checked arithmetic stays far from the int64 cliffs.
func fuzzPlannable(n *loopir.Nest) bool {
	if len(n.Loops) > 3 || len(n.Body) > 4 {
		return false
	}
	space := int64(1)
	for _, l := range n.Loops {
		if l.Lo < -32 || l.Hi > 32 {
			return false
		}
		space *= l.Extent()
		if space > 1<<12 {
			return false
		}
	}
	for _, acc := range n.Accesses() {
		if len(acc.Ref.Subs) > 3 {
			return false
		}
		for _, sub := range acc.Ref.Subs {
			if sub.Const < -32 || sub.Const > 32 {
				return false
			}
			for _, c := range sub.Coef {
				if c < -4 || c > 4 {
					return false
				}
			}
		}
	}
	return true
}
