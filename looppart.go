// Package looppart implements automatic partitioning of parallel loops for
// cache-coherent multiprocessors, reproducing the framework of Agarwal,
// Kranz, and Natarajan (ICPP 1993 / MIT LCS TM-481).
//
// Given a perfectly nested doall loop whose array subscripts are affine
// functions of the loop indices, the library:
//
//   - classifies the references into uniformly intersecting sets and
//     computes their spread vectors (Definitions 4–8),
//   - models the cumulative data footprint of a candidate loop tile
//     (Equation 2, Theorems 1–5),
//   - derives the tile shape minimizing predicted communication, over
//     rectangular tiles, hyperparallelepiped (skewed) tiles, and
//     communication-free hyperplane partitions where they exist,
//   - validates predictions on a cache-coherent multiprocessor simulator
//     and executes partitioned nests for real on goroutines.
//
// The typical flow:
//
//	prog, _ := looppart.Parse(src, nil)
//	plan, _ := prog.Partition(64, looppart.Auto)
//	metrics, _ := plan.Simulate(looppart.SimOptions{})
//	fmt.Println(plan, metrics)
package looppart

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"looppart/internal/cachesim"
	"looppart/internal/datapart"
	"looppart/internal/exec"
	"looppart/internal/footprint"
	"looppart/internal/loopir"
	"looppart/internal/machine"
	"looppart/internal/partition"
	"looppart/internal/telemetry"
	"looppart/internal/tile"
)

// Program is a parsed and analyzed loop nest.
type Program struct {
	Nest     *loopir.Nest
	Analysis *footprint.Analysis
}

// Parse parses the loop-language source (see the README for the grammar;
// it follows the paper's Doall notation) and runs the reference analysis.
// Named loop-bound parameters (e.g. N) are resolved against params.
func Parse(src string, params map[string]int64) (*Program, error) {
	reg := telemetry.Active()
	sp := reg.StartSpan("parse")
	n, err := loopir.Parse(src, params)
	sp.End()
	if err != nil {
		return nil, err
	}
	sp = reg.StartSpan("analyze")
	a, err := footprint.Analyze(n)
	sp.End()
	if err != nil {
		return nil, err
	}
	// Decision trace: one event per uniformly intersecting class, carrying
	// the quantities the optimizers score from (G, spread, coefficients).
	for i, c := range a.Classes {
		fields := map[string]any{
			"array":     c.Array,
			"refs":      c.NumRefs(),
			"G":         c.G.String(),
			"spread":    fmt.Sprint(c.Spread()),
			"cum":       fmt.Sprint(c.CumulativeSpread()),
			"invariant": c.FootprintInvariant(),
			"has_write": c.HasWrite(),
		}
		if u, _, ok := c.SpreadCoeffs(); ok {
			fields["coeffs"] = fmt.Sprint(u)
		}
		reg.Emit("analysis.class", fmt.Sprintf("class%d.%s", i, c.Array), fields)
	}
	return &Program{Nest: n, Analysis: a}, nil
}

// MustParse is Parse panicking on error, for examples and tests.
func MustParse(src string, params map[string]int64) *Program {
	p, err := Parse(src, params)
	if err != nil {
		panic(err)
	}
	return p
}

// Strategy selects a partitioning algorithm.
type Strategy int

const (
	// Auto prefers a communication-free partition when one exists, and
	// otherwise the footprint-optimal rectangular partition.
	Auto Strategy = iota
	// Rect searches rectangular tiles (Theorem 4 objective).
	Rect
	// Skewed searches hyperparallelepiped tiles (Theorem 2 objective).
	Skewed
	// CommFree requires a communication-free hyperplane partition and
	// fails if none exists (the Ramanujam–Sadayappan class).
	CommFree
	// Rows, Columns, Blocks are the fixed naive baselines of Figure 3.
	Rows
	Columns
	Blocks
	// AbrahamHudak runs the baseline algorithm of [6] on its restricted
	// program class.
	AbrahamHudak
	// LowerBound plans the rectangular grid minimizing the Dinh–Demmel
	// per-grid communication lower bound, and reports the bound itself so
	// any plan's measured traffic can be scored against it.
	LowerBound
	// Oblivious emits a cache-oblivious recursive-bisection plan (PCOT
	// style): no tile extents are baked in, so the plan also covers nests
	// whose upper bounds are symbolic (`?N`) at planning time.
	Oblivious
)

func (s Strategy) String() string {
	switch s {
	case Auto:
		return "auto"
	case Rect:
		return "rect"
	case Skewed:
		return "skewed"
	case CommFree:
		return "comm-free"
	case Rows:
		return "rows"
	case Columns:
		return "columns"
	case Blocks:
		return "blocks"
	case AbrahamHudak:
		return "abraham-hudak"
	case LowerBound:
		return "lowerbound"
	case Oblivious:
		return "oblivious"
	default:
		return "unknown"
	}
}

// Plan is a concrete partition: an iteration→processor assignment plus the
// model predictions that selected it.
type Plan struct {
	Program  *Program
	Strategy Strategy
	Procs    int

	// Tile is set for tile-shaped plans (rect and skewed).
	Tile *tile.Tile
	// Slab is set for communication-free hyperplane plans.
	Slab *partition.SlabPlan
	// Oblivious is set for cache-oblivious recursive-bisection plans.
	Oblivious *partition.ObliviousPlan

	// PredictedFootprint and PredictedTraffic are per-tile model values
	// (footprint only for tile plans).
	PredictedFootprint float64
	PredictedTraffic   float64

	assign func(p []int64) int
}

// Partition derives a plan for P processors with the given strategy.
func (pr *Program) Partition(procs int, strategy Strategy) (*Plan, error) {
	return pr.PartitionCtx(context.Background(), procs, strategy)
}

// PartitionCtx is Partition with request-scoped tracing: when ctx carries
// an obs.Trace, the strategy searches record their spans (search.rect /
// search.skewed with evaluated/pruned counts) into it. Without a trace it
// behaves exactly like Partition.
func (pr *Program) PartitionCtx(ctx context.Context, procs int, strategy Strategy) (*Plan, error) {
	if procs < 1 {
		return nil, fmt.Errorf("looppart: procs must be >= 1, got %d", procs)
	}
	if pr.Nest.Symbolic() && strategy != Oblivious && strategy != Auto {
		return nil, fmt.Errorf("looppart: nest has symbolic bounds; only the oblivious strategy can plan it")
	}
	reg := telemetry.Active()
	if strategy != Auto {
		sp := reg.StartSpan("partition." + strategy.String())
		sp.SetArg("procs", procs)
		defer sp.End()
	}
	switch strategy {
	case Auto:
		if pr.Nest.Symbolic() {
			reg.Emit("strategy.auto", "oblivious", map[string]any{
				"reason": "symbolic loop bounds; only cache-oblivious bisection needs no extents",
			})
			return pr.PartitionCtx(ctx, procs, Oblivious)
		}
		if plan, err := pr.PartitionCtx(ctx, procs, CommFree); err == nil {
			reg.Emit("strategy.auto", "comm-free", map[string]any{
				"reason": "a communication-free hyperplane partition exists",
			})
			return plan, nil
		}
		reg.Emit("strategy.auto", "rect", map[string]any{
			"reason": "no communication-free partition; falling back to footprint-optimal rectangles",
		})
		return pr.PartitionCtx(ctx, procs, Rect)
	case Rect, Skewed, LowerBound, Oblivious:
		return pr.familyPlan(ctx, strategy, procs)
	case Rows, Columns, Blocks:
		shape := map[Strategy]partition.NaiveShape{
			Rows: partition.ByRows, Columns: partition.ByColumns, Blocks: partition.ByBlocks,
		}[strategy]
		rp, err := partition.Naive(pr.Analysis, procs, shape)
		if err != nil {
			return nil, err
		}
		return pr.tilePlan(strategy, procs, rp.Tile(), rp.PredictedFootprint, rp.PredictedTraffic)
	case AbrahamHudak:
		rp, err := partition.AbrahamHudak(pr.Analysis, procs)
		if err != nil {
			return nil, err
		}
		return pr.tilePlan(strategy, procs, rp.Tile(), rp.PredictedFootprint, rp.PredictedTraffic)
	case CommFree:
		return pr.familyPlan(ctx, strategy, procs)
	default:
		return nil, fmt.Errorf("looppart: unknown strategy %d", strategy)
	}
}

// familyPlan routes a strategy through the partition.Family registry and
// lifts the family-independent result into a Plan.
func (pr *Program) familyPlan(ctx context.Context, strategy Strategy, procs int) (*Plan, error) {
	fam, ok := partition.Lookup(strategy.String())
	if !ok {
		return nil, fmt.Errorf("looppart: unknown strategy %d", strategy)
	}
	fp, err := fam.Optimize(ctx, pr.Analysis, procs)
	if err != nil {
		if errors.Is(err, partition.ErrNoCommFree) {
			return nil, fmt.Errorf("looppart: no communication-free partition exists for this nest")
		}
		return nil, err
	}
	switch {
	case fp.Tile != nil:
		return pr.tilePlan(strategy, procs, *fp.Tile, fp.PredictedFootprint, fp.PredictedTraffic)
	case fp.Slab != nil:
		sp := fp.Slab
		plan := &Plan{Program: pr, Strategy: strategy, Procs: procs, Slab: sp}
		plan.assign = func(p []int64) int { return sp.SlabOf(p, procs) }
		return plan, nil
	case fp.Oblivious != nil:
		plan := &Plan{Program: pr, Strategy: strategy, Procs: procs, Oblivious: fp.Oblivious}
		if !fp.Oblivious.Symbolic {
			asg, err := fp.Oblivious.Assign(tile.BoundsOf(pr.Nest), procs)
			if err != nil {
				return nil, err
			}
			plan.assign = asg
		}
		return plan, nil
	default:
		return nil, fmt.Errorf("looppart: strategy %s produced an empty plan", strategy)
	}
}

func (pr *Program) tilePlan(s Strategy, procs int, t tile.Tile, fp, tr float64) (*Plan, error) {
	space := tile.BoundsOf(pr.Nest)
	tl, err := tile.NewTiling(t, space.Lo)
	if err != nil {
		return nil, err
	}
	asg, err := tile.Assign(tl, space, procs)
	if err != nil {
		return nil, err
	}
	return &Plan{
		Program: pr, Strategy: s, Procs: procs, Tile: &t,
		PredictedFootprint: fp, PredictedTraffic: tr,
		assign: asg.ProcOf,
	}, nil
}

// Assign returns the processor executing the given doall iteration point.
// It panics for symbolic-bounds plans (Concrete reports which).
func (p *Plan) Assign(point []int64) int { return p.assign(point) }

// Concrete reports whether the plan carries an iteration→processor
// assignment. Oblivious plans over symbolic bounds do not: they are a
// split policy, resolvable only once the extents are known.
func (p *Plan) Concrete() bool { return p.assign != nil }

// errSymbolicPlan is the uniform refusal for replay/execution of a plan
// with no concrete assignment.
func (p *Plan) errSymbolicPlan() error {
	return fmt.Errorf("looppart: plan over symbolic bounds has no concrete assignment; supply concrete extents to simulate or execute")
}

// LoadImbalance returns max/mean iterations per processor (1.0 = perfect).
// Slab plans over skewed hyperplanes can be noticeably imbalanced — the
// cost of communication-freedom that Figure 3's rectangular partitions
// avoid.
func (p *Plan) LoadImbalance() float64 {
	counts := make([]int64, p.Procs)
	var total int64
	tile.BoundsOf(p.Program.Nest).ForEach(func(pt []int64) bool {
		counts[p.assign(pt)]++
		total++
		return true
	})
	if total == 0 {
		return 1
	}
	var max int64
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	return float64(max) * float64(p.Procs) / float64(total)
}

// SimulateBlocked replays each processor's iterations in blocked subtile
// order (§2.2's small-cache regime: subdivide the tile, keep the aspect
// ratio) on finite caches, processor by processor. subExt gives the
// subtile extents; cacheLines bounds each cache (0 = infinite, where
// ordering cannot matter).
func (p *Plan) SimulateBlocked(subExt []int64, cacheLines int) (cachesim.Metrics, error) {
	if !p.Concrete() {
		return cachesim.Metrics{}, p.errSymbolicPlan()
	}
	space := tile.BoundsOf(p.Program.Nest)
	subTiling, err := tile.RectTilingFor(space, subExt)
	if err != nil {
		return cachesim.Metrics{}, err
	}
	// Group iterations per processor, ordered by subtile then
	// lexicographic within the subtile.
	type keyed struct {
		key   []int64
		point []int64
	}
	perProc := make([][]keyed, p.Procs)
	space.ForEach(func(pt []int64) bool {
		q := append([]int64(nil), pt...)
		proc := p.assign(q)
		perProc[proc] = append(perProc[proc], keyed{subTiling.Coord(q), q})
		return true
	})
	cfg := cachesim.DefaultConfig(p.Procs)
	cfg.CacheLines = cacheLines
	cfg.ExpectedData = p.expectedData()
	m, err := cachesim.New(cfg)
	if err != nil {
		return cachesim.Metrics{}, err
	}
	for proc, items := range perProc {
		sort.SliceStable(items, func(a, b int) bool {
			return lexLess(items[a].key, items[b].key)
		})
		pts := make([][]int64, len(items))
		for i, it := range items {
			pts[i] = it.point
		}
		if err := cachesim.ReplayPoints(m, p.Program.Nest, proc, pts, nil); err != nil {
			return cachesim.Metrics{}, err
		}
	}
	metrics := m.Finish()
	metrics.Publish(telemetry.Active(), "simblocked."+p.Strategy.String()+".")
	return metrics, nil
}

func lexLess(a, b []int64) bool {
	for k := range a {
		if a[k] != b[k] {
			return a[k] < b[k]
		}
	}
	return false
}

func (p *Plan) String() string {
	switch {
	case p.Oblivious != nil:
		return fmt.Sprintf("%s plan for %d procs: %v", p.Strategy, p.Procs, p.Oblivious)
	case p.Slab != nil:
		return fmt.Sprintf("%s plan for %d procs: %v", p.Strategy, p.Procs, *p.Slab)
	case p.Tile != nil:
		return fmt.Sprintf("%s plan for %d procs: %v (predicted footprint %.1f)",
			p.Strategy, p.Procs, *p.Tile, p.PredictedFootprint)
	default:
		return fmt.Sprintf("%s plan for %d procs", p.Strategy, p.Procs)
	}
}

// SimOptions parameterizes uniform-memory simulation (Figure 2's model).
type SimOptions struct {
	// CacheLines bounds each cache; 0 = infinite (the paper's model).
	CacheLines int
}

// Simulate replays the nest on the cache-coherent simulator under this
// plan and returns the metrics. When telemetry is active, the metrics
// publish as sim.<strategy>.* counters alongside a simulation span.
func (p *Plan) Simulate(opts SimOptions) (cachesim.Metrics, error) {
	if !p.Concrete() {
		return cachesim.Metrics{}, p.errSymbolicPlan()
	}
	reg := telemetry.Active()
	sp := reg.StartSpan("simulate." + p.Strategy.String())
	defer sp.End()
	cfg := cachesim.DefaultConfig(p.Procs)
	cfg.CacheLines = opts.CacheLines
	cfg.ExpectedData = p.expectedData()
	m, err := cachesim.New(cfg)
	if err != nil {
		return cachesim.Metrics{}, err
	}
	if err := cachesim.RunNest(m, p.Program.Nest, p.assign); err != nil {
		return cachesim.Metrics{}, err
	}
	metrics := m.Finish()
	metrics.Publish(reg, "sim."+p.Strategy.String()+".")
	return metrics, nil
}

// expectedData predicts the number of distinct data a replay touches, for
// presizing the simulator: the per-processor footprint times the processor
// count bounds the distinct data from above (sharing only shrinks it).
func (p *Plan) expectedData() int {
	if p.PredictedFootprint <= 0 {
		return 0
	}
	n := p.PredictedFootprint * float64(p.Procs)
	const maxHint = 1 << 20 // don't let a mis-prediction balloon memory
	if n > maxHint {
		return maxHint
	}
	return int(n)
}

// MeshOptions parameterizes distributed-memory simulation (§4's Alewife
// model).
type MeshOptions struct {
	// Aligned selects the data-partitioning-and-alignment placement;
	// false uses hashed (round-robin) placement.
	Aligned bool
	// CacheLines bounds each cache; 0 = infinite.
	CacheLines int
}

// SimulateMesh replays the nest on a 2-D mesh with distributed memory,
// homing data by alignment or hashing, and returns the metrics (including
// Local/RemoteMisses and HopTraffic).
func (p *Plan) SimulateMesh(opts MeshOptions) (cachesim.Metrics, error) {
	if p.Tile == nil {
		return cachesim.Metrics{}, fmt.Errorf("looppart: mesh simulation requires a tile plan")
	}
	mesh, err := machine.SquarishMesh(p.Procs)
	if err != nil {
		return cachesim.Metrics{}, err
	}
	space := tile.BoundsOf(p.Program.Nest)
	tl, err := tile.NewTiling(*p.Tile, space.Lo)
	if err != nil {
		return cachesim.Metrics{}, err
	}
	asg, err := tile.Assign(tl, space, p.Procs)
	if err != nil {
		return cachesim.Metrics{}, err
	}
	place := machine.RoundRobin(p.Procs)
	if opts.Aligned {
		al, err := datapart.NewAligner(p.Program.Analysis, asg, place)
		if err != nil {
			return cachesim.Metrics{}, err
		}
		place = al.Placement()
	}
	cost := machine.DefaultCostModel()
	cfg := cachesim.DefaultConfig(p.Procs)
	cfg.CacheLines = opts.CacheLines
	cfg.ExpectedData = p.expectedData()
	cfg.MissCost = func(proc int, datum string, atomic bool) (float64, int64) {
		arr, idx, err := ParseDatum(datum)
		if err != nil {
			return cost.RemoteBase, int64(mesh.MaxHops())
		}
		return cost.MissCost(mesh, proc, place(arr, idx), atomic)
	}
	m, err := cachesim.New(cfg)
	if err != nil {
		return cachesim.Metrics{}, err
	}
	if err := cachesim.RunNest(m, p.Program.Nest, p.assign); err != nil {
		return cachesim.Metrics{}, err
	}
	metrics := m.Finish()
	placement := "hashed"
	if opts.Aligned {
		placement = "aligned"
	}
	metrics.Publish(telemetry.Active(), "mesh."+p.Strategy.String()+"."+placement+".")
	return metrics, nil
}

// Execute runs the nest for real on goroutines (one per processor) over a
// fresh store sized for the nest, and returns the store.
func (p *Plan) Execute() (exec.Store, error) {
	st, err := exec.StoreFor(p.Program.Nest)
	if err != nil {
		return nil, err
	}
	if err := p.ExecuteOn(st); err != nil {
		return nil, err
	}
	return st, nil
}

// ExecuteOn runs the nest under the plan over a caller-provided store.
func (p *Plan) ExecuteOn(st exec.Store) error {
	if !p.Concrete() {
		return p.errSymbolicPlan()
	}
	reg := telemetry.Active()
	sp := reg.StartSpan("execute." + p.Strategy.String())
	defer sp.End()
	return exec.RunParallel(p.Program.Nest, st, p.Procs, p.assign)
}

// ParseDatum splits a simulator datum key "A[1,-2]" into its array name
// and index tuple.
func ParseDatum(datum string) (string, []int64, error) {
	open := -1
	for i := 0; i < len(datum); i++ {
		if datum[i] == '[' {
			open = i
			break
		}
	}
	if open < 0 || len(datum) == 0 || datum[len(datum)-1] != ']' {
		return "", nil, fmt.Errorf("looppart: malformed datum key %q", datum)
	}
	name := datum[:open]
	body := datum[open+1 : len(datum)-1]
	var idx []int64
	v, sign := int64(0), int64(1)
	started := false
	for i := 0; i < len(body); i++ {
		switch c := body[i]; {
		case c == ',':
			if !started {
				return "", nil, fmt.Errorf("looppart: malformed datum key %q", datum)
			}
			idx = append(idx, sign*v)
			v, sign, started = 0, 1, false
		case c == '-':
			sign = -1
		case c >= '0' && c <= '9':
			v = v*10 + int64(c-'0')
			started = true
		default:
			return "", nil, fmt.Errorf("looppart: malformed datum key %q", datum)
		}
	}
	if !started {
		return "", nil, fmt.Errorf("looppart: malformed datum key %q", datum)
	}
	idx = append(idx, sign*v)
	return name, idx, nil
}
