#!/bin/sh
# Full verification: vet + build + race-enabled tests + an end-to-end
# smoke run that checks the telemetry exports are well-formed.
# Run from the repository root (or via `make verify`).
set -eu

cd "$(dirname "$0")/.."

echo '== go vet =='
go vet ./...

echo '== go build =='
go build ./...

echo '== go test -race =='
go test -race ./...

echo '== race: parallel search engine at forced pool sizes =='
go test -race -count=1 \
	-run 'TestSearchDeterministicAcrossPoolSizes|TestPruningDoesNotChangePlan' \
	./internal/partition

echo '== bench smoke: BENCH_PARTITION.json stays well-formed =='
# A short re-run (10 iterations/benchmark) through the same pipeline that
# produced the checked-in record; the checked-in file itself must also
# validate.
benchout=$(mktemp /tmp/looppart-bench.XXXXXX.json)
OUT="$benchout" BENCHTIME=10x sh scripts/bench.sh >/dev/null
go run ./scripts/benchjson -validate "$benchout"
go run ./scripts/benchjson -validate BENCH_PARTITION.json
rm -f "$benchout"

echo '== smoke: looppart -trace/-metrics on example8 =='
trace=$(mktemp /tmp/looppart-trace.XXXXXX.json)
metrics=$(mktemp /tmp/looppart-metrics.XXXXXX.json)
trap 'rm -f "$trace" "$metrics"' EXIT

go run ./cmd/looppart -procs 16 -trace "$trace" -metrics "$metrics" example8 >/dev/null

# The trace must be a JSON array of Chrome trace events (ph/ts fields);
# the metrics dump must be a JSON object with a counters section.
go run ./scripts/checktrace "$trace" "$metrics"

echo 'verify: OK'
