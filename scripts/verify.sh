#!/bin/sh
# Full verification: vet + build + race-enabled tests + an end-to-end
# smoke run that checks the telemetry exports are well-formed.
# Run from the repository root (or via `make verify`).
set -eu

cd "$(dirname "$0")/.."

echo '== go vet =='
go vet ./...

echo '== staticcheck =='
# Gated: the verify environment may be offline. CI installs the pinned
# version (see .github/workflows/ci.yml) so the check always runs there.
if command -v staticcheck >/dev/null 2>&1; then
	staticcheck ./...
else
	echo 'staticcheck not installed; skipped (CI runs the pinned version)'
fi

echo '== go build =='
go build ./...

echo '== go test -race =='
go test -race ./...

echo '== race: parallel search engine at forced pool sizes =='
go test -race -count=1 \
	-run 'TestSearchDeterministicAcrossPoolSizes|TestPruningDoesNotChangePlan' \
	./internal/partition

echo '== race: serving layer (singleflight, shedding, graceful shutdown) =='
go test -race -count=1 \
	-run 'TestServerSingleflightConcurrentIdentical|TestServerShedsLoad|TestServerGracefulShutdownDrains' \
	./internal/server

echo '== race: request tracing (disjoint trees, coalesced waiter links) =='
go test -race -count=1 \
	-run 'TestServerObservabilityEndToEnd|TestServerParallelTracesDisjoint|TestServerCoalescedWaiterLinksOwner' \
	./internal/server

echo '== fuzz smoke: loopir parser (10s) =='
go test -fuzz=FuzzParse -fuzztime=10s -run '^$' ./internal/loopir

echo '== fuzz smoke: footprint model vs enumeration (10s) =='
go test -fuzz=FuzzRectFootprint -fuzztime=10s -run '^$' ./internal/verify

echo '== fuzz smoke: HNF/SNF contracts (10s) =='
go test -fuzz=FuzzHNF -fuzztime=10s -run '^$' ./internal/verify

echo '== fuzz smoke: served-plan pipeline (10s) =='
go test -fuzz=FuzzPlanPipeline -fuzztime=10s -run '^$' .

echo '== fuzz smoke: communication-set cross-check (10s) =='
go test -fuzz=FuzzCommSets -fuzztime=10s -run '^$' ./internal/verify

echo '== smoke: loopsim -commsets runs the message-passing executor =='
# The executor itself enforces measured words == predicted; the smoke
# checks the CLI surfaces both the table and the accounting line.
commout=$(go run ./cmd/loopsim -procs 4 -param N=24 -param T=2 -commsets fig9stencil)
echo "$commout" | grep -q 'total words/epoch:' || {
	echo 'verify: loopsim -commsets printed no send/receive table' >&2
	exit 1
}
echo "$commout" | grep -q 'msgexec: .* moved' || {
	echo 'verify: loopsim -commsets printed no msgexec accounting line' >&2
	exit 1
}

echo '== smoke: looptune calibration recovers the machine fingerprint =='
# The sim-calibrated fingerprint must agree with the model constants: the
# microbenchmarks fit hit/miss/atomic/mesh costs, they do not read them.
caldump=$(go run ./cmd/looptune -calibrate sim)
echo "$caldump"
modeldump=$(go run ./cmd/looptune -calibrate model)
[ "${caldump#fp}" != "$caldump" ] || { echo 'verify: calibration printed no fingerprint' >&2; exit 1; }
[ "${caldump%%\ *}" = "${modeldump%%\ *}" ] || {
	echo "verify: sim calibration diverged from the model fingerprint:" >&2
	echo "  sim:   $caldump" >&2
	echo "  model: $modeldump" >&2
	exit 1
}

echo '== bench smoke: BENCH_PARTITION.json stays well-formed =='
# A short re-run (10 iterations/benchmark) through the same pipeline that
# produced the checked-in record; the checked-in file itself must also
# validate.
benchout=$(mktemp /tmp/looppart-bench.XXXXXX.json)
# GUARD=0: 10 iterations/benchmark is far too noisy for the regression
# guard; the real guard runs in full scripts/bench.sh invocations.
OUT="$benchout" BENCHTIME=10x GUARD=0 sh scripts/bench.sh >/dev/null
go run ./scripts/benchjson -validate "$benchout"
go run ./scripts/benchjson -validate BENCH_PARTITION.json
rm -f "$benchout"

echo '== smoke: looppart -trace/-metrics on example8 =='
trace=$(mktemp /tmp/looppart-trace.XXXXXX.json)
metrics=$(mktemp /tmp/looppart-metrics.XXXXXX.json)
trap 'rm -f "$trace" "$metrics"' EXIT

go run ./cmd/looppart -procs 16 -trace "$trace" -metrics "$metrics" example8 >/dev/null

# The trace must be a JSON array of Chrome trace events (ph/ts fields);
# the metrics dump must be a JSON object with a counters section.
go run ./scripts/checktrace "$trace" "$metrics"

echo '== smoke: looppart reads a nest from stdin =='
printf 'doall (i, 1, 16)\n A[i] = A[i] + 1\nenddoall\n' \
	| go run ./cmd/looppart -procs 4 - >/dev/null

echo '== smoke: looppartd serves, caches, and drains =='
smokedir=$(mktemp -d /tmp/looppartd-smoke.XXXXXX)
daemon_pid=
cluster_pids=
cleanup() {
	rm -f "$trace" "$metrics"
	[ -n "$daemon_pid" ] && kill "$daemon_pid" 2>/dev/null
	for p in $cluster_pids; do kill "$p" 2>/dev/null; done
	rm -rf "$smokedir"
	return 0
}
trap cleanup EXIT

go build -o "$smokedir/looppartd" ./cmd/looppartd
"$smokedir/looppartd" -addr 127.0.0.1:0 -portfile "$smokedir/port" \
	-reqlog "$smokedir/requests.log" \
	>"$smokedir/daemon.log" &
daemon_pid=$!
i=0
while [ ! -s "$smokedir/port" ]; do
	i=$((i + 1))
	if [ "$i" -gt 100 ]; then
		echo 'verify: looppartd never wrote its portfile' >&2
		cat "$smokedir/daemon.log" >&2
		exit 1
	fi
	sleep 0.1
done
addr=$(cat "$smokedir/port")

req='{"source":"doall (i, 1, 64)\n A[i] = B[i+1]\nenddoall","procs":8,"strategy":"rect"}'
curl -sf -D "$smokedir/hdr1" -o "$smokedir/resp1" \
	-H 'Content-Type: application/json' --data "$req" "http://$addr/v1/plan"
curl -sf -D "$smokedir/hdr2" -o "$smokedir/resp2" \
	-H 'Content-Type: application/json' --data "$req" "http://$addr/v1/plan"
grep -qi '^x-plancache: miss' "$smokedir/hdr1"
grep -qi '^x-plancache: hit' "$smokedir/hdr2"
# A hit must be byte-identical to the miss that filled the cache.
cmp "$smokedir/resp1" "$smokedir/resp2"
curl -sf "http://$addr/healthz" | grep -q '"status":"ok"'
curl -sf "http://$addr/metrics" | grep -q '^plancache_hits 1'

# ?verify=1 re-validates the served plan: the response must embed the
# cached plan bytes unchanged plus a passing verification report.
curl -sf -o "$smokedir/resp3" \
	-H 'Content-Type: application/json' --data "$req" "http://$addr/v1/plan?verify=1"
grep -q '"failures":0' "$smokedir/resp3"
grep -qF "\"result\":$(cat "$smokedir/resp1")" "$smokedir/resp3"

# Request-scoped observability: a fresh nest under ?verify=1 forces a
# slow cache-miss search whose caller-supplied trace ID must be
# reconstructable from the flight recorder AND the structured request
# log — span tree (singleflight owner, search, persist, verify)
# included.
slowreq='{"source":"doall (i, 1, 64)\n doall (j, 1, 64)\n  A[i,j] = B[i,j] + B[i+1,j+3]\n enddoall\nenddoall","procs":16,"strategy":"rect"}'
curl -sf -o "$smokedir/resp4" -H 'Content-Type: application/json' \
	-H 'X-Trace-Id: verify-smoke-trace' --data "$slowreq" "http://$addr/v1/plan?verify=1"
grep -q '"failures":0' "$smokedir/resp4"
curl -sf "http://$addr/debug/flightrec?trace=verify-smoke-trace" >"$smokedir/flightrec"
grep -q '"trace_id": "verify-smoke-trace"' "$smokedir/flightrec"
grep -q '"cache": "miss"' "$smokedir/flightrec"
for span in cache.lookup singleflight search search.rect store.persist verify; do
	grep -q "\"name\": \"$span\"" "$smokedir/flightrec" || {
		echo "verify: flight record lacks the $span span" >&2
		cat "$smokedir/flightrec" >&2
		exit 1
	}
done
grep -q 'verify-smoke-trace' "$smokedir/requests.log"
curl -sf "http://$addr/debug/cache" | grep -q '"top_keys"'

kill -TERM "$daemon_pid"
wait "$daemon_pid"
daemon_pid=
grep -q 'served 4 requests (2 searches, 2 cache hits)' "$smokedir/daemon.log"

echo '== smoke: -strategies gating and the ?commsets=1 optimality score =='
# A daemon restricted to rect,skew,lowerbound ("skew" is the accepted
# short spelling of "skewed") must plan those strategies, reject the
# rest, and score every rect-family ?commsets=1 answer against the
# communication lower bound: comm_optimality_pct present, finite, ≤ 100.
"$smokedir/looppartd" -addr 127.0.0.1:0 -portfile "$smokedir/port2" \
	-strategies rect,skew,lowerbound -reqlog '' >"$smokedir/daemon2.log" &
daemon_pid=$!
i=0
while [ ! -s "$smokedir/port2" ]; do
	i=$((i + 1))
	if [ "$i" -gt 100 ]; then
		echo 'verify: strategy-gated looppartd never wrote its portfile' >&2
		cat "$smokedir/daemon2.log" >&2
		exit 1
	fi
	sleep 0.1
done
addr2=$(cat "$smokedir/port2")
grep -q 'strategies enabled: rect, skewed, lowerbound' "$smokedir/daemon2.log"

commreq='{"source":"doall (i, 1, 64)\n doall (j, 1, 64)\n  A[i,j] = A[i+1,j] + A[i,j+2] + 1\n enddoall\nenddoall","procs":16,"strategy":"rect"}'
curl -sf -o "$smokedir/commresp" \
	-H 'Content-Type: application/json' --data "$commreq" "http://$addr2/v1/plan?commsets=1"
grep -q '"comm_lower_bound":' "$smokedir/commresp"
pct=$(sed -n 's/.*"comm_optimality_pct":\([0-9][0-9.e+-]*\).*/\1/p' "$smokedir/commresp")
[ -n "$pct" ] || {
	echo 'verify: ?commsets=1 response carries no finite comm_optimality_pct' >&2
	cat "$smokedir/commresp" >&2
	exit 1
}
awk "BEGIN{exit !($pct >= 0 && $pct <= 100)}" || {
	echo "verify: comm_optimality_pct $pct outside [0, 100]" >&2
	cat "$smokedir/commresp" >&2
	exit 1
}

# A strategy outside the enabled set must be rejected, not planned.
rejreq='{"source":"doall (i, 1, 64)\n A[i] = A[i] + 1\nenddoall","procs":4,"strategy":"blocks"}'
rejcode=$(curl -s -o "$smokedir/rejresp" -w '%{http_code}' \
	-H 'Content-Type: application/json' --data "$rejreq" "http://$addr2/v1/plan")
[ "$rejcode" != 200 ] || {
	echo 'verify: disabled strategy "blocks" was served instead of rejected' >&2
	exit 1
}
grep -q 'not enabled' "$smokedir/rejresp"

kill -TERM "$daemon_pid"
wait "$daemon_pid"
daemon_pid=

echo '== smoke: 3-replica cluster peer-fills, one search fleet-wide =='
# Three daemons on ephemeral ports, each handed the same three @portfile
# peer specs (its own included; the ring dedups) — boot order does not
# matter, each polls until every portfile exists. The same key is then
# asked of every replica: responses must be byte-identical everywhere,
# and the drain lines must show exactly one search across the fleet.
cdir="$smokedir/cluster"
mkdir "$cdir"
cluster_peers="@$cdir/p1,@$cdir/p2,@$cdir/p3"
for i in 1 2 3; do
	"$smokedir/looppartd" -addr 127.0.0.1:0 -portfile "$cdir/p$i" \
		-peers "$cluster_peers" -reqlog '' >"$cdir/d$i.log" &
	cluster_pids="$cluster_pids $!"
done
for i in 1 2 3; do
	j=0
	while [ ! -s "$cdir/p$i" ]; do
		j=$((j + 1))
		if [ "$j" -gt 100 ]; then
			echo "verify: cluster replica $i never wrote its portfile" >&2
			cat "$cdir"/d*.log >&2
			exit 1
		fi
		sleep 0.1
	done
done

clusterreq='{"source":"doall (i, 1, 96)\n doall (j, 1, 96)\n  A[i,j] = B[i,j] + B[i+3,j+1]\n enddoall\nenddoall","procs":12,"strategy":"rect"}'
for i in 1 2 3; do
	caddr=$(cat "$cdir/p$i")
	curl -sf -D "$cdir/hdr$i" -o "$cdir/resp$i" \
		-H 'Content-Type: application/json' --data "$clusterreq" "http://$caddr/v1/plan"
done
# Byte-identity across the fleet: every replica serves the owner's bytes.
cmp "$cdir/resp1" "$cdir/resp2"
cmp "$cdir/resp1" "$cdir/resp3"
# Every response came from the clustering paths: the owner's search
# (miss), a peer fill (peer), or a local hit after the owner searched
# on a fill's behalf (hit).
for i in 1 2 3; do
	grep -qiE '^x-plancache: (miss|peer|hit)' "$cdir/hdr$i" || {
		echo "verify: replica $i served an unexpected X-Plancache status" >&2
		cat "$cdir/hdr$i" >&2
		exit 1
	}
done
grep -qi '^x-plancache: peer' "$cdir"/hdr1 "$cdir"/hdr2 "$cdir"/hdr3 || {
	echo 'verify: no replica served a peer fill' >&2
	exit 1
}

# Clean SIGTERM drain for each replica, then the fleet-wide invariant:
# the three drain lines sum to exactly one search.
for p in $cluster_pids; do kill -TERM "$p"; done
for p in $cluster_pids; do wait "$p"; done
cluster_pids=
fleet_searches=$(grep -ho '[0-9]* searches' "$cdir"/d*.log | awk '{s += $1} END {print s}')
[ "$fleet_searches" = 1 ] || {
	echo "verify: fleet searched $fleet_searches times for one key, want 1" >&2
	cat "$cdir"/d*.log >&2
	exit 1
}

echo 'verify: OK'
