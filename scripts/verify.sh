#!/bin/sh
# Full verification: vet + build + race-enabled tests + an end-to-end
# smoke run that checks the telemetry exports are well-formed.
# Run from the repository root (or via `make verify`).
set -eu

cd "$(dirname "$0")/.."

echo '== go vet =='
go vet ./...

echo '== go build =='
go build ./...

echo '== go test -race =='
go test -race ./...

echo '== smoke: looppart -trace/-metrics on example8 =='
trace=$(mktemp /tmp/looppart-trace.XXXXXX.json)
metrics=$(mktemp /tmp/looppart-metrics.XXXXXX.json)
trap 'rm -f "$trace" "$metrics"' EXIT

go run ./cmd/looppart -procs 16 -trace "$trace" -metrics "$metrics" example8 >/dev/null

# The trace must be a JSON array of Chrome trace events (ph/ts fields);
# the metrics dump must be a JSON object with a counters section.
go run ./scripts/checktrace "$trace" "$metrics"

echo 'verify: OK'
