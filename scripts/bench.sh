#!/bin/sh
# Regenerate BENCH_PARTITION.json: run the search-layer, simulator, and
# serving-layer benchmarks and merge them against the recorded
# pre-optimization baseline (scripts/.bench_baseline_raw.txt: search/sim
# rows captured before the parallel/pruned search engine and cachesim
# interning landed; ServePlanMiss/ServePlanHit captured before the
# closed-form fast path and zero-alloc miss pipeline). ServeBatch,
# ServePlanMissClosedForm, CommSetsAnalyze, MsgexecRun, and LowerBound
# are current-only: they have no pre-optimization capture.
#
# Before rewriting the record, the fresh run is guarded against the
# checked-in BENCH_PARTITION.json: any benchmark that got more than 25%
# slower (ns/op) fails the script non-zero, so a performance regression
# cannot silently replace the record. GUARD=0 skips the guard (verify.sh's
# BENCHTIME=10x smoke is deliberately short and noisy).
#
#   scripts/bench.sh                  # full run, rewrites BENCH_PARTITION.json
#   OUT=/tmp/b.json scripts/bench.sh  # write elsewhere (verify smoke)
#   BENCHTIME=10x scripts/bench.sh    # quicker, noisier
#   GUARD=0 scripts/bench.sh          # skip the regression guard
set -eu
cd "$(dirname "$0")/.."

OUT="${OUT:-BENCH_PARTITION.json}"
BENCHTIME="${BENCHTIME:-1s}"
GUARD="${GUARD:-1}"
RAW=$(mktemp /tmp/looppart-benchraw.XXXXXX)
trap 'rm -f "$RAW"' EXIT

# BenchmarkServePlanMiss also matches BenchmarkServePlanMissClosedForm
# (regex substring), listed explicitly anyway so the suite reads complete.
go test -run '^$' -bench 'BenchmarkRectSearch|BenchmarkSkewSearch|BenchmarkCachesimReplay|BenchmarkServePlanMiss|BenchmarkServePlanMissClosedForm|BenchmarkServePlanHit|BenchmarkServePlanPeerFill|BenchmarkServeBatch|BenchmarkCommSetsAnalyze|BenchmarkMsgexecRun|BenchmarkLowerBound' \
	-benchmem -benchtime "$BENCHTIME" . > "$RAW"
cat "$RAW"

if [ "$GUARD" != 0 ] && [ -f BENCH_PARTITION.json ]; then
	go run ./scripts/benchjson -against BENCH_PARTITION.json -current "$RAW"
	# The serving fast path is held to a tighter bar: the cold-plan miss
	# pipeline (including the closed-form path — the ServePlanMiss prefix
	# covers ServePlanMissClosedForm) and the decoded-hit path must stay
	# within 5% of the record.
	go run ./scripts/benchjson -against BENCH_PARTITION.json -current "$RAW" \
		-only ServePlanHit,ServePlanMiss -threshold 5
fi

go run ./scripts/benchjson \
	-baseline scripts/.bench_baseline_raw.txt \
	-current "$RAW" \
	-out "$OUT"
go run ./scripts/benchjson -validate "$OUT"
