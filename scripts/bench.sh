#!/bin/sh
# Regenerate BENCH_PARTITION.json: run the search-layer, simulator, and
# serving-layer benchmarks and merge them against the recorded
# pre-optimization baseline (scripts/.bench_baseline_raw.txt, captured at
# the commit before the parallel/pruned search engine and cachesim
# interning landed). The Serve* rows are current-only: the serving layer
# postdates the baseline.
#
#   scripts/bench.sh                  # full run, rewrites BENCH_PARTITION.json
#   OUT=/tmp/b.json scripts/bench.sh  # write elsewhere (verify smoke)
#   BENCHTIME=10x scripts/bench.sh    # quicker, noisier
set -eu
cd "$(dirname "$0")/.."

OUT="${OUT:-BENCH_PARTITION.json}"
BENCHTIME="${BENCHTIME:-1s}"
RAW=$(mktemp /tmp/looppart-benchraw.XXXXXX)
trap 'rm -f "$RAW"' EXIT

go test -run '^$' -bench 'BenchmarkRectSearch|BenchmarkSkewSearch|BenchmarkCachesimReplay|BenchmarkServePlanMiss|BenchmarkServePlanHit|BenchmarkServeBatch' \
	-benchmem -benchtime "$BENCHTIME" . > "$RAW"
cat "$RAW"

go run ./scripts/benchjson \
	-baseline scripts/.bench_baseline_raw.txt \
	-current "$RAW" \
	-out "$OUT"
go run ./scripts/benchjson -validate "$OUT"
