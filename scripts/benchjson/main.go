// Command benchjson turns `go test -bench` output into the checked-in
// BENCH_PARTITION.json performance record: a baseline column (captured
// before an optimization lands), a current column, and the derived
// speedup/allocation ratios. scripts/bench.sh drives it; scripts/verify.sh
// runs it in -validate mode to keep the record well-formed.
//
// Usage:
//
//	benchjson -baseline raw.txt -current raw.txt -out BENCH_PARTITION.json
//	benchjson -validate BENCH_PARTITION.json
//	benchjson -against BENCH_PARTITION.json -current raw.txt
//
// -against is the regression guard: every benchmark present in both the
// fresh run and the recorded report must stay within -threshold percent
// (default 25) of the recorded ns/op, or benchjson exits non-zero.
// scripts/bench.sh runs it before overwriting the record (skip with
// GUARD=0 for deliberately short, noisy runs). -only restricts the guard
// to a comma-separated list of benchmark name prefixes, so a hot path
// can be held to a tighter threshold than the suite at large (bench.sh
// guards the ServePlan fast path at 5%).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Row is one benchmark measurement.
type Row struct {
	NsOp     float64 `json:"ns_op"`
	BytesOp  int64   `json:"b_op"`
	AllocsOp int64   `json:"allocs_op"`
}

// Entry pairs the baseline and current measurements of one benchmark.
type Entry struct {
	Baseline *Row `json:"baseline,omitempty"`
	Current  *Row `json:"current,omitempty"`
	// Speedup is baseline ns/op over current ns/op (>1 = faster now).
	Speedup float64 `json:"speedup,omitempty"`
	// AllocRatio is current allocs/op over baseline allocs/op (<1 =
	// fewer allocations now).
	AllocRatio float64 `json:"alloc_ratio,omitempty"`
}

// Report is the whole file.
type Report struct {
	Note       string            `json:"note"`
	CPU        string            `json:"cpu,omitempty"`
	Benchmarks map[string]*Entry `json:"benchmarks"`
}

func main() {
	baseline := flag.String("baseline", "", "raw `go test -bench` output captured before the change")
	current := flag.String("current", "", "raw `go test -bench` output for the working tree")
	out := flag.String("out", "", "write the merged JSON report here")
	validate := flag.String("validate", "", "validate an existing report instead of building one")
	against := flag.String("against", "", "guard: fail if -current regresses vs this recorded report")
	threshold := flag.Float64("threshold", 25, "max tolerated ns/op regression for -against, in percent")
	only := flag.String("only", "", "restrict -against to benchmarks matching these comma-separated name prefixes")
	flag.Parse()

	if *against != "" {
		if *current == "" {
			fmt.Fprintln(os.Stderr, "benchjson: -against needs -current")
			os.Exit(2)
		}
		rows, _, err := parseBench(*current)
		if err != nil {
			fatal(err)
		}
		if *only != "" {
			rows = filterRows(rows, strings.Split(*only, ","))
		}
		regressions, err := guardAgainst(*against, rows, *threshold)
		if err != nil {
			fatal(err)
		}
		for _, r := range regressions {
			fmt.Fprintln(os.Stderr, "benchjson: REGRESSION:", r)
		}
		if len(regressions) > 0 {
			os.Exit(1)
		}
		fmt.Printf("benchjson: no >%g%% regressions vs %s\n", *threshold, *against)
		return
	}
	if *validate != "" {
		if err := validateReport(*validate); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("benchjson: %s OK\n", *validate)
		return
	}
	if *current == "" || *out == "" {
		fmt.Fprintln(os.Stderr, "benchjson: need -current and -out (or -validate)")
		os.Exit(2)
	}

	rep := &Report{
		Note:       "Search, simulator & serving benchmarks (bench_test.go). baseline: search/sim rows before the parallel/pruned search engine and cachesim interning; ServePlanMiss/ServePlanHit before the closed-form fast path and zero-alloc miss pipeline. current: working tree. ServeBatch and ServePlanMissClosedForm are current-only. Regenerate with scripts/bench.sh.",
		Benchmarks: map[string]*Entry{},
	}
	if *baseline != "" {
		rows, cpu, err := parseBench(*baseline)
		if err != nil {
			fatal(err)
		}
		rep.CPU = cpu
		for name, r := range rows {
			rr := r
			rep.Benchmarks[name] = &Entry{Baseline: &rr}
		}
	}
	rows, cpu, err := parseBench(*current)
	if err != nil {
		fatal(err)
	}
	if rep.CPU == "" {
		rep.CPU = cpu
	}
	for name, r := range rows {
		e := rep.Benchmarks[name]
		if e == nil {
			e = &Entry{}
			rep.Benchmarks[name] = e
		}
		rr := r
		e.Current = &rr
		if e.Baseline != nil && rr.NsOp > 0 {
			e.Speedup = round2(e.Baseline.NsOp / rr.NsOp)
			if e.Baseline.AllocsOp > 0 {
				e.AllocRatio = round2(float64(rr.AllocsOp) / float64(e.Baseline.AllocsOp))
			}
		}
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fatal(err)
	}
	var names []string
	for n := range rep.Benchmarks {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		e := rep.Benchmarks[n]
		if e.Baseline != nil && e.Current != nil {
			fmt.Printf("%-28s %10.0f -> %10.0f ns/op  (%.2fx, allocs %.2fx)\n",
				n, e.Baseline.NsOp, e.Current.NsOp, e.Speedup, e.AllocRatio)
		}
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
	os.Exit(1)
}

func round2(v float64) float64 {
	return float64(int64(v*100+0.5)) / 100
}

// parseBench extracts Benchmark lines from `go test -bench -benchmem`
// output. The trailing -N GOMAXPROCS suffix is stripped from names.
func parseBench(path string) (map[string]Row, string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, "", err
	}
	defer f.Close()
	rows := map[string]Row{}
	cpu := ""
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		if rest, ok := strings.CutPrefix(line, "cpu: "); ok {
			cpu = rest
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 {
			continue
		}
		name := strings.TrimPrefix(fields[0], "Benchmark")
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		var row Row
		seen := false
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				row.NsOp = v
				seen = true
			case "B/op":
				row.BytesOp = int64(v)
			case "allocs/op":
				row.AllocsOp = int64(v)
			}
		}
		if seen {
			rows[name] = row
		}
	}
	if err := sc.Err(); err != nil {
		return nil, "", err
	}
	if len(rows) == 0 {
		return nil, "", fmt.Errorf("%s: no benchmark lines found", path)
	}
	return rows, cpu, nil
}

// filterRows keeps the rows whose name starts with one of the prefixes
// (the -only flag). An unmatched prefix surfaces as the guard's
// no-overlap error, not a silent pass.
func filterRows(rows map[string]Row, prefixes []string) map[string]Row {
	out := map[string]Row{}
	for name, r := range rows {
		for _, p := range prefixes {
			if p != "" && strings.HasPrefix(name, strings.TrimSpace(p)) {
				out[name] = r
				break
			}
		}
	}
	return out
}

// guardAgainst compares a fresh run's rows with the recorded report's
// current column and returns one message per benchmark whose ns/op grew
// by more than threshold percent. Benchmarks only on one side are
// ignored (rows come and go as the suite evolves); a fresh run that
// shares no row with the record is an error, not a pass.
func guardAgainst(recordPath string, rows map[string]Row, threshold float64) ([]string, error) {
	buf, err := os.ReadFile(recordPath)
	if err != nil {
		return nil, err
	}
	var rep Report
	if err := json.Unmarshal(buf, &rep); err != nil {
		return nil, fmt.Errorf("%s: %v", recordPath, err)
	}
	var regressions []string
	compared := 0
	var names []string
	for n := range rows {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, name := range names {
		e := rep.Benchmarks[name]
		if e == nil || e.Current == nil || e.Current.NsOp <= 0 {
			continue
		}
		compared++
		got := rows[name].NsOp
		limit := e.Current.NsOp * (1 + threshold/100)
		if got > limit {
			regressions = append(regressions, fmt.Sprintf(
				"%s: %.0f ns/op vs recorded %.0f (+%.0f%%, limit +%g%%)",
				name, got, e.Current.NsOp, 100*(got/e.Current.NsOp-1), threshold))
		}
	}
	if compared == 0 {
		return nil, fmt.Errorf("%s: no benchmark overlaps the fresh run", recordPath)
	}
	return regressions, nil
}

// validateReport checks the checked-in record is well-formed: the search
// and simulator benchmarks are present with positive measurements, and
// every derived ratio matches its columns.
func validateReport(path string) error {
	buf, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var rep Report
	if err := json.Unmarshal(buf, &rep); err != nil {
		return fmt.Errorf("%s: %v", path, err)
	}
	required := []string{
		"RectSearch/P=16", "RectSearch/P=64", "RectSearch/P=256",
		"SkewSearch/P=16", "SkewSearch/P=64", "SkewSearch/P=256",
		"CachesimReplay",
		// Promoted from current-only when the closed-form fast path and
		// zero-allocation miss pipeline landed: the pre-optimization serve
		// numbers are the recorded baseline.
		"ServePlanMiss", "ServePlanHit",
	}
	for _, name := range required {
		e := rep.Benchmarks[name]
		if e == nil {
			return fmt.Errorf("%s: missing benchmark %q", path, name)
		}
		for col, r := range map[string]*Row{"baseline": e.Baseline, "current": e.Current} {
			if r == nil {
				return fmt.Errorf("%s: %s lacks a %s row", path, name, col)
			}
			if r.NsOp <= 0 || r.AllocsOp < 0 || r.BytesOp < 0 {
				return fmt.Errorf("%s: %s %s row has non-positive measurements: %+v", path, name, col, *r)
			}
		}
		if e.Speedup <= 0 {
			return fmt.Errorf("%s: %s has no speedup ratio", path, name)
		}
		want := e.Baseline.NsOp / e.Current.NsOp
		if e.Speedup < want*0.9 || e.Speedup > want*1.1 {
			return fmt.Errorf("%s: %s speedup %.2f inconsistent with columns (%.2f)", path, name, e.Speedup, want)
		}
	}
	// These serving-layer rows have no pre-optimization capture, so only a
	// current column is required.
	servingRequired := []string{"ServeBatch", "ServePlanMissClosedForm"}
	for _, name := range servingRequired {
		e := rep.Benchmarks[name]
		if e == nil {
			return fmt.Errorf("%s: missing serving benchmark %q", path, name)
		}
		if e.Current == nil {
			return fmt.Errorf("%s: %s lacks a current row", path, name)
		}
		if e.Current.NsOp <= 0 || e.Current.AllocsOp < 0 || e.Current.BytesOp < 0 {
			return fmt.Errorf("%s: %s current row has non-positive measurements: %+v", path, name, *e.Current)
		}
	}
	return nil
}
