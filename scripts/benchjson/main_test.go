package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeRecord(t *testing.T, rep *Report) string {
	t.Helper()
	buf, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "record.json")
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestGuardAgainst(t *testing.T) {
	record := writeRecord(t, &Report{Benchmarks: map[string]*Entry{
		"RectSearch/P=16": {Current: &Row{NsOp: 1000}},
		"CachesimReplay":  {Current: &Row{NsOp: 400}},
		"Retired":         {Current: &Row{NsOp: 50}},
	}})

	// Within 25%: a 20% slowdown and a speedup both pass; rows on only
	// one side are ignored.
	fresh := map[string]Row{
		"RectSearch/P=16": {NsOp: 1200},
		"CachesimReplay":  {NsOp: 300},
		"BrandNew":        {NsOp: 9999},
	}
	regressions, err := guardAgainst(record, fresh, 25)
	if err != nil {
		t.Fatal(err)
	}
	if len(regressions) != 0 {
		t.Errorf("guard flagged within-threshold run: %v", regressions)
	}

	// Past 25%: flagged, and the message names the row and magnitudes.
	fresh["RectSearch/P=16"] = Row{NsOp: 1300}
	regressions, err = guardAgainst(record, fresh, 25)
	if err != nil {
		t.Fatal(err)
	}
	if len(regressions) != 1 {
		t.Fatalf("regressions = %v, want exactly one", regressions)
	}
	for _, want := range []string{"RectSearch/P=16", "1300", "1000"} {
		if !strings.Contains(regressions[0], want) {
			t.Errorf("regression message %q lacks %q", regressions[0], want)
		}
	}

	// Only slowdowns count: tightening the threshold still flags just the
	// slow row, never the CachesimReplay speedup.
	regressions, err = guardAgainst(record, fresh, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(regressions) != 1 {
		t.Errorf("threshold 5%%: regressions = %v, want the one slowdown", regressions)
	}
}

func TestFilterRows(t *testing.T) {
	rows := map[string]Row{
		"ServePlanHit":    {NsOp: 100},
		"ServePlanMiss":   {NsOp: 200},
		"ServeBatch":      {NsOp: 300},
		"RectSearch/P=16": {NsOp: 400},
	}
	got := filterRows(rows, []string{"ServePlanHit", " ServePlanMiss"})
	if len(got) != 2 {
		t.Fatalf("filtered rows = %v, want the two ServePlan rows", got)
	}
	for _, name := range []string{"ServePlanHit", "ServePlanMiss"} {
		if _, ok := got[name]; !ok {
			t.Errorf("filter dropped %s", name)
		}
	}
	// A prefix matching nothing leaves the guard's no-overlap error to
	// fire rather than silently passing.
	if got := filterRows(rows, []string{"Nope"}); len(got) != 0 {
		t.Errorf("unmatched prefix kept rows: %v", got)
	}
}

func TestGuardAgainstNoOverlap(t *testing.T) {
	record := writeRecord(t, &Report{Benchmarks: map[string]*Entry{
		"RectSearch/P=16": {Current: &Row{NsOp: 1000}},
	}})
	_, err := guardAgainst(record, map[string]Row{"Other": {NsOp: 1}}, 25)
	if err == nil {
		t.Fatal("disjoint run passed the guard")
	}
}

func TestGuardAgainstBadRecord(t *testing.T) {
	path := filepath.Join(t.TempDir(), "broken.json")
	if err := os.WriteFile(path, []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := guardAgainst(path, map[string]Row{"X": {NsOp: 1}}, 25); err == nil {
		t.Fatal("unparseable record passed the guard")
	}
	if _, err := guardAgainst(filepath.Join(t.TempDir(), "absent.json"), nil, 25); err == nil {
		t.Fatal("missing record passed the guard")
	}
}

func TestParseBench(t *testing.T) {
	raw := filepath.Join(t.TempDir(), "raw.txt")
	content := `goos: linux
cpu: Test CPU @ 2.0GHz
BenchmarkRectSearch/P=16-8   	     100	     12345 ns/op	    2048 B/op	      31 allocs/op
BenchmarkCachesimReplay-8    	      50	    400.5 ns/op
some unrelated line
`
	if err := os.WriteFile(raw, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	rows, cpu, err := parseBench(raw)
	if err != nil {
		t.Fatal(err)
	}
	if cpu != "Test CPU @ 2.0GHz" {
		t.Errorf("cpu = %q", cpu)
	}
	if r := rows["RectSearch/P=16"]; r.NsOp != 12345 || r.BytesOp != 2048 || r.AllocsOp != 31 {
		t.Errorf("RectSearch row = %+v", r)
	}
	if r := rows["CachesimReplay"]; r.NsOp != 400.5 {
		t.Errorf("CachesimReplay row = %+v", r)
	}
	if _, _, err := parseBench(filepath.Join(t.TempDir(), "absent.txt")); err == nil {
		t.Error("missing raw file parsed")
	}
}
