// Command checktrace validates the telemetry export files produced by the
// CLIs: the Chrome trace must be a non-empty JSON array of trace events
// carrying ph/ts fields, and the metrics dump must be a JSON object with a
// counters section. Used by scripts/verify.sh.
package main

import (
	"encoding/json"
	"fmt"
	"os"
)

func main() {
	if len(os.Args) != 3 {
		fmt.Fprintln(os.Stderr, "usage: checktrace TRACE.json METRICS.json")
		os.Exit(2)
	}
	if err := checkTrace(os.Args[1]); err != nil {
		fmt.Fprintln(os.Stderr, "checktrace:", err)
		os.Exit(1)
	}
	if err := checkMetrics(os.Args[2]); err != nil {
		fmt.Fprintln(os.Stderr, "checktrace:", err)
		os.Exit(1)
	}
	fmt.Println("trace and metrics files are well-formed")
}

func checkTrace(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var events []map[string]any
	if err := json.Unmarshal(data, &events); err != nil {
		return fmt.Errorf("%s: not a JSON array of events: %v", path, err)
	}
	if len(events) == 0 {
		return fmt.Errorf("%s: trace is empty", path)
	}
	phases := map[string]bool{}
	for i, ev := range events {
		ph, ok := ev["ph"].(string)
		if !ok || ph == "" {
			return fmt.Errorf("%s: event %d has no ph field", path, i)
		}
		phases[ph] = true
		if _, ok := ev["ts"]; !ok {
			return fmt.Errorf("%s: event %d has no ts field", path, i)
		}
	}
	if !phases["X"] {
		return fmt.Errorf("%s: no complete (ph=X) span events", path)
	}
	return nil
}

func checkMetrics(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var snap struct {
		Counters map[string]int64 `json:"counters"`
	}
	if err := json.Unmarshal(data, &snap); err != nil {
		return fmt.Errorf("%s: not a JSON metrics dump: %v", path, err)
	}
	if len(snap.Counters) == 0 {
		return fmt.Errorf("%s: no counters recorded", path)
	}
	return nil
}
