package looppart

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"looppart/internal/paperex"
	"looppart/internal/partition"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden strategy outputs")

// goldenStrategies are the legacy search strategies pinned byte-for-byte
// across the Strategy-plugin refactor. Auto rides along because it
// delegates to comm-free and rect and must keep resolving identically.
var goldenStrategies = []Strategy{Auto, Rect, Skewed, CommFree}

var goldenProcs = []int{4, 16}

// goldenParams bind the symbolic examples. Small extents keep the full
// example × strategy × procs × pool-size sweep fast; determinism pinning
// does not need large iteration spaces.
var goldenParams = map[string]int64{"N": 24, "T": 2}

// goldenPoolSizes are the forced search-worker pool sizes every plan must
// agree across (0 = GOMAXPROCS).
var goldenPoolSizes = []int{1, 4, 0}

const goldenFile = "testdata/golden_strategies.txt"

// goldenSkip reports combinations excluded from the sweep: the
// exhaustive skew enumeration on 3-D parallel nests takes minutes per
// combo (maxSkew 3 over 3×3 unimodular candidates), far too slow for a
// unit test. Skewed stays pinned on every 2-D nest.
func goldenSkip(name string, strategy Strategy) bool {
	if strategy != Skewed {
		return false
	}
	prog, err := Parse(paperex.All[name], goldenParams)
	if err != nil {
		return false
	}
	return len(prog.Nest.DoallLoops()) > 2
}

// goldenCombos renders one deterministic record per (example, strategy,
// procs): the plan's rendering (or the exact error text) plus the
// canonical service JSON served for the same request. The fresh Service
// per call keeps every record a true cache miss.
func goldenCombos(t *testing.T) string {
	t.Helper()
	names := make([]string, 0, len(paperex.All))
	for name := range paperex.All {
		names = append(names, name)
	}
	sort.Strings(names)

	var b strings.Builder
	for _, name := range names {
		for _, strategy := range goldenStrategies {
			if goldenSkip(name, strategy) {
				continue
			}
			for _, procs := range goldenProcs {
				fmt.Fprintf(&b, "=== %s strategy=%s procs=%d ===\n", name, strategy, procs)
				prog, err := Parse(paperex.All[name], goldenParams)
				if err != nil {
					fmt.Fprintf(&b, "parse error: %v\n", err)
					continue
				}
				plan, err := prog.Partition(procs, strategy)
				if err != nil {
					fmt.Fprintf(&b, "error: %v\n", err)
				} else {
					fmt.Fprintf(&b, "plan: %s\n", plan)
				}
				svc := NewService(ServiceOptions{})
				resp, err := svc.Plan(context.Background(), PlanRequest{
					Source:   paperex.All[name],
					Params:   goldenParams,
					Procs:    procs,
					Strategy: strategy.String(),
				})
				if err != nil {
					fmt.Fprintf(&b, "service error: %v\n", err)
				} else {
					fmt.Fprintf(&b, "key: %s\njson: %s\n", resp.Key, resp.Raw)
				}
			}
		}
	}
	return b.String()
}

// TestGoldenStrategyByteIdentity pins every seed nest's plan rendering,
// cache key, and canonical service JSON for the legacy strategies. The
// golden file was generated before the Strategy-plugin refactor;
// regenerate with `go test -run TestGoldenStrategyByteIdentity -update`
// only for a deliberate output change.
func TestGoldenStrategyByteIdentity(t *testing.T) {
	got := goldenCombos(t)
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(goldenFile), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenFile, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", goldenFile, len(got))
		return
	}
	want, err := os.ReadFile(goldenFile)
	if err != nil {
		t.Fatalf("read golden (regenerate with -update): %v", err)
	}
	if got != string(want) {
		diffLine := 0
		gl, wl := strings.Split(got, "\n"), strings.Split(string(want), "\n")
		for i := 0; i < len(gl) && i < len(wl); i++ {
			if gl[i] != wl[i] {
				diffLine = i
				break
			}
		}
		t.Fatalf("strategy output diverged from golden at line %d:\n got: %q\nwant: %q",
			diffLine+1, line(gl, diffLine), line(wl, diffLine))
	}
}

func line(ls []string, i int) string {
	if i < len(ls) {
		return ls[i]
	}
	return "<eof>"
}

// TestGoldenStrategyPoolSizeInvariance re-runs every golden combination
// at forced worker-pool sizes 1, 4, and GOMAXPROCS: the plan rendering
// must be identical at every size (the engine's deterministic fold).
func TestGoldenStrategyPoolSizeInvariance(t *testing.T) {
	names := make([]string, 0, len(paperex.All))
	for name := range paperex.All {
		names = append(names, name)
	}
	sort.Strings(names)

	type combo struct {
		name     string
		strategy Strategy
		procs    int
	}
	render := func(c combo) string {
		prog, err := Parse(paperex.All[c.name], goldenParams)
		if err != nil {
			return "parse error: " + err.Error()
		}
		plan, err := prog.Partition(c.procs, c.strategy)
		if err != nil {
			return "error: " + err.Error()
		}
		return plan.String()
	}

	for _, name := range names {
		for _, strategy := range goldenStrategies {
			if goldenSkip(name, strategy) {
				continue
			}
			for _, procs := range goldenProcs {
				c := combo{name, strategy, procs}
				var base string
				for i, pool := range goldenPoolSizes {
					prev := partition.SetSearchWorkers(pool)
					out := render(c)
					partition.SetSearchWorkers(prev)
					if i == 0 {
						base = out
						continue
					}
					if out != base {
						t.Fatalf("%s %s procs=%d: pool size %d diverged:\n got: %q\nwant: %q",
							name, strategy, procs, pool, out, base)
					}
				}
			}
		}
	}
}
