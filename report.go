package looppart

import (
	"fmt"
	"strings"

	"looppart/internal/partition"
	"looppart/internal/tile"
)

// Report summarizes the reference analysis of a program in the paper's
// vocabulary: one entry per uniformly intersecting class with its G
// matrix, offsets, spread vectors, and Theorem 4 coefficients.
type Report struct {
	Vars    []string
	Classes []ClassReport
	// RectCoeffs are the summed per-dimension traffic coefficients; the
	// optimal rectangular extents are proportional to them (when a
	// closed form exists).
	RectCoeffs []float64
	HasClosed  bool
	// DataCoeffs are the a⁺-based coefficients for data partitioning on
	// local-memory machines (footnote 2); they dominate RectCoeffs.
	DataCoeffs    []float64
	HasClosedData bool
	CommFreeDirs  [][]int64
}

// ClassReport describes one uniformly intersecting class.
type ClassReport struct {
	Array            string
	G                string
	Offsets          [][]int64
	Spread           []int64
	CumulativeSpread []int64
	// Coeffs is the |u| decomposition of the spread over the reduced G
	// rows (empty when no closed form applies).
	Coeffs []float64
	// Invariant reports a shape-invariant footprint (excluded from
	// optimization, Example 8's array A).
	Invariant bool
	HasWrite  bool
}

// Report computes the analysis summary.
func (pr *Program) Report() Report {
	a := pr.Analysis
	r := Report{Vars: a.Vars}
	for _, c := range a.Classes {
		cr := ClassReport{
			Array:            c.Array,
			G:                c.G.String(),
			Spread:           c.Spread(),
			CumulativeSpread: c.CumulativeSpread(),
			Invariant:        c.FootprintInvariant(),
			HasWrite:         c.HasWrite(),
		}
		for _, ref := range c.Refs {
			cr.Offsets = append(cr.Offsets, ref.A)
		}
		if u, _, ok := c.SpreadCoeffs(); ok {
			cr.Coeffs = u
		}
		r.Classes = append(r.Classes, cr)
	}
	r.RectCoeffs, r.HasClosed = partition.ContinuousRatios(a)
	r.DataCoeffs, r.HasClosedData = partition.ContinuousRatiosData(a)
	r.CommFreeDirs = partition.CommFreeNormals(a, true)
	return r
}

// String renders the report for the CLI.
func (r Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "doall variables: %s\n", strings.Join(r.Vars, ", "))
	fmt.Fprintf(&b, "uniformly intersecting classes: %d\n", len(r.Classes))
	for i, c := range r.Classes {
		fmt.Fprintf(&b, "  class %d: array %s, %d refs, G=%s\n", i+1, c.Array, len(c.Offsets), c.G)
		fmt.Fprintf(&b, "    offsets: %v\n", c.Offsets)
		fmt.Fprintf(&b, "    spread â=%v  cumulative a+=%v\n", c.Spread, c.CumulativeSpread)
		switch {
		case c.Invariant:
			fmt.Fprintf(&b, "    footprint is shape-invariant (excluded from optimization)\n")
		case len(c.Coeffs) > 0:
			fmt.Fprintf(&b, "    Theorem 4 coefficients |u| = %v\n", c.Coeffs)
		default:
			fmt.Fprintf(&b, "    no closed form; enumeration fallback\n")
		}
	}
	if r.HasClosed {
		fmt.Fprintf(&b, "optimal rect extents proportional to %v\n", r.RectCoeffs)
	}
	if r.HasClosedData {
		fmt.Fprintf(&b, "data-partitioning (a+) extents proportional to %v\n", r.DataCoeffs)
	}
	if len(r.CommFreeDirs) > 0 {
		fmt.Fprintf(&b, "communication-free normals: %v\n", r.CommFreeDirs)
	} else {
		fmt.Fprintf(&b, "no communication-free partition exists\n")
	}
	return b.String()
}

// Space returns the doall iteration-space bounds of the program.
func (pr *Program) Space() tile.Bounds {
	return tile.BoundsOf(pr.Nest)
}
