package looppart_test

// The paper-reproduction benchmark harness: one benchmark per experiment
// (the paper's worked examples and figures — it publishes no numbered
// tables; see DESIGN.md §2). Each benchmark regenerates its experiment's
// measured rows; run with
//
//	go test -bench=. -benchmem
//
// and compare against EXPERIMENTS.md. Failing claims abort the benchmark.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"looppart"
	"looppart/internal/cluster"
	"looppart/internal/commsets"
	"looppart/internal/experiments"
	"looppart/internal/footprint"
	"looppart/internal/paperex"
	"looppart/internal/partition"
	"looppart/internal/server"
)

func benchExperiment(b *testing.B, run func() experiments.Result) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		r := run()
		if r.Err != nil {
			b.Fatalf("%s errored: %v", r.ID, r.Err)
		}
		if !r.Pass {
			b.Fatalf("%s no longer reproduces the paper:\n%s", r.ID, r)
		}
	}
}

func BenchmarkE1_Example2(b *testing.B)            { benchExperiment(b, experiments.E1) }
func BenchmarkE2_Example3(b *testing.B)            { benchExperiment(b, experiments.E2) }
func BenchmarkE3_Example6(b *testing.B)            { benchExperiment(b, experiments.E3) }
func BenchmarkE4_CumulativeFootprint(b *testing.B) { benchExperiment(b, experiments.E4) }
func BenchmarkE5_Example8(b *testing.B)            { benchExperiment(b, experiments.E5) }
func BenchmarkE6_Doseq(b *testing.B)               { benchExperiment(b, experiments.E6) }
func BenchmarkE7_Example9(b *testing.B)            { benchExperiment(b, experiments.E7) }
func BenchmarkE8_Example10(b *testing.B)           { benchExperiment(b, experiments.E8) }
func BenchmarkE9_LatticeUnion(b *testing.B)        { benchExperiment(b, experiments.E9) }
func BenchmarkE10_CommFree(b *testing.B)           { benchExperiment(b, experiments.E10) }
func BenchmarkE11_MatmulSync(b *testing.B)         { benchExperiment(b, experiments.E11) }
func BenchmarkE12_DataPart(b *testing.B)           { benchExperiment(b, experiments.E12) }
func BenchmarkE13_RankDeficient(b *testing.B)      { benchExperiment(b, experiments.E13) }
func BenchmarkE14_AblationAH(b *testing.B)         { benchExperiment(b, experiments.E14) }

// Pipeline throughput benchmarks: the compile-time cost of the analysis
// itself, which the paper argues is low ("because they deal only with
// index expressions, the algorithms are computationally efficient").

func BenchmarkAnalyzePipeline(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := looppart.Parse(paperex.Example10, map[string]int64{"N": 512}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPartitionRect(b *testing.B) {
	prog := looppart.MustParse(paperex.Example8, map[string]int64{"N": 96})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := prog.Partition(64, looppart.Rect); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPartitionAuto(b *testing.B) {
	prog := looppart.MustParse(paperex.Example2, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := prog.Partition(100, looppart.Auto); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSimulateExample2(b *testing.B) {
	prog := looppart.MustParse(paperex.Example2, nil)
	plan, err := prog.Partition(100, looppart.Columns)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := plan.Simulate(looppart.SimOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExecuteMatmul(b *testing.B) {
	prog := looppart.MustParse(paperex.MatmulSync, map[string]int64{"N": 16})
	plan, err := prog.Partition(4, looppart.Blocks)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := plan.Execute(); err != nil {
			b.Fatal(err)
		}
	}
}

// Search-layer and simulator-layer benchmarks: the partition searches and
// the cache simulator are the hot paths that must scale with processor
// count and problem size. scripts/bench.sh runs these and records the
// trajectory in BENCH_PARTITION.json.

func benchAnalysis(b *testing.B, src string, params map[string]int64) *footprint.Analysis {
	b.Helper()
	prog, err := looppart.Parse(src, params)
	if err != nil {
		b.Fatal(err)
	}
	return prog.Analysis
}

func BenchmarkRectSearch(b *testing.B) {
	a := benchAnalysis(b, paperex.Example8, map[string]int64{"N": 96})
	for _, procs := range []int{16, 64, 256} {
		b.Run(fmt.Sprintf("P=%d", procs), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := partition.OptimizeRect(a, procs); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkSkewSearch(b *testing.B) {
	a := benchAnalysis(b, paperex.Example8, map[string]int64{"N": 24})
	for _, procs := range []int{16, 64, 256} {
		b.Run(fmt.Sprintf("P=%d", procs), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := partition.OptimizeSkew(a, procs, 2); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkCachesimReplay(b *testing.B) {
	prog := looppart.MustParse(paperex.Example2, nil)
	plan, err := prog.Partition(100, looppart.Columns)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := plan.Simulate(looppart.SimOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// benchCommNest is a forward RAW stencil: both references hit the same
// array, so the rect plan has genuine producer→consumer transfer sets.
const benchCommNest = `
doall (i, 1, N)
  doall (j, 1, N)
    A[i, j] = A[i + 1, j] + A[i, j + 2] + 1
  enddoall
enddoall
`

// BenchmarkCommSetsAnalyze measures the exact communication-set
// analysis on a 512×512 nest — a quarter-million iteration points the
// analytic engine never enumerates (box algebra in lattice coefficient
// space only), which is the point of the closed-form path.
func BenchmarkCommSetsAnalyze(b *testing.B) {
	prog := looppart.MustParse(benchCommNest, map[string]int64{"N": 512})
	plan, err := prog.Partition(64, looppart.Rect)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		comm, err := plan.CommSets(commsets.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if comm.TotalWords == 0 {
			b.Fatal("expected communication")
		}
	}
}

// BenchmarkLowerBound measures the Dinh–Demmel communication lower
// bound: per-class lattice offsets once, then a closed-form word count
// per factorization grid — no iteration-space enumeration at any size.
func BenchmarkLowerBound(b *testing.B) {
	a := benchAnalysis(b, benchCommNest, map[string]int64{"N": 512})
	for _, procs := range []int{16, 64, 256} {
		b.Run(fmt.Sprintf("P=%d", procs), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				lb, err := partition.CommLowerBound(a, procs)
				if err != nil {
					b.Fatal(err)
				}
				if lb.Words == 0 {
					b.Fatal("expected a nonzero bound on the RAW stencil")
				}
			}
		})
	}
}

// BenchmarkMsgexecRun measures a full message-passing execution —
// per-processor private stores, bulk-synchronous epochs, exchange of the
// exact transfer sets, and the value check against the sequential run.
func BenchmarkMsgexecRun(b *testing.B) {
	prog := looppart.MustParse(benchCommNest, map[string]int64{"N": 64})
	plan, err := prog.Partition(8, looppart.Rect)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := plan.ExecuteMessagePassing()
		if err != nil {
			b.Fatal(err)
		}
		if !rep.ValuesChecked {
			b.Fatal("value check skipped")
		}
	}
}

func BenchmarkE15_CacheLines(b *testing.B)     { benchExperiment(b, experiments.E15) }
func BenchmarkE16_SmallCache(b *testing.B)     { benchExperiment(b, experiments.E16) }
func BenchmarkE17_SpreadAblation(b *testing.B) { benchExperiment(b, experiments.E17) }

func BenchmarkE18_LineShapes(b *testing.B) { benchExperiment(b, experiments.E18) }

func BenchmarkE19_Placement(b *testing.B) { benchExperiment(b, experiments.E19) }

func BenchmarkE20_ModelAccuracy(b *testing.B) { benchExperiment(b, experiments.E20) }

func BenchmarkE21_VsRuntimeSched(b *testing.B) { benchExperiment(b, experiments.E21) }

// Serving-layer benchmarks: the latency a looppartd client sees on a
// cache miss (full search) versus a cache hit (canonical-key lookup),
// and batch throughput through the HTTP layer. Recorded in
// BENCH_PARTITION.json as current-only rows (the serving layer has no
// pre-optimization baseline).

func BenchmarkServePlanMiss(b *testing.B) {
	req := looppart.PlanRequest{
		Source: paperex.Example8, Params: map[string]int64{"N": 24},
		Procs: 64, Strategy: "skewed",
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		svc := looppart.NewService(looppart.ServiceOptions{})
		if _, err := svc.Plan(context.Background(), req); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServePlanMissClosedForm is the cold-plan latency on a nest
// inside the closed-form domain at high processor count: the analytic
// fast path plus the zero-allocation miss pipeline must hold a cold
// rect plan under a millisecond at P=256.
func BenchmarkServePlanMissClosedForm(b *testing.B) {
	req := looppart.PlanRequest{
		Source: paperex.Example8, Params: map[string]int64{"N": 96},
		Procs: 256, Strategy: "rect",
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		svc := looppart.NewService(looppart.ServiceOptions{})
		if _, err := svc.Plan(context.Background(), req); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkServePlanHit(b *testing.B) {
	req := looppart.PlanRequest{
		Source: paperex.Example8, Params: map[string]int64{"N": 24},
		Procs: 64, Strategy: "skewed",
	}
	svc := looppart.NewService(looppart.ServiceOptions{})
	if _, err := svc.Plan(context.Background(), req); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := svc.Plan(context.Background(), req)
		if err != nil {
			b.Fatal(err)
		}
		if !resp.Hit() {
			b.Fatal("expected a cache hit")
		}
	}
}

// BenchmarkServePlanPeerFill measures a cross-replica miss: a fresh
// replica misses locally, fetches the key owner's canonical bytes over
// HTTP (/v1/peer/plan), validates and admits them. The owner already
// has the plan cached, so this is the pure peer-fill round-trip a warm
// fleet pays on a replica's first contact with a key — the alternative
// to the full search BenchmarkServePlanMiss pays.
func BenchmarkServePlanPeerFill(b *testing.B) {
	req := looppart.PlanRequest{
		Source: paperex.Example8, Params: map[string]int64{"N": 24},
		Procs: 64, Strategy: "skewed",
	}
	owner := looppart.NewService(looppart.ServiceOptions{})
	ts := httptest.NewServer(server.New(server.Config{Service: owner}).Handler())
	defer ts.Close()
	if _, err := owner.Plan(context.Background(), req); err != nil {
		b.Fatal(err)
	}
	// Self is absent from the member list, so every key is peer-owned
	// and every iteration fills. Hedging off: one measured round-trip.
	fill := cluster.New(cluster.Options{
		Self:       "http://bench.invalid",
		Members:    []string{ts.URL},
		HedgeDelay: -1,
	})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		svc := looppart.NewService(looppart.ServiceOptions{PeerFill: fill})
		resp, err := svc.Plan(context.Background(), req)
		if err != nil {
			b.Fatal(err)
		}
		if resp.Status != "peer" {
			b.Fatalf("status %s, want peer", resp.Status)
		}
	}
}

func BenchmarkServeBatch(b *testing.B) {
	svc := looppart.NewService(looppart.ServiceOptions{})
	ts := httptest.NewServer(server.New(server.Config{Service: svc}).Handler())
	defer ts.Close()

	reqs := make([]looppart.PlanRequest, 8)
	for i := range reqs {
		// Two distinct keys per batch; the rest are duplicates that
		// collapse through the cache and singleflight group.
		reqs[i] = looppart.PlanRequest{
			Source: paperex.Example8, Params: map[string]int64{"N": 24},
			Procs: 8 << (i % 2), Strategy: "rect",
		}
	}
	body, err := json.Marshal(struct {
		Requests []looppart.PlanRequest `json:"requests"`
	}{reqs})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := http.Post(ts.URL+"/v1/plan/batch", "application/json", bytes.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("status %d", resp.StatusCode)
		}
	}
}
