package looppart

import (
	"context"
	"testing"

	"looppart/internal/paperex"
)

func serveOne(t *testing.T, svc *Service, req PlanRequest) *PlanResponse {
	t.Helper()
	resp, err := svc.Plan(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestVerifyServedPlan(t *testing.T) {
	svc := NewService(ServiceOptions{})
	for _, tc := range []struct {
		name string
		req  PlanRequest
	}{
		{"rect", PlanRequest{Source: paperex.Example8, Params: map[string]int64{"N": 16}, Procs: 4, Strategy: "rect"}},
		{"comm-free", PlanRequest{Source: "doall (i, 0, 15) doall (j, 0, 15) A[i] = A[i] + B[i, j] enddoall enddoall", Procs: 4, Strategy: "comm-free"}},
		{"skewed", PlanRequest{Source: paperex.Example8, Params: map[string]int64{"N": 12}, Procs: 4, Strategy: "skewed"}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			resp := serveOne(t, svc, tc.req)
			rep := svc.Verify(tc.req, resp.Result)
			if !rep.OK() {
				t.Fatalf("served %s plan fails its own self-check: %v", tc.name, rep)
			}
			if len(rep.Checks) < 3 {
				t.Errorf("verification block looks empty: %d checks", len(rep.Checks))
			}
		})
	}
}

// An intentionally corrupted plan — tile extents that no longer cover the
// space the way the rendered string claims, a wrong processor count, a
// broken slab — must be rejected by Verify.
func TestVerifyRejectsCorruptedPlan(t *testing.T) {
	svc := NewService(ServiceOptions{})
	req := PlanRequest{Source: paperex.Example8, Params: map[string]int64{"N": 16}, Procs: 4, Strategy: "rect"}
	resp := serveOne(t, svc, req)

	cases := []struct {
		name   string
		mutate func(r *PlanResult)
	}{
		{"tampered extents", func(r *PlanResult) { r.TileExtents[0] = r.TileExtents[0] * 3 }},
		{"negative extent", func(r *PlanResult) { r.TileExtents[0] = -1 }},
		{"wrong kind", func(r *PlanResult) { r.Kind = "slab"; r.SlabNormal = nil }},
		{"unknown strategy", func(r *PlanResult) { r.Resolved = "bogus" }},
		{"wrong procs", func(r *PlanResult) { r.Procs = 7 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := *resp.Result
			r.TileExtents = append([]int64(nil), resp.Result.TileExtents...)
			tc.mutate(&r)
			rep := svc.Verify(req, &r)
			if rep.OK() {
				t.Fatalf("corrupted plan (%s) passed verification: %v", tc.name, rep)
			}
		})
	}
}

func TestPlanFromResultRoundTrip(t *testing.T) {
	svc := NewService(ServiceOptions{})
	req := PlanRequest{Source: paperex.Example8, Params: map[string]int64{"N": 16}, Procs: 4, Strategy: "rect"}
	resp := serveOne(t, svc, req)

	prog, err := Parse(req.Source, req.Params)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := prog.PlanFromResult(resp.Result)
	if err != nil {
		t.Fatal(err)
	}
	if got := plan.String(); got != resp.Result.Rendered {
		t.Fatalf("reconstructed plan renders %q, served plan rendered %q", got, resp.Result.Rendered)
	}
	if rep := plan.SelfCheck(); !rep.OK() {
		t.Fatalf("reconstructed plan fails self-check: %v", rep)
	}
}
