.PHONY: build test verify bench

build:
	go build ./...

test:
	go test ./...

# Full check: vet, build, race-enabled tests, and a smoke run validating
# the -trace / -metrics telemetry exports end to end.
verify:
	sh scripts/verify.sh

bench:
	go test -bench=. -benchmem
