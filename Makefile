.PHONY: build test verify bench benchjson

build:
	go build ./...

test:
	go test ./...

# Full check: vet, build, race-enabled tests (including the parallel
# search engine at forced pool sizes and the serving layer's
# singleflight/shedding/shutdown), a bench smoke that re-validates
# BENCH_PARTITION.json, a smoke run validating the -trace / -metrics
# telemetry exports end to end, and a looppartd daemon smoke (serve,
# cache, byte-identical hit, drain).
verify:
	sh scripts/verify.sh

bench:
	go test -bench=. -benchmem

# Regenerate the checked-in BENCH_PARTITION.json performance record.
benchjson:
	sh scripts/bench.sh
