.PHONY: build test verify bench benchjson

build:
	go build ./...

test:
	go test ./...

# Full check: vet, build, race-enabled tests (including the parallel
# search engine at forced pool sizes), a bench smoke that re-validates
# BENCH_PARTITION.json, and a smoke run validating the -trace / -metrics
# telemetry exports end to end.
verify:
	sh scripts/verify.sh

bench:
	go test -bench=. -benchmem

# Regenerate the checked-in BENCH_PARTITION.json performance record.
benchjson:
	sh scripts/bench.sh
