// Package tile implements iteration-space tiles and tilings (§3.2 of the
// paper).
//
// A hyperparallelepiped tile is summarized by the matrix L whose rows are
// the tile's edge vectors (Definition 2: L = Λ(H⁻¹)ᵗ, where the rows of H
// are the bounding hyperplane normals and Λ carries the extents). The tile
// at the origin is {x = Σ aᵢ·Lᵢ, 0 ≤ aᵢ < 1} and the whole partition is the
// set of its integer translates by L's row lattice — homogeneous tiling, so
// specifying the tile at the origin specifies the partition (Figure 4).
//
// Rectangular tiles (H = I, L = Λ) are the common special case; they carry
// exact point counts (Proposition 3) and simple code generation.
package tile

import (
	"fmt"
	"strconv"
	"strings"

	"looppart/internal/intmat"
	"looppart/internal/loopir"
	"looppart/internal/polytope"
	"looppart/internal/rational"
)

// Tile is a hyperparallelepiped loop tile, represented by the integer
// matrix L whose rows are the edge vectors of the tile at the origin.
type Tile struct {
	L intmat.Mat
}

// Rect returns the rectangular tile with the given extents: extents[k] is
// the number of iterations the tile spans in dimension k, so L is the
// diagonal matrix of extents and a tile holds Π extents points.
func Rect(extents ...int64) Tile {
	for _, e := range extents {
		if e <= 0 {
			panic(fmt.Sprintf("tile: non-positive extent %d", e))
		}
	}
	return Tile{L: intmat.Diag(extents...)}
}

// Parallelepiped returns the tile with the given edge-vector matrix.
// L must be square and nonsingular.
func Parallelepiped(l intmat.Mat) Tile {
	if !l.IsNonsingular() {
		panic("tile: L must be square and nonsingular")
	}
	return Tile{L: l}
}

// FromHyperplanes builds L = Λ(H⁻¹)ᵗ from bounding hyperplane normals H
// and extents λ (Definition 2). It returns an error if H is singular or
// the resulting edge vectors are not integral (a non-integral L means the
// requested hyperplane family does not tile the integer lattice exactly;
// callers should scale λ).
func FromHyperplanes(h intmat.Mat, lambda []int64) (Tile, error) {
	if !h.IsSquare() || len(lambda) != h.Rows() {
		return Tile{}, fmt.Errorf("tile: H must be square with one extent per row")
	}
	hinv, ok := h.ToRat().Inverse()
	if !ok {
		return Tile{}, fmt.Errorf("tile: H is singular")
	}
	lam := intmat.Diag(lambda...).ToRat()
	lrat := lam.Mul(hinv.Transpose())
	l := intmat.NewMat(h.Rows(), h.Cols())
	for i := 0; i < h.Rows(); i++ {
		for j := 0; j < h.Cols(); j++ {
			v := lrat.At(i, j)
			if !v.IsInt() {
				return Tile{}, fmt.Errorf("tile: edge vector entry (%d,%d) = %s is not integral", i, j, v)
			}
			l.Set(i, j, v.Int())
		}
	}
	if !l.IsNonsingular() {
		return Tile{}, fmt.Errorf("tile: resulting L is singular")
	}
	return Tile{L: l}, nil
}

// Dim returns the dimensionality of the tile.
func (t Tile) Dim() int { return t.L.Rows() }

// IsRect reports whether the tile is rectangular (L diagonal).
func (t Tile) IsRect() bool {
	for i := 0; i < t.L.Rows(); i++ {
		for j := 0; j < t.L.Cols(); j++ {
			if i != j && t.L.At(i, j) != 0 {
				return false
			}
		}
	}
	return true
}

// Extents returns the diagonal extents of a rectangular tile.
// It panics if the tile is not rectangular.
func (t Tile) Extents() []int64 {
	if !t.IsRect() {
		panic("tile: Extents of non-rectangular tile")
	}
	e := make([]int64, t.Dim())
	for i := range e {
		e[i] = t.L.At(i, i)
	}
	return e
}

// Volume returns |det L|, the (approximate) number of iterations per tile
// (Proposition 2).
func (t Tile) Volume() int64 {
	d := t.L.Det()
	if d < 0 {
		return -d
	}
	return d
}

// PointCount returns the exact number of integer points assigned to the
// tile at the origin under the half-open convention 0 ≤ aᵢ < 1. For
// rectangular tiles this is the volume (Proposition 3 counts the closed
// tile; our half-open tiles partition the space with no double counting).
func (t Tile) PointCount() int64 {
	if t.IsRect() {
		return t.Volume()
	}
	// Every unimodular-coordinate cell of a lattice tiling contains
	// exactly |det L| integer points.
	return t.Volume()
}

// String renders the tile.
func (t Tile) String() string {
	if t.IsRect() {
		parts := make([]string, t.Dim())
		for i, e := range t.Extents() {
			parts[i] = fmt.Sprintf("%d", e)
		}
		return "rect(" + strings.Join(parts, "x") + ")"
	}
	return "parallelepiped" + t.L.String()
}

// Tiling maps iteration points to tiles: tiles are the translates of the
// tile at the origin by the row lattice of L, anchored at the iteration
// space's lower corner.
type Tiling struct {
	Tile   Tile
	Origin []int64       // lower corner of the iteration space
	linv   intmat.RatMat // L⁻¹ cached

	// Integer fast path for Coord: linv == linvNum / linvDen elementwise,
	// with linvNum[j][k] = den·L⁻¹[k][j] (transposed so the inner product
	// over k walks one row). Valid only when intOK — the common case;
	// tiles whose inverse denominators overflow the scaling keep the
	// exact rational path.
	linvNum [][]int64
	linvDen int64
	intOK   bool
}

// NewTiling constructs a tiling anchored at origin.
func NewTiling(t Tile, origin []int64) (*Tiling, error) {
	if len(origin) != t.Dim() {
		return nil, fmt.Errorf("tile: origin has %d coordinates for a %d-D tile", len(origin), t.Dim())
	}
	inv, ok := t.L.ToRat().Inverse()
	if !ok {
		return nil, fmt.Errorf("tile: singular tile matrix")
	}
	tl := &Tiling{Tile: t, Origin: origin, linv: inv}
	tl.initIntInverse()
	return tl, nil
}

// initIntInverse scales L⁻¹ by the LCM of its denominators into one
// integer matrix, enabling Coord to run on int64 multiply-adds and one
// floor division instead of per-entry rational arithmetic. Any overflow
// while scaling leaves intOK false and Coord on the exact rational path.
func (tl *Tiling) initIntInverse() {
	d := tl.Tile.Dim()
	den := int64(1)
	for k := 0; k < d; k++ {
		for j := 0; j < d; j++ {
			ed := tl.linv.At(k, j).Den()
			g := rational.GCD(den, ed)
			nd, ok := mulOK(den/g, ed)
			if !ok {
				return
			}
			den = nd
		}
	}
	num := make([][]int64, d)
	for j := 0; j < d; j++ {
		num[j] = make([]int64, d)
		for k := 0; k < d; k++ {
			e := tl.linv.At(k, j)
			v, ok := mulOK(e.Num(), den/e.Den())
			if !ok {
				return
			}
			num[j][k] = v
		}
	}
	tl.linvNum, tl.linvDen, tl.intOK = num, den, true
}

// Coord returns the tile coordinates of the iteration point p: the floor
// of the lattice coordinates (p − origin)·L⁻¹. Iterations with equal
// coordinates belong to the same tile.
func (tl *Tiling) Coord(p []int64) []int64 {
	return tl.CoordInto(p, make([]int64, tl.Tile.Dim()))
}

// CoordInto is Coord writing into a caller-provided buffer (len = Dim)
// and returning it — the allocation-free form the assignment scan and
// per-point processor lookups run on. Points whose scaled coordinates
// overflow int64 fall back to the exact rational arithmetic.
func (tl *Tiling) CoordInto(p, out []int64) []int64 {
	d := tl.Tile.Dim()
	if len(p) != d {
		panic("tile: point dimension mismatch")
	}
	if tl.intOK && tl.coordInt(p, out) {
		return out
	}
	rel := make([]rational.Rat, d)
	for k := range rel {
		rel[k] = rational.FromInt(p[k] - tl.Origin[k])
	}
	for j := 0; j < d; j++ {
		s := rational.Zero
		for k := 0; k < d; k++ {
			s = s.Add(rel[k].Mul(tl.linv.At(k, j)))
		}
		out[j] = s.Floor()
	}
	return out
}

// coordInt computes the tile coordinates on the scaled integer inverse:
// coord_j = floor(Σ_k (p_k − origin_k)·num[j][k] / den), exactly the
// rational result. Reports false on any intermediate overflow, in which
// case the caller re-runs the rational path.
func (tl *Tiling) coordInt(p, out []int64) bool {
	den := tl.linvDen
	for j := range out {
		row := tl.linvNum[j]
		acc := int64(0)
		for k, nk := range row {
			o := tl.Origin[k]
			rel := p[k] - o
			if (o > 0 && rel > p[k]) || (o < 0 && rel < p[k]) {
				return false
			}
			prod, ok := mulOK(rel, nk)
			if !ok {
				return false
			}
			acc, ok = addOK(acc, prod)
			if !ok {
				return false
			}
		}
		out[j] = floorDiv(acc, den)
	}
	return true
}

// mulOK and addOK are non-panicking overflow-checked int64 arithmetic:
// the fast path degrades to the rational path instead of aborting.
func mulOK(a, b int64) (int64, bool) {
	if a == 0 || b == 0 {
		return 0, true
	}
	p := a * b
	if p/b != a || (a == minI64 && b == -1) || (b == minI64 && a == -1) {
		return 0, false
	}
	return p, true
}

func addOK(a, b int64) (int64, bool) {
	s := a + b
	if (a > 0 && b > 0 && s <= 0) || (a < 0 && b < 0 && s >= 0) {
		return 0, false
	}
	return s, true
}

const minI64 = -1 << 63

// floorDiv is floor(a/den) for den > 0.
func floorDiv(a, den int64) int64 {
	q := a / den
	if a%den != 0 && a < 0 {
		q--
	}
	return q
}

// Bounds describes a rectangular iteration space [Lo[k], Hi[k]] per
// dimension, inclusive (the paper's §2.1 assumption).
type Bounds struct {
	Lo, Hi []int64
}

// BoundsOf extracts the doall iteration space of a nest.
func BoundsOf(n *loopir.Nest) Bounds {
	loops := n.DoallLoops()
	b := Bounds{Lo: make([]int64, len(loops)), Hi: make([]int64, len(loops))}
	for k, l := range loops {
		b.Lo[k] = l.Lo
		b.Hi[k] = l.Hi
	}
	return b
}

// Dim returns the dimensionality of the space.
func (b Bounds) Dim() int { return len(b.Lo) }

// Size returns the total number of iteration points.
func (b Bounds) Size() int64 {
	total := int64(1)
	for k := range b.Lo {
		total *= b.Hi[k] - b.Lo[k] + 1
	}
	return total
}

// Extents returns the per-dimension sizes.
func (b Bounds) Extents() []int64 {
	e := make([]int64, b.Dim())
	for k := range e {
		e[k] = b.Hi[k] - b.Lo[k] + 1
	}
	return e
}

// Contains reports whether p lies inside the bounds.
func (b Bounds) Contains(p []int64) bool {
	for k := range p {
		if p[k] < b.Lo[k] || p[k] > b.Hi[k] {
			return false
		}
	}
	return true
}

// ForEach enumerates every point in lexicographic order.
func (b Bounds) ForEach(fn func(p []int64) bool) {
	if b.Dim() == 0 {
		return
	}
	p := make([]int64, b.Dim())
	copy(p, b.Lo)
	for {
		q := make([]int64, len(p))
		copy(q, p)
		if !fn(q) {
			return
		}
		k := len(p) - 1
		for k >= 0 {
			p[k]++
			if p[k] <= b.Hi[k] {
				break
			}
			p[k] = b.Lo[k]
			k--
		}
		if k < 0 {
			return
		}
	}
}

// Assignment maps every iteration point of a bounded space to a processor.
type Assignment struct {
	Tiling *Tiling
	Space  Bounds
	// procOf maps tile-coordinate keys to processor ids (general path).
	procOf   map[string]int
	numProcs int
	numTiles int
	// rectGrid, when non-nil, enables the closed-form fast path for
	// rectangular tilings anchored at the space's lower corner:
	// rectGrid[k] is the number of tiles along dimension k.
	rectGrid []int64
	rectExt  []int64
}

// Assign builds the processor assignment for a tiling over a space:
// distinct tiles are numbered in lexicographic tile-coordinate order (the
// first-seen order of a lexicographic scan of the space) and dealt to P
// processors round-robin. When the tile count equals P (the intended
// operating point: |space|/|tile| = P), every processor executes exactly
// one tile.
func Assign(tl *Tiling, space Bounds, procs int) (*Assignment, error) {
	if procs <= 0 {
		return nil, fmt.Errorf("tile: need at least one processor")
	}
	if space.Dim() != tl.Tile.Dim() {
		return nil, fmt.Errorf("tile: space dimension %d != tile dimension %d", space.Dim(), tl.Tile.Dim())
	}
	a := &Assignment{
		Tiling:   tl,
		Space:    space,
		numProcs: procs,
	}
	if tl.Tile.IsRect() && sameVec(tl.Origin, space.Lo) {
		// Closed form: tile coordinate = (p−lo)/ext per dimension.
		a.rectExt = tl.Tile.Extents()
		a.rectGrid = make([]int64, space.Dim())
		tiles := 1
		for k := range a.rectGrid {
			a.rectGrid[k] = ceilDiv(space.Hi[k]-space.Lo[k]+1, a.rectExt[k])
			tiles *= int(a.rectGrid[k])
		}
		a.numTiles = tiles
		return a, nil
	}
	a.procOf = make(map[string]int)
	d := space.Dim()
	if d == 0 {
		return a, nil
	}
	// Allocation-free lexicographic scan: the iteration point, the tile
	// coordinates, and the map key live in three reused buffers. Only a
	// first-seen tile pays a key-string allocation; lookups of existing
	// keys convert in place.
	p := make([]int64, d)
	copy(p, space.Lo)
	coord := make([]int64, d)
	key := make([]byte, 0, 16*d)
	for {
		tl.CoordInto(p, coord)
		key = appendCoordKey(key[:0], coord)
		if _, ok := a.procOf[string(key)]; !ok {
			a.procOf[string(key)] = a.numTiles % procs
			a.numTiles++
		}
		k := d - 1
		for k >= 0 {
			p[k]++
			if p[k] <= space.Hi[k] {
				break
			}
			p[k] = space.Lo[k]
			k--
		}
		if k < 0 {
			return a, nil
		}
	}
}

func sameVec(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func ceilDiv(a, b int64) int64 { return (a + b - 1) / b }

// ProcOf returns the processor that executes iteration p.
func (a *Assignment) ProcOf(p []int64) int {
	if a.rectGrid != nil {
		if !a.Space.Contains(p) {
			panic(fmt.Sprintf("tile: iteration %v outside assigned space", p))
		}
		idx := int64(0)
		for k := range p {
			c := (p[k] - a.Space.Lo[k]) / a.rectExt[k]
			idx = idx*a.rectGrid[k] + c
		}
		return int(idx % int64(a.numProcs))
	}
	// Per-call stack buffers: ProcOf runs once per iteration point under
	// concurrent executors (exec.RunParallel), so the coordinates and key
	// must not live on the shared Assignment.
	d := a.Tiling.Tile.Dim()
	var cArr [8]int64
	var kArr [128]byte
	var coord []int64
	if d <= len(cArr) {
		coord = cArr[:d]
	} else {
		coord = make([]int64, d)
	}
	a.Tiling.CoordInto(p, coord)
	key := appendCoordKey(kArr[:0], coord)
	proc, ok := a.procOf[string(key)]
	if !ok {
		panic(fmt.Sprintf("tile: iteration %v outside assigned space", p))
	}
	return proc
}

// NumTiles returns the number of distinct tiles intersecting the space.
func (a *Assignment) NumTiles() int { return a.numTiles }

// NumProcs returns the processor count.
func (a *Assignment) NumProcs() int { return a.numProcs }

// PointsOf returns the iteration points of each processor, in iteration
// order. The slice is indexed by processor id.
func (a *Assignment) PointsOf() [][][]int64 {
	out := make([][][]int64, a.numProcs)
	a.Space.ForEach(func(p []int64) bool {
		proc := a.ProcOf(p)
		out[proc] = append(out[proc], p)
		return true
	})
	return out
}

// LoadImbalance returns max/mean iterations per processor (1.0 = perfect).
func (a *Assignment) LoadImbalance() float64 {
	counts := make([]int64, a.numProcs)
	a.Space.ForEach(func(p []int64) bool {
		counts[a.ProcOf(p)]++
		return true
	})
	var max, sum int64
	for _, c := range counts {
		sum += c
		if c > max {
			max = c
		}
	}
	if sum == 0 {
		return 1
	}
	mean := float64(sum) / float64(a.numProcs)
	return float64(max) / mean
}

// appendCoordKey appends the map key for tile coordinates c — each value
// in decimal followed by a comma — to b and returns it. The format must
// match between the Assign scan (which inserts keys) and ProcOf (which
// looks them up).
func appendCoordKey(b []byte, c []int64) []byte {
	for _, v := range c {
		b = strconv.AppendInt(b, v, 10)
		b = append(b, ',')
	}
	return b
}

func coordKey(c []int64) string {
	var b [64]byte
	return string(appendCoordKey(b[:0], c))
}

// OriginPoints enumerates the integer iteration points of the tile at the
// origin under the half-open convention (tile coordinates all floor to 0).
// The points are found by scanning the bounding box of the tile's vertices.
func OriginPoints(t Tile) [][]int64 {
	d := t.Dim()
	tl, err := NewTiling(t, make([]int64, d))
	if err != nil {
		panic(err)
	}
	// Bounding box: for each dimension, the sum of negative edge
	// components to the sum of positive edge components.
	lo := make([]int64, d)
	hi := make([]int64, d)
	for j := 0; j < d; j++ {
		for i := 0; i < d; i++ {
			v := t.L.At(i, j)
			if v < 0 {
				lo[j] += v
			} else {
				hi[j] += v
			}
		}
	}
	var pts [][]int64
	(Bounds{Lo: lo, Hi: hi}).ForEach(func(p []int64) bool {
		c := tl.Coord(p)
		for _, v := range c {
			if v != 0 {
				return true
			}
		}
		pts = append(pts, p)
		return true
	})
	return pts
}

// LoopBoundsFor derives nested loop bounds for the iterations of one tile
// of the partition: the integer points i with space.Lo ≤ i ≤ space.Hi and
// tile coordinates exactly `coord` (cⱼ ≤ (i−origin)·L⁻¹ⱼ < cⱼ+1). The
// bounds come from Fourier–Motzkin elimination, so they hold for skewed
// (hyperparallelepiped) tiles, where the inner loop's range depends on the
// outer indices — the code-generation problem §3.7 notes rectangular tiles
// avoid.
func LoopBoundsFor(t Tile, origin, coord []int64, space Bounds) (*polytope.LoopNest, error) {
	l := t.Dim()
	if len(origin) != l || len(coord) != l || space.Dim() != l {
		return nil, fmt.Errorf("tile: dimension mismatch")
	}
	minv, ok := t.L.ToRat().Inverse()
	if !ok {
		return nil, fmt.Errorf("tile: singular tile matrix")
	}
	sys := polytope.NewSystem(l)
	for j := 0; j < l; j++ {
		// coordinate_j(i) = Σ_k (i_k − origin_k)·M[k][j].
		coefs := make([]rational.Rat, l)
		off := rational.Zero
		den := int64(1)
		for k := 0; k < l; k++ {
			coefs[k] = minv.At(k, j)
			off = off.Add(minv.At(k, j).Mul(rational.FromInt(origin[k])))
			den = rational.LCM(den, coefs[k].Den())
		}
		d := rational.FromInt(den)
		// Integer form: Σ (den·M[k][j])·i_k, with bound scaled by den.
		intCoefs := make([]int64, l)
		for k := 0; k < l; k++ {
			intCoefs[k] = coefs[k].Mul(d).Int()
		}
		offScaled := off.Mul(d)
		cLo := rational.FromInt(coord[j]).Mul(d).Add(offScaled)
		cHi := rational.FromInt(coord[j] + 1).Mul(d).Add(offScaled)
		// coordinate ≥ c_j  →  −Σ a·i ≤ −cLo (round: lhs integer, so
		// bound floors).
		neg := make([]int64, l)
		for k := range intCoefs {
			neg[k] = -intCoefs[k]
		}
		sys.AddInt(neg, cLo.Neg().Floor())
		// coordinate < c_j+1  →  Σ a·i ≤ ceil(cHi) − 1.
		sys.AddInt(intCoefs, cHi.Ceil()-1)
	}
	for k := 0; k < l; k++ {
		row := make([]int64, l)
		row[k] = 1
		sys.AddInt(row, space.Hi[k])
		row2 := make([]int64, l)
		row2[k] = -1
		sys.AddInt(row2, -space.Lo[k])
	}
	return sys.Eliminate(), nil
}

// LoopBoundsSymbolic is LoopBoundsFor with the tile coordinates left
// symbolic: the returned nest is over 2l variables — x₀..x_{l−1} are the
// tile coordinates (parameters, never looped) and x_l..x_{2l−1} the
// iteration variables, whose bounds reference the parameters and the
// outer iteration variables. This is the form code generation needs: one
// emitted function covers every tile of the partition.
func LoopBoundsSymbolic(t Tile, origin []int64, space Bounds) (*polytope.LoopNest, error) {
	l := t.Dim()
	if len(origin) != l || space.Dim() != l {
		return nil, fmt.Errorf("tile: dimension mismatch")
	}
	minv, ok := t.L.ToRat().Inverse()
	if !ok {
		return nil, fmt.Errorf("tile: singular tile matrix")
	}
	sys := polytope.NewSystem(2 * l)
	for j := 0; j < l; j++ {
		den := int64(1)
		for k := 0; k < l; k++ {
			den = rational.LCM(den, minv.At(k, j).Den())
		}
		d := rational.FromInt(den)
		off := rational.Zero
		intCoefs := make([]int64, l)
		for k := 0; k < l; k++ {
			intCoefs[k] = minv.At(k, j).Mul(d).Int()
			off = off.Add(minv.At(k, j).Mul(rational.FromInt(origin[k])))
		}
		offScaled := off.Mul(d)
		// c_j ≤ coordinate_j(i):  den·c_j − Σ a_k·i_k ≤ floor(−den·off).
		row := make([]int64, 2*l)
		row[j] = den
		for k := 0; k < l; k++ {
			row[l+k] = -intCoefs[k]
		}
		sys.AddInt(row, offScaled.Neg().Floor())
		// coordinate_j(i) < c_j + 1:
		//   Σ a_k·i_k − den·c_j ≤ ceil(den·off + den) − 1.
		row2 := make([]int64, 2*l)
		row2[j] = -den
		for k := 0; k < l; k++ {
			row2[l+k] = intCoefs[k]
		}
		sys.AddInt(row2, offScaled.Add(d).Ceil()-1)
	}
	for k := 0; k < l; k++ {
		row := make([]int64, 2*l)
		row[l+k] = 1
		sys.AddInt(row, space.Hi[k])
		row2 := make([]int64, 2*l)
		row2[l+k] = -1
		sys.AddInt(row2, -space.Lo[k])
	}
	return sys.Eliminate(), nil
}

// RectTilingFor builds the natural rectangular tiling of a space with the
// given per-dimension tile extents, anchored at the space's lower corner.
func RectTilingFor(space Bounds, extents []int64) (*Tiling, error) {
	if len(extents) != space.Dim() {
		return nil, fmt.Errorf("tile: %d extents for %d-D space", len(extents), space.Dim())
	}
	return NewTiling(Rect(extents...), space.Lo)
}
