package tile

import (
	"math/rand"
	"testing"

	"looppart/internal/intmat"
	"looppart/internal/loopir"
)

func TestRect(t *testing.T) {
	tl := Rect(10, 20)
	if !tl.IsRect() {
		t.Fatal("Rect not rect")
	}
	if tl.Volume() != 200 || tl.PointCount() != 200 {
		t.Fatalf("volume = %d", tl.Volume())
	}
	e := tl.Extents()
	if e[0] != 10 || e[1] != 20 {
		t.Fatalf("extents = %v", e)
	}
	if tl.String() != "rect(10x20)" {
		t.Fatalf("String = %q", tl.String())
	}
}

func TestRectBadExtentPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero extent did not panic")
		}
	}()
	Rect(10, 0)
}

func TestParallelepiped(t *testing.T) {
	l := intmat.FromRows([][]int64{{4, 4}, {5, 0}})
	tl := Parallelepiped(l)
	if tl.IsRect() {
		t.Fatal("skewed tile reported rect")
	}
	if tl.Volume() != 20 {
		t.Fatalf("volume = %d", tl.Volume())
	}
}

func TestParallelepipedSingularPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("singular L did not panic")
		}
	}()
	Parallelepiped(intmat.FromRows([][]int64{{1, 2}, {2, 4}}))
}

func TestExtentsOfSkewPanics(t *testing.T) {
	tl := Parallelepiped(intmat.FromRows([][]int64{{1, 1}, {0, 1}}))
	defer func() {
		if recover() == nil {
			t.Fatal("Extents of skewed tile did not panic")
		}
	}()
	tl.Extents()
}

func TestFromHyperplanes(t *testing.T) {
	// H = I with λ = (3, 5) gives the rectangular tile diag(3,5).
	tl, err := FromHyperplanes(intmat.Identity(2), []int64{3, 5})
	if err != nil {
		t.Fatal(err)
	}
	if !tl.L.Equal(intmat.Diag(3, 5)) {
		t.Fatalf("L = %v", tl.L)
	}
	// Skewed family: H = [[1,-1],[0,1]] (hyperplanes i−j=c and j=c).
	tl2, err := FromHyperplanes(intmat.FromRows([][]int64{{1, -1}, {0, 1}}), []int64{4, 5})
	if err != nil {
		t.Fatal(err)
	}
	if tl2.Volume() != 20 {
		t.Fatalf("skew tile volume = %d, L = %v", tl2.Volume(), tl2.L)
	}
	// Singular H.
	if _, err := FromHyperplanes(intmat.FromRows([][]int64{{1, 1}, {2, 2}}), []int64{1, 1}); err == nil {
		t.Fatal("singular H accepted")
	}
	// Non-integral edge vectors: H = [[2,0],[0,1]], λ = (1,1) → L has 1/2.
	if _, err := FromHyperplanes(intmat.FromRows([][]int64{{2, 0}, {0, 1}}), []int64{1, 1}); err == nil {
		t.Fatal("non-integral L accepted")
	}
}

func TestTilingCoordRect(t *testing.T) {
	tl, err := NewTiling(Rect(10, 10), []int64{101, 1})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		p    []int64
		want []int64
	}{
		{[]int64{101, 1}, []int64{0, 0}},
		{[]int64{110, 10}, []int64{0, 0}},
		{[]int64{111, 10}, []int64{1, 0}},
		{[]int64{200, 100}, []int64{9, 9}},
	}
	for _, c := range cases {
		got := tl.Coord(c.p)
		if got[0] != c.want[0] || got[1] != c.want[1] {
			t.Errorf("Coord(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestTilingCoordSkew(t *testing.T) {
	// Edge vectors (1,1) and (0,2): diagonal strips.
	l := intmat.FromRows([][]int64{{1, 1}, {0, 2}})
	tl, err := NewTiling(Parallelepiped(l), []int64{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	// (5,5) = 5·(1,1) + 0·(0,2) → coords (5, 0).
	c := tl.Coord([]int64{5, 5})
	if c[0] != 5 || c[1] != 0 {
		t.Fatalf("Coord = %v", c)
	}
	// (5,6) = 5·(1,1) + 0.5·(0,2) → floor (5, 0).
	c2 := tl.Coord([]int64{5, 6})
	if c2[0] != 5 || c2[1] != 0 {
		t.Fatalf("Coord = %v", c2)
	}
	// (5,7) = 5·(1,1) + 1·(0,2) → (5, 1).
	c3 := tl.Coord([]int64{5, 7})
	if c3[0] != 5 || c3[1] != 1 {
		t.Fatalf("Coord = %v", c3)
	}
}

func TestBoundsOfNest(t *testing.T) {
	n := loopir.MustParse(`
doall (i, 101, 200)
  doall (j, 1, 100)
    A[i,j] = 0
  enddoall
enddoall`, nil)
	b := BoundsOf(n)
	if b.Size() != 10000 {
		t.Fatalf("size = %d", b.Size())
	}
	if b.Lo[0] != 101 || b.Hi[1] != 100 {
		t.Fatalf("bounds = %+v", b)
	}
	e := b.Extents()
	if e[0] != 100 || e[1] != 100 {
		t.Fatalf("extents = %v", e)
	}
}

func TestBoundsForEachAndContains(t *testing.T) {
	b := Bounds{Lo: []int64{0, 0}, Hi: []int64{2, 1}}
	var count int
	b.ForEach(func(p []int64) bool {
		if !b.Contains(p) {
			t.Fatalf("enumerated point %v outside bounds", p)
		}
		count++
		return true
	})
	if int64(count) != b.Size() || count != 6 {
		t.Fatalf("count = %d", count)
	}
	if b.Contains([]int64{3, 0}) || b.Contains([]int64{0, -1}) {
		t.Fatal("Contains wrong")
	}
}

func TestAssignRectOneTilePerProc(t *testing.T) {
	// 100×100 space, 10×10 tiles, 100 processors: one tile each.
	space := Bounds{Lo: []int64{101, 1}, Hi: []int64{200, 100}}
	tl, err := RectTilingFor(space, []int64{10, 10})
	if err != nil {
		t.Fatal(err)
	}
	a, err := Assign(tl, space, 100)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumTiles() != 100 {
		t.Fatalf("tiles = %d", a.NumTiles())
	}
	if got := a.LoadImbalance(); got != 1.0 {
		t.Fatalf("imbalance = %f", got)
	}
	pts := a.PointsOf()
	for proc, ps := range pts {
		if len(ps) != 100 {
			t.Fatalf("proc %d has %d points", proc, len(ps))
		}
	}
	// Iterations in the same 10×10 block share a processor.
	if a.ProcOf([]int64{101, 1}) != a.ProcOf([]int64{110, 10}) {
		t.Error("same-tile iterations on different processors")
	}
	if a.ProcOf([]int64{101, 1}) == a.ProcOf([]int64{111, 1}) {
		t.Error("distinct tiles on same processor")
	}
}

func TestAssignColumnStrips(t *testing.T) {
	// Partition a of Example 2: each tile is a full column strip 100×1.
	space := Bounds{Lo: []int64{101, 1}, Hi: []int64{200, 100}}
	tl, err := RectTilingFor(space, []int64{100, 1})
	if err != nil {
		t.Fatal(err)
	}
	a, err := Assign(tl, space, 100)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumTiles() != 100 {
		t.Fatalf("tiles = %d", a.NumTiles())
	}
	if a.ProcOf([]int64{101, 5}) != a.ProcOf([]int64{200, 5}) {
		t.Error("column strip split across processors")
	}
}

func TestAssignSkewTiles(t *testing.T) {
	// Diagonal tiles on an 8×8 space; verify full coverage and balance.
	space := Bounds{Lo: []int64{0, 0}, Hi: []int64{7, 7}}
	l := intmat.FromRows([][]int64{{4, 4}, {0, 4}}) // skewed 4×4
	tl, err := NewTiling(Parallelepiped(l), space.Lo)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Assign(tl, space, 4)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, ps := range a.PointsOf() {
		total += len(ps)
	}
	if int64(total) != space.Size() {
		t.Fatalf("covered %d of %d points", total, space.Size())
	}
}

func TestAssignErrors(t *testing.T) {
	space := Bounds{Lo: []int64{0}, Hi: []int64{7}}
	tl, _ := RectTilingFor(space, []int64{4})
	if _, err := Assign(tl, space, 0); err == nil {
		t.Error("0 processors accepted")
	}
	space2 := Bounds{Lo: []int64{0, 0}, Hi: []int64{3, 3}}
	if _, err := Assign(tl, space2, 2); err == nil {
		t.Error("dimension mismatch accepted")
	}
}

func TestProcOfOutsidePanics(t *testing.T) {
	space := Bounds{Lo: []int64{0}, Hi: []int64{7}}
	tl, _ := RectTilingFor(space, []int64{4})
	a, _ := Assign(tl, space, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("outside point did not panic")
		}
	}()
	a.ProcOf([]int64{100})
}

func TestTilingPartitionInvariant(t *testing.T) {
	// Every iteration belongs to exactly one tile; random skewed tiles.
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 20; trial++ {
		var l intmat.Mat
		for {
			l = intmat.FromRows([][]int64{
				{int64(rng.Intn(4) + 1), int64(rng.Intn(5) - 2)},
				{int64(rng.Intn(5) - 2), int64(rng.Intn(4) + 1)},
			})
			if l.Det() != 0 {
				break
			}
		}
		space := Bounds{Lo: []int64{-3, -3}, Hi: []int64{6, 6}}
		tl, err := NewTiling(Tile{L: l}, space.Lo)
		if err != nil {
			t.Fatal(err)
		}
		a, err := Assign(tl, space, 3)
		if err != nil {
			t.Fatal(err)
		}
		total := 0
		for _, ps := range a.PointsOf() {
			total += len(ps)
		}
		if int64(total) != space.Size() {
			t.Fatalf("trial %d: covered %d of %d (L=%v)", trial, total, space.Size(), l)
		}
	}
}

func BenchmarkCoordRect(b *testing.B) {
	tl, _ := NewTiling(Rect(10, 10), []int64{0, 0})
	p := []int64{57, 93}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = tl.Coord(p)
	}
}

func BenchmarkAssign100x100(b *testing.B) {
	space := Bounds{Lo: []int64{0, 0}, Hi: []int64{99, 99}}
	tl, _ := RectTilingFor(space, []int64{10, 10})
	for i := 0; i < b.N; i++ {
		_, _ = Assign(tl, space, 100)
	}
}

func TestAssignRectFastPathMatchesGeneralPath(t *testing.T) {
	// The rectangular Assign fast path must agree with the generic
	// map-based path (forced by a non-space-anchored tiling origin
	// computation: we rebuild via a parallelepiped tile with the same
	// diagonal L, which takes the slow path).
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 40; trial++ {
		d := 1 + rng.Intn(3)
		lo := make([]int64, d)
		hi := make([]int64, d)
		ext := make([]int64, d)
		for k := 0; k < d; k++ {
			lo[k] = int64(rng.Intn(7) - 3)
			hi[k] = lo[k] + int64(rng.Intn(12))
			ext[k] = int64(rng.Intn(5) + 1)
		}
		space := Bounds{Lo: lo, Hi: hi}
		procs := 1 + rng.Intn(5)

		fastT, err := RectTilingFor(space, ext)
		if err != nil {
			t.Fatal(err)
		}
		fast, err := Assign(fastT, space, procs)
		if err != nil {
			t.Fatal(err)
		}
		if fast.rectGrid == nil {
			t.Fatal("expected fast path")
		}

		// Force the general path with an equivalent non-diagonal tile:
		// same partition cells via L = diag(ext) but entered as a
		// Parallelepiped after a no-op row operation is not possible
		// without changing cells, so instead rebuild the slow structures
		// directly.
		slow := &Assignment{Tiling: fastT, Space: space, numProcs: procs, procOf: map[string]int{}}
		space.ForEach(func(p []int64) bool {
			key := coordKey(fastT.Coord(p))
			if _, ok := slow.procOf[key]; !ok {
				slow.procOf[key] = slow.numTiles % procs
				slow.numTiles++
			}
			return true
		})

		if fast.NumTiles() != slow.NumTiles() {
			t.Fatalf("trial %d: tiles %d vs %d", trial, fast.NumTiles(), slow.NumTiles())
		}
		space.ForEach(func(p []int64) bool {
			if fast.ProcOf(p) != slow.ProcOf(p) {
				t.Fatalf("trial %d: ProcOf(%v) = %d fast vs %d slow (ext=%v procs=%d space=%v..%v)",
					trial, p, fast.ProcOf(p), slow.ProcOf(p), ext, procs, lo, hi)
			}
			return true
		})
	}
}

func TestLoopBoundsForRectTile(t *testing.T) {
	space := Bounds{Lo: []int64{101, 1}, Hi: []int64{200, 100}}
	tile := Rect(10, 10)
	nest, err := LoopBoundsFor(tile, space.Lo, []int64{2, 3}, space)
	if err != nil {
		t.Fatal(err)
	}
	pts := nest.Points()
	if len(pts) != 100 {
		t.Fatalf("tile (2,3) has %d points", len(pts))
	}
	// Tile (2,3) covers i in [121,130], j in [31,40].
	for _, p := range pts {
		if p[0] < 121 || p[0] > 130 || p[1] < 31 || p[1] > 40 {
			t.Fatalf("point %v outside tile", p)
		}
	}
}

func TestLoopBoundsForMatchesCoordMembership(t *testing.T) {
	// Property: for random (possibly skewed) tiles, the FM-derived loop
	// nest enumerates exactly the iterations whose tile coordinate is
	// the requested one.
	rng := rand.New(rand.NewSource(2222))
	for trial := 0; trial < 30; trial++ {
		var l intmat.Mat
		for {
			l = intmat.FromRows([][]int64{
				{int64(rng.Intn(4) + 2), int64(rng.Intn(5) - 2)},
				{int64(rng.Intn(5) - 2), int64(rng.Intn(4) + 2)},
			})
			if l.Det() != 0 {
				break
			}
		}
		space := Bounds{Lo: []int64{-2, -2}, Hi: []int64{7, 7}}
		tl, err := NewTiling(Tile{L: l}, space.Lo)
		if err != nil {
			t.Fatal(err)
		}
		// Pick the tile coordinate of a random in-space point so the
		// tile is nonempty.
		probe := []int64{
			space.Lo[0] + int64(rng.Intn(10)),
			space.Lo[1] + int64(rng.Intn(10)),
		}
		coord := tl.Coord(probe)

		nest, err := LoopBoundsFor(Tile{L: l}, space.Lo, coord, space)
		if err != nil {
			t.Fatal(err)
		}
		got := map[string]bool{}
		for _, p := range nest.Points() {
			got[coordKey(p)] = true
		}
		want := map[string]bool{}
		space.ForEach(func(p []int64) bool {
			c := tl.Coord(p)
			if c[0] == coord[0] && c[1] == coord[1] {
				want[coordKey(p)] = true
			}
			return true
		})
		if len(got) != len(want) {
			t.Fatalf("trial %d: FM %d points vs membership %d (L=%v coord=%v)",
				trial, len(got), len(want), l, coord)
		}
		for k := range want {
			if !got[k] {
				t.Fatalf("trial %d: membership point missing from FM nest", trial)
			}
		}
	}
}

func TestLoopBoundsForErrors(t *testing.T) {
	space := Bounds{Lo: []int64{0, 0}, Hi: []int64{7, 7}}
	if _, err := LoopBoundsFor(Rect(4, 4), []int64{0}, []int64{0, 0}, space); err == nil {
		t.Error("dimension mismatch accepted")
	}
}

func TestOriginPoints(t *testing.T) {
	// Rectangular: ext (3,2) → 6 points in [0,2]×[0,1].
	pts := OriginPoints(Rect(3, 2))
	if len(pts) != 6 {
		t.Fatalf("rect origin points = %d", len(pts))
	}
	for _, p := range pts {
		if p[0] < 0 || p[0] > 2 || p[1] < 0 || p[1] > 1 {
			t.Fatalf("point %v outside rect tile", p)
		}
	}
	// Skewed: |det L| points under the half-open convention.
	l := intmat.FromRows([][]int64{{3, 3}, {0, 2}})
	got := OriginPoints(Parallelepiped(l))
	if int64(len(got)) != Parallelepiped(l).Volume() {
		t.Fatalf("skew origin points = %d, want %d", len(got), Parallelepiped(l).Volume())
	}
}

func TestLoopBoundsSymbolicMatchesConcrete(t *testing.T) {
	// Symbolic bounds instantiated at a coordinate equal the concrete
	// LoopBoundsFor enumeration.
	space := Bounds{Lo: []int64{0, 0}, Hi: []int64{11, 11}}
	l := intmat.FromRows([][]int64{{4, 4}, {0, 3}})
	tt := Parallelepiped(l)
	sym, err := LoopBoundsSymbolic(tt, space.Lo, space)
	if err != nil {
		t.Fatal(err)
	}
	for _, coord := range [][]int64{{0, 0}, {1, 1}, {2, 0}, {0, 2}} {
		conc, err := LoopBoundsFor(tt, space.Lo, coord, space)
		if err != nil {
			t.Fatal(err)
		}
		concPts := conc.Points()
		// Enumerate via the symbolic nest.
		var symPts [][]int64
		lo0, hi0 := sym.Range(2, coord)
		for i := lo0; i <= hi0; i++ {
			lo1, hi1 := sym.Range(3, append(append([]int64(nil), coord...), i))
			for j := lo1; j <= hi1; j++ {
				symPts = append(symPts, []int64{i, j})
			}
		}
		if len(symPts) != len(concPts) {
			t.Fatalf("coord %v: symbolic %d points vs concrete %d", coord, len(symPts), len(concPts))
		}
	}
}

func TestLoopBoundsSymbolicErrors(t *testing.T) {
	space := Bounds{Lo: []int64{0, 0}, Hi: []int64{7, 7}}
	if _, err := LoopBoundsSymbolic(Rect(4, 4), []int64{0}, space); err == nil {
		t.Error("dimension mismatch accepted")
	}
}

func TestAssignmentNumProcs(t *testing.T) {
	space := Bounds{Lo: []int64{0}, Hi: []int64{7}}
	tl, _ := RectTilingFor(space, []int64{4})
	a, _ := Assign(tl, space, 2)
	if a.NumProcs() != 2 {
		t.Fatalf("NumProcs = %d", a.NumProcs())
	}
}

func TestNewTilingErrors(t *testing.T) {
	if _, err := NewTiling(Rect(4, 4), []int64{0}); err == nil {
		t.Error("origin rank mismatch accepted")
	}
	if _, err := RectTilingFor(Bounds{Lo: []int64{0}, Hi: []int64{7}}, []int64{4, 4}); err == nil {
		t.Error("extent rank mismatch accepted")
	}
}
