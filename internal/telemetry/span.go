package telemetry

import (
	"time"
)

// Span is one timed phase of the pipeline: a parse, a partition search, a
// simulation, or one processor's share of one doall epoch. Proc is the
// logical track the span renders on in the Chrome trace (-1 = the
// pipeline's own track, ≥0 = that processor's track).
type Span struct {
	Name  string         `json:"name"`
	Proc  int            `json:"proc"`
	Start time.Duration  `json:"start_ns"`
	Dur   time.Duration  `json:"dur_ns"`
	Args  map[string]any `json:"args,omitempty"`
}

// ActiveSpan is an in-progress span; End records it into the registry.
type ActiveSpan struct {
	reg   *Registry
	name  string
	proc  int
	start time.Duration
	args  map[string]any
}

// StartSpan opens a span on the pipeline track (proc −1). Returns nil on a
// nil registry; (*ActiveSpan)(nil).End is a no-op.
func (r *Registry) StartSpan(name string) *ActiveSpan { return r.StartSpanProc(name, -1) }

// StartSpanProc opens a span on a processor track.
func (r *Registry) StartSpanProc(name string, proc int) *ActiveSpan {
	if r == nil {
		return nil
	}
	return &ActiveSpan{reg: r, name: name, proc: proc, start: r.since()}
}

// SetArg attaches a key/value to the span (values must be JSON-encodable).
func (s *ActiveSpan) SetArg(key string, value any) {
	if s == nil {
		return
	}
	if s.args == nil {
		s.args = map[string]any{}
	}
	s.args[key] = value
}

// End closes the span and records it.
func (s *ActiveSpan) End() {
	if s == nil {
		return
	}
	s.reg.RecordSpan(Span{
		Name:  s.name,
		Proc:  s.proc,
		Start: s.start,
		Dur:   s.reg.since() - s.start,
		Args:  s.args,
	})
}

// RecordSpan appends a fully-formed span (used by the executor, which
// measures goroutine-local durations itself); no-op on nil.
func (r *Registry) RecordSpan(sp Span) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if r.spanCap > 0 && len(r.spans) >= r.spanCap {
		r.mu.Unlock()
		r.droppedSpans.Add(1)
		return
	}
	r.spans = append(r.spans, sp)
	r.mu.Unlock()
}

// Spans returns a copy of the recorded spans in recording order.
func (r *Registry) Spans() []Span {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Span(nil), r.spans...)
}

// Event is one structured decision-trace record: a candidate the
// partitioner scored, the shape it chose, a strategy fallback, a per-class
// analysis fact. Fields hold the numbers (cost terms, grids, spreads) the
// decision was made from.
type Event struct {
	Time   time.Duration  `json:"t_ns"`
	Kind   string         `json:"kind"`
	Name   string         `json:"name"`
	Fields map[string]any `json:"fields,omitempty"`
}

// Emit records a decision event; no-op on nil. fields may be nil.
func (r *Registry) Emit(kind, name string, fields map[string]any) {
	if r == nil {
		return
	}
	ev := Event{Time: r.since(), Kind: kind, Name: name, Fields: fields}
	r.mu.Lock()
	if r.eventCap > 0 && len(r.events) >= r.eventCap {
		r.mu.Unlock()
		r.droppedEvents.Add(1)
		return
	}
	r.events = append(r.events, ev)
	r.mu.Unlock()
}

// Events returns a copy of the recorded events in emission order.
func (r *Registry) Events() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Event(nil), r.events...)
}

// EventsOfKind filters the recorded events by kind.
func (r *Registry) EventsOfKind(kind string) []Event {
	var out []Event
	for _, ev := range r.Events() {
		if ev.Kind == kind {
			out = append(out, ev)
		}
	}
	return out
}

// FieldKeys returns an event's field names in lexicographic order, so
// renderers print deterministically.
func (e Event) FieldKeys() []string {
	return sortedKeys(e.Fields)
}
