package telemetry

import (
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the default mux
)

// StartPprof serves net/http/pprof on addr (e.g. ":6060") in a background
// goroutine and returns the bound address. It exists so the CLIs can offer
// `-pprof` with one call; the listener lives until process exit.
func StartPprof(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("telemetry: pprof listen %s: %w", addr, err)
	}
	go func() {
		// DefaultServeMux carries the pprof handlers via the blank import.
		_ = http.Serve(ln, nil)
	}()
	return ln.Addr().String(), nil
}
