package telemetry

import "testing"

func TestRecordCapsBoundSpansAndEvents(t *testing.T) {
	r := New()
	r.SetRecordCaps(2, 3)
	for i := 0; i < 5; i++ {
		r.StartSpan("s").End()
		r.Emit("k", "n", nil)
	}
	if n := len(r.Spans()); n != 2 {
		t.Errorf("spans = %d, want 2", n)
	}
	if n := len(r.Events()); n != 3 {
		t.Errorf("events = %d, want 3", n)
	}
	ds, de := r.DroppedRecords()
	if ds != 3 || de != 2 {
		t.Errorf("dropped = %d spans, %d events; want 3, 2", ds, de)
	}
	snap := r.Snapshot()
	if snap.Counters["telemetry.dropped_spans"] != 3 || snap.Counters["telemetry.dropped_events"] != 2 {
		t.Errorf("snapshot drop counters = %v", snap.Counters)
	}
}

func TestRecordCapsZeroMeansUnbounded(t *testing.T) {
	r := New()
	for i := 0; i < 100; i++ {
		r.Emit("k", "n", nil)
	}
	if n := len(r.Events()); n != 100 {
		t.Errorf("events = %d, want 100", n)
	}
	if _, de := r.DroppedRecords(); de != 0 {
		t.Errorf("dropped events = %d", de)
	}
}
