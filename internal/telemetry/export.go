package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// Metrics export: a flat JSON dump (the Snapshot, stable field order via
// encoding/json's map sorting) and a Prometheus-style text exposition
// (`# TYPE` comments, metric names with dots mapped to underscores).

// WriteMetricsJSON writes the registry snapshot as indented JSON. A nil
// registry writes an empty snapshot.
func (r *Registry) WriteMetricsJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// WriteMetricsText writes the snapshot in Prometheus text exposition
// format (version 0.0.4): every family gets `# HELP` and `# TYPE` lines,
// counters are exposed under their conventional `_total` name, and
// histograms emit `_count`, `_sum`, `_min`, `_max` samples.
//
// Counters are additionally emitted under their bare legacy name (no
// `_total`, untyped) so existing scrape rules keep working for one
// release; the aliases will be dropped once dashboards migrate.
func (r *Registry) WriteMetricsText(w io.Writer) error {
	snap := r.Snapshot()
	for _, name := range sortedKeys(snap.Counters) {
		pn := promName(name)
		if _, err := fmt.Fprintf(w,
			"# HELP %s_total Cumulative count of %s.\n# TYPE %s_total counter\n%s_total %d\n%s %d\n",
			pn, name, pn, pn, snap.Counters[name], pn, snap.Counters[name]); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(snap.Gauges) {
		pn := promName(name)
		if _, err := fmt.Fprintf(w, "# HELP %s Current value of %s.\n# TYPE %s gauge\n%s %g\n",
			pn, name, pn, pn, snap.Gauges[name]); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(snap.Histograms) {
		pn := promName(name)
		h := snap.Histograms[name]
		if _, err := fmt.Fprintf(w,
			"# HELP %s Distribution of %s in nanoseconds.\n# TYPE %s summary\n%s_count %d\n%s_sum %d\n%s_min %d\n%s_max %d\n",
			pn, name, pn, pn, h.Count, pn, h.SumNs, pn, h.MinNs, pn, h.MaxNs); err != nil {
			return err
		}
	}
	return nil
}

// PromName exposes the Prometheus name mangling, so the serving layer
// can reference exported metric names (e.g. in /metrics exemplar lines).
func PromName(name string) string { return promName(name) }

// promName maps a dotted instrument name to a Prometheus-legal metric
// name: dots and other non-alphanumerics become underscores.
func promName(name string) string {
	var b strings.Builder
	for i, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
			b.WriteRune(c)
		case c >= '0' && c <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteRune(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// FormatDecisionTrace renders the registry's decision events for a
// human: one line per event, fields in lexicographic order. Candidate
// events are grouped under their kind. Returns "" when no events were
// recorded (telemetry off or nothing decided).
func (r *Registry) FormatDecisionTrace() string {
	events := r.Events()
	if len(events) == 0 {
		return ""
	}
	var b strings.Builder
	for _, ev := range events {
		fmt.Fprintf(&b, "%-28s %s", ev.Kind, ev.Name)
		for _, k := range ev.FieldKeys() {
			// An event's name often restates one field (e.g. the grid a
			// candidate was named after); don't print it twice.
			if kv := fmt.Sprintf("%s=%v", k, ev.Fields[k]); kv != ev.Name {
				b.WriteString("  " + kv)
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}
