package telemetry

import (
	"encoding/json"
	"io"
	"sort"
	"strconv"
)

// Chrome trace-event export (the JSON array format of
// chrome://tracing / Perfetto, "Trace Event Format"): spans become
// complete events (ph "X", microsecond ts/dur), decision events become
// instant events (ph "i"), final counter values become counter events
// (ph "C"), and each processor track gets a thread_name metadata event.

// traceEvent is one record of the Chrome trace-event JSON array.
type traceEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"`
	Dur   *float64       `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// trackID maps a span/event processor to a Chrome thread id: the pipeline
// track (proc −1) is tid 0, processor p is tid p+1.
func trackID(proc int) int {
	if proc < 0 {
		return 0
	}
	return proc + 1
}

// WriteChromeTrace writes the registry's spans, events, and counters as a
// Chrome trace-event JSON array. A nil registry writes an empty array.
func (r *Registry) WriteChromeTrace(w io.Writer) error {
	var evs []traceEvent
	if r != nil {
		procs := map[int]bool{-1: true}
		for _, sp := range r.Spans() {
			procs[sp.Proc] = true
			dur := float64(sp.Dur.Nanoseconds()) / 1e3
			evs = append(evs, traceEvent{
				Name: sp.Name, Phase: "X",
				TS: float64(sp.Start.Nanoseconds()) / 1e3, Dur: &dur,
				PID: 1, TID: trackID(sp.Proc), Args: sp.Args,
			})
		}
		for _, ev := range r.Events() {
			evs = append(evs, traceEvent{
				Name: ev.Kind + ":" + ev.Name, Phase: "i",
				TS:  float64(ev.Time.Nanoseconds()) / 1e3,
				PID: 1, TID: 0, Scope: "t", Args: ev.Fields,
			})
		}
		snap := r.Snapshot()
		ts := float64(r.since().Nanoseconds()) / 1e3
		for _, name := range sortedKeys(snap.Counters) {
			evs = append(evs, traceEvent{
				Name: name, Phase: "C", TS: ts, PID: 1, TID: 0,
				Args: map[string]any{"value": snap.Counters[name]},
			})
		}
		// Name the tracks so the viewer shows "pipeline" and "proc N".
		tids := make([]int, 0, len(procs))
		for p := range procs {
			tids = append(tids, p)
		}
		sort.Ints(tids)
		for _, p := range tids {
			name := "pipeline"
			if p >= 0 {
				name = procName(p)
			}
			evs = append(evs, traceEvent{
				Name: "thread_name", Phase: "M", PID: 1, TID: trackID(p),
				Args: map[string]any{"name": name},
			})
		}
	}
	if evs == nil {
		evs = []traceEvent{}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(evs)
}

func procName(p int) string { return "proc " + strconv.Itoa(p) }
