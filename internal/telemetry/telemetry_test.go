package telemetry

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilRegistryIsSafe(t *testing.T) {
	var r *Registry
	r.Counter("c").Add(1)
	r.Gauge("g").Set(2)
	r.Histogram("h").Observe(time.Millisecond)
	sp := r.StartSpan("phase")
	sp.SetArg("k", 1)
	sp.End()
	r.Emit("kind", "name", map[string]any{"x": 1})
	r.RecordSpan(Span{Name: "s"})
	if got := r.Spans(); got != nil {
		t.Errorf("nil registry spans = %v, want nil", got)
	}
	if got := r.Events(); got != nil {
		t.Errorf("nil registry events = %v, want nil", got)
	}
	snap := r.Snapshot()
	if len(snap.Counters) != 0 || len(snap.Gauges) != 0 || len(snap.Histograms) != 0 {
		t.Errorf("nil registry snapshot not empty: %+v", snap)
	}
	var buf bytes.Buffer
	if err := r.WriteChromeTrace(&buf); err != nil {
		t.Fatalf("nil WriteChromeTrace: %v", err)
	}
	var arr []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &arr); err != nil {
		t.Fatalf("nil trace not a JSON array: %v", err)
	}
	if got := r.FormatDecisionTrace(); got != "" {
		t.Errorf("nil FormatDecisionTrace = %q", got)
	}
}

func TestActiveSwap(t *testing.T) {
	if Active() != nil {
		t.Fatalf("telemetry unexpectedly enabled at test start")
	}
	reg := New()
	prev := SetActive(reg)
	if prev != nil {
		t.Errorf("previous active registry = %v, want nil", prev)
	}
	if Active() != reg || !Enabled() {
		t.Errorf("Active() did not return the installed registry")
	}
	SetActive(nil)
	if Enabled() {
		t.Errorf("telemetry still enabled after SetActive(nil)")
	}
}

func TestCountersGaugesHistogramsConcurrent(t *testing.T) {
	reg := New()
	const workers, perWorker = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				reg.Counter("hits").Add(1)
				reg.Gauge("last").Set(float64(i))
				reg.Histogram("lat").Observe(time.Duration(i) * time.Nanosecond)
			}
		}()
	}
	wg.Wait()
	if got := reg.Counter("hits").Value(); got != workers*perWorker {
		t.Errorf("counter = %d, want %d", got, workers*perWorker)
	}
	h := reg.Histogram("lat").Summary()
	if h.Count != workers*perWorker {
		t.Errorf("histogram count = %d, want %d", h.Count, workers*perWorker)
	}
	if h.MinNs != 0 || h.MaxNs != perWorker-1 {
		t.Errorf("histogram min/max = %d/%d, want 0/%d", h.MinNs, h.MaxNs, perWorker-1)
	}
}

func TestSnapshotDelta(t *testing.T) {
	reg := New()
	reg.Counter("sim.cold").Add(10)
	reg.Gauge("imbalance").Set(1.5)
	reg.Histogram("wait").Observe(10 * time.Nanosecond)
	before := reg.Snapshot()
	reg.Counter("sim.cold").Add(7)
	reg.Counter("sim.new").Add(3)
	reg.Gauge("imbalance").Set(2.5)
	reg.Histogram("wait").Observe(20 * time.Nanosecond)
	d := reg.Snapshot().Delta(before)
	if d.Counters["sim.cold"] != 7 || d.Counters["sim.new"] != 3 {
		t.Errorf("counter deltas = %v", d.Counters)
	}
	if _, ok := d.Counters["unchanged"]; ok {
		t.Errorf("zero-delta counter retained")
	}
	if d.Gauges["imbalance"] != 2.5 {
		t.Errorf("gauge delta = %v, want last value 2.5", d.Gauges["imbalance"])
	}
	if h := d.Histograms["wait"]; h.Count != 1 || h.SumNs != 20 {
		t.Errorf("histogram delta = %+v", h)
	}
}

func TestChromeTraceShape(t *testing.T) {
	reg := New()
	sp := reg.StartSpanProc("tile", 3)
	sp.SetArg("iters", 42)
	sp.End()
	reg.Emit("partition.rect", "candidate", map[string]any{"footprint": 104.0})
	reg.Counter("sim.misses").Add(5)
	var buf bytes.Buffer
	if err := reg.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var evs []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &evs); err != nil {
		t.Fatalf("trace is not valid JSON: %v\n%s", err, buf.String())
	}
	var sawX, sawI, sawC, sawM bool
	for _, ev := range evs {
		ph, _ := ev["ph"].(string)
		if _, ok := ev["ts"].(float64); !ok && ph != "M" {
			t.Errorf("event %v missing numeric ts", ev)
		}
		switch ph {
		case "X":
			sawX = true
			if _, ok := ev["dur"].(float64); !ok {
				t.Errorf("complete event missing dur: %v", ev)
			}
			if ev["name"] != "tile" || ev["tid"] != float64(4) {
				t.Errorf("span mapped wrong: %v", ev)
			}
		case "i":
			sawI = true
			if ev["name"] != "partition.rect:candidate" {
				t.Errorf("instant event name = %v", ev["name"])
			}
		case "C":
			sawC = true
		case "M":
			sawM = true
		}
	}
	if !sawX || !sawI || !sawC || !sawM {
		t.Errorf("trace missing event phases: X=%v i=%v C=%v M=%v", sawX, sawI, sawC, sawM)
	}
}

func TestMetricsExports(t *testing.T) {
	reg := New()
	reg.Counter("sim.rect.cold_misses").Add(104)
	reg.Gauge("exec.load_imbalance").Set(1.25)
	reg.Histogram("exec.barrier_wait_ns").Observe(time.Microsecond)

	var jbuf bytes.Buffer
	if err := reg.WriteMetricsJSON(&jbuf); err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal(jbuf.Bytes(), &snap); err != nil {
		t.Fatalf("metrics JSON does not round-trip: %v", err)
	}
	if snap.Counters["sim.rect.cold_misses"] != 104 {
		t.Errorf("counter in JSON dump = %d, want 104", snap.Counters["sim.rect.cold_misses"])
	}
	if snap.Gauges["exec.load_imbalance"] != 1.25 {
		t.Errorf("gauge in JSON dump = %v", snap.Gauges["exec.load_imbalance"])
	}

	var tbuf bytes.Buffer
	if err := reg.WriteMetricsText(&tbuf); err != nil {
		t.Fatal(err)
	}
	text := tbuf.String()
	for _, want := range []string{
		"sim_rect_cold_misses_total 104",
		"sim_rect_cold_misses 104", // legacy alias, one release
		"exec_load_imbalance 1.25",
		"exec_barrier_wait_ns_count 1",
		"# TYPE sim_rect_cold_misses_total counter",
		"# HELP sim_rect_cold_misses_total Cumulative count of sim.rect.cold_misses.",
		"# TYPE exec_load_imbalance gauge",
		"# TYPE exec_barrier_wait_ns summary",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("text dump missing %q:\n%s", want, text)
		}
	}
}

func TestPromName(t *testing.T) {
	cases := map[string]string{
		"sim.rect.cold_misses": "sim_rect_cold_misses",
		"exec.proc[3].iters":   "exec_proc_3__iters",
		"9lives":               "_9lives",
	}
	for in, want := range cases {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestFormatDecisionTrace(t *testing.T) {
	reg := New()
	reg.Emit("partition.rect.candidate", "grid=[2 4]", map[string]any{"footprint": 140.0, "ext": "[12 6]"})
	reg.Emit("partition.rect.chosen", "grid=[8 1]", nil)
	out := reg.FormatDecisionTrace()
	if !strings.Contains(out, "partition.rect.candidate") || !strings.Contains(out, "footprint=140") {
		t.Errorf("decision trace missing candidate line:\n%s", out)
	}
	if !strings.Contains(out, "partition.rect.chosen") {
		t.Errorf("decision trace missing chosen line:\n%s", out)
	}
	// Fields print in sorted key order.
	if strings.Index(out, "ext=") > strings.Index(out, "footprint=") {
		t.Errorf("fields not sorted:\n%s", out)
	}
}

func TestStartPprof(t *testing.T) {
	addr, err := StartPprof("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + addr + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("pprof endpoint status = %d", resp.StatusCode)
	}
}
