// Package telemetry is the instrumentation layer of the reproduction: a
// zero-dependency registry of counters, gauges, duration histograms, spans,
// and structured decision events, threaded through the partitioning
// pipeline (analysis → partition search → simulation → execution).
//
// The paper's argument is quantitative — tile shapes are chosen by
// minimizing a cumulative-footprint cost (Theorems 2/4) and validated
// against measured miss traffic (Figure 3, §5) — so the pipeline records
// the numbers it computes along the way:
//
//   - the partition searches emit one decision event per candidate tile
//     (grid, extents, predicted footprint) and one for the winner, so
//     `looppart -explain` can print why a shape won;
//   - the executor records per-processor tile spans, barrier wait, and
//     striped-lock contention; the cache simulator publishes its Metrics
//     through the same registry;
//   - the whole registry exports as a Chrome trace-event file (-trace), a
//     flat metrics dump (-metrics, JSON or Prometheus-style text), or a
//     Snapshot attached to experiment results.
//
// Telemetry is disabled by default: the active registry is nil and every
// method is nil-receiver-safe, so instrumented code pays only a pointer
// check. Enable it by installing a registry with SetActive (the CLIs do
// this when any observability flag is given).
package telemetry

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// active is the process-wide registry; nil means telemetry is disabled.
var active atomic.Pointer[Registry]

// Active returns the installed registry, or nil when telemetry is off.
// All Registry methods tolerate a nil receiver, so call sites may use the
// result unconditionally.
func Active() *Registry { return active.Load() }

// SetActive installs reg as the process-wide registry (nil disables
// telemetry) and returns the previous registry so callers can restore it.
func SetActive(reg *Registry) *Registry { return active.Swap(reg) }

// Enabled reports whether a registry is installed.
func Enabled() bool { return active.Load() != nil }

// Registry owns the instruments of one run. The zero value is not usable;
// construct with New. A nil *Registry is a valid no-op sink.
type Registry struct {
	start time.Time

	// spanCap/eventCap bound the recorded spans/events (0 = unbounded);
	// see SetRecordCaps. Overflow drops the new record and counts it.
	spanCap       int
	eventCap      int
	droppedSpans  atomic.Int64
	droppedEvents atomic.Int64

	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	spans    []Span
	events   []Event
}

// New creates an empty registry whose clock starts now.
func New() *Registry {
	return &Registry{
		start:    time.Now(),
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// since returns the registry-relative timestamp.
func (r *Registry) since() time.Duration { return time.Since(r.start) }

// SetRecordCaps bounds the span and event buffers, for registries that
// live as long as a serving process rather than one CLI run (counters,
// gauges, and histograms aggregate in place and need no cap). A cap of 0
// leaves that buffer unbounded. Once a buffer is full, later records are
// dropped and counted; the drop totals surface in Snapshot as
// telemetry.dropped_spans / telemetry.dropped_events.
func (r *Registry) SetRecordCaps(spans, events int) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.spanCap = spans
	r.eventCap = events
	r.mu.Unlock()
}

// DroppedRecords returns how many spans and events were dropped at the
// record caps.
func (r *Registry) DroppedRecords() (spans, events int64) {
	if r == nil {
		return 0, 0
	}
	return r.droppedSpans.Load(), r.droppedEvents.Load()
}

// Counter returns the named counter, creating it on first use. Returns nil
// on a nil registry; (*Counter)(nil).Add is a no-op.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. Returns nil on
// a nil registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named duration histogram, creating it on first
// use. Returns nil on a nil registry.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{min: math.MaxInt64}
		r.hists[name] = h
	}
	return h
}

// Counter is a monotonically increasing int64, safe for concurrent use.
type Counter struct{ v atomic.Int64 }

// Add increments the counter; no-op on nil.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-write-wins float64, safe for concurrent use.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v; no-op on nil.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value returns the stored value (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram accumulates durations into power-of-two nanosecond buckets
// (bucket i covers [2^i, 2^(i+1)) ns), tracking count, sum, min, and max.
type Histogram struct {
	mu      sync.Mutex
	count   int64
	sum     int64
	min     int64
	max     int64
	buckets [64]int64
}

// Observe records one duration; no-op on nil. Negative durations clamp to
// zero (they can arise from coarse clocks).
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	b := 0
	for v := ns; v > 1; v >>= 1 {
		b++
	}
	h.mu.Lock()
	h.count++
	h.sum += ns
	if ns < h.min {
		h.min = ns
	}
	if ns > h.max {
		h.max = ns
	}
	h.buckets[b]++
	h.mu.Unlock()
}

// HistSummary is the exported view of a histogram.
type HistSummary struct {
	Count  int64   `json:"count"`
	SumNs  int64   `json:"sum_ns"`
	MinNs  int64   `json:"min_ns"`
	MaxNs  int64   `json:"max_ns"`
	MeanNs float64 `json:"mean_ns"`
}

// Summary returns the histogram totals (zero value on nil or empty).
func (h *Histogram) Summary() HistSummary {
	if h == nil {
		return HistSummary{}
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return HistSummary{}
	}
	return HistSummary{
		Count:  h.count,
		SumNs:  h.sum,
		MinNs:  h.min,
		MaxNs:  h.max,
		MeanNs: float64(h.sum) / float64(h.count),
	}
}

// Snapshot is a point-in-time copy of a registry's instruments, suitable
// for JSON encoding or diffing between pipeline stages.
type Snapshot struct {
	Counters   map[string]int64       `json:"counters,omitempty"`
	Gauges     map[string]float64     `json:"gauges,omitempty"`
	Histograms map[string]HistSummary `json:"histograms,omitempty"`
}

// Snapshot copies the current instrument values (empty snapshot on nil).
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistSummary{},
	}
	if r == nil {
		return s
	}
	if n := r.droppedSpans.Load(); n > 0 {
		s.Counters["telemetry.dropped_spans"] = n
	}
	if n := r.droppedEvents.Load(); n > 0 {
		s.Counters["telemetry.dropped_events"] = n
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		s.Histograms[name] = h.Summary()
	}
	return s
}

// Delta returns this snapshot minus prev: counter and histogram totals
// subtract; gauges keep their current value (last-write-wins semantics).
// Instruments absent from the receiver are dropped.
func (s Snapshot) Delta(prev Snapshot) Snapshot {
	d := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistSummary{},
	}
	for name, v := range s.Counters {
		if dv := v - prev.Counters[name]; dv != 0 {
			d.Counters[name] = dv
		}
	}
	for name, v := range s.Gauges {
		d.Gauges[name] = v
	}
	for name, h := range s.Histograms {
		p := prev.Histograms[name]
		if h.Count == p.Count {
			continue
		}
		dh := HistSummary{Count: h.Count - p.Count, SumNs: h.SumNs - p.SumNs, MinNs: h.MinNs, MaxNs: h.MaxNs}
		if dh.Count > 0 {
			dh.MeanNs = float64(dh.SumNs) / float64(dh.Count)
		}
		d.Histograms[name] = dh
	}
	return d
}

// sortedKeys returns m's keys in lexicographic order.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
