package intmat

// Overflow-checked integer arithmetic. The analytic formulas the whole
// stack optimizes over (cumulative footprints, Theorems 2 and 4; lattice
// intersection, Theorem 3) are only trustworthy if the integer machinery
// under them is: HNF/SNF row operations and Bareiss determinant
// intermediates are exactly the kind of values that silently blow past
// int64. Everything here reports overflow explicitly — as an (value, ok)
// pair, a typed error, or a saturating sentinel — instead of wrapping, so
// a partition search can never rank tiles by a wrapped determinant.
//
// Three tiers, by caller need:
//
//   - CheckedAdd / CheckedMul: math/bits-based primitives returning ok.
//   - SatAdd / SatMul: clamp to ±MaxInt64, preserving sign and order —
//     for cost models where "too big to represent" must still compare as
//     worse than every representable candidate.
//   - DetChecked / HNFChecked / SNFChecked / MulChecked / MulVecChecked:
//     error-returning forms of the package's algorithms. DetChecked
//     additionally falls back to exact big.Int elimination, so it only
//     fails when the determinant itself exceeds int64 (DetBig never
//     fails).
//
// The legacy panicking entry points (Det, HNF, SNF, Mul, MulVec) are thin
// wrappers over the checked forms and keep their historical behavior.

import (
	"errors"
	"fmt"
	"math"
	"math/big"
	"math/bits"
)

// ErrOverflow reports that an int64 computation would wrap. It is the
// target for errors.Is on every checked entry point in this package.
var ErrOverflow = errors.New("intmat: int64 overflow")

// ShapeError reports an operation applied to a matrix of the wrong shape
// (e.g. Det of a non-square matrix).
type ShapeError struct {
	Op         string
	Rows, Cols int
}

func (e *ShapeError) Error() string {
	return fmt.Sprintf("intmat: %s of non-square %dx%d matrix", e.Op, e.Rows, e.Cols)
}

// CheckedAdd returns a+b and whether the sum is representable in int64.
func CheckedAdd(a, b int64) (int64, bool) {
	sum, _ := bits.Add64(uint64(a), uint64(b), 0)
	s := int64(sum)
	// Overflow iff the operands share a sign the sum does not.
	if (a >= 0) == (b >= 0) && (s >= 0) != (a >= 0) {
		return 0, false
	}
	return s, true
}

// CheckedMul returns a·b and whether the product is representable in int64.
func CheckedMul(a, b int64) (int64, bool) {
	if a == 0 || b == 0 {
		return 0, true
	}
	neg := (a < 0) != (b < 0)
	hi, lo := bits.Mul64(absU64(a), absU64(b))
	if hi != 0 {
		return 0, false
	}
	if neg {
		if lo > 1<<63 {
			return 0, false
		}
		return -int64(lo), true // lo == 1<<63 yields MinInt64 exactly
	}
	if lo > math.MaxInt64 {
		return 0, false
	}
	return int64(lo), true
}

// CheckedNeg returns -a and whether it is representable (false only for
// MinInt64).
func CheckedNeg(a int64) (int64, bool) {
	if a == math.MinInt64 {
		return 0, false
	}
	return -a, true
}

// SatAdd returns a+b clamped to [MinInt64, MaxInt64]. Saturation preserves
// sign and ordering, so a saturated cost still compares as worse than any
// exact one.
func SatAdd(a, b int64) int64 {
	if s, ok := CheckedAdd(a, b); ok {
		return s
	}
	if a > 0 {
		return math.MaxInt64
	}
	return math.MinInt64
}

// SatMul returns a·b clamped to [MinInt64, MaxInt64].
func SatMul(a, b int64) int64 {
	if p, ok := CheckedMul(a, b); ok {
		return p
	}
	if (a < 0) != (b < 0) {
		return math.MinInt64
	}
	return math.MaxInt64
}

// absU64 returns |a| as a uint64; exact for MinInt64 (2^63).
func absU64(a int64) uint64 {
	u := uint64(a)
	if a < 0 {
		u = -u
	}
	return u
}

// MulChecked returns m·n, reporting overflow instead of panicking.
// Shape mismatches still return a typed error, not a panic.
func (m Mat) MulChecked(n Mat) (Mat, error) {
	if m.cols != n.rows {
		return Mat{}, fmt.Errorf("intmat: Mul shape mismatch %dx%d · %dx%d", m.rows, m.cols, n.rows, n.cols)
	}
	p := NewMat(m.rows, n.cols)
	for i := 0; i < m.rows; i++ {
		for k := 0; k < m.cols; k++ {
			mik := m.At(i, k)
			if mik == 0 {
				continue
			}
			for j := 0; j < n.cols; j++ {
				prod, ok := CheckedMul(mik, n.At(k, j))
				if !ok {
					return Mat{}, fmt.Errorf("%w: product entry (%d,%d)", ErrOverflow, i, j)
				}
				sum, ok := CheckedAdd(p.At(i, j), prod)
				if !ok {
					return Mat{}, fmt.Errorf("%w: product entry (%d,%d)", ErrOverflow, i, j)
				}
				p.Set(i, j, sum)
			}
		}
	}
	return p, nil
}

// MulVecChecked returns the row-vector product v·m, reporting overflow
// instead of panicking.
func (m Mat) MulVecChecked(v []int64) ([]int64, error) {
	if len(v) != m.rows {
		return nil, fmt.Errorf("intmat: MulVec length mismatch: %d coefficients for %d rows", len(v), m.rows)
	}
	out := make([]int64, m.cols)
	for i, vi := range v {
		if vi == 0 {
			continue
		}
		for j := 0; j < m.cols; j++ {
			prod, ok := CheckedMul(vi, m.At(i, j))
			if !ok {
				return nil, fmt.Errorf("%w: v·m component %d", ErrOverflow, j)
			}
			sum, ok := CheckedAdd(out[j], prod)
			if !ok {
				return nil, fmt.Errorf("%w: v·m component %d", ErrOverflow, j)
			}
			out[j] = sum
		}
	}
	return out, nil
}

// DetChecked returns the determinant of a square matrix. Bareiss
// elimination runs first in int64 with every intermediate checked; if any
// intermediate would wrap, the computation restarts in exact big.Int
// arithmetic, so the only failures are a non-square receiver (ShapeError)
// or a determinant whose value itself exceeds int64 (ErrOverflow — use
// DetBig for those).
func (m Mat) DetChecked() (int64, error) {
	if !m.IsSquare() {
		return 0, &ShapeError{Op: "Det", Rows: m.rows, Cols: m.cols}
	}
	if d, ok := m.detBareiss(); ok {
		return d, nil
	}
	d := m.DetBig()
	if d.IsInt64() {
		return d.Int64(), nil
	}
	return 0, fmt.Errorf("%w: determinant %s exceeds int64", ErrOverflow, d.String())
}

// detBareiss is fraction-free elimination with checked intermediates;
// ok is false when any intermediate would wrap int64.
func (m Mat) detBareiss() (int64, bool) {
	n := m.rows
	if n == 0 {
		return 1, true
	}
	w := m.Clone()
	sign := int64(1)
	prev := int64(1)
	for k := 0; k < n-1; k++ {
		if w.At(k, k) == 0 {
			p := -1
			for i := k + 1; i < n; i++ {
				if w.At(i, k) != 0 {
					p = i
					break
				}
			}
			if p == -1 {
				return 0, true
			}
			w.swapRows(k, p)
			sign = -sign
		}
		for i := k + 1; i < n; i++ {
			for j := k + 1; j < n; j++ {
				p1, ok := CheckedMul(w.At(i, j), w.At(k, k))
				if !ok {
					return 0, false
				}
				p2, ok := CheckedMul(w.At(i, k), w.At(k, j))
				if !ok {
					return 0, false
				}
				num, ok := CheckedAdd(p1, -p2)
				if !ok || p2 == math.MinInt64 {
					return 0, false
				}
				w.Set(i, j, num/prev) // exact by Bareiss invariant
			}
			w.Set(i, k, 0)
		}
		prev = w.At(k, k)
	}
	return sign * w.At(n-1, n-1), true
}

// DetBig returns the exact determinant as a big.Int, via the same Bareiss
// elimination over arbitrary precision. It panics only on a non-square
// receiver.
func (m Mat) DetBig() *big.Int {
	if !m.IsSquare() {
		panic((&ShapeError{Op: "DetBig", Rows: m.rows, Cols: m.cols}).Error())
	}
	n := m.rows
	if n == 0 {
		return big.NewInt(1)
	}
	w := make([][]*big.Int, n)
	for i := 0; i < n; i++ {
		w[i] = make([]*big.Int, n)
		for j := 0; j < n; j++ {
			w[i][j] = big.NewInt(m.At(i, j))
		}
	}
	sign := int64(1)
	prev := big.NewInt(1)
	var tmp big.Int
	for k := 0; k < n-1; k++ {
		if w[k][k].Sign() == 0 {
			p := -1
			for i := k + 1; i < n; i++ {
				if w[i][k].Sign() != 0 {
					p = i
					break
				}
			}
			if p == -1 {
				return big.NewInt(0)
			}
			w[k], w[p] = w[p], w[k]
			sign = -sign
		}
		for i := k + 1; i < n; i++ {
			for j := k + 1; j < n; j++ {
				num := new(big.Int).Mul(w[i][j], w[k][k])
				num.Sub(num, tmp.Mul(w[i][k], w[k][j]))
				w[i][j] = num.Quo(num, prev) // exact by Bareiss invariant
			}
			w[i][k] = big.NewInt(0)
		}
		prev = w[k][k]
	}
	d := new(big.Int).Set(w[n-1][n-1])
	if sign < 0 {
		d.Neg(d)
	}
	return d
}
