package intmat

import (
	"math/rand"
	"testing"
)

func TestHNFBasic(t *testing.T) {
	a := FromRows([][]int64{{2, 4}, {3, 5}})
	res := HNF(a)
	// H must equal U·A.
	if !res.U.Mul(a).Equal(res.H) {
		t.Fatalf("U·A != H: U=%v A=%v H=%v", res.U, a, res.H)
	}
	if !res.U.IsUnimodular() {
		t.Fatalf("U not unimodular: %v", res.U)
	}
	if res.Rank != 2 {
		t.Fatalf("rank = %d", res.Rank)
	}
	// Echelon with positive pivots.
	for k, col := range res.PivotCols {
		if res.H.At(k, col) <= 0 {
			t.Errorf("pivot %d at col %d is %d", k, col, res.H.At(k, col))
		}
		for i := k + 1; i < res.H.Rows(); i++ {
			if res.H.At(i, col) != 0 {
				t.Errorf("entry below pivot (%d,%d) nonzero", i, col)
			}
		}
		for i := 0; i < k; i++ {
			v := res.H.At(i, col)
			if v < 0 || v >= res.H.At(k, col) {
				t.Errorf("entry above pivot (%d,%d)=%d not reduced", i, col, v)
			}
		}
	}
}

func TestHNFRandomInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 300; trial++ {
		r, c := 1+rng.Intn(4), 1+rng.Intn(4)
		a := randMat(rng, r, c, 6)
		res := HNF(a)
		if !res.U.Mul(a).Equal(res.H) {
			t.Fatalf("trial %d: U·A != H for %v", trial, a)
		}
		if !res.U.IsUnimodular() {
			t.Fatalf("trial %d: U not unimodular for %v", trial, a)
		}
		if res.Rank != a.Rank() {
			t.Fatalf("trial %d: HNF rank %d != rank %d for %v", trial, res.Rank, a.Rank(), a)
		}
	}
}

func TestSolveIntLeft(t *testing.T) {
	// Lattice rows (1,1) and (1,-1): t=(4,2)=3·(1,1)+1·(1,-1) — the
	// Example 10 spread decomposition.
	a := FromRows([][]int64{{1, 1}, {1, -1}})
	u, ok := SolveIntLeft(a, []int64{4, 2})
	if !ok {
		t.Fatal("(4,2) should be in the lattice")
	}
	if u[0] != 3 || u[1] != 1 {
		t.Fatalf("u = %v, want [3 1]", u)
	}
	// (1,0) is NOT in that lattice (components must have equal parity).
	if _, ok := SolveIntLeft(a, []int64{1, 0}); ok {
		t.Error("(1,0) should not be in the lattice")
	}
	// (1,1) trivially in.
	u2, ok := SolveIntLeft(a, []int64{1, 1})
	if !ok || u2[0] != 1 || u2[1] != 0 {
		t.Fatalf("u2 = %v ok=%v", u2, ok)
	}
}

func TestSolveIntLeftRandomRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 300; trial++ {
		r, c := 1+rng.Intn(3), 1+rng.Intn(3)
		a := randMat(rng, r, c, 5)
		// Construct t from a random integer combination.
		coef := make([]int64, r)
		for i := range coef {
			coef[i] = int64(rng.Intn(9) - 4)
		}
		tvec := a.MulVec(coef) // t = coef·A
		u, ok := SolveIntLeft(a, tvec)
		if !ok {
			t.Fatalf("trial %d: constructed t=%v not found in lattice of %v", trial, tvec, a)
		}
		// Verify u·A == t.
		back := a.MulVec(u)
		for k := range tvec {
			if back[k] != tvec[k] {
				t.Fatalf("trial %d: u·A = %v != t = %v", trial, back, tvec)
			}
		}
	}
}

func TestSolveIntLeftNonMembers(t *testing.T) {
	// Lattice of (2,0),(0,2): even vectors only.
	a := Diag(2, 2)
	if _, ok := SolveIntLeft(a, []int64{1, 2}); ok {
		t.Error("(1,2) not in 2Z×2Z")
	}
	if u, ok := SolveIntLeft(a, []int64{-4, 6}); !ok || u[0] != -2 || u[1] != 3 {
		t.Errorf("(-4,6): u=%v ok=%v", u, ok)
	}
}

func TestInRowLattice(t *testing.T) {
	// A[2i] vs A[2i+1]: offsets differ by 1, lattice is 2Z — disjoint
	// footprints (paper's canonical non-intersecting example).
	a := FromRows([][]int64{{2}})
	if InRowLattice(a, []int64{1}) {
		t.Error("1 should not be in 2Z")
	}
	if !InRowLattice(a, []int64{-6}) {
		t.Error("-6 should be in 2Z")
	}
}

func TestSNFBasic(t *testing.T) {
	a := FromRows([][]int64{{2, 4, 4}, {-6, 6, 12}, {10, -4, -16}})
	res := SNF(a)
	if !res.U.Mul(a).Mul(res.V).Equal(res.S) {
		t.Fatalf("U·A·V != S")
	}
	if !res.U.IsUnimodular() || !res.V.IsUnimodular() {
		t.Fatal("U or V not unimodular")
	}
	// Known Smith form of this classic example: diag(2, 6, 12).
	want := []int64{2, 6, 12}
	if len(res.Invariants) != 3 {
		t.Fatalf("invariants = %v", res.Invariants)
	}
	for i, w := range want {
		if res.Invariants[i] != w {
			t.Fatalf("invariants = %v, want %v", res.Invariants, want)
		}
	}
}

func TestSNFRandomInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 200; trial++ {
		r, c := 1+rng.Intn(3), 1+rng.Intn(3)
		a := randMat(rng, r, c, 5)
		res := SNF(a)
		if !res.U.Mul(a).Mul(res.V).Equal(res.S) {
			t.Fatalf("trial %d: U·A·V != S for %v", trial, a)
		}
		if !res.U.IsUnimodular() || !res.V.IsUnimodular() {
			t.Fatalf("trial %d: transforms not unimodular for %v", trial, a)
		}
		// Divisibility chain and positivity.
		for i := 0; i+1 < len(res.Invariants); i++ {
			if res.Invariants[i] <= 0 || res.Invariants[i+1]%res.Invariants[i] != 0 {
				t.Fatalf("trial %d: invariants %v not a divisor chain for %v", trial, res.Invariants, a)
			}
		}
		if len(res.Invariants) != a.Rank() {
			t.Fatalf("trial %d: %d invariants, rank %d for %v", trial, len(res.Invariants), a.Rank(), a)
		}
		// Off-diagonal zero.
		for i := 0; i < res.S.Rows(); i++ {
			for j := 0; j < res.S.Cols(); j++ {
				if i != j && res.S.At(i, j) != 0 {
					t.Fatalf("trial %d: S not diagonal: %v", trial, res.S)
				}
			}
		}
	}
}

func TestSNFDetPreserved(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(3)
		a := randMat(rng, n, n, 4)
		res := SNF(a)
		prod := int64(1)
		for _, v := range res.Invariants {
			prod *= v
		}
		if len(res.Invariants) < n {
			prod = 0
		}
		d := a.Det()
		if d < 0 {
			d = -d
		}
		if prod != d {
			t.Fatalf("trial %d: Π invariants = %d, |det| = %d for %v", trial, prod, d, a)
		}
	}
}

func TestFloorDiv(t *testing.T) {
	cases := []struct{ a, b, want int64 }{
		{7, 2, 3}, {-7, 2, -4}, {7, -2, -4}, {-7, -2, 3},
		{6, 3, 2}, {-6, 3, -2}, {0, 5, 0},
	}
	for _, c := range cases {
		if got := floorDiv(c.a, c.b); got != c.want {
			t.Errorf("floorDiv(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func BenchmarkHNF3x3(b *testing.B) {
	a := FromRows([][]int64{{2, 4, 4}, {-6, 6, 12}, {10, 4, 16}})
	for i := 0; i < b.N; i++ {
		_ = HNF(a)
	}
}

func BenchmarkSNF3x3(b *testing.B) {
	a := FromRows([][]int64{{2, 4, 4}, {-6, 6, 12}, {10, 4, 16}})
	for i := 0; i < b.N; i++ {
		_ = SNF(a)
	}
}

func BenchmarkSolveIntLeft(b *testing.B) {
	a := FromRows([][]int64{{1, 1}, {1, -1}})
	t := []int64{4, 2}
	for i := 0; i < b.N; i++ {
		_, _ = SolveIntLeft(a, t)
	}
}

func TestLeftNullspaceInt(t *testing.T) {
	// G = [[1],[1]] (the A[i+j] map): left null space spanned by (1,-1).
	g := FromRows([][]int64{{1}, {1}})
	basis := LeftNullspaceInt(g)
	if len(basis) != 1 {
		t.Fatalf("basis = %v", basis)
	}
	n := basis[0]
	if v := n[0]*1 + n[1]*1; v != 0 {
		t.Fatalf("n·G = %d for n = %v", v, n)
	}
	if n[0] == 0 && n[1] == 0 {
		t.Fatal("zero basis vector")
	}
	// Full-rank square matrix: empty null space.
	if b := LeftNullspaceInt(FromRows([][]int64{{1, 1}, {1, -1}})); len(b) != 0 {
		t.Fatalf("nonsingular matrix has null space %v", b)
	}
}

func TestLeftNullspaceIntRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 200; trial++ {
		r, c := 1+rng.Intn(4), 1+rng.Intn(4)
		m := randMat(rng, r, c, 4)
		basis := LeftNullspaceInt(m)
		if len(basis) != r-m.Rank() {
			t.Fatalf("trial %d: %d basis vectors, want %d for %v", trial, len(basis), r-m.Rank(), m)
		}
		for _, n := range basis {
			prod := m.MulVec(n)
			for _, v := range prod {
				if v != 0 {
					t.Fatalf("trial %d: n·m = %v != 0 for n=%v m=%v", trial, prod, n, m)
				}
			}
		}
	}
}

func TestRightNullspaceInt(t *testing.T) {
	// m = [[1,2]], right null space: x with x₁ + 2x₂ = 0 → (2,-1) scaled.
	m := FromRows([][]int64{{1, 2}})
	basis := RightNullspaceInt(m)
	if len(basis) != 1 {
		t.Fatalf("basis = %v", basis)
	}
	if m.At(0, 0)*basis[0][0]+m.At(0, 1)*basis[0][1] != 0 {
		t.Fatalf("m·x != 0 for %v", basis[0])
	}
}
