package intmat

import (
	"errors"
	"math"
	"math/big"
	"testing"
)

func TestCheckedAdd(t *testing.T) {
	cases := []struct {
		a, b int64
		want int64
		ok   bool
	}{
		{0, 0, 0, true},
		{1, 2, 3, true},
		{-5, 3, -2, true},
		{math.MaxInt64, 0, math.MaxInt64, true},
		{math.MaxInt64, 1, 0, false},
		{math.MinInt64, -1, 0, false},
		{math.MinInt64, math.MaxInt64, -1, true},
		{math.MaxInt64, math.MaxInt64, 0, false},
		{math.MinInt64, math.MinInt64, 0, false},
		{1 << 62, 1 << 62, 0, false},
		{-(1 << 62), -(1 << 62), math.MinInt64, true},
	}
	for _, c := range cases {
		got, ok := CheckedAdd(c.a, c.b)
		if ok != c.ok || (ok && got != c.want) {
			t.Errorf("CheckedAdd(%d, %d) = %d, %v; want %d, %v", c.a, c.b, got, ok, c.want, c.ok)
		}
	}
}

func TestCheckedMul(t *testing.T) {
	cases := []struct {
		a, b int64
		want int64
		ok   bool
	}{
		{0, math.MinInt64, 0, true},
		{math.MinInt64, 0, 0, true},
		{3, 7, 21, true},
		{-3, 7, -21, true},
		{math.MinInt64, 1, math.MinInt64, true},
		{1, math.MinInt64, math.MinInt64, true},
		{math.MinInt64, -1, 0, false},
		{math.MinInt64, 2, 0, false},
		{1 << 32, 1 << 31, 0, false},
		{-(1 << 32), 1 << 31, math.MinInt64, true}, // exactly -2^63
		{1 << 31, 1 << 31, 1 << 62, true},
		{math.MaxInt64, math.MaxInt64, 0, false},
		{math.MaxInt64, -1, -math.MaxInt64, true},
	}
	for _, c := range cases {
		got, ok := CheckedMul(c.a, c.b)
		if ok != c.ok || (ok && got != c.want) {
			t.Errorf("CheckedMul(%d, %d) = %d, %v; want %d, %v", c.a, c.b, got, ok, c.want, c.ok)
		}
	}
}

func TestCheckedNeg(t *testing.T) {
	if v, ok := CheckedNeg(5); !ok || v != -5 {
		t.Errorf("CheckedNeg(5) = %d, %v", v, ok)
	}
	if v, ok := CheckedNeg(math.MinInt64); ok {
		t.Errorf("CheckedNeg(MinInt64) = %d, %v; want ok=false", v, ok)
	}
	if v, ok := CheckedNeg(math.MaxInt64); !ok || v != math.MinInt64+1 {
		t.Errorf("CheckedNeg(MaxInt64) = %d, %v", v, ok)
	}
}

func TestSaturating(t *testing.T) {
	if got := SatAdd(math.MaxInt64, 1); got != math.MaxInt64 {
		t.Errorf("SatAdd(MaxInt64, 1) = %d", got)
	}
	if got := SatAdd(math.MinInt64, -1); got != math.MinInt64 {
		t.Errorf("SatAdd(MinInt64, -1) = %d", got)
	}
	if got := SatAdd(40, 2); got != 42 {
		t.Errorf("SatAdd(40, 2) = %d", got)
	}
	if got := SatMul(math.MaxInt64, 2); got != math.MaxInt64 {
		t.Errorf("SatMul(MaxInt64, 2) = %d", got)
	}
	if got := SatMul(math.MaxInt64, -2); got != math.MinInt64 {
		t.Errorf("SatMul(MaxInt64, -2) = %d", got)
	}
	if got := SatMul(-6, 7); got != -42 {
		t.Errorf("SatMul(-6, 7) = %d", got)
	}
	// Saturated values must still order correctly against exact ones.
	if !(SatMul(1<<40, 1<<40) > SatMul(1<<30, 1<<30)) {
		t.Error("saturated product does not compare as worse than exact product")
	}
}

func TestDetCheckedBigFallback(t *testing.T) {
	// Entries large enough that Bareiss int64 intermediates wrap, but the
	// determinant itself fits: the big.Int fallback must recover it.
	const k = int64(1) << 32
	m := FromRows([][]int64{
		{k, 1, 0},
		{1, k, 1},
		{0, 1, k},
	})
	// det = k(k²−1) − k = k³ − 2k, which overflows int64 for k = 2^32, so
	// DetChecked must report ErrOverflow while DetBig stays exact.
	if _, err := m.DetChecked(); !errors.Is(err, ErrOverflow) {
		t.Fatalf("DetChecked: want ErrOverflow, got %v", err)
	}
	want := new(big.Int).Mul(big.NewInt(k), big.NewInt(k))
	want.Mul(want, big.NewInt(k))
	want.Sub(want, new(big.Int).Mul(big.NewInt(2), big.NewInt(k)))
	if got := m.DetBig(); got.Cmp(want) != 0 {
		t.Errorf("DetBig = %s, want %s", got, want)
	}

	// Representable determinant with wrapping intermediates: 2x2 with huge
	// off-diagonal cancellation.
	const h = int64(1) << 62
	m2 := FromRows([][]int64{
		{h, h - 1},
		{h - 1, h - 2},
	})
	// det = h(h−2) − (h−1)² = −1: intermediates overflow, value is tiny.
	d, err := m2.DetChecked()
	if err != nil {
		t.Fatalf("DetChecked big fallback: %v", err)
	}
	if d != -1 {
		t.Errorf("DetChecked = %d, want -1", d)
	}
}

func TestDetCheckedShapeError(t *testing.T) {
	m := NewMat(2, 3)
	_, err := m.DetChecked()
	var se *ShapeError
	if !errors.As(err, &se) {
		t.Fatalf("DetChecked non-square: want ShapeError, got %v", err)
	}
	if se.Op != "Det" || se.Rows != 2 || se.Cols != 3 {
		t.Errorf("ShapeError = %+v", se)
	}
}

func TestMulCheckedOverflow(t *testing.T) {
	big1 := Diag(math.MaxInt64, math.MaxInt64)
	if _, err := big1.MulChecked(big1); !errors.Is(err, ErrOverflow) {
		t.Errorf("MulChecked of huge diagonals: want ErrOverflow, got %v", err)
	}
	a := FromRows([][]int64{{1, 2}, {3, 4}})
	b := FromRows([][]int64{{5, 6}, {7, 8}})
	p, err := a.MulChecked(b)
	if err != nil {
		t.Fatalf("MulChecked: %v", err)
	}
	if !p.Equal(a.Mul(b)) {
		t.Errorf("MulChecked disagrees with Mul: %v vs %v", p, a.Mul(b))
	}
}

func TestMulVecCheckedOverflow(t *testing.T) {
	m := Diag(math.MaxInt64)
	if _, err := m.MulVecChecked([]int64{2}); !errors.Is(err, ErrOverflow) {
		t.Errorf("MulVecChecked: want ErrOverflow, got %v", err)
	}
	got, err := FromRows([][]int64{{1, 2}, {3, 4}}).MulVecChecked([]int64{5, 6})
	if err != nil {
		t.Fatalf("MulVecChecked: %v", err)
	}
	if got[0] != 23 || got[1] != 34 {
		t.Errorf("MulVecChecked = %v, want [23 34]", got)
	}
}

func TestHNFCheckedOverflow(t *testing.T) {
	// A row operation k·row with k derived from a huge quotient must report
	// overflow instead of wrapping.
	m := FromRows([][]int64{
		{1, math.MaxInt64},
		{2, math.MaxInt64},
	})
	if _, err := HNFChecked(m); err != nil && !errors.Is(err, ErrOverflow) {
		t.Errorf("HNFChecked: unexpected error kind: %v", err)
	}
	// Small matrices must round-trip without error.
	if _, err := HNFChecked(FromRows([][]int64{{2, 4, 4}, {-6, 6, 12}, {10, 4, 16}})); err != nil {
		t.Errorf("HNFChecked small: %v", err)
	}
}

func TestSNFCheckedSmall(t *testing.T) {
	r, err := SNFChecked(FromRows([][]int64{{2, 4, 4}, {-6, 6, 12}, {10, 4, 16}}))
	if err != nil {
		t.Fatalf("SNFChecked: %v", err)
	}
	// d₁ = gcd(entries) = 2, d₁d₂ = gcd(2×2 minors) = 4, d₁d₂d₃ = det = 624.
	want := []int64{2, 2, 156}
	if len(r.Invariants) != len(want) {
		t.Fatalf("invariants = %v, want %v", r.Invariants, want)
	}
	for i, v := range want {
		if r.Invariants[i] != v {
			t.Fatalf("invariants = %v, want %v", r.Invariants, want)
		}
	}
}
