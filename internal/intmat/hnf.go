package intmat

import (
	"fmt"
	"math"
)

// This file implements the Hermite and Smith normal forms used by the
// lattice machinery. The paper invokes the Hermite normal form theorem
// twice: in Lemma 2 (the map i ↦ i·G is onto iff the columns of G are
// independent and the gcd of the maximal minors is 1) and implicitly in
// Theorem 3, where deciding whether two translated bounded lattices
// intersect requires solving t = Σ uᵢ·aᵢ over the integers.
//
// We use the ROW convention throughout: the lattice associated with a
// matrix A is the set of integer combinations of the rows of A, matching
// the paper's row-vector iteration spaces. The row Hermite normal form of
// A is H = U·A with U unimodular, H in row-echelon form with positive
// pivots and entries below each pivot zero, entries above each pivot
// reduced into [0, pivot).
//
// Every algorithm comes in two forms: a *Checked variant whose row
// operations detect int64 overflow and return ErrOverflow, and the legacy
// panicking form wrapping it. The Euclid-style reductions keep entries
// near the input magnitudes, but adversarial inputs (fuzzed matrices,
// large-entry tiles) can genuinely wrap — those must surface as errors,
// not as a wrong lattice basis.

// HNFResult carries the row Hermite normal form H = U·A.
type HNFResult struct {
	H Mat // the Hermite normal form, same shape as A
	U Mat // unimodular transform, rows(A) × rows(A)
	// PivotCols[k] is the column of the k-th pivot; len(PivotCols) == Rank.
	PivotCols []int
	Rank      int
}

// HNF computes the row Hermite normal form of m. It panics on int64
// overflow; HNFChecked reports it as an error instead.
func HNF(m Mat) HNFResult {
	r, err := HNFChecked(m)
	if err != nil {
		panic(err.Error())
	}
	return r
}

// HNFChecked computes the row Hermite normal form of m with every row
// operation overflow-checked.
func HNFChecked(m Mat) (HNFResult, error) {
	h := m.Clone()
	u := Identity(m.rows)
	var pivots []int
	row := 0
	for col := 0; col < h.cols && row < h.rows; col++ {
		// Reduce column `col` below `row` to a single positive pivot via
		// the extended Euclid row operations.
		p := -1
		for i := row; i < h.rows; i++ {
			if h.At(i, col) != 0 {
				p = i
				break
			}
		}
		if p == -1 {
			continue
		}
		h.swapRows(row, p)
		u.swapRows(row, p)
		for i := row + 1; i < h.rows; i++ {
			for h.At(i, col) != 0 {
				a, b := h.At(row, col), h.At(i, col)
				if abs(b) < abs(a) || a == 0 {
					h.swapRows(row, i)
					u.swapRows(row, i)
					continue
				}
				q := b / a
				if err := addRowMultipleChecked(h, u, i, row, -q); err != nil {
					return HNFResult{}, err
				}
			}
		}
		if h.At(row, col) < 0 {
			if err := negateRowChecked(h, u, row); err != nil {
				return HNFResult{}, err
			}
		}
		// Reduce entries above the pivot into [0, pivot).
		piv := h.At(row, col)
		for i := 0; i < row; i++ {
			v := h.At(i, col)
			q := floorDiv(v, piv)
			if q != 0 {
				if err := addRowMultipleChecked(h, u, i, row, -q); err != nil {
					return HNFResult{}, err
				}
			}
		}
		pivots = append(pivots, col)
		row++
	}
	return HNFResult{H: h, U: u, PivotCols: pivots, Rank: row}, nil
}

// addRowMultipleChecked adds k times row src to row dst in both h and u,
// reporting overflow. The pair updates together so a failed operation
// cannot leave H and U out of sync with H = U·A.
func addRowMultipleChecked(h, u Mat, dst, src int, k int64) error {
	if k == 0 {
		return nil
	}
	if err := h.addRowMultiple(dst, src, k); err != nil {
		return err
	}
	return u.addRowMultiple(dst, src, k)
}

// addRowMultiple adds k times row src to row dst, reporting overflow.
func (m Mat) addRowMultiple(dst, src int, k int64) error {
	if k == 0 {
		return nil
	}
	for c := 0; c < m.cols; c++ {
		prod, ok := CheckedMul(k, m.At(src, c))
		if !ok {
			return fmt.Errorf("%w: row operation %d += %d·row %d", ErrOverflow, dst, k, src)
		}
		sum, ok := CheckedAdd(m.At(dst, c), prod)
		if !ok {
			return fmt.Errorf("%w: row operation %d += %d·row %d", ErrOverflow, dst, k, src)
		}
		m.Set(dst, c, sum)
	}
	return nil
}

// negateRowChecked negates row i of both h and u; the only unrepresentable
// negation is of MinInt64.
func negateRowChecked(h, u Mat, i int) error {
	if err := h.negateRow(i); err != nil {
		return err
	}
	return u.negateRow(i)
}

func (m Mat) negateRow(i int) error {
	for c := 0; c < m.cols; c++ {
		v, ok := CheckedNeg(m.At(i, c))
		if !ok {
			return fmt.Errorf("%w: negating row %d", ErrOverflow, i)
		}
		m.Set(i, c, v)
	}
	return nil
}

func abs(a int64) int64 {
	if a < 0 {
		return -a
	}
	return a
}

// floorDiv returns floor(a/b) for b != 0.
func floorDiv(a, b int64) int64 {
	q := a / b
	if (a%b != 0) && ((a < 0) != (b < 0)) {
		q--
	}
	return q
}

// SolveIntLeft solves u·A = t for an integer row vector u, where the rows
// of A generate a lattice (Theorem 3's membership test). It returns the
// coordinate vector u and true if t is in the row lattice of A; otherwise
// ok is false. When the rows of A are linearly dependent the returned u is
// one valid solution. It panics on int64 overflow; SolveIntLeftChecked
// reports it as an error.
func SolveIntLeft(a Mat, t []int64) (u []int64, ok bool) {
	u, ok, err := SolveIntLeftChecked(a, t)
	if err != nil {
		panic(err.Error())
	}
	return u, ok
}

// SolveIntLeftChecked is SolveIntLeft with overflow surfaced as an error.
func SolveIntLeftChecked(a Mat, t []int64) (u []int64, ok bool, err error) {
	if len(t) != a.cols {
		return nil, false, fmt.Errorf("intmat: SolveIntLeft length mismatch: %d components for %d columns", len(t), a.cols)
	}
	hr, err := HNFChecked(a)
	if err != nil {
		return nil, false, err
	}
	// Solve y·H = t by forward substitution over pivot columns, then
	// u = y·U.
	y := make([]int64, a.rows)
	rem := make([]int64, len(t))
	copy(rem, t)
	for k, col := range hr.PivotCols {
		piv := hr.H.At(k, col)
		if rem[col]%piv != 0 {
			return nil, false, nil
		}
		y[k] = rem[col] / piv
		if y[k] != 0 {
			for c := 0; c < a.cols; c++ {
				prod, okm := CheckedMul(y[k], hr.H.At(k, c))
				if !okm {
					return nil, false, fmt.Errorf("%w: forward substitution", ErrOverflow)
				}
				sum, oka := CheckedAdd(rem[c], -prod)
				if !oka || prod == math.MinInt64 {
					return nil, false, fmt.Errorf("%w: forward substitution", ErrOverflow)
				}
				rem[c] = sum
			}
		}
	}
	for _, v := range rem {
		if v != 0 {
			return nil, false, nil
		}
	}
	u, err = hr.U.MulVecChecked(y) // u = y·U
	if err != nil {
		return nil, false, err
	}
	return u, true, nil
}

// InRowLattice reports whether t is an integer combination of the rows of a.
func InRowLattice(a Mat, t []int64) bool {
	_, ok := SolveIntLeft(a, t)
	return ok
}

// SNFResult carries the Smith normal form S = U·A·V with U, V unimodular
// and S diagonal with s₁ | s₂ | … | s_r.
type SNFResult struct {
	S Mat
	U Mat // rows(A) × rows(A), unimodular
	V Mat // cols(A) × cols(A), unimodular
	// Invariants holds the nonzero diagonal entries s₁..s_r.
	Invariants []int64
}

// SNF computes the Smith normal form of m. The product of the invariant
// factors is the index of the row lattice in Z^d (for full-rank square m,
// |det m|); the map i ↦ i·G is onto Z^d exactly when all invariant factors
// are 1 (the paper's Lemma 2). It panics on int64 overflow; SNFChecked
// reports it as an error instead.
func SNF(m Mat) SNFResult {
	r, err := SNFChecked(m)
	if err != nil {
		panic(err.Error())
	}
	return r
}

// SNFChecked computes the Smith normal form of m with every row and
// column operation overflow-checked.
func SNFChecked(m Mat) (SNFResult, error) {
	s := m.Clone()
	u := Identity(m.rows)
	v := Identity(m.cols)
	n := min(m.rows, m.cols)
	for k := 0; k < n; k++ {
		if !snfPivot(s, u, v, k) {
			break
		}
		// Eliminate row and column k beyond the pivot.
		for {
			again := false
			for i := k + 1; i < s.rows; i++ {
				for s.At(i, k) != 0 {
					q := s.At(i, k) / s.At(k, k)
					if err := addRowMultipleChecked(s, u, i, k, -q); err != nil {
						return SNFResult{}, err
					}
					if s.At(i, k) != 0 {
						s.swapRows(k, i)
						u.swapRows(k, i)
						again = true
					}
				}
			}
			for j := k + 1; j < s.cols; j++ {
				for s.At(k, j) != 0 {
					q := s.At(k, j) / s.At(k, k)
					if err := addColMultipleChecked(s, v, j, k, -q); err != nil {
						return SNFResult{}, err
					}
					if s.At(k, j) != 0 {
						swapCols(s, k, j)
						swapCols(v, k, j)
						again = true
					}
				}
			}
			if !again {
				break
			}
		}
		// Enforce divisibility s_k | s_{k+1}.. by folding any offender in.
		for i := k + 1; i < s.rows; i++ {
			for j := k + 1; j < s.cols; j++ {
				if s.At(i, j)%s.At(k, k) != 0 {
					// Add row i to row k, then re-eliminate.
					if err := addRowMultipleChecked(s, u, k, i, 1); err != nil {
						return SNFResult{}, err
					}
					k--
					goto next
				}
			}
		}
		if s.At(k, k) < 0 {
			if err := negateRowChecked(s, u, k); err != nil {
				return SNFResult{}, err
			}
		}
	next:
	}
	var inv []int64
	for k := 0; k < n; k++ {
		if d := s.At(k, k); d != 0 {
			inv = append(inv, d)
		}
	}
	return SNFResult{S: s, U: u, V: v, Invariants: inv}, nil
}

// snfPivot moves a nonzero entry from the trailing submatrix to (k,k).
// Returns false if the trailing submatrix is all zero.
func snfPivot(s, u, v Mat, k int) bool {
	for i := k; i < s.rows; i++ {
		for j := k; j < s.cols; j++ {
			if s.At(i, j) != 0 {
				if i != k {
					s.swapRows(k, i)
					u.swapRows(k, i)
				}
				if j != k {
					swapCols(s, k, j)
					swapCols(v, k, j)
				}
				return true
			}
		}
	}
	return false
}

// addColMultipleChecked adds k times column src to column dst in both s
// and v, reporting overflow.
func addColMultipleChecked(s, v Mat, dst, src int, k int64) error {
	if k == 0 {
		return nil
	}
	if err := addColMultiple(s, dst, src, k); err != nil {
		return err
	}
	return addColMultiple(v, dst, src, k)
}

func addColMultiple(m Mat, dst, src int, k int64) error {
	if k == 0 {
		return nil
	}
	for r := 0; r < m.rows; r++ {
		prod, ok := CheckedMul(k, m.At(r, src))
		if !ok {
			return fmt.Errorf("%w: column operation %d += %d·col %d", ErrOverflow, dst, k, src)
		}
		sum, ok := CheckedAdd(m.At(r, dst), prod)
		if !ok {
			return fmt.Errorf("%w: column operation %d += %d·col %d", ErrOverflow, dst, k, src)
		}
		m.Set(r, dst, sum)
	}
	return nil
}

func swapCols(m Mat, i, j int) {
	for r := 0; r < m.rows; r++ {
		vi, vj := m.At(r, i), m.At(r, j)
		m.Set(r, i, vj)
		m.Set(r, j, vi)
	}
}

// LeftNullspaceInt returns an integer basis of the left null space of m:
// row vectors n with n·m = 0. The basis is obtained from the rows of the
// HNF transform U beyond the rank (those rows of U map to zero rows of H).
// Because U is unimodular, these rows are an integral basis.
func LeftNullspaceInt(m Mat) [][]int64 {
	hr := HNF(m)
	var basis [][]int64
	for i := hr.Rank; i < m.rows; i++ {
		basis = append(basis, hr.U.Row(i))
	}
	return basis
}

// RightNullspaceInt returns an integer basis of {x : m·xᵗ = 0} as row
// vectors, i.e. the left null space of mᵗ.
func RightNullspaceInt(m Mat) [][]int64 {
	return LeftNullspaceInt(m.Transpose())
}

// IsOnto reports whether the map i ↦ i·m from Z^l to Z^d is onto, per
// Lemma 2: the columns must be independent and the gcd of the maximal-order
// subdeterminants must be 1. Equivalently all Smith invariant factors are 1
// and the rank equals the number of columns.
func IsOnto(m Mat) bool {
	if m.Rank() != m.cols {
		return false
	}
	return m.GCDOfMinors(m.cols) == 1
}

// IsOneToOne reports whether the map i ↦ i·m is one-to-one, per Lemma 1:
// the rows of m must be linearly independent.
func IsOneToOne(m Mat) bool {
	return m.Rank() == m.rows
}
