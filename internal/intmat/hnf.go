package intmat

import (
	"looppart/internal/rational"
)

// This file implements the Hermite and Smith normal forms used by the
// lattice machinery. The paper invokes the Hermite normal form theorem
// twice: in Lemma 2 (the map i ↦ i·G is onto iff the columns of G are
// independent and the gcd of the maximal minors is 1) and implicitly in
// Theorem 3, where deciding whether two translated bounded lattices
// intersect requires solving t = Σ uᵢ·aᵢ over the integers.
//
// We use the ROW convention throughout: the lattice associated with a
// matrix A is the set of integer combinations of the rows of A, matching
// the paper's row-vector iteration spaces. The row Hermite normal form of
// A is H = U·A with U unimodular, H in row-echelon form with positive
// pivots and entries below each pivot zero, entries above each pivot
// reduced into [0, pivot).

// HNFResult carries the row Hermite normal form H = U·A.
type HNFResult struct {
	H Mat // the Hermite normal form, same shape as A
	U Mat // unimodular transform, rows(A) × rows(A)
	// PivotCols[k] is the column of the k-th pivot; len(PivotCols) == Rank.
	PivotCols []int
	Rank      int
}

// HNF computes the row Hermite normal form of m.
func HNF(m Mat) HNFResult {
	h := m.Clone()
	u := Identity(m.rows)
	var pivots []int
	row := 0
	for col := 0; col < h.cols && row < h.rows; col++ {
		// Reduce column `col` below `row` to a single positive pivot via
		// the extended Euclid row operations.
		p := -1
		for i := row; i < h.rows; i++ {
			if h.At(i, col) != 0 {
				p = i
				break
			}
		}
		if p == -1 {
			continue
		}
		h.swapRows(row, p)
		u.swapRows(row, p)
		for i := row + 1; i < h.rows; i++ {
			for h.At(i, col) != 0 {
				a, b := h.At(row, col), h.At(i, col)
				if abs(b) < abs(a) || a == 0 {
					h.swapRows(row, i)
					u.swapRows(row, i)
					continue
				}
				q := b / a
				h.addRowMultiple(i, row, -q)
				u.addRowMultiple(i, row, -q)
			}
		}
		if h.At(row, col) < 0 {
			h.negateRow(row)
			u.negateRow(row)
		}
		// Reduce entries above the pivot into [0, pivot).
		piv := h.At(row, col)
		for i := 0; i < row; i++ {
			v := h.At(i, col)
			q := floorDiv(v, piv)
			if q != 0 {
				h.addRowMultiple(i, row, -q)
				u.addRowMultiple(i, row, -q)
			}
		}
		pivots = append(pivots, col)
		row++
	}
	return HNFResult{H: h, U: u, PivotCols: pivots, Rank: row}
}

// addRowMultiple adds k times row src to row dst.
func (m Mat) addRowMultiple(dst, src int, k int64) {
	if k == 0 {
		return
	}
	for c := 0; c < m.cols; c++ {
		m.Set(dst, c, rational.CheckedAddInt(m.At(dst, c), rational.CheckedMulInt(k, m.At(src, c))))
	}
}

func (m Mat) negateRow(i int) {
	for c := 0; c < m.cols; c++ {
		m.Set(i, c, -m.At(i, c))
	}
}

func abs(a int64) int64 {
	if a < 0 {
		return -a
	}
	return a
}

// floorDiv returns floor(a/b) for b != 0.
func floorDiv(a, b int64) int64 {
	q := a / b
	if (a%b != 0) && ((a < 0) != (b < 0)) {
		q--
	}
	return q
}

// SolveIntLeft solves u·A = t for an integer row vector u, where the rows
// of A generate a lattice (Theorem 3's membership test). It returns the
// coordinate vector u and true if t is in the row lattice of A; otherwise
// ok is false. When the rows of A are linearly dependent the returned u is
// one valid solution.
func SolveIntLeft(a Mat, t []int64) (u []int64, ok bool) {
	if len(t) != a.cols {
		panic("intmat: SolveIntLeft length mismatch")
	}
	hr := HNF(a)
	// Solve y·H = t by forward substitution over pivot columns, then
	// u = y·U.
	y := make([]int64, a.rows)
	rem := make([]int64, len(t))
	copy(rem, t)
	for k, col := range hr.PivotCols {
		piv := hr.H.At(k, col)
		if rem[col]%piv != 0 {
			return nil, false
		}
		y[k] = rem[col] / piv
		if y[k] != 0 {
			for c := 0; c < a.cols; c++ {
				rem[c] = rational.CheckedAddInt(rem[c], -rational.CheckedMulInt(y[k], hr.H.At(k, c)))
			}
		}
	}
	for _, v := range rem {
		if v != 0 {
			return nil, false
		}
	}
	u = hr.U.MulVec(y) // u = y·U
	return u, true
}

// InRowLattice reports whether t is an integer combination of the rows of a.
func InRowLattice(a Mat, t []int64) bool {
	_, ok := SolveIntLeft(a, t)
	return ok
}

// SNFResult carries the Smith normal form S = U·A·V with U, V unimodular
// and S diagonal with s₁ | s₂ | … | s_r.
type SNFResult struct {
	S Mat
	U Mat // rows(A) × rows(A), unimodular
	V Mat // cols(A) × cols(A), unimodular
	// Invariants holds the nonzero diagonal entries s₁..s_r.
	Invariants []int64
}

// SNF computes the Smith normal form of m. The product of the invariant
// factors is the index of the row lattice in Z^d (for full-rank square m,
// |det m|); the map i ↦ i·G is onto Z^d exactly when all invariant factors
// are 1 (the paper's Lemma 2).
func SNF(m Mat) SNFResult {
	s := m.Clone()
	u := Identity(m.rows)
	v := Identity(m.cols)
	n := min(m.rows, m.cols)
	for k := 0; k < n; k++ {
		if !snfPivot(s, u, v, k) {
			break
		}
		// Eliminate row and column k beyond the pivot.
		for {
			again := false
			for i := k + 1; i < s.rows; i++ {
				for s.At(i, k) != 0 {
					q := s.At(i, k) / s.At(k, k)
					s.addRowMultiple(i, k, -q)
					u.addRowMultiple(i, k, -q)
					if s.At(i, k) != 0 {
						s.swapRows(k, i)
						u.swapRows(k, i)
						again = true
					}
				}
			}
			for j := k + 1; j < s.cols; j++ {
				for s.At(k, j) != 0 {
					q := s.At(k, j) / s.At(k, k)
					addColMultiple(s, j, k, -q)
					addColMultiple(v, j, k, -q)
					if s.At(k, j) != 0 {
						swapCols(s, k, j)
						swapCols(v, k, j)
						again = true
					}
				}
			}
			if !again {
				break
			}
		}
		// Enforce divisibility s_k | s_{k+1}.. by folding any offender in.
		for i := k + 1; i < s.rows; i++ {
			for j := k + 1; j < s.cols; j++ {
				if s.At(i, j)%s.At(k, k) != 0 {
					// Add row i to row k, then re-eliminate.
					s.addRowMultiple(k, i, 1)
					u.addRowMultiple(k, i, 1)
					k--
					goto next
				}
			}
		}
		if s.At(k, k) < 0 {
			s.negateRow(k)
			u.negateRow(k)
		}
	next:
	}
	var inv []int64
	for k := 0; k < n; k++ {
		if d := s.At(k, k); d != 0 {
			inv = append(inv, d)
		}
	}
	return SNFResult{S: s, U: u, V: v, Invariants: inv}
}

// snfPivot moves a nonzero entry from the trailing submatrix to (k,k).
// Returns false if the trailing submatrix is all zero.
func snfPivot(s, u, v Mat, k int) bool {
	for i := k; i < s.rows; i++ {
		for j := k; j < s.cols; j++ {
			if s.At(i, j) != 0 {
				if i != k {
					s.swapRows(k, i)
					u.swapRows(k, i)
				}
				if j != k {
					swapCols(s, k, j)
					swapCols(v, k, j)
				}
				return true
			}
		}
	}
	return false
}

func addColMultiple(m Mat, dst, src int, k int64) {
	if k == 0 {
		return
	}
	for r := 0; r < m.rows; r++ {
		m.Set(r, dst, rational.CheckedAddInt(m.At(r, dst), rational.CheckedMulInt(k, m.At(r, src))))
	}
}

func swapCols(m Mat, i, j int) {
	for r := 0; r < m.rows; r++ {
		vi, vj := m.At(r, i), m.At(r, j)
		m.Set(r, i, vj)
		m.Set(r, j, vi)
	}
}

// LeftNullspaceInt returns an integer basis of the left null space of m:
// row vectors n with n·m = 0. The basis is obtained from the rows of the
// HNF transform U beyond the rank (those rows of U map to zero rows of H).
// Because U is unimodular, these rows are an integral basis.
func LeftNullspaceInt(m Mat) [][]int64 {
	hr := HNF(m)
	var basis [][]int64
	for i := hr.Rank; i < m.rows; i++ {
		basis = append(basis, hr.U.Row(i))
	}
	return basis
}

// RightNullspaceInt returns an integer basis of {x : m·xᵗ = 0} as row
// vectors, i.e. the left null space of mᵗ.
func RightNullspaceInt(m Mat) [][]int64 {
	return LeftNullspaceInt(m.Transpose())
}

// IsOnto reports whether the map i ↦ i·m from Z^l to Z^d is onto, per
// Lemma 2: the columns must be independent and the gcd of the maximal-order
// subdeterminants must be 1. Equivalently all Smith invariant factors are 1
// and the rank equals the number of columns.
func IsOnto(m Mat) bool {
	if m.Rank() != m.cols {
		return false
	}
	return m.GCDOfMinors(m.cols) == 1
}

// IsOneToOne reports whether the map i ↦ i·m is one-to-one, per Lemma 1:
// the rows of m must be linearly independent.
func IsOneToOne(m Mat) bool {
	return m.Rank() == m.rows
}
