package intmat_test

// Property-style invariant tests for the normal forms and solvers, run
// from an external test package so they exercise only the exported API.
// The verify package owns the invariant definitions; these tests drive
// them over randomized matrices, sharded across goroutines so `go test
// -race` covers concurrent use of the (stateless) intmat entry points.

import (
	"math/rand"
	"sync"
	"testing"

	"looppart/internal/intmat"
	"looppart/internal/verify"
)

func randomMat(rnd *rand.Rand, maxDim int, maxAbs int64) intmat.Mat {
	rows := 1 + rnd.Intn(maxDim)
	cols := 1 + rnd.Intn(maxDim)
	m := intmat.NewMat(rows, cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			m.Set(i, j, rnd.Int63n(2*maxAbs+1)-maxAbs)
		}
	}
	return m
}

// TestNormalFormPropertiesParallel runs the HNF/SNF contracts over
// randomized matrices on several goroutines at once. The entry points are
// pure functions of their inputs; the race detector confirms no shared
// mutable state sneaks in.
func TestNormalFormPropertiesParallel(t *testing.T) {
	const shards = 4
	const perShard = 150
	var wg sync.WaitGroup
	errs := make(chan error, shards)
	for s := 0; s < shards; s++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rnd := rand.New(rand.NewSource(seed))
			for i := 0; i < perShard; i++ {
				m := randomMat(rnd, 4, 12)
				if err := verify.CheckHNF(m); err != nil {
					errs <- err
					return
				}
				if err := verify.CheckSNF(m); err != nil {
					errs <- err
					return
				}
			}
		}(int64(100 + s))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestSolveIntLeftRoundTrip asserts that when x·A = b is solvable, the
// returned solution actually reproduces b, and that membership agrees
// with InRowLattice.
func TestSolveIntLeftRoundTrip(t *testing.T) {
	rnd := rand.New(rand.NewSource(23))
	solved := 0
	for i := 0; i < 400; i++ {
		a := randomMat(rnd, 3, 6)
		b := make([]int64, a.Cols())
		if i%2 == 0 {
			// Build b from a known integer combination so solvable cases
			// are well represented.
			x := make([]int64, a.Rows())
			for k := range x {
				x[k] = rnd.Int63n(9) - 4
			}
			var err error
			b, err = a.MulVecChecked(x)
			if err != nil {
				continue
			}
		} else {
			for k := range b {
				b[k] = rnd.Int63n(13) - 6
			}
		}
		x, ok, err := intmat.SolveIntLeftChecked(a, b)
		if err != nil {
			continue // reported overflow is a legal outcome
		}
		if ok != intmat.InRowLattice(a, b) {
			t.Fatalf("SolveIntLeft solvable=%v disagrees with InRowLattice for A=%v b=%v", ok, a, b)
		}
		if !ok {
			continue
		}
		solved++
		got, err := a.MulVecChecked(x)
		if err != nil {
			t.Fatalf("solution x=%v for A=%v overflows on substitution", x, a)
		}
		for k := range b {
			if got[k] != b[k] {
				t.Fatalf("x·A = %v != b = %v for A=%v x=%v", got, b, a, x)
			}
		}
	}
	if solved < 100 {
		t.Fatalf("only %d solvable systems exercised", solved)
	}
}
