package intmat

import (
	"fmt"

	"looppart/internal/rational"
)

// RatMat is a dense matrix of exact rationals. It backs the operations that
// leave the integers: tile-matrix inversion (L = Λ(H⁻¹)ᵗ, Def. 2), rank
// computation, and solving â = Σ uᵢ·gᵢ for the lattice coordinates of a
// spread vector (Theorem 4).
type RatMat struct {
	rows, cols int
	a          []rational.Rat
}

// NewRatMat returns a zero rows×cols rational matrix.
func NewRatMat(rows, cols int) RatMat {
	if rows < 0 || cols < 0 {
		panic("intmat: negative dimension")
	}
	return RatMat{rows: rows, cols: cols, a: make([]rational.Rat, rows*cols)}
}

// ToRat converts an integer matrix to a rational matrix.
func (m Mat) ToRat() RatMat {
	r := NewRatMat(m.rows, m.cols)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			r.Set(i, j, rational.FromInt(m.At(i, j)))
		}
	}
	return r
}

// Rows returns the number of rows.
func (r RatMat) Rows() int { return r.rows }

// Cols returns the number of columns.
func (r RatMat) Cols() int { return r.cols }

// At returns the element at row i, column j.
func (r RatMat) At(i, j int) rational.Rat {
	r.check(i, j)
	return r.a[i*r.cols+j]
}

// Set assigns the element at row i, column j.
func (r RatMat) Set(i, j int, v rational.Rat) {
	r.check(i, j)
	r.a[i*r.cols+j] = v
}

func (r RatMat) check(i, j int) {
	if i < 0 || i >= r.rows || j < 0 || j >= r.cols {
		panic(fmt.Sprintf("intmat: index (%d,%d) out of range %dx%d", i, j, r.rows, r.cols))
	}
}

// Clone returns a deep copy.
func (r RatMat) Clone() RatMat {
	n := RatMat{rows: r.rows, cols: r.cols, a: make([]rational.Rat, len(r.a))}
	copy(n.a, r.a)
	return n
}

// Equal reports elementwise equality.
func (r RatMat) Equal(s RatMat) bool {
	if r.rows != s.rows || r.cols != s.cols {
		return false
	}
	for i := range r.a {
		if !r.a[i].Equal(s.a[i]) {
			return false
		}
	}
	return true
}

// Mul returns the product r·s.
func (r RatMat) Mul(s RatMat) RatMat {
	if r.cols != s.rows {
		panic("intmat: RatMat Mul shape mismatch")
	}
	p := NewRatMat(r.rows, s.cols)
	for i := 0; i < r.rows; i++ {
		for k := 0; k < r.cols; k++ {
			rik := r.At(i, k)
			if rik.IsZero() {
				continue
			}
			for j := 0; j < s.cols; j++ {
				p.Set(i, j, p.At(i, j).Add(rik.Mul(s.At(k, j))))
			}
		}
	}
	return p
}

// Transpose returns rᵗ.
func (r RatMat) Transpose() RatMat {
	t := NewRatMat(r.cols, r.rows)
	for i := 0; i < r.rows; i++ {
		for j := 0; j < r.cols; j++ {
			t.Set(j, i, r.At(i, j))
		}
	}
	return t
}

// appendCol returns a copy of r with the integer column c appended.
func (r RatMat) appendCol(c []int64) RatMat {
	if len(c) != r.rows {
		panic("intmat: appendCol length mismatch")
	}
	n := NewRatMat(r.rows, r.cols+1)
	for i := 0; i < r.rows; i++ {
		for j := 0; j < r.cols; j++ {
			n.Set(i, j, r.At(i, j))
		}
		n.Set(i, r.cols, rational.FromInt(c[i]))
	}
	return n
}

// gaussRank computes the rank by fraction-exact Gaussian elimination,
// destroying a working copy.
func (r RatMat) gaussRank() int {
	w := r.Clone()
	rank := 0
	for col := 0; col < w.cols && rank < w.rows; col++ {
		// Find pivot at or below row `rank`.
		p := -1
		for i := rank; i < w.rows; i++ {
			if !w.At(i, col).IsZero() {
				p = i
				break
			}
		}
		if p == -1 {
			continue
		}
		w.swapRows(rank, p)
		piv := w.At(rank, col)
		for i := rank + 1; i < w.rows; i++ {
			f := w.At(i, col).Div(piv)
			if f.IsZero() {
				continue
			}
			for j := col; j < w.cols; j++ {
				w.Set(i, j, w.At(i, j).Sub(f.Mul(w.At(rank, j))))
			}
		}
		rank++
	}
	return rank
}

func (r RatMat) swapRows(i, j int) {
	for c := 0; c < r.cols; c++ {
		vi, vj := r.At(i, c), r.At(j, c)
		r.Set(i, c, vj)
		r.Set(j, c, vi)
	}
}

// Det returns the exact rational determinant of a square matrix.
func (r RatMat) Det() rational.Rat {
	if r.rows != r.cols {
		panic("intmat: RatMat Det of non-square matrix")
	}
	w := r.Clone()
	det := rational.One
	for col := 0; col < w.cols; col++ {
		p := -1
		for i := col; i < w.rows; i++ {
			if !w.At(i, col).IsZero() {
				p = i
				break
			}
		}
		if p == -1 {
			return rational.Zero
		}
		if p != col {
			w.swapRows(col, p)
			det = det.Neg()
		}
		piv := w.At(col, col)
		det = det.Mul(piv)
		for i := col + 1; i < w.rows; i++ {
			f := w.At(i, col).Div(piv)
			if f.IsZero() {
				continue
			}
			for j := col; j < w.cols; j++ {
				w.Set(i, j, w.At(i, j).Sub(f.Mul(w.At(col, j))))
			}
		}
	}
	return det
}

// Inverse returns r⁻¹ and true, or the zero matrix and false if r is
// singular or non-square.
func (r RatMat) Inverse() (RatMat, bool) {
	if r.rows != r.cols {
		return RatMat{}, false
	}
	n := r.rows
	// Augment [r | I] and reduce to [I | r⁻¹].
	w := NewRatMat(n, 2*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			w.Set(i, j, r.At(i, j))
		}
		w.Set(i, n+i, rational.One)
	}
	for col := 0; col < n; col++ {
		p := -1
		for i := col; i < n; i++ {
			if !w.At(i, col).IsZero() {
				p = i
				break
			}
		}
		if p == -1 {
			return RatMat{}, false
		}
		w.swapRows(col, p)
		piv := w.At(col, col)
		for j := col; j < 2*n; j++ {
			w.Set(col, j, w.At(col, j).Div(piv))
		}
		for i := 0; i < n; i++ {
			if i == col {
				continue
			}
			f := w.At(i, col)
			if f.IsZero() {
				continue
			}
			for j := col; j < 2*n; j++ {
				w.Set(i, j, w.At(i, j).Sub(f.Mul(w.At(col, j))))
			}
		}
	}
	inv := NewRatMat(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			inv.Set(i, j, w.At(i, n+j))
		}
	}
	return inv, true
}

// SolveLeft solves the row-vector system x·r = b for x, following the
// paper's row-vector convention. r must be square and nonsingular. It
// returns x and true on success.
func (r RatMat) SolveLeft(b []rational.Rat) ([]rational.Rat, bool) {
	if r.rows != r.cols || len(b) != r.cols {
		return nil, false
	}
	inv, ok := r.Inverse()
	if !ok {
		return nil, false
	}
	// x = b · r⁻¹.
	x := make([]rational.Rat, r.rows)
	for j := 0; j < r.rows; j++ {
		s := rational.Zero
		for k := 0; k < r.cols; k++ {
			s = s.Add(b[k].Mul(inv.At(k, j)))
		}
		x[j] = s
	}
	return x, true
}

// SolveLeftInt solves x·m = b over the rationals for integer m and b.
// Returns the rational solution vector, or ok=false if m is singular.
func SolveLeftInt(m Mat, b []int64) ([]rational.Rat, bool) {
	rb := make([]rational.Rat, len(b))
	for i, v := range b {
		rb[i] = rational.FromInt(v)
	}
	return m.ToRat().SolveLeft(rb)
}

// String renders the matrix.
func (r RatMat) String() string {
	s := "["
	for i := 0; i < r.rows; i++ {
		if i > 0 {
			s += "; "
		}
		for j := 0; j < r.cols; j++ {
			if j > 0 {
				s += " "
			}
			s += r.At(i, j).String()
		}
	}
	return s + "]"
}
