// Package intmat implements exact integer and rational matrix algebra for
// loop-partitioning analysis.
//
// The paper's framework (Agarwal, Kranz, Natarajan 1993) reduces loop
// partitioning to questions about small integer matrices: the reference
// matrix G of an affine subscript function g(i) = i·G + a, and the tile
// matrix L describing a hyperparallelepiped of iterations. Everything the
// analysis needs — |det LG| footprint sizes (Eq. 2), unimodularity tests
// (Theorem 1), Hermite-normal-form solvability (Lemma 2, Theorem 3), and
// maximal independent column selection (§3.4.1) — lives here.
//
// Matrices follow the paper's row-vector convention: a loop iteration i is a
// row vector of length l, G is l×d, and i·G is a row vector of length d.
package intmat

import (
	"fmt"
	"strings"

	"looppart/internal/rational"
)

// Mat is a dense integer matrix with row-major storage.
// The zero value is an empty (0×0) matrix.
type Mat struct {
	rows, cols int
	a          []int64
}

// NewMat returns a zero-initialized rows×cols matrix.
// It panics if either dimension is negative.
func NewMat(rows, cols int) Mat {
	if rows < 0 || cols < 0 {
		panic("intmat: negative dimension")
	}
	return Mat{rows: rows, cols: cols, a: make([]int64, rows*cols)}
}

// FromRows builds a matrix from row slices. All rows must have equal length.
func FromRows(rows [][]int64) Mat {
	if len(rows) == 0 {
		return Mat{}
	}
	c := len(rows[0])
	m := NewMat(len(rows), c)
	for i, r := range rows {
		if len(r) != c {
			panic(fmt.Sprintf("intmat: ragged rows: row 0 has %d cols, row %d has %d", c, i, len(r)))
		}
		copy(m.a[i*c:(i+1)*c], r)
	}
	return m
}

// Identity returns the n×n identity matrix.
func Identity(n int) Mat {
	m := NewMat(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// Diag returns a square diagonal matrix with the given diagonal entries.
func Diag(d ...int64) Mat {
	m := NewMat(len(d), len(d))
	for i, v := range d {
		m.Set(i, i, v)
	}
	return m
}

// Rows returns the number of rows.
func (m Mat) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m Mat) Cols() int { return m.cols }

// At returns the element at row i, column j.
func (m Mat) At(i, j int) int64 {
	m.check(i, j)
	return m.a[i*m.cols+j]
}

// Set assigns the element at row i, column j.
func (m Mat) Set(i, j int, v int64) {
	m.check(i, j)
	m.a[i*m.cols+j] = v
}

func (m Mat) check(i, j int) {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(fmt.Sprintf("intmat: index (%d,%d) out of range %dx%d", i, j, m.rows, m.cols))
	}
}

// Clone returns a deep copy of m.
func (m Mat) Clone() Mat {
	n := Mat{rows: m.rows, cols: m.cols, a: make([]int64, len(m.a))}
	copy(n.a, m.a)
	return n
}

// Equal reports whether m and n have the same shape and entries.
func (m Mat) Equal(n Mat) bool {
	if m.rows != n.rows || m.cols != n.cols {
		return false
	}
	for i := range m.a {
		if m.a[i] != n.a[i] {
			return false
		}
	}
	return true
}

// Row returns a copy of row i.
func (m Mat) Row(i int) []int64 {
	r := make([]int64, m.cols)
	copy(r, m.a[i*m.cols:(i+1)*m.cols])
	return r
}

// Col returns a copy of column j.
func (m Mat) Col(j int) []int64 {
	c := make([]int64, m.rows)
	for i := 0; i < m.rows; i++ {
		c[i] = m.At(i, j)
	}
	return c
}

// SetRow overwrites row i with r. It panics on length mismatch.
func (m Mat) SetRow(i int, r []int64) {
	if len(r) != m.cols {
		panic("intmat: SetRow length mismatch")
	}
	copy(m.a[i*m.cols:(i+1)*m.cols], r)
}

// WithRow returns a copy of m with row i replaced by r. This is the
// LG_{i→â} operation of Theorem 2.
func (m Mat) WithRow(i int, r []int64) Mat {
	n := m.Clone()
	n.SetRow(i, r)
	return n
}

// Transpose returns mᵗ.
func (m Mat) Transpose() Mat {
	t := NewMat(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			t.Set(j, i, m.At(i, j))
		}
	}
	return t
}

// Mul returns the matrix product m·n. It panics on shape mismatch.
func (m Mat) Mul(n Mat) Mat {
	if m.cols != n.rows {
		panic(fmt.Sprintf("intmat: Mul shape mismatch %dx%d · %dx%d", m.rows, m.cols, n.rows, n.cols))
	}
	p := NewMat(m.rows, n.cols)
	for i := 0; i < m.rows; i++ {
		for k := 0; k < m.cols; k++ {
			mik := m.At(i, k)
			if mik == 0 {
				continue
			}
			for j := 0; j < n.cols; j++ {
				v := rational.CheckedAddInt(p.At(i, j), rational.CheckedMulInt(mik, n.At(k, j)))
				p.Set(i, j, v)
			}
		}
	}
	return p
}

// MulVec returns the row-vector product v·m (paper convention: iterations
// are row vectors multiplied on the left). It panics if len(v) != m.Rows().
func (m Mat) MulVec(v []int64) []int64 {
	if len(v) != m.rows {
		panic("intmat: MulVec length mismatch")
	}
	out := make([]int64, m.cols)
	for i, vi := range v {
		if vi == 0 {
			continue
		}
		for j := 0; j < m.cols; j++ {
			out[j] = rational.CheckedAddInt(out[j], rational.CheckedMulInt(vi, m.At(i, j)))
		}
	}
	return out
}

// Add returns m + n elementwise.
func (m Mat) Add(n Mat) Mat {
	if m.rows != n.rows || m.cols != n.cols {
		panic("intmat: Add shape mismatch")
	}
	s := m.Clone()
	for i := range s.a {
		s.a[i] = rational.CheckedAddInt(s.a[i], n.a[i])
	}
	return s
}

// Scale returns k·m.
func (m Mat) Scale(k int64) Mat {
	s := m.Clone()
	for i := range s.a {
		s.a[i] = rational.CheckedMulInt(s.a[i], k)
	}
	return s
}

// SubMatrix returns the matrix formed by the given row and column indices,
// in order. Indices may repeat.
func (m Mat) SubMatrix(rows, cols []int) Mat {
	s := NewMat(len(rows), len(cols))
	for i, ri := range rows {
		for j, cj := range cols {
			s.Set(i, j, m.At(ri, cj))
		}
	}
	return s
}

// SelectCols returns the matrix with only the listed columns, in order.
func (m Mat) SelectCols(cols []int) Mat {
	rows := make([]int, m.rows)
	for i := range rows {
		rows[i] = i
	}
	return m.SubMatrix(rows, cols)
}

// IsSquare reports whether m is square.
func (m Mat) IsSquare() bool { return m.rows == m.cols }

// IsZeroCol reports whether column j is entirely zero.
func (m Mat) IsZeroCol(j int) bool {
	for i := 0; i < m.rows; i++ {
		if m.At(i, j) != 0 {
			return false
		}
	}
	return true
}

// NonZeroCols returns the indices of columns that are not identically zero.
// Zero columns correspond to subscript positions independent of all loop
// indices (Example 1) and are dropped before footprint analysis.
func (m Mat) NonZeroCols() []int {
	var idx []int
	for j := 0; j < m.cols; j++ {
		if !m.IsZeroCol(j) {
			idx = append(idx, j)
		}
	}
	return idx
}

// String renders the matrix in a bracketed row-per-line form.
func (m Mat) String() string {
	var b strings.Builder
	b.WriteString("[")
	for i := 0; i < m.rows; i++ {
		if i > 0 {
			b.WriteString("; ")
		}
		for j := 0; j < m.cols; j++ {
			if j > 0 {
				b.WriteString(" ")
			}
			fmt.Fprintf(&b, "%d", m.At(i, j))
		}
	}
	b.WriteString("]")
	return b.String()
}

// Det returns the determinant of a square matrix, computed exactly by the
// Bareiss fraction-free elimination algorithm (with a transparent big.Int
// fallback when an int64 intermediate would wrap — see DetChecked). It
// panics if m is not square or if the determinant value itself exceeds
// int64; callers that must not panic use DetChecked or DetBig.
func (m Mat) Det() int64 {
	if !m.IsSquare() {
		panic("intmat: Det of non-square matrix")
	}
	d, err := m.DetChecked()
	if err != nil {
		panic(err.Error())
	}
	return d
}

func (m Mat) swapRows(i, j int) {
	for c := 0; c < m.cols; c++ {
		vi, vj := m.At(i, c), m.At(j, c)
		m.Set(i, c, vj)
		m.Set(j, c, vi)
	}
}

// Rank returns the rank of m over the rationals.
func (m Mat) Rank() int {
	r := m.ToRat()
	return r.gaussRank()
}

// IsUnimodular reports whether m is square with determinant ±1 (Theorem 1's
// condition for LG to coincide exactly with the footprint). A determinant
// beyond int64 is certainly not ±1, so this never panics.
func (m Mat) IsUnimodular() bool {
	if !m.IsSquare() {
		return false
	}
	d, err := m.DetChecked()
	return err == nil && (d == 1 || d == -1)
}

// IsNonsingular reports whether m is square with nonzero determinant
// (Theorem 4's weaker condition for rectangular tiles). A determinant
// beyond int64 is certainly nonzero, so this never panics.
func (m Mat) IsNonsingular() bool {
	if !m.IsSquare() {
		return false
	}
	d, err := m.DetChecked()
	return err != nil || d != 0
}

// MaxIndependentCols returns indices of a maximal set of linearly
// independent columns of m, scanning left to right (greedy). This implements
// the §3.4.1 reduction: when the columns of G are dependent, footprint
// analysis proceeds on the submatrix G' of independent columns (Example 7).
func (m Mat) MaxIndependentCols() []int {
	var chosen []int
	r := NewRatMat(m.rows, 0)
	for j := 0; j < m.cols; j++ {
		cand := r.appendCol(m.Col(j))
		if cand.gaussRank() > len(chosen) {
			chosen = append(chosen, j)
			r = cand
		}
	}
	return chosen
}

// GCDOfMinors returns the gcd of all k×k subdeterminants of m.
// Used with the Hermite normal form theorem (Lemma 2): the map i ↦ i·G is
// onto Z^d iff the columns are independent and the gcd of the d×d minors
// is 1. k must be between 1 and min(rows, cols).
func (m Mat) GCDOfMinors(k int) int64 {
	if k < 1 || k > m.rows || k > m.cols {
		panic("intmat: minor order out of range")
	}
	var g int64
	rowSets := combinations(m.rows, k)
	colSets := combinations(m.cols, k)
	for _, rs := range rowSets {
		for _, cs := range colSets {
			d := m.SubMatrix(rs, cs).Det()
			g = rational.GCD(g, d)
			if g == 1 {
				return 1
			}
		}
	}
	return g
}

// combinations returns all k-subsets of {0..n-1} in lexicographic order.
func combinations(n, k int) [][]int {
	if k > n {
		return nil
	}
	idx := make([]int, k)
	for i := range idx {
		idx[i] = i
	}
	var out [][]int
	for {
		c := make([]int, k)
		copy(c, idx)
		out = append(out, c)
		// Advance.
		i := k - 1
		for i >= 0 && idx[i] == n-k+i {
			i--
		}
		if i < 0 {
			return out
		}
		idx[i]++
		for j := i + 1; j < k; j++ {
			idx[j] = idx[j-1] + 1
		}
	}
}
