package intmat

import (
	"math/rand"
	"testing"
	"testing/quick"

	"looppart/internal/rational"
)

func TestNewAndAccessors(t *testing.T) {
	m := NewMat(2, 3)
	if m.Rows() != 2 || m.Cols() != 3 {
		t.Fatalf("shape = %dx%d", m.Rows(), m.Cols())
	}
	m.Set(1, 2, 7)
	if m.At(1, 2) != 7 {
		t.Errorf("At(1,2) = %d", m.At(1, 2))
	}
	if m.At(0, 0) != 0 {
		t.Errorf("At(0,0) = %d", m.At(0, 0))
	}
}

func TestOutOfRangePanics(t *testing.T) {
	m := NewMat(2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range At did not panic")
		}
	}()
	m.At(2, 0)
}

func TestFromRowsRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ragged FromRows did not panic")
		}
	}()
	FromRows([][]int64{{1, 2}, {3}})
}

func TestIdentityDiag(t *testing.T) {
	if !Identity(3).Equal(Diag(1, 1, 1)) {
		t.Error("Identity(3) != Diag(1,1,1)")
	}
	d := Diag(2, 5)
	if d.At(0, 0) != 2 || d.At(1, 1) != 5 || d.At(0, 1) != 0 {
		t.Error("Diag wrong")
	}
}

func TestMul(t *testing.T) {
	a := FromRows([][]int64{{1, 2}, {3, 4}})
	b := FromRows([][]int64{{5, 6}, {7, 8}})
	want := FromRows([][]int64{{19, 22}, {43, 50}})
	if got := a.Mul(b); !got.Equal(want) {
		t.Errorf("Mul = %v, want %v", got, want)
	}
	if got := a.Mul(Identity(2)); !got.Equal(a) {
		t.Errorf("a·I = %v", got)
	}
}

func TestMulVecRowConvention(t *testing.T) {
	// Paper Example 1: reference A(i3+2, 5, i2-1, 4) in a triply nested
	// loop has G with columns picking out i3 and i2.
	g := FromRows([][]int64{
		{0, 0, 0, 0},
		{0, 0, 1, 0},
		{1, 0, 0, 0},
	})
	i := []int64{10, 20, 30}
	got := g.MulVec(i)
	want := []int64{30, 0, 20, 0}
	for k := range want {
		if got[k] != want[k] {
			t.Fatalf("i·G = %v, want %v", got, want)
		}
	}
}

func TestTranspose(t *testing.T) {
	a := FromRows([][]int64{{1, 2, 3}, {4, 5, 6}})
	want := FromRows([][]int64{{1, 4}, {2, 5}, {3, 6}})
	if got := a.Transpose(); !got.Equal(want) {
		t.Errorf("Transpose = %v", got)
	}
}

func TestDetSmall(t *testing.T) {
	cases := []struct {
		m    Mat
		want int64
	}{
		{Identity(3), 1},
		{FromRows([][]int64{{1, 1}, {1, -1}}), -2}, // Example 10 class B
		{FromRows([][]int64{{1, 0}, {1, 1}}), 1},   // Example 6
		{FromRows([][]int64{{2, 0}, {0, 3}}), 6},
		{FromRows([][]int64{{1, 2}, {2, 4}}), 0},
		{FromRows([][]int64{{0, 1}, {1, 0}}), -1},
		{NewMat(0, 0), 1},
		{FromRows([][]int64{{0, 2, 3}, {1, 0, 2}, {3, 1, 0}}), 15},
	}
	for _, c := range cases {
		if got := c.m.Det(); got != c.want {
			t.Errorf("Det(%v) = %d, want %d", c.m, got, c.want)
		}
	}
}

func TestDetNonSquarePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Det of non-square did not panic")
		}
	}()
	NewMat(2, 3).Det()
}

func TestDetMatchesRational(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(4)
		m := NewMat(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				m.Set(i, j, int64(rng.Intn(11)-5))
			}
		}
		want := m.ToRat().Det()
		if got := m.Det(); !rational.FromInt(got).Equal(want) {
			t.Fatalf("trial %d: Bareiss Det(%v)=%d, rational Det=%v", trial, m, got, want)
		}
	}
}

func TestRank(t *testing.T) {
	cases := []struct {
		m    Mat
		want int
	}{
		{Identity(3), 3},
		{FromRows([][]int64{{1, 2}, {2, 4}}), 1},
		{FromRows([][]int64{{1, 2, 1}, {0, 0, 1}}), 2}, // Example 7
		{NewMat(2, 2), 0},
		{FromRows([][]int64{{1, 1, 1}}), 1},
		{FromRows([][]int64{{1, 0}, {0, 1}, {1, 1}}), 2},
	}
	for _, c := range cases {
		if got := c.m.Rank(); got != c.want {
			t.Errorf("Rank(%v) = %d, want %d", c.m, got, c.want)
		}
	}
}

func TestUnimodular(t *testing.T) {
	if !FromRows([][]int64{{1, 0}, {1, 1}}).IsUnimodular() {
		t.Error("Example 6 G should be unimodular")
	}
	if FromRows([][]int64{{1, 1}, {1, -1}}).IsUnimodular() {
		t.Error("Example 10 G (det -2) is not unimodular")
	}
	if !FromRows([][]int64{{1, 1}, {1, -1}}).IsNonsingular() {
		t.Error("Example 10 G is nonsingular")
	}
	if NewMat(2, 3).IsUnimodular() {
		t.Error("non-square cannot be unimodular")
	}
}

func TestZeroColsAndNonZeroCols(t *testing.T) {
	g := FromRows([][]int64{
		{0, 0, 0, 0},
		{0, 0, 1, 0},
		{1, 0, 0, 0},
	})
	got := g.NonZeroCols()
	want := []int{0, 2}
	if len(got) != len(want) {
		t.Fatalf("NonZeroCols = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("NonZeroCols = %v, want %v", got, want)
		}
	}
	sel := g.SelectCols(got)
	if sel.Rows() != 3 || sel.Cols() != 2 {
		t.Fatalf("SelectCols shape %dx%d", sel.Rows(), sel.Cols())
	}
}

func TestMaxIndependentCols(t *testing.T) {
	// Example 7: G = [[1,2,1],[0,0,1]]; first and third columns independent.
	g := FromRows([][]int64{{1, 2, 1}, {0, 0, 1}})
	got := g.MaxIndependentCols()
	if len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Fatalf("MaxIndependentCols = %v, want [0 2]", got)
	}
	gp := g.SelectCols(got)
	want := FromRows([][]int64{{1, 1}, {0, 1}})
	if !gp.Equal(want) {
		t.Fatalf("G' = %v, want %v", gp, want)
	}
	if !gp.IsUnimodular() {
		t.Error("Example 7 G' should be unimodular")
	}

	// Example 10 class C: C(i,2i,i+2j): G = [[1,2,1],[0,0,2]].
	g2 := FromRows([][]int64{{1, 2, 1}, {0, 0, 2}})
	got2 := g2.MaxIndependentCols()
	if len(got2) != 2 || got2[0] != 0 || got2[1] != 2 {
		t.Fatalf("MaxIndependentCols = %v, want [0 2]", got2)
	}
}

func TestWithRow(t *testing.T) {
	m := FromRows([][]int64{{1, 2}, {3, 4}})
	n := m.WithRow(0, []int64{9, 9})
	if m.At(0, 0) != 1 {
		t.Error("WithRow mutated receiver")
	}
	if n.At(0, 0) != 9 || n.At(1, 1) != 4 {
		t.Errorf("WithRow = %v", n)
	}
}

func TestGCDOfMinors(t *testing.T) {
	// G = [[2,0],[0,2]]: all 2x2 minors are 4, 1x1 minors gcd 2.
	g := Diag(2, 2)
	if got := g.GCDOfMinors(2); got != 4 {
		t.Errorf("GCDOfMinors(2) = %d, want 4", got)
	}
	if got := g.GCDOfMinors(1); got != 2 {
		t.Errorf("GCDOfMinors(1) = %d, want 2", got)
	}
	// A[i+j] in a 2-deep nest: G = [[1],[1]] — onto.
	g2 := FromRows([][]int64{{1}, {1}})
	if got := g2.GCDOfMinors(1); got != 1 {
		t.Errorf("GCDOfMinors = %d, want 1", got)
	}
}

func TestIsOntoIsOneToOne(t *testing.T) {
	// A[i+j]: onto but not one-to-one.
	g := FromRows([][]int64{{1}, {1}})
	if !IsOnto(g) {
		t.Error("A[i+j] map should be onto")
	}
	if IsOneToOne(g) {
		t.Error("A[i+j] map should not be one-to-one")
	}
	// A[2i]: one-to-one but not onto.
	g2 := FromRows([][]int64{{2}})
	if IsOnto(g2) {
		t.Error("A[2i] map should not be onto")
	}
	if !IsOneToOne(g2) {
		t.Error("A[2i] map should be one-to-one")
	}
	// Unimodular: both.
	g3 := FromRows([][]int64{{1, 0}, {1, 1}})
	if !IsOnto(g3) || !IsOneToOne(g3) {
		t.Error("unimodular map should be bijective")
	}
}

func TestCombinations(t *testing.T) {
	got := combinations(4, 2)
	if len(got) != 6 {
		t.Fatalf("combinations(4,2) has %d elements", len(got))
	}
	want := [][]int{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}}
	for i := range want {
		if got[i][0] != want[i][0] || got[i][1] != want[i][1] {
			t.Fatalf("combinations = %v", got)
		}
	}
	if len(combinations(2, 3)) != 0 {
		t.Error("combinations(2,3) should be empty")
	}
}

func randMat(rng *rand.Rand, r, c, lim int) Mat {
	m := NewMat(r, c)
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			m.Set(i, j, int64(rng.Intn(2*lim+1)-lim))
		}
	}
	return m
}

func TestPropDetMultiplicative(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(3)
		a, b := randMat(rng, n, n, 5), randMat(rng, n, n, 5)
		if a.Mul(b).Det() != a.Det()*b.Det() {
			t.Fatalf("det(ab) != det(a)det(b) for %v, %v", a, b)
		}
	}
}

func TestPropTransposeDet(t *testing.T) {
	f := func(a, b, c, d int8) bool {
		m := FromRows([][]int64{{int64(a), int64(b)}, {int64(c), int64(d)}})
		return m.Det() == m.Transpose().Det()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropRankBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		r, c := 1+rng.Intn(4), 1+rng.Intn(4)
		m := randMat(rng, r, c, 4)
		rk := m.Rank()
		if rk < 0 || rk > r || rk > c {
			t.Fatalf("rank %d out of bounds for %dx%d", rk, r, c)
		}
		if rk != m.Transpose().Rank() {
			t.Fatalf("rank(m) != rank(mᵗ) for %v", m)
		}
	}
}

func BenchmarkDet4(b *testing.B) {
	m := FromRows([][]int64{
		{3, 1, 4, 1}, {5, 9, 2, 6}, {5, 3, 5, 8}, {9, 7, 9, 3},
	})
	for i := 0; i < b.N; i++ {
		_ = m.Det()
	}
}

func BenchmarkMul4(b *testing.B) {
	m := FromRows([][]int64{
		{3, 1, 4, 1}, {5, 9, 2, 6}, {5, 3, 5, 8}, {9, 7, 9, 3},
	})
	for i := 0; i < b.N; i++ {
		_ = m.Mul(m)
	}
}
