package intmat

import (
	"math/rand"
	"testing"

	"looppart/internal/rational"
)

func TestRatMatInverse(t *testing.T) {
	m := FromRows([][]int64{{1, 0}, {1, 1}}).ToRat()
	inv, ok := m.Inverse()
	if !ok {
		t.Fatal("unimodular matrix reported singular")
	}
	if !m.Mul(inv).Equal(Identity(2).ToRat()) {
		t.Fatalf("m·m⁻¹ = %v", m.Mul(inv))
	}
	// Singular.
	s := FromRows([][]int64{{1, 2}, {2, 4}}).ToRat()
	if _, ok := s.Inverse(); ok {
		t.Error("singular matrix inverted")
	}
	// Non-square.
	if _, ok := NewRatMat(2, 3).Inverse(); ok {
		t.Error("non-square matrix inverted")
	}
}

func TestRatMatInverseRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	id3 := Identity(3).ToRat()
	for trial := 0; trial < 100; trial++ {
		m := randMat(rng, 3, 3, 5)
		if m.Det() == 0 {
			continue
		}
		inv, ok := m.ToRat().Inverse()
		if !ok {
			t.Fatalf("nonsingular %v reported singular", m)
		}
		if !m.ToRat().Mul(inv).Equal(id3) {
			t.Fatalf("m·m⁻¹ != I for %v", m)
		}
		if !inv.Mul(m.ToRat()).Equal(id3) {
			t.Fatalf("m⁻¹·m != I for %v", m)
		}
	}
}

func TestSolveLeft(t *testing.T) {
	// x·[[2,1],[1,3]] = (5,10) → x = (1, 3)? Check: (1,3)·M = (1·2+3·1, 1·1+3·3) = (5,10). Yes.
	m := FromRows([][]int64{{2, 1}, {1, 3}}).ToRat()
	b := []rational.Rat{rational.FromInt(5), rational.FromInt(10)}
	x, ok := m.SolveLeft(b)
	if !ok {
		t.Fatal("solve failed")
	}
	if !x[0].Equal(rational.One) || !x[1].Equal(rational.FromInt(3)) {
		t.Fatalf("x = %v", x)
	}
}

func TestSolveLeftIntRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(3)
		m := randMat(rng, n, n, 5)
		if m.Det() == 0 {
			continue
		}
		x := make([]int64, n)
		for i := range x {
			x[i] = int64(rng.Intn(9) - 4)
		}
		b := m.MulVec(x) // b = x·m
		sol, ok := SolveLeftInt(m, b)
		if !ok {
			t.Fatalf("solve failed for %v", m)
		}
		for i := range x {
			if !sol[i].Equal(rational.FromInt(x[i])) {
				t.Fatalf("sol = %v, want %v (m=%v)", sol, x, m)
			}
		}
	}
}

func TestRatMatDetAgainstInt(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(4)
		m := randMat(rng, n, n, 5)
		if !m.ToRat().Det().Equal(rational.FromInt(m.Det())) {
			t.Fatalf("rational det disagrees for %v", m)
		}
	}
}

func TestGaussRankEdgeCases(t *testing.T) {
	if got := NewRatMat(0, 0).gaussRank(); got != 0 {
		t.Errorf("rank of empty = %d", got)
	}
	if got := NewRatMat(3, 2).gaussRank(); got != 0 {
		t.Errorf("rank of zero 3x2 = %d", got)
	}
}

func TestRatMatTransposeMul(t *testing.T) {
	a := FromRows([][]int64{{1, 2, 3}, {4, 5, 6}}).ToRat()
	at := a.Transpose()
	if at.Rows() != 3 || at.Cols() != 2 {
		t.Fatalf("transpose shape %dx%d", at.Rows(), at.Cols())
	}
	p := a.Mul(at) // 2x2
	if !p.At(0, 0).Equal(rational.FromInt(14)) || !p.At(1, 1).Equal(rational.FromInt(77)) {
		t.Fatalf("a·aᵗ = %v", p)
	}
}

func BenchmarkRatInverse3(b *testing.B) {
	m := FromRows([][]int64{{0, 2, 3}, {1, 0, 2}, {3, 1, 0}}).ToRat()
	for i := 0; i < b.N; i++ {
		_, _ = m.Inverse()
	}
}
