package paperex

import (
	"testing"

	"looppart/internal/footprint"
	"looppart/internal/loopir"
)

var defaults = map[string]int64{"N": 16, "T": 2}

func TestAllExamplesParseAndAnalyze(t *testing.T) {
	for name, src := range All {
		n, err := loopir.Parse(src, defaults)
		if err != nil {
			t.Errorf("%s: parse: %v", name, err)
			continue
		}
		if _, err := footprint.Analyze(n); err != nil {
			t.Errorf("%s: analyze: %v", name, err)
		}
	}
}

func TestExampleShapes(t *testing.T) {
	cases := []struct {
		name    string
		doall   int
		doseq   int
		classes int
	}{
		{"example2", 2, 0, 2},
		{"example3", 2, 0, 2},
		{"example6", 2, 0, 2},
		{"example8", 3, 0, 2},
		{"example8doseq", 3, 1, 2},
		{"fig9stencil", 3, 1, 2}, // B[i,j,k] joins the B read class (G=I)
		{"example9", 2, 0, 3},
		{"example10", 2, 0, 4},
		{"matmulsync", 3, 0, 3},
		{"example1ref", 3, 0, 2},
		{"example7ref", 2, 0, 2},
	}
	for _, c := range cases {
		n, err := loopir.Parse(All[c.name], defaults)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if got := len(n.DoallLoops()); got != c.doall {
			t.Errorf("%s: %d doall loops, want %d", c.name, got, c.doall)
		}
		if got := len(n.SeqLoops()); got != c.doseq {
			t.Errorf("%s: %d doseq loops, want %d", c.name, got, c.doseq)
		}
		a, err := footprint.Analyze(n)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if got := len(a.Classes); got != c.classes {
			t.Errorf("%s: %d classes, want %d", c.name, got, c.classes)
		}
	}
}

func TestMustParsePanicsOnBadParams(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for missing parameter")
		}
	}()
	MustParse(Example8, nil) // N unbound
}
