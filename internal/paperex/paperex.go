// Package paperex collects the worked examples of the paper (Agarwal,
// Kranz, Natarajan 1993) as loop-language sources. They are shared by the
// test suites, the benchmark harness, and cmd/paperbench so that every
// layer of the system reproduces exactly the programs the paper analyzes.
package paperex

import "looppart/internal/loopir"

// Example2 is the paper's Example 2 (§3.1, Figure 3): 100×100 iterations,
// two uniformly intersecting references to B with G = [[1,1],[1,-1]].
// Partition a (100×1 strips) incurs 104 misses per tile and zero coherence
// traffic; partition b (10×10 blocks) incurs 140.
const Example2 = `
doall (i, 101, 200)
  doall (j, 1, 100)
    A[i,j] = B[i+j, i-j-1] + B[i+j+4, i-j+3]
  enddoall
enddoall
`

// Example3 is the paper's Example 3 (§3.1): a stencil for which
// parallelogram tiles beat every rectangular partition.
const Example3 = `
doall (i, 1, N)
  doall (j, 1, N)
    A[i,j] = B[i,j] + B[i+1,j+3]
  enddoall
enddoall
`

// Example6 is the paper's Example 6 (§3.4): footprints under the
// non-diagonal reference matrix G = [[1,0],[1,1]].
const Example6 = `
doall (i, 0, 99)
  doall (j, 0, 99)
    A[i,j] = B[i+j,j] + B[i+j+1,j+2]
  enddoall
enddoall
`

// Example8 is the paper's Example 8 (§3.6): the 3-D stencil whose optimal
// rectangular tile has aspect ratios Li:Lj:Lk = 2:3:4.
const Example8 = `
doall (i, 1, N)
  doall (j, 1, N)
    doall (k, 1, N)
      A[i,j,k] = B[i-1,j,k+1] + B[i,j+1,k] + B[i+1,j-2,k-3]
    enddoall
  enddoall
enddoall
`

// Example8Doseq wraps Example 8 in the sequential time loop of Figure 9,
// turning first-reference misses into steady-state coherence traffic.
const Example8Doseq = `
doseq (t, 1, T)
  doall (i, 1, N)
    doall (j, 1, N)
      doall (k, 1, N)
        A[i,j,k] = B[i-1,j,k+1] + B[i,j+1,k] + B[i+1,j-2,k-3]
      enddoall
    enddoall
  enddoall
enddoseq
`

// Fig9Stencil is the Figure 9 scenario with steady-state coherence made
// observable: each epoch consumes the B written by the previous epoch, so
// tile-boundary elements bounce between owners every time step and the
// per-epoch coherence traffic follows the spread terms 2LjLk+3LiLk+4LiLj.
// (Within an epoch the B update races under strict doall semantics; the
// simulator replays deterministically, and the paper's fine-grain
// synchronization of Appendix A is how a real run would order the pairs.)
const Fig9Stencil = `
doseq (t, 1, T)
  doall (i, 1, N)
    doall (j, 1, N)
      doall (k, 1, N)
        A[i,j,k] = B[i-1,j,k+1] + B[i,j+1,k] + B[i+1,j-2,k-3]
        B[i,j,k] = A[i,j,k]
      enddoall
    enddoall
  enddoall
enddoseq
`

// Example9 is the paper's Example 9 (§3.6): two nontrivial uniformly
// intersecting classes (B and C) whose footprints add; the rectangular
// optimum satisfies 4·L11 = 6·L22.
const Example9 = `
doall (i, 1, N)
  doall (j, 1, N)
    A[i,j] = B[i-2,j] + B[i,j-1] + C[i+j,j] + C[i+j+1,j+3]
  enddoall
enddoall
`

// Example10 is the paper's Example 10 (§3.7): a non-unimodular class B
// (G = [[1,1],[1,-1]], det −2) and a singular class C handled by maximal
// independent columns; the rectangular optimum satisfies 2·Li = 3·Lj + 1.
const Example10 = `
doall (i, 1, N)
  doall (j, 1, N)
    A[i,j] = B[i+j,i-j] + B[i+j+4,i-j+2]
            + C[i,2*i,i+2*j-1] + C[i+1,2*i+2,i+2*j+1] + C[i,2*i,i+2*j+1]
  enddoall
enddoall
`

// MatmulSync is Figure 11 (Appendix A): matrix multiply written with
// fine-grain synchronizing accumulates into C.
const MatmulSync = `
doall (i, 1, N)
  doall (j, 1, N)
    doall (k, 1, N)
      l$C[i,j] = C[i,j] + A[i,k] * B[k,j]
    enddoall
  enddoall
enddoall
`

// Example1Ref exercises Example 1's G-matrix form: a reference with zero
// columns (subscripts independent of all loop indices).
const Example1Ref = `
doall (i1, 1, N)
  doall (i2, 1, N)
    doall (i3, 1, N)
      A[i3+2, 5, i2-1, 4] = B[i1, i2, i3]
    enddoall
  enddoall
enddoall
`

// Example7Ref exercises §3.4.1 / Example 7: the rank-deficient reference
// A[i, 2i, i+j].
const Example7Ref = `
doall (i, 1, N)
  doall (j, 1, N)
    B[i,j] = A[i, 2*i, i+j]
  enddoall
enddoall
`

// MustParse parses one of the sources above with the given parameter
// bindings, panicking on error (the sources are compile-time constants).
func MustParse(src string, params map[string]int64) *loopir.Nest {
	return loopir.MustParse(src, params)
}

// All maps example names to sources, for the CLI tools.
var All = map[string]string{
	"example2":      Example2,
	"example3":      Example3,
	"example6":      Example6,
	"example8":      Example8,
	"example8doseq": Example8Doseq,
	"fig9stencil":   Fig9Stencil,
	"example9":      Example9,
	"example10":     Example10,
	"matmulsync":    MatmulSync,
	"example1ref":   Example1Ref,
	"example7ref":   Example7Ref,
}
