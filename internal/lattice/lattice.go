// Package lattice implements the bounded-lattice machinery of §3.7 of the
// paper (Agarwal, Kranz, Natarajan 1993).
//
// A bounded lattice L(a₁,…,aₙ, λ₁,…,λₙ) (Definition 9) is the set of points
// Σ lᵢ·aᵢ with integer coefficients 0 ≤ lᵢ ≤ λᵢ. The footprint of a
// rectangular loop tile with respect to a reference matrix G is exactly such
// a bounded lattice with the rows of G as generators and the tile extents as
// bounds. Two results drive the partitioning analysis:
//
//   - Theorem 3: the footprints of two references in a uniformly generated
//     class intersect iff the offset difference t is a bounded-coefficient
//     integer combination of the generators.
//   - Lemma 3: the size of the union of a bounded lattice and its
//     translation by t = Σ uᵢ·aᵢ is 2·Π(λⱼ+1) − Π(λⱼ+1−|uⱼ|).
//
// Everything here is validated against brute-force enumeration in the tests.
package lattice

import (
	"fmt"

	"looppart/internal/intmat"
)

// Bounded is a bounded lattice: integer combinations Σ lᵢ·aᵢ of the rows of
// Gen with 0 ≤ lᵢ ≤ Bounds[i].
type Bounded struct {
	Gen    intmat.Mat // n×d generator matrix, rows are the generators
	Bounds []int64    // n coefficient bounds λᵢ ≥ 0
}

// New constructs a bounded lattice. It panics if the number of bounds does
// not match the number of generators or any bound is negative.
func New(gen intmat.Mat, bounds []int64) Bounded {
	if len(bounds) != gen.Rows() {
		panic(fmt.Sprintf("lattice: %d bounds for %d generators", len(bounds), gen.Rows()))
	}
	for i, b := range bounds {
		if b < 0 {
			panic(fmt.Sprintf("lattice: negative bound λ%d = %d", i, b))
		}
	}
	return Bounded{Gen: gen, Bounds: bounds}
}

// Dim returns the dimension of the ambient space.
func (b Bounded) Dim() int { return b.Gen.Cols() }

// NumGen returns the number of generators.
func (b Bounded) NumGen() int { return b.Gen.Rows() }

// Coordinates solves t = Σ uᵢ·aᵢ over the integers, ignoring the bounds.
// It returns the coefficient vector and true if t lies on the (unbounded)
// lattice. When the generators are linearly independent the solution is
// unique.
func (b Bounded) Coordinates(t []int64) ([]int64, bool) {
	return intmat.SolveIntLeft(b.Gen, t)
}

// ContainsOrigin-translated membership: Contains reports whether the point
// p is an element of the bounded lattice, i.e. p = Σ lᵢ·aᵢ with
// 0 ≤ lᵢ ≤ λᵢ. For linearly independent generators this is a direct
// coordinate check; otherwise it falls back to bounded search over the
// coefficient box.
func (b Bounded) Contains(p []int64) bool {
	if intmat.IsOneToOne(b.Gen) {
		u, ok := b.Coordinates(p)
		if !ok {
			return false
		}
		return b.inBox(u)
	}
	// Dependent generators: enumerate the coefficient box (exact, small
	// cases only — dependent generators arise from rank-deficient G after
	// which callers normally reduce columns, so this path is rare).
	return b.searchBox(p)
}

func (b Bounded) inBox(u []int64) bool {
	for i, ui := range u {
		if ui < 0 || ui > b.Bounds[i] {
			return false
		}
	}
	return true
}

func (b Bounded) searchBox(p []int64) bool {
	n := b.NumGen()
	coef := make([]int64, n)
	var rec func(k int) bool
	rec = func(k int) bool {
		if k == n {
			q := b.Gen.MulVec(coef)
			for j := range q {
				if q[j] != p[j] {
					return false
				}
			}
			return true
		}
		for v := int64(0); v <= b.Bounds[k]; v++ {
			coef[k] = v
			if rec(k + 1) {
				return true
			}
		}
		coef[k] = 0
		return false
	}
	return rec(0)
}

// IntersectsTranslate implements Theorem 3: the bounded lattice and its
// translation by t intersect iff t = Σ uᵢ·aᵢ for integer uᵢ with
// |uᵢ| ≤ λᵢ. It returns the coordinate vector u (with signs) when the
// lattices intersect.
//
// The paper states the condition with 0 ≤ uᵢ ≤ λᵢ; a translation by a
// vector with some negative coordinates intersects symmetrically (translate
// the other lattice instead), so the implementable condition is |uᵢ| ≤ λᵢ.
func (b Bounded) IntersectsTranslate(t []int64) ([]int64, bool) {
	u, ok := b.Coordinates(t)
	if !ok {
		return nil, false
	}
	for i, ui := range u {
		if ui < -b.Bounds[i] || ui > b.Bounds[i] {
			return nil, false
		}
	}
	return u, true
}

// Points enumerates the distinct points of the bounded lattice. Intended
// for validation and small exact computations; the coefficient box is
// enumerated exhaustively and duplicate images (possible when generators
// are dependent or coincident) are deduplicated.
func (b Bounded) Points() []Point {
	set := make(map[string]Point)
	n := b.NumGen()
	coef := make([]int64, n)
	var rec func(k int)
	rec = func(k int) {
		if k == n {
			p := b.Gen.MulVec(coef)
			set[keyOf(p)] = p
			return
		}
		for v := int64(0); v <= b.Bounds[k]; v++ {
			coef[k] = v
			rec(k + 1)
		}
		coef[k] = 0
	}
	rec(0)
	pts := make([]Point, 0, len(set))
	for _, p := range set {
		pts = append(pts, p)
	}
	return pts
}

// Size returns the number of distinct points, via enumeration.
func (b Bounded) Size() int64 { return int64(len(b.Points())) }

// Point is an integer point in the data space.
type Point = []int64

func keyOf(p []int64) string {
	buf := make([]byte, 0, len(p)*9)
	for _, v := range p {
		for s := 0; s < 64; s += 8 {
			buf = append(buf, byte(v>>s))
		}
		buf = append(buf, ',')
	}
	return string(buf)
}

// Translate returns the point set of the lattice translated by t.
func Translate(pts []Point, t []int64) []Point {
	out := make([]Point, len(pts))
	for i, p := range pts {
		q := make([]int64, len(p))
		for j := range p {
			q[j] = p[j] + t[j]
		}
		out[i] = q
	}
	return out
}

// UnionSize returns the exact size of the union of point sets.
func UnionSize(sets ...[]Point) int64 {
	seen := make(map[string]struct{})
	for _, s := range sets {
		for _, p := range s {
			seen[keyOf(p)] = struct{}{}
		}
	}
	return int64(len(seen))
}

// UnionSizeModel implements Lemma 3's closed form for the size of the union
// of a bounded lattice with independent generators and its translation by
// t = Σ uᵢ·aᵢ:
//
//	|L₁ ∪ L₂| = 2·Π(λⱼ+1) − Π(λⱼ+1−|uⱼ|)
//
// If any |uⱼ| exceeds λⱼ the two copies are disjoint and the union is
// 2·Π(λⱼ+1).
//
// Arithmetic saturates at MaxInt64 instead of wrapping: a saturated size
// still orders correctly against every exact one, which is all the
// optimizer's comparisons need.
func UnionSizeModel(bounds []int64, u []int64) int64 {
	all := int64(1)
	overlap := int64(1)
	disjoint := false
	for j, l := range bounds {
		all = intmat.SatMul(all, l+1)
		uj := u[j]
		if uj < 0 {
			uj = -uj
		}
		if uj > l {
			disjoint = true
		} else {
			overlap = intmat.SatMul(overlap, l+1-uj)
		}
	}
	if disjoint {
		return intmat.SatMul(2, all)
	}
	return intmat.SatAdd(intmat.SatMul(2, all), -overlap)
}

// UnionSizeLinearized is the first-order expansion of Lemma 3 used by the
// optimizer:
//
//	Π(λⱼ+1) + Σᵢ |uᵢ|·Π_{j≠i}(λⱼ+1)
//
// dropping the higher-order cross terms (the paper's ≈). It upper-bounds
// the exact union size minus the Π|uᵢ| correction. Arithmetic saturates at
// MaxInt64 (see UnionSizeModel).
func UnionSizeLinearized(bounds []int64, u []int64) int64 {
	base := int64(1)
	for _, l := range bounds {
		base = intmat.SatMul(base, l+1)
	}
	total := base
	for i, ui := range u {
		if ui < 0 {
			ui = -ui
		}
		term := int64(1)
		for j, l := range bounds {
			if j == i {
				continue
			}
			term = intmat.SatMul(term, l+1)
		}
		total = intmat.SatAdd(total, intmat.SatMul(ui, term))
	}
	return total
}
