package lattice

import (
	"math/rand"
	"testing"

	"looppart/internal/intmat"
)

func TestNewValidation(t *testing.T) {
	g := intmat.Identity(2)
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched bounds did not panic")
		}
	}()
	New(g, []int64{1})
}

func TestNegativeBoundPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative bound did not panic")
		}
	}()
	New(intmat.Identity(2), []int64{1, -1})
}

func TestPointsIdentityLattice(t *testing.T) {
	// Identity generators with bounds (2,3): a 3×4 grid of 12 points.
	b := New(intmat.Identity(2), []int64{2, 3})
	if got := b.Size(); got != 12 {
		t.Errorf("Size = %d, want 12", got)
	}
	if !b.Contains([]int64{0, 0}) || !b.Contains([]int64{2, 3}) {
		t.Error("corners missing")
	}
	if b.Contains([]int64{3, 0}) || b.Contains([]int64{0, 4}) || b.Contains([]int64{-1, 0}) {
		t.Error("out-of-box point contained")
	}
}

func TestPointsSkewedLattice(t *testing.T) {
	// Generators (1,1) and (1,-1): the Example 10 class-B lattice.
	g := intmat.FromRows([][]int64{{1, 1}, {1, -1}})
	b := New(g, []int64{2, 2})
	// 3×3 coefficient box, all images distinct (independent generators).
	if got := b.Size(); got != 9 {
		t.Errorf("Size = %d, want 9", got)
	}
	if !b.Contains([]int64{2, 0}) { // 1·(1,1)+1·(1,-1)
		t.Error("(2,0) should be in lattice")
	}
	if b.Contains([]int64{1, 0}) { // odd parity
		t.Error("(1,0) should not be in lattice")
	}
}

func TestContainsDependentGenerators(t *testing.T) {
	// Dependent generators (1,2) and (2,4).
	g := intmat.FromRows([][]int64{{1, 2}, {2, 4}})
	b := New(g, []int64{1, 1})
	// Points: (0,0),(1,2),(2,4),(3,6).
	if got := b.Size(); got != 4 {
		t.Errorf("Size = %d, want 4", got)
	}
	for _, p := range [][]int64{{0, 0}, {1, 2}, {2, 4}, {3, 6}} {
		if !b.Contains(p) {
			t.Errorf("%v should be contained", p)
		}
	}
	if b.Contains([]int64{1, 1}) || b.Contains([]int64{4, 8}) {
		t.Error("non-member contained")
	}
}

func TestIntersectsTranslateTheorem3(t *testing.T) {
	// Example 10: â = (4,2) = 3·(1,1) + 1·(1,-1).
	g := intmat.FromRows([][]int64{{1, 1}, {1, -1}})
	b := New(g, []int64{10, 10})
	u, ok := b.IntersectsTranslate([]int64{4, 2})
	if !ok {
		t.Fatal("translated lattice should intersect")
	}
	if u[0] != 3 || u[1] != 1 {
		t.Fatalf("u = %v, want [3 1]", u)
	}
	// Too small a tile: bounds (2,2) cannot absorb u₀ = 3.
	b2 := New(g, []int64{2, 2})
	if _, ok := b2.IntersectsTranslate([]int64{4, 2}); ok {
		t.Error("translation exceeds bounds; should not intersect")
	}
	// Off-lattice translation never intersects: (1,0) has odd parity.
	if _, ok := b.IntersectsTranslate([]int64{1, 0}); ok {
		t.Error("off-lattice translation intersected")
	}
	// Example 10 class C: C(i+1,2i+2,i+2j+1) vs C(i,2i,i+2j-1):
	// offset diff (1,2,2) against reduced G' columns — checked in the
	// footprint package; here check the negative-coordinate symmetry.
	un, ok := b.IntersectsTranslate([]int64{-4, -2})
	if !ok || un[0] != -3 || un[1] != -1 {
		t.Fatalf("negative translation: u=%v ok=%v", un, ok)
	}
}

func TestIntersectsTranslateMatchesEnumeration(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for trial := 0; trial < 300; trial++ {
		// Random independent 2×2 generators with small entries.
		var g intmat.Mat
		for {
			g = intmat.FromRows([][]int64{
				{int64(rng.Intn(7) - 3), int64(rng.Intn(7) - 3)},
				{int64(rng.Intn(7) - 3), int64(rng.Intn(7) - 3)},
			})
			if g.Det() != 0 {
				break
			}
		}
		bounds := []int64{int64(rng.Intn(4)), int64(rng.Intn(4))}
		b := New(g, bounds)
		tvec := []int64{int64(rng.Intn(13) - 6), int64(rng.Intn(13) - 6)}

		_, modelSays := b.IntersectsTranslate(tvec)

		pts := b.Points()
		shifted := Translate(pts, tvec)
		exact := UnionSize(pts, shifted) < int64(len(pts))+int64(len(shifted))

		if modelSays != exact {
			t.Fatalf("trial %d: G=%v λ=%v t=%v: model=%v exact=%v",
				trial, g, bounds, tvec, modelSays, exact)
		}
	}
}

func TestUnionSizeModelLemma3(t *testing.T) {
	// Exact formula vs enumeration, independent generators.
	rng := rand.New(rand.NewSource(55))
	for trial := 0; trial < 300; trial++ {
		var g intmat.Mat
		for {
			g = intmat.FromRows([][]int64{
				{int64(rng.Intn(5) - 2), int64(rng.Intn(5) - 2)},
				{int64(rng.Intn(5) - 2), int64(rng.Intn(5) - 2)},
			})
			if g.Det() != 0 {
				break
			}
		}
		bounds := []int64{int64(rng.Intn(4) + 1), int64(rng.Intn(4) + 1)}
		u := []int64{int64(rng.Intn(7) - 3), int64(rng.Intn(7) - 3)}
		tvec := g.MulVec(u) // translation on the lattice

		b := New(g, bounds)
		pts := b.Points()
		exact := UnionSize(pts, Translate(pts, tvec))
		model := UnionSizeModel(bounds, u)
		if exact != model {
			t.Fatalf("trial %d: G=%v λ=%v u=%v: exact=%d model=%d",
				trial, g, bounds, u, exact, model)
		}
	}
}

func TestUnionSizeModelDisjoint(t *testing.T) {
	bounds := []int64{3, 3}
	// u exceeding a bound → disjoint → 2·16.
	if got := UnionSizeModel(bounds, []int64{4, 0}); got != 32 {
		t.Errorf("disjoint union = %d, want 32", got)
	}
	// Zero translation → same lattice → 16.
	if got := UnionSizeModel(bounds, []int64{0, 0}); got != 16 {
		t.Errorf("identical union = %d, want 16", got)
	}
}

func TestUnionSizeLinearizedApprox(t *testing.T) {
	// Linearized = exact + Π|uᵢ| (identity: 2ab − (a−u)(b−v) =
	// ab + ub + va − uv, linearized = ab + ub + va).
	bounds := []int64{9, 9}
	u := []int64{2, 3}
	exact := UnionSizeModel(bounds, u)
	lin := UnionSizeLinearized(bounds, u)
	if lin-exact != 2*3 {
		t.Errorf("lin−exact = %d, want 6", lin-exact)
	}
}

func TestCoordinatesUnbounded(t *testing.T) {
	g := intmat.FromRows([][]int64{{1, 1}, {1, -1}})
	b := New(g, []int64{1, 1})
	u, ok := b.Coordinates([]int64{100, 0})
	if !ok || u[0] != 50 || u[1] != 50 {
		t.Fatalf("coordinates = %v ok=%v", u, ok)
	}
}

func TestTranslateAndUnionSize(t *testing.T) {
	pts := []Point{{0, 0}, {1, 0}}
	sh := Translate(pts, []int64{1, 0})
	if got := UnionSize(pts, sh); got != 3 {
		t.Errorf("union = %d, want 3", got)
	}
	if got := UnionSize(pts); got != 2 {
		t.Errorf("union = %d, want 2", got)
	}
	if got := UnionSize(); got != 0 {
		t.Errorf("empty union = %d", got)
	}
}

func BenchmarkIntersectsTranslate(b *testing.B) {
	g := intmat.FromRows([][]int64{{1, 1}, {1, -1}})
	bl := New(g, []int64{100, 100})
	t := []int64{4, 2}
	for i := 0; i < b.N; i++ {
		_, _ = bl.IntersectsTranslate(t)
	}
}

func BenchmarkPointsEnumeration(b *testing.B) {
	g := intmat.FromRows([][]int64{{1, 1}, {1, -1}})
	bl := New(g, []int64{15, 15})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = bl.Points()
	}
}
