// Package autotune closes the predict→measure→refine loop around the
// partitioner. The paper's optimizers minimize an analytic footprint model
// (Eq. 2, Theorems 2 and 4) parameterized by machine constants §4 takes as
// given — line size, miss cost, mesh distance. This package measures
// instead of assuming:
//
//   - Calibrate fits those constants to the executing machine by running
//     microbenchmarks through the cache simulator (and, in host mode, a
//     wall-clock stride probe), producing a versioned Fingerprint;
//   - RunTournament replays the search's top-K candidate plans through the
//     simulator under the calibrated constants and selects the measured
//     winner, recording predicted-vs-measured deltas as decision-trace
//     events;
//   - Store persists tournament winners on disk keyed by canonical plan
//     key + fingerprint + schema version, so a restarted daemon
//     warm-starts from past work instead of re-searching.
package autotune

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"runtime"
	"strconv"
	"time"

	"looppart/internal/cachesim"
	"looppart/internal/machine"
)

// FingerprintSchema versions the fingerprint encoding; bumping it
// invalidates every stored plan (the store key includes it).
const FingerprintSchema = 1

// Fingerprint is a calibrated machine model: the cost constants the
// partitioning pipeline's measurements run under, plus provenance. Two
// fingerprints with the same constants address the same tuned-plan
// namespace regardless of how they were obtained (Source and Host are
// provenance, not identity).
type Fingerprint struct {
	Schema int `json:"schema"`
	// Source records how the constants were obtained: "model" (the
	// paper's defaults, taken as given), "sim" (fit to the cache
	// simulator by microbenchmark), or "host" (wall-clock stride probe).
	Source string `json:"source"`
	// Host describes the calibrated machine (GOOS/GOARCH/NumCPU).
	Host string `json:"host,omitempty"`

	// LineElems is the cache-line size in array elements (1 = the
	// paper's unit-line model).
	LineElems int64 `json:"line_elems"`
	// HitCost, MissCost, AtomicCost are the per-access charges of the
	// uniform-memory model (§2.2, Appendix A), in cache-hit units.
	HitCost    float64 `json:"hit_cost"`
	MissCost   float64 `json:"miss_cost"`
	AtomicCost float64 `json:"atomic_cost"`
	// LocalMem, RemoteBase, PerHop are the distributed-memory constants
	// of the §4 mesh model.
	LocalMem   float64 `json:"local_mem"`
	RemoteBase float64 `json:"remote_base"`
	PerHop     float64 `json:"per_hop"`
}

// ModelFingerprint returns the uncalibrated fingerprint: the paper's
// qualitative constants exactly as the simulator defaults assume them.
func ModelFingerprint() Fingerprint {
	cfg := cachesim.DefaultConfig(1)
	cost := machine.DefaultCostModel()
	return Fingerprint{
		Schema:     FingerprintSchema,
		Source:     "model",
		LineElems:  1,
		HitCost:    cfg.CostCacheHit,
		MissCost:   cfg.CostMemory,
		AtomicCost: cfg.CostAtomic,
		LocalMem:   cost.LocalMem,
		RemoteBase: cost.RemoteBase,
		PerHop:     cost.PerHop,
	}
}

// ID returns the fingerprint's stable identity: a short hash over the
// schema and the cost constants. Provenance fields (Source, Host) are
// excluded on purpose — a calibration run that recovers the model's own
// constants maps to the same tuned-plan namespace, so confirming the
// model never invalidates the store.
func (f Fingerprint) ID() string {
	h := sha256.New()
	fmt.Fprintf(h, "fp%d|%d|%s|%s|%s|%s|%s|%s",
		f.Schema, f.LineElems,
		canonFloat(f.HitCost), canonFloat(f.MissCost), canonFloat(f.AtomicCost),
		canonFloat(f.LocalMem), canonFloat(f.RemoteBase), canonFloat(f.PerHop))
	return "fp" + hex.EncodeToString(h.Sum(nil))[:16]
}

// canonFloat renders a constant with enough precision to distinguish real
// calibration differences while keeping the ID stable across the
// float-formatting choices of different call sites.
func canonFloat(v float64) string { return strconv.FormatFloat(v, 'g', 12, 64) }

func (f Fingerprint) String() string {
	return fmt.Sprintf("%s (schema %d, source %s): line=%d hit=%.3g miss=%.3g atomic=%.3g local=%.3g remote=%.3g+%.3g/hop",
		f.ID(), f.Schema, f.Source, f.LineElems,
		f.HitCost, f.MissCost, f.AtomicCost, f.LocalMem, f.RemoteBase, f.PerHop)
}

// SimConfig returns the uniform-memory simulator configuration running
// under this fingerprint's constants.
func (f Fingerprint) SimConfig(procs int) cachesim.Config {
	cfg := cachesim.DefaultConfig(procs)
	cfg.CostCacheHit = f.HitCost
	cfg.CostMemory = f.MissCost
	cfg.CostAtomic = f.AtomicCost
	return cfg
}

// CalibrateOptions parameterizes Calibrate.
type CalibrateOptions struct {
	// Probes is the number of distinct data each microbenchmark touches
	// (default 256). More probes average out nothing in the simulator —
	// it is deterministic — but keep the fit honest if a cost model ever
	// becomes state-dependent.
	Probes int
	// Mesh is the processor count of the distributed-memory probe
	// (default 16; SquarishMesh(16) = 4×4 so hop distances 0..6 are all
	// exercised).
	Mesh int
	// Host switches to wall-clock calibration: a stride probe over a
	// large array estimates the real cache-line size and the
	// miss:hit cost ratio from elapsed time. Non-deterministic; intended
	// for cmd/looptune on real hardware, never for tests.
	Host bool
}

// Calibrate fits the cost-model constants by measurement and returns the
// resulting fingerprint.
//
// In the default (simulator) mode the microbenchmarks run through
// internal/cachesim exactly the way a plan replay does, and the constants
// are recovered from the observed Cost/Misses deltas — nothing is copied
// from the configuration. Fitting the simulator is the deterministic
// stand-in for fitting real hardware (the simulator is this repo's
// machine, per DESIGN.md §2), and it cross-checks that the constants the
// analytic model assumes are the constants the measurement layer actually
// charges.
func Calibrate(opts CalibrateOptions) (Fingerprint, error) {
	if opts.Probes <= 0 {
		opts.Probes = 256
	}
	if opts.Mesh <= 0 {
		opts.Mesh = 16
	}
	fp := Fingerprint{
		Schema: FingerprintSchema,
		Source: "sim",
		Host:   runtime.GOOS + "/" + runtime.GOARCH + "/" + strconv.Itoa(runtime.NumCPU()),
	}

	var err error
	if fp.HitCost, fp.MissCost, err = probeHitMiss(opts.Probes); err != nil {
		return Fingerprint{}, err
	}
	if fp.AtomicCost, err = probeAtomic(opts.Probes); err != nil {
		return Fingerprint{}, err
	}
	if fp.LocalMem, fp.RemoteBase, fp.PerHop, err = probeMesh(opts.Mesh); err != nil {
		return Fingerprint{}, err
	}
	fp.LineElems = 1 // the simulator coheres at unit-line granularity

	if opts.Host {
		fp.Source = "host"
		fp.LineElems = probeHostLine()
		// The wall-clock ratio replaces the simulator's charged ratio;
		// hit cost stays the unit.
		fp.MissCost = probeHostMissRatio() * fp.HitCost
		if fp.AtomicCost < fp.MissCost {
			// Preserve the model's ordering: synchronizing traffic costs
			// more than ordinary misses (Appendix A).
			fp.AtomicCost = 1.5 * fp.MissCost
		}
	}
	return fp, nil
}

// probeHitMiss measures the charge of a cold miss and of a cache hit: n
// distinct data accessed twice each on one processor. First touches are
// all cold misses, second touches all hits, so the two constants solve
// directly from the cost totals.
func probeHitMiss(n int) (hit, miss float64, err error) {
	m, err := cachesim.New(cachesim.DefaultConfig(1))
	if err != nil {
		return 0, 0, err
	}
	for i := 0; i < n; i++ {
		m.AccessDatum(0, "cal", []int64{int64(i)}, false, false)
	}
	missCost := m.Finish().Cost
	for i := 0; i < n; i++ {
		m.AccessDatum(0, "cal", []int64{int64(i)}, false, false)
	}
	total := m.Finish()
	if total.Misses() != int64(n) {
		return 0, 0, fmt.Errorf("autotune: hit/miss probe saw %d misses for %d cold touches", total.Misses(), n)
	}
	miss = missCost / float64(n)
	hit = (total.Cost - missCost) / float64(n)
	return hit, miss, nil
}

// probeAtomic measures the charge of a synchronizing miss: n distinct
// data, one atomic accumulate each.
func probeAtomic(n int) (float64, error) {
	m, err := cachesim.New(cachesim.DefaultConfig(1))
	if err != nil {
		return 0, err
	}
	for i := 0; i < n; i++ {
		m.AccessDatum(0, "cal", []int64{int64(i)}, true, true)
	}
	return m.Finish().Cost / float64(n), nil
}

// probeMesh measures the distributed-memory constants: on a mesh of p
// nodes, processor 0 cold-misses one datum homed at every node. The cost
// of the hops=0 fill is LocalMem; remote fills are affine in the hop
// count, so RemoteBase and PerHop solve from the nearest and farthest
// remote nodes.
func probeMesh(p int) (local, remoteBase, perHop float64, err error) {
	mesh, err := machine.SquarishMesh(p)
	if err != nil {
		return 0, 0, 0, err
	}
	cost := machine.DefaultCostModel()
	costAt := make(map[int]float64) // hops → observed per-miss cost
	for home := 0; home < p; home++ {
		cfg := cachesim.DefaultConfig(1)
		h := home
		cfg.MissCost = func(proc int, datum string, atomic bool) (float64, int64) {
			return cost.MissCost(mesh, proc, h, atomic)
		}
		m, err := cachesim.New(cfg)
		if err != nil {
			return 0, 0, 0, err
		}
		m.AccessDatum(0, "cal", []int64{int64(home)}, false, false)
		met := m.Finish()
		costAt[mesh.Hops(0, home)] = met.Cost
	}
	local, ok := costAt[0]
	if !ok {
		return 0, 0, 0, fmt.Errorf("autotune: mesh probe saw no local fill")
	}
	// Two distinct remote distances pin the affine remote cost.
	minH, maxH := -1, -1
	for h := range costAt {
		if h == 0 {
			continue
		}
		if minH < 0 || h < minH {
			minH = h
		}
		if h > maxH {
			maxH = h
		}
	}
	if minH < 0 {
		return local, local, 0, nil // single-node mesh: nothing is remote
	}
	if maxH > minH {
		perHop = (costAt[maxH] - costAt[minH]) / float64(maxH-minH)
	}
	remoteBase = costAt[minH] - perHop*float64(minH)
	return local, remoteBase, perHop, nil
}

// hostProbeElems sizes the host stride probe's working set: large enough
// to defeat any last-level cache (32 Mi float64 = 256 MiB would be too
// hungry; 1<<22 elements = 32 MiB exceeds typical LLCs).
const hostProbeElems = 1 << 22

// probeHostLine estimates the cache-line size in float64 elements by the
// classic stride sweep over an array far larger than the LLC. While the
// stride stays within one line, doubling it halves the touches but still
// fetches every line, so per-touch time roughly doubles; once the stride
// exceeds the line, doubling it also halves the lines fetched and the
// per-touch time flattens. The knee — the last stride whose doubling
// still grew per-touch time by ≥1.4× — is the line size.
func probeHostLine() int64 {
	data := make([]float64, hostProbeElems)
	var sink float64
	timePerTouch := func(stride int64) float64 {
		start := time.Now()
		for i := int64(0); i < hostProbeElems; i += stride {
			sink += data[i]
		}
		return float64(time.Since(start)) / float64(hostProbeElems/stride)
	}
	timePerTouch(1) // warm the page tables
	prev := timePerTouch(1)
	line := int64(1)
	for stride := int64(2); stride <= 64; stride <<= 1 {
		cur := timePerTouch(stride)
		if cur < 1.4*prev {
			break
		}
		line = stride
		prev = cur
	}
	if sink == 0 { // defeat dead-code elimination without polluting output
		return line
	}
	return line
}

// probeHostMissRatio estimates the miss:hit cost ratio: time a pass that
// streams the huge array (all misses) against repeated passes over a
// small array (all hits after the first).
func probeHostMissRatio() float64 {
	big := make([]float64, hostProbeElems)
	small := make([]float64, 1<<12)
	var sink float64
	start := time.Now()
	for i := range big {
		sink += big[i]
	}
	missPer := float64(time.Since(start)) / float64(len(big))
	start = time.Now()
	const passes = 1 << 10
	for p := 0; p < passes; p++ {
		for i := range small {
			sink += small[i]
		}
	}
	hitPer := float64(time.Since(start)) / float64(passes*len(small))
	_ = sink
	if hitPer <= 0 {
		return 1
	}
	ratio := missPer / hitPer
	if ratio < 1 {
		ratio = 1
	}
	return ratio
}
