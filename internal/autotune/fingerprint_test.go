package autotune

import (
	"strings"
	"testing"

	"looppart/internal/cachesim"
	"looppart/internal/machine"
)

// The simulator-fit calibration must recover exactly the constants the
// simulator charges — that the fit reproduces DefaultConfig and
// DefaultCostModel is the correctness statement: nothing was copied, the
// probes measured it.
func TestCalibrateRecoversSimulatorConstants(t *testing.T) {
	fp, err := Calibrate(CalibrateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := cachesim.DefaultConfig(1)
	cost := machine.DefaultCostModel()
	checks := []struct {
		name      string
		got, want float64
	}{
		{"hit", fp.HitCost, cfg.CostCacheHit},
		{"miss", fp.MissCost, cfg.CostMemory},
		{"atomic", fp.AtomicCost, cfg.CostAtomic},
		{"local", fp.LocalMem, cost.LocalMem},
		{"remote", fp.RemoteBase, cost.RemoteBase},
		{"perhop", fp.PerHop, cost.PerHop},
	}
	for _, c := range checks {
		if c.got != c.want {
			t.Errorf("calibrated %s = %g, want %g", c.name, c.got, c.want)
		}
	}
	if fp.LineElems != 1 {
		t.Errorf("LineElems = %d, want 1 (simulator coheres per datum)", fp.LineElems)
	}
	if fp.Source != "sim" {
		t.Errorf("Source = %q, want sim", fp.Source)
	}
	if fp.Schema != FingerprintSchema {
		t.Errorf("Schema = %d, want %d", fp.Schema, FingerprintSchema)
	}
}

func TestCalibrateDeterministic(t *testing.T) {
	a, err := Calibrate(CalibrateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Calibrate(CalibrateOptions{Probes: 64, Mesh: 9})
	if err != nil {
		t.Fatal(err)
	}
	if a.ID() != b.ID() {
		t.Errorf("calibration IDs differ across probe sizes: %s vs %s", a.ID(), b.ID())
	}
}

// A calibration that confirms the model's constants must land in the
// model fingerprint's store namespace: Source/Host are provenance, not
// identity.
func TestFingerprintIDIgnoresProvenance(t *testing.T) {
	model := ModelFingerprint()
	sim, err := Calibrate(CalibrateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if model.ID() != sim.ID() {
		t.Errorf("model ID %s != sim-calibrated ID %s despite identical constants", model.ID(), sim.ID())
	}

	changed := model
	changed.MissCost = 21
	if changed.ID() == model.ID() {
		t.Error("changing a constant did not change the ID")
	}
	schema := model
	schema.Schema++
	if schema.ID() == model.ID() {
		t.Error("changing the schema did not change the ID")
	}
}

func TestFingerprintSimConfig(t *testing.T) {
	fp := ModelFingerprint()
	fp.MissCost = 42
	cfg := fp.SimConfig(8)
	if cfg.Procs != 8 || cfg.CostMemory != 42 || cfg.CostCacheHit != fp.HitCost {
		t.Errorf("SimConfig = %+v not derived from fingerprint", cfg)
	}
}

func TestFingerprintString(t *testing.T) {
	s := ModelFingerprint().String()
	for _, want := range []string{"fp", "source model", "miss=20", "local=15"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}
