package autotune

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"looppart/internal/telemetry"
)

// StoreSchema versions the on-disk entry format; entries written under a
// different schema are invisible (not quarantined — an old binary's
// entries are valid for that binary).
const StoreSchema = 1

// quarantineDir is where corrupt entries are moved, preserving the
// evidence without poisoning future scans.
const quarantineDir = ".quarantine"

// Store is a disk-backed, content-addressed store of tuned plans. Each
// entry is one JSON file named by the hash of (store schema, machine
// fingerprint, canonical plan key), so a store directory can hold plans
// for many machines and schema generations side by side; reads and scans
// see only the entries of this store's fingerprint and schema.
//
// Writes are atomic (temp file + rename in the same directory), so a
// crash mid-write leaves at worst an ignored temp file, never a torn
// entry. Entries that fail to parse or whose integrity sum does not match
// are quarantined: moved into .quarantine/ and counted, never deleted and
// never served.
type Store struct {
	dir string
	fp  Fingerprint

	mu          sync.Mutex
	puts        int64
	gets        int64
	getHits     int64
	quarantined int64
}

// storeEntry is the on-disk envelope. Sum covers the value bytes so a
// partially corrupted file cannot be served as a plan.
type storeEntry struct {
	Schema      int         `json:"schema"`
	Fingerprint Fingerprint `json:"fingerprint"`
	Key         string      `json:"key"`
	Sum         string      `json:"sum"`
	Value       json.RawMessage `json:"value"`
}

// OpenStore opens (creating if needed) the tuned-plan store rooted at dir
// for the given machine fingerprint.
func OpenStore(dir string, fp Fingerprint) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("autotune: store directory must not be empty")
	}
	if fp.Schema == 0 {
		fp = ModelFingerprint()
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("autotune: open store: %w", err)
	}
	return &Store{dir: dir, fp: fp}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Fingerprint returns the machine fingerprint the store is keyed under.
func (s *Store) Fingerprint() Fingerprint { return s.fp }

// entryName returns the content-addressed filename for a canonical plan
// key under this store's fingerprint and schema.
func (s *Store) entryName(key string) string {
	h := sha256.Sum256([]byte(fmt.Sprintf("store%d|%s|%s", StoreSchema, s.fp.ID(), key)))
	return hex.EncodeToString(h[:]) + ".json"
}

func valueSum(val []byte) string {
	h := sha256.Sum256(val)
	return hex.EncodeToString(h[:])
}

// Put persists val under the canonical plan key, atomically.
func (s *Store) Put(key string, val []byte) error {
	ent := storeEntry{
		Schema:      StoreSchema,
		Fingerprint: s.fp,
		Key:         key,
		Sum:         valueSum(val),
		Value:       json.RawMessage(val),
	}
	data, err := json.Marshal(ent)
	if err != nil {
		return fmt.Errorf("autotune: encode store entry: %w", err)
	}
	name := s.entryName(key)
	tmp, err := os.CreateTemp(s.dir, name+".tmp*")
	if err != nil {
		return fmt.Errorf("autotune: store put: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("autotune: store put: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("autotune: store put: %w", err)
	}
	if err := os.Rename(tmp.Name(), filepath.Join(s.dir, name)); err != nil {
		return fmt.Errorf("autotune: store put: %w", err)
	}
	s.mu.Lock()
	s.puts++
	s.mu.Unlock()
	telemetry.Active().Counter("autotune.store.puts").Add(1)
	return nil
}

// Get returns the stored value for the canonical plan key, or ok=false if
// absent. A present-but-corrupt entry is quarantined and reported absent.
func (s *Store) Get(key string) ([]byte, bool) {
	s.mu.Lock()
	s.gets++
	s.mu.Unlock()
	name := s.entryName(key)
	val, ok := s.load(name, key)
	if ok {
		s.mu.Lock()
		s.getHits++
		s.mu.Unlock()
		telemetry.Active().Counter("autotune.store.hits").Add(1)
	}
	return val, ok
}

// load reads and validates one entry file. wantKey "" accepts any key
// (the scan path); otherwise the entry must match, since a hash filename
// could in principle collide or be hand-renamed.
func (s *Store) load(name, wantKey string) ([]byte, bool) {
	path := filepath.Join(s.dir, name)
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, false
	}
	var ent storeEntry
	if err := json.Unmarshal(data, &ent); err != nil {
		s.quarantine(name, fmt.Sprintf("unparseable: %v", err))
		return nil, false
	}
	if ent.Schema != StoreSchema || ent.Fingerprint.ID() != s.fp.ID() {
		// Another generation's or machine's entry — not ours, not corrupt.
		return nil, false
	}
	if wantKey != "" && ent.Key != wantKey {
		s.quarantine(name, "key mismatch")
		return nil, false
	}
	if valueSum(ent.Value) != ent.Sum {
		s.quarantine(name, "integrity sum mismatch")
		return nil, false
	}
	return []byte(ent.Value), true
}

// quarantine moves a corrupt entry aside and counts it.
func (s *Store) quarantine(name, reason string) {
	qdir := filepath.Join(s.dir, quarantineDir)
	if err := os.MkdirAll(qdir, 0o755); err == nil {
		_ = os.Rename(filepath.Join(s.dir, name), filepath.Join(qdir, name))
	}
	s.mu.Lock()
	s.quarantined++
	s.mu.Unlock()
	telemetry.Active().Counter("autotune.store.quarantined").Add(1)
	telemetry.Active().Emit("autotune.store.quarantine", name, map[string]any{"reason": reason})
}

// Each calls fn for every valid entry of this store's fingerprint and
// schema, in directory order. Corrupt entries are quarantined as they are
// found; foreign entries are skipped. This is the daemon's warm-start
// path: each (key, value) can be fed straight into the in-memory LRU.
func (s *Store) Each(fn func(key string, val []byte)) error {
	names, err := os.ReadDir(s.dir)
	if err != nil {
		return fmt.Errorf("autotune: store scan: %w", err)
	}
	for _, de := range names {
		if de.IsDir() || !strings.HasSuffix(de.Name(), ".json") {
			continue // quarantine dir, temp files
		}
		path := filepath.Join(s.dir, de.Name())
		data, err := os.ReadFile(path)
		if err != nil {
			continue
		}
		var ent storeEntry
		if err := json.Unmarshal(data, &ent); err != nil {
			s.quarantine(de.Name(), fmt.Sprintf("unparseable: %v", err))
			continue
		}
		if ent.Schema != StoreSchema || ent.Fingerprint.ID() != s.fp.ID() {
			continue
		}
		if valueSum(ent.Value) != ent.Sum {
			s.quarantine(de.Name(), "integrity sum mismatch")
			continue
		}
		fn(ent.Key, []byte(ent.Value))
	}
	return nil
}

// StoreStats is a point-in-time view of the store counters.
type StoreStats struct {
	Dir         string `json:"dir"`
	Fingerprint string `json:"fingerprint"`
	Entries     int    `json:"entries"`
	Puts        int64  `json:"puts"`
	Gets        int64  `json:"gets"`
	GetHits     int64  `json:"get_hits"`
	Quarantined int64  `json:"quarantined"`
}

// Stats counts this fingerprint's valid entries on disk plus the
// session's operation counters.
func (s *Store) Stats() StoreStats {
	entries := 0
	_ = s.Each(func(string, []byte) { entries++ })
	s.mu.Lock()
	defer s.mu.Unlock()
	return StoreStats{
		Dir:         s.dir,
		Fingerprint: s.fp.ID(),
		Entries:     entries,
		Puts:        s.puts,
		Gets:        s.gets,
		GetHits:     s.getHits,
		Quarantined: s.quarantined,
	}
}
