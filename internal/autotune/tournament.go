package autotune

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"looppart/internal/cachesim"
	"looppart/internal/commsets"
	"looppart/internal/exec"
	"looppart/internal/footprint"
	"looppart/internal/layout"
	"looppart/internal/obs"
	"looppart/internal/partition"
	"looppart/internal/telemetry"
	"looppart/internal/tile"
)

// TournamentOptions parameterizes RunTournament.
type TournamentOptions struct {
	// Procs is the processor count to partition for.
	Procs int
	// Strategy selects the candidate search: "rect" (default) or
	// "skewed".
	Strategy string
	// K is how many ranked candidates contest (default 4; 1 degenerates
	// to measuring the analytic plan alone).
	K int
	// MaxSkew bounds skew matrix entries for the skewed search
	// (default 3, matching the root pipeline's skew search — candidate 0
	// must be the exact plan the non-autotuned pipeline ships).
	MaxSkew int64
	// Fingerprint supplies the calibrated cost constants the replays run
	// under. Zero value means ModelFingerprint().
	Fingerprint Fingerprint
	// CacheLines bounds each simulated cache; 0 = infinite (the paper's
	// model).
	CacheLines int
	// Exec additionally runs each candidate for real on goroutines and
	// records wall-clock time. Wall time is reported, never used for
	// selection: it is nondeterministic, and the winner must be
	// reproducible.
	Exec bool
}

// Candidate is one contestant's predicted and measured showing.
type Candidate struct {
	// Rank is the analytic model's ranking (0 = the argmin plan the
	// non-autotuned pipeline would ship).
	Rank int       `json:"rank"`
	Tile tile.Tile `json:"-"`
	// TileDesc is Tile.String(), for serialized reports.
	TileDesc string `json:"tile"`
	// PredictedFootprint is the model's per-processor cumulative
	// footprint — its miss prediction on an infinite cache.
	PredictedFootprint float64 `json:"predicted_footprint"`
	Exactness          string  `json:"exactness"`

	// Measured results from the simulator replay.
	MeasuredMisses int64   `json:"measured_misses"`
	MeasuredCost   float64 `json:"measured_cost"`
	// MissesPerProc is MeasuredMisses/Procs, the measured counterpart of
	// PredictedFootprint.
	MissesPerProc float64 `json:"misses_per_proc"`
	// DeltaPct is (MissesPerProc − PredictedFootprint)/PredictedFootprint
	// ×100: how far the analytic model was off for this plan.
	DeltaPct float64 `json:"delta_pct"`
	// CommWords is the exact inter-processor communication of this plan
	// in words per epoch (internal/commsets) — the tournament's second
	// cost axis next to the measured miss count. −1 when the analysis
	// was unavailable for this candidate.
	CommWords int64 `json:"comm_words"`
	// ExecNs is the wall-clock time of the optional real execution.
	ExecNs int64 `json:"exec_ns,omitempty"`
}

// Result is a finished tournament.
type Result struct {
	Fingerprint Fingerprint `json:"fingerprint"`
	Strategy    string      `json:"strategy"`
	Procs       int         `json:"procs"`
	CacheLines  int         `json:"cache_lines,omitempty"`
	Candidates  []Candidate `json:"candidates"`
	// Winner indexes Candidates: the plan with the fewest measured
	// misses (ties to lower cost, then to the better analytic rank — so
	// a tournament that measures no difference ships the analytic plan).
	Winner int `json:"winner"`
	// CommLowerBound is the Dinh–Demmel communication lower bound for
	// the nest over this processor count — the floor every candidate's
	// CommWords is scored against. 0 when the strategy's candidates are
	// outside the rectangular-grid family the bound covers (skewed), or
	// when the nest has no bounded communication structure.
	CommLowerBound int64 `json:"comm_lower_bound,omitempty"`
}

// WinnerCandidate returns the winning contestant.
func (r *Result) WinnerCandidate() Candidate { return r.Candidates[r.Winner] }

// Improved reports whether measurement overturned the analytic choice.
func (r *Result) Improved() bool { return r.Winner != 0 }

// Report renders the predicted-vs-measured table.
func (r *Result) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "tournament: %s, P=%d, fingerprint %s\n", r.Strategy, r.Procs, r.Fingerprint.ID())
	showOpt := r.CommLowerBound > 0
	if showOpt {
		fmt.Fprintf(&b, "%-4s %-20s %14s %14s %10s %8s %10s %7s\n",
			"rank", "tile", "predicted", "measured/proc", "delta", "misses", "comm", "opt%")
	} else {
		fmt.Fprintf(&b, "%-4s %-20s %14s %14s %10s %8s %10s\n",
			"rank", "tile", "predicted", "measured/proc", "delta", "misses", "comm")
	}
	for i, c := range r.Candidates {
		mark := "  "
		if i == r.Winner {
			mark = "← winner"
		}
		comm := "—"
		if c.CommWords >= 0 {
			comm = fmt.Sprintf("%d", c.CommWords)
		}
		if showOpt {
			opt := "—"
			if c.CommWords > 0 {
				opt = fmt.Sprintf("%.1f", 100*float64(r.CommLowerBound)/float64(c.CommWords))
			}
			fmt.Fprintf(&b, "%-4d %-20s %14.1f %14.1f %9.1f%% %8d %10s %7s %s\n",
				c.Rank, c.TileDesc, c.PredictedFootprint, c.MissesPerProc, c.DeltaPct, c.MeasuredMisses, comm, opt, mark)
			continue
		}
		fmt.Fprintf(&b, "%-4d %-20s %14.1f %14.1f %9.1f%% %8d %10s %s\n",
			c.Rank, c.TileDesc, c.PredictedFootprint, c.MissesPerProc, c.DeltaPct, c.MeasuredMisses, comm, mark)
	}
	if showOpt {
		fmt.Fprintf(&b, "communication lower bound: %d words/epoch (opt%% = bound/measured comm)\n", r.CommLowerBound)
	}
	w := r.WinnerCandidate()
	if r.Improved() {
		base := r.Candidates[0]
		fmt.Fprintf(&b, "measurement overturned the analytic choice: %s (%d misses) beats %s (%d misses)\n",
			w.TileDesc, w.MeasuredMisses, base.TileDesc, base.MeasuredMisses)
	} else {
		fmt.Fprintf(&b, "analytic choice confirmed: %s (%d misses)\n", w.TileDesc, w.MeasuredMisses)
	}
	return b.String()
}

// RunTournament surfaces the top-K candidate plans of the analytic
// search, replays each through the cache simulator under the calibrated
// cost model, and returns the measured ranking. Candidate 0 is always the
// plan the pure-analytic pipeline would pick, and ties break toward it —
// so the winner's measured miss count is ≤ the analytic plan's by
// construction, and autotuning can only confirm or improve, never
// regress.
func RunTournament(a *footprint.Analysis, opts TournamentOptions) (*Result, error) {
	return RunTournamentCtx(context.Background(), a, opts)
}

// RunTournamentCtx is RunTournament with request-scoped tracing: when ctx
// carries an obs.Trace, the measured replays run under a "tournament" span
// recording the candidate count, winner rank, and measured misses, and the
// underlying top-K analytic search contributes its own search spans.
func RunTournamentCtx(ctx context.Context, a *footprint.Analysis, opts TournamentOptions) (*Result, error) {
	if opts.Procs <= 0 {
		return nil, fmt.Errorf("autotune: need at least one processor")
	}
	if opts.K < 1 {
		opts.K = 4
	}
	if opts.Strategy == "" {
		opts.Strategy = "rect"
	}
	if opts.MaxSkew <= 0 {
		opts.MaxSkew = 3
	}
	fp := opts.Fingerprint
	if fp.Schema == 0 {
		fp = ModelFingerprint()
	}
	_, osp := obs.StartSpan(ctx, "tournament")
	defer osp.End()
	osp.SetAttr("strategy", opts.Strategy)
	osp.SetAttr("k", opts.K)

	var tiles []tile.Tile
	var predicted []float64
	var exactness []footprint.Exactness
	fam, ok := partition.Lookup(opts.Strategy)
	if ok {
		plans, err := fam.TopK(a, opts.Procs, opts.K, partition.TopKOptions{MaxSkew: opts.MaxSkew})
		if errors.Is(err, partition.ErrNoTopK) {
			ok = false
		} else if err != nil {
			return nil, err
		}
		for _, p := range plans {
			if p.Tile == nil {
				continue // slab plans have no tiling to replay
			}
			tiles = append(tiles, *p.Tile)
			predicted = append(predicted, p.PredictedFootprint)
			exactness = append(exactness, p.Exactness)
		}
	}
	if !ok {
		return nil, fmt.Errorf("autotune: unknown tournament strategy %q (want rect, skewed, or lowerbound)", opts.Strategy)
	}

	reg := telemetry.Active()
	sp := reg.StartSpan("autotune.tournament")
	defer sp.End()

	res := &Result{Fingerprint: fp, Strategy: opts.Strategy, Procs: opts.Procs, CacheLines: opts.CacheLines}
	if opts.Strategy == "rect" || opts.Strategy == "lowerbound" {
		// Both strategies contest only rectangular-grid tiles — the family
		// the Dinh–Demmel bound minimizes over — so the bound is a valid
		// floor for every candidate's CommWords column. Best-effort: a nest
		// the bound cannot qualify scores without the column.
		if lb, err := partition.CommLowerBound(a, opts.Procs); err == nil {
			res.CommLowerBound = lb.Words
		}
	}
	space := tile.BoundsOf(a.Nest)
	var mm *layout.MemoryMap
	if fp.LineElems > 1 {
		var err error
		if mm, err = layout.MapNest(a.Nest, fp.LineElems); err != nil {
			return nil, err
		}
	}
	for rank, tl := range tiles {
		tiling, err := tile.NewTiling(tl, space.Lo)
		if err != nil {
			return nil, fmt.Errorf("autotune: candidate %d: %w", rank, err)
		}
		asg, err := tile.Assign(tiling, space, opts.Procs)
		if err != nil {
			return nil, fmt.Errorf("autotune: candidate %d: %w", rank, err)
		}
		assign := asg.ProcOf

		cfg := fp.SimConfig(opts.Procs)
		cfg.CacheLines = opts.CacheLines
		cfg.ExpectedData = expectedData(predicted[rank], opts.Procs)
		m, err := cachesim.New(cfg)
		if err != nil {
			return nil, err
		}
		if mm != nil {
			err = cachesim.RunNestLines(m, a.Nest, assign, mm)
		} else {
			err = cachesim.RunNest(m, a.Nest, assign)
		}
		if err != nil {
			return nil, fmt.Errorf("autotune: candidate %d replay: %w", rank, err)
		}
		met := m.Finish()

		c := Candidate{
			Rank:               rank,
			Tile:               tl,
			TileDesc:           tl.String(),
			PredictedFootprint: predicted[rank],
			Exactness:          exactness[rank].String(),
			MeasuredMisses:     met.Misses(),
			MeasuredCost:       met.Cost,
			MissesPerProc:      float64(met.Misses()) / float64(opts.Procs),
			CommWords:          -1,
		}
		if c.PredictedFootprint > 0 {
			c.DeltaPct = 100 * (c.MissesPerProc - c.PredictedFootprint) / c.PredictedFootprint
		}
		// Exact communication words per epoch, the second cost axis.
		// Best-effort: a candidate whose comm sets cannot be computed
		// still contests on misses.
		if comm, err := commsets.Compute(commsets.Spec{
			Analysis: a, Space: space, Procs: opts.Procs, Tile: &tl, Assign: assign,
		}, commsets.Options{}); err == nil {
			c.CommWords = comm.TotalWords
		}
		if opts.Exec {
			ns, err := execCandidate(a, opts.Procs, assign)
			if err != nil {
				return nil, fmt.Errorf("autotune: candidate %d exec: %w", rank, err)
			}
			c.ExecNs = ns
		}
		res.Candidates = append(res.Candidates, c)
		reg.Emit("autotune.tournament.candidate", c.TileDesc, map[string]any{
			"rank":      rank,
			"predicted": c.PredictedFootprint,
			"measured":  c.MissesPerProc,
			"delta_pct": c.DeltaPct,
			"misses":    c.MeasuredMisses,
			"cost":      c.MeasuredCost,
		})
	}

	// Measured selection: fewest misses, ties to lowest cost, ties to
	// the better analytic rank. sort.SliceStable would reorder; keep the
	// candidates in analytic order and pick the winner by index so the
	// report shows both rankings.
	res.Winner = 0
	for i := 1; i < len(res.Candidates); i++ {
		w, c := res.Candidates[res.Winner], res.Candidates[i]
		if c.MeasuredMisses < w.MeasuredMisses ||
			(c.MeasuredMisses == w.MeasuredMisses && c.MeasuredCost < w.MeasuredCost) {
			res.Winner = i
		}
	}
	w := res.WinnerCandidate()
	reg.Emit("autotune.tournament.chosen", w.TileDesc, map[string]any{
		"rank":       w.Rank,
		"misses":     w.MeasuredMisses,
		"improved":   res.Improved(),
		"candidates": len(res.Candidates),
	})
	reg.Counter("autotune.tournaments").Add(1)
	osp.SetAttr("candidates", int64(len(res.Candidates)))
	osp.SetAttr("winner_rank", w.Rank)
	osp.SetAttr("winner_misses", w.MeasuredMisses)
	osp.SetAttr("improved", res.Improved())
	if res.Improved() {
		reg.Counter("autotune.tournaments.improved").Add(1)
	}
	return res, nil
}

// execCandidate runs the nest for real under the assignment and returns
// the wall-clock nanoseconds.
func execCandidate(a *footprint.Analysis, procs int, assign func(p []int64) int) (int64, error) {
	st, err := exec.StoreFor(a.Nest)
	if err != nil {
		return 0, err
	}
	start := time.Now()
	if err := exec.RunParallel(a.Nest, st, procs, assign); err != nil {
		return 0, err
	}
	return time.Since(start).Nanoseconds(), nil
}

// expectedData mirrors Plan.expectedData: presize the simulator from the
// model's own prediction, capped so a mis-prediction cannot balloon
// memory.
func expectedData(predictedFootprint float64, procs int) int {
	if predictedFootprint <= 0 {
		return 0
	}
	n := predictedFootprint * float64(procs)
	const maxHint = 1 << 20
	if n > maxHint {
		return maxHint
	}
	return int(n)
}

// SortedByMeasured returns candidate indices ordered by the measured
// ranking (misses, then cost, then analytic rank) — the order a report
// consumer would re-rank the analytic candidates into.
func (r *Result) SortedByMeasured() []int {
	idx := make([]int, len(r.Candidates))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(x, y int) bool {
		a, b := r.Candidates[idx[x]], r.Candidates[idx[y]]
		if a.MeasuredMisses != b.MeasuredMisses {
			return a.MeasuredMisses < b.MeasuredMisses
		}
		if a.MeasuredCost != b.MeasuredCost {
			return a.MeasuredCost < b.MeasuredCost
		}
		return a.Rank < b.Rank
	})
	return idx
}
