package autotune

import (
	"strings"
	"testing"

	"looppart/internal/footprint"
	"looppart/internal/paperex"
	"looppart/internal/partition"
	"looppart/internal/telemetry"
)

func analysisFor(t *testing.T, src string, params map[string]int64) *footprint.Analysis {
	t.Helper()
	n := paperex.MustParse(src, params)
	a, err := footprint.Analyze(n)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

// The acceptance invariant: the tournament winner's simulated miss count
// is never above the pure-analytic plan's, on every paper nest. Candidate
// 0 IS the analytic plan and ties break toward it, so this holds by
// construction — the test pins the construction.
func TestTournamentWinnerNeverWorseThanAnalytic(t *testing.T) {
	params := map[string]int64{"N": 12, "T": 2}
	for name, src := range paperex.All {
		a := analysisFor(t, src, params)
		res, err := RunTournament(a, TournamentOptions{Procs: 4, K: 4})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		analytic := res.Candidates[0]
		winner := res.WinnerCandidate()
		if winner.MeasuredMisses > analytic.MeasuredMisses {
			t.Errorf("%s: winner %s has %d misses, analytic %s has %d",
				name, winner.TileDesc, winner.MeasuredMisses,
				analytic.TileDesc, analytic.MeasuredMisses)
		}
	}
}

func TestTournamentCandidateZeroIsArgmin(t *testing.T) {
	a := analysisFor(t, paperex.Example8, map[string]int64{"N": 24})
	argmin, err := partition.OptimizeRect(a, 8)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunTournament(a, TournamentOptions{Procs: 8, K: 4})
	if err != nil {
		t.Fatal(err)
	}
	want := "rect("
	for i, e := range argmin.Ext {
		if i > 0 {
			want += "x"
		}
		want += itoa(e)
	}
	want += ")"
	if res.Candidates[0].TileDesc != want {
		t.Errorf("candidate 0 = %s, argmin tile = %s", res.Candidates[0].TileDesc, want)
	}
	if res.Candidates[0].PredictedFootprint != argmin.PredictedFootprint {
		t.Errorf("candidate 0 predicted %.1f, argmin %.1f",
			res.Candidates[0].PredictedFootprint, argmin.PredictedFootprint)
	}
}

func itoa(v int64) string {
	if v == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	return string(b[i:])
}

func TestTournamentDeterministic(t *testing.T) {
	a := analysisFor(t, paperex.Example9, map[string]int64{"N": 16})
	var first *Result
	for i := 0; i < 3; i++ {
		res, err := RunTournament(a, TournamentOptions{Procs: 4, K: 3})
		if err != nil {
			t.Fatal(err)
		}
		if first == nil {
			first = res
			continue
		}
		if res.Winner != first.Winner || len(res.Candidates) != len(first.Candidates) {
			t.Fatalf("run %d: winner %d/%d candidates, first run %d/%d",
				i, res.Winner, len(res.Candidates), first.Winner, len(first.Candidates))
		}
		for j := range res.Candidates {
			if res.Candidates[j].MeasuredMisses != first.Candidates[j].MeasuredMisses {
				t.Errorf("run %d candidate %d: %d misses vs %d",
					i, j, res.Candidates[j].MeasuredMisses, first.Candidates[j].MeasuredMisses)
			}
		}
	}
}

func TestTournamentSkewStrategy(t *testing.T) {
	a := analysisFor(t, paperex.Example3, map[string]int64{"N": 16})
	res, err := RunTournament(a, TournamentOptions{Procs: 4, Strategy: "skewed", K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Strategy != "skewed" || len(res.Candidates) == 0 {
		t.Fatalf("unexpected result %+v", res)
	}
	argmin, err := partition.OptimizeSkew(a, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Candidates[0].TileDesc != argmin.Tile.String() {
		t.Errorf("candidate 0 = %s, argmin = %s", res.Candidates[0].TileDesc, argmin.Tile.String())
	}
}

func TestTournamentLineGranularity(t *testing.T) {
	a := analysisFor(t, paperex.Example8, map[string]int64{"N": 16})
	fp := ModelFingerprint()
	fp.LineElems = 4
	unit, err := RunTournament(a, TournamentOptions{Procs: 4, K: 2})
	if err != nil {
		t.Fatal(err)
	}
	lined, err := RunTournament(a, TournamentOptions{Procs: 4, K: 2, Fingerprint: fp})
	if err != nil {
		t.Fatal(err)
	}
	if lined.Candidates[0].MeasuredMisses >= unit.Candidates[0].MeasuredMisses {
		t.Errorf("4-element lines measured %d misses, unit lines %d — spatial locality lost",
			lined.Candidates[0].MeasuredMisses, unit.Candidates[0].MeasuredMisses)
	}
}

func TestTournamentExecAndReport(t *testing.T) {
	a := analysisFor(t, paperex.Example8, map[string]int64{"N": 8})
	res, err := RunTournament(a, TournamentOptions{Procs: 2, K: 2, Exec: true})
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range res.Candidates {
		if c.ExecNs <= 0 {
			t.Errorf("candidate %d: ExecNs = %d, want > 0", i, c.ExecNs)
		}
		if c.CommWords < 0 {
			t.Errorf("candidate %d: comm words unavailable", i)
		}
	}
	rep := res.Report()
	for _, want := range []string{"rank", "predicted", "comm", "winner", res.Fingerprint.ID()} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q:\n%s", want, rep)
		}
	}
	order := res.SortedByMeasured()
	if order[0] != res.Winner {
		t.Errorf("SortedByMeasured()[0] = %d, winner = %d", order[0], res.Winner)
	}
}

func TestTournamentEmitsDecisionTrace(t *testing.T) {
	reg := telemetry.New()
	prev := telemetry.SetActive(reg)
	defer telemetry.SetActive(prev)

	a := analysisFor(t, paperex.Example8, map[string]int64{"N": 8})
	if _, err := RunTournament(a, TournamentOptions{Procs: 2, K: 2}); err != nil {
		t.Fatal(err)
	}
	var cand, chosen int
	for _, ev := range reg.Events() {
		switch ev.Kind {
		case "autotune.tournament.candidate":
			cand++
		case "autotune.tournament.chosen":
			chosen++
		}
	}
	if cand == 0 || chosen != 1 {
		t.Errorf("decision trace: %d candidate events, %d chosen events", cand, chosen)
	}
}

func TestTournamentErrors(t *testing.T) {
	a := analysisFor(t, paperex.Example2, nil)
	if _, err := RunTournament(a, TournamentOptions{Procs: 0}); err == nil {
		t.Error("procs=0 accepted")
	}
	if _, err := RunTournament(a, TournamentOptions{Procs: 4, Strategy: "diagonal"}); err == nil {
		t.Error("unknown strategy accepted")
	}
}
