package autotune

import (
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

func openTestStore(t *testing.T) *Store {
	t.Helper()
	s, err := OpenStore(t.TempDir(), ModelFingerprint())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestStorePutGetRoundTrip(t *testing.T) {
	s := openTestStore(t)
	if _, ok := s.Get("nest-a"); ok {
		t.Fatal("empty store reported a hit")
	}
	val := []byte(`{"plan":"rect(3x4)"}`)
	if err := s.Put("nest-a", val); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get("nest-a")
	if !ok || string(got) != string(val) {
		t.Fatalf("Get = %q, %v; want %q, true", got, ok, val)
	}

	// Overwrite is a replace, not a second entry.
	val2 := []byte(`{"plan":"rect(2x6)"}`)
	if err := s.Put("nest-a", val2); err != nil {
		t.Fatal(err)
	}
	got, _ = s.Get("nest-a")
	if string(got) != string(val2) {
		t.Fatalf("after overwrite Get = %q, want %q", got, val2)
	}
	if st := s.Stats(); st.Entries != 1 {
		t.Fatalf("entries = %d, want 1", st.Entries)
	}
}

func TestStoreSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	s1, err := OpenStore(dir, ModelFingerprint())
	if err != nil {
		t.Fatal(err)
	}
	if err := s1.Put("k", []byte(`"v"`)); err != nil {
		t.Fatal(err)
	}
	s2, err := OpenStore(dir, ModelFingerprint())
	if err != nil {
		t.Fatal(err)
	}
	got, ok := s2.Get("k")
	if !ok || string(got) != `"v"` {
		t.Fatalf("reopened Get = %q, %v", got, ok)
	}
}

func TestStoreQuarantinesCorruptEntries(t *testing.T) {
	s := openTestStore(t)
	if err := s.Put("good", []byte(`"good"`)); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("torn", []byte(`"torn"`)); err != nil {
		t.Fatal(err)
	}
	// Corrupt the second entry's bytes on disk (flip the payload without
	// updating the sum) and write one unparseable file.
	tornName := s.entryName("torn")
	data, err := os.ReadFile(filepath.Join(s.dir, tornName))
	if err != nil {
		t.Fatal(err)
	}
	tampered := strings.Replace(string(data), `"torn"`, `"TORN"`, 1)
	if tampered == string(data) {
		t.Fatal("tamper had no effect")
	}
	if err := os.WriteFile(filepath.Join(s.dir, tornName), []byte(tampered), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(s.dir, strings.Repeat("ab", 32)+".json"), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}

	if _, ok := s.Get("torn"); ok {
		t.Error("tampered entry served")
	}
	var keys []string
	if err := s.Each(func(k string, _ []byte) { keys = append(keys, k) }); err != nil {
		t.Fatal(err)
	}
	if len(keys) != 1 || keys[0] != "good" {
		t.Errorf("scan returned %v, want [good]", keys)
	}
	st := s.Stats()
	if st.Quarantined < 2 {
		t.Errorf("quarantined = %d, want >= 2 (tampered + unparseable)", st.Quarantined)
	}
	// The evidence is preserved, not deleted.
	qfiles, err := os.ReadDir(filepath.Join(s.dir, quarantineDir))
	if err != nil || len(qfiles) < 2 {
		t.Errorf("quarantine dir has %d files (err %v), want >= 2", len(qfiles), err)
	}
	// Quarantine is sticky: the corrupt entry no longer shadows the key.
	if _, ok := s.Get("torn"); ok {
		t.Error("quarantined entry reappeared")
	}
}

func TestStoreIsolatesFingerprints(t *testing.T) {
	dir := t.TempDir()
	model, err := OpenStore(dir, ModelFingerprint())
	if err != nil {
		t.Fatal(err)
	}
	other := ModelFingerprint()
	other.MissCost = 99
	tuned, err := OpenStore(dir, other)
	if err != nil {
		t.Fatal(err)
	}
	if err := model.Put("k", []byte(`"model"`)); err != nil {
		t.Fatal(err)
	}
	if err := tuned.Put("k", []byte(`"tuned"`)); err != nil {
		t.Fatal(err)
	}
	if got, _ := model.Get("k"); string(got) != `"model"` {
		t.Errorf("model store sees %q", got)
	}
	if got, _ := tuned.Get("k"); string(got) != `"tuned"` {
		t.Errorf("tuned store sees %q", got)
	}
	// Scans are disjoint and nothing is quarantined: a foreign entry is
	// valid, just not ours.
	n := 0
	if err := model.Each(func(string, []byte) { n++ }); err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Errorf("model scan saw %d entries, want 1", n)
	}
	if q := model.Stats().Quarantined; q != 0 {
		t.Errorf("foreign entries quarantined: %d", q)
	}
}

func TestStoreConcurrentPutGet(t *testing.T) {
	s := openTestStore(t)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			key := string(rune('a' + i%4))
			val := []byte(`"v"`)
			for j := 0; j < 20; j++ {
				if err := s.Put(key, val); err != nil {
					t.Error(err)
					return
				}
				if got, ok := s.Get(key); ok && string(got) != `"v"` {
					t.Errorf("torn read: %q", got)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	if st := s.Stats(); st.Entries != 4 || st.Quarantined != 0 {
		t.Errorf("stats after concurrent writes: %+v", st)
	}
}

func TestStoreIgnoresTempFiles(t *testing.T) {
	s := openTestStore(t)
	// A crash mid-Put leaves a temp file; scans and gets must not see it.
	if err := os.WriteFile(filepath.Join(s.dir, s.entryName("x")+".tmp123"), []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	n := 0
	if err := s.Each(func(string, []byte) { n++ }); err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Errorf("scan saw %d entries, want 0", n)
	}
	if st := s.Stats(); st.Quarantined != 0 {
		t.Errorf("temp file quarantined: %+v", st)
	}
}
