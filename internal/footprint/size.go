package footprint

import (
	"fmt"
	"math"

	"looppart/internal/intmat"
	"looppart/internal/lattice"
	"looppart/internal/tile"
)

// Exactness qualifies a size prediction.
type Exactness int

const (
	// Exact: the closed form counts lattice points exactly (Theorem 4
	// with an integral spread decomposition).
	Exact Exactness = iota
	// Approximate: the determinant/volume model of Theorem 2, or a
	// rational spread decomposition — correct to lower-order boundary
	// terms (the paper's ≈).
	Approximate
	// Enumerated: no closed form applied; the value came from exact
	// enumeration.
	Enumerated
)

func (e Exactness) String() string {
	switch e {
	case Exact:
		return "exact"
	case Approximate:
		return "approximate"
	default:
		return "enumerated"
	}
}

// SpreadCoeffs solves â' = u·G' for the lattice coordinates of the class
// spread in terms of the reduced reference matrix rows (Theorem 4). The
// returned coefficients are absolute values. ok reports whether G' is
// square and nonsingular; integral reports whether the solution is
// integral (when it is, Theorem 4's count is exact).
func (c Class) SpreadCoeffs() (u []float64, integral bool, ok bool) {
	return c.spreadCoeffs(c.Spread())
}

// CumulativeSpreadCoeffs is SpreadCoeffs with the data-partitioning spread
// a⁺ in place of â (footnote 2).
func (c Class) CumulativeSpreadCoeffs() (u []float64, integral bool, ok bool) {
	return c.spreadCoeffs(c.CumulativeSpread())
}

// solveLeftFloat solves target = u·g over the rationals and returns the
// coefficient magnitudes as floats.
func solveLeftFloat(g intmat.Mat, target []int64) ([]float64, bool) {
	sol, ok := intmat.SolveLeftInt(g, target)
	if !ok {
		return nil, false
	}
	out := make([]float64, len(sol))
	for i, s := range sol {
		out[i] = math.Abs(s.Float())
	}
	return out, true
}

func (c Class) spreadCoeffs(spread []int64) ([]float64, bool, bool) {
	gr := c.Reduced.G
	if gr.Rows() != gr.Cols() || !gr.IsNonsingular() {
		return nil, false, false
	}
	target := c.Reduced.Project(spread)
	sol, solOK := intmat.SolveLeftInt(gr, target)
	if !solOK {
		return nil, false, false
	}
	u := make([]float64, len(sol))
	integral := true
	for i, s := range sol {
		if !s.IsInt() {
			integral = false
		}
		u[i] = math.Abs(s.Float())
	}
	return u, integral, true
}

// PairCoeffs solves (a₂ − a₁)' = u·G' for a two-reference class: the
// lattice coordinates of the actual translation between the two
// footprints (Proposition 1). Unlike the spread â — which takes
// per-component max−min and so loses relative signs — this is the exact
// translation vector, and Lemma 3 counts the union exactly from it.
func (c Class) PairCoeffs() (u []float64, integral bool, ok bool) {
	if len(c.Refs) != 2 {
		return nil, false, false
	}
	diff := make([]int64, len(c.Refs[0].A))
	for k := range diff {
		diff[k] = c.Refs[1].A[k] - c.Refs[0].A[k]
	}
	return c.spreadCoeffs(diff)
}

// RectFootprint predicts the cumulative footprint size of a rectangular
// tile with the given per-dimension extents (number of iterations per
// dimension; the paper's λ+1). It uses the sharpest model available:
//
//   - one reference, square nonsingular G': exactly Π extⱼ (the rows of
//     G' are independent, so the tile maps 1:1 into the data space);
//   - two references with an integral translation decomposition: Lemma 3's
//     exact union size 2·Π extⱼ − Π(extⱼ − |uⱼ|) — this is where the
//     paper's Example 2 numbers (104 and 140) come from;
//   - otherwise, with square nonsingular G': the linearized Theorem 4
//     form (see RectFootprintLinearized), the paper's ≈;
//   - otherwise exact enumeration.
func (c Class) RectFootprint(ext []int64) (float64, Exactness) {
	l := c.G.Rows()
	if len(ext) != l {
		panic(fmt.Sprintf("footprint: %d extents for %d-deep nest", len(ext), l))
	}
	gr := c.Reduced.G
	square := gr.Rows() == gr.Cols() && gr.IsNonsingular()
	if !square {
		return float64(c.enumerateRect(ext)), Enumerated
	}
	base := 1.0
	for _, e := range ext {
		base *= float64(e)
	}
	if len(c.Refs) == 1 {
		return base, Exact
	}
	if len(c.Refs) == 2 {
		if u, integral, ok := c.PairCoeffs(); ok && integral {
			bounds := make([]int64, len(ext))
			ui := make([]int64, len(u))
			for k := range ext {
				bounds[k] = ext[k] - 1
				ui[k] = int64(math.Round(u[k]))
			}
			return float64(lattice.UnionSizeModel(bounds, ui)), Exact
		}
	}
	v, ex := c.RectFootprintLinearized(ext)
	return v, ex
}

// RectFootprintLinearized is the paper's Theorem 4 expression:
//
//	Π extⱼ + Σᵢ |uᵢ|·Π_{j≠i} extⱼ
//
// with â = Σ uᵢ·gᵢ' solved over the rationals. This is the form the
// optimizer's closed-form aspect ratios come from (Examples 8–10). It is
// approximate: it drops Lemma 3's cross terms and relies on the spread
// heuristic for classes of three or more references.
func (c Class) RectFootprintLinearized(ext []int64) (float64, Exactness) {
	u, _, ok := c.SpreadCoeffs()
	if !ok {
		return float64(c.enumerateRect(ext)), Enumerated
	}
	base := 1.0
	for _, e := range ext {
		base *= float64(e)
	}
	total := base
	for i, ui := range u {
		term := ui
		for j, e := range ext {
			if j == i {
				continue
			}
			term *= float64(e)
		}
		total += term
	}
	return total, Approximate
}

// RectTraffic predicts the per-tile communication volume of a rectangular
// tile: the cumulative footprint minus the single-reference footprint
// (the Σᵢ |uᵢ|·Π_{j≠i} extⱼ terms). Under an outer sequential loop this is
// the steady-state coherence traffic per epoch (Figure 9 discussion); the
// volume term drops because it is fixed by load balance.
func (c Class) RectTraffic(ext []int64) (float64, Exactness) {
	fp, ex := c.RectFootprint(ext)
	if ex == Enumerated {
		// Subtract the enumerated single-reference footprint.
		single := c.enumerateRectSingle(ext)
		return fp - float64(single), Enumerated
	}
	base := 1.0
	for _, e := range ext {
		base *= float64(e)
	}
	return fp - base, ex
}

// RectTrafficLinearized is the paper's Theorem 4 traffic expression: the
// Σᵢ |uᵢ|·Π_{j≠i} extⱼ terms alone (Example 8's 2LjLk + 3LiLk + 4LiLj).
func (c Class) RectTrafficLinearized(ext []int64) (float64, Exactness) {
	fp, ex := c.RectFootprintLinearized(ext)
	if ex == Enumerated {
		single := c.enumerateRectSingle(ext)
		return fp - float64(single), Enumerated
	}
	base := 1.0
	for _, e := range ext {
		base *= float64(e)
	}
	return fp - base, ex
}

// TileFootprint predicts the cumulative footprint for a general
// hyperparallelepiped tile via Theorem 2:
//
//	|det LG'| + Σᵢ |det (LG')_{i→â'}|
//
// where G' is the reduced reference matrix and â' the projected spread.
// The model requires G' square; otherwise the footprint is enumerated.
// For rectangular tiles RectFootprint gives sharper (λ+1) counts.
func (c Class) TileFootprint(t tile.Tile) (float64, Exactness) {
	gr := c.Reduced.G
	if gr.Rows() != gr.Cols() || !gr.IsNonsingular() {
		return float64(c.enumerateTile(t)), Enumerated
	}
	lg := t.L.Mul(gr)
	total := math.Abs(float64(lg.Det()))
	spread := c.Reduced.Project(c.Spread())
	for i := 0; i < lg.Rows(); i++ {
		replaced := lg.WithRow(i, spread)
		total += math.Abs(float64(replaced.Det()))
	}
	return total, Approximate
}

// enumerateRect computes the exact cumulative footprint of the rectangular
// origin tile with the given extents.
func (c Class) enumerateRect(ext []int64) int64 {
	pts := rectPoints(ext)
	return ExactClassFootprint(c, pts)
}

// enumerateRectSingle computes the exact footprint of the first reference
// alone.
func (c Class) enumerateRectSingle(ext []int64) int64 {
	pts := rectPoints(ext)
	single := Class{Array: c.Array, G: c.G, Refs: c.Refs[:1], Reduced: c.Reduced}
	return ExactClassFootprint(single, pts)
}

func (c Class) enumerateTile(t tile.Tile) int64 {
	return ExactClassFootprint(c, tile.OriginPoints(t))
}

func rectPoints(ext []int64) [][]int64 {
	hi := make([]int64, len(ext))
	for k, e := range ext {
		if e <= 0 {
			panic(fmt.Sprintf("footprint: non-positive extent %d", e))
		}
		hi[k] = e - 1
	}
	var pts [][]int64
	(tile.Bounds{Lo: make([]int64, len(ext)), Hi: hi}).ForEach(func(p []int64) bool {
		pts = append(pts, p)
		return true
	})
	return pts
}

// SingleFootprintVolume returns |det LG'| for one reference (Equation 2) —
// the leading term of the footprint size — or ok=false when the reduced G
// is not square.
func (c Class) SingleFootprintVolume(t tile.Tile) (int64, bool) {
	gr := c.Reduced.G
	if gr.Rows() != gr.Cols() {
		return 0, false
	}
	d := t.L.Mul(gr).Det()
	if d < 0 {
		d = -d
	}
	return d, true
}

// FootprintInvariant reports whether the class's footprint size is
// independent of the tile shape given fixed tile volume — true when the
// class has a single reference and its reduced G is square nonsingular
// (|det LG'| = |det L|·|det G'|, Example 8's "A need not figure in the
// optimization"). Such classes are excluded from shape optimization.
func (c Class) FootprintInvariant() bool {
	gr := c.Reduced.G
	return len(c.Refs) == 1 && gr.Rows() == gr.Cols() && gr.IsNonsingular()
}

// RectTotalFootprint sums RectFootprint over all classes of the analysis;
// the exactness is the weakest among the classes.
func (a *Analysis) RectTotalFootprint(ext []int64) (float64, Exactness) {
	total := 0.0
	worst := Exact
	for _, c := range a.Classes {
		v, ex := c.RectFootprint(ext)
		total += v
		if ex > worst {
			worst = ex
		}
	}
	return total, worst
}

// RectTotalTraffic sums RectTraffic over all classes.
func (a *Analysis) RectTotalTraffic(ext []int64) (float64, Exactness) {
	total := 0.0
	worst := Exact
	for _, c := range a.Classes {
		v, ex := c.RectTraffic(ext)
		total += v
		if ex > worst {
			worst = ex
		}
	}
	return total, worst
}

// RectTotalFootprintLinearized sums the paper's Theorem 4 expression over
// all classes.
func (a *Analysis) RectTotalFootprintLinearized(ext []int64) (float64, Exactness) {
	total := 0.0
	worst := Exact
	for _, c := range a.Classes {
		v, ex := c.RectFootprintLinearized(ext)
		total += v
		if ex > worst {
			worst = ex
		}
	}
	return total, worst
}

// RectTotalTrafficLinearized sums the paper's traffic terms over all
// classes — the objective whose Lagrange conditions give the paper's
// closed-form aspect ratios.
func (a *Analysis) RectTotalTrafficLinearized(ext []int64) (float64, Exactness) {
	total := 0.0
	worst := Exact
	for _, c := range a.Classes {
		v, ex := c.RectTrafficLinearized(ext)
		total += v
		if ex > worst {
			worst = ex
		}
	}
	return total, worst
}

// TileTotalFootprint sums TileFootprint over all classes.
func (a *Analysis) TileTotalFootprint(t tile.Tile) (float64, Exactness) {
	total := 0.0
	worst := Exact
	for _, c := range a.Classes {
		v, ex := c.TileFootprint(t)
		total += v
		if ex > worst {
			worst = ex
		}
	}
	return total, worst
}

// TileTotalTraffic sums the Theorem 2 spread terms over all classes: the
// cumulative footprint minus the volume term |det LG'| per class.
func (a *Analysis) TileTotalTraffic(t tile.Tile) (float64, Exactness) {
	total := 0.0
	worst := Exact
	for _, c := range a.Classes {
		fp, ex := c.TileFootprint(t)
		if vol, ok := c.SingleFootprintVolume(t); ok && ex != Enumerated {
			total += fp - float64(vol)
		} else {
			single := Class{Array: c.Array, G: c.G, Refs: c.Refs[:1], Reduced: c.Reduced}
			total += fp - float64(single.enumerateTile(t))
			ex = Enumerated
		}
		if ex > worst {
			worst = ex
		}
	}
	return total, worst
}
