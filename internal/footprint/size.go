package footprint

import (
	"fmt"
	"math"
	"sync/atomic"

	"looppart/internal/intmat"
	"looppart/internal/lattice"
	"looppart/internal/tile"
)

// DefaultEnumerationBudget is the default cap on the number of iteration
// points the exact-enumeration fallbacks will stream per footprint query.
// Enumeration walks every point of a tile; without a cap a single
// degenerate candidate (huge extents, no closed form) stalls a search or
// a server request indefinitely. Above the budget the model fallback
// stands in (see rectEnumOrModel / tileEnumOrModel).
const DefaultEnumerationBudget = 1 << 20

var enumBudget atomic.Int64

func init() { enumBudget.Store(DefaultEnumerationBudget) }

// EnumerationBudget returns the current iteration-point budget.
func EnumerationBudget() int64 { return enumBudget.Load() }

// SetEnumerationBudget sets the iteration-point budget for exact
// enumeration fallbacks and returns the previous value. n ≤ 0 removes the
// cap. Safe for concurrent use (searches evaluate candidates on a worker
// pool).
func SetEnumerationBudget(n int64) (prev int64) {
	if n <= 0 {
		n = math.MaxInt64
	}
	return enumBudget.Swap(n)
}

// Exactness qualifies a size prediction.
type Exactness int

const (
	// Exact: the closed form counts lattice points exactly (Theorem 4
	// with an integral spread decomposition).
	Exact Exactness = iota
	// Approximate: the determinant/volume model of Theorem 2, or a
	// rational spread decomposition — correct to lower-order boundary
	// terms (the paper's ≈).
	Approximate
	// Enumerated: no closed form applied; the value came from exact
	// enumeration.
	Enumerated
)

func (e Exactness) String() string {
	switch e {
	case Exact:
		return "exact"
	case Approximate:
		return "approximate"
	default:
		return "enumerated"
	}
}

// SpreadCoeffs solves â' = u·G' for the lattice coordinates of the class
// spread in terms of the reduced reference matrix rows (Theorem 4). The
// returned coefficients are absolute values. ok reports whether G' is
// square and nonsingular; integral reports whether the solution is
// integral (when it is, Theorem 4's count is exact).
func (c Class) SpreadCoeffs() (u []float64, integral bool, ok bool) {
	return c.spreadCoeffs(c.Spread())
}

// CumulativeSpreadCoeffs is SpreadCoeffs with the data-partitioning spread
// a⁺ in place of â (footnote 2).
func (c Class) CumulativeSpreadCoeffs() (u []float64, integral bool, ok bool) {
	return c.spreadCoeffs(c.CumulativeSpread())
}

// solveLeftFloat solves target = u·g over the rationals and returns the
// coefficient magnitudes as floats.
func solveLeftFloat(g intmat.Mat, target []int64) ([]float64, bool) {
	sol, ok := intmat.SolveLeftInt(g, target)
	if !ok {
		return nil, false
	}
	out := make([]float64, len(sol))
	for i, s := range sol {
		out[i] = math.Abs(s.Float())
	}
	return out, true
}

func (c Class) spreadCoeffs(spread []int64) ([]float64, bool, bool) {
	gr := c.Reduced.G
	if gr.Rows() != gr.Cols() || !gr.IsNonsingular() {
		return nil, false, false
	}
	target := c.Reduced.Project(spread)
	sol, solOK := intmat.SolveLeftInt(gr, target)
	if !solOK {
		return nil, false, false
	}
	u := make([]float64, len(sol))
	integral := true
	for i, s := range sol {
		if !s.IsInt() {
			integral = false
		}
		u[i] = math.Abs(s.Float())
	}
	return u, integral, true
}

// PairCoeffs solves (a₂ − a₁)' = u·G' for a two-reference class: the
// lattice coordinates of the actual translation between the two
// footprints (Proposition 1). Unlike the spread â — which takes
// per-component max−min and so loses relative signs — this is the exact
// translation vector, and Lemma 3 counts the union exactly from it.
func (c Class) PairCoeffs() (u []float64, integral bool, ok bool) {
	if len(c.Refs) != 2 {
		return nil, false, false
	}
	diff := make([]int64, len(c.Refs[0].A))
	for k := range diff {
		diff[k] = c.Refs[1].A[k] - c.Refs[0].A[k]
	}
	return c.spreadCoeffs(diff)
}

// RectFootprint predicts the cumulative footprint size of a rectangular
// tile with the given per-dimension extents (number of iterations per
// dimension; the paper's λ+1). It uses the sharpest model available:
//
//   - one reference, square nonsingular G': exactly Π extⱼ (the rows of
//     G' are independent, so the tile maps 1:1 into the data space);
//   - two references with an integral translation decomposition: Lemma 3's
//     exact union size 2·Π extⱼ − Π(extⱼ − |uⱼ|) — this is where the
//     paper's Example 2 numbers (104 and 140) come from;
//   - otherwise, with square nonsingular G': the linearized Theorem 4
//     form (see RectFootprintLinearized), the paper's ≈;
//   - otherwise exact enumeration.
func (c Class) RectFootprint(ext []int64) (float64, Exactness) {
	l := c.G.Rows()
	if len(ext) != l {
		panic(fmt.Sprintf("footprint: %d extents for %d-deep nest", len(ext), l))
	}
	gr := c.Reduced.G
	square := gr.Rows() == gr.Cols() && gr.IsNonsingular()
	if !square {
		return c.rectEnumOrModel(ext)
	}
	base := 1.0
	for _, e := range ext {
		base *= float64(e)
	}
	if len(c.Refs) == 1 {
		return base, Exact
	}
	if len(c.Refs) == 2 {
		if u, integral, ok := c.PairCoeffs(); ok && integral {
			bounds := make([]int64, len(ext))
			ui := make([]int64, len(u))
			for k := range ext {
				bounds[k] = ext[k] - 1
				ui[k] = int64(math.Round(u[k]))
			}
			return float64(lattice.UnionSizeModel(bounds, ui)), Exact
		}
	}
	v, ex := c.RectFootprintLinearized(ext)
	return v, ex
}

// RectFootprintLinearized is the paper's Theorem 4 expression:
//
//	Π extⱼ + Σᵢ |uᵢ|·Π_{j≠i} extⱼ
//
// with â = Σ uᵢ·gᵢ' solved over the rationals. This is the form the
// optimizer's closed-form aspect ratios come from (Examples 8–10). It is
// approximate: it drops Lemma 3's cross terms and relies on the spread
// heuristic for classes of three or more references.
func (c Class) RectFootprintLinearized(ext []int64) (float64, Exactness) {
	u, _, ok := c.SpreadCoeffs()
	if !ok {
		return c.rectEnumOrModel(ext)
	}
	base := 1.0
	for _, e := range ext {
		base *= float64(e)
	}
	total := base
	for i, ui := range u {
		term := ui
		for j, e := range ext {
			if j == i {
				continue
			}
			term *= float64(e)
		}
		total += term
	}
	return total, Approximate
}

// RectTraffic predicts the per-tile communication volume of a rectangular
// tile: the cumulative footprint minus the single-reference footprint
// (the Σᵢ |uᵢ|·Π_{j≠i} extⱼ terms). Under an outer sequential loop this is
// the steady-state coherence traffic per epoch (Figure 9 discussion); the
// volume term drops because it is fixed by load balance.
func (c Class) RectTraffic(ext []int64) (float64, Exactness) {
	fp, ex := c.RectFootprint(ext)
	if ex == Enumerated {
		// Subtract the enumerated single-reference footprint.
		single := c.enumerateRectSingle(ext)
		return fp - float64(single), Enumerated
	}
	base := 1.0
	for _, e := range ext {
		base *= float64(e)
	}
	return fp - base, ex
}

// RectTrafficLinearized is the paper's Theorem 4 traffic expression: the
// Σᵢ |uᵢ|·Π_{j≠i} extⱼ terms alone (Example 8's 2LjLk + 3LiLk + 4LiLj).
func (c Class) RectTrafficLinearized(ext []int64) (float64, Exactness) {
	fp, ex := c.RectFootprintLinearized(ext)
	if ex == Enumerated {
		single := c.enumerateRectSingle(ext)
		return fp - float64(single), Enumerated
	}
	base := 1.0
	for _, e := range ext {
		base *= float64(e)
	}
	return fp - base, ex
}

// TileFootprint predicts the cumulative footprint for a general
// hyperparallelepiped tile via Theorem 2:
//
//	|det LG'| + Σᵢ |det (LG')_{i→â'}|
//
// where G' is the reduced reference matrix and â' the projected spread.
// The model requires G' square; otherwise the footprint is enumerated.
// For rectangular tiles RectFootprint gives sharper (λ+1) counts.
func (c Class) TileFootprint(t tile.Tile) (float64, Exactness) {
	gr := c.Reduced.G
	if gr.Rows() != gr.Cols() || !gr.IsNonsingular() {
		return c.tileEnumOrModel(t)
	}
	spread := c.Reduced.Project(c.Spread())
	return tileModelFootprint(t, gr, spread)
}

// tileModelFootprint evaluates Theorem 2's |det LG'| + Σᵢ |det (LG')_{i→â'}|
// with overflow-checked arithmetic. A candidate whose determinants are not
// representable scores +Inf — strictly worse than every representable
// candidate — so a search can never rank tiles by a wrapped determinant.
// Both Class.TileFootprint and the Evaluator mirror call this, keeping the
// two paths bit-identical.
func tileModelFootprint(t tile.Tile, gr intmat.Mat, spread []int64) (float64, Exactness) {
	lg, err := t.L.MulChecked(gr)
	if err != nil {
		return math.Inf(1), Approximate
	}
	d, err := lg.DetChecked()
	if err != nil {
		return math.Inf(1), Approximate
	}
	total := math.Abs(float64(d))
	for i := 0; i < lg.Rows(); i++ {
		rd, err := lg.WithRow(i, spread).DetChecked()
		if err != nil {
			return math.Inf(1), Approximate
		}
		total += math.Abs(float64(rd))
	}
	return total, Approximate
}

// rectEnumOrModel is the fallback for rectangular tiles with no applicable
// closed form. Tiles within the enumeration budget stream their points
// through the exact Definition 3 count; larger tiles use the refs·volume
// upper bound (each iteration point touches at most len(Refs) elements),
// reported as Approximate so callers know no exact count backs it.
func (c Class) rectEnumOrModel(ext []int64) (float64, Exactness) {
	if v := rectVolume(ext); v > enumBudget.Load() {
		return float64(len(c.Refs)) * float64(v), Approximate
	}
	return float64(c.enumerateRect(ext)), Enumerated
}

// tileEnumOrModel is the fallback for hyperparallelepiped tiles.
// enumerateTile scans the bounding box of the tile's vertices, so the
// budget gates on the box volume; above it the refs·|det L| upper bound
// stands in, and a tile whose volume is not even representable scores +Inf.
func (c Class) tileEnumOrModel(t tile.Tile) (float64, Exactness) {
	box := int64(1)
	d := t.Dim()
	for j := 0; j < d; j++ {
		var lo, hi int64
		for i := 0; i < d; i++ {
			if v := t.L.At(i, j); v < 0 {
				lo = intmat.SatAdd(lo, v)
			} else {
				hi = intmat.SatAdd(hi, v)
			}
		}
		span := intmat.SatAdd(intmat.SatAdd(hi, intmat.SatMul(lo, -1)), 1)
		box = intmat.SatMul(box, span)
	}
	if box <= enumBudget.Load() {
		return float64(c.enumerateTile(t)), Enumerated
	}
	vol, err := t.L.DetChecked()
	if err != nil {
		return math.Inf(1), Approximate
	}
	return float64(len(c.Refs)) * math.Abs(float64(vol)), Approximate
}

// rectVolume returns Π extⱼ, saturating at MaxInt64.
func rectVolume(ext []int64) int64 {
	v := int64(1)
	for _, e := range ext {
		v = intmat.SatMul(v, e)
	}
	return v
}

// enumerateRect computes the exact cumulative footprint of the rectangular
// origin tile with the given extents, streaming the points.
func (c Class) enumerateRect(ext []int64) int64 {
	return ExactClassFootprintFunc(c, rectForEach(ext))
}

// enumerateRectSingle computes the exact footprint of the first reference
// alone.
func (c Class) enumerateRectSingle(ext []int64) int64 {
	single := Class{Array: c.Array, G: c.G, Refs: c.Refs[:1], Reduced: c.Reduced}
	return ExactClassFootprintFunc(single, rectForEach(ext))
}

func (c Class) enumerateTile(t tile.Tile) int64 {
	return ExactClassFootprint(c, tile.OriginPoints(t))
}

// rectForEach streams the points of the origin-anchored rectangle with the
// given extents, without materializing the cross-product.
func rectForEach(ext []int64) func(yield func(p []int64) bool) {
	hi := make([]int64, len(ext))
	for k, e := range ext {
		if e <= 0 {
			panic(fmt.Sprintf("footprint: non-positive extent %d", e))
		}
		hi[k] = e - 1
	}
	return tile.Bounds{Lo: make([]int64, len(ext)), Hi: hi}.ForEach
}

// rectPoints materializes the full point list of the origin rectangle.
// Retained for tests and experiments that need the points themselves;
// footprint queries stream via rectForEach instead.
func rectPoints(ext []int64) [][]int64 {
	var pts [][]int64
	rectForEach(ext)(func(p []int64) bool {
		pts = append(pts, p)
		return true
	})
	return pts
}

// SingleFootprintVolume returns |det LG'| for one reference (Equation 2) —
// the leading term of the footprint size — or ok=false when the reduced G
// is not square or the determinant is not representable in int64.
func (c Class) SingleFootprintVolume(t tile.Tile) (int64, bool) {
	gr := c.Reduced.G
	if gr.Rows() != gr.Cols() {
		return 0, false
	}
	lg, err := t.L.MulChecked(gr)
	if err != nil {
		return 0, false
	}
	d, err := lg.DetChecked()
	if err != nil || d == math.MinInt64 {
		return 0, false
	}
	if d < 0 {
		d = -d
	}
	return d, true
}

// FootprintInvariant reports whether the class's footprint size is
// independent of the tile shape given fixed tile volume — true when the
// class has a single reference and its reduced G is square nonsingular
// (|det LG'| = |det L|·|det G'|, Example 8's "A need not figure in the
// optimization"). Such classes are excluded from shape optimization.
func (c Class) FootprintInvariant() bool {
	gr := c.Reduced.G
	return len(c.Refs) == 1 && gr.Rows() == gr.Cols() && gr.IsNonsingular()
}

// RectTotalFootprint sums RectFootprint over all classes of the analysis;
// the exactness is the weakest among the classes.
func (a *Analysis) RectTotalFootprint(ext []int64) (float64, Exactness) {
	total := 0.0
	worst := Exact
	for _, c := range a.Classes {
		v, ex := c.RectFootprint(ext)
		total += v
		if ex > worst {
			worst = ex
		}
	}
	return total, worst
}

// RectTotalTraffic sums RectTraffic over all classes.
func (a *Analysis) RectTotalTraffic(ext []int64) (float64, Exactness) {
	total := 0.0
	worst := Exact
	for _, c := range a.Classes {
		v, ex := c.RectTraffic(ext)
		total += v
		if ex > worst {
			worst = ex
		}
	}
	return total, worst
}

// RectTotalFootprintLinearized sums the paper's Theorem 4 expression over
// all classes.
func (a *Analysis) RectTotalFootprintLinearized(ext []int64) (float64, Exactness) {
	total := 0.0
	worst := Exact
	for _, c := range a.Classes {
		v, ex := c.RectFootprintLinearized(ext)
		total += v
		if ex > worst {
			worst = ex
		}
	}
	return total, worst
}

// RectTotalTrafficLinearized sums the paper's traffic terms over all
// classes — the objective whose Lagrange conditions give the paper's
// closed-form aspect ratios.
func (a *Analysis) RectTotalTrafficLinearized(ext []int64) (float64, Exactness) {
	total := 0.0
	worst := Exact
	for _, c := range a.Classes {
		v, ex := c.RectTrafficLinearized(ext)
		total += v
		if ex > worst {
			worst = ex
		}
	}
	return total, worst
}

// TileTotalFootprint sums TileFootprint over all classes.
func (a *Analysis) TileTotalFootprint(t tile.Tile) (float64, Exactness) {
	total := 0.0
	worst := Exact
	for _, c := range a.Classes {
		v, ex := c.TileFootprint(t)
		total += v
		if ex > worst {
			worst = ex
		}
	}
	return total, worst
}

// TileTotalTraffic sums the Theorem 2 spread terms over all classes: the
// cumulative footprint minus the volume term |det LG'| per class.
func (a *Analysis) TileTotalTraffic(t tile.Tile) (float64, Exactness) {
	total := 0.0
	worst := Exact
	for _, c := range a.Classes {
		fp, ex := c.TileFootprint(t)
		if math.IsInf(fp, 1) {
			// Unrepresentable determinants: the traffic is as unrankable
			// as the footprint; keep the +Inf sentinel.
			total += fp
		} else if vol, ok := c.SingleFootprintVolume(t); ok && ex != Enumerated {
			total += fp - float64(vol)
		} else {
			single := Class{Array: c.Array, G: c.G, Refs: c.Refs[:1], Reduced: c.Reduced}
			sfp, sex := single.tileEnumOrModel(t)
			total += fp - sfp
			if sex > ex {
				ex = sex
			}
		}
		if ex > worst {
			worst = ex
		}
	}
	return total, worst
}
