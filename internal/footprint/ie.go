package footprint

import (
	"math"
)

// Inclusion–exclusion refinement of the cumulative footprint for classes
// with three or more references. The paper's Theorem 4 replaces the union
// of k translated footprints with the two-extreme-corner spread model; for
// reference sets that spread in several directions this can drift. Lemma 3
// gives every PAIRWISE intersection exactly:
//
//	|F_r ∩ F_s| = Π_j max(0, extⱼ − |u^{rs}_j|)
//
// with (a_s − a_r)' = u^{rs}·G'. Truncating inclusion–exclusion at the
// pairwise terms brackets the union:
//
//	k·Πext − Σ_{r<s}|F_r ∩ F_s|  ≤  |∪F|  ≤  k·Πext − max chain overlap
//
// The lower bound (Bonferroni) is tight when at most two footprints meet
// anywhere; the upper bound subtracts only a spanning set of overlaps
// (consecutive references along the dominant direction), which never
// over-subtracts.

// RectFootprintBounds returns pairwise inclusion–exclusion bounds on the
// cumulative footprint of a rectangular tile. ok is false when the
// reduced G is not square nonsingular (no closed pairwise form).
func (c Class) RectFootprintBounds(ext []int64) (lower, upper float64, ok bool) {
	gr := c.Reduced.G
	if gr.Rows() != gr.Cols() || !gr.IsNonsingular() {
		return 0, 0, false
	}
	k := len(c.Refs)
	base := 1.0
	for _, e := range ext {
		base *= float64(e)
	}
	if k == 1 {
		return base, base, true
	}
	pairOverlap := func(r, s int) float64 {
		diff := make([]int64, len(c.Refs[r].A))
		for d := range diff {
			diff[d] = c.Refs[s].A[d] - c.Refs[r].A[d]
		}
		sol, solOK := solveReduced(c.Reduced, diff)
		if !solOK {
			return 0
		}
		ov := 1.0
		for j, e := range ext {
			rem := float64(e) - math.Abs(sol[j])
			if rem <= 0 {
				return 0
			}
			ov *= rem
		}
		return ov
	}

	sumAll := float64(k) * base

	// Lower bound: subtract every pairwise overlap (Bonferroni).
	lower = sumAll
	for r := 0; r < k; r++ {
		for s := r + 1; s < k; s++ {
			lower -= pairOverlap(r, s)
		}
	}
	if lower < base {
		lower = base // the union contains each footprint
	}

	// Upper bound: subtract a spanning chain of overlaps. Order the
	// references along their dominant lattice direction and subtract
	// consecutive overlaps only; a union never exceeds this since each
	// consecutive pair genuinely shares that much.
	order := c.chainOrder()
	upper = sumAll
	for i := 0; i+1 < len(order); i++ {
		upper -= pairOverlap(order[i], order[i+1])
	}
	if upper < lower {
		upper = lower
	}
	return lower, upper, true
}

// solveReduced solves diff' = u·G' over the rationals and returns the
// coefficient magnitudes.
func solveReduced(red Reduction, diff []int64) ([]float64, bool) {
	target := red.Project(diff)
	sol, ok := solveLeftFloat(red.G, target)
	return sol, ok
}

// chainOrder sorts reference indices by the projection of their offsets
// onto the dominant spread direction, giving a 1-D chain whose consecutive
// overlaps are large.
func (c Class) chainOrder() []int {
	spread := c.Spread()
	// Dominant direction: the spread vector itself (data space).
	idx := make([]int, len(c.Refs))
	key := make([]float64, len(c.Refs))
	for i := range c.Refs {
		dot := 0.0
		for d, s := range spread {
			dot += float64(s) * float64(c.Refs[i].A[d])
		}
		idx[i] = i
		key[i] = dot
	}
	// Insertion sort (k is tiny).
	for i := 1; i < len(idx); i++ {
		for j := i; j > 0 && key[idx[j]] < key[idx[j-1]]; j-- {
			idx[j], idx[j-1] = idx[j-1], idx[j]
		}
	}
	return idx
}

// RectFootprintRefined returns the midpoint of the inclusion–exclusion
// bounds — a sharper point estimate than the linearized Theorem 4 form
// for multi-reference classes — falling back to RectFootprint when no
// closed pairwise form exists.
func (c Class) RectFootprintRefined(ext []int64) (float64, Exactness) {
	lo, hi, ok := c.RectFootprintBounds(ext)
	if !ok {
		return c.RectFootprint(ext)
	}
	if lo == hi {
		return lo, Exact
	}
	return (lo + hi) / 2, Approximate
}
