package footprint

import (
	"math"
	"math/big"

	"looppart/internal/intmat"
	"looppart/internal/lattice"
	"looppart/internal/tile"
)

// Evaluator scores candidate tiles against an Analysis with the per-class
// shape-independent terms hoisted out of the per-candidate loop. The
// searches in internal/partition evaluate hundreds to thousands of
// candidate shapes against the same Analysis; everything that does not
// depend on the tile — the class invariance test, the |det G'| volume
// factor, the spread coefficients uᵢ (a rational linear solve per class),
// and the projected spread â' — is computed once here instead of once per
// candidate.
//
// The evaluator is a pure accelerator: RectTotalFootprint and
// TileTotalFootprint return bit-identical values to the Analysis methods
// of the same name (same class order, same arithmetic, same exactness
// fold). It is safe for concurrent use: all state is written during
// construction and only read afterwards.
type Evaluator struct {
	a       *Analysis
	classes []classEval

	// sumDetGr is Σ |det G'| over square classes — the coefficient of the
	// admissible volume lower bound for hyperparallelepiped tiles.
	sumDetGr float64
	// numSquare counts classes with square nonsingular reduced G — the
	// coefficient of the rectangular volume lower bound.
	numSquare int
}

// classEval caches one class's shape-independent terms.
type classEval struct {
	c      *Class
	square bool // reduced G square and nonsingular

	// u are the spread coefficients |uᵢ| of Theorem 4 (â' = u·G'), valid
	// when uOK; solving them per candidate is the dominant avoidable cost
	// of the rectangular search.
	u   []float64
	uOK bool

	// pairU is the integral translation decomposition of a two-reference
	// class (Proposition 1 / Lemma 3), rounded to int64 as RectFootprint
	// does; nil when the class has ≠ 2 refs or the solution is not
	// integral.
	pairU []int64

	// gr is the reduced reference matrix, projSpread the projected spread
	// â' (Theorem 2's replacement row), detGr = |det G'|.
	gr         intmat.Mat
	projSpread []int64
	detGr      float64
}

// NewEvaluator analyzes a once and returns an evaluator over it.
func NewEvaluator(a *Analysis) *Evaluator {
	e := &Evaluator{a: a, classes: make([]classEval, len(a.Classes))}
	for i := range a.Classes {
		c := &a.Classes[i]
		ce := classEval{c: c, gr: c.Reduced.G}
		ce.square = ce.gr.Rows() == ce.gr.Cols() && ce.gr.IsNonsingular()
		if ce.square {
			ce.projSpread = c.Reduced.Project(c.Spread())
			if d, err := ce.gr.DetChecked(); err == nil {
				ce.detGr = math.Abs(float64(d))
			} else {
				// det G' beyond int64: exact magnitude via big.Int, rounded
				// to float64 — only the lower-bound coefficient needs it.
				f, _ := new(big.Float).SetInt(ce.gr.DetBig()).Float64()
				ce.detGr = math.Abs(f)
			}
			e.sumDetGr += ce.detGr
			e.numSquare++
			ce.u, _, ce.uOK = c.SpreadCoeffs()
			if len(c.Refs) == 2 {
				if u, integral, ok := c.PairCoeffs(); ok && integral {
					ce.pairU = make([]int64, len(u))
					for k := range u {
						ce.pairU[k] = int64(math.Round(u[k]))
					}
				}
			}
		}
		e.classes[i] = ce
	}
	return e
}

// Analysis returns the underlying analysis.
func (e *Evaluator) Analysis() *Analysis { return e.a }

// RectTotalFootprint is Analysis.RectTotalFootprint with the cached
// per-class terms: identical values, no per-candidate rational solves.
func (e *Evaluator) RectTotalFootprint(ext []int64) (float64, Exactness) {
	return e.RectTotalFootprintScratch(ext, nil)
}

// RectTotalFootprintScratch is RectTotalFootprint with a caller-provided
// scratch buffer (len ≥ len(ext)) absorbing the only per-call allocation
// of the closed-form class paths — the Lemma 3 pair-union bounds. The
// values are bit-identical to RectTotalFootprint; a nil or short scratch
// falls back to allocating. The scratch is overwritten per class, so one
// buffer serves a whole sequential candidate sweep.
func (e *Evaluator) RectTotalFootprintScratch(ext, scratch []int64) (float64, Exactness) {
	total := 0.0
	worst := Exact
	for i := range e.classes {
		v, ex := e.classes[i].rectFootprint(ext, scratch)
		total += v
		if ex > worst {
			worst = ex
		}
	}
	return total, worst
}

// RectClosedForm reports whether every class of the analysis scores
// through a closed-form rectangular expression — square nonsingular
// reduced G' and a single-reference (volume), integral-pair (Lemma 3), or
// linearized-coefficient (Theorem 4) form — i.e. RectTotalFootprint never
// falls back to per-candidate enumeration. This is the structural half of
// the closed-form fast-path domain in internal/partition.
func (e *Evaluator) RectClosedForm() bool {
	for i := range e.classes {
		ce := &e.classes[i]
		if !ce.square {
			return false
		}
		if len(ce.c.Refs) != 1 && ce.pairU == nil && !ce.uOK {
			return false
		}
	}
	return true
}

// SpreadCoeff returns the cached Theorem 4 spread coefficient |u_k| of
// class i, and whether the coefficients are valid for that class.
func (e *Evaluator) SpreadCoeff(i, k int) (float64, bool) {
	ce := &e.classes[i]
	if !ce.uOK || k >= len(ce.u) {
		return 0, false
	}
	return ce.u[k], true
}

// rectFootprint mirrors Class.RectFootprint exactly, reading the cached
// decomposition instead of re-solving it. scratch, when long enough,
// holds the pair-union bounds; nil allocates as before.
func (ce *classEval) rectFootprint(ext, scratch []int64) (float64, Exactness) {
	if !ce.square {
		return ce.c.rectEnumOrModel(ext)
	}
	base := 1.0
	for _, x := range ext {
		base *= float64(x)
	}
	if len(ce.c.Refs) == 1 {
		return base, Exact
	}
	if ce.pairU != nil {
		bounds := scratch
		if len(bounds) < len(ext) {
			bounds = make([]int64, len(ext))
		}
		bounds = bounds[:len(ext)]
		for k := range ext {
			bounds[k] = ext[k] - 1
		}
		return float64(lattice.UnionSizeModel(bounds, ce.pairU)), Exact
	}
	// Linearized Theorem 4 (Class.RectFootprintLinearized) on the cached
	// coefficients.
	if !ce.uOK {
		return ce.c.rectEnumOrModel(ext)
	}
	total := base
	for i, ui := range ce.u {
		term := ui
		for j, x := range ext {
			if j == i {
				continue
			}
			term *= float64(x)
		}
		total += term
	}
	return total, Approximate
}

// TileTotalFootprint is Analysis.TileTotalFootprint with the projected
// spread and reduced G cached: identical values, only the shape-dependent
// determinants are computed per candidate.
func (e *Evaluator) TileTotalFootprint(t tile.Tile) (float64, Exactness) {
	total := 0.0
	worst := Exact
	for i := range e.classes {
		v, ex := e.classes[i].tileFootprint(t)
		total += v
		if ex > worst {
			worst = ex
		}
	}
	return total, worst
}

// tileFootprint mirrors Class.TileFootprint on the cached terms.
func (ce *classEval) tileFootprint(t tile.Tile) (float64, Exactness) {
	if !ce.square {
		return ce.c.tileEnumOrModel(t)
	}
	return tileModelFootprint(t, ce.gr, ce.projSpread)
}

// RectLowerBound returns an admissible lower bound on RectTotalFootprint:
// every class with square nonsingular reduced G' contributes at least the
// tile volume Π extⱼ (single reference: exactly the volume; a union of
// translates: at least one translate; the linearized form: volume plus
// nonnegative spread terms), and classes without a closed form contribute
// at least zero. The bound is monotone in the volume — the paper's
// Π(Lⱼⱼ+1) leading term — so a candidate whose volume term alone exceeds
// an incumbent's full footprint can be discarded before model evaluation.
func (e *Evaluator) RectLowerBound(ext []int64) float64 {
	vol := 1.0
	for _, x := range ext {
		vol *= float64(x)
	}
	return float64(e.numSquare) * vol
}

// TileLowerBound is the hyperparallelepiped analogue of RectLowerBound for
// a tile of |det L| = volume: each square class contributes at least
// |det LG'| = |det L|·|det G'| (the Theorem 2 spread terms are absolute
// values, hence nonnegative).
func (e *Evaluator) TileLowerBound(volume int64) float64 {
	return e.sumDetGr * float64(volume)
}
