package footprint

import (
	"math"
	"math/rand"
	"testing"

	"looppart/internal/intmat"
	"looppart/internal/layout"
	"looppart/internal/paperex"
	"looppart/internal/tile"
)

func TestExample2PaperNumbers(t *testing.T) {
	// The paper's headline numbers (§3.1): partition a (100×1 column
	// strips) has 104 misses per tile on the B class; partition b
	// (10×10 blocks) has 140.
	a := analyze(t, paperex.Example2, nil)
	b := classOf(t, a, "B", 2)

	fpA, exA := b.RectFootprint([]int64{100, 1})
	if fpA != 104 || exA != Exact {
		t.Errorf("partition a: footprint = %v (%v), want 104 (exact)", fpA, exA)
	}
	fpB, exB := b.RectFootprint([]int64{10, 10})
	if fpB != 140 || exB != Exact {
		t.Errorf("partition b: footprint = %v (%v), want 140 (exact)", fpB, exB)
	}

	// Exact enumeration agrees.
	if got := b.enumerateRect([]int64{100, 1}); got != 104 {
		t.Errorf("enumerated partition a = %d", got)
	}
	if got := b.enumerateRect([]int64{10, 10}); got != 140 {
		t.Errorf("enumerated partition b = %d", got)
	}
}

func TestExample2SpreadCoeffs(t *testing.T) {
	a := analyze(t, paperex.Example2, nil)
	b := classOf(t, a, "B", 2)
	u, integral, ok := b.SpreadCoeffs()
	if !ok || !integral {
		t.Fatalf("u=%v integral=%v ok=%v", u, integral, ok)
	}
	// â = (4,4) = 4·(1,1) + 0·(1,-1).
	if u[0] != 4 || u[1] != 0 {
		t.Fatalf("u = %v, want [4 0]", u)
	}
}

func TestExample6FootprintFormula(t *testing.T) {
	// Example 6: L = [[L1,L1],[L2,0]], G = [[1,0],[1,1]].
	// Footprint of B[i+j,j] is |det LG| = L1·L2 (Equation 2); the paper's
	// full count is L1L2 + L1 + L2 including boundary points.
	a := analyze(t, paperex.Example6, nil)
	b := classOf(t, a, "B", 2)
	L1, L2 := int64(6), int64(4)
	tl := tile.Parallelepiped(intmat.FromRows([][]int64{{L1, L1}, {L2, 0}}))
	single := Class{Array: b.Array, G: b.G, Refs: b.Refs[:1], Reduced: b.Reduced}
	vol, ok := single.SingleFootprintVolume(tl)
	if !ok || vol != L1*L2 {
		t.Fatalf("|det LG| = %d, want %d", vol, L1*L2)
	}
	// Exact count of the half-open tile's footprint: the closed-tile
	// count of the paper is L1L2+L1+L2+1 points; our half-open tiles
	// contain exactly |det L| iterations and the unimodular G maps them
	// 1:1, so the single-reference footprint is exactly L1·L2.
	got := ExactClassFootprint(single, tile.OriginPoints(tl))
	if got != L1*L2 {
		t.Fatalf("enumerated single footprint = %d, want %d", got, L1*L2)
	}
}

func TestExample6CumulativeTheorem2(t *testing.T) {
	// Cumulative footprint over both B references with â = (1,2):
	// |det LG| + |det LG(1→â)| + |det LG(2→â)|.
	a := analyze(t, paperex.Example6, nil)
	b := classOf(t, a, "B", 2)
	s := b.Spread()
	if s[0] != 1 || s[1] != 2 {
		t.Fatalf("spread = %v", s)
	}
	L := intmat.FromRows([][]int64{{5, 2}, {3, 7}}) // L11 L12; L21 L22
	tl := tile.Parallelepiped(L)
	lg := L.Mul(b.G)
	want := math.Abs(float64(lg.Det())) +
		math.Abs(float64(lg.WithRow(0, []int64{1, 2}).Det())) +
		math.Abs(float64(lg.WithRow(1, []int64{1, 2}).Det()))
	got, ex := b.TileFootprint(tl)
	if got != want || ex != Approximate {
		t.Fatalf("TileFootprint = %v (%v), want %v", got, ex, want)
	}
	// The model approximates the enumerated truth within the boundary
	// terms (~L1+L2+spread cross terms).
	exact := float64(ExactClassFootprint(b, tile.OriginPoints(tl)))
	if math.Abs(got-exact) > 0.15*exact {
		t.Fatalf("model %v vs exact %v diverges", got, exact)
	}
}

func TestExample8CumulativeFootprint(t *testing.T) {
	// G = I, â = (2,3,4); footprint = LiLjLk + 2LjLk + 3LiLk + 4LiLj.
	a := analyze(t, paperex.Example8, map[string]int64{"N": 100})
	b := classOf(t, a, "B", 3)
	Li, Lj, Lk := int64(4), int64(6), int64(8)
	got, ex := b.RectFootprintLinearized([]int64{Li, Lj, Lk})
	want := float64(Li*Lj*Lk + 2*Lj*Lk + 3*Li*Lk + 4*Li*Lj)
	if got != want || ex != Approximate {
		t.Fatalf("footprint = %v (%v), want %v", got, ex, want)
	}
	// Traffic drops the volume term.
	tr, _ := b.RectTrafficLinearized([]int64{Li, Lj, Lk})
	if tr != float64(2*Lj*Lk+3*Li*Lk+4*Li*Lj) {
		t.Fatalf("traffic = %v", tr)
	}
}

func TestExample8ModelVsEnumerationExactness(t *testing.T) {
	// For G = I the Theorem 4 formula overcounts only by the cross terms
	// of Lemma 3 (the model is the linearized form). Verify the model is
	// within the Π|uᵢ| cross-term budget of the enumerated truth.
	a := analyze(t, paperex.Example8, map[string]int64{"N": 100})
	b := classOf(t, a, "B", 3)
	ext := []int64{5, 5, 5}
	model, _ := b.RectFootprintLinearized(ext)
	exact := float64(b.enumerateRect(ext))
	if model < exact {
		t.Fatalf("model %v below exact %v", model, exact)
	}
	// Cross-term budget: the linearization error of Lemma 3 is bounded
	// by Π(ûᵢ+1) for the class spread û = (2,3,4).
	if model-exact > 3*4*5 {
		t.Fatalf("model %v vs exact %v: error too large", model, exact)
	}
}

func TestExample9TwoClasses(t *testing.T) {
	// Rectangular tiles: total footprint = 2·L11·L22 + 4·L11 + 6·L22
	// (B contributes L11L22 + 2L22 + 1·L11; C contributes L11L22 + ...).
	a := analyze(t, paperex.Example9, map[string]int64{"N": 100})
	b := classOf(t, a, "B", 2)
	c := classOf(t, a, "C", 2)

	// B: G = I, â = (2,1).
	ub, integral, ok := b.SpreadCoeffs()
	if !ok || !integral || ub[0] != 2 || ub[1] != 1 {
		t.Fatalf("B u = %v", ub)
	}
	// C: G = [[1,0],[1,1]], â = (1,3) = u·G → u = (-2, 3)?? Solve:
	// u1(1,0)+u2(1,1) = (u1+u2, u2) = (1,3) → u2=3, u1=-2.
	uc, integral, ok := c.SpreadCoeffs()
	if !ok || !integral || uc[0] != 2 || uc[1] != 3 {
		t.Fatalf("C u = %v (want |u| = [2 3])", uc)
	}

	L11, L22 := int64(12), int64(8)
	fb, _ := b.RectFootprintLinearized([]int64{L11, L22})
	fc, _ := c.RectFootprintLinearized([]int64{L11, L22})
	// B: L11L22 + 2L22 + 1L11; C: L11L22 + 2L22 + 3L11.
	wantB := float64(L11*L22 + 2*L22 + 1*L11)
	wantC := float64(L11*L22 + 2*L22 + 3*L11)
	if fb != wantB {
		t.Errorf("B footprint = %v, want %v", fb, wantB)
	}
	if fc != wantC {
		t.Errorf("C footprint = %v, want %v", fc, wantC)
	}
	// Sum of the â traffic terms: (2+2)L22 + (1+3)L11 = 4L22 + 4L11.
	// (The paper's inline total "4L11 + 6L22" counts the C-class terms in
	// raw data-space units; the Theorem 4 lattice form used here is the
	// sharper count. Both give the same optimization structure — the
	// closed-form ratio test lives in the partition package.)
	total, _ := a.RectTotalTrafficLinearized([]int64{L11, L22})
	if total != float64(4*L22+4*L11) {
		t.Errorf("total traffic = %v, want %v", total, float64(4*L22+4*L11))
	}
	// The exact (Lemma 3) traffic is sharper than the linearized form.
	exTotal, _ := a.RectTotalTraffic([]int64{L11, L22})
	if exTotal > total {
		t.Errorf("exact traffic %v exceeds linearized %v", exTotal, total)
	}
}

func TestExample10ClassFormulas(t *testing.T) {
	a := analyze(t, paperex.Example10, map[string]int64{"N": 100})
	b := classOf(t, a, "B", 2)
	// â = (4,2) = 3·(1,1) + 1·(1,-1) → u = (3,1).
	u, integral, ok := b.SpreadCoeffs()
	if !ok || !integral || u[0] != 3 || u[1] != 1 {
		t.Fatalf("B u = %v", u)
	}
	Li, Lj := int64(9), int64(5)
	fb, ex := b.RectFootprintLinearized([]int64{Li, Lj})
	// Π ext + u1·Lj + u2·Li = LiLj + 3Lj + 1Li (the paper's expression,
	// with the u-coefficient/extent pairing of Lemma 3).
	want := float64(Li*Lj + 3*Lj + 1*Li)
	if fb != want || ex != Approximate {
		t.Fatalf("B footprint = %v (%v), want %v", fb, ex, want)
	}
	// Exact Lemma 3 union: 2·45 − (9−3)(5−1) = 66 ≤ linearized 69.
	fbExact, exB := b.RectFootprint([]int64{Li, Lj})
	if fbExact != 66 || exB != Exact {
		t.Fatalf("B exact footprint = %v (%v), want 66", fbExact, exB)
	}
	// C pair: u = (0,1) → footprint = LiLj + 0·Lj + 1·Li; with a zero
	// u-component the linearized and exact forms coincide.
	c2 := classOf(t, a, "C", 2)
	uc, integral, ok := c2.SpreadCoeffs()
	if !ok || !integral || uc[0] != 0 || uc[1] != 1 {
		t.Fatalf("C u = %v", uc)
	}
	fc, _ := c2.RectFootprint([]int64{Li, Lj})
	if fc != float64(Li*Lj+Li) {
		t.Fatalf("C footprint = %v, want %v", fc, float64(Li*Lj+Li))
	}
}

func TestExample10ModelMatchesEnumeration(t *testing.T) {
	// The non-unimodular B class (det −2): Theorem 4's lattice count is
	// exact — check against enumeration across tile shapes.
	a := analyze(t, paperex.Example10, map[string]int64{"N": 100})
	b := classOf(t, a, "B", 2)
	for _, ext := range [][]int64{{4, 4}, {6, 2}, {2, 6}, {12, 3}, {5, 5}} {
		model, ex := b.RectFootprint(ext)
		exact := float64(b.enumerateRect(ext))
		if ex != Exact {
			t.Fatalf("ext %v: exactness %v", ext, ex)
		}
		if model != exact {
			t.Fatalf("ext %v: model %v != exact %v", ext, model, exact)
		}
	}
}

func TestRectFootprintEnumeratedFallback(t *testing.T) {
	// A[i+j]: reduced G is 2×1, not square → enumeration fallback.
	a := analyze(t, `
doall (i, 1, 32)
  doall (j, 1, 32)
    B[i,j] = A[i+j]
  enddoall
enddoall`, nil)
	c := classOf(t, a, "A", 1)
	got, ex := c.RectFootprint([]int64{4, 6})
	if ex != Enumerated {
		t.Fatalf("exactness = %v", ex)
	}
	// i+j over [0,3]×[0,5] takes values 0..8 → 9 distinct.
	if got != 9 {
		t.Fatalf("footprint = %v, want 9", got)
	}
	tr, _ := c.RectTraffic([]int64{4, 6})
	// Single ref: traffic = footprint − single footprint = 0.
	if tr != 0 {
		t.Fatalf("traffic = %v", tr)
	}
}

func TestSpreadCoeffsNonIntegral(t *testing.T) {
	// Construct a class whose â is off-lattice: refs A[2i] and A[2i+2]
	// have â = 2 = 1·(2) (integral); use 3 refs with spread 3 on G=[[2]]:
	// A[2i], A[2i+2], and force â = 2? Simpler: A[2i] and A[2i+4] give
	// â = 4 → u = 2 integral. Use G = [[2,0],[0,2]] with offsets (0,0)
	// and (2,2): â = (2,2) → u = (1,1) integral.
	// Off-lattice â needs >2 refs: offsets (0,0), (2,0), (0,2) on
	// G = [[1,1],[1,-1]]: pairwise diffs (2,0),(0,2),(−2,2) all even-sum
	// → on lattice. â = (2,2) → u: u1+u2=2, u1−u2=2 → u=(2,0) integral.
	// Try offsets (0,0),(1,1),(3,1): diffs (1,1),(2,0),(3,1)... (1,1) on
	// lattice (u=(1,0)); (2,0) u=(1,1); (3,1) u=(2,1). â=(3,1): u1+u2=3,
	// u1−u2=1 → u=(2,1) integral. For this G any lattice vector has even
	// component sum, and â built from member maxes keeps that parity —
	// so integral always holds here. Use a G where it can fail:
	// G=[[2,1],[0,3]]: offsets (0,0),(2,1),(0,3): diffs on lattice.
	// â=(2,3): u·G = (2u1, u1+3u2) = (2,3) → u1=1, u2=2/3: non-integral.
	g := intmat.FromRows([][]int64{{2, 1}, {0, 3}})
	c := newClass("A", g, []Ref{
		{Array: "A", G: g, A: []int64{0, 0}},
		{Array: "A", G: g, A: []int64{2, 1}},
		{Array: "A", G: g, A: []int64{0, 3}},
	})
	u, integral, ok := c.SpreadCoeffs()
	if !ok {
		t.Fatal("solve failed")
	}
	if integral {
		t.Fatalf("u = %v should be non-integral", u)
	}
	if u[0] != 1 || math.Abs(u[1]-2.0/3.0) > 1e-12 {
		t.Fatalf("u = %v", u)
	}
	if _, ex := c.RectFootprint([]int64{6, 6}); ex != Approximate {
		t.Fatalf("exactness = %v", ex)
	}
}

func TestTotalFootprintSumsClasses(t *testing.T) {
	a := analyze(t, paperex.Example2, nil)
	ext := []int64{10, 10}
	total, _ := a.RectTotalFootprint(ext)
	// A class: 100; B class: 140.
	if total != 240 {
		t.Fatalf("total = %v, want 240", total)
	}
}

func TestTileFootprintMatchesRectOnDiagonal(t *testing.T) {
	// For rectangular tiles the Theorem 2 determinant model should agree
	// with Theorem 4 up to the (λ+1 vs λ) boundary convention. Compare
	// on a diagonal tile where both apply.
	a := analyze(t, paperex.Example8, map[string]int64{"N": 100})
	b := classOf(t, a, "B", 3)
	ext := []int64{10, 10, 10}
	rect, _ := b.RectFootprint(ext)
	tf, _ := b.TileFootprint(tile.Rect(ext...))
	if rect != tf {
		t.Fatalf("RectFootprint %v != TileFootprint %v (G=I, same formula expected)", rect, tf)
	}
}

func TestRandomizedModelVsEnumerationUnimodular(t *testing.T) {
	// Property: for random unimodular 2×2 G and random offsets on the
	// lattice, Theorem 4's rect formula is exact.
	rng := rand.New(rand.NewSource(2024))
	unimods := []intmat.Mat{
		intmat.FromRows([][]int64{{1, 0}, {0, 1}}),
		intmat.FromRows([][]int64{{1, 0}, {1, 1}}),
		intmat.FromRows([][]int64{{1, 1}, {0, 1}}),
		intmat.FromRows([][]int64{{2, 1}, {1, 1}}),
		intmat.FromRows([][]int64{{1, -1}, {0, 1}}),
	}
	for trial := 0; trial < 200; trial++ {
		g := unimods[rng.Intn(len(unimods))]
		nRefs := 2 + rng.Intn(3)
		refs := make([]Ref, nRefs)
		for i := range refs {
			u := []int64{int64(rng.Intn(5) - 2), int64(rng.Intn(5) - 2)}
			a := g.MulVec(u) // offsets on the lattice → intersecting
			refs[i] = Ref{Array: "A", G: g, A: a}
		}
		c := newClass("A", g, refs)
		ext := []int64{int64(rng.Intn(6) + 3), int64(rng.Intn(6) + 3)}
		model, ex := c.RectFootprint(ext)
		exact := float64(c.enumerateRect(ext))
		if nRefs == 2 {
			// Two translates: Lemma 3 counts the union exactly.
			if ex != Exact || model != exact {
				t.Fatalf("trial %d: G=%v refs=%v ext=%v: model %v (%v) != exact %v",
					trial, g, refs, ext, model, ex, exact)
			}
			continue
		}
		// ≥3 refs: the spread model is the paper's heuristic; it should
		// stay within a factor of two of the truth at these sizes.
		lin, _ := c.RectFootprintLinearized(ext)
		if lin < exact/2 || lin > exact*2 {
			t.Fatalf("trial %d: G=%v refs=%v ext=%v: linearized %v vs exact %v out of band",
				trial, g, refs, ext, lin, exact)
		}
		_ = model
	}
}

func BenchmarkRectFootprintModel(b *testing.B) {
	n := paperex.MustParse(paperex.Example10, map[string]int64{"N": 100})
	a, err := Analyze(n)
	if err != nil {
		b.Fatal(err)
	}
	ext := []int64{10, 10}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, _ = a.RectTotalFootprint(ext)
	}
}

func BenchmarkExactEnumeration10x10(b *testing.B) {
	n := paperex.MustParse(paperex.Example10, map[string]int64{"N": 100})
	a, err := Analyze(n)
	if err != nil {
		b.Fatal(err)
	}
	pts := rectPoints([]int64{10, 10})
	for i := 0; i < b.N; i++ {
		_ = a.ExactTotalFootprint(pts)
	}
}

func TestRectFootprintLinesModelVsEnumeration(t *testing.T) {
	// Identity-G stencil: the line model must track line-granular
	// enumeration closely (same linearization error budget as Theorem 4
	// plus line-boundary rounding).
	src := `
doall (i, 1, 64)
  doall (j, 1, 64)
    A[i,j] = B[i-1,j] + B[i+1,j] + B[i,j-2] + B[i,j+2]
  enddoall
enddoall`
	a := analyze(t, src, nil)
	b := classOf(t, a, "B", 4)
	n := a.Nest
	for _, lineSize := range []int64{1, 2, 4, 8} {
		mm, err := layout.MapNest(n, lineSize)
		if err != nil {
			t.Fatal(err)
		}
		for _, ext := range [][]int64{{8, 8}, {4, 16}, {16, 4}} {
			model, ok := b.RectFootprintLinesModel(ext, lineSize)
			if !ok {
				t.Fatal("model refused identity class")
			}
			// Anchor the tile inside the real iteration space so every
			// subscript stays within the mapped arrays.
			pts := rectPoints(ext)
			for _, p := range pts {
				p[0] += 2
				p[1] += 3
			}
			bOnly := &Analysis{Nest: a.Nest, Vars: a.Vars, Classes: []Class{b}}
			exact, err := bOnly.ExactLineFootprint(pts, mm)
			if err != nil {
				t.Fatal(err)
			}
			// Alignment of the tile inside the line grid shifts counts
			// by at most one line per row; allow that plus the usual
			// linearization slack.
			slack := float64(ext[0]) + 4
			if model < float64(exact)-slack || model > float64(exact)+slack {
				t.Fatalf("lineSize=%d ext=%v: model %.1f vs exact %d (slack %.0f)",
					lineSize, ext, model, exact, slack)
			}
		}
	}
}

func TestRectFootprintLinesModelRefusesNonIdentity(t *testing.T) {
	a := analyze(t, paperex.Example10, map[string]int64{"N": 16})
	b := classOf(t, a, "B", 2)
	if _, ok := b.RectFootprintLinesModel([]int64{4, 4}, 4); ok {
		t.Fatal("non-identity class accepted")
	}
}

func TestUnitLineModelMatchesLinearized(t *testing.T) {
	a := analyze(t, paperex.Example8, map[string]int64{"N": 32})
	b := classOf(t, a, "B", 3)
	ext := []int64{8, 8, 8}
	lines, ok := b.RectFootprintLinesModel(ext, 1)
	if !ok {
		t.Fatal("refused")
	}
	lin, _ := b.RectFootprintLinearized(ext)
	if lines != lin {
		t.Fatalf("unit-line model %v != linearized %v", lines, lin)
	}
}

func TestExactTotalAndArrayFootprint(t *testing.T) {
	a := analyze(t, paperex.Example2, nil)
	pts := rectPoints([]int64{10, 10})
	// Anchor inside the space (subscripts are unconstrained here; exact
	// enumeration works anywhere).
	totalB := a.ExactArrayFootprint("B", pts)
	totalA := a.ExactArrayFootprint("A", pts)
	if totalA != 100 || totalB != 140 {
		t.Fatalf("A=%d B=%d", totalA, totalB)
	}
	if got := a.ExactTotalFootprint(pts); got != 240 {
		t.Fatalf("total = %d", got)
	}
	if got := a.ExactArrayFootprint("Z", pts); got != 0 {
		t.Fatalf("unknown array footprint = %d", got)
	}
}

func TestCumulativeSpreadCoeffsExample8(t *testing.T) {
	a := analyze(t, paperex.Example8, map[string]int64{"N": 16})
	b := classOf(t, a, "B", 3)
	u, integral, ok := b.CumulativeSpreadCoeffs()
	if !ok || !integral {
		t.Fatalf("u=%v integral=%v ok=%v", u, integral, ok)
	}
	// Symmetric offsets: a⁺ = â = (2,3,4).
	if u[0] != 2 || u[1] != 3 || u[2] != 4 {
		t.Fatalf("u = %v", u)
	}
}

func TestExactnessString(t *testing.T) {
	for e, want := range map[Exactness]string{
		Exact: "exact", Approximate: "approximate", Enumerated: "enumerated",
	} {
		if e.String() != want {
			t.Errorf("%d.String() = %q", e, e.String())
		}
	}
}

func TestRefAndClassStrings(t *testing.T) {
	a := analyze(t, paperex.Example2, nil)
	b := classOf(t, a, "B", 2)
	if b.NumRefs() != 2 {
		t.Fatalf("NumRefs = %d", b.NumRefs())
	}
	if b.Refs[0].String() == "" || b.String() == "" {
		t.Fatal("empty strings")
	}
}

func TestNewClassPublicConstructor(t *testing.T) {
	g := intmat.FromRows([][]int64{{1, 2, 1}, {0, 0, 1}})
	c := NewClass("A", g, []Ref{{Array: "A", G: g, A: []int64{0, 0, 0}}})
	if len(c.Reduced.Cols) != 2 {
		t.Fatalf("reduction missing: %v", c.Reduced.Cols)
	}
}

func TestRectTotalLinearizedAggregates(t *testing.T) {
	a := analyze(t, paperex.Example8, map[string]int64{"N": 16})
	ext := []int64{4, 4, 4}
	fp, _ := a.RectTotalFootprintLinearized(ext)
	tr, _ := a.RectTotalTrafficLinearized(ext)
	// A class: 64 footprint, 0 traffic; B: 64 + 2·16+3·16+4·16 = 208.
	if fp != 64+208 {
		t.Fatalf("footprint = %v", fp)
	}
	if tr != 144 {
		t.Fatalf("traffic = %v", tr)
	}
}

func TestTileTotalTrafficSkewed(t *testing.T) {
	a := analyze(t, paperex.Example6, nil)
	lmat := intmat.FromRows([][]int64{{6, 6}, {5, 0}})
	tr, _ := a.TileTotalTraffic(tile.Parallelepiped(lmat))
	if tr <= 0 {
		t.Fatalf("traffic = %v", tr)
	}
	// Enumerated fallback path: a program with A[i+j].
	a2 := analyze(t, `
doall (i, 1, 8)
  doall (j, 1, 8)
    B[i,j] = A[i+j] + A[i+j+2]
  enddoall
enddoall`, nil)
	tr2, ex := a2.TileTotalTraffic(tile.Rect(4, 4))
	if ex != Enumerated {
		t.Fatalf("exactness = %v", ex)
	}
	// A[i+j] and A[i+j+2] on a 4×4 tile: union size 9, single 7 → 2.
	if tr2 != 2 {
		t.Fatalf("traffic = %v", tr2)
	}
}
