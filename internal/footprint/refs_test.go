package footprint

import (
	"testing"

	"looppart/internal/intmat"
	"looppart/internal/loopir"
	"looppart/internal/paperex"
)

func analyze(t *testing.T, src string, params map[string]int64) *Analysis {
	t.Helper()
	n, err := loopir.Parse(src, params)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Analyze(n)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func classOf(t *testing.T, a *Analysis, array string, nRefs int) Class {
	t.Helper()
	for _, c := range a.Classes {
		if c.Array == array && len(c.Refs) == nRefs {
			return c
		}
	}
	t.Fatalf("no class for %s with %d refs; classes: %v", array, nRefs, a.Classes)
	return Class{}
}

func TestAnalyzeExample2(t *testing.T) {
	a := analyze(t, paperex.Example2, nil)
	if len(a.Classes) != 2 {
		t.Fatalf("classes = %d: %v", len(a.Classes), a.Classes)
	}
	b := classOf(t, a, "B", 2)
	wantG := intmat.FromRows([][]int64{{1, 1}, {1, -1}})
	if !b.G.Equal(wantG) {
		t.Fatalf("G = %v", b.G)
	}
	spread := b.Spread()
	if spread[0] != 4 || spread[1] != 4 {
		t.Fatalf("spread = %v", spread)
	}
	if !b.HasWrite() == true && b.HasWrite() {
		t.Fatal("B is read-only")
	}
	aCls := classOf(t, a, "A", 1)
	if !aCls.HasWrite() {
		t.Fatal("A is written")
	}
	if !aCls.FootprintInvariant() {
		t.Fatal("A's footprint should be shape-invariant")
	}
	if b.FootprintInvariant() {
		t.Fatal("B's footprint depends on shape")
	}
}

func TestAnalyzeExample8Spread(t *testing.T) {
	a := analyze(t, paperex.Example8, map[string]int64{"N": 100})
	b := classOf(t, a, "B", 3)
	if !b.G.Equal(intmat.Identity(3)) {
		t.Fatalf("G = %v", b.G)
	}
	s := b.Spread()
	if s[0] != 2 || s[1] != 3 || s[2] != 4 {
		t.Fatalf("spread = %v, want [2 3 4]", s)
	}
}

func TestAnalyzeExample10Classes(t *testing.T) {
	a := analyze(t, paperex.Example10, map[string]int64{"N": 100})
	// Four classes: B (2 refs), C (2 refs: the intersecting pair),
	// C (1 ref: the non-intersecting one), A (1 ref).
	if len(a.Classes) != 4 {
		t.Fatalf("classes = %d: %v", len(a.Classes), a.Classes)
	}
	b := classOf(t, a, "B", 2)
	if b.G.Det() != -2 {
		t.Fatalf("det G = %d", b.G.Det())
	}
	s := b.Spread()
	if s[0] != 4 || s[1] != 2 {
		t.Fatalf("B spread = %v", s)
	}
	c2 := classOf(t, a, "C", 2)
	// C(i,2i,i+2j-1) and C(i,2i,i+2j+1): spread (0,0,2).
	cs := c2.Spread()
	if cs[0] != 0 || cs[1] != 0 || cs[2] != 2 {
		t.Fatalf("C spread = %v", cs)
	}
	// Reduced columns of C's G = [[1,2,1],[0,0,2]] are 0 and 2.
	if len(c2.Reduced.Cols) != 2 || c2.Reduced.Cols[0] != 0 || c2.Reduced.Cols[1] != 2 {
		t.Fatalf("C reduced cols = %v", c2.Reduced.Cols)
	}
	// The lone C reference does not merge with the pair.
	_ = classOf(t, a, "C", 1)
}

func TestIntersectingDefinition4(t *testing.T) {
	// A[2i] vs A[2i+1]: uniformly generated, not intersecting.
	g := intmat.FromRows([][]int64{{2}})
	if Intersecting(g, []int64{0}, []int64{1}) {
		t.Error("A[2i] and A[2i+1] must not intersect")
	}
	if !Intersecting(g, []int64{0}, []int64{6}) {
		t.Error("A[2i] and A[2i+6] must intersect")
	}
	// Example 10 class C: offset diff (1,2,2) not on the lattice of
	// G = [[1,2,1],[0,0,2]] (needs u2 = 1/2).
	gc := intmat.FromRows([][]int64{{1, 2, 1}, {0, 0, 2}})
	if Intersecting(gc, []int64{0, 0, -1}, []int64{1, 2, 1}) {
		t.Error("C(i+1,2i+2,i+2j+1) must not intersect C(i,2i,i+2j-1)")
	}
	if !Intersecting(gc, []int64{0, 0, -1}, []int64{0, 0, 1}) {
		t.Error("C(i,2i,i+2j+1) must intersect C(i,2i,i+2j-1)")
	}
}

func TestUniformlyIntersectingAppendixB(t *testing.T) {
	// Appendix B set 1: A[i,j], A[i+1,j-3], A[i,j+4] — all uniformly
	// intersecting (G = I).
	gI := intmat.Identity(2)
	refs := []Ref{
		{Array: "A", G: gI, A: []int64{0, 0}},
		{Array: "A", G: gI, A: []int64{1, -3}},
		{Array: "A", G: gI, A: []int64{0, 4}},
	}
	for i := range refs {
		for j := range refs {
			if !UniformlyIntersecting(refs[i], refs[j]) {
				t.Errorf("refs %d and %d should be uniformly intersecting", i, j)
			}
		}
	}
	// Appendix B negatives.
	g2i := intmat.FromRows([][]int64{{2, 0}, {0, 1}})
	r1 := Ref{Array: "A", G: gI, A: []int64{0, 0}}
	r2 := Ref{Array: "A", G: g2i, A: []int64{0, 0}}
	if UniformlyIntersecting(r1, r2) {
		t.Error("A[i,j] and A[2i,j] are not uniformly generated")
	}
	// Different arrays.
	r3 := Ref{Array: "B", G: gI, A: []int64{0, 0}}
	if UniformlyGenerated(r1, r3) {
		t.Error("A[i,j] and B[i,j] must not be uniformly generated")
	}
}

func TestAnalyzeMergesDuplicateOccurrences(t *testing.T) {
	a := analyze(t, `
doall (i, 1, 8)
  A[i] = B[i] + B[i] + B[i+1]
enddoall`, nil)
	b := classOf(t, a, "B", 2)
	// B[i] appears twice as a read → merged with Reads = 2.
	var bi Ref
	for _, r := range b.Refs {
		if r.A[0] == 0 {
			bi = r
		}
	}
	if bi.Reads != 2 || bi.Writes != 0 {
		t.Fatalf("B[i] counts = %+v", bi)
	}
}

func TestAnalyzeReadWriteSameRef(t *testing.T) {
	a := analyze(t, `
doall (i, 1, 8)
  A[i] = A[i] + 1
enddoall`, nil)
	c := classOf(t, a, "A", 1)
	if c.Refs[0].Reads != 1 || c.Refs[0].Writes != 1 {
		t.Fatalf("counts = %+v", c.Refs[0])
	}
}

func TestAnalyzeAtomicFlag(t *testing.T) {
	a := analyze(t, paperex.MatmulSync, map[string]int64{"N": 4})
	c := classOf(t, a, "C", 1)
	if !c.Refs[0].Atomic {
		t.Fatal("C reference should be atomic")
	}
	if c.Refs[0].Reads == 0 || c.Refs[0].Writes == 0 {
		t.Fatalf("atomic accumulate should read and write: %+v", c.Refs[0])
	}
}

func TestAnalyzeRejectsSeqVarInSubscript(t *testing.T) {
	n := loopir.MustParse(`
doseq (t, 1, 4)
  doall (i, 1, 8)
    A[i,t] = B[i]
  enddoall
enddoseq`, nil)
	if _, err := Analyze(n); err == nil {
		t.Fatal("sequential variable in subscript should be rejected")
	}
}

func TestAnalyzeZeroColumnDropping(t *testing.T) {
	// Example 1's reference A[i3+2, 5, i2-1, 4]: columns 1 and 3 zero.
	a := analyze(t, paperex.Example1Ref, map[string]int64{"N": 4})
	c := classOf(t, a, "A", 1)
	if len(c.Reduced.Cols) != 2 {
		t.Fatalf("reduced cols = %v", c.Reduced.Cols)
	}
	if c.Reduced.Cols[0] != 0 || c.Reduced.Cols[1] != 2 {
		t.Fatalf("reduced cols = %v, want [0 2]", c.Reduced.Cols)
	}
}

func TestAnalyzeExample7Reduction(t *testing.T) {
	a := analyze(t, paperex.Example7Ref, map[string]int64{"N": 4})
	c := classOf(t, a, "A", 1)
	want := intmat.FromRows([][]int64{{1, 1}, {0, 1}})
	if !c.Reduced.G.Equal(want) {
		t.Fatalf("G' = %v, want %v", c.Reduced.G, want)
	}
	if !c.Reduced.G.IsUnimodular() {
		t.Fatal("Example 7 G' should be unimodular")
	}
}

func TestCumulativeSpread(t *testing.T) {
	// Offsets 0, 1, 5 in one dimension: median 1, a⁺ = |0−1|+|1−1|+|5−1| = 5.
	// Spread â = 5 − 0 = 5 (equal here); with offsets 0, 1, 2: â = 2, a⁺ = 2.
	gI := intmat.Identity(1)
	c := newClass("A", gI, []Ref{
		{Array: "A", G: gI, A: []int64{0}},
		{Array: "A", G: gI, A: []int64{1}},
		{Array: "A", G: gI, A: []int64{5}},
	})
	if got := c.CumulativeSpread()[0]; got != 5 {
		t.Errorf("a+ = %d, want 5", got)
	}
	c2 := newClass("A", gI, []Ref{
		{Array: "A", G: gI, A: []int64{0}},
		{Array: "A", G: gI, A: []int64{1}},
		{Array: "A", G: gI, A: []int64{2}},
	})
	if got := c2.CumulativeSpread()[0]; got != 2 {
		t.Errorf("a+ = %d, want 2", got)
	}
	// Four refs: 0,1,2,7 → median (index 2) = 2, a⁺ = 2+1+0+5 = 8 > â = 7.
	c3 := newClass("A", gI, []Ref{
		{Array: "A", G: gI, A: []int64{0}},
		{Array: "A", G: gI, A: []int64{1}},
		{Array: "A", G: gI, A: []int64{2}},
		{Array: "A", G: gI, A: []int64{7}},
	})
	if got := c3.CumulativeSpread()[0]; got != 8 {
		t.Errorf("a+ = %d, want 8", got)
	}
	if got := c3.Spread()[0]; got != 7 {
		t.Errorf("â = %d, want 7", got)
	}
}

func TestClassString(t *testing.T) {
	a := analyze(t, paperex.Example2, nil)
	b := classOf(t, a, "B", 2)
	s := b.String()
	if s == "" {
		t.Fatal("empty class string")
	}
}

func BenchmarkAnalyzeExample10(b *testing.B) {
	n := loopir.MustParse(paperex.Example10, map[string]int64{"N": 100})
	for i := 0; i < b.N; i++ {
		if _, err := Analyze(n); err != nil {
			b.Fatal(err)
		}
	}
}
