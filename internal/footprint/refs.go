// Package footprint implements the paper's core analysis: classifying
// array references into uniformly intersecting sets (Definitions 4–6),
// computing spread vectors (Definition 8 and the data-partitioning
// cumulative spread of footnote 2), and modeling the size of the
// cumulative data footprint of a loop tile (Equation 2, Theorems 1–5).
//
// The analytic size models are validated against exact enumeration (also
// provided here) in the package tests and in the paper-reproduction
// benchmarks.
package footprint

import (
	"fmt"
	"sort"
	"strings"

	"looppart/internal/intmat"
	"looppart/internal/loopir"
)

// Ref is one distinct affine reference (G, a) to an array, in the paper's
// row-vector form g(i) = i·G + a (Equation 1). Multiple textual
// occurrences of the same (array, G, a) triple are merged; Reads/Writes
// count occurrences by role.
type Ref struct {
	Array  string
	G      intmat.Mat
	A      []int64
	Reads  int
	Writes int
	Atomic bool // at least one occurrence is a synchronizing reference
}

// String renders the reference as Array(G, a).
func (r Ref) String() string {
	return fmt.Sprintf("%s(G=%v, a=%v)", r.Array, r.G, r.A)
}

// Class is one uniformly intersecting set of references: same array, same
// G, and pairwise intersecting footprints (offset differences on the row
// lattice of G).
type Class struct {
	Array string
	G     intmat.Mat // the shared reference matrix (l×d), original columns
	Refs  []Ref      // members, in source order

	// Reduced is G restricted to a maximal set of linearly independent
	// columns (§3.4.1). Footprint size models operate on the reduction.
	Reduced Reduction
}

// Reduction carries the column reduction of a reference matrix.
type Reduction struct {
	Cols []int      // indices of the kept columns of G
	G    intmat.Mat // l × len(Cols), the kept columns
}

// Project maps a full-dimension data vector onto the kept columns.
func (r Reduction) Project(v []int64) []int64 {
	out := make([]int64, len(r.Cols))
	for k, c := range r.Cols {
		out[k] = v[c]
	}
	return out
}

// NumRefs returns the number of distinct references in the class.
func (c Class) NumRefs() int { return len(c.Refs) }

// HasWrite reports whether any member writes (relevant for coherence:
// read-only classes generate no invalidations).
func (c Class) HasWrite() bool {
	for _, r := range c.Refs {
		if r.Writes > 0 {
			return true
		}
	}
	return false
}

// Spread returns the spread vector â (Definition 8): per data dimension,
// the max minus the min of the member offsets.
func (c Class) Spread() []int64 {
	d := len(c.Refs[0].A)
	spread := make([]int64, d)
	for k := 0; k < d; k++ {
		mn, mx := c.Refs[0].A[k], c.Refs[0].A[k]
		for _, r := range c.Refs[1:] {
			if r.A[k] < mn {
				mn = r.A[k]
			}
			if r.A[k] > mx {
				mx = r.A[k]
			}
		}
		spread[k] = mx - mn
	}
	return spread
}

// CumulativeSpread returns a⁺ (footnote 2), the data-partitioning variant:
// per dimension, the sum of absolute deviations from the median offset.
// With local memory instead of caches, data from other memory modules is
// not dynamically replicated, so every member's deviation costs traffic,
// not just the extremes.
func (c Class) CumulativeSpread() []int64 {
	d := len(c.Refs[0].A)
	out := make([]int64, d)
	for k := 0; k < d; k++ {
		vals := make([]int64, len(c.Refs))
		for i, r := range c.Refs {
			vals[i] = r.A[k]
		}
		sort.Slice(vals, func(a, b int) bool { return vals[a] < vals[b] })
		med := vals[len(vals)/2]
		var sum int64
		for _, v := range vals {
			if v >= med {
				sum += v - med
			} else {
				sum += med - v
			}
		}
		out[k] = sum
	}
	return out
}

// String renders the class compactly.
func (c Class) String() string {
	parts := make([]string, len(c.Refs))
	for i, r := range c.Refs {
		parts[i] = fmt.Sprintf("%v", r.A)
	}
	return fmt.Sprintf("%s: G=%v offsets={%s}", c.Array, c.G, strings.Join(parts, " "))
}

// Analysis is the classified reference structure of a loop nest.
type Analysis struct {
	Nest    *loopir.Nest
	Vars    []string // doall variables, outermost first (the l dimensions)
	Classes []Class
}

// Analyze extracts the affine references of the nest's body over its doall
// variables and groups them into uniformly intersecting classes.
//
// Two references are placed in the same class iff they name the same
// array, are uniformly generated (identical G, Definition 5), and
// intersect (Definition 4) — which for uniformly generated references
// holds exactly when the offset difference lies on the row lattice of G
// (the condition behind Theorem 3). Lattice membership is an equivalence
// relation, so the classes are well defined.
//
// References whose subscripts involve a sequential (doseq) loop variable
// are rejected: their footprints move between epochs and the framework
// does not model them.
func Analyze(n *loopir.Nest) (*Analysis, error) {
	if err := n.Validate(); err != nil {
		return nil, err
	}
	vars := n.DoallVars()
	seq := map[string]bool{}
	for _, l := range n.SeqLoops() {
		seq[l.Var] = true
	}

	// Collect distinct references.
	var refs []*Ref
	index := map[string]*Ref{}
	for _, acc := range n.Accesses() {
		for _, sub := range acc.Ref.Subs {
			for v := range sub.Coef {
				if seq[v] {
					return nil, fmt.Errorf("footprint: reference %s uses sequential loop variable %q in a subscript", acc.Ref, v)
				}
			}
		}
		g, a, err := acc.Ref.Affine(vars)
		if err != nil {
			return nil, err
		}
		key := acc.Ref.Array + "|" + g.String() + "|" + vecKey(a)
		r, ok := index[key]
		if !ok {
			r = &Ref{Array: acc.Ref.Array, G: g, A: a}
			index[key] = r
			refs = append(refs, r)
		}
		if acc.Write {
			r.Writes++
		} else {
			r.Reads++
		}
		if acc.Atomic {
			r.Atomic = true
		}
	}

	// Group into uniformly generated sets, then split by lattice cosets.
	var classes []Class
	used := make([]bool, len(refs))
	for i, ri := range refs {
		if used[i] {
			continue
		}
		members := []Ref{*ri}
		used[i] = true
		for j := i + 1; j < len(refs); j++ {
			rj := refs[j]
			if used[j] || rj.Array != ri.Array || !rj.G.Equal(ri.G) {
				continue
			}
			if Intersecting(ri.G, ri.A, rj.A) {
				members = append(members, *rj)
				used[j] = true
			}
		}
		classes = append(classes, newClass(ri.Array, ri.G, members))
	}
	return &Analysis{Nest: n, Vars: vars, Classes: classes}, nil
}

// Intersecting implements Definition 4 for uniformly generated references:
// g₁(i₁) = g₂(i₂) for some integer iteration points iff a₂ − a₁ is an
// integer combination of the rows of G. (The iteration space is treated as
// unbounded here, the paper's working assumption that tile sizes dominate
// offset spreads; bounded-tile intersection is Theorem 3, in package
// lattice.)
func Intersecting(g intmat.Mat, a1, a2 []int64) bool {
	diff := make([]int64, len(a1))
	for k := range a1 {
		diff[k] = a2[k] - a1[k]
	}
	return intmat.InRowLattice(g, diff)
}

// NewClass assembles a class from explicit members (all sharing G),
// computing the §3.4.1 column reduction. Analyze is the normal entry
// point; NewClass serves synthetic classes in tools and experiments.
// The members are assumed pairwise intersecting; no lattice check is
// performed here.
func NewClass(array string, g intmat.Mat, members []Ref) Class {
	return newClass(array, g, members)
}

func newClass(array string, g intmat.Mat, members []Ref) Class {
	c := Class{Array: array, G: g, Refs: members}
	// §3.4.1: drop zero columns (Example 1), then keep a maximal set of
	// linearly independent columns (Example 7).
	nz := g.NonZeroCols()
	gnz := g.SelectCols(nz)
	indep := gnz.MaxIndependentCols()
	cols := make([]int, len(indep))
	for k, idx := range indep {
		cols[k] = nz[idx]
	}
	c.Reduced = Reduction{Cols: cols, G: g.SelectCols(cols)}
	return c
}

// UniformlyGenerated implements Definition 5 for two extracted references.
func UniformlyGenerated(r1, r2 Ref) bool {
	return r1.Array == r2.Array && r1.G.Equal(r2.G)
}

// UniformlyIntersecting implements Definition 6.
func UniformlyIntersecting(r1, r2 Ref) bool {
	return UniformlyGenerated(r1, r2) && Intersecting(r1.G, r1.A, r2.A)
}

func vecKey(v []int64) string {
	var b strings.Builder
	for _, x := range v {
		fmt.Fprintf(&b, "%d,", x)
	}
	return b.String()
}
