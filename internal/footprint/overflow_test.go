package footprint

import (
	"math"
	"strings"
	"testing"

	"looppart/internal/intmat"
	"looppart/internal/tile"
)

// Regression: writeInt used v = -v to take the magnitude, which wraps for
// MinInt64 (it is its own negation), aliasing the dedup key of -2^63 with
// "-0"-prefixed garbage. The keys of extreme values must stay distinct.
func TestWriteIntMinInt64(t *testing.T) {
	key := func(v int64) string {
		var b strings.Builder
		writeInt(&b, v)
		return b.String()
	}
	vals := []int64{math.MinInt64, math.MinInt64 + 1, -1, 0, 1, math.MaxInt64}
	seen := make(map[string]int64)
	for _, v := range vals {
		k := key(v)
		if prev, dup := seen[k]; dup {
			t.Fatalf("writeInt key collision: %d and %d both encode to %q", prev, v, k)
		}
		seen[k] = v
	}
	if got, want := key(math.MinInt64), "-8446744073709551258,"; len(got) != len(want) {
		// Not asserting the exact digit string (LSD-first encoding), just
		// that the magnitude has the full 19 digits plus sign and comma.
		t.Errorf("writeInt(MinInt64) = %q: want 19 digits, sign, delimiter", got)
	}
}

// A class whose G maps iterations near MinInt64 must count corners
// distinctly: with the old wrapping writeInt the two extreme columns
// collapsed into one key.
func TestExactFootprintExtremeOffsets(t *testing.T) {
	g := intmat.FromRows([][]int64{{1}})
	c := NewClass("A", g, []Ref{
		{A: []int64{math.MinInt64}},
		{A: []int64{math.MinInt64 + 1}},
	})
	got := ExactClassFootprint(c, [][]int64{{0}, {1}})
	// Points {Min, Min+1} ∪ {Min+1, Min+2} = 3 distinct elements.
	if got != 3 {
		t.Errorf("ExactClassFootprint near MinInt64 = %d, want 3", got)
	}
}

// The enumeration fallbacks must respect the configurable point budget:
// below it they enumerate exactly, above it the refs·volume model stands
// in (Approximate), and the search never materializes the cross-product.
func TestEnumerationBudgetRect(t *testing.T) {
	// Rank-deficient reduced G (1 row, 2 cols → not square after reduction
	// keeps 2 cols? build directly): use a 2-deep nest mapping to 1-D data
	// with dependent columns so no closed form applies.
	g := intmat.FromRows([][]int64{{1, 2}, {2, 4}})
	c := NewClass("A", g, []Ref{{A: []int64{0, 0}}, {A: []int64{1, 1}}})
	ext := []int64{8, 8}

	prev := SetEnumerationBudget(1 << 30)
	defer SetEnumerationBudget(prev)

	fp, ex := c.RectFootprint(ext)
	if ex != Enumerated {
		t.Fatalf("in-budget RectFootprint exactness = %v, want Enumerated", ex)
	}

	SetEnumerationBudget(16) // 8×8 = 64 points > 16
	fpModel, exModel := c.RectFootprint(ext)
	if exModel != Approximate {
		t.Fatalf("over-budget RectFootprint exactness = %v, want Approximate", exModel)
	}
	if want := float64(len(c.Refs)) * 64; fpModel != want {
		t.Errorf("over-budget RectFootprint = %v, want refs·vol = %v", fpModel, want)
	}
	if fpModel < fp {
		t.Errorf("model fallback %v is below the exact count %v: not an upper bound", fpModel, fp)
	}

	// The evaluator mirror must agree bit-for-bit in both regimes.
	a := &Analysis{Classes: []Class{c}}
	ev := NewEvaluator(a)
	gotEv, exEv := ev.RectTotalFootprint(ext)
	if gotEv != fpModel || exEv != exModel {
		t.Errorf("Evaluator over budget = (%v, %v), Analysis = (%v, %v)", gotEv, exEv, fpModel, exModel)
	}
	SetEnumerationBudget(1 << 30)
	gotEv, exEv = ev.RectTotalFootprint(ext)
	if gotEv != fp || exEv != Enumerated {
		t.Errorf("Evaluator in budget = (%v, %v), Analysis = (%v, %v)", gotEv, exEv, fp, Enumerated)
	}
}

func TestEnumerationBudgetTile(t *testing.T) {
	g := intmat.FromRows([][]int64{{1, 2}, {2, 4}})
	c := NewClass("A", g, []Ref{{A: []int64{0, 0}}})
	tl := tile.Rect(6, 6)

	prev := SetEnumerationBudget(1 << 30)
	defer SetEnumerationBudget(prev)
	exact, ex := c.TileFootprint(tl)
	if ex != Enumerated {
		t.Fatalf("in-budget TileFootprint exactness = %v, want Enumerated", ex)
	}

	SetEnumerationBudget(8)
	fp, ex2 := c.TileFootprint(tl)
	if ex2 != Approximate {
		t.Fatalf("over-budget TileFootprint exactness = %v, want Approximate", ex2)
	}
	if want := float64(len(c.Refs)) * 36; fp != want {
		t.Errorf("over-budget TileFootprint = %v, want refs·|det L| = %v", fp, want)
	}
	if fp < exact {
		t.Errorf("model fallback %v below exact count %v", fp, exact)
	}
}

// An overflowing tile model must score +Inf, never a wrapped (possibly
// small or negative) determinant.
func TestTileFootprintOverflowInf(t *testing.T) {
	g := intmat.FromRows([][]int64{{1, 0}, {0, 1}})
	c := NewClass("A", g, []Ref{{A: []int64{0, 0}}, {A: []int64{1, 0}}})
	huge := tile.Tile{L: intmat.Diag(int64(1)<<40, int64(1)<<40)}
	fp, ex := c.TileFootprint(huge)
	if !math.IsInf(fp, 1) {
		t.Fatalf("TileFootprint with wrapping det = %v, want +Inf", fp)
	}
	if ex != Approximate {
		t.Errorf("exactness = %v, want Approximate", ex)
	}
	// And it must rank worse than any sane candidate in a comparison.
	sane, _ := c.TileFootprint(tile.Rect(4, 4))
	if !(fp > sane) {
		t.Errorf("overflowed footprint %v does not compare worse than %v", fp, sane)
	}
}
