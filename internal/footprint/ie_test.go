package footprint

import (
	"math/rand"
	"testing"

	"looppart/internal/intmat"
	"looppart/internal/paperex"
)

func TestBoundsBracketExactRandom(t *testing.T) {
	// Property: lower ≤ exact ≤ upper for random multi-reference classes
	// on unimodular lattices.
	rng := rand.New(rand.NewSource(808))
	gs := []intmat.Mat{
		intmat.Identity(2),
		intmat.FromRows([][]int64{{1, 0}, {1, 1}}),
		intmat.FromRows([][]int64{{1, 1}, {1, -1}}), // det −2
		intmat.FromRows([][]int64{{2, 1}, {1, 1}}),
	}
	for trial := 0; trial < 300; trial++ {
		g := gs[rng.Intn(len(gs))]
		k := 2 + rng.Intn(4)
		refs := make([]Ref, k)
		for i := range refs {
			u := []int64{int64(rng.Intn(7) - 3), int64(rng.Intn(7) - 3)}
			refs[i] = Ref{Array: "A", G: g, A: g.MulVec(u)}
		}
		c := newClass("A", g, refs)
		ext := []int64{int64(rng.Intn(6) + 3), int64(rng.Intn(6) + 3)}
		lo, hi, ok := c.RectFootprintBounds(ext)
		if !ok {
			t.Fatalf("trial %d: bounds refused", trial)
		}
		exact := float64(c.enumerateRect(ext))
		if exact < lo-1e-9 || exact > hi+1e-9 {
			t.Fatalf("trial %d: exact %v outside [%v, %v] (G=%v refs=%v ext=%v)",
				trial, exact, lo, hi, g, refs, ext)
		}
	}
}

func TestBoundsSinglePairMatchLemma3(t *testing.T) {
	// For two references the bounds collapse to the exact Lemma 3 union.
	a := analyze(t, paperex.Example10, map[string]int64{"N": 40})
	b := classOf(t, a, "B", 2)
	for _, ext := range [][]int64{{6, 6}, {9, 4}, {4, 9}} {
		lo, hi, ok := b.RectFootprintBounds(ext)
		if !ok {
			t.Fatal("refused")
		}
		exact := float64(b.enumerateRect(ext))
		if lo != exact || hi != exact {
			t.Fatalf("ext %v: bounds [%v,%v] != exact %v", ext, lo, hi, exact)
		}
	}
}

func TestRefinedBeatsLinearizedOnCorners(t *testing.T) {
	// Adversarial 4-corner class (offsets at the corners of a square):
	// the spread model undercounts; the refined estimate must be closer.
	g := intmat.Identity(2)
	refs := []Ref{
		{Array: "A", G: g, A: []int64{0, 0}},
		{Array: "A", G: g, A: []int64{3, 0}},
		{Array: "A", G: g, A: []int64{0, 3}},
		{Array: "A", G: g, A: []int64{3, 3}},
	}
	c := newClass("A", g, refs)
	ext := []int64{5, 5}
	exact := float64(c.enumerateRect(ext))
	lin, _ := c.RectFootprintLinearized(ext)
	ref, _ := c.RectFootprintRefined(ext)
	errLin := absf(lin - exact)
	errRef := absf(ref - exact)
	if errRef > errLin {
		t.Fatalf("refined error %v worse than linearized %v (exact %v, lin %v, ref %v)",
			errRef, errLin, exact, lin, ref)
	}
	// And the bounds bracket.
	lo, hi, ok := c.RectFootprintBounds(ext)
	if !ok || exact < lo || exact > hi {
		t.Fatalf("exact %v outside [%v,%v]", exact, lo, hi)
	}
}

func TestRefinedFallsBackWithoutClosedForm(t *testing.T) {
	// A[i+j]: no square reduced G → falls back to enumeration.
	a := analyze(t, `
doall (i, 1, 16)
  doall (j, 1, 16)
    B[i,j] = A[i+j]
  enddoall
enddoall`, nil)
	c := classOf(t, a, "A", 1)
	got, ex := c.RectFootprintRefined([]int64{4, 6})
	if ex != Enumerated || got != 9 {
		t.Fatalf("refined = %v (%v)", got, ex)
	}
	if _, _, ok := c.RectFootprintBounds([]int64{4, 6}); ok {
		t.Fatal("bounds should refuse non-square reduced G")
	}
}

func TestBoundsSingleRef(t *testing.T) {
	a := analyze(t, paperex.Example2, nil)
	cls := classOf(t, a, "A", 1)
	lo, hi, ok := cls.RectFootprintBounds([]int64{10, 10})
	if !ok || lo != 100 || hi != 100 {
		t.Fatalf("bounds = [%v,%v] ok=%v", lo, hi, ok)
	}
}

func absf(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

func BenchmarkRectFootprintBounds(b *testing.B) {
	g := intmat.Identity(2)
	refs := []Ref{
		{Array: "A", G: g, A: []int64{0, 0}},
		{Array: "A", G: g, A: []int64{3, 0}},
		{Array: "A", G: g, A: []int64{0, 3}},
		{Array: "A", G: g, A: []int64{3, 3}},
	}
	c := newClass("A", g, refs)
	ext := []int64{10, 10}
	for i := 0; i < b.N; i++ {
		_, _, _ = c.RectFootprintBounds(ext)
	}
}
