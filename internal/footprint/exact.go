package footprint

import (
	"math"
	"strings"

	"looppart/internal/intmat"
	"looppart/internal/layout"
)

// Exact footprint computation by enumeration (Definition 3 applied
// literally): map every iteration point of a tile through every reference
// and count distinct data elements. This is the ground truth the analytic
// models are validated against, and the fallback when no closed form
// applies (§3.8's hard cases).

// ExactClassFootprint returns |∪_r F(r)| over the class members for the
// given iteration points, using the full (unreduced) G.
func ExactClassFootprint(c Class, iterPts [][]int64) int64 {
	return ExactClassFootprintFunc(c, func(yield func(p []int64) bool) {
		for _, p := range iterPts {
			if !yield(p) {
				return
			}
		}
	})
}

// ExactClassFootprintFunc is ExactClassFootprint over a streamed point
// source: forEach must call yield once per iteration point and stop when
// yield returns false. Only the distinct-element key set is held in
// memory, never the point list — this is the enumeration path for tiles
// too large to materialize (see SetEnumerationBudget).
func ExactClassFootprintFunc(c Class, forEach func(yield func(p []int64) bool)) int64 {
	seen := make(map[string]struct{})
	forEach(func(p []int64) bool {
		base := c.G.MulVec(p)
		for _, r := range c.Refs {
			var b strings.Builder
			for k := range base {
				writeInt(&b, base[k]+r.A[k])
			}
			seen[b.String()] = struct{}{}
		}
		return true
	})
	return int64(len(seen))
}

// ExactArrayFootprint returns the number of distinct elements of one array
// touched by the iteration points, across ALL classes referencing it
// (classes of the same array are normally disjoint — that is why they are
// separate classes — but this function does not assume it).
func (a *Analysis) ExactArrayFootprint(array string, iterPts [][]int64) int64 {
	seen := make(map[string]struct{})
	for _, c := range a.Classes {
		if c.Array != array {
			continue
		}
		for _, p := range iterPts {
			base := c.G.MulVec(p)
			for _, r := range c.Refs {
				var b strings.Builder
				for k := range base {
					writeInt(&b, base[k]+r.A[k])
				}
				seen[b.String()] = struct{}{}
			}
		}
	}
	return int64(len(seen))
}

// ExactTotalFootprint sums ExactArrayFootprint over all arrays: the total
// number of distinct data elements the iteration points touch — the
// cold-miss count of a tile on an infinite cache with unit lines.
func (a *Analysis) ExactTotalFootprint(iterPts [][]int64) int64 {
	arrays := map[string]bool{}
	for _, c := range a.Classes {
		arrays[c.Array] = true
	}
	var total int64
	for arr := range arrays {
		total += a.ExactArrayFootprint(arr, iterPts)
	}
	return total
}

// ExactLineFootprint counts the distinct cache lines the iteration points
// touch under the given memory map — the line-granular analogue of
// ExactTotalFootprint (the [6]-style extension for cache lines longer
// than one element).
func (a *Analysis) ExactLineFootprint(iterPts [][]int64, mm *layout.MemoryMap) (int64, error) {
	lines := make(map[int64]struct{})
	for _, c := range a.Classes {
		for _, p := range iterPts {
			base := c.G.MulVec(p)
			idx := make([]int64, len(base))
			for _, r := range c.Refs {
				for k := range base {
					idx[k] = base[k] + r.A[k]
				}
				line, err := mm.LineOf(c.Array, idx)
				if err != nil {
					return 0, err
				}
				lines[line] = struct{}{}
			}
		}
	}
	return int64(len(lines)), nil
}

// RectFootprintLinesModel estimates the line-granular cumulative footprint
// of a rectangular tile for a class whose reduced G is the identity (the
// stencil case [6] treats): along the storage-order (last) dimension,
// extents and spreads contract by the line size; other dimensions are
// unchanged:
//
//	Π_{j<d} extⱼ · ⌈ext_d / lineSize⌉ + Σᵢ ûᵢ'·Π_{j≠i} extⱼ'
//
// where the primed quantities use the contracted last dimension and the
// last spread contracts to ⌈û_d / lineSize⌉ (a line fetches its whole
// neighborhood). ok is false when the class is not identity-reduced, in
// which case callers should fall back to ExactLineFootprint.
func (c Class) RectFootprintLinesModel(ext []int64, lineSize int64) (float64, bool) {
	gr := c.Reduced.G
	if !gr.Equal(intmat.Identity(gr.Rows())) || lineSize <= 0 {
		return 0, false
	}
	d := len(ext)
	spread := c.Reduced.Project(c.Spread())
	extL := make([]float64, d)
	spreadL := make([]float64, d)
	for k := 0; k < d; k++ {
		extL[k] = float64(ext[k])
		spreadL[k] = float64(abs64(spread[k]))
	}
	extL[d-1] = math.Ceil(float64(ext[d-1]) / float64(lineSize))
	spreadL[d-1] = math.Ceil(spreadL[d-1] / float64(lineSize))
	total := 1.0
	for _, e := range extL {
		total *= e
	}
	for i := 0; i < d; i++ {
		term := spreadL[i]
		for j := 0; j < d; j++ {
			if j != i {
				term *= extL[j]
			}
		}
		total += term
	}
	return total, true
}

func abs64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}

func writeInt(b *strings.Builder, v int64) {
	// Compact signed varint-ish encoding; delimiters avoid ambiguity.
	// The magnitude is taken in uint64 space: -v wraps for MinInt64 (it is
	// its own negation in int64), which would alias the key of -2^63 with
	// the key of 0 prefixed by '-' and corrupt the dedup count.
	u := uint64(v)
	if v < 0 {
		b.WriteByte('-')
		u = -u
	}
	for u >= 10 {
		b.WriteByte(byte('0' + u%10))
		u /= 10
	}
	b.WriteByte(byte('0' + u))
	b.WriteByte(',')
}
