package rational

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewCanonical(t *testing.T) {
	cases := []struct {
		num, den     int64
		wantN, wantD int64
	}{
		{1, 2, 1, 2},
		{2, 4, 1, 2},
		{-2, 4, -1, 2},
		{2, -4, -1, 2},
		{-2, -4, 1, 2},
		{0, 5, 0, 1},
		{0, -5, 0, 1},
		{6, 3, 2, 1},
		{7, 1, 7, 1},
		{-9, -3, 3, 1},
	}
	for _, c := range cases {
		r := New(c.num, c.den)
		if r.Num() != c.wantN || r.Den() != c.wantD {
			t.Errorf("New(%d,%d) = %d/%d, want %d/%d", c.num, c.den, r.Num(), r.Den(), c.wantN, c.wantD)
		}
	}
}

func TestNewZeroDenPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(1,0) did not panic")
		}
	}()
	New(1, 0)
}

func TestZeroValueUsable(t *testing.T) {
	var z Rat
	if !z.IsZero() {
		t.Error("zero value not zero")
	}
	if got := z.Add(One); !got.Equal(One) {
		t.Errorf("0+1 = %v", got)
	}
	if got := z.Mul(New(3, 4)); !got.IsZero() {
		t.Errorf("0*(3/4) = %v", got)
	}
	if z.Den() != 1 {
		t.Errorf("zero value Den = %d", z.Den())
	}
	if z.String() != "0" {
		t.Errorf("zero value String = %q", z.String())
	}
}

func TestArithmetic(t *testing.T) {
	half := New(1, 2)
	third := New(1, 3)
	if got, want := half.Add(third), New(5, 6); !got.Equal(want) {
		t.Errorf("1/2+1/3 = %v, want %v", got, want)
	}
	if got, want := half.Sub(third), New(1, 6); !got.Equal(want) {
		t.Errorf("1/2-1/3 = %v, want %v", got, want)
	}
	if got, want := half.Mul(third), New(1, 6); !got.Equal(want) {
		t.Errorf("1/2*1/3 = %v, want %v", got, want)
	}
	if got, want := half.Div(third), New(3, 2); !got.Equal(want) {
		t.Errorf("(1/2)/(1/3) = %v, want %v", got, want)
	}
	if got, want := New(-7, 3).Neg(), New(7, 3); !got.Equal(want) {
		t.Errorf("-(-7/3) = %v, want %v", got, want)
	}
	if got, want := New(-7, 3).Abs(), New(7, 3); !got.Equal(want) {
		t.Errorf("|-7/3| = %v, want %v", got, want)
	}
}

func TestDivByZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Div by zero did not panic")
		}
	}()
	One.Div(Zero)
}

func TestInvOfZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Inv of zero did not panic")
		}
	}()
	Zero.Inv()
}

func TestInvSign(t *testing.T) {
	if got, want := New(-2, 3).Inv(), New(-3, 2); !got.Equal(want) {
		t.Errorf("inv(-2/3) = %v, want %v", got, want)
	}
	if got := New(-2, 3).Inv(); got.Den() <= 0 {
		t.Errorf("inv produced non-positive denominator: %v", got)
	}
}

func TestCmp(t *testing.T) {
	cases := []struct {
		a, b Rat
		want int
	}{
		{New(1, 2), New(1, 3), 1},
		{New(1, 3), New(1, 2), -1},
		{New(2, 4), New(1, 2), 0},
		{New(-1, 2), New(1, 2), -1},
		{Zero, Zero, 0},
		{New(-5, 1), New(-4, 1), -1},
	}
	for _, c := range cases {
		if got := c.a.Cmp(c.b); got != c.want {
			t.Errorf("Cmp(%v,%v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestFloorCeil(t *testing.T) {
	cases := []struct {
		r           Rat
		floor, ceil int64
	}{
		{New(7, 2), 3, 4},
		{New(-7, 2), -4, -3},
		{New(6, 2), 3, 3},
		{New(-6, 2), -3, -3},
		{Zero, 0, 0},
		{New(1, 10), 0, 1},
		{New(-1, 10), -1, 0},
	}
	for _, c := range cases {
		if got := c.r.Floor(); got != c.floor {
			t.Errorf("Floor(%v) = %d, want %d", c.r, got, c.floor)
		}
		if got := c.r.Ceil(); got != c.ceil {
			t.Errorf("Ceil(%v) = %d, want %d", c.r, got, c.ceil)
		}
	}
}

func TestIntAndIsInt(t *testing.T) {
	if !New(6, 3).IsInt() {
		t.Error("6/3 should be int")
	}
	if New(6, 4).IsInt() {
		t.Error("6/4 should not be int")
	}
	if got := New(6, 3).Int(); got != 2 {
		t.Errorf("Int(6/3) = %d", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Int of non-integer did not panic")
		}
	}()
	New(1, 2).Int()
}

func TestString(t *testing.T) {
	if got := New(3, 4).String(); got != "3/4" {
		t.Errorf("String = %q", got)
	}
	if got := New(-3, 4).String(); got != "-3/4" {
		t.Errorf("String = %q", got)
	}
	if got := FromInt(-5).String(); got != "-5" {
		t.Errorf("String = %q", got)
	}
}

func TestGCDLCM(t *testing.T) {
	cases := []struct{ a, b, gcd, lcm int64 }{
		{12, 18, 6, 36},
		{-12, 18, 6, 36},
		{0, 5, 5, 0},
		{5, 0, 5, 0},
		{0, 0, 0, 0},
		{7, 13, 1, 91},
		{4, 4, 4, 4},
	}
	for _, c := range cases {
		if got := GCD(c.a, c.b); got != c.gcd {
			t.Errorf("GCD(%d,%d) = %d, want %d", c.a, c.b, got, c.gcd)
		}
		if got := LCM(c.a, c.b); got != c.lcm {
			t.Errorf("LCM(%d,%d) = %d, want %d", c.a, c.b, got, c.lcm)
		}
	}
}

func TestExtGCD(t *testing.T) {
	cases := []struct{ a, b int64 }{
		{12, 18}, {18, 12}, {-12, 18}, {12, -18}, {-12, -18},
		{7, 13}, {0, 5}, {5, 0}, {0, 0}, {1, 1}, {240, 46},
	}
	for _, c := range cases {
		g, x, y := ExtGCD(c.a, c.b)
		if g != GCD(c.a, c.b) {
			t.Errorf("ExtGCD(%d,%d) g = %d, want %d", c.a, c.b, g, GCD(c.a, c.b))
		}
		if c.a*x+c.b*y != g {
			t.Errorf("ExtGCD(%d,%d): %d*%d + %d*%d != %d", c.a, c.b, c.a, x, c.b, y, g)
		}
	}
}

func TestOverflowPanics(t *testing.T) {
	big := FromInt(math.MaxInt64)
	for name, f := range map[string]func(){
		"add": func() { big.Add(big) },
		"mul": func() { big.Mul(big) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s overflow did not panic", name)
				}
			}()
			f()
		}()
	}
}

// Property-based tests over a bounded random domain.

type smallRat struct{ r Rat }

func genRat(v int64, w int64) Rat {
	den := w % 1000
	if den < 0 {
		den = -den
	}
	return New(v%10000, den+1)
}

func TestPropAddCommutative(t *testing.T) {
	f := func(a, b, c, d int64) bool {
		x, y := genRat(a, b), genRat(c, d)
		return x.Add(y).Equal(y.Add(x))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropMulDistributesOverAdd(t *testing.T) {
	f := func(a, b, c, d, e, g int64) bool {
		x, y, z := genRat(a, b), genRat(c, d), genRat(e, g)
		return x.Mul(y.Add(z)).Equal(x.Mul(y).Add(x.Mul(z)))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropAddAssociative(t *testing.T) {
	f := func(a, b, c, d, e, g int64) bool {
		x, y, z := genRat(a, b), genRat(c, d), genRat(e, g)
		return x.Add(y).Add(z).Equal(x.Add(y.Add(z)))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropSubInverseOfAdd(t *testing.T) {
	f := func(a, b, c, d int64) bool {
		x, y := genRat(a, b), genRat(c, d)
		return x.Add(y).Sub(y).Equal(x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropInvolution(t *testing.T) {
	f := func(a, b int64) bool {
		x := genRat(a, b)
		if x.IsZero() {
			return true
		}
		return x.Inv().Inv().Equal(x) && x.Neg().Neg().Equal(x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropCanonicalForm(t *testing.T) {
	f := func(a, b, c, d int64) bool {
		x := genRat(a, b).Mul(genRat(c, d))
		return x.Den() > 0 && GCD(x.Num(), x.Den()) == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropFloorCeilBracket(t *testing.T) {
	f := func(a, b int64) bool {
		x := genRat(a, b)
		fl, ce := FromInt(x.Floor()), FromInt(x.Ceil())
		if fl.Cmp(x) > 0 || ce.Cmp(x) < 0 {
			return false
		}
		if x.IsInt() {
			return fl.Equal(ce)
		}
		return ce.Sub(fl).Equal(One)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropExtGCDBezout(t *testing.T) {
	f := func(a, b int32) bool {
		g, x, y := ExtGCD(int64(a), int64(b))
		return int64(a)*x+int64(b)*y == g && g == GCD(int64(a), int64(b))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkAdd(b *testing.B) {
	x, y := New(355, 113), New(22, 7)
	for i := 0; i < b.N; i++ {
		_ = x.Add(y)
	}
}

func BenchmarkMul(b *testing.B) {
	x, y := New(355, 113), New(22, 7)
	for i := 0; i < b.N; i++ {
		_ = x.Mul(y)
	}
}
