// Package rational implements exact arithmetic on rational numbers with
// int64 numerators and denominators.
//
// The loop-partitioning analysis manipulates tile matrices, their inverses,
// and determinant cofactors. Floating point is unacceptable there: deciding
// whether a reference matrix is unimodular, whether an offset vector lies on
// a lattice, or whether two candidate tiles have exactly equal footprint
// sizes all require exact comparisons. math/big would work but is heap-heavy
// for the small magnitudes that occur in subscript matrices (entries are
// almost always in [-16, 16]); this package keeps everything in registers
// and panics loudly on the (never observed in practice) event of overflow.
package rational

import (
	"fmt"
	"math"
)

// Rat is an exact rational number. The zero value is 0/1, i.e. zero.
// Rats are immutable values; all methods return new values.
//
// Invariant: Den > 0 and gcd(|Num|, Den) == 1, except that the zero value
// (0, 0) is also accepted everywhere and treated as 0/1. Construct with New
// or FromInt to get canonical form.
type Rat struct {
	num int64
	den int64
}

// New returns the canonical rational num/den. It panics if den == 0.
func New(num, den int64) Rat {
	if den == 0 {
		panic("rational: zero denominator")
	}
	if den < 0 {
		num, den = checkedNeg(num), checkedNeg(den)
	}
	g := GCD(abs64(num), den)
	if g > 1 {
		num /= g
		den /= g
	}
	return Rat{num, den}
}

// FromInt returns the rational n/1.
func FromInt(n int64) Rat { return Rat{n, 1} }

// Zero and One are the usual constants.
var (
	Zero = Rat{0, 1}
	One  = Rat{1, 1}
)

// Num returns the canonical (sign-carrying) numerator.
func (r Rat) Num() int64 { return r.num }

// Den returns the canonical (positive) denominator.
func (r Rat) Den() int64 {
	if r.den == 0 {
		return 1 // zero value
	}
	return r.den
}

func (r Rat) norm() Rat {
	if r.den == 0 {
		return Rat{r.num, 1}
	}
	return r
}

// IsZero reports whether r == 0.
func (r Rat) IsZero() bool { return r.num == 0 }

// IsInt reports whether r is an integer.
func (r Rat) IsInt() bool { return r.Den() == 1 }

// Int returns the integer value of r. It panics if r is not an integer.
func (r Rat) Int() int64 {
	if !r.IsInt() {
		panic(fmt.Sprintf("rational: %s is not an integer", r))
	}
	return r.num
}

// Sign returns -1, 0, or +1 according to the sign of r.
func (r Rat) Sign() int {
	switch {
	case r.num < 0:
		return -1
	case r.num > 0:
		return 1
	default:
		return 0
	}
}

// Neg returns -r.
func (r Rat) Neg() Rat {
	r = r.norm()
	return Rat{checkedNeg(r.num), r.den}
}

// Abs returns |r|.
func (r Rat) Abs() Rat {
	if r.num < 0 {
		return r.Neg()
	}
	return r.norm()
}

// Add returns r + s.
func (r Rat) Add(s Rat) Rat {
	r, s = r.norm(), s.norm()
	// num = r.num*s.den + s.num*r.den; den = r.den*s.den, reduced.
	g := GCD(r.den, s.den)
	rd := r.den / g
	sd := s.den / g
	num := checkedAdd(checkedMul(r.num, sd), checkedMul(s.num, rd))
	den := checkedMul(checkedMul(rd, g), sd)
	return New(num, den)
}

// Sub returns r - s.
func (r Rat) Sub(s Rat) Rat { return r.Add(s.Neg()) }

// Mul returns r * s.
func (r Rat) Mul(s Rat) Rat {
	r, s = r.norm(), s.norm()
	// Cross-reduce before multiplying to keep magnitudes small.
	g1 := GCD(abs64(r.num), s.den)
	g2 := GCD(abs64(s.num), r.den)
	num := checkedMul(r.num/g1, s.num/g2)
	den := checkedMul(r.den/g2, s.den/g1)
	return Rat{num, den}
}

// Div returns r / s. It panics if s == 0.
func (r Rat) Div(s Rat) Rat {
	if s.IsZero() {
		panic("rational: division by zero")
	}
	return r.Mul(s.Inv())
}

// Inv returns 1/r. It panics if r == 0.
func (r Rat) Inv() Rat {
	if r.IsZero() {
		panic("rational: inverse of zero")
	}
	r = r.norm()
	if r.num < 0 {
		return Rat{checkedNeg(r.den), checkedNeg(r.num)}
	}
	return Rat{r.den, r.num}
}

// Cmp compares r and s, returning -1, 0, or +1.
func (r Rat) Cmp(s Rat) int {
	return r.Sub(s).Sign()
}

// Equal reports whether r == s.
func (r Rat) Equal(s Rat) bool { return r.Cmp(s) == 0 }

// Less reports whether r < s.
func (r Rat) Less(s Rat) bool { return r.Cmp(s) < 0 }

// Float returns the nearest float64 to r.
func (r Rat) Float() float64 {
	return float64(r.num) / float64(r.Den())
}

// Floor returns the greatest integer <= r.
func (r Rat) Floor() int64 {
	r = r.norm()
	q := r.num / r.den
	if r.num%r.den != 0 && r.num < 0 {
		q--
	}
	return q
}

// Ceil returns the least integer >= r.
func (r Rat) Ceil() int64 {
	r = r.norm()
	q := r.num / r.den
	if r.num%r.den != 0 && r.num > 0 {
		q++
	}
	return q
}

// String renders r as "n" or "n/d".
func (r Rat) String() string {
	if r.Den() == 1 {
		return fmt.Sprintf("%d", r.num)
	}
	return fmt.Sprintf("%d/%d", r.num, r.den)
}

// GCD returns the greatest common divisor of a and b, treating negatives by
// absolute value. GCD(0, 0) == 0.
func GCD(a, b int64) int64 {
	a, b = abs64(a), abs64(b)
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// LCM returns the least common multiple of a and b; LCM with 0 is 0.
func LCM(a, b int64) int64 {
	if a == 0 || b == 0 {
		return 0
	}
	return abs64(checkedMul(a/GCD(a, b), b))
}

// ExtGCD returns (g, x, y) such that a*x + b*y == g == gcd(a, b).
// Signs follow the classical extended Euclid recurrence; g >= 0 unless
// both inputs are zero (then g == 0).
func ExtGCD(a, b int64) (g, x, y int64) {
	if b == 0 {
		switch {
		case a < 0:
			return -a, -1, 0
		case a > 0:
			return a, 1, 0
		default:
			return 0, 0, 0
		}
	}
	g, x1, y1 := ExtGCD(b, a%b)
	return g, y1, x1 - (a/b)*y1
}

func abs64(a int64) int64 {
	if a < 0 {
		if a == math.MinInt64 {
			panic("rational: int64 overflow in abs")
		}
		return -a
	}
	return a
}

func checkedNeg(a int64) int64 {
	if a == math.MinInt64 {
		panic("rational: int64 overflow in negation")
	}
	return -a
}

func checkedAdd(a, b int64) int64 {
	s := a + b
	if (a > 0 && b > 0 && s <= 0) || (a < 0 && b < 0 && s >= 0) {
		panic("rational: int64 overflow in addition")
	}
	return s
}

func checkedMul(a, b int64) int64 {
	if a == 0 || b == 0 {
		return 0
	}
	p := a * b
	if p/b != a || (a == math.MinInt64 && b == -1) || (b == math.MinInt64 && a == -1) {
		panic("rational: int64 overflow in multiplication")
	}
	return p
}

// CheckedMulInt exposes overflow-checked int64 multiplication for callers
// that accumulate products of tile extents.
func CheckedMulInt(a, b int64) int64 { return checkedMul(a, b) }

// CheckedAddInt exposes overflow-checked int64 addition.
func CheckedAddInt(a, b int64) int64 { return checkedAdd(a, b) }
