package loopir

// MemRef is one concrete memory reference produced by replaying an
// iteration: the array, the integer index tuple, and the access type.
type MemRef struct {
	Array  string
	Index  []int64
	Write  bool
	Atomic bool
}

// TraceIteration replays the references of the loop body for one concrete
// iteration (env binds every loop variable) in program order: for each
// statement, RHS reads left to right, then the LHS write (with an extra
// synchronizing read first for atomic accumulates).
func (n *Nest) TraceIteration(env map[string]int64) []MemRef {
	var out []MemRef
	evalRef := func(r Ref, write, atomic bool) MemRef {
		idx := make([]int64, len(r.Subs))
		for k, s := range r.Subs {
			idx[k] = s.Eval(env)
		}
		return MemRef{Array: r.Array, Index: idx, Write: write, Atomic: atomic}
	}
	for _, s := range n.Body {
		for _, r := range refsOf(s.RHS) {
			out = append(out, evalRef(r, false, false))
		}
		if s.Atomic {
			out = append(out, evalRef(s.LHS, false, true))
		}
		out = append(out, evalRef(s.LHS, true, s.Atomic))
	}
	return out
}

// ForEachIteration enumerates every point of the doall iteration space
// (sequential loops excluded) in lexicographic order, invoking fn with an
// environment binding the doall variables. Returning false from fn stops
// the walk. extra, if non-nil, supplies bindings for sequential-loop
// variables and is merged into each environment.
func (n *Nest) ForEachIteration(extra map[string]int64, fn func(env map[string]int64) bool) {
	loops := n.DoallLoops()
	idx := make([]int64, len(loops))
	for k, l := range loops {
		idx[k] = l.Lo
	}
	for {
		env := make(map[string]int64, len(loops)+len(extra))
		for v, x := range extra {
			env[v] = x
		}
		for k, l := range loops {
			env[l.Var] = idx[k]
		}
		if !fn(env) {
			return
		}
		// Advance odometer.
		k := len(loops) - 1
		for k >= 0 {
			idx[k]++
			if idx[k] <= loops[k].Hi {
				break
			}
			idx[k] = loops[k].Lo
			k--
		}
		if k < 0 {
			return
		}
	}
}

// IterationCount returns the number of points in the doall iteration space.
func (n *Nest) IterationCount() int64 {
	total := int64(1)
	for _, l := range n.DoallLoops() {
		total *= l.Extent()
	}
	return total
}
