package loopir

import (
	"fmt"
	"strings"
)

// Expr is the right-hand side expression tree of a statement. The analysis
// only needs the references it contains; the interpreter and executor also
// evaluate it over concrete array contents.
type Expr interface {
	exprNode()
}

// RefExpr is an array read appearing in an expression.
type RefExpr struct{ Ref Ref }

// ConstExpr is an integer literal.
type ConstExpr struct{ Value int64 }

// VarExpr is a loop-variable use as a value (e.g. `A[i,j] = i + j`).
type VarExpr struct{ Name string }

// BinExpr is a binary arithmetic operation.
type BinExpr struct {
	Op          byte // '+', '-', '*'
	Left, Right Expr
}

func (RefExpr) exprNode()   {}
func (ConstExpr) exprNode() {}
func (VarExpr) exprNode()   {}
func (BinExpr) exprNode()   {}

// refsOf collects references in evaluation (left-to-right) order.
func refsOf(e Expr) []Ref {
	var out []Ref
	var walk func(Expr)
	walk = func(e Expr) {
		switch t := e.(type) {
		case RefExpr:
			out = append(out, t.Ref)
		case BinExpr:
			walk(t.Left)
			walk(t.Right)
		}
	}
	walk(e)
	return out
}

func exprString(e Expr) string {
	switch t := e.(type) {
	case RefExpr:
		return t.Ref.String()
	case ConstExpr:
		return fmt.Sprintf("%d", t.Value)
	case VarExpr:
		return t.Name
	case BinExpr:
		l, r := exprString(t.Left), exprString(t.Right)
		if t.Op == '*' {
			if lb, ok := t.Left.(BinExpr); ok && lb.Op != '*' {
				l = "(" + l + ")"
			}
			if rb, ok := t.Right.(BinExpr); ok && rb.Op != '*' {
				r = "(" + r + ")"
			}
		}
		return fmt.Sprintf("%s %c %s", l, t.Op, r)
	default:
		return "?"
	}
}

// Sum builds a left-associated sum of expressions; Sum() is 0.
func Sum(es ...Expr) Expr {
	if len(es) == 0 {
		return ConstExpr{0}
	}
	e := es[0]
	for _, f := range es[1:] {
		e = BinExpr{Op: '+', Left: e, Right: f}
	}
	return e
}

// normalizeSpaces is a test helper exposed for golden comparisons.
func normalizeSpaces(s string) string {
	return strings.Join(strings.Fields(s), " ")
}
