package loopir

import (
	"fmt"
)

// Parse parses a loop-nest program. Named constants appearing in loop
// bounds (e.g. `doall (i, 1, N)`) are resolved against params; an unknown
// name is an error. The resulting nest is validated.
func Parse(src string, params map[string]int64) (*Nest, error) {
	toks, err := lexAll(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, params: params}
	nest, err := p.parseNest()
	if err != nil {
		return nil, err
	}
	if err := nest.Validate(); err != nil {
		return nil, err
	}
	return nest, nil
}

// MustParse is Parse that panics on error, for tests and examples.
func MustParse(src string, params map[string]int64) *Nest {
	n, err := Parse(src, params)
	if err != nil {
		panic(err)
	}
	return n
}

type parser struct {
	toks   []token
	pos    int
	params map[string]int64
}

func (p *parser) cur() token { return p.toks[p.pos] }
func (p *parser) advance()   { p.pos++ }
func (p *parser) at(k tokenKind) bool {
	return p.cur().kind == k
}

func (p *parser) expect(k tokenKind) (token, error) {
	t := p.cur()
	if t.kind != k {
		return t, fmt.Errorf("%d:%d: expected %s, found %s %q", t.line, t.col, k, t.kind, t.text)
	}
	p.advance()
	return t, nil
}

func (p *parser) errorf(format string, args ...any) error {
	t := p.cur()
	return fmt.Errorf("%d:%d: %s", t.line, t.col, fmt.Sprintf(format, args...))
}

// parseNest parses the loop headers, the body, and the matching end
// keywords.
func (p *parser) parseNest() (*Nest, error) {
	var loops []Loop
	for isKeyword(p.cur(), "doall") || isKeyword(p.cur(), "doseq") {
		l, err := p.parseLoopHeader()
		if err != nil {
			return nil, err
		}
		loops = append(loops, l)
	}
	if len(loops) == 0 {
		return nil, p.errorf("expected doall or doseq")
	}
	var body []Stmt
	for !isKeyword(p.cur(), "enddoall") && !isKeyword(p.cur(), "enddoseq") {
		if p.at(tokEOF) {
			return nil, p.errorf("unexpected end of input inside loop body")
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		body = append(body, s)
	}
	// Match the end keywords innermost-out.
	for k := len(loops) - 1; k >= 0; k-- {
		want := "enddoall"
		if loops[k].Kind == Doseq {
			want = "enddoseq"
		}
		if !isKeyword(p.cur(), want) {
			return nil, p.errorf("expected %s to close %s (%s)", want, loops[k].Kind, loops[k].Var)
		}
		p.advance()
	}
	if !p.at(tokEOF) {
		return nil, p.errorf("trailing input after loop nest")
	}
	return &Nest{Loops: loops, Body: body}, nil
}

func (p *parser) parseLoopHeader() (Loop, error) {
	kind := Doall
	if isKeyword(p.cur(), "doseq") {
		kind = Doseq
	}
	p.advance()
	if _, err := p.expect(tokLParen); err != nil {
		return Loop{}, err
	}
	v, err := p.expect(tokIdent)
	if err != nil {
		return Loop{}, err
	}
	if _, err := p.expect(tokComma); err != nil {
		return Loop{}, err
	}
	lo, err := p.parseBound()
	if err != nil {
		return Loop{}, err
	}
	if _, err := p.expect(tokComma); err != nil {
		return Loop{}, err
	}
	// `?NAME` keeps the upper bound symbolic instead of resolving it
	// against params: the nest's extent is unknown until run time.
	if p.at(tokQuestion) {
		p.advance()
		name, err := p.expect(tokIdent)
		if err != nil {
			return Loop{}, err
		}
		if _, err := p.expect(tokRParen); err != nil {
			return Loop{}, err
		}
		return Loop{Kind: kind, Var: v.text, Lo: lo, Hi: lo, SymHi: name.text}, nil
	}
	hi, err := p.parseBound()
	if err != nil {
		return Loop{}, err
	}
	if _, err := p.expect(tokRParen); err != nil {
		return Loop{}, err
	}
	return Loop{Kind: kind, Var: v.text, Lo: lo, Hi: hi}, nil
}

// parseBound parses an integer literal, a named parameter, or a negated
// form of either.
func (p *parser) parseBound() (int64, error) {
	neg := false
	if p.at(tokMinus) {
		neg = true
		p.advance()
	}
	t := p.cur()
	switch t.kind {
	case tokNumber:
		p.advance()
		v, err := parseInt(t.text)
		if err != nil {
			return 0, fmt.Errorf("%d:%d: %v", t.line, t.col, err)
		}
		if neg {
			v = -v
		}
		return v, nil
	case tokIdent:
		p.advance()
		v, ok := p.params[t.text]
		if !ok {
			return 0, fmt.Errorf("%d:%d: unknown loop-bound parameter %q", t.line, t.col, t.text)
		}
		if neg {
			v = -v
		}
		return v, nil
	default:
		return 0, fmt.Errorf("%d:%d: expected loop bound, found %s", t.line, t.col, t.kind)
	}
}

func parseInt(s string) (int64, error) {
	var v int64
	for _, r := range s {
		if r < '0' || r > '9' {
			return 0, fmt.Errorf("bad integer %q", s)
		}
		v = v*10 + int64(r-'0')
		if v < 0 {
			return 0, fmt.Errorf("integer overflow in %q", s)
		}
	}
	return v, nil
}

// parseStmt parses `[l$] Ref = Expr`.
func (p *parser) parseStmt() (Stmt, error) {
	atomic := false
	if p.at(tokAtomic) {
		atomic = true
		p.advance()
	}
	lhs, err := p.parseRef()
	if err != nil {
		return Stmt{}, err
	}
	if _, err := p.expect(tokAssign); err != nil {
		return Stmt{}, err
	}
	rhs, err := p.parseExpr()
	if err != nil {
		return Stmt{}, err
	}
	return Stmt{LHS: lhs, RHS: rhs, Atomic: atomic}, nil
}

// parseRef parses `Name[sub, sub, ...]`. The caller has ensured the
// current token is an identifier followed by '['.
func (p *parser) parseRef() (Ref, error) {
	name, err := p.expect(tokIdent)
	if err != nil {
		return Ref{}, err
	}
	if _, err := p.expect(tokLBracket); err != nil {
		return Ref{}, err
	}
	var subs []AffineExpr
	for {
		e, err := p.parseAffine()
		if err != nil {
			return Ref{}, err
		}
		subs = append(subs, e)
		if p.at(tokComma) {
			p.advance()
			continue
		}
		break
	}
	if _, err := p.expect(tokRBracket); err != nil {
		return Ref{}, err
	}
	return Ref{Array: name.text, Subs: subs}, nil
}

// parseAffine parses a subscript expression and verifies it is affine:
// sums and differences of terms, where each term is an integer, a
// variable, or integer * variable (in either order).
func (p *parser) parseAffine() (AffineExpr, error) {
	e := NewAffine(0)
	sign := int64(1)
	// Leading sign.
	for p.at(tokPlus) || p.at(tokMinus) {
		if p.at(tokMinus) {
			sign = -sign
		}
		p.advance()
	}
	for {
		term, err := p.parseAffineTerm()
		if err != nil {
			return AffineExpr{}, err
		}
		e = e.Add(term.ScaleBy(sign))
		if p.at(tokPlus) {
			sign = 1
			p.advance()
		} else if p.at(tokMinus) {
			sign = -1
			p.advance()
		} else {
			return e, nil
		}
	}
}

// parseAffineTerm parses n, v, n*v, or v*n.
func (p *parser) parseAffineTerm() (AffineExpr, error) {
	t := p.cur()
	switch t.kind {
	case tokNumber:
		p.advance()
		n, err := parseInt(t.text)
		if err != nil {
			return AffineExpr{}, fmt.Errorf("%d:%d: %v", t.line, t.col, err)
		}
		if p.at(tokStar) {
			p.advance()
			v, err := p.expect(tokIdent)
			if err != nil {
				return AffineExpr{}, err
			}
			return NewAffine(0).AddTerm(v.text, n), nil
		}
		return NewAffine(n), nil
	case tokIdent:
		p.advance()
		if p.at(tokStar) {
			p.advance()
			if p.at(tokIdent) {
				bad := p.cur()
				return AffineExpr{}, fmt.Errorf("%d:%d: subscripts must be affine: cannot multiply variables %q and %q", bad.line, bad.col, t.text, bad.text)
			}
			nt, err := p.expect(tokNumber)
			if err != nil {
				return AffineExpr{}, err
			}
			n, err := parseInt(nt.text)
			if err != nil {
				return AffineExpr{}, fmt.Errorf("%d:%d: %v", nt.line, nt.col, err)
			}
			return NewAffine(0).AddTerm(t.text, n), nil
		}
		return NewAffine(0).AddTerm(t.text, 1), nil
	default:
		return AffineExpr{}, fmt.Errorf("%d:%d: subscripts must be affine: expected number or variable, found %s", t.line, t.col, t.kind)
	}
}

// parseExpr parses the RHS with standard precedence: '*' binds tighter
// than '+'/'-'.
func (p *parser) parseExpr() (Expr, error) {
	left, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for p.at(tokPlus) || p.at(tokMinus) {
		op := byte('+')
		if p.at(tokMinus) {
			op = '-'
		}
		p.advance()
		right, err := p.parseMul()
		if err != nil {
			return nil, err
		}
		left = BinExpr{Op: op, Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parseMul() (Expr, error) {
	left, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for p.at(tokStar) {
		p.advance()
		right, err := p.parsePrimary()
		if err != nil {
			return nil, err
		}
		left = BinExpr{Op: '*', Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.cur()
	switch t.kind {
	case tokNumber:
		p.advance()
		v, err := parseInt(t.text)
		if err != nil {
			return nil, fmt.Errorf("%d:%d: %v", t.line, t.col, err)
		}
		return ConstExpr{Value: v}, nil
	case tokMinus:
		p.advance()
		e, err := p.parsePrimary()
		if err != nil {
			return nil, err
		}
		return BinExpr{Op: '-', Left: ConstExpr{0}, Right: e}, nil
	case tokLParen:
		p.advance()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		return e, nil
	case tokIdent:
		// Array reference if followed by '[', else variable use.
		if p.toks[p.pos+1].kind == tokLBracket {
			r, err := p.parseRef()
			if err != nil {
				return nil, err
			}
			return RefExpr{Ref: r}, nil
		}
		p.advance()
		return VarExpr{Name: t.text}, nil
	default:
		return nil, fmt.Errorf("%d:%d: expected expression, found %s", t.line, t.col, t.kind)
	}
}
