package loopir

import (
	"testing"
	"testing/quick"
)

func TestAffineExprOps(t *testing.T) {
	e := NewAffine(2).AddTerm("i", 1).AddTerm("j", -3)
	f := NewAffine(-2).AddTerm("i", 1).AddTerm("k", 5)
	sum := e.Add(f)
	if sum.Const != 0 || sum.Coef["i"] != 2 || sum.Coef["j"] != -3 || sum.Coef["k"] != 5 {
		t.Fatalf("sum = %+v", sum)
	}
	neg := e.Neg()
	if neg.Const != -2 || neg.Coef["i"] != -1 || neg.Coef["j"] != 3 {
		t.Fatalf("neg = %+v", neg)
	}
	sc := e.ScaleBy(0)
	if !sc.IsConst() || sc.Const != 0 {
		t.Fatalf("scale0 = %+v", sc)
	}
	// Cancellation removes the entry.
	cz := NewAffine(0).AddTerm("i", 2).AddTerm("i", -2)
	if len(cz.Coef) != 0 {
		t.Fatalf("cancelled coef map = %+v", cz.Coef)
	}
}

func TestAffineExprImmutability(t *testing.T) {
	e := NewAffine(1).AddTerm("i", 1)
	_ = e.Add(NewAffine(0).AddTerm("i", 7))
	_ = e.Neg()
	_ = e.ScaleBy(9)
	if e.Const != 1 || e.Coef["i"] != 1 {
		t.Fatalf("receiver mutated: %+v", e)
	}
}

func TestAffineEval(t *testing.T) {
	e := NewAffine(4).AddTerm("i", 2).AddTerm("j", -1)
	if got := e.Eval(map[string]int64{"i": 3, "j": 5}); got != 5 {
		t.Fatalf("eval = %d", got)
	}
}

func TestAffineEvalUnboundPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unbound eval did not panic")
		}
	}()
	NewAffine(0).AddTerm("i", 1).Eval(nil)
}

func TestAffineString(t *testing.T) {
	cases := []struct {
		e    AffineExpr
		want string
	}{
		{NewAffine(0), "0"},
		{NewAffine(-3), "-3"},
		{NewAffine(0).AddTerm("i", 1), "i"},
		{NewAffine(0).AddTerm("i", -1), "-i"},
		{NewAffine(2).AddTerm("i", 1), "i+2"},
		{NewAffine(-1).AddTerm("i", 1).AddTerm("j", 2), "i+2*j-1"},
		{NewAffine(0).AddTerm("j", -2).AddTerm("i", 1), "i-2*j"},
	}
	for _, c := range cases {
		if got := c.e.String(); got != c.want {
			t.Errorf("String(%+v) = %q, want %q", c.e, got, c.want)
		}
	}
}

func TestRefAffineUnknownVar(t *testing.T) {
	r := Ref{Array: "A", Subs: []AffineExpr{NewAffine(0).AddTerm("z", 1)}}
	if _, _, err := r.Affine([]string{"i", "j"}); err == nil {
		t.Fatal("expected error for unknown variable")
	}
}

func TestAccessesOrderingAndAtomic(t *testing.T) {
	n := MustParse(`
doall (i, 1, 4)
  doall (k, 1, 4)
    l$C[i] = C[i] + A[i,k]
  enddoall
enddoall`, nil)
	acc := n.Accesses()
	// RHS reads C, A; then atomic read of C; then write of C.
	if len(acc) != 4 {
		t.Fatalf("accesses = %d", len(acc))
	}
	if acc[0].Ref.Array != "C" || acc[0].Write {
		t.Fatalf("acc[0] = %+v", acc[0])
	}
	if acc[1].Ref.Array != "A" || acc[1].Write {
		t.Fatalf("acc[1] = %+v", acc[1])
	}
	if acc[2].Ref.Array != "C" || acc[2].Write || !acc[2].Atomic {
		t.Fatalf("acc[2] = %+v", acc[2])
	}
	if acc[3].Ref.Array != "C" || !acc[3].Write || !acc[3].Atomic {
		t.Fatalf("acc[3] = %+v", acc[3])
	}
}

func TestArrays(t *testing.T) {
	n := MustParse(`
doall (i, 1, 4)
  A[i] = B[i] + C[i] + B[i+1]
enddoall`, nil)
	got := n.Arrays()
	want := []string{"A", "B", "C"}
	if len(got) != len(want) {
		t.Fatalf("arrays = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("arrays = %v", got)
		}
	}
}

func TestTraceIteration(t *testing.T) {
	n := MustParse(`
doall (i, 1, 4)
  doall (j, 1, 4)
    A[i,j] = B[i+j, i-j-1] + B[i+j+4, i-j+3]
  enddoall
enddoall`, nil)
	tr := n.TraceIteration(map[string]int64{"i": 2, "j": 3})
	if len(tr) != 3 {
		t.Fatalf("trace = %v", tr)
	}
	if tr[0].Array != "B" || tr[0].Index[0] != 5 || tr[0].Index[1] != -2 {
		t.Fatalf("tr[0] = %+v", tr[0])
	}
	if tr[1].Index[0] != 9 || tr[1].Index[1] != 2 {
		t.Fatalf("tr[1] = %+v", tr[1])
	}
	if !tr[2].Write || tr[2].Array != "A" || tr[2].Index[0] != 2 || tr[2].Index[1] != 3 {
		t.Fatalf("tr[2] = %+v", tr[2])
	}
}

func TestForEachIteration(t *testing.T) {
	n := MustParse(`
doall (i, 1, 3)
  doall (j, 5, 6)
    A[i,j] = 0
  enddoall
enddoall`, nil)
	var pts [][2]int64
	n.ForEachIteration(nil, func(env map[string]int64) bool {
		pts = append(pts, [2]int64{env["i"], env["j"]})
		return true
	})
	if int64(len(pts)) != n.IterationCount() || len(pts) != 6 {
		t.Fatalf("iterated %d points", len(pts))
	}
	if pts[0] != [2]int64{1, 5} || pts[1] != [2]int64{1, 6} || pts[5] != [2]int64{3, 6} {
		t.Fatalf("pts = %v", pts)
	}
}

func TestForEachIterationEarlyStop(t *testing.T) {
	n := MustParse(`doall (i, 1, 100) A[i] = 0 enddoall`, nil)
	count := 0
	n.ForEachIteration(nil, func(env map[string]int64) bool {
		count++
		return count < 5
	})
	if count != 5 {
		t.Fatalf("count = %d", count)
	}
}

func TestForEachIterationExtraEnv(t *testing.T) {
	n := MustParse(`
doseq (t, 1, 2)
  doall (i, 1, 2)
    A[i] = B[i]
  enddoall
enddoseq`, nil)
	n.ForEachIteration(map[string]int64{"t": 7}, func(env map[string]int64) bool {
		if env["t"] != 7 {
			t.Fatalf("extra binding lost: %v", env)
		}
		return true
	})
}

func TestLoopExtent(t *testing.T) {
	if (Loop{Lo: 101, Hi: 200}).Extent() != 100 {
		t.Fatal("extent wrong")
	}
	if (Loop{Lo: 5, Hi: 5}).Extent() != 1 {
		t.Fatal("singleton extent wrong")
	}
}

func TestPropAffineAddCommutes(t *testing.T) {
	f := func(a, b, ci, cj, di, dj int8) bool {
		e := NewAffine(int64(a)).AddTerm("i", int64(ci)).AddTerm("j", int64(cj))
		g := NewAffine(int64(b)).AddTerm("i", int64(di)).AddTerm("j", int64(dj))
		env := map[string]int64{"i": 3, "j": -2}
		return e.Add(g).Eval(env) == g.Add(e).Eval(env)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropAffineEvalLinear(t *testing.T) {
	f := func(c, ci int8, x, y int16) bool {
		e := NewAffine(int64(c)).AddTerm("i", int64(ci))
		ex := e.Eval(map[string]int64{"i": int64(x)})
		ey := e.Eval(map[string]int64{"i": int64(y)})
		// e(x) − e(y) == ci·(x−y)
		return ex-ey == int64(ci)*(int64(x)-int64(y))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkParseExample10(b *testing.B) {
	src := `
doall (i, 1, 100)
  doall (j, 1, 100)
    A[i,j] = B[i+j,i-j] + B[i+j+4,i-j+2]
            + C[i,2*i,i+2*j-1] + C[i+1,2*i+2,i+2*j+1] + C[i,2*i,i+2*j+1]
  enddoall
enddoall`
	for i := 0; i < b.N; i++ {
		if _, err := Parse(src, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTraceIteration(b *testing.B) {
	n := MustParse(`
doall (i, 1, 4)
  doall (j, 1, 4)
    A[i,j] = B[i+j, i-j-1] + B[i+j+4, i-j+3]
  enddoall
enddoall`, nil)
	env := map[string]int64{"i": 2, "j": 3}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = n.TraceIteration(env)
	}
}
