package loopir

import (
	"strings"
	"testing"
)

func TestParseExample2(t *testing.T) {
	src := `
doall (i, 101, 200)
  doall (j, 1, 100)
    A[i,j] = B[i+j, i-j-1] + B[i+j+4, i-j+3]
  enddoall
enddoall
`
	n, err := Parse(src, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(n.Loops) != 2 {
		t.Fatalf("loops = %d", len(n.Loops))
	}
	if n.Loops[0].Var != "i" || n.Loops[0].Lo != 101 || n.Loops[0].Hi != 200 {
		t.Fatalf("loop 0 = %+v", n.Loops[0])
	}
	if n.Loops[1].Kind != Doall {
		t.Fatal("loop 1 should be doall")
	}
	if len(n.Body) != 1 {
		t.Fatalf("body = %d stmts", len(n.Body))
	}
	s := n.Body[0]
	if s.LHS.Array != "A" || s.Atomic {
		t.Fatalf("LHS = %+v", s.LHS)
	}
	refs := refsOf(s.RHS)
	if len(refs) != 2 || refs[0].Array != "B" || refs[1].Array != "B" {
		t.Fatalf("RHS refs = %v", refs)
	}
	// Check affine extraction of B[i+j, i-j-1].
	g, a, err := refs[0].Affine([]string{"i", "j"})
	if err != nil {
		t.Fatal(err)
	}
	if g.At(0, 0) != 1 || g.At(0, 1) != 1 || g.At(1, 0) != 1 || g.At(1, 1) != -1 {
		t.Fatalf("G = %v", g)
	}
	if a[0] != 0 || a[1] != -1 {
		t.Fatalf("a = %v", a)
	}
}

func TestParseParams(t *testing.T) {
	n, err := Parse(`
doall (i, 1, N)
  A[i] = A[i] + 1
enddoall`, map[string]int64{"N": 64})
	if err != nil {
		t.Fatal(err)
	}
	if n.Loops[0].Hi != 64 {
		t.Fatalf("Hi = %d", n.Loops[0].Hi)
	}
}

func TestParseUnknownParam(t *testing.T) {
	_, err := Parse(`doall (i, 1, N) A[i] = 0 enddoall`, nil)
	if err == nil || !strings.Contains(err.Error(), "unknown loop-bound parameter") {
		t.Fatalf("err = %v", err)
	}
}

func TestParseDoseq(t *testing.T) {
	src := `
doseq (t, 1, 10)
  doall (i, 1, 8)
    A[i] = B[i] + B[i+1]
  enddoall
enddoseq
`
	n, err := Parse(src, nil)
	if err != nil {
		t.Fatal(err)
	}
	if n.Loops[0].Kind != Doseq || n.Loops[1].Kind != Doall {
		t.Fatalf("loops = %+v", n.Loops)
	}
	if len(n.SeqLoops()) != 1 || len(n.DoallLoops()) != 1 {
		t.Fatal("loop classification wrong")
	}
}

func TestParseDoseqInsideDoallRejected(t *testing.T) {
	src := `
doall (i, 1, 8)
  doseq (t, 1, 10)
    A[i] = B[i]
  enddoseq
enddoall
`
	if _, err := Parse(src, nil); err == nil {
		t.Fatal("doseq inside doall should be rejected")
	}
}

func TestParseAtomicMarker(t *testing.T) {
	for _, marker := range []string{"l$", "1$"} {
		src := `
doall (i, 1, 4)
  doall (k, 1, 4)
    ` + marker + `C[i] = C[i] + A[i,k]
  enddoall
enddoall
`
		n, err := Parse(src, nil)
		if err != nil {
			t.Fatalf("marker %q: %v", marker, err)
		}
		if !n.Body[0].Atomic {
			t.Fatalf("marker %q: statement not atomic", marker)
		}
	}
}

func TestParseScaledSubscripts(t *testing.T) {
	src := `
doall (i, 1, 4)
  doall (j, 1, 4)
    A[2*i, j*3, i+2*j-1] = B[i, j]
  enddoall
enddoall
`
	n, err := Parse(src, nil)
	if err != nil {
		t.Fatal(err)
	}
	g, a, err := n.Body[0].LHS.Affine([]string{"i", "j"})
	if err != nil {
		t.Fatal(err)
	}
	want := [][]int64{{2, 0, 1}, {0, 3, 2}}
	for r := range want {
		for c := range want[r] {
			if g.At(r, c) != want[r][c] {
				t.Fatalf("G = %v", g)
			}
		}
	}
	if a[0] != 0 || a[1] != 0 || a[2] != -1 {
		t.Fatalf("a = %v", a)
	}
}

func TestParseNonAffineSubscriptRejected(t *testing.T) {
	bad := []string{
		`doall (i, 1, 4) A[i*i] = 0 enddoall`,
		`doall (i, 1, 4) A[i*j*2] = 0 enddoall`,
	}
	for _, src := range bad {
		if _, err := Parse(src, nil); err == nil {
			t.Errorf("accepted non-affine subscript: %s", src)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, src string
	}{
		{"missing end", `doall (i, 1, 4) A[i] = 0`},
		{"wrong end", `doseq (t, 1, 4) doall (i, 1, 4) A[i] = 0 enddoseq enddoall`},
		{"empty body", `doall (i, 1, 4) enddoall`},
		{"no loop", `A[1] = 0`},
		{"dup var", `doall (i, 1, 4) doall (i, 1, 4) A[i] = 0 enddoall enddoall`},
		{"unknown subscript var", `doall (i, 1, 4) A[q] = 0 enddoall`},
		{"empty range", `doall (i, 4, 1) A[i] = 0 enddoall`},
		{"bad char", `doall (i, 1, 4) A[i] = 0 ! enddoall`},
		{"trailing", `doall (i, 1, 4) A[i] = 0 enddoall enddoall`},
		{"missing paren", `doall i, 1, 4) A[i] = 0 enddoall`},
		{"bad bound", `doall (i, 1, [) A[i] = 0 enddoall`},
	}
	for _, c := range cases {
		if _, err := Parse(c.src, nil); err == nil {
			t.Errorf("%s: parse succeeded", c.name)
		}
	}
}

func TestParseComments(t *testing.T) {
	src := `
# Example with both comment styles.
doall (i, 1, 4) // trailing comment
  A[i] = B[i] # another
enddoall
`
	if _, err := Parse(src, nil); err != nil {
		t.Fatal(err)
	}
}

func TestParseNegativeBound(t *testing.T) {
	n, err := Parse(`doall (i, -3, 3) A[i] = 0 enddoall`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if n.Loops[0].Lo != -3 {
		t.Fatalf("Lo = %d", n.Loops[0].Lo)
	}
	if n.Loops[0].Extent() != 7 {
		t.Fatalf("Extent = %d", n.Loops[0].Extent())
	}
}

func TestParseRHSPrecedence(t *testing.T) {
	n, err := Parse(`
doall (i, 1, 4)
  A[i] = B[i] + C[i] * D[i]
enddoall`, nil)
	if err != nil {
		t.Fatal(err)
	}
	top, ok := n.Body[0].RHS.(BinExpr)
	if !ok || top.Op != '+' {
		t.Fatalf("top = %#v", n.Body[0].RHS)
	}
	if inner, ok := top.Right.(BinExpr); !ok || inner.Op != '*' {
		t.Fatalf("right = %#v", top.Right)
	}
}

func TestParseParenthesizedRHS(t *testing.T) {
	n, err := Parse(`
doall (i, 1, 4)
  A[i] = (B[i] + C[i]) * 2
enddoall`, nil)
	if err != nil {
		t.Fatal(err)
	}
	top, ok := n.Body[0].RHS.(BinExpr)
	if !ok || top.Op != '*' {
		t.Fatalf("top = %#v", n.Body[0].RHS)
	}
}

func TestParseUnaryMinusRHS(t *testing.T) {
	if _, err := Parse(`doall (i, 1, 4) A[i] = -B[i] enddoall`, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMustParsePanicsOnError(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustParse did not panic")
		}
	}()
	MustParse(`garbage`, nil)
}

func TestStringRoundTrip(t *testing.T) {
	src := `
doseq (t, 1, 3)
  doall (i, 1, 4)
    l$A[i,2*i] = A[i,2*i] + B[i+1,i-1]
  enddoall
enddoseq
`
	n := MustParse(src, nil)
	n2, err := Parse(n.String(), nil)
	if err != nil {
		t.Fatalf("re-parse of %q failed: %v", n.String(), err)
	}
	if n2.String() != n.String() {
		t.Fatalf("round trip changed:\n%s\nvs\n%s", n.String(), n2.String())
	}
}
