// Package loopir defines the intermediate representation of the perfectly
// nested parallel loops handled by the partitioning framework (Figure 1 of
// the paper), together with a parser for a small textual loop language and
// an interpreter that replays the memory references of an iteration.
//
// The program model: an optional run of outer sequential loops (doseq),
// then a run of parallel loops (doall), then a body of assignment
// statements whose array subscripts are affine functions of the loop
// indices. Subscript functions are exposed in the paper's (G, a) form via
// Ref.Affine. Fine-grain synchronizing accumulates (Appendix A's "l$"
// references) are carried through as an Atomic flag on the statement.
package loopir

import (
	"fmt"
	"sort"
	"strings"

	"looppart/internal/intmat"
)

// LoopKind distinguishes parallel from sequential loops.
type LoopKind int

const (
	// Doall iterations may execute in parallel.
	Doall LoopKind = iota
	// Doseq iterations execute in order (an outer time loop, Fig. 9).
	Doseq
)

func (k LoopKind) String() string {
	if k == Doseq {
		return "doseq"
	}
	return "doall"
}

// Loop is one level of the nest: `doall (v, lo, hi)`. Bounds are inclusive
// on both ends, matching the paper's Doall (i, l, u) notation; stride is 1
// (§2.1).
type Loop struct {
	Kind LoopKind
	Var  string
	Lo   int64
	Hi   int64
	// SymHi, when non-empty, names a symbolic upper bound (`?N` in the
	// source): the extent is unknown at planning time. Hi then holds the
	// placeholder Lo so accidental concrete consumers see a one-iteration
	// range rather than garbage; strategies that require concrete extents
	// must reject nests with symbolic loops (Nest.Symbolic).
	SymHi string
}

// Extent returns the number of iterations of the loop (hi − lo + 1).
func (l Loop) Extent() int64 { return l.Hi - l.Lo + 1 }

// Nest is a perfect loop nest with a flat body.
type Nest struct {
	Loops []Loop
	Body  []Stmt
}

// Stmt is an assignment `lhs = rhs`, optionally an atomic accumulate
// (`l$lhs = lhs + …`, Appendix A).
type Stmt struct {
	LHS    Ref
	RHS    Expr
	Atomic bool
}

// Ref is one array reference A[e₁, …, e_d].
type Ref struct {
	Array string
	Subs  []AffineExpr
}

// Dim returns the dimensionality of the referenced array.
func (r Ref) Dim() int { return len(r.Subs) }

// AffineExpr is a subscript expression Σ coef·var + Const.
type AffineExpr struct {
	// Coef maps a loop variable name to its integer coefficient.
	// Variables with zero coefficient are absent.
	Coef  map[string]int64
	Const int64
}

// NewAffine returns the affine expression with the given constant term.
func NewAffine(c int64) AffineExpr {
	return AffineExpr{Coef: map[string]int64{}, Const: c}
}

// AddTerm adds coef·v to the expression.
func (e AffineExpr) AddTerm(v string, coef int64) AffineExpr {
	out := e.clone()
	out.Coef[v] += coef
	if out.Coef[v] == 0 {
		delete(out.Coef, v)
	}
	return out
}

func (e AffineExpr) clone() AffineExpr {
	c := make(map[string]int64, len(e.Coef))
	for k, v := range e.Coef {
		c[k] = v
	}
	return AffineExpr{Coef: c, Const: e.Const}
}

// Add returns e + f.
func (e AffineExpr) Add(f AffineExpr) AffineExpr {
	out := e.clone()
	out.Const += f.Const
	for v, c := range f.Coef {
		out.Coef[v] += c
		if out.Coef[v] == 0 {
			delete(out.Coef, v)
		}
	}
	return out
}

// Neg returns −e.
func (e AffineExpr) Neg() AffineExpr {
	out := e.clone()
	out.Const = -out.Const
	for v := range out.Coef {
		out.Coef[v] = -out.Coef[v]
	}
	return out
}

// ScaleBy returns k·e.
func (e AffineExpr) ScaleBy(k int64) AffineExpr {
	out := e.clone()
	out.Const *= k
	for v := range out.Coef {
		out.Coef[v] *= k
		if out.Coef[v] == 0 {
			delete(out.Coef, v)
		}
	}
	return out
}

// Eval evaluates the expression under a variable binding.
// Unbound variables with nonzero coefficient cause a panic.
func (e AffineExpr) Eval(env map[string]int64) int64 {
	v := e.Const
	for name, c := range e.Coef {
		val, ok := env[name]
		if !ok {
			panic(fmt.Sprintf("loopir: unbound loop variable %q", name))
		}
		v += c * val
	}
	return v
}

// IsConst reports whether the expression has no variable terms.
func (e AffineExpr) IsConst() bool { return len(e.Coef) == 0 }

// String renders the expression in canonical variable order.
func (e AffineExpr) String() string {
	vars := make([]string, 0, len(e.Coef))
	for v := range e.Coef {
		vars = append(vars, v)
	}
	sort.Strings(vars)
	var b strings.Builder
	first := true
	for _, v := range vars {
		c := e.Coef[v]
		switch {
		case first && c == 1:
			b.WriteString(v)
		case first && c == -1:
			b.WriteString("-" + v)
		case first:
			fmt.Fprintf(&b, "%d*%s", c, v)
		case c == 1:
			b.WriteString("+" + v)
		case c == -1:
			b.WriteString("-" + v)
		case c > 0:
			fmt.Fprintf(&b, "+%d*%s", c, v)
		default:
			fmt.Fprintf(&b, "%d*%s", c, v)
		}
		first = false
	}
	if e.Const != 0 || first {
		if !first && e.Const > 0 {
			b.WriteString("+")
		}
		fmt.Fprintf(&b, "%d", e.Const)
	}
	return b.String()
}

// String renders the reference as A[e1,e2,...].
func (r Ref) String() string {
	subs := make([]string, len(r.Subs))
	for i, s := range r.Subs {
		subs[i] = s.String()
	}
	return r.Array + "[" + strings.Join(subs, ",") + "]"
}

// Affine converts the reference to the paper's (G, a) pair with respect to
// the ordered list of loop variables: G is l×d with G[r][c] the coefficient
// of vars[r] in subscript c, and a is the constant offset vector (Eq. 1).
// Variables not in vars must not appear; an error is returned if they do.
func (r Ref) Affine(vars []string) (intmat.Mat, []int64, error) {
	index := make(map[string]int, len(vars))
	for i, v := range vars {
		index[v] = i
	}
	g := intmat.NewMat(len(vars), len(r.Subs))
	a := make([]int64, len(r.Subs))
	for c, sub := range r.Subs {
		a[c] = sub.Const
		for v, coef := range sub.Coef {
			row, ok := index[v]
			if !ok {
				return intmat.Mat{}, nil, fmt.Errorf("loopir: reference %s uses variable %q outside the doall nest", r, v)
			}
			g.Set(row, c, coef)
		}
	}
	return g, a, nil
}

// DoallVars returns the variables of the parallel loops, outermost first.
func (n *Nest) DoallVars() []string {
	var vars []string
	for _, l := range n.Loops {
		if l.Kind == Doall {
			vars = append(vars, l.Var)
		}
	}
	return vars
}

// DoallLoops returns the parallel loops, outermost first.
func (n *Nest) DoallLoops() []Loop {
	var ls []Loop
	for _, l := range n.Loops {
		if l.Kind == Doall {
			ls = append(ls, l)
		}
	}
	return ls
}

// Symbolic reports whether any loop's upper bound is symbolic (`?N`):
// the nest's extents are unknown at planning time.
func (n *Nest) Symbolic() bool {
	for _, l := range n.Loops {
		if l.SymHi != "" {
			return true
		}
	}
	return false
}

// SeqLoops returns the sequential loops, outermost first.
func (n *Nest) SeqLoops() []Loop {
	var ls []Loop
	for _, l := range n.Loops {
		if l.Kind == Doseq {
			ls = append(ls, l)
		}
	}
	return ls
}

// Access is one array reference occurrence in the body with its role.
type Access struct {
	Ref    Ref
	Write  bool
	Atomic bool // synchronizing reference (Appendix A): treated as a write
}

// Accesses lists every reference occurrence in the body, writes first
// within each statement (matching execution order read-RHS-then-write-LHS
// is immaterial to footprint analysis; the simulator replays reads before
// the write).
func (n *Nest) Accesses() []Access {
	var out []Access
	for _, s := range n.Body {
		for _, r := range refsOf(s.RHS) {
			out = append(out, Access{Ref: r, Write: false, Atomic: false})
		}
		if s.Atomic {
			// An atomic accumulate also reads its target.
			out = append(out, Access{Ref: s.LHS, Write: false, Atomic: true})
		}
		out = append(out, Access{Ref: s.LHS, Write: true, Atomic: s.Atomic})
	}
	return out
}

// Arrays returns the distinct array names referenced, sorted.
func (n *Nest) Arrays() []string {
	set := map[string]bool{}
	for _, a := range n.Accesses() {
		set[a.Ref.Array] = true
	}
	names := make([]string, 0, len(set))
	for a := range set {
		names = append(names, a)
	}
	sort.Strings(names)
	return names
}

// Validate checks structural invariants: distinct loop variables, no doseq
// nested inside doall, at least one doall, nonempty body, loop bounds
// ordered, and subscript variables drawn from the loop nest.
func (n *Nest) Validate() error {
	if len(n.Body) == 0 {
		return fmt.Errorf("loopir: empty loop body")
	}
	seen := map[string]bool{}
	sawDoall := false
	for _, l := range n.Loops {
		if seen[l.Var] {
			return fmt.Errorf("loopir: duplicate loop variable %q", l.Var)
		}
		seen[l.Var] = true
		if l.SymHi == "" && l.Hi < l.Lo {
			return fmt.Errorf("loopir: loop %s has empty range [%d,%d]", l.Var, l.Lo, l.Hi)
		}
		switch l.Kind {
		case Doall:
			sawDoall = true
		case Doseq:
			if sawDoall {
				return fmt.Errorf("loopir: doseq %q nested inside doall", l.Var)
			}
		}
	}
	if !sawDoall {
		return fmt.Errorf("loopir: nest has no doall loop")
	}
	for _, acc := range n.Accesses() {
		for _, sub := range acc.Ref.Subs {
			for v := range sub.Coef {
				if !seen[v] {
					return fmt.Errorf("loopir: reference %s uses unknown variable %q", acc.Ref, v)
				}
			}
		}
	}
	return nil
}

// String pretty-prints the nest in the source language.
func (n *Nest) String() string {
	var b strings.Builder
	for depth, l := range n.Loops {
		b.WriteString(strings.Repeat("  ", depth))
		if l.SymHi != "" {
			fmt.Fprintf(&b, "%s (%s, %d, ?%s)\n", l.Kind, l.Var, l.Lo, l.SymHi)
		} else {
			fmt.Fprintf(&b, "%s (%s, %d, %d)\n", l.Kind, l.Var, l.Lo, l.Hi)
		}
	}
	indent := strings.Repeat("  ", len(n.Loops))
	for _, s := range n.Body {
		b.WriteString(indent)
		if s.Atomic {
			b.WriteString("l$")
		}
		fmt.Fprintf(&b, "%s = %s\n", s.LHS, exprString(s.RHS))
	}
	for depth := len(n.Loops) - 1; depth >= 0; depth-- {
		b.WriteString(strings.Repeat("  ", depth))
		if n.Loops[depth].Kind == Doseq {
			b.WriteString("enddoseq\n")
		} else {
			b.WriteString("enddoall\n")
		}
	}
	return b.String()
}
