package loopir

import (
	"testing"
)

// FuzzParse exercises the lexer and parser against arbitrary inputs. The
// invariants: Parse never panics; accepted programs re-parse from their
// printed form to the same rendering (print is a fixed point).
func FuzzParse(f *testing.F) {
	seeds := []string{
		"doall (i, 1, 4) A[i] = 0 enddoall",
		"doall (i, 101, 200)\ndoall (j, 1, 100)\nA[i,j] = B[i+j,i-j-1] + B[i+j+4,i-j+3]\nenddoall\nenddoall",
		"doseq (t, 1, 3) doall (i, 1, 8) l$C[i] = C[i] + A[i,i] enddoall enddoseq",
		"doall (i, -3, 3) A[2*i, i+1] = B[i] * 2 + (C[i] - 1) enddoall",
		"doall (i, 1, 4) A[i*i] = 0 enddoall", // non-affine: must error
		"doall (i, 1, 4) A[i] = 0",            // missing end
		"doall (i, 1, N) A[i] = 0 enddoall",   // unbound parameter
		"# comment only",
		"doall(i,1,4)A[i]=B[i]enddoall",
		"doall (i, 1, 4) 1$A[i] = A[i] + 1 enddoall",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		n, err := Parse(src, map[string]int64{"N": 8, "T": 2})
		if err != nil {
			return // rejection is fine; panics are not
		}
		printed := n.String()
		n2, err := Parse(printed, nil)
		if err != nil {
			t.Fatalf("printed form rejected: %v\ninput: %q\nprinted:\n%s", err, src, printed)
		}
		if n2.String() != printed {
			t.Fatalf("print not a fixed point for %q", src)
		}
	})
}

// FuzzAffineString checks that rendered affine expressions re-parse to
// the same value.
func FuzzAffineString(f *testing.F) {
	f.Add(int64(1), int64(-2), int64(3))
	f.Add(int64(0), int64(0), int64(0))
	f.Add(int64(-1), int64(1), int64(-7))
	f.Fuzz(func(t *testing.T, ci, cj, k int64) {
		// Bound magnitudes to keep arithmetic safe.
		ci, cj, k = ci%100, cj%100, k%1000
		e := NewAffine(k).AddTerm("i", ci).AddTerm("j", cj)
		src := "doall (i, 1, 4) doall (j, 1, 4) A[" + e.String() + "] = 0 enddoall enddoall"
		n, err := Parse(src, nil)
		if err != nil {
			t.Fatalf("rendered subscript %q rejected: %v", e.String(), err)
		}
		got := n.Body[0].LHS.Subs[0]
		env := map[string]int64{"i": 3, "j": -5}
		if got.Eval(env) != e.Eval(env) {
			t.Fatalf("round-trip changed value: %q vs %q", e.String(), got.String())
		}
	})
}
