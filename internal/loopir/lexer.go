package loopir

import (
	"fmt"
	"strings"
	"unicode"
)

// The loop language follows the paper's notation:
//
//	doall (i, 101, 200)
//	  doall (j, 1, 100)
//	    A[i,j] = B[i+j, i-j-1] + B[i+j+4, i-j+3]
//	  enddoall
//	enddoall
//
// Keywords: doall, doseq, enddoall, enddoseq. Bounds may be integer
// literals or named parameters supplied to Parse; an upper bound written
// `?NAME` stays symbolic — unknown until run time — and only strategies
// that need no concrete extents (cache-oblivious bisection) can plan the
// nest. Statements are assignments; the LHS may carry the fine-grain
// synchronization marker `l$` (Appendix A). Comments run from `#` or
// `//` to end of line.

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokLParen
	tokRParen
	tokLBracket
	tokRBracket
	tokComma
	tokAssign
	tokPlus
	tokMinus
	tokStar
	tokAtomic   // the "l$" marker
	tokQuestion // the "?" symbolic-bound marker
)

func (k tokenKind) String() string {
	switch k {
	case tokEOF:
		return "end of input"
	case tokIdent:
		return "identifier"
	case tokNumber:
		return "number"
	case tokLParen:
		return "'('"
	case tokRParen:
		return "')'"
	case tokLBracket:
		return "'['"
	case tokRBracket:
		return "']'"
	case tokComma:
		return "','"
	case tokAssign:
		return "'='"
	case tokPlus:
		return "'+'"
	case tokMinus:
		return "'-'"
	case tokStar:
		return "'*'"
	case tokAtomic:
		return "'l$'"
	case tokQuestion:
		return "'?'"
	default:
		return "unknown token"
	}
}

type token struct {
	kind tokenKind
	text string
	line int
	col  int
}

type lexer struct {
	src  []rune
	pos  int
	line int
	col  int
}

func newLexer(src string) *lexer {
	return &lexer{src: []rune(src), line: 1, col: 1}
}

func (lx *lexer) errorf(line, col int, format string, args ...any) error {
	return fmt.Errorf("%d:%d: %s", line, col, fmt.Sprintf(format, args...))
}

func (lx *lexer) peek() rune {
	if lx.pos >= len(lx.src) {
		return 0
	}
	return lx.src[lx.pos]
}

func (lx *lexer) peekAt(off int) rune {
	if lx.pos+off >= len(lx.src) {
		return 0
	}
	return lx.src[lx.pos+off]
}

func (lx *lexer) advance() rune {
	r := lx.src[lx.pos]
	lx.pos++
	if r == '\n' {
		lx.line++
		lx.col = 1
	} else {
		lx.col++
	}
	return r
}

func (lx *lexer) skipSpaceAndComments() {
	for lx.pos < len(lx.src) {
		r := lx.peek()
		switch {
		case unicode.IsSpace(r):
			lx.advance()
		case r == '#':
			for lx.pos < len(lx.src) && lx.peek() != '\n' {
				lx.advance()
			}
		case r == '/' && lx.peekAt(1) == '/':
			for lx.pos < len(lx.src) && lx.peek() != '\n' {
				lx.advance()
			}
		default:
			return
		}
	}
}

func (lx *lexer) next() (token, error) {
	lx.skipSpaceAndComments()
	line, col := lx.line, lx.col
	if lx.pos >= len(lx.src) {
		return token{kind: tokEOF, line: line, col: col}, nil
	}
	r := lx.peek()
	switch {
	case r == '(':
		lx.advance()
		return token{tokLParen, "(", line, col}, nil
	case r == ')':
		lx.advance()
		return token{tokRParen, ")", line, col}, nil
	case r == '[':
		lx.advance()
		return token{tokLBracket, "[", line, col}, nil
	case r == ']':
		lx.advance()
		return token{tokRBracket, "]", line, col}, nil
	case r == ',':
		lx.advance()
		return token{tokComma, ",", line, col}, nil
	case r == '=':
		lx.advance()
		return token{tokAssign, "=", line, col}, nil
	case r == '+':
		lx.advance()
		return token{tokPlus, "+", line, col}, nil
	case r == '-':
		lx.advance()
		return token{tokMinus, "-", line, col}, nil
	case r == '*':
		lx.advance()
		return token{tokStar, "*", line, col}, nil
	case r == '?':
		lx.advance()
		return token{tokQuestion, "?", line, col}, nil
	case unicode.IsDigit(r):
		start := lx.pos
		for lx.pos < len(lx.src) && unicode.IsDigit(lx.peek()) {
			lx.advance()
		}
		// The paper writes the atomic marker as "1$" in some scans of
		// Figure 11; accept both "l$" and "1$".
		if string(lx.src[start:lx.pos]) == "1" && lx.peek() == '$' {
			lx.advance()
			return token{tokAtomic, "1$", line, col}, nil
		}
		return token{tokNumber, string(lx.src[start:lx.pos]), line, col}, nil
	case unicode.IsLetter(r) || r == '_':
		start := lx.pos
		for lx.pos < len(lx.src) && (unicode.IsLetter(lx.peek()) || unicode.IsDigit(lx.peek()) || lx.peek() == '_') {
			lx.advance()
		}
		text := string(lx.src[start:lx.pos])
		if text == "l" && lx.peek() == '$' {
			lx.advance()
			return token{tokAtomic, "l$", line, col}, nil
		}
		return token{tokIdent, text, line, col}, nil
	default:
		return token{}, lx.errorf(line, col, "unexpected character %q", r)
	}
}

// lexAll tokenizes the whole input.
func lexAll(src string) ([]token, error) {
	lx := newLexer(src)
	var toks []token
	for {
		t, err := lx.next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.kind == tokEOF {
			return toks, nil
		}
	}
}

func isKeyword(t token, kw string) bool {
	return t.kind == tokIdent && strings.EqualFold(t.text, kw)
}
