package loopir

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

// randomNest generates a random valid loop program source.
func randomNest(rng *rand.Rand) string {
	var b strings.Builder
	nSeq := rng.Intn(2)
	nPar := 1 + rng.Intn(3)
	vars := []string{}
	for s := 0; s < nSeq; s++ {
		v := fmt.Sprintf("t%d", s)
		lo := rng.Intn(3) + 1
		fmt.Fprintf(&b, "doseq (%s, %d, %d)\n", v, lo, lo+rng.Intn(3))
	}
	for p := 0; p < nPar; p++ {
		v := fmt.Sprintf("i%d", p)
		vars = append(vars, v)
		lo := rng.Intn(4)
		fmt.Fprintf(&b, "doall (%s, %d, %d)\n", v, lo, lo+1+rng.Intn(6))
	}
	nStmts := 1 + rng.Intn(3)
	arrays := []string{"A", "B", "C"}
	randSub := func() string {
		// Affine subscript over the doall variables.
		terms := []string{}
		for _, v := range vars {
			if rng.Intn(2) == 0 {
				continue
			}
			c := rng.Intn(5) - 2
			switch c {
			case 0:
				continue
			case 1:
				terms = append(terms, v)
			case -1:
				terms = append(terms, "-"+v)
			default:
				terms = append(terms, fmt.Sprintf("%d*%s", c, v))
			}
		}
		if k := rng.Intn(7) - 3; k != 0 || len(terms) == 0 {
			terms = append(terms, fmt.Sprintf("%d", k))
		}
		out := terms[0]
		for _, t := range terms[1:] {
			if strings.HasPrefix(t, "-") {
				out += t
			} else {
				out += "+" + t
			}
		}
		return out
	}
	randRef := func() string {
		arr := arrays[rng.Intn(len(arrays))]
		dims := 1 + rng.Intn(3)
		subs := make([]string, dims)
		for k := range subs {
			subs[k] = randSub()
		}
		return arr + "[" + strings.Join(subs, ",") + "]"
	}
	for s := 0; s < nStmts; s++ {
		lhs := randRef()
		nReads := 1 + rng.Intn(3)
		reads := make([]string, nReads)
		for k := range reads {
			reads[k] = randRef()
		}
		fmt.Fprintf(&b, "%s = %s\n", lhs, strings.Join(reads, " + "))
	}
	for p := 0; p < nPar; p++ {
		b.WriteString("enddoall\n")
	}
	for s := 0; s < nSeq; s++ {
		b.WriteString("enddoseq\n")
	}
	return b.String()
}

func TestRandomProgramRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(4242))
	for trial := 0; trial < 300; trial++ {
		src := randomNest(rng)
		n, err := Parse(src, nil)
		if err != nil {
			t.Fatalf("trial %d: generated program failed to parse: %v\n%s", trial, err, src)
		}
		printed := n.String()
		n2, err := Parse(printed, nil)
		if err != nil {
			t.Fatalf("trial %d: printed program failed to re-parse: %v\n%s", trial, err, printed)
		}
		if n2.String() != printed {
			t.Fatalf("trial %d: print → parse → print not a fixed point:\n%s\nvs\n%s",
				trial, printed, n2.String())
		}
		// Structural invariants survive the round trip.
		if len(n2.Loops) != len(n.Loops) || len(n2.Body) != len(n.Body) {
			t.Fatalf("trial %d: structure changed", trial)
		}
		if n.IterationCount() != n2.IterationCount() {
			t.Fatalf("trial %d: iteration count changed", trial)
		}
	}
}

func TestRandomProgramTraceStable(t *testing.T) {
	// The reference trace of an iteration is identical for the original
	// and the re-parsed program.
	rng := rand.New(rand.NewSource(777))
	for trial := 0; trial < 100; trial++ {
		src := randomNest(rng)
		n, err := Parse(src, nil)
		if err != nil {
			t.Fatal(err)
		}
		n2, err := Parse(n.String(), nil)
		if err != nil {
			t.Fatal(err)
		}
		env := map[string]int64{}
		for _, l := range n.Loops {
			env[l.Var] = l.Lo
		}
		tr1 := n.TraceIteration(env)
		tr2 := n2.TraceIteration(env)
		if len(tr1) != len(tr2) {
			t.Fatalf("trial %d: trace lengths differ", trial)
		}
		for k := range tr1 {
			if tr1[k].Array != tr2[k].Array || tr1[k].Write != tr2[k].Write {
				t.Fatalf("trial %d: trace %d differs", trial, k)
			}
			for d := range tr1[k].Index {
				if tr1[k].Index[d] != tr2[k].Index[d] {
					t.Fatalf("trial %d: trace %d index differs", trial, k)
				}
			}
		}
	}
}
