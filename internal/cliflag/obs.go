// Package cliflag holds the observability flag plumbing shared by the
// looppart, loopsim, and paperbench commands: -trace (Chrome trace-event
// JSON), -metrics (flat metrics dump, JSON or Prometheus-style text by
// file extension), and -pprof (net/http/pprof listener).
package cliflag

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"looppart/internal/telemetry"
)

// Obs carries the parsed observability flag values.
type Obs struct {
	TracePath   string
	MetricsPath string
	PprofAddr   string
}

// Register adds the observability flags to fs.
func (o *Obs) Register(fs *flag.FlagSet) {
	fs.StringVar(&o.TracePath, "trace", "", "write a Chrome trace-event JSON file (load in chrome://tracing)")
	fs.StringVar(&o.MetricsPath, "metrics", "", "write a metrics dump (.json = JSON snapshot, otherwise Prometheus-style text)")
	fs.StringVar(&o.PprofAddr, "pprof", "", "serve net/http/pprof on this address (e.g. :6060)")
}

// Enabled reports whether any flag asks for telemetry output.
func (o *Obs) Enabled() bool { return o.TracePath != "" || o.MetricsPath != "" }

// Setup starts the pprof listener if requested and, when any telemetry
// output is enabled, returns a fresh registry for the caller to install
// with telemetry.SetActive (nil when telemetry stays off).
func (o *Obs) Setup() (*telemetry.Registry, error) {
	if o.PprofAddr != "" {
		addr, err := telemetry.StartPprof(o.PprofAddr)
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(os.Stderr, "pprof: serving on http://%s/debug/pprof\n", addr)
	}
	if !o.Enabled() {
		return nil, nil
	}
	return telemetry.New(), nil
}

// Flush writes the requested output files from reg. Safe to call with a
// nil registry (writes empty but valid files if paths were given).
func (o *Obs) Flush(reg *telemetry.Registry) error {
	if o.TracePath != "" {
		f, err := os.Create(o.TracePath)
		if err != nil {
			return err
		}
		if err := reg.WriteChromeTrace(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	if o.MetricsPath != "" {
		f, err := os.Create(o.MetricsPath)
		if err != nil {
			return err
		}
		var werr error
		if strings.HasSuffix(o.MetricsPath, ".json") {
			werr = reg.WriteMetricsJSON(f)
		} else {
			werr = reg.WriteMetricsText(f)
		}
		if werr != nil {
			f.Close()
			return werr
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}
