// Package polytope implements Fourier–Motzkin elimination over systems of
// rational linear inequalities, producing nested loop bounds for the
// integer points of a polyhedron.
//
// The partitioning framework needs this for code generation on
// hyperparallelepiped tiles (§3.2): a tile of the partition L at tile
// coordinates c is {i : cⱼ ≤ (i − o)·L⁻¹ⱼ < cⱼ+1}, an intersection of 2l
// half-spaces plus the iteration-space box — exactly the input FM
// elimination turns into `for` bounds of the form
//
//	max(⌈…⌉, …) ≤ i_k ≤ min(⌊…⌋, …)
//
// with the inner bounds affine in the outer loop variables.
package polytope

import (
	"fmt"
	"strings"

	"looppart/internal/rational"
)

// Constraint is Σ Coef[k]·x_k ≤ Bound.
type Constraint struct {
	Coef  []rational.Rat
	Bound rational.Rat
}

// System is a conjunction of constraints over n variables.
type System struct {
	N    int
	Cons []Constraint
}

// NewSystem creates an empty system over n variables.
func NewSystem(n int) *System {
	if n <= 0 {
		panic("polytope: need at least one variable")
	}
	return &System{N: n}
}

// Add appends the constraint Σ coef·x ≤ bound. Coefficients beyond the
// slice are zero.
func (s *System) Add(coef []rational.Rat, bound rational.Rat) {
	c := Constraint{Coef: make([]rational.Rat, s.N), Bound: bound}
	copy(c.Coef, coef)
	s.Cons = append(s.Cons, c)
}

// AddInt is Add with integer coefficients.
func (s *System) AddInt(coef []int64, bound int64) {
	rc := make([]rational.Rat, len(coef))
	for i, v := range coef {
		rc[i] = rational.FromInt(v)
	}
	s.Add(rc, rational.FromInt(bound))
}

// Bound is one affine bound on a variable: x ≥/≤ (Const + Σ Coef[k]·x_k)
// / Div, where the sum ranges over the OUTER variables (indices below the
// bounded one) and Div > 0. For lower bounds the integer bound is the
// ceiling of the expression; for upper bounds the floor.
type Bound struct {
	Coef  []rational.Rat // length = index of the bounded variable
	Const rational.Rat
}

// Eval computes the rational value of the bound under outer values.
func (b Bound) Eval(outer []int64) rational.Rat {
	v := b.Const
	for k, c := range b.Coef {
		if c.IsZero() {
			continue
		}
		v = v.Add(c.Mul(rational.FromInt(outer[k])))
	}
	return v
}

// VarBounds carries the loop bounds of one variable.
type VarBounds struct {
	Lower []Bound // x ≥ ceil(max of these)
	Upper []Bound // x ≤ floor(min of these)
}

// LoopNest is the result of elimination: bounds for x_0 (outermost)
// through x_{n-1} (innermost), each in terms of the previous variables.
type LoopNest struct {
	N      int
	Bounds []VarBounds
	// Infeasible is true when elimination derived a contradiction
	// (0 ≤ negative): the polyhedron is empty.
	Infeasible bool
}

// Eliminate runs Fourier–Motzkin elimination, removing variables from the
// innermost (x_{n-1}) outward, and returns per-variable bounds.
func (s *System) Eliminate() *LoopNest {
	nest := &LoopNest{N: s.N, Bounds: make([]VarBounds, s.N)}
	cons := append([]Constraint(nil), s.Cons...)
	for v := s.N - 1; v >= 0; v-- {
		var lowers, uppers []Bound
		var rest []Constraint
		for _, c := range cons {
			a := c.Coef[v]
			switch a.Sign() {
			case 0:
				rest = append(rest, c)
			case 1:
				// a·x ≤ bound − Σ other → x ≤ (bound − Σ)/a.
				uppers = append(uppers, boundFrom(c, v, a))
			case -1:
				// a·x ≤ … with a<0 → x ≥ (bound − Σ)/a (divide flips).
				lowers = append(lowers, boundFrom(c, v, a))
			}
		}
		nest.Bounds[v] = VarBounds{Lower: lowers, Upper: uppers}
		// Project: every (lower, upper) pair yields a constraint on the
		// remaining variables: lower ≤ upper.
		for _, lo := range lowers {
			for _, hi := range uppers {
				c := Constraint{Coef: make([]rational.Rat, s.N)}
				// lo.Const + Σ lo.Coef·x ≤ hi.Const + Σ hi.Coef·x
				for k := 0; k < v; k++ {
					c.Coef[k] = lo.Coef[k].Sub(hi.Coef[k])
				}
				c.Bound = hi.Const.Sub(lo.Const)
				if isZeroVec(c.Coef) {
					if c.Bound.Sign() < 0 {
						nest.Infeasible = true
					}
					continue
				}
				rest = append(rest, c)
			}
		}
		cons = rest
	}
	// Any remaining variable-free constraints decide feasibility.
	for _, c := range cons {
		if isZeroVec(c.Coef) && c.Bound.Sign() < 0 {
			nest.Infeasible = true
		}
	}
	return nest
}

func boundFrom(c Constraint, v int, a rational.Rat) Bound {
	b := Bound{Coef: make([]rational.Rat, v), Const: c.Bound.Div(a)}
	for k := 0; k < v; k++ {
		if c.Coef[k].IsZero() {
			continue
		}
		b.Coef[k] = c.Coef[k].Div(a).Neg()
	}
	return b
}

func isZeroVec(v []rational.Rat) bool {
	for _, x := range v {
		if !x.IsZero() {
			return false
		}
	}
	return true
}

// Range returns the integer range [lo, hi] of variable v under concrete
// outer values; empty ranges have lo > hi.
func (n *LoopNest) Range(v int, outer []int64) (int64, int64) {
	if n.Infeasible {
		return 1, 0
	}
	vb := n.Bounds[v]
	if len(vb.Lower) == 0 || len(vb.Upper) == 0 {
		panic(fmt.Sprintf("polytope: variable %d is unbounded", v))
	}
	lo := vb.Lower[0].Eval(outer).Ceil()
	for _, b := range vb.Lower[1:] {
		if c := b.Eval(outer).Ceil(); c > lo {
			lo = c
		}
	}
	hi := vb.Upper[0].Eval(outer).Floor()
	for _, b := range vb.Upper[1:] {
		if f := b.Eval(outer).Floor(); f < hi {
			hi = f
		}
	}
	return lo, hi
}

// Points enumerates all integer points of the polyhedron in lexicographic
// order.
func (n *LoopNest) Points() [][]int64 {
	var out [][]int64
	if n.Infeasible {
		return out
	}
	x := make([]int64, n.N)
	var rec func(v int)
	rec = func(v int) {
		if v == n.N {
			out = append(out, append([]int64(nil), x...))
			return
		}
		lo, hi := n.Range(v, x[:v])
		for val := lo; val <= hi; val++ {
			x[v] = val
			rec(v + 1)
		}
	}
	rec(0)
	return out
}

// String renders the nest bounds symbolically for debugging and codegen
// comments.
func (n *LoopNest) String() string {
	var b strings.Builder
	for v := 0; v < n.N; v++ {
		vb := n.Bounds[v]
		fmt.Fprintf(&b, "x%d: max(", v)
		for i, lo := range vb.Lower {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(boundString(lo, "ceil"))
		}
		b.WriteString(") .. min(")
		for i, hi := range vb.Upper {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(boundString(hi, "floor"))
		}
		b.WriteString(")\n")
	}
	return b.String()
}

func boundString(bd Bound, round string) string {
	expr := bd.Const.String()
	for k, c := range bd.Coef {
		if c.IsZero() {
			continue
		}
		expr += fmt.Sprintf(" + %s*x%d", c, k)
	}
	return round + "(" + expr + ")"
}
