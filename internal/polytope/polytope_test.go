package polytope

import (
	"math/rand"
	"testing"

	"looppart/internal/rational"
)

func TestEliminateBox(t *testing.T) {
	// 0 ≤ x ≤ 3, 1 ≤ y ≤ 2.
	s := NewSystem(2)
	s.AddInt([]int64{1, 0}, 3)
	s.AddInt([]int64{-1, 0}, 0)
	s.AddInt([]int64{0, 1}, 2)
	s.AddInt([]int64{0, -1}, -1)
	nest := s.Eliminate()
	if nest.Infeasible {
		t.Fatal("box infeasible")
	}
	pts := nest.Points()
	if len(pts) != 8 {
		t.Fatalf("points = %d, want 8: %v", len(pts), pts)
	}
	lo, hi := nest.Range(0, nil)
	if lo != 0 || hi != 3 {
		t.Fatalf("x range = [%d,%d]", lo, hi)
	}
}

func TestEliminateTriangle(t *testing.T) {
	// x ≥ 0, y ≥ 0, x + y ≤ 3: 10 lattice points.
	s := NewSystem(2)
	s.AddInt([]int64{-1, 0}, 0)
	s.AddInt([]int64{0, -1}, 0)
	s.AddInt([]int64{1, 1}, 3)
	nest := s.Eliminate()
	pts := nest.Points()
	if len(pts) != 10 {
		t.Fatalf("points = %d: %v", len(pts), pts)
	}
	// Inner range depends on outer: at x=2, y ∈ [0,1].
	lo, hi := nest.Range(1, []int64{2})
	if lo != 0 || hi != 1 {
		t.Fatalf("y range at x=2: [%d,%d]", lo, hi)
	}
}

func TestEliminateInfeasible(t *testing.T) {
	// x ≤ 0 and x ≥ 5.
	s := NewSystem(1)
	s.AddInt([]int64{1}, 0)
	s.AddInt([]int64{-1}, -5)
	nest := s.Eliminate()
	if !nest.Infeasible && len(nest.Points()) != 0 {
		t.Fatalf("expected empty polyhedron, got %v", nest.Points())
	}
}

func TestEliminateSkewStrip(t *testing.T) {
	// 0 ≤ x − y ≤ 2, 0 ≤ x ≤ 4, 0 ≤ y ≤ 4: a diagonal band.
	s := NewSystem(2)
	s.AddInt([]int64{1, -1}, 2)
	s.AddInt([]int64{-1, 1}, 0)
	s.AddInt([]int64{1, 0}, 4)
	s.AddInt([]int64{-1, 0}, 0)
	s.AddInt([]int64{0, 1}, 4)
	s.AddInt([]int64{0, -1}, 0)
	nest := s.Eliminate()
	// Brute-force count.
	want := 0
	for x := int64(0); x <= 4; x++ {
		for y := int64(0); y <= 4; y++ {
			if d := x - y; d >= 0 && d <= 2 {
				want++
			}
		}
	}
	if got := len(nest.Points()); got != want {
		t.Fatalf("points = %d, want %d", got, want)
	}
}

func TestRationalCoefficients(t *testing.T) {
	// x/2 ≤ 3 → x ≤ 6 (ceil/floor handling of fractional bounds).
	s := NewSystem(1)
	s.Add([]rational.Rat{rational.New(1, 2)}, rational.FromInt(3))
	s.Add([]rational.Rat{rational.New(-1, 2)}, rational.FromInt(0))
	nest := s.Eliminate()
	lo, hi := nest.Range(0, nil)
	if lo != 0 || hi != 6 {
		t.Fatalf("range = [%d,%d]", lo, hi)
	}
}

func TestEliminateMatchesBruteForceRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(606))
	for trial := 0; trial < 150; trial++ {
		n := 2 + rng.Intn(2)
		s := NewSystem(n)
		// Bounding box keeps brute force finite.
		for k := 0; k < n; k++ {
			row := make([]int64, n)
			row[k] = 1
			s.AddInt(row, int64(rng.Intn(5)+2))
			row2 := make([]int64, n)
			row2[k] = -1
			s.AddInt(row2, int64(rng.Intn(3)))
		}
		// A few random cutting planes.
		for c := 0; c < 2+rng.Intn(3); c++ {
			row := make([]int64, n)
			for k := range row {
				row[k] = int64(rng.Intn(5) - 2)
			}
			s.AddInt(row, int64(rng.Intn(11)-2))
		}
		nest := s.Eliminate()
		got := map[string]bool{}
		for _, p := range nest.Points() {
			got[key(p)] = true
		}
		// Brute force over the box.
		want := map[string]bool{}
		var x []int64
		var rec func(k int)
		rec = func(k int) {
			if k == n {
				for _, c := range s.Cons {
					v := rational.Zero
					for d := range x {
						v = v.Add(c.Coef[d].Mul(rational.FromInt(x[d])))
					}
					if v.Cmp(c.Bound) > 0 {
						return
					}
				}
				want[key(x)] = true
				return
			}
			for v := int64(-4); v <= 8; v++ {
				x = append(x, v)
				rec(k + 1)
				x = x[:len(x)-1]
			}
		}
		rec(0)
		if len(got) != len(want) {
			t.Fatalf("trial %d: FM found %d points, brute force %d", trial, len(got), len(want))
		}
		for k := range want {
			if !got[k] {
				t.Fatalf("trial %d: point %s missing from FM enumeration", trial, k)
			}
		}
	}
}

func key(p []int64) string {
	s := ""
	for _, v := range p {
		s += string(rune(v+1000)) + ","
	}
	return s
}

func TestRangeUnboundedPanics(t *testing.T) {
	s := NewSystem(1)
	s.AddInt([]int64{1}, 5) // no lower bound
	nest := s.Eliminate()
	defer func() {
		if recover() == nil {
			t.Fatal("unbounded variable did not panic")
		}
	}()
	nest.Range(0, nil)
}

func TestStringRendering(t *testing.T) {
	s := NewSystem(2)
	s.AddInt([]int64{1, 1}, 3)
	s.AddInt([]int64{-1, 0}, 0)
	s.AddInt([]int64{0, -1}, 0)
	s.AddInt([]int64{1, 0}, 3)
	out := s.Eliminate().String()
	if out == "" {
		t.Fatal("empty rendering")
	}
}

func BenchmarkEliminate3D(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := NewSystem(3)
		s.AddInt([]int64{1, 1, 1}, 10)
		s.AddInt([]int64{-1, 0, 0}, 0)
		s.AddInt([]int64{0, -1, 0}, 0)
		s.AddInt([]int64{0, 0, -1}, 0)
		s.AddInt([]int64{1, -1, 0}, 2)
		s.AddInt([]int64{-1, 1, 0}, 2)
		_ = s.Eliminate()
	}
}
