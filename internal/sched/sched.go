// Package sched implements runtime loop-scheduling baselines — the
// alternative the paper's introduction argues against: "it is hard for the
// run time system to optimize for cache locality because much of the
// information required to compute communication patterns is either
// unavailable at run time or expensive to obtain" (§1, citing
// Polychronopoulos & Kuck's guided self-scheduling [1]).
//
// The schedulers here hand out chunks of the *linearized* iteration space
// to processors on demand. They balance load well, but chunk boundaries
// ignore the data-space geometry, so footprints interleave and coherence
// traffic grows — exactly the contrast the compile-time partitioner
// exploits.
package sched

import (
	"fmt"
)

// Policy names a dynamic scheduling discipline.
type Policy int

const (
	// Chunked is static chunking: the linearized space is cut into P
	// equal contiguous chunks (block scheduling of the flattened loop).
	Chunked Policy = iota
	// SelfScheduled hands out single iterations round-robin (the
	// classic self-scheduling limit: perfect balance, worst locality).
	SelfScheduled
	// Guided is guided self-scheduling [1]: each grab takes
	// ⌈remaining/P⌉ iterations, so chunks shrink geometrically.
	Guided
)

func (p Policy) String() string {
	switch p {
	case Chunked:
		return "chunked"
	case SelfScheduled:
		return "self"
	case Guided:
		return "guided"
	default:
		return "unknown"
	}
}

// Schedule assigns every index of a linearized iteration space of the
// given size to a processor, simulating the grab order of the policy with
// processors taking turns round-robin (the idealized, contention-free
// execution).
//
// The returned slice maps linear iteration index → processor.
func Schedule(policy Policy, size int64, procs int) ([]int, error) {
	if size < 0 || procs <= 0 {
		return nil, fmt.Errorf("sched: bad size %d / procs %d", size, procs)
	}
	owner := make([]int, size)
	switch policy {
	case Chunked:
		chunk := (size + int64(procs) - 1) / int64(procs)
		for i := int64(0); i < size; i++ {
			p := int(i / chunk)
			if p >= procs {
				p = procs - 1
			}
			owner[i] = p
		}
	case SelfScheduled:
		for i := int64(0); i < size; i++ {
			owner[i] = int(i % int64(procs))
		}
	case Guided:
		next := int64(0)
		turn := 0
		remaining := size
		for remaining > 0 {
			grab := (remaining + int64(procs) - 1) / int64(procs)
			if grab < 1 {
				grab = 1
			}
			for k := int64(0); k < grab && next < size; k++ {
				owner[next] = turn
				next++
			}
			remaining = size - next
			turn = (turn + 1) % procs
		}
	default:
		return nil, fmt.Errorf("sched: unknown policy %d", policy)
	}
	return owner, nil
}

// ChunkCount returns how many scheduling grabs the policy performs — the
// synchronization cost the paper's granularity discussion trades against
// balance (self-scheduling grabs per iteration; guided O(P·log(size/P))).
func ChunkCount(policy Policy, size int64, procs int) int64 {
	switch policy {
	case Chunked:
		if size == 0 {
			return 0
		}
		n := int64(procs)
		if n > size {
			n = size
		}
		return n
	case SelfScheduled:
		return size
	case Guided:
		count := int64(0)
		remaining := size
		for remaining > 0 {
			grab := (remaining + int64(procs) - 1) / int64(procs)
			if grab < 1 {
				grab = 1
			}
			remaining -= grab
			count++
		}
		return count
	default:
		return 0
	}
}

// Linearize maps a multi-dimensional iteration point to its linear index
// in the lexicographic order of the bounds [lo, hi].
func Linearize(p, lo, hi []int64) int64 {
	idx := int64(0)
	for k := range p {
		idx = idx*(hi[k]-lo[k]+1) + (p[k] - lo[k])
	}
	return idx
}
