package sched

import (
	"testing"
)

func TestChunkedBalancedAndContiguous(t *testing.T) {
	owner, err := Schedule(Chunked, 100, 4)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[int]int{}
	for i, p := range owner {
		counts[p]++
		if i > 0 && owner[i-1] > p {
			t.Fatal("chunked owners not monotone")
		}
	}
	for p := 0; p < 4; p++ {
		if counts[p] != 25 {
			t.Fatalf("proc %d owns %d", p, counts[p])
		}
	}
}

func TestChunkedRagged(t *testing.T) {
	owner, err := Schedule(Chunked, 10, 4)
	if err != nil {
		t.Fatal(err)
	}
	// chunk = 3: owners 0,0,0,1,1,1,2,2,2,3.
	if owner[0] != 0 || owner[3] != 1 || owner[9] != 3 {
		t.Fatalf("owners = %v", owner)
	}
}

func TestSelfScheduledRoundRobin(t *testing.T) {
	owner, err := Schedule(SelfScheduled, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 1, 2, 0, 1, 2, 0, 1}
	for i := range want {
		if owner[i] != want[i] {
			t.Fatalf("owners = %v", owner)
		}
	}
}

func TestGuidedShrinkingChunks(t *testing.T) {
	owner, err := Schedule(Guided, 100, 4)
	if err != nil {
		t.Fatal(err)
	}
	// First grab: ceil(100/4)=25 for proc 0; second: ceil(75/4)=19 for
	// proc 1; chunks shrink.
	for i := 0; i < 25; i++ {
		if owner[i] != 0 {
			t.Fatalf("owner[%d] = %d", i, owner[i])
		}
	}
	for i := 25; i < 44; i++ {
		if owner[i] != 1 {
			t.Fatalf("owner[%d] = %d", i, owner[i])
		}
	}
	// Everything assigned.
	for i, p := range owner {
		if p < 0 || p >= 4 {
			t.Fatalf("owner[%d] = %d", i, p)
		}
	}
}

func TestGuidedCoversAllAndBalances(t *testing.T) {
	for _, size := range []int64{1, 7, 64, 1000} {
		owner, err := Schedule(Guided, size, 4)
		if err != nil {
			t.Fatal(err)
		}
		counts := map[int]int64{}
		for _, p := range owner {
			counts[p]++
		}
		var max, min int64 = 0, size
		for p := 0; p < 4; p++ {
			if counts[p] > max {
				max = counts[p]
			}
			if counts[p] < min {
				min = counts[p]
			}
		}
		// Guided balance: max within 2× of even share (+1 slack for
		// tiny sizes).
		if size >= 64 && max > size/2 {
			t.Fatalf("size %d: max share %d", size, max)
		}
	}
}

func TestChunkCount(t *testing.T) {
	if got := ChunkCount(Chunked, 100, 4); got != 4 {
		t.Errorf("chunked grabs = %d", got)
	}
	if got := ChunkCount(SelfScheduled, 100, 4); got != 100 {
		t.Errorf("self grabs = %d", got)
	}
	guided := ChunkCount(Guided, 100, 4)
	if guided <= 4 || guided >= 100 {
		t.Errorf("guided grabs = %d; expected between P and size", guided)
	}
	if got := ChunkCount(Chunked, 0, 4); got != 0 {
		t.Errorf("empty chunked grabs = %d", got)
	}
	if got := ChunkCount(Chunked, 2, 4); got != 2 {
		t.Errorf("tiny chunked grabs = %d", got)
	}
}

func TestScheduleErrors(t *testing.T) {
	if _, err := Schedule(Chunked, -1, 4); err == nil {
		t.Error("negative size accepted")
	}
	if _, err := Schedule(Chunked, 10, 0); err == nil {
		t.Error("0 procs accepted")
	}
	if _, err := Schedule(Policy(99), 10, 2); err == nil {
		t.Error("unknown policy accepted")
	}
}

func TestLinearize(t *testing.T) {
	lo := []int64{1, 1}
	hi := []int64{4, 8}
	if got := Linearize([]int64{1, 1}, lo, hi); got != 0 {
		t.Errorf("origin = %d", got)
	}
	if got := Linearize([]int64{1, 8}, lo, hi); got != 7 {
		t.Errorf("end of row = %d", got)
	}
	if got := Linearize([]int64{2, 1}, lo, hi); got != 8 {
		t.Errorf("next row = %d", got)
	}
	if got := Linearize([]int64{4, 8}, lo, hi); got != 31 {
		t.Errorf("last = %d", got)
	}
}

func TestPolicyString(t *testing.T) {
	for p, want := range map[Policy]string{
		Chunked: "chunked", SelfScheduled: "self", Guided: "guided", Policy(9): "unknown",
	} {
		if p.String() != want {
			t.Errorf("%d.String() = %q", p, p.String())
		}
	}
}
