package commsets

import (
	"fmt"
	"sort"

	"looppart/internal/footprint"
	"looppart/internal/intmat"
)

// The analytic engine. For a rectangular tiling anchored at the space's
// lower corner and a class whose G is one-to-one, every reference's
// footprint over a tile is the translate of one bounded lattice: element
// identity reduces to the lattice coefficient vector m, with reference x
// at iteration i touching m = i + u_x where a_x − a_0 = u_x·G (solved
// exactly over the integers by intmat's HNF machinery). Tile t's
// coverage under reference x is then the iteration box of t shifted by
// u_x, and every transfer set is a union of box intersections counted by
// coordinate compression — no enumeration of iterations or data.

// box is an inclusive integer box; empty when any hi < lo.
type box struct{ lo, hi []int64 }

func (b box) empty() bool {
	for k := range b.lo {
		if b.hi[k] < b.lo[k] {
			return true
		}
	}
	return false
}

func (b box) shift(u []int64) box {
	lo := make([]int64, len(b.lo))
	hi := make([]int64, len(b.hi))
	for k := range lo {
		lo[k] = b.lo[k] + u[k]
		hi[k] = b.hi[k] + u[k]
	}
	return box{lo, hi}
}

func intersectBox(a, b box) box {
	lo := make([]int64, len(a.lo))
	hi := make([]int64, len(a.hi))
	for k := range lo {
		lo[k] = max64(a.lo[k], b.lo[k])
		hi[k] = min64(a.hi[k], b.hi[k])
	}
	return box{lo, hi}
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// maxAnalyticTiles bounds the grid the analytic engine will lay out;
// plans built by this repository keep tiles ≤ procs, so the bound only
// rejects degenerate hand-made specs (which fall back to the scan
// engine).
const maxAnalyticTiles = 1 << 16

// rectProcBoxes lays out the clipped tile boxes of a rectangular tiling,
// grouped by processor. Tile numbering must reproduce tile.Assign: tiles
// in lexicographic (row-major) grid order, dealt round-robin.
func rectProcBoxes(spec Spec) ([][]box, error) {
	if spec.Tile == nil || !spec.Tile.IsRect() {
		return nil, fmt.Errorf("commsets: not a rectangular tiling")
	}
	ext := spec.Tile.Extents()
	d := spec.Space.Dim()
	if len(ext) != d {
		return nil, fmt.Errorf("commsets: tile dimension %d != space dimension %d", len(ext), d)
	}
	grid := make([]int64, d)
	tiles := int64(1)
	for k := 0; k < d; k++ {
		if ext[k] <= 0 {
			return nil, fmt.Errorf("commsets: non-positive tile extent %d", ext[k])
		}
		n := spec.Space.Hi[k] - spec.Space.Lo[k] + 1
		grid[k] = (n + ext[k] - 1) / ext[k]
		tiles *= grid[k]
		if tiles > maxAnalyticTiles {
			return nil, fmt.Errorf("commsets: %d tiles exceed the analytic grid bound", tiles)
		}
	}
	boxes := make([][]box, spec.Procs)
	coord := make([]int64, d)
	for idx := int64(0); idx < tiles; idx++ {
		rem := idx
		for k := d - 1; k >= 0; k-- {
			coord[k] = rem % grid[k]
			rem /= grid[k]
		}
		b := box{lo: make([]int64, d), hi: make([]int64, d)}
		for k := 0; k < d; k++ {
			b.lo[k] = spec.Space.Lo[k] + coord[k]*ext[k]
			b.hi[k] = min64(b.lo[k]+ext[k]-1, spec.Space.Hi[k])
		}
		proc := int(idx % int64(spec.Procs))
		boxes[proc] = append(boxes[proc], b)
	}
	return boxes, nil
}

// classRefs resolves the class members' lattice offsets u_x and their
// roles. Fails (→ scan engine) if any offset is not on the row lattice,
// which cannot happen for a well-formed class.
type classRef struct {
	u      []int64
	writer bool
	reader bool
	mult   int // write multiplicity per iteration
}

func resolveClassRefs(c *footprint.Class) ([]classRef, error) {
	out := make([]classRef, len(c.Refs))
	base := c.Refs[0].A
	for i := range c.Refs {
		r := &c.Refs[i]
		diff := make([]int64, len(base))
		for k := range diff {
			diff[k] = r.A[k] - base[k]
		}
		u, ok := intmat.SolveIntLeft(c.G, diff)
		if !ok {
			return nil, fmt.Errorf("commsets: offset of %s not on the class lattice", r)
		}
		mult := r.Writes
		if r.Atomic && mult == 0 {
			mult = 1
		}
		out[i] = classRef{u: u, writer: isWriter(r), reader: isReader(r), mult: mult}
	}
	return out, nil
}

// analyzeClassBoxes runs the analytic engine for one class. Returns the
// class decomposition and the number of compression cells visited.
func analyzeClassBoxes(c *footprint.Class, ci int, boxes [][]box, procs int, materialize bool, a *Analysis) (ClassComm, int64, error) {
	refs, err := resolveClassRefs(c)
	if err != nil {
		return ClassComm{}, 0, err
	}
	cc := ClassComm{Array: c.Array, Class: ci, Method: "analytic"}

	var writers, readers []int
	for i := range refs {
		if refs[i].writer {
			writers = append(writers, i)
			// The same reference occurring as a write more than once per
			// iteration writes its element more than once per epoch.
			if refs[i].mult > 1 {
				a.UniqueWrite = false
			}
		}
		if refs[i].reader {
			readers = append(readers, i)
		}
	}
	if len(writers) == 0 || len(readers) == 0 {
		// Still need the unique-write check across writers below when
		// there are ≥2 writers and no readers.
		if len(writers) > 1 {
			checkUniqueWriteBoxes(refs, writers, boxes, a)
		}
		if materialize && len(writers) > 0 {
			if err := materializeOwned(&cc, c, refs, writers, boxes, procs); err != nil {
				return ClassComm{}, 0, err
			}
		}
		return cc, 0, nil
	}

	checkUniqueWriteBoxes(refs, writers, boxes, a)

	// backward[w][r]: the reader's iteration runs lexicographically after
	// the producing iteration of the same epoch (j = i + u_r − u_w ≺ i).
	backward := make(map[[2]int]bool)
	for _, w := range writers {
		for _, r := range readers {
			delta := make([]int64, len(refs[w].u))
			for k := range delta {
				delta[k] = refs[r].u[k] - refs[w].u[k]
			}
			if lexNeg(delta) {
				backward[[2]int{w, r}] = true
			}
		}
	}

	var cells int64
	for p := 0; p < procs; p++ {
		if len(boxes[p]) == 0 {
			continue
		}
		for q := 0; q < procs; q++ {
			if q == p || len(boxes[q]) == 0 {
				continue
			}
			var pieces []box
			for _, w := range writers {
				for _, r := range readers {
					for _, bp := range boxes[p] {
						for _, bq := range boxes[q] {
							piece := intersectBox(bp.shift(refs[w].u), bq.shift(refs[r].u))
							if piece.empty() {
								continue
							}
							pieces = append(pieces, piece)
							if backward[[2]int{w, r}] {
								a.BackwardRAW = true
							}
						}
					}
				}
			}
			if len(pieces) == 0 {
				continue
			}
			words, n, elems, err := unionBoxes(pieces, materialize)
			if err != nil {
				return ClassComm{}, 0, err
			}
			cells += n
			if words == 0 {
				continue
			}
			t := Transfer{From: p, To: q, Words: words}
			if materialize {
				t.Elems = mapElems(c, elems)
			}
			cc.Transfers = append(cc.Transfers, t)
			cc.Words += words
		}
	}
	sort.Slice(cc.Transfers, func(i, j int) bool {
		if cc.Transfers[i].From != cc.Transfers[j].From {
			return cc.Transfers[i].From < cc.Transfers[j].From
		}
		return cc.Transfers[i].To < cc.Transfers[j].To
	})
	if materialize {
		if err := materializeOwned(&cc, c, refs, writers, boxes, procs); err != nil {
			return ClassComm{}, 0, err
		}
	}
	return cc, cells, nil
}

// checkUniqueWriteBoxes clears Analysis.UniqueWrite if two distinct
// (tile, write reference) instances cover a common element.
func checkUniqueWriteBoxes(refs []classRef, writers []int, boxes [][]box, a *Analysis) {
	if !a.UniqueWrite {
		return
	}
	type wb struct {
		b   box
		ref int
	}
	var all []wb
	for p := range boxes {
		for _, b := range boxes[p] {
			for _, w := range writers {
				all = append(all, wb{b.shift(refs[w].u), w})
			}
		}
	}
	for i := 0; i < len(all) && a.UniqueWrite; i++ {
		for j := i + 1; j < len(all); j++ {
			if !intersectBox(all[i].b, all[j].b).empty() {
				a.UniqueWrite = false
				break
			}
		}
	}
}

// materializeOwned records each processor's write coverage (union of its
// write boxes), mapped to data coordinates.
func materializeOwned(cc *ClassComm, c *footprint.Class, refs []classRef, writers []int, boxes [][]box, procs int) error {
	cc.owned = make([][]Elem, procs)
	for p := 0; p < procs; p++ {
		var pieces []box
		for _, b := range boxes[p] {
			for _, w := range writers {
				pieces = append(pieces, b.shift(refs[w].u))
			}
		}
		if len(pieces) == 0 {
			continue
		}
		_, _, elems, err := unionBoxes(pieces, true)
		if err != nil {
			return err
		}
		cc.owned[p] = mapElems(c, elems)
	}
	return nil
}

// mapElems maps coefficient-space vectors m to data coordinates
// d = m·G + a_0 (MulVec is the row-vector product of the paper's
// convention).
func mapElems(c *footprint.Class, ms [][]int64) []Elem {
	out := make([]Elem, len(ms))
	base := c.Refs[0].A
	for i, m := range ms {
		d := c.G.MulVec(m)
		for k := range d {
			d[k] += base[k]
		}
		out[i] = Elem{Array: c.Array, Index: d}
	}
	return out
}

// unionBoxes counts (and optionally enumerates) the union of integer
// boxes exactly via coordinate compression: cut every dimension at the
// box boundaries; each resulting cell is entirely inside or outside
// every box, so membership is a single point test and the union size is
// the sum of member-cell volumes. Returns the count, the number of
// cells visited, and (if materialize) the points.
func unionBoxes(pieces []box, materialize bool) (int64, int64, [][]int64, error) {
	d := len(pieces[0].lo)
	if d == 0 {
		// A zero-dimensional space has a single point.
		return 1, 1, [][]int64{{}}, nil
	}
	cuts := make([][]int64, d)
	for k := 0; k < d; k++ {
		set := map[int64]struct{}{}
		for _, p := range pieces {
			set[p.lo[k]] = struct{}{}
			set[p.hi[k]+1] = struct{}{}
		}
		for v := range set {
			cuts[k] = append(cuts[k], v)
		}
		sort.Slice(cuts[k], func(i, j int) bool { return cuts[k][i] < cuts[k][j] })
	}
	idx := make([]int, d)
	pt := make([]int64, d)
	var total, cells int64
	var elems [][]int64
	for {
		cells++
		ok := true
		var vol int64 = 1
		for k := 0; k < d; k++ {
			if idx[k] >= len(cuts[k])-1 {
				ok = false
				break
			}
			pt[k] = cuts[k][idx[k]]
			w, m := intmat.CheckedMul(vol, cuts[k][idx[k]+1]-cuts[k][idx[k]])
			if !m {
				return 0, 0, nil, fmt.Errorf("commsets: transfer-set size overflows int64")
			}
			vol = w
		}
		if ok && inAnyBox(pt, pieces) {
			var m bool
			total, m = intmat.CheckedAdd(total, vol)
			if !m {
				return 0, 0, nil, fmt.Errorf("commsets: transfer-set size overflows int64")
			}
			if materialize {
				elems = appendCellPoints(elems, cuts, idx)
			}
		}
		k := d - 1
		for k >= 0 {
			idx[k]++
			if idx[k] < len(cuts[k])-1 {
				break
			}
			idx[k] = 0
			k--
		}
		if k < 0 {
			return total, cells, elems, nil
		}
	}
}

func inAnyBox(pt []int64, pieces []box) bool {
piece:
	for _, p := range pieces {
		for k := range pt {
			if pt[k] < p.lo[k] || pt[k] > p.hi[k] {
				continue piece
			}
		}
		return true
	}
	return false
}

func appendCellPoints(elems [][]int64, cuts [][]int64, idx []int) [][]int64 {
	d := len(idx)
	cur := make([]int64, d)
	for k := 0; k < d; k++ {
		cur[k] = cuts[k][idx[k]]
	}
	for {
		elems = append(elems, append([]int64(nil), cur...))
		k := d - 1
		for k >= 0 {
			cur[k]++
			if cur[k] < cuts[k][idx[k]+1] {
				break
			}
			cur[k] = cuts[k][idx[k]]
			k--
		}
		if k < 0 {
			return elems
		}
	}
}
