package commsets

import (
	"fmt"

	"looppart/internal/footprint"
)

// Oracle is the validation oracle: a deliberately naive recomputation of
// the per-class transfer counts by brute-force enumeration, sharing no
// machinery with the engines (no lattice solves, no box algebra, no
// bitsets — per-processor element sets keyed by formatted coordinates,
// intersected pairwise). verify.DiffCommSets and FuzzCommSets hold the
// engines to it element-for-element. Never use it to serve results.

// OracleClass is one class's enumerated ground truth.
type OracleClass struct {
	// Pairs maps {from, to} to the exact word count.
	Pairs map[[2]int]int64
	Words int64
}

// OracleResult is the enumerated counterpart of an Analysis.
type OracleResult struct {
	Classes     []OracleClass
	TotalWords  int64
	UniqueWrite bool
}

// Oracle enumerates the communication sets of the plan described by
// spec. Budget-gated like the scan engine.
func Oracle(spec Spec, pointBudget int64) (*OracleResult, error) {
	if spec.Assign == nil {
		return nil, fmt.Errorf("commsets: oracle needs Spec.Assign")
	}
	if pointBudget <= 0 {
		pointBudget = DefaultPointBudget
	}
	refs := 0
	for _, c := range spec.Analysis.Classes {
		refs += len(c.Refs)
	}
	if size := spec.Space.Size(); refs > 0 && size > pointBudget/int64(refs) {
		return nil, fmt.Errorf("commsets: oracle enumeration of %d points × %d refs exceeds the %d-point budget", size, refs, pointBudget)
	}

	res := &OracleResult{
		Classes:     make([]OracleClass, len(spec.Analysis.Classes)),
		UniqueWrite: true,
	}
	for ci := range spec.Analysis.Classes {
		c := &spec.Analysis.Classes[ci]
		// Per-processor element sets, one map per (proc, role).
		writes := make([]map[string]bool, spec.Procs)
		reads := make([]map[string]bool, spec.Procs)
		for p := range writes {
			writes[p] = map[string]bool{}
			reads[p] = map[string]bool{}
		}
		writeCount := map[string]int64{}
		spec.Space.ForEach(func(p []int64) bool {
			proc := spec.Assign(p)
			for ri := range c.Refs {
				r := &c.Refs[ri]
				elem := fmt.Sprint(dataCoordsNaive(r, p))
				if r.Writes > 0 || r.Atomic {
					writes[proc][elem] = true
					n := int64(r.Writes)
					if r.Atomic && n == 0 {
						n = 1
					}
					writeCount[elem] += n
				}
				if r.Reads > 0 || r.Atomic {
					reads[proc][elem] = true
				}
			}
			return true
		})
		for _, n := range writeCount {
			if n > 1 {
				res.UniqueWrite = false
			}
		}
		oc := OracleClass{Pairs: map[[2]int]int64{}}
		for w := 0; w < spec.Procs; w++ {
			for r := 0; r < spec.Procs; r++ {
				if w == r {
					continue
				}
				var n int64
				for elem := range writes[w] {
					if reads[r][elem] {
						n++
					}
				}
				if n > 0 {
					oc.Pairs[[2]int{w, r}] = n
					oc.Words += n
				}
			}
		}
		res.Classes[ci] = oc
		res.TotalWords += oc.Words
	}
	return res, nil
}

// dataCoordsNaive recomputes d = p·G + a with plain loops, kept separate
// from the engines' dataCoords on purpose.
func dataCoordsNaive(r *footprint.Ref, p []int64) []int64 {
	d := make([]int64, len(r.A))
	for j := range d {
		v := r.A[j]
		for k := range p {
			v += r.G.At(k, j) * p[k]
		}
		d[j] = v
	}
	return d
}
