// Package commsets computes exact per-tile communication sets for a
// partitioned loop nest.
//
// The paper predicts coherence traffic indirectly, from the overlap of
// neighboring tiles' footprints. Affine dataflow analysis (Ferry et
// al.'s MARS decomposition) shows the same machinery can instead answer
// the direct question: for every uniformly intersecting reference class,
// exactly which data does each processor's tile produce that other
// tiles consume? This package computes that decomposition — irredundant
// tile→tile transfer sets with exact element counts — for rect and
// skewed plans.
//
// Two engines share the work:
//
//   - The analytic engine handles rectangular tilings whose class
//     reference matrix G is one-to-one. Every reference's footprint over
//     a tile box is then the translate of a single bounded lattice
//     (Definition 9), so tile→tile intersections reduce to box algebra
//     in the lattice's coefficient space: each member's offset is solved
//     against G with internal/intmat's HNF machinery (a_x − a_0 = u_x·G),
//     and the transfer set from tile t to tile s is the union of boxes
//     (B_t + u_w) ∩ (B_s + u_r) over (writer w, reader r) pairs, counted
//     exactly by coordinate compression. No iteration point is ever
//     enumerated.
//
//   - The scan engine handles everything else (parallelepiped tiles,
//     slab plans, rank-deficient G): one pass over the iteration space
//     classifies every element's writer and reader processors through
//     the tiling's lattice membership. It is exact by construction and
//     budget-gated.
//
// Enumeration appears once more, in Oracle: a deliberately naive
// reimplementation used only to validate the engines (verify.DiffCommSets,
// FuzzCommSets).
package commsets

import (
	"context"
	"fmt"
	"sort"

	"looppart/internal/footprint"
	"looppart/internal/intmat"
	"looppart/internal/obs"
	"looppart/internal/telemetry"
	"looppart/internal/tile"
)

// DefaultPointBudget bounds the scan engine and the oracle: iteration
// space size × reference count may not exceed it.
const DefaultPointBudget = 4 << 20

// Spec names the plan whose communication sets are wanted.
type Spec struct {
	// Analysis is the nest's reference-class analysis.
	Analysis *footprint.Analysis
	// Space is the doall iteration space (tile.BoundsOf of the nest).
	Space tile.Bounds
	// Procs is the processor count the plan was built for.
	Procs int
	// Tile is set for tile-shaped plans. Rectangular tiles are assumed
	// anchored at Space.Lo (how every plan in this repository builds its
	// tiling); the analytic engine depends on it.
	Tile *tile.Tile
	// Assign maps an iteration point to its processor. Required whenever
	// the analytic engine does not apply (skewed tiles, slabs,
	// rank-deficient classes).
	Assign func(p []int64) int
}

// Options tunes Compute.
type Options struct {
	// Materialize additionally records the data elements of every
	// transfer set (the message-passing executor needs them). Without it
	// only exact counts are produced.
	Materialize bool
	// PointBudget caps the scan engine (0 = DefaultPointBudget).
	PointBudget int64
}

// Elem is one array element, identified by its data coordinates.
type Elem struct {
	Array string
	Index []int64
}

// Transfer is one irredundant producer→consumer set: the number of
// distinct elements processor From writes per epoch that processor To
// reads. Elems carries the elements themselves when materialized.
type Transfer struct {
	From  int   `json:"from"`
	To    int   `json:"to"`
	Words int64 `json:"words"`
	Elems []Elem `json:"-"`
}

// ClassComm is one reference class's communication decomposition.
type ClassComm struct {
	Array  string `json:"array"`
	Class  int    `json:"class"`
	Method string `json:"method"` // "analytic" or "scan"
	Words  int64  `json:"words"`
	// Transfers lists the non-empty tile→tile sets, sorted by (From, To).
	Transfers []Transfer `json:"transfers,omitempty"`

	// owned[p] is the class's write coverage of processor p
	// (materialized runs only); used to assemble the final state in the
	// message-passing executor.
	owned [][]Elem
}

// Analysis is the full communication-set decomposition of one plan.
type Analysis struct {
	Procs   int         `json:"procs"`
	Classes []ClassComm `json:"classes"`
	// Sent[p]/Recv[p] are words per epoch processor p sends/receives.
	Sent []int64 `json:"sent"`
	Recv []int64 `json:"recv"`
	// TotalWords is the per-epoch network total, Σ Sent = Σ Recv.
	TotalWords int64 `json:"total_words"`

	// UniqueWrite reports that no element is written more than once per
	// epoch (counting multiplicity): each datum has a well-defined
	// producer, the precondition for deterministic message passing and
	// for the coherence-traffic sandwich bound.
	UniqueWrite bool `json:"unique_write"`
	// CrossClassHazard reports a written array with more than one
	// reference class: dataflow between classes of the same array falls
	// outside the per-class decomposition.
	CrossClassHazard bool `json:"cross_class_hazard,omitempty"`
	// BackwardRAW reports a cross-processor read of an element written
	// earlier in the same epoch (lexicographically earlier iteration).
	// Bulk-synchronous message passing delivers remote writes only at
	// epoch boundaries, so such nests cannot match the sequential run.
	BackwardRAW bool `json:"backward_raw,omitempty"`
	// Method is "analytic", "scan", or "mixed".
	Method string `json:"method"`

	materialized bool
}

// Summary is the compact serving-layer digest of an Analysis, attached
// to PlanResult and reported by the autotune tournament.
type Summary struct {
	// Words is the predicted inter-processor network total per epoch.
	Words    int64   `json:"words"`
	MaxSent  int64   `json:"max_sent,omitempty"`
	MeanSent float64 `json:"mean_sent,omitempty"`
	MaxRecv  int64   `json:"max_recv,omitempty"`
	Method   string  `json:"method,omitempty"`
}

// Summary digests the analysis.
func (a *Analysis) Summary() *Summary {
	s := &Summary{Words: a.TotalWords, Method: a.Method}
	for _, w := range a.Sent {
		if w > s.MaxSent {
			s.MaxSent = w
		}
	}
	for _, w := range a.Recv {
		if w > s.MaxRecv {
			s.MaxRecv = w
		}
	}
	if a.Procs > 0 {
		s.MeanSent = float64(a.TotalWords) / float64(a.Procs)
	}
	return s
}

// CanCheckValues reports whether a message-passing run of this plan must
// reproduce the sequential result: every element has a unique producer,
// no cross-class dataflow, and no backward same-epoch read.
func (a *Analysis) CanCheckValues() bool {
	return a.UniqueWrite && !a.CrossClassHazard && !a.BackwardRAW
}

// Compute builds the communication sets for a plan.
func Compute(spec Spec, opts Options) (*Analysis, error) {
	return ComputeCtx(context.Background(), spec, opts)
}

// ComputeCtx is Compute with request-scoped tracing: when ctx carries an
// obs.Trace, the computation records a "commsets.analyze" span.
func ComputeCtx(ctx context.Context, spec Spec, opts Options) (*Analysis, error) {
	_, sp := obs.StartSpan(ctx, "commsets.analyze")
	defer sp.End()

	if spec.Analysis == nil {
		return nil, fmt.Errorf("commsets: nil analysis")
	}
	if spec.Procs <= 0 {
		return nil, fmt.Errorf("commsets: need at least one processor")
	}
	if spec.Space.Dim() != len(spec.Analysis.Vars) {
		return nil, fmt.Errorf("commsets: space dimension %d != %d doall vars",
			spec.Space.Dim(), len(spec.Analysis.Vars))
	}

	a := &Analysis{
		Procs:        spec.Procs,
		Sent:         make([]int64, spec.Procs),
		Recv:         make([]int64, spec.Procs),
		UniqueWrite:  true,
		materialized: opts.Materialize,
	}

	// Cross-class hazard: a written array split across classes.
	byArray := map[string]int{}
	for _, c := range spec.Analysis.Classes {
		byArray[c.Array]++
	}
	for _, c := range spec.Analysis.Classes {
		if byArray[c.Array] > 1 && c.HasWrite() {
			a.CrossClassHazard = true
		}
	}

	boxes, boxErr := rectProcBoxes(spec)
	var cells int64
	var scanIdx []int
	nAnalytic := 0
	a.Classes = make([]ClassComm, len(spec.Analysis.Classes))
	for ci := range spec.Analysis.Classes {
		c := &spec.Analysis.Classes[ci]
		if boxErr == nil && intmat.IsOneToOne(c.G) {
			cc, n, err := analyzeClassBoxes(c, ci, boxes, spec.Procs, opts.Materialize, a)
			if err == nil {
				a.Classes[ci] = cc
				cells += n
				nAnalytic++
				continue
			}
		}
		scanIdx = append(scanIdx, ci)
	}
	if len(scanIdx) > 0 {
		n, err := scanClasses(spec, scanIdx, opts, a)
		if err != nil {
			return nil, err
		}
		cells += n
	}

	for ci := range a.Classes {
		for _, t := range a.Classes[ci].Transfers {
			a.Sent[t.From] += t.Words
			a.Recv[t.To] += t.Words
			a.TotalWords += t.Words
		}
	}
	switch {
	case len(scanIdx) == 0:
		a.Method = "analytic"
	case nAnalytic == 0:
		a.Method = "scan"
	default:
		a.Method = "mixed"
	}

	reg := telemetry.Active()
	reg.Counter("commsets.computed").Add(1)
	reg.Counter("commsets.cells").Add(cells)
	reg.Counter("commsets.words").Add(a.TotalWords)
	sp.SetAttr("method", a.Method)
	sp.SetAttr("words", a.TotalWords)
	sp.SetAttr("classes", len(a.Classes))
	return a, nil
}

// Exchange is the materialized message plan for one epoch: the merged
// per-processor-pair element lists and each processor's write coverage.
type Exchange struct {
	Procs int
	// Pairs is sorted by (From, To); Words = Σ len(Elems).
	Pairs []Transfer
	// Owned[p] lists the elements processor p produces.
	Owned [][]Elem
	Words int64
}

// Exchange merges the per-class transfer sets into one message plan.
// Requires a materialized analysis. Classes of distinct arrays never
// overlap, and a written array has a single class unless
// CrossClassHazard is set, so concatenation stays irredundant.
func (a *Analysis) Exchange() (*Exchange, error) {
	if !a.materialized {
		return nil, fmt.Errorf("commsets: analysis was not materialized (Options.Materialize)")
	}
	ex := &Exchange{Procs: a.Procs, Owned: make([][]Elem, a.Procs)}
	merged := map[[2]int][]Elem{}
	for ci := range a.Classes {
		cc := &a.Classes[ci]
		for _, t := range cc.Transfers {
			key := [2]int{t.From, t.To}
			merged[key] = append(merged[key], t.Elems...)
		}
		for p, elems := range cc.owned {
			ex.Owned[p] = append(ex.Owned[p], elems...)
		}
	}
	keys := make([][2]int, 0, len(merged))
	for k := range merged {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	for _, k := range keys {
		elems := merged[k]
		ex.Pairs = append(ex.Pairs, Transfer{From: k[0], To: k[1], Words: int64(len(elems)), Elems: elems})
		ex.Words += int64(len(elems))
	}
	return ex, nil
}

// Table renders the per-tile send/receive table.
func (a *Analysis) Table() string {
	var b []byte
	b = append(b, fmt.Sprintf("%-6s %12s %12s\n", "proc", "sent", "recv")...)
	for p := 0; p < a.Procs; p++ {
		b = append(b, fmt.Sprintf("%-6d %12d %12d\n", p, a.Sent[p], a.Recv[p])...)
	}
	b = append(b, fmt.Sprintf("total words/epoch: %d (method %s)\n", a.TotalWords, a.Method)...)
	return string(b)
}

// lexNeg reports v ≺ 0 in lexicographic order.
func lexNeg(v []int64) bool {
	for _, x := range v {
		if x != 0 {
			return x < 0
		}
	}
	return false
}

func isWriter(r *footprint.Ref) bool { return r.Writes > 0 || r.Atomic }
func isReader(r *footprint.Ref) bool { return r.Reads > 0 || r.Atomic }
