package commsets

import (
	"encoding/binary"
	"fmt"
	"math/bits"
	"sort"

	"looppart/internal/footprint"
	"looppart/internal/intmat"
)

// The scan engine: the exact fallback for plans the analytic engine
// cannot express as box algebra (parallelepiped tiles, slab partitions,
// rank-deficient reference matrices). One budget-gated pass over the
// iteration space routes every touched element — identified by its data
// coordinates — to the writer/reader processor sets the tiling's
// membership function induces.

// elemRec accumulates one element's epoch-level access pattern.
type elemRec struct {
	writers procSet
	readers procSet
	writes  int64 // write multiplicity per epoch
	coords  []int64
}

// procSet is a processor bitset.
type procSet []uint64

func newProcSet(procs int) procSet { return make(procSet, (procs+63)/64) }

func (s procSet) set(p int) { s[p/64] |= 1 << (p % 64) }

func (s procSet) forEach(fn func(p int)) {
	for w, word := range s {
		for word != 0 {
			b := word & (-word)
			fn(w*64 + bits.TrailingZeros64(b))
			word ^= b
		}
	}
}

// scanClasses runs the scan engine over the classes in idx, filling
// their entries of a.Classes. Returns the number of (point, reference)
// pairs visited.
func scanClasses(spec Spec, idx []int, opts Options, a *Analysis) (int64, error) {
	if spec.Assign == nil {
		return 0, fmt.Errorf("commsets: plan needs the scan engine but Spec.Assign is nil")
	}
	budget := opts.PointBudget
	if budget <= 0 {
		budget = DefaultPointBudget
	}
	size := spec.Space.Size()
	refs := 0
	for _, ci := range idx {
		refs += len(spec.Analysis.Classes[ci].Refs)
	}
	if size <= 0 || refs == 0 {
		for _, ci := range idx {
			a.Classes[ci] = ClassComm{Array: spec.Analysis.Classes[ci].Array, Class: ci, Method: "scan"}
		}
		return 0, nil
	}
	if size > budget/int64(refs) {
		return 0, fmt.Errorf("commsets: scan of %d points × %d refs exceeds the %d-point budget", size, refs, budget)
	}

	type classState struct {
		c     *footprint.Class
		elems map[string]*elemRec
	}
	states := make([]classState, len(idx))
	for i, ci := range idx {
		states[i] = classState{c: &spec.Analysis.Classes[ci], elems: map[string]*elemRec{}}
	}

	var visited int64
	var key []byte
	spec.Space.ForEach(func(p []int64) bool {
		proc := spec.Assign(p)
		for i := range states {
			st := &states[i]
			for ri := range st.c.Refs {
				r := &st.c.Refs[ri]
				visited++
				d := dataCoords(r, p)
				key = appendElemKey(key[:0], d)
				rec, ok := st.elems[string(key)]
				if !ok {
					rec = &elemRec{
						writers: newProcSet(spec.Procs),
						readers: newProcSet(spec.Procs),
						coords:  d,
					}
					st.elems[string(key)] = rec
				}
				if isWriter(r) {
					rec.writers.set(proc)
					mult := int64(r.Writes)
					if r.Atomic && mult == 0 {
						mult = 1
					}
					rec.writes += mult
				}
				if isReader(r) {
					rec.readers.set(proc)
				}
			}
		}
		return true
	})

	for i, ci := range idx {
		st := &states[i]
		cc := ClassComm{Array: st.c.Array, Class: ci, Method: "scan"}
		pair := map[[2]int]*Transfer{}
		if opts.Materialize {
			cc.owned = make([][]Elem, spec.Procs)
		}
		for _, rec := range st.elems {
			if rec.writes > 1 {
				a.UniqueWrite = false
			}
			rec.writers.forEach(func(w int) {
				if opts.Materialize {
					cc.owned[w] = append(cc.owned[w], Elem{Array: st.c.Array, Index: rec.coords})
				}
				rec.readers.forEach(func(r int) {
					if r == w {
						return
					}
					k := [2]int{w, r}
					t, ok := pair[k]
					if !ok {
						t = &Transfer{From: w, To: r}
						pair[k] = t
					}
					t.Words++
					if opts.Materialize {
						t.Elems = append(t.Elems, Elem{Array: st.c.Array, Index: rec.coords})
					}
				})
			})
		}
		for _, t := range pair {
			cc.Transfers = append(cc.Transfers, *t)
			cc.Words += t.Words
		}
		sort.Slice(cc.Transfers, func(i, j int) bool {
			if cc.Transfers[i].From != cc.Transfers[j].From {
				return cc.Transfers[i].From < cc.Transfers[j].From
			}
			return cc.Transfers[i].To < cc.Transfers[j].To
		})
		if opts.Materialize {
			sortElems(cc.owned)
			for ti := range cc.Transfers {
				sortElemList(cc.Transfers[ti].Elems)
			}
		}
		a.Classes[ci] = cc
		scanBackwardRAW(st.c, &cc, a)
	}
	return visited, nil
}

// scanBackwardRAW conservatively flags same-epoch cross-processor reads
// of earlier writes for a scan-engine class: when any (writer, reader)
// offset pair is lexicographically backward — or cannot be resolved
// because G is rank-deficient — any cross-processor transfer in the
// class may carry a backward dependence.
func scanBackwardRAW(c *footprint.Class, cc *ClassComm, a *Analysis) {
	if cc.Words == 0 || a.BackwardRAW {
		return
	}
	base := c.Refs[0].A
	oneToOne := intmat.IsOneToOne(c.G)
	var writers, readers [][]int64
	for i := range c.Refs {
		r := &c.Refs[i]
		diff := make([]int64, len(base))
		for k := range diff {
			diff[k] = r.A[k] - base[k]
		}
		u, ok := intmat.SolveIntLeft(c.G, diff)
		if !ok || !oneToOne {
			u = nil
		}
		if isWriter(r) {
			writers = append(writers, u)
		}
		if isReader(r) {
			readers = append(readers, u)
		}
	}
	for _, uw := range writers {
		for _, ur := range readers {
			if uw == nil || ur == nil {
				a.BackwardRAW = true
				return
			}
			delta := make([]int64, len(uw))
			for k := range delta {
				delta[k] = ur[k] - uw[k]
			}
			if lexNeg(delta) {
				a.BackwardRAW = true
				return
			}
		}
	}
}

// dataCoords evaluates d = p·G + a exactly.
func dataCoords(r *footprint.Ref, p []int64) []int64 {
	d := make([]int64, len(r.A))
	for j := range d {
		v := r.A[j]
		for k := range p {
			v += p[k] * r.G.At(k, j)
		}
		d[j] = v
	}
	return d
}

func appendElemKey(b []byte, d []int64) []byte {
	for _, v := range d {
		b = binary.LittleEndian.AppendUint64(b, uint64(v))
	}
	return b
}

func sortElems(owned [][]Elem) {
	for p := range owned {
		sortElemList(owned[p])
	}
}

func sortElemList(elems []Elem) {
	sort.Slice(elems, func(i, j int) bool {
		a, b := elems[i], elems[j]
		if a.Array != b.Array {
			return a.Array < b.Array
		}
		for k := range a.Index {
			if a.Index[k] != b.Index[k] {
				return a.Index[k] < b.Index[k]
			}
		}
		return false
	})
}
