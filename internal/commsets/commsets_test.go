package commsets

import (
	"reflect"
	"testing"

	"looppart/internal/footprint"
	"looppart/internal/loopir"
	"looppart/internal/tile"
)

// fixture builds a Spec for src partitioned by a hand-chosen rectangular
// tile, exactly the way looppart's planner does (tiling anchored at the
// space's lower corner, tile.Assign numbering).
func fixture(t *testing.T, src string, tl tile.Tile, procs int) Spec {
	t.Helper()
	n, err := loopir.Parse(src, nil)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	a, err := footprint.Analyze(n)
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	space := tile.BoundsOf(n)
	tiling, err := tile.NewTiling(tl, space.Lo)
	if err != nil {
		t.Fatalf("tiling: %v", err)
	}
	asg, err := tile.Assign(tiling, space, procs)
	if err != nil {
		t.Fatalf("assign: %v", err)
	}
	return Spec{Analysis: a, Space: space, Procs: procs, Tile: &tl, Assign: asg.ProcOf}
}

func pairs(a *Analysis) map[[2]int]int64 {
	out := map[[2]int]int64{}
	for _, c := range a.Classes {
		for _, tr := range c.Transfers {
			out[[2]int{tr.From, tr.To}] += tr.Words
		}
	}
	return out
}

// TestExample2Geometry hand-computes the communication sets of the
// paper's Example 2 reference geometry (G = [[1,1],[1,-1]], offsets
// (0,-1) and (4,3)) turned into a producer→consumer flow: the iteration
// offset between the two references solves to u = (4,0), so reads at
// iteration (i,j) consume the element written at (i+4,j). On a 10×10
// space split into i-strips of 5, processor 1 must send its first four
// written rows to processor 0 — 4×10 = 40 words — and nothing flows the
// other way. Splitting along j instead is communication-free because
// the dependence has no j component.
func TestExample2Geometry(t *testing.T) {
	const src = `
doall (i, 101, 110)
  doall (j, 1, 10)
    B[i+j, i-j-1] = B[i+j+4, i-j+3] + 1
  enddoall
enddoall
`
	t.Run("splitI", func(t *testing.T) {
		spec := fixture(t, src, tile.Rect(5, 10), 2)
		a, err := Compute(spec, Options{})
		if err != nil {
			t.Fatalf("%v", err)
		}
		if a.Method != "analytic" {
			t.Fatalf("method = %s, want analytic", a.Method)
		}
		want := map[[2]int]int64{{1, 0}: 40}
		if got := pairs(a); !reflect.DeepEqual(got, want) {
			t.Fatalf("transfers = %v, want %v", got, want)
		}
		if a.TotalWords != 40 || a.Sent[1] != 40 || a.Recv[0] != 40 {
			t.Fatalf("totals: words=%d sent=%v recv=%v", a.TotalWords, a.Sent, a.Recv)
		}
		if !a.UniqueWrite || a.BackwardRAW || a.CrossClassHazard {
			t.Fatalf("eligibility: unique=%v backward=%v hazard=%v", a.UniqueWrite, a.BackwardRAW, a.CrossClassHazard)
		}
	})
	t.Run("splitJ", func(t *testing.T) {
		spec := fixture(t, src, tile.Rect(10, 5), 2)
		a, err := Compute(spec, Options{})
		if err != nil {
			t.Fatalf("%v", err)
		}
		if a.TotalWords != 0 || len(pairs(a)) != 0 {
			t.Fatalf("j-strips must be communication-free, got %d words (%v)", a.TotalWords, pairs(a))
		}
	})
}

// TestExample3Geometry hand-computes the paper's Example 3 geometry
// (B[i,j] and B[i+1,j+3], G = I) as a producer→consumer flow on an 8×8
// space cut into four 4×4 tiles (row-major procs 0..3): u = (1,3), so
// each tile's reads are its box shifted by (1,3) and the five non-empty
// writer∩reader intersections count 9, 1, 3, 1, and 9 elements.
func TestExample3Geometry(t *testing.T) {
	const src = `
doall (i, 1, 8)
  doall (j, 1, 8)
    B[i, j] = B[i + 1, j + 3] + 1
  enddoall
enddoall
`
	spec := fixture(t, src, tile.Rect(4, 4), 4)
	a, err := Compute(spec, Options{Materialize: true})
	if err != nil {
		t.Fatalf("%v", err)
	}
	want := map[[2]int]int64{
		{1, 0}: 9, // i∈[2,4] × j∈[5,7]
		{2, 0}: 1, // (5,4)
		{3, 0}: 3, // i=5 × j∈[5,7]
		{3, 1}: 1, // (5,8)
		{3, 2}: 9, // i∈[6,8] × j∈[5,7]
	}
	if got := pairs(a); !reflect.DeepEqual(got, want) {
		t.Fatalf("transfers = %v, want %v", got, want)
	}
	if a.TotalWords != 23 {
		t.Fatalf("total = %d, want 23", a.TotalWords)
	}
	// Materialized element lists must carry exactly Words elements, in
	// the array's data coordinates.
	for _, c := range a.Classes {
		for _, tr := range c.Transfers {
			if int64(len(tr.Elems)) != tr.Words {
				t.Fatalf("transfer %d→%d: %d elems for %d words", tr.From, tr.To, len(tr.Elems), tr.Words)
			}
			for _, e := range tr.Elems {
				if e.Array != "B" || len(e.Index) != 2 {
					t.Fatalf("bad element %+v", e)
				}
			}
		}
	}
	// The summary digest.
	s := a.Summary()
	if s.Words != 23 || s.MaxSent != 13 || s.MaxRecv != 13 {
		t.Fatalf("summary = %+v", s)
	}
}

// TestEnginesAgree runs the same plans through the analytic engine, the
// scan engine (forced by withholding the tile shape), and the oracle.
// The scan engine and the oracle classify iterations through Assign —
// the analytic engine never calls it — so three-way agreement also
// cross-checks the analytic grid numbering against tile.Assign.
func TestEnginesAgree(t *testing.T) {
	cases := []struct {
		name  string
		src   string
		tl    tile.Tile
		procs int
	}{
		{"example2", "doall (i, 101, 110) doall (j, 1, 10) B[i+j, i-j-1] = B[i+j+4, i-j+3] + 1 enddoall enddoall", tile.Rect(5, 10), 2},
		{"example3", "doall (i, 1, 8) doall (j, 1, 8) B[i, j] = B[i + 1, j + 3] + 1 enddoall enddoall", tile.Rect(4, 4), 4},
		{"ragged", "doall (i, 0, 16) doall (j, 0, 12) A[i, j] = A[i + 2, j + 1] + B[j] enddoall enddoall", tile.Rect(5, 7), 3},
		{"stride", "doall (i, 0, 30) A[2 * i] = A[2 * i + 6] + 1 enddoall", tile.Rect(8), 4},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			spec := fixture(t, tc.src, tc.tl, tc.procs)
			analytic, err := Compute(spec, Options{Materialize: true})
			if err != nil {
				t.Fatalf("analytic: %v", err)
			}
			scanSpec := spec
			scanSpec.Tile = nil
			scan, err := Compute(scanSpec, Options{Materialize: true})
			if err != nil {
				t.Fatalf("scan: %v", err)
			}
			// Rank-deficient classes (e.g. B[j] in a 2-D nest) fall to the
			// scan engine even with the tile shape known, giving "mixed".
			if analytic.Method == "scan" || scan.Method != "scan" {
				t.Fatalf("methods: %s / %s", analytic.Method, scan.Method)
			}
			if !reflect.DeepEqual(pairs(analytic), pairs(scan)) {
				t.Fatalf("engines disagree: analytic %v, scan %v", pairs(analytic), pairs(scan))
			}
			if analytic.UniqueWrite != scan.UniqueWrite {
				t.Fatalf("unique-write disagreement: %v vs %v", analytic.UniqueWrite, scan.UniqueWrite)
			}
			oracle, err := Oracle(spec, 0)
			if err != nil {
				t.Fatalf("oracle: %v", err)
			}
			if analytic.TotalWords != oracle.TotalWords {
				t.Fatalf("words: analytic %d, oracle %d", analytic.TotalWords, oracle.TotalWords)
			}
			for pair, words := range pairs(analytic) {
				var ow int64
				for _, oc := range oracle.Classes {
					ow += oc.Pairs[pair]
				}
				if words != ow {
					t.Fatalf("pair %v: analytic %d, oracle %d", pair, words, ow)
				}
			}
			// Both engines' exchanges must materialize identical element
			// multisets per pair.
			ax, err := analytic.Exchange()
			if err != nil {
				t.Fatalf("%v", err)
			}
			sx, err := scan.Exchange()
			if err != nil {
				t.Fatalf("%v", err)
			}
			if ax.Words != sx.Words || len(ax.Pairs) != len(sx.Pairs) {
				t.Fatalf("exchange shape: %d/%d words, %d/%d pairs", ax.Words, sx.Words, len(ax.Pairs), len(sx.Pairs))
			}
		})
	}
}

// TestBackwardRAWDetected: reading A[i-1] consumes the element written
// one iteration earlier — lexicographically backward — so across a tile
// boundary the plan must be flagged ineligible for value checking,
// while the transfer counts themselves stay exact.
func TestBackwardRAWDetected(t *testing.T) {
	spec := fixture(t, "doall (i, 0, 15) A[i] = A[i - 1] + 1 enddoall", tile.Rect(4), 4)
	a, err := Compute(spec, Options{})
	if err != nil {
		t.Fatalf("%v", err)
	}
	if !a.BackwardRAW || a.CanCheckValues() {
		t.Fatalf("backward RAW not flagged: %+v", a)
	}
	if a.TotalWords == 0 {
		t.Fatalf("expected cross-tile words")
	}
	oracle, err := Oracle(spec, 0)
	if err != nil {
		t.Fatalf("%v", err)
	}
	if a.TotalWords != oracle.TotalWords {
		t.Fatalf("words: %d vs oracle %d", a.TotalWords, oracle.TotalWords)
	}
}

// TestNonUniqueWriteDetected: two writes per iteration land on the same
// element when subscripts collide across iterations.
func TestNonUniqueWriteDetected(t *testing.T) {
	// A[i] and A[i+1] both written: element i+1 is written by iterations
	// i+1 and i — two producers.
	spec := fixture(t, "doall (i, 0, 15) A[i] = A[i + 1] + 1 enddoall", tile.Rect(4), 4)
	a, err := Compute(spec, Options{})
	if err != nil {
		t.Fatalf("%v", err)
	}
	if !a.UniqueWrite {
		t.Fatalf("single-writer stencil misflagged")
	}

	spec2 := fixture(t, "doall (i, 0, 15) doall (j, 0, 3) A[i + j] = B[i] + 1 enddoall enddoall", tile.Rect(4, 4), 4)
	a2, err := Compute(spec2, Options{})
	if err != nil {
		t.Fatalf("%v", err)
	}
	if a2.UniqueWrite {
		t.Fatalf("overlapping writes not flagged")
	}
	oracle, err := Oracle(spec2, 0)
	if err != nil {
		t.Fatalf("%v", err)
	}
	if oracle.UniqueWrite {
		t.Fatalf("oracle missed the overlapping writes")
	}
}

// TestTable pins the human-readable rendering loopsim prints.
func TestTable(t *testing.T) {
	spec := fixture(t, "doall (i, 0, 9) A[i] = A[i + 2] + 1 enddoall", tile.Rect(5), 2)
	a, err := Compute(spec, Options{})
	if err != nil {
		t.Fatalf("%v", err)
	}
	// Reads at i consume writes at i+2: proc 0 (i∈[0,4]) needs writes
	// {5,6} from proc 1.
	if a.TotalWords != 2 {
		t.Fatalf("words = %d, want 2", a.TotalWords)
	}
	got := a.Table()
	want := "proc           sent         recv\n" +
		"0                 0            2\n" +
		"1                 2            0\n" +
		"total words/epoch: 2 (method analytic)\n"
	if got != want {
		t.Fatalf("table:\n%s\nwant:\n%s", got, want)
	}
}
