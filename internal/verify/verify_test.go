package verify

import (
	"math/rand"
	"testing"

	"looppart/internal/footprint"
	"looppart/internal/intmat"
	"looppart/internal/loopir"
	"looppart/internal/telemetry"
	"looppart/internal/tile"
)

// The acceptance bar of the differential harness: at least 200 randomized
// nests, seeded and deterministic, with zero model-vs-enumeration
// disagreements beyond the documented tolerance.
func TestDifferentialHarness(t *testing.T) {
	rnd := rand.New(rand.NewSource(42))
	const want = 220
	checked := 0
	rejected := 0
	var exact, approx int
	for i := 0; checked < want && i < 4*want; i++ {
		src := RandomNest(rnd, GenConfig{})
		res, err := DiffNest(src, DefaultTolerance)
		if err != nil {
			if res.Classes == 0 && res.Exact == 0 && res.Approx == 0 {
				// Parse/analysis rejection (e.g. degenerate nest), not a
				// verification failure. Keep generating.
				rejected++
				continue
			}
			t.Fatalf("nest %d disagrees:\n%s\n%v", i, src, err)
		}
		checked++
		exact += res.Exact
		approx += res.Approx
	}
	if checked < want {
		t.Fatalf("only %d nests checked (want ≥ %d); %d rejected by the pipeline", checked, want, rejected)
	}
	if exact == 0 || approx == 0 {
		t.Errorf("harness coverage skew: %d exact and %d approximate comparisons — both regimes must be exercised", exact, approx)
	}
	t.Logf("checked %d nests (%d exact, %d approximate comparisons, %d rejected)", checked, exact, approx, rejected)
}

// The generator must produce parseable nests essentially always — a high
// rejection rate silently weakens the harness.
func TestRandomNestParses(t *testing.T) {
	rnd := rand.New(rand.NewSource(7))
	bad := 0
	for i := 0; i < 300; i++ {
		src := RandomNest(rnd, GenConfig{})
		if _, err := loopir.Parse(src, nil); err != nil {
			t.Logf("unparseable: %q: %v", src, err)
			bad++
		}
	}
	if bad > 0 {
		t.Errorf("%d/300 generated nests failed to parse", bad)
	}
}

func TestLemma3AgainstEnumeration(t *testing.T) {
	rnd := rand.New(rand.NewSource(11))
	for i := 0; i < 150; i++ {
		n := 1 + rnd.Intn(2)
		d := n + rnd.Intn(2)
		gen := make([][]int64, n)
		for r := range gen {
			gen[r] = make([]int64, d)
			for c := range gen[r] {
				gen[r][c] = rnd.Int63n(5) - 2
			}
		}
		bounds := make([]int64, n)
		u := make([]int64, n)
		for k := range bounds {
			bounds[k] = rnd.Int63n(4)
			u[k] = rnd.Int63n(2*bounds[k]+3) - bounds[k] - 1
		}
		if err := UnionSizeAgainstEnumeration(gen, bounds, u); err != nil {
			t.Fatal(err)
		}
	}
}

func TestTheorem3Randomized(t *testing.T) {
	rnd := rand.New(rand.NewSource(13))
	for i := 0; i < 200; i++ {
		n := 1 + rnd.Intn(2)
		d := n
		gen := intmat.NewMat(n, d)
		for r := 0; r < n; r++ {
			for c := 0; c < d; c++ {
				gen.Set(r, c, rnd.Int63n(7)-3)
			}
		}
		bounds := make([]int64, n)
		for k := range bounds {
			bounds[k] = rnd.Int63n(4)
		}
		tvec := make([]int64, d)
		for k := range tvec {
			tvec[k] = rnd.Int63n(11) - 5
		}
		if err := CheckTheorem3(gen, bounds, tvec); err != nil {
			t.Fatal(err)
		}
	}
}

func TestCheckPlanHappyPath(t *testing.T) {
	n := loopir.MustParse("doall (i, 0, 7) doall (j, 0, 7) A[i, j] = A[i, j - 1] enddoall enddoall", nil)
	a, err := footprint.Analyze(n)
	if err != nil {
		t.Fatal(err)
	}
	space := tile.BoundsOf(n)
	tl := tile.Rect(4, 8)
	tiling, err := tile.NewTiling(tl, space.Lo)
	if err != nil {
		t.Fatal(err)
	}
	asg, err := tile.Assign(tiling, space, 2)
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.New()
	prev := telemetry.SetActive(reg)
	defer telemetry.SetActive(prev)

	rep := CheckPlan(PlanCheck{
		Analysis: a,
		Space:    space,
		Procs:    2,
		Assign:   asg.ProcOf,
		Tile:     &tl,
	})
	if !rep.OK() {
		t.Fatalf("healthy plan failed self-check: %v", rep)
	}
	snap := reg.Snapshot()
	if snap.Counters["verify.checks"] == 0 {
		t.Error("verify.checks counter not incremented")
	}
	if snap.Counters["verify.failures"] != 0 {
		t.Errorf("verify.failures = %d on a healthy plan", snap.Counters["verify.failures"])
	}
}

func TestCheckPlanCatchesBadAssignment(t *testing.T) {
	n := loopir.MustParse("doall (i, 0, 7) A[i] = A[i - 1] enddoall", nil)
	a, err := footprint.Analyze(n)
	if err != nil {
		t.Fatal(err)
	}
	space := tile.BoundsOf(n)

	// Out-of-range processor.
	rep := CheckPlan(PlanCheck{
		Analysis: a,
		Space:    space,
		Procs:    2,
		Assign:   func(p []int64) int { return 5 },
	})
	if rep.OK() {
		t.Error("out-of-range assignment passed the self-check")
	}

	// Panicking assignment must be caught, not propagated.
	rep = CheckPlan(PlanCheck{
		Space:  space,
		Procs:  2,
		Assign: func(p []int64) int { panic("corrupt plan") },
	})
	if rep.OK() {
		t.Error("panicking assignment passed the self-check")
	}
}

func TestCheckPlanSamplesLargeSpaces(t *testing.T) {
	space := tile.Bounds{Lo: []int64{0, 0}, Hi: []int64{999, 999}}
	calls := 0
	rep := CheckPlan(PlanCheck{
		Space:       space,
		Procs:       4,
		Assign:      func(p []int64) int { calls++; return int((p[0] + p[1]) % 4) },
		PointBudget: 1000,
	})
	if !rep.OK() {
		t.Fatalf("sampled check failed: %v", rep)
	}
	if calls == 0 || calls > 2000 {
		t.Errorf("sampling visited %d points for a budget of 1000", calls)
	}
}

func TestHNFSNFInvariantsRandomized(t *testing.T) {
	rnd := rand.New(rand.NewSource(17))
	for i := 0; i < 300; i++ {
		rows := 1 + rnd.Intn(4)
		cols := 1 + rnd.Intn(4)
		m := intmat.NewMat(rows, cols)
		for r := 0; r < rows; r++ {
			for c := 0; c < cols; c++ {
				m.Set(r, c, rnd.Int63n(21)-10)
			}
		}
		if err := CheckHNF(m); err != nil {
			t.Fatalf("matrix %v: %v", m, err)
		}
		if err := CheckSNF(m); err != nil {
			t.Fatalf("matrix %v: %v", m, err)
		}
	}
}
