// Package verify is the differential verification layer: it checks the
// analytic machinery (footprint models, normal forms, lattice
// intersection) against exact enumeration and algebraic invariants, and
// checks served partition plans against the iteration space they claim to
// cover.
//
// The repo owns its own ground truth — footprint.ExactClassFootprint
// applies Definition 3 literally — so every model prediction is a testable
// claim. This package closes that loop three ways:
//
//   - CheckPlan validates a concrete plan: every iteration maps to a
//     processor in range, tiles are disjoint with full coverage and
//     bounded occupancy, and for small tiles the footprint model agrees
//     with enumeration within a documented tolerance.
//   - DiffNest (diff.go) generates the same comparison for an arbitrary
//     nest, and RandomNestSource (nestgen.go) feeds it randomized nests —
//     the differential harness the fuzz targets drive.
//   - CheckHNF / CheckSNF / CheckTheorem3 (invariants.go) assert the
//     algebraic contracts of the integer core.
//
// Failures increment the verify.checks / verify.failures telemetry
// counters, so a long-running service surfaces model drift without log
// scraping.
package verify

import (
	"fmt"
	"math"

	"looppart/internal/footprint"
	"looppart/internal/telemetry"
	"looppart/internal/tile"
)

// DefaultPointBudget bounds the number of iteration points CheckPlan will
// walk per check; spaces beyond it are sampled deterministically.
const DefaultPointBudget = 1 << 20

// DefaultTolerance is the documented relative tolerance for Approximate
// model predictions against exact enumeration *inside the model's domain*
// — tiles whose extents dominate the class's spread coefficients, the
// paper's working assumption. There the ≈ forms drop only lower-order
// boundary terms (Lemma 3 cross terms, Theorem 2 corner effects), which
// stay well under half the footprint. Outside the domain (tiny tiles,
// extents at or below the spread) the dropped terms are the same order as
// the footprint itself, and the comparison falls back to the sandwich
// invariants the paper guarantees unconditionally — see compareModelExact.
// Exact and Enumerated predictions get no tolerance at all.
const DefaultTolerance = 0.5

// CheckResult is the outcome of one named check.
type CheckResult struct {
	Name   string `json:"name"`
	OK     bool   `json:"ok"`
	Detail string `json:"detail,omitempty"`
}

// Report aggregates check results.
type Report struct {
	Checks   []CheckResult `json:"checks"`
	Failures int           `json:"failures"`
}

// OK reports whether every check passed.
func (r *Report) OK() bool { return r.Failures == 0 }

// String renders the report compactly.
func (r *Report) String() string {
	if r.OK() {
		return fmt.Sprintf("verify: %d checks ok", len(r.Checks))
	}
	var first string
	for _, c := range r.Checks {
		if !c.OK {
			first = c.Name + ": " + c.Detail
			break
		}
	}
	return fmt.Sprintf("verify: %d/%d checks failed (%s)", r.Failures, len(r.Checks), first)
}

// add records a check outcome and bumps the telemetry counters.
func (r *Report) add(name string, ok bool, detail string) {
	r.Checks = append(r.Checks, CheckResult{Name: name, OK: ok, Detail: detail})
	reg := telemetry.Active()
	reg.Counter("verify.checks").Add(1)
	if !ok {
		r.Failures++
		reg.Counter("verify.failures").Add(1)
	}
}

// Fail appends a failed check to the report (for callers that detect a
// problem before the standard checks can run, e.g. a plan that cannot be
// reconstructed from its serialized form).
func (r *Report) Fail(name, detail string) { r.add(name, false, detail) }

// Pass appends a passing check.
func (r *Report) Pass(name string) { r.add(name, true, "") }

// PlanCheck describes a concrete partition plan to validate.
type PlanCheck struct {
	// Analysis enables the footprint model-vs-enumeration check; nil skips
	// it (coverage checks still run).
	Analysis *footprint.Analysis
	// Space is the doall iteration space the plan claims to cover.
	Space tile.Bounds
	// Procs is the processor count the plan was built for.
	Procs int
	// Assign is the plan's iteration→processor map.
	Assign func(p []int64) int
	// Tile, when non-nil, is the plan's tile; enables the per-tile
	// occupancy and footprint checks. Slab plans leave it nil.
	Tile *tile.Tile

	// PointBudget caps the points walked per check (DefaultPointBudget
	// when 0). Tolerance is the Approximate-model relative tolerance
	// (DefaultTolerance when 0).
	PointBudget int64
	Tolerance   float64
}

func (pc *PlanCheck) budget() int64 {
	if pc.PointBudget > 0 {
		return pc.PointBudget
	}
	return DefaultPointBudget
}

func (pc *PlanCheck) tolerance() float64 {
	if pc.Tolerance > 0 {
		return pc.Tolerance
	}
	return DefaultTolerance
}

// CheckPlan runs the plan self-check and returns the report. It never
// panics: a panicking Assign (an iteration the plan cannot place) is
// reported as a failed coverage check.
func CheckPlan(pc PlanCheck) *Report {
	r := &Report{}
	if pc.Assign == nil {
		r.add("assignment", false, "plan has no iteration→processor map")
		return r
	}
	if pc.Procs <= 0 {
		r.add("assignment", false, fmt.Sprintf("non-positive processor count %d", pc.Procs))
		return r
	}
	pc.checkCoverage(r)
	if pc.Tile != nil {
		pc.checkTileOccupancy(r)
		if pc.Analysis != nil {
			pc.checkFootprintModel(r)
		}
	}
	return r
}

// forEachSampled walks the space — exhaustively within budget, otherwise a
// deterministic stride sample (every k-th point of the lexicographic scan)
// plus the corners. Returns the number of points visited and whether the
// walk was exhaustive.
func (pc *PlanCheck) forEachSampled(fn func(p []int64) bool) (visited int64, exhaustive bool) {
	total := pc.Space.Size()
	budget := pc.budget()
	stride := int64(1)
	exhaustive = true
	if total > budget {
		stride = (total + budget - 1) / budget
		exhaustive = false
	}
	var idx int64
	pc.Space.ForEach(func(p []int64) bool {
		take := idx%stride == 0
		idx++
		if !take {
			return true
		}
		visited++
		return fn(p)
	})
	return visited, exhaustive
}

// checkCoverage asserts every (sampled) iteration maps to a processor in
// [0, Procs), recovering from a panicking Assign.
func (pc *PlanCheck) checkCoverage(r *Report) {
	name := "coverage"
	var bad string
	func() {
		defer func() {
			if rec := recover(); rec != nil {
				bad = fmt.Sprintf("assignment panicked: %v", rec)
			}
		}()
		pc.forEachSampled(func(p []int64) bool {
			proc := pc.Assign(p)
			if proc < 0 || proc >= pc.Procs {
				bad = fmt.Sprintf("iteration %v assigned to processor %d of %d", p, proc, pc.Procs)
				return false
			}
			return true
		})
	}()
	r.add(name, bad == "", bad)
}

// checkTileOccupancy asserts the tiling is a disjoint cover with bounded
// occupancy: every (sampled) iteration lands in exactly one tile (the
// coordinate map is a function, so disjointness holds by construction once
// each point resolves), no tile holds more points than the tile's point
// count, and the occupancies sum to the points visited.
func (pc *PlanCheck) checkTileOccupancy(r *Report) {
	name := "tile-occupancy"
	tl, err := tile.NewTiling(*pc.Tile, pc.Space.Lo)
	if err != nil {
		r.add(name, false, "tiling construction: "+err.Error())
		return
	}
	cap := pc.Tile.PointCount()
	occ := make(map[string]int64)
	var sum int64
	visited, _ := pc.forEachSampled(func(p []int64) bool {
		occ[coordKey(tl.Coord(p))]++
		sum++
		return true
	})
	if sum != visited {
		r.add(name, false, fmt.Sprintf("occupancy sum %d != %d points visited", sum, visited))
		return
	}
	for k, n := range occ {
		if n > cap {
			r.add(name, false, fmt.Sprintf("tile %s holds %d points, tile volume is %d", k, n, cap))
			return
		}
	}
	r.add(name, true, "")
}

// checkFootprintModel compares the model's footprint for the plan's tile
// against exact enumeration, class by class (the totals are sums of the
// per-class predictions, so per-class comparison is strictly stronger):
// Exact and Enumerated predictions must match to the point; Approximate
// predictions follow the domain-aware rules of compareModelExact. Tiles
// too large to enumerate are skipped (reported as passing with a detail
// note — the model is the only information).
func (pc *PlanCheck) checkFootprintModel(r *Report) {
	name := "footprint-model"
	t := *pc.Tile
	vol := t.PointCount()
	if vol > pc.budget() {
		r.add(name, true, fmt.Sprintf("tile volume %d above point budget, model unchecked", vol))
		return
	}
	for _, c := range pc.Analysis.Classes {
		var err error
		if t.IsRect() {
			_, err = DiffClassRect(c, t.Extents(), pc.tolerance())
		} else {
			_, err = DiffClassTile(c, t, pc.tolerance())
		}
		if err != nil {
			r.add(name, false, fmt.Sprintf("class %v: %v", c, err))
			return
		}
	}
	r.add(name, true, "")
}

// compareModelExact applies the documented disagreement rules between one
// class's model prediction and exact enumeration over a tile of vol
// points:
//
//   - A model of +Inf (overflow sentinel) for an enumerable tile fails.
//   - Exact and Enumerated predictions must equal enumeration.
//   - Approximate predictions with tight=true (the tile extents dominate
//     the spread coefficients — the paper's working assumption) must fall
//     within the relative tolerance of enumeration.
//   - Approximate predictions with tight=false are held to the sandwich
//     invariants that hold unconditionally: exact ≤ refs·vol (each
//     reference touches at most vol elements), exact ≥ vol when the
//     reduced reference matrix is square nonsingular (each reference then
//     touches exactly vol distinct elements), and model ≥ vol (every
//     model form is the volume term plus nonnegative spread terms).
func compareModelExact(c footprint.Class, model float64, ex footprint.Exactness, exact, vol float64, tight bool, tol float64) string {
	if math.IsInf(model, 1) {
		return "model footprint overflowed for an enumerable tile"
	}
	switch ex {
	case footprint.Exact, footprint.Enumerated:
		if model != exact {
			return fmt.Sprintf("%s model %v != exact %v", ex, model, exact)
		}
	default:
		if tight {
			denom := exact
			if denom < 1 {
				denom = 1
			}
			if rel := math.Abs(model-exact) / denom; rel > tol {
				return fmt.Sprintf("approximate model %v vs exact %v: relative error %.3f exceeds tolerance %.3f", model, exact, rel, tol)
			}
			return ""
		}
		refs := float64(c.NumRefs())
		if exact > refs*vol {
			return fmt.Sprintf("exact footprint %v exceeds the refs·volume bound %v·%v", exact, refs, vol)
		}
		gr := c.Reduced.G
		if gr.Rows() == gr.Cols() && gr.IsNonsingular() && exact < vol {
			return fmt.Sprintf("exact footprint %v below the tile volume %v with injective references", exact, vol)
		}
		if model < vol {
			return fmt.Sprintf("approximate model %v below the tile volume %v", model, vol)
		}
	}
	return ""
}

// rectForEach streams the origin-anchored rectangle with the given extents.
func rectForEach(ext []int64) func(yield func(p []int64) bool) {
	hi := make([]int64, len(ext))
	for k, e := range ext {
		hi[k] = e - 1
	}
	return tile.Bounds{Lo: make([]int64, len(ext)), Hi: hi}.ForEach
}

func coordKey(c []int64) string {
	out := make([]byte, 0, len(c)*8)
	for _, v := range c {
		out = fmt.Appendf(out, "%d,", v)
	}
	return string(out)
}
