package verify

import (
	"errors"
	"math/rand"
	"testing"
)

// TestDiffCommSetsCorpus holds the communication-set engines to the
// enumeration oracle, the message-passing executor to the prediction,
// and — where eligible — the coherence sandwich, on the same seeded
// 220-nest corpus the footprint differential harness uses.
func TestDiffCommSetsCorpus(t *testing.T) {
	rnd := rand.New(rand.NewSource(42))
	const want = 220
	checked := 0
	var withComm, values, sandwich, analytic, bounded int
	for i := 0; checked < want; i++ {
		if i >= 6*want {
			t.Fatalf("generator kept producing unsupported nests: %d/%d after %d tries", checked, want, i)
		}
		src := RandomNest(rnd, GenConfig{})
		res, err := DiffCommSets(src, 4)
		if errors.Is(err, ErrCommDiffUnsupported) {
			// Front-of-pipeline rejection at P=4 (usually an infeasible
			// 1-D grid); a narrower machine keeps the nest in the corpus.
			res, err = DiffCommSets(src, 2)
			if errors.Is(err, ErrCommDiffUnsupported) {
				continue
			}
		}
		if err != nil {
			t.Fatalf("comm-set differential failed:\n%s\n%v", src, err)
		}
		checked++
		if res.Words > 0 {
			withComm++
		}
		if res.ValuesChecked {
			values++
		}
		if res.CachesimChecked {
			sandwich++
		}
		if res.Method == "analytic" {
			analytic++
		}
		if res.LowerBoundChecked {
			bounded++
		}
	}
	t.Logf("%d nests: %d with communication, %d value-checked, %d sandwich-checked, %d fully analytic, %d lower-bounded",
		checked, withComm, values, sandwich, analytic, bounded)
	// The corpus must actually exercise every leg, not vacuously pass.
	if withComm < want/10 {
		t.Fatalf("only %d/%d nests had any communication; corpus too weak", withComm, checked)
	}
	if values < 10 {
		t.Fatalf("only %d nests took the msgexec value-equality leg", values)
	}
	if sandwich < 10 {
		t.Fatalf("only %d nests took the cachesim sandwich leg", sandwich)
	}
	if analytic < want/4 {
		t.Fatalf("only %d/%d nests used the analytic engine", analytic, checked)
	}
	if bounded < 10 {
		t.Fatalf("only %d nests took the lower-bound sandwich leg", bounded)
	}
}

// TestDiffCommSetsStencils pins the differential on the paper-flavored
// stencils the message-passing tests also use.
func TestDiffCommSetsStencils(t *testing.T) {
	cases := []struct {
		name string
		src  string
		comm bool // expect cross-tile dataflow?
	}{
		{"forward1d", "doall (i, 0, 63) A[i] = A[i + 1] + B[i] enddoall", true},
		{"forward2d", "doall (i, 1, 24) doall (j, 1, 24) A[i, j] = A[i + 1, j] + A[i, j + 2] + 1 enddoall enddoall", true},
		// B read-only, A write-only: no writer→reader flow at all, so the
		// analysis must certify the plan communication-free.
		{"readonly2d", "doall (i, 1, 32) doall (j, 1, 32) A[i, j] = B[i, j] + B[i + 1, j + 3] enddoall enddoall", false},
		{"seqwrapped", "doseq (s, 1, 3) doall (i, 1, 20) doall (j, 1, 20) A[i, j] = A[i + 1, j] + A[i, j + 1] enddoall enddoall enddoseq", true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res, err := DiffCommSets(tc.src, 4)
			if err != nil {
				t.Fatalf("%v", err)
			}
			if (res.Words > 0) != tc.comm {
				t.Fatalf("predicted %d words/epoch, want comm=%v", res.Words, tc.comm)
			}
			if !res.ValuesChecked {
				t.Fatalf("forward-only stencil should admit the msgexec value check")
			}
		})
	}
}
