package verify

import (
	"fmt"
	"reflect"

	"looppart/internal/footprint"
	"looppart/internal/partition"
	"looppart/internal/telemetry"
)

// Closed-form differential check: the analytic rectangular fast path
// (partition/closedform.go) claims its plans are byte-identical to the
// enumerative argmin, in domain and out. DiffClosedForm runs both sides
// of that claim for one analysis and compares the plans structurally —
// grid, extents, footprint bits, exactness, traffic — which is exactly
// what the canonical JSON encoding serializes, so structural equality
// here is byte identity at the serving layer.

// DiffClosedForm partitions a on procs processors twice — once with the
// closed-form fast path enabled, once forced onto the enumerative search
// — and returns an error unless the two plans (or the two errors) are
// identical. hit reports which branch the enabled run took: true when
// the analytic path served the plan, false when it fell back.
//
// The check temporarily installs a private telemetry registry (to read
// the partition.closedform.{hits,fallbacks} counters) and toggles the
// process-wide fast-path switch, so callers must not run concurrent
// planning — the same contract as Service.Explain.
func DiffClosedForm(a *footprint.Analysis, procs int) (hit bool, err error) {
	reg := telemetry.New()
	prev := telemetry.SetActive(reg)
	defer telemetry.SetActive(prev)

	wasDisabled := partition.SetClosedFormDisabled(false)
	defer partition.SetClosedFormDisabled(wasDisabled)
	fast, fastErr := partition.OptimizeRect(a, procs)
	hits := reg.Counter("partition.closedform.hits").Value()
	fallbacks := reg.Counter("partition.closedform.fallbacks").Value()
	hit = hits > 0

	partition.SetClosedFormDisabled(true)
	oracle, oracleErr := partition.OptimizeRect(a, procs)

	if (fastErr == nil) != (oracleErr == nil) {
		return hit, fmt.Errorf("verify: closed-form error mismatch: %v vs enumerated %v", fastErr, oracleErr)
	}
	if fastErr != nil {
		if fastErr.Error() != oracleErr.Error() {
			return hit, fmt.Errorf("verify: closed-form error %q != enumerated %q", fastErr, oracleErr)
		}
		return hit, nil
	}
	if hits+fallbacks != 1 {
		return hit, fmt.Errorf("verify: closed-form path took %d hits and %d fallbacks for one search (want exactly one branch)", hits, fallbacks)
	}
	if !reflect.DeepEqual(fast, oracle) {
		return hit, fmt.Errorf("verify: closed-form plan %+v != enumerated argmin %+v", fast, oracle)
	}
	return hit, nil
}

// DiffClosedFormNest is DiffClosedForm from loopir source text. Parse or
// analysis errors are returned as-is (random-corpus drivers treat them as
// "nest rejected"); a plan mismatch is a verification failure.
func DiffClosedFormNest(src string, procs int) (hit bool, err error) {
	a, err := analyzeSource(src)
	if err != nil {
		return false, err
	}
	return DiffClosedForm(a, procs)
}
