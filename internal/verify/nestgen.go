package verify

import (
	"fmt"
	"math/rand"
	"strings"
)

// Randomized affine nest generation for the differential harness. The
// generator emits loopir source text (so the full parse→analyze pipeline
// is exercised, not just hand-built matrices) covering the shapes the
// paper's analysis distinguishes: single references, translated pairs
// (Lemma 3), larger uniformly generated clusters (the spread heuristic),
// skewed and rank-deficient reference matrices (§3.4.1 reduction), and
// multi-array bodies.

// GenConfig bounds the generated nests. The zero value is replaced by
// DefaultGenConfig.
type GenConfig struct {
	MaxDepth   int   // loop nest depth 1..MaxDepth
	MaxExtent  int64 // per-loop extent 2..MaxExtent (small: harness enumerates)
	MaxCoef    int64 // |subscript coefficient| ≤ MaxCoef
	MaxOffset  int64 // |subscript offset| ≤ MaxOffset
	MaxArrays  int   // distinct arrays per nest
	MaxRefsPer int   // references per array
}

// DefaultGenConfig keeps iteration spaces small enough that every
// generated nest can be enumerated exactly.
var DefaultGenConfig = GenConfig{
	MaxDepth:   3,
	MaxExtent:  7,
	MaxCoef:    2,
	MaxOffset:  3,
	MaxArrays:  3,
	MaxRefsPer: 3,
}

func (g GenConfig) orDefault() GenConfig {
	if g.MaxDepth == 0 {
		return DefaultGenConfig
	}
	return g
}

// RandomNest emits the source text of a random affine doall nest. The
// same *rand.Rand seed yields the same nest, making harness runs
// reproducible.
func RandomNest(rnd *rand.Rand, cfg GenConfig) string {
	cfg = cfg.orDefault()
	depth := 1 + rnd.Intn(cfg.MaxDepth)
	vars := make([]string, depth)
	var b strings.Builder
	for k := 0; k < depth; k++ {
		vars[k] = fmt.Sprintf("i%d", k)
		lo := int64(rnd.Intn(3)) // 0..2
		hi := lo + 1 + rnd.Int63n(cfg.MaxExtent-1)
		fmt.Fprintf(&b, "doall (%s, %d, %d) ", vars[k], lo, hi)
	}

	arrays := 1 + rnd.Intn(cfg.MaxArrays)
	var terms []string
	var lhs string
	for ai := 0; ai < arrays; ai++ {
		name := string(rune('A' + ai))
		dim := 1 + rnd.Intn(2)
		// One G per array: references to the same array share it, so the
		// analysis groups them into uniformly generated classes.
		coefs := make([][]int64, dim)
		for d := 0; d < dim; d++ {
			coefs[d] = make([]int64, depth)
			for k := range coefs[d] {
				coefs[d][k] = rnd.Int63n(2*cfg.MaxCoef+1) - cfg.MaxCoef
			}
		}
		refs := 1 + rnd.Intn(cfg.MaxRefsPer)
		for ri := 0; ri < refs; ri++ {
			subs := make([]string, dim)
			for d := 0; d < dim; d++ {
				off := rnd.Int63n(2*cfg.MaxOffset+1) - cfg.MaxOffset
				subs[d] = affineText(coefs[d], vars, off)
			}
			ref := fmt.Sprintf("%s[%s]", name, strings.Join(subs, ", "))
			if lhs == "" {
				lhs = ref
			} else {
				terms = append(terms, ref)
			}
		}
	}
	b.WriteString(lhs)
	b.WriteString(" = ")
	if len(terms) == 0 {
		b.WriteString("0")
	} else {
		b.WriteString(strings.Join(terms, " + "))
	}
	for k := 0; k < depth; k++ {
		b.WriteString(" enddoall")
	}
	return b.String()
}

// affineText renders Σ coef[k]·vars[k] + off in the loopir grammar.
func affineText(coefs []int64, vars []string, off int64) string {
	var parts []string
	for k, c := range coefs {
		switch c {
		case 0:
		case 1:
			parts = append(parts, vars[k])
		case -1:
			parts = append(parts, "-"+vars[k])
		default:
			parts = append(parts, fmt.Sprintf("%d*%s", c, vars[k]))
		}
	}
	if off != 0 || len(parts) == 0 {
		parts = append(parts, fmt.Sprintf("%d", off))
	}
	// The grammar accepts "a + -b"? Safer to join with + and rely on the
	// parser's signed-term handling via explicit sign folding.
	out := parts[0]
	for _, p := range parts[1:] {
		if strings.HasPrefix(p, "-") {
			out += " - " + p[1:]
		} else {
			out += " + " + p
		}
	}
	return out
}
