package verify

import (
	"fmt"
	"math/big"

	"looppart/internal/intmat"
	"looppart/internal/lattice"
)

// Algebraic invariants of the integer core. Each check returns nil when
// the invariant holds and a descriptive error otherwise; the property
// tests and fuzz targets call these over randomized inputs.

// CheckHNF asserts the contract of the row Hermite normal form of a:
//
//	H = U·A with U unimodular (|det U| = 1),
//	H in row echelon form with positive pivots,
//	entries below each pivot zero and entries above reduced into [0, pivot).
func CheckHNF(a intmat.Mat) error {
	hr, err := intmat.HNFChecked(a)
	if err != nil {
		// Overflow is a legal outcome for adversarial inputs — the
		// invariant is that it is *reported*, never silent.
		return nil
	}
	// The product is evaluated over big.Int: U·A equals the (representable)
	// H, but intermediate products of large transform coefficients can
	// exceed int64 even so.
	if !bigEqualsMat(bigProduct(hr.U, a), hr.H) {
		return fmt.Errorf("verify: H != U·A\nH = %v\nU = %v\nA = %v", hr.H, hr.U, a)
	}
	if !hr.U.IsUnimodular() {
		return fmt.Errorf("verify: HNF transform U = %v is not unimodular", hr.U)
	}
	if len(hr.PivotCols) != hr.Rank {
		return fmt.Errorf("verify: %d pivot columns for rank %d", len(hr.PivotCols), hr.Rank)
	}
	prevCol := -1
	for k, col := range hr.PivotCols {
		if col <= prevCol {
			return fmt.Errorf("verify: pivot columns %v not strictly increasing", hr.PivotCols)
		}
		prevCol = col
		piv := hr.H.At(k, col)
		if piv <= 0 {
			return fmt.Errorf("verify: pivot H[%d][%d] = %d not positive", k, col, piv)
		}
		// Entries below the pivot must be zero; the whole rows beyond the
		// rank must be zero.
		for i := k + 1; i < hr.H.Rows(); i++ {
			if hr.H.At(i, col) != 0 {
				return fmt.Errorf("verify: nonzero entry H[%d][%d] below pivot row %d", i, col, k)
			}
		}
		// Entries above the pivot reduced into [0, pivot).
		for i := 0; i < k; i++ {
			if v := hr.H.At(i, col); v < 0 || v >= piv {
				return fmt.Errorf("verify: H[%d][%d] = %d not reduced into [0, %d)", i, col, v, piv)
			}
		}
		// Echelon: entries left of the pivot in the pivot row are zero.
		for j := 0; j < col; j++ {
			if hr.H.At(k, j) != 0 {
				return fmt.Errorf("verify: nonzero entry H[%d][%d] left of pivot column %d", k, j, col)
			}
		}
	}
	for i := hr.Rank; i < hr.H.Rows(); i++ {
		for j := 0; j < hr.H.Cols(); j++ {
			if hr.H.At(i, j) != 0 {
				return fmt.Errorf("verify: nonzero entry H[%d][%d] beyond rank %d", i, j, hr.Rank)
			}
		}
	}
	return nil
}

// CheckSNF asserts the contract of the Smith normal form of a:
//
//	S = U·A·V with U, V unimodular, S diagonal,
//	and the invariant factors satisfy s₁ | s₂ | … | s_r with sᵢ > 0.
func CheckSNF(a intmat.Mat) error {
	sr, err := intmat.SNFChecked(a)
	if err != nil {
		return nil // reported overflow is a legal outcome
	}
	// Over big.Int: U·A·V equals the (representable) S, but the
	// intermediate U·A routinely exceeds int64 for adversarial inputs.
	if !bigEqualsMat(bigProduct(sr.U, a, sr.V), sr.S) {
		return fmt.Errorf("verify: S != U·A·V\nS = %v\nU = %v\nA = %v\nV = %v", sr.S, sr.U, a, sr.V)
	}
	if !sr.U.IsUnimodular() {
		return fmt.Errorf("verify: SNF transform U = %v is not unimodular", sr.U)
	}
	if !sr.V.IsUnimodular() {
		return fmt.Errorf("verify: SNF transform V = %v is not unimodular", sr.V)
	}
	for i := 0; i < sr.S.Rows(); i++ {
		for j := 0; j < sr.S.Cols(); j++ {
			if i != j && sr.S.At(i, j) != 0 {
				return fmt.Errorf("verify: S not diagonal at (%d,%d)", i, j)
			}
		}
	}
	for k, inv := range sr.Invariants {
		if inv <= 0 {
			return fmt.Errorf("verify: invariant factor s%d = %d not positive", k+1, inv)
		}
		if k > 0 && inv%sr.Invariants[k-1] != 0 {
			return fmt.Errorf("verify: divisibility chain broken: s%d = %d does not divide s%d = %d",
				k, sr.Invariants[k-1], k+1, inv)
		}
	}
	return nil
}

// bigProduct multiplies the matrices left to right over big.Int, immune
// to intermediate overflow.
func bigProduct(ms ...intmat.Mat) [][]*big.Int {
	cur := bigOf(ms[0])
	for _, m := range ms[1:] {
		nxt := bigOf(m)
		out := make([][]*big.Int, len(cur))
		for i := range cur {
			out[i] = make([]*big.Int, m.Cols())
			for j := range out[i] {
				s := new(big.Int)
				for k := range nxt {
					s.Add(s, new(big.Int).Mul(cur[i][k], nxt[k][j]))
				}
				out[i][j] = s
			}
		}
		cur = out
	}
	return cur
}

func bigOf(m intmat.Mat) [][]*big.Int {
	out := make([][]*big.Int, m.Rows())
	for i := range out {
		out[i] = make([]*big.Int, m.Cols())
		for j := range out[i] {
			out[i][j] = big.NewInt(m.At(i, j))
		}
	}
	return out
}

func bigEqualsMat(p [][]*big.Int, m intmat.Mat) bool {
	if len(p) != m.Rows() {
		return false
	}
	for i := range p {
		if len(p[i]) != m.Cols() {
			return false
		}
		for j := range p[i] {
			if !p[i][j].IsInt64() || p[i][j].Int64() != m.At(i, j) {
				return false
			}
		}
	}
	return true
}

// CheckTheorem3 asserts the bounded-lattice intersection test against a
// brute-force walk: the lattice with generators gen and bounds λ intersects
// its translation by t iff some integer u with |uᵢ| ≤ λᵢ has u·gen = t.
// The walk is exponential in the generator count; callers keep gen small.
func CheckTheorem3(gen intmat.Mat, bounds []int64, t []int64) error {
	if !intmat.IsOneToOne(gen) {
		// With dependent generators the coordinate vector is not unique and
		// the closed-form test does not apply (the analysis reduces to
		// independent columns first, §3.4.1).
		return nil
	}
	b := lattice.New(gen, bounds)
	_, got := b.IntersectsTranslate(t)
	want := bruteForceIntersects(gen, bounds, t)
	if got != want {
		return fmt.Errorf("verify: Theorem 3 disagrees with brute force for gen=%v bounds=%v t=%v: model=%v brute=%v",
			gen, bounds, t, got, want)
	}
	return nil
}

// bruteForceIntersects searches the coefficient box [-λ, λ]ⁿ exhaustively.
func bruteForceIntersects(gen intmat.Mat, bounds []int64, t []int64) bool {
	n := gen.Rows()
	coef := make([]int64, n)
	var rec func(k int) bool
	rec = func(k int) bool {
		if k == n {
			q, err := gen.MulVecChecked(coef)
			if err != nil {
				return false
			}
			for j := range q {
				if q[j] != t[j] {
					return false
				}
			}
			return true
		}
		for v := -bounds[k]; v <= bounds[k]; v++ {
			coef[k] = v
			if rec(k + 1) {
				return true
			}
		}
		coef[k] = 0
		return false
	}
	return rec(0)
}
