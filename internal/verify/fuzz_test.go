package verify

import (
	"errors"
	"math/rand"
	"testing"

	"looppart/internal/footprint"
	"looppart/internal/intmat"
	"looppart/internal/loopir"
)

// Go-native fuzz targets over the differential harness. `go test` runs
// them as seed-corpus regression tests; scripts/verify.sh runs each as a
// short fuzzing smoke (-fuzz -fuzztime=10s).

// fuzzDiffable bounds the nests the fuzzer may push through the
// model-vs-enumeration diff: the harness enumerates the full iteration
// space, so extents must stay small, and coefficient magnitudes must stay
// far from the int64 overflow cliffs the analysis treats as errors.
func fuzzDiffable(n *loopir.Nest) bool {
	if len(n.Loops) > 4 {
		return false
	}
	space := int64(1)
	for _, l := range n.Loops {
		if l.Lo < -64 || l.Hi > 64 {
			return false
		}
		space *= l.Extent()
		if space > 1<<14 {
			return false
		}
	}
	for _, acc := range n.Accesses() {
		if len(acc.Ref.Subs) > 3 {
			return false
		}
		for _, sub := range acc.Ref.Subs {
			if sub.Const < -64 || sub.Const > 64 {
				return false
			}
			for _, c := range sub.Coef {
				if c < -8 || c > 8 {
					return false
				}
			}
		}
	}
	return true
}

// FuzzRectFootprint mutates loopir source text and asserts the footprint
// models against exact enumeration on every nest that parses and stays
// within the enumeration bounds.
func FuzzRectFootprint(f *testing.F) {
	f.Add("doall (i, 0, 7) A[i] = A[i - 1] enddoall")
	f.Add("doall (i, 0, 7) doall (j, 0, 7) A[i, j] = A[i, j - 1] + A[i - 1, j] enddoall enddoall")
	f.Add("doall (i, 1, 6) doall (j, 1, 6) B[2*i - j] = B[2*i - j + 3] + B[2*i - j - 2] enddoall enddoall")
	f.Add("doall (i, 0, 5) doall (j, 0, 5) A[i + j, i - j] = A[i + j + 1, i - j - 1] + B[j, i] enddoall enddoall")
	// Off-domain nests for the closed-form fast path (see closedform_test.go):
	// extent at/below the spread coefficient, and dependent subscript columns
	// whose §3.4.1 reduction leaves a non-square G'. These keep the fuzzer
	// mutating around the fallback boundary.
	f.Add("doall (i, 0, 4) doall (j, 0, 4) A[i, j] = A[i + 5, j] enddoall enddoall")
	f.Add("doall (i, 0, 7) doall (j, 0, 7) A[i + j, i + j] = A[i + j - 1, i + j - 1] enddoall enddoall")
	rnd := rand.New(rand.NewSource(99))
	for i := 0; i < 8; i++ {
		f.Add(RandomNest(rnd, GenConfig{}))
	}
	f.Fuzz(func(t *testing.T, src string) {
		n, err := loopir.Parse(src, nil)
		if err != nil || n.Validate() != nil || !fuzzDiffable(n) {
			t.Skip()
		}
		a, err := footprint.Analyze(n)
		if err != nil {
			t.Skip()
		}
		if _, err := DiffAnalysis(a, DefaultTolerance); err != nil {
			t.Fatalf("model disagrees with enumeration:\n%s\n%v", src, err)
		}
	})
}

// FuzzCommSets mutates loopir source text and runs the full
// communication-set differential on every nest that parses and stays
// within the enumeration bounds: engines vs oracle to the element, the
// message-passing executor's measured words vs the prediction, and the
// coherence sandwich where eligible. Front-of-pipeline rejections
// (ErrCommDiffUnsupported) are skips; any disagreement is a crash.
func FuzzCommSets(f *testing.F) {
	f.Add("doall (i, 0, 15) A[i] = A[i + 2] + 1 enddoall")
	f.Add("doall (i, 0, 15) A[i] = A[i - 1] + 1 enddoall")
	f.Add("doall (i, 1, 8) doall (j, 1, 8) B[i, j] = B[i + 1, j + 3] + 1 enddoall enddoall")
	f.Add("doall (i, 101, 110) doall (j, 1, 10) B[i+j, i-j-1] = B[i+j+4, i-j+3] + 1 enddoall enddoall")
	f.Add("doseq (s, 1, 3) doall (i, 1, 12) doall (j, 1, 12) A[i, j] = A[i + 1, j] + A[i, j + 1] enddoall enddoall enddoseq")
	f.Add("doall (i, 0, 12) doall (j, 0, 6) A[i + j] = B[j] + 1 enddoall enddoall")
	rnd := rand.New(rand.NewSource(7))
	for i := 0; i < 6; i++ {
		f.Add(RandomNest(rnd, GenConfig{}))
	}
	f.Fuzz(func(t *testing.T, src string) {
		n, err := loopir.Parse(src, nil)
		if err != nil || n.Validate() != nil || !fuzzDiffable(n) {
			t.Skip()
		}
		if _, err := DiffCommSets(src, 3); err != nil {
			if errors.Is(err, ErrCommDiffUnsupported) {
				t.Skip()
			}
			t.Fatalf("comm-set differential failed:\n%s\n%v", src, err)
		}
	})
}

// FuzzHNF decodes raw bytes into a small integer matrix and asserts the
// Hermite and Smith normal form contracts (CheckHNF / CheckSNF): either a
// reported overflow, or transforms that reproduce the input exactly.
func FuzzHNF(f *testing.F) {
	f.Add([]byte{2, 2, 1, 2, 3, 4})
	f.Add([]byte{3, 3, 2, 4, 4, 250, 6, 12, 10, 4, 16})
	f.Add([]byte{1, 4, 0, 0, 0, 0})
	f.Add([]byte{4, 1, 128, 127, 1, 255})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, ok := matFromBytes(data)
		if !ok {
			t.Skip()
		}
		if err := CheckHNF(m); err != nil {
			t.Fatalf("HNF contract violated for %v: %v", m, err)
		}
		if err := CheckSNF(m); err != nil {
			t.Fatalf("SNF contract violated for %v: %v", m, err)
		}
	})
}

// matFromBytes decodes [rows, cols, entries...] with each entry an int8.
// Undersized or oversized shapes reject the input.
func matFromBytes(data []byte) (intmat.Mat, bool) {
	if len(data) < 3 {
		return intmat.Mat{}, false
	}
	rows := int(data[0]%4) + 1
	cols := int(data[1]%4) + 1
	if len(data)-2 < rows*cols {
		return intmat.Mat{}, false
	}
	m := intmat.NewMat(rows, cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			m.Set(i, j, int64(int8(data[2+i*cols+j])))
		}
	}
	return m, true
}
