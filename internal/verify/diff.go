package verify

import (
	"fmt"

	"looppart/internal/footprint"
	"looppart/internal/intmat"
	"looppart/internal/lattice"
	"looppart/internal/loopir"
	"looppart/internal/tile"
)

// Differential harness: parse → analyze → predict → enumerate → compare.

// DiffResult summarizes one nest's model-vs-enumeration comparison.
type DiffResult struct {
	Classes int // classes compared
	Exact   int // predictions with no tolerance (Exact / Enumerated)
	Approx  int // predictions compared under the relative tolerance
}

// DiffAnalysis checks every class of an analysis against exact enumeration
// on the nest's own iteration space (assumed small enough to enumerate):
//
//   - RectFootprint for the full-space extents and for a shrunken tile,
//     with the Exact/Approximate disagreement rules of compareModelExact;
//   - for two-reference classes, Theorem 3's intersection test against a
//     brute-force coefficient walk.
//
// It returns the comparison counts and the first disagreement found.
func DiffAnalysis(a *footprint.Analysis, tol float64) (DiffResult, error) {
	var res DiffResult
	space := tile.BoundsOf(a.Nest)
	if space.Dim() == 0 {
		return res, nil
	}
	full := space.Extents()
	// A shrunken tile exercises partial-tile geometry, where boundary
	// terms are proportionally largest.
	half := make([]int64, len(full))
	for k, e := range full {
		half[k] = (e + 1) / 2
	}
	for _, c := range a.Classes {
		for _, ext := range [][]int64{full, half} {
			approx, err := DiffClassRect(c, ext, tol)
			if err != nil {
				return res, fmt.Errorf("class %v ext %v: %w", c, ext, err)
			}
			if approx {
				res.Approx++
			} else {
				res.Exact++
			}
		}
		if err := diffTheorem3(c, full); err != nil {
			return res, err
		}
		res.Classes++
	}
	return res, nil
}

// DiffClassRect compares one class's rectangular-tile model against exact
// enumeration under the documented disagreement rules (see
// compareModelExact). It reports whether the comparison ran in the
// approximate regime.
func DiffClassRect(c footprint.Class, ext []int64, tol float64) (approx bool, err error) {
	model, ex := c.RectFootprint(ext)
	exact := float64(footprint.ExactClassFootprintFunc(c, rectForEach(ext)))
	tight := ex != footprint.Approximate || rectModelDomain(c, ext)
	if bad := compareModelExact(c, model, ex, exact, float64(rectVolume(ext)), tight, tol); bad != "" {
		return ex == footprint.Approximate, fmt.Errorf("%s", bad)
	}
	return ex == footprint.Approximate, nil
}

// DiffClassTile is DiffClassRect for a hyperparallelepiped tile (Theorem 2
// model). Non-rectangular geometry has no per-dimension extents to test
// spread dominance against, so approximate predictions are held only to
// the sandwich invariants.
func DiffClassTile(c footprint.Class, t tile.Tile, tol float64) (approx bool, err error) {
	model, ex := c.TileFootprint(t)
	exact := float64(footprint.ExactClassFootprint(c, tile.OriginPoints(t)))
	tight := ex != footprint.Approximate
	if t.IsRect() {
		tight = tight || rectModelDomain(c, t.Extents())
	}
	if bad := compareModelExact(c, model, ex, exact, float64(t.PointCount()), tight, tol); bad != "" {
		return ex == footprint.Approximate, fmt.Errorf("%s", bad)
	}
	return ex == footprint.Approximate, nil
}

// rectModelDomain reports whether the tile extents dominate the class's
// spread coefficients — the paper's working assumption (§2.2: "tile sizes
// are large relative to the offsets") under which the ≈ models carry
// quantitative accuracy. Outside this regime boundary terms dominate and
// only the sandwich invariants are enforced.
func rectModelDomain(c footprint.Class, ext []int64) bool {
	u, _, ok := c.SpreadCoeffs()
	if !ok {
		return false
	}
	for k, ui := range u {
		if k >= len(ext) || float64(ext[k]) <= ui {
			return false
		}
	}
	return true
}

func rectVolume(ext []int64) int64 {
	v := int64(1)
	for _, e := range ext {
		v *= e
	}
	return v
}

// diffTheorem3 cross-checks the bounded-lattice intersection test on the
// offset differences actually present in the class.
func diffTheorem3(c footprint.Class, ext []int64) error {
	gr := c.Reduced.G
	if gr.Rows() > 3 {
		return nil // brute-force walk is exponential in the generator count
	}
	bounds := make([]int64, gr.Rows())
	for k := range bounds {
		bounds[k] = ext[k] - 1
	}
	for _, r := range c.Refs[1:] {
		diff := make([]int64, len(r.A))
		for k := range diff {
			diff[k] = r.A[k] - c.Refs[0].A[k]
		}
		if err := CheckTheorem3(gr, bounds, c.Reduced.Project(diff)); err != nil {
			return err
		}
	}
	return nil
}

// DiffNest runs the full pipeline on loopir source text. Parse or analysis
// errors are returned as-is (callers driving random sources treat them as
// "nest rejected", not as verification failures); a model-vs-enumeration
// disagreement is a verification failure.
func DiffNest(src string, tol float64) (DiffResult, error) {
	a, err := analyzeSource(src)
	if err != nil {
		return DiffResult{}, err
	}
	return DiffAnalysis(a, tol)
}

// analyzeSource runs parse → validate → classify on loopir source text.
func analyzeSource(src string) (*footprint.Analysis, error) {
	n, err := loopir.Parse(src, nil)
	if err != nil {
		return nil, err
	}
	return footprint.Analyze(n)
}

// UnionSizeAgainstEnumeration cross-checks Lemma 3's closed form against
// point-set enumeration for one generator set, bounds, and coefficient
// vector — the lattice-level analogue of the footprint diff. Lemma 3
// assumes independent generators; dependent sets are skipped.
func UnionSizeAgainstEnumeration(gen [][]int64, bounds, u []int64) error {
	m := intmat.FromRows(gen)
	if !intmat.IsOneToOne(m) {
		return nil
	}
	b := lattice.New(m, bounds)
	base := b.Points()
	t, err := b.Gen.MulVecChecked(u)
	if err != nil {
		return nil // unrepresentable translation: nothing to compare
	}
	exact := lattice.UnionSize(base, lattice.Translate(base, t))
	model := lattice.UnionSizeModel(bounds, u)
	if model != exact {
		return fmt.Errorf("verify: Lemma 3 union size %d != enumerated %d for gen=%v bounds=%v u=%v",
			model, exact, gen, bounds, u)
	}
	return nil
}
