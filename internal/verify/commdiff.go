package verify

import (
	"errors"
	"fmt"

	"looppart/internal/cachesim"
	"looppart/internal/commsets"
	"looppart/internal/exec"
	"looppart/internal/footprint"
	"looppart/internal/loopir"
	"looppart/internal/msgexec"
	"looppart/internal/partition"
	"looppart/internal/tile"
)

// CommDiff is the outcome of one communication-set differential: the
// engines against the enumeration oracle, the message-passing executor
// against the prediction, and (when the nest is eligible) the
// coherence-traffic sandwich against cachesim.
type CommDiff struct {
	Procs int
	// Words is the predicted inter-processor words per epoch.
	Words  int64
	Method string
	// MsgexecWords is what the message-passing run actually moved
	// (equal to Words × epochs — Run errors otherwise).
	MsgexecWords int64
	// ValuesChecked reports the message-passing run reproduced the
	// sequential result (plans with a unique producer per element, no
	// cross-class dataflow, and no backward same-epoch dependence).
	ValuesChecked bool
	// CachesimChecked reports the sandwich bound ran: on an infinite
	// cache, a steady-state epoch's coherence misses must lie in
	// [Words, 2·Words] — each transferred element costs its consumer at
	// least one coherence miss per epoch (its copy is invalidated by the
	// producer's unique write) and at most two (one stale reload before
	// the write, one after).
	CachesimChecked bool
	// SteadyCoherence is the steady-state epoch's coherence misses.
	SteadyCoherence int64
	// LowerBoundChecked reports the lower-bound sandwich ran: the
	// Dinh–Demmel bound qualified at least one reference class, so
	// LowerBound ≤ Words must hold — the served rect plan's grid is one of
	// the factorization grids the bound minimizes over.
	LowerBoundChecked bool
	// LowerBound is the computed communication lower bound in words.
	LowerBound int64
}

// ErrCommDiffUnsupported marks nests the differential cannot take
// end-to-end — front-of-pipeline rejections (parse, validation,
// analysis, search infeasibility), as opposed to a disagreement between
// the comm-set engines and their checks.
var ErrCommDiffUnsupported = errors.New("commdiff: unsupported nest")

// commDiffEpochs is how many wrapped epochs the cachesim leg simulates;
// epochs ≥ 2 behave identically on an infinite cache, so epoch 3 minus
// epoch 2 isolates one steady-state epoch.
const commDiffEpochs = 3

// DiffCommSets builds the rect plan for src on procs processors,
// computes its exact communication sets, and differentially checks them
// three ways: engine counts against the enumeration oracle
// element-for-element, the message-passing executor's measured words
// against the prediction, and — for unique-writer nests — the cachesim
// coherence-traffic sandwich. Any disagreement is an error.
func DiffCommSets(src string, procs int) (*CommDiff, error) {
	n, err := loopir.Parse(src, nil)
	if err != nil {
		return nil, fmt.Errorf("%w: parse: %v", ErrCommDiffUnsupported, err)
	}
	if err := n.Validate(); err != nil {
		return nil, fmt.Errorf("%w: validate: %v", ErrCommDiffUnsupported, err)
	}
	a, err := footprint.Analyze(n)
	if err != nil {
		return nil, fmt.Errorf("%w: analyze: %v", ErrCommDiffUnsupported, err)
	}
	// The msgexec and cachesim legs execute the nest, which needs a
	// consistent data layout (footprint analysis alone does not).
	if _, err := exec.StoreFor(n); err != nil {
		return nil, fmt.Errorf("%w: layout: %v", ErrCommDiffUnsupported, err)
	}
	rp, err := partition.OptimizeRect(a, procs)
	if err != nil {
		return nil, fmt.Errorf("%w: optimize: %v", ErrCommDiffUnsupported, err)
	}
	t := rp.Tile()
	space := tile.BoundsOf(n)
	tl, err := tile.NewTiling(t, space.Lo)
	if err != nil {
		return nil, err
	}
	asg, err := tile.Assign(tl, space, procs)
	if err != nil {
		return nil, err
	}

	spec := commsets.Spec{Analysis: a, Space: space, Procs: procs, Tile: &t, Assign: asg.ProcOf}
	comm, err := commsets.Compute(spec, commsets.Options{Materialize: true})
	if err != nil {
		return nil, fmt.Errorf("commsets: %w", err)
	}
	res := &CommDiff{Procs: procs, Words: comm.TotalWords, Method: comm.Method}

	// Leg 1: exact counts against the enumeration oracle, every class,
	// every processor pair, to the element.
	oracle, err := commsets.Oracle(spec, 0)
	if err != nil {
		return nil, fmt.Errorf("oracle: %w", err)
	}
	if err := compareOracle(comm, oracle); err != nil {
		return nil, err
	}
	if oracle.UniqueWrite != comm.UniqueWrite {
		return nil, fmt.Errorf("unique-write disagreement: engines say %v, oracle says %v",
			comm.UniqueWrite, oracle.UniqueWrite)
	}

	// Leg 2: the message-passing run must move exactly the predicted
	// words (Run errors on mismatch), and reproduce the sequential
	// result when the plan admits deterministic message passing.
	rep, err := msgexec.Run(n, asg.ProcOf, comm)
	if err != nil {
		return nil, fmt.Errorf("msgexec: %w", err)
	}
	res.MsgexecWords = rep.WordsMoved
	res.ValuesChecked = rep.ValuesChecked
	if comm.CanCheckValues() && !rep.ValuesChecked {
		return nil, fmt.Errorf("msgexec skipped the value check on an eligible plan")
	}

	// Leg 3: coherence-traffic sandwich. Eligible when every element has
	// a unique producer (so invalidation counting is per-element), the
	// nest is single-epoch (we wrap it in a fresh doseq), and no
	// reference is atomic (Appendix A treats those reads as writes,
	// outside the read/write split the bound is stated for).
	if comm.UniqueWrite && !comm.CrossClassHazard && len(n.SeqLoops()) == 0 && !hasAtomic(n) {
		steady, err := steadyCoherence(src, procs, asg.ProcOf, space.Size())
		if err != nil {
			return nil, err
		}
		res.CachesimChecked = true
		res.SteadyCoherence = steady
		if steady < comm.TotalWords || steady > 2*comm.TotalWords {
			return res, fmt.Errorf("coherence sandwich violated: steady-state epoch has %d coherence misses, comm sets predict [%d, %d]",
				steady, comm.TotalWords, 2*comm.TotalWords)
		}
	}

	// Leg 4: lower-bound sandwich. The rect plan measured above comes
	// from the factorization-grid family the Dinh–Demmel bound minimizes
	// over, so whenever the bound qualifies any reference class its value
	// must sit at or below the exact measured words — a violation means
	// either the bound over-counts or the comm sets under-count.
	if lb, err := partition.CommLowerBound(a, procs); err == nil && lb.Classes > 0 {
		res.LowerBoundChecked = true
		res.LowerBound = lb.Words
		if lb.Words > comm.TotalWords {
			return res, fmt.Errorf("lower-bound sandwich violated: bound %d words > exact comm %d words (grid %v)",
				lb.Words, comm.TotalWords, lb.Grid)
		}
	}
	return res, nil
}

func compareOracle(comm *commsets.Analysis, oracle *commsets.OracleResult) error {
	if len(comm.Classes) != len(oracle.Classes) {
		return fmt.Errorf("class count disagreement: %d vs oracle %d", len(comm.Classes), len(oracle.Classes))
	}
	for ci := range comm.Classes {
		cc := &comm.Classes[ci]
		oc := &oracle.Classes[ci]
		seen := map[[2]int]int64{}
		for _, t := range cc.Transfers {
			seen[[2]int{t.From, t.To}] = t.Words
			if t.Words != oc.Pairs[[2]int{t.From, t.To}] {
				return fmt.Errorf("class %d (%s, %s): transfer %d→%d has %d words, oracle counted %d",
					ci, cc.Array, cc.Method, t.From, t.To, t.Words, oc.Pairs[[2]int{t.From, t.To}])
			}
		}
		for pair, words := range oc.Pairs {
			if _, ok := seen[pair]; !ok && words > 0 {
				return fmt.Errorf("class %d (%s, %s): oracle found transfer %d→%d of %d words the engine missed",
					ci, cc.Array, cc.Method, pair[0], pair[1], words)
			}
		}
		if cc.Words != oc.Words {
			return fmt.Errorf("class %d (%s): %d words vs oracle %d", ci, cc.Array, cc.Words, oc.Words)
		}
	}
	return nil
}

// steadyCoherence wraps the single-epoch nest in a doseq time loop and
// replays it on an infinite cache for 2 and 3 epochs; the difference in
// coherence misses is one steady-state epoch.
func steadyCoherence(src string, procs int, assign func([]int64) int, spaceSize int64) (int64, error) {
	var last int64
	for e := commDiffEpochs - 1; e <= commDiffEpochs; e++ {
		wrapped := fmt.Sprintf("doseq (commdiffepoch, 1, %d)\n%s\nenddoseq", e, src)
		wn, err := loopir.Parse(wrapped, nil)
		if err != nil {
			return 0, fmt.Errorf("wrap: %w", err)
		}
		m, err := cachesim.New(cachesim.Config{Procs: procs, ExpectedData: int(spaceSize) * 4})
		if err != nil {
			return 0, err
		}
		if err := cachesim.RunNest(m, wn, assign); err != nil {
			return 0, err
		}
		coh := m.Finish().CoherenceMisses
		if e == commDiffEpochs {
			return coh - last, nil
		}
		last = coh
	}
	return 0, nil
}

func hasAtomic(n *loopir.Nest) bool {
	for _, acc := range n.Accesses() {
		if acc.Atomic {
			return true
		}
	}
	return false
}
