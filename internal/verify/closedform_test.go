package verify

import (
	"math/rand"
	"testing"
)

// closedFormInDomainSeeds are nests inside the closed-form domain: every
// class reduces to a square nonsingular G' with a closed-form footprint
// and the extents strictly dominate the spread coefficients. The fast
// path must serve these analytically (hit) and match the enumerated
// argmin exactly.
var closedFormInDomainSeeds = []string{
	// Example 8 geometry: nearest-neighbor stencil, spread (1, 1) « N.
	"doall (i, 0, 95) doall (j, 0, 95) A[i, j] = A[i - 1, j] + A[i, j - 1] enddoall enddoall",
	// Non-unit coefficients, still square and dominating.
	"doall (i, 0, 31) doall (j, 0, 31) B[2*i, j] = B[2*i - 2, j + 1] enddoall enddoall",
	// Three-deep symmetric stencil.
	"doall (i, 0, 23) doall (j, 0, 23) doall (k, 0, 23) C[i, j, k] = C[i - 1, j, k] + C[i, j - 1, k] + C[i, j, k - 1] enddoall enddoall enddoall",
}

// closedFormOffDomainSeeds pin the fallback branch: nests the eligibility
// test must reject, after which the enumerative search serves the same
// plan it always did.
var closedFormOffDomainSeeds = []string{
	// Extent equal to the spread coefficient (5 ≤ 5): the §2.2 working
	// assumption "tile sizes large relative to the offsets" fails, so the
	// Lagrange linearization carries no accuracy claim.
	"doall (i, 0, 4) doall (j, 0, 4) A[i, j] = A[i + 5, j] enddoall enddoall",
	// Extent one short of dominating (6 ≤ 6).
	"doall (i, 0, 5) doall (j, 0, 5) A[i, j] = A[i + 6, j] enddoall enddoall",
	// Dependent subscript columns: G has two identical columns, so the
	// §3.4.1 reduction leaves a non-square G' with no closed form.
	"doall (i, 0, 7) doall (j, 0, 7) A[i + j, i + j] = A[i + j - 1, i + j - 1] enddoall enddoall",
	// Rank-deficient single subscript over a 2-D space — same reduction,
	// one column.
	"doall (i, 0, 7) doall (j, 0, 7) A[i + j] = A[i + j - 1] enddoall enddoall",
}

// TestClosedFormInDomainSeeds pins the hit branch: analytic plan, byte-
// identical (structurally equal, hence identical canonical JSON) to the
// enumerated argmin, across processor counts with different prime shapes.
func TestClosedFormInDomainSeeds(t *testing.T) {
	for _, src := range closedFormInDomainSeeds {
		for _, procs := range []int{4, 12, 16, 60} {
			hit, err := DiffClosedFormNest(src, procs)
			if err != nil {
				t.Errorf("procs=%d nest %q: %v", procs, src, err)
				continue
			}
			if !hit {
				t.Errorf("procs=%d nest %q: expected the closed-form hit branch, got fallback", procs, src)
			}
		}
	}
}

// TestClosedFormOffDomainSeeds pins the fallback branch on the seeds the
// eligibility test must reject — and that the fallback's plan still
// matches the always-enumerative oracle.
func TestClosedFormOffDomainSeeds(t *testing.T) {
	for _, src := range closedFormOffDomainSeeds {
		for _, procs := range []int{4, 16} {
			hit, err := DiffClosedFormNest(src, procs)
			if err != nil {
				t.Errorf("procs=%d nest %q: %v", procs, src, err)
				continue
			}
			if hit {
				t.Errorf("procs=%d nest %q: expected the enumerative fallback, got a closed-form hit", procs, src)
			}
		}
	}
}

// TestClosedFormMatchesEnumerationRandom drives the closed-form diff with
// the random nest corpus: every generated nest that survives analysis
// must produce identical plans on both paths, and the corpus must
// exercise both branches (hits and fallbacks) to mean anything.
func TestClosedFormMatchesEnumerationRandom(t *testing.T) {
	rnd := rand.New(rand.NewSource(7))
	const want = 120
	checked, rejected, hits := 0, 0, 0
	for i := 0; checked < want && i < 6*want; i++ {
		src := RandomNest(rnd, GenConfig{})
		procs := []int{4, 8, 16}[i%3]
		hit, err := DiffClosedFormNest(src, procs)
		if err != nil {
			if hit {
				t.Fatalf("nest %d (procs=%d) closed-form hit diverged:\n%s\n%v", i, procs, src, err)
			}
			// Parse/analysis/search rejection (degenerate nest, no doall
			// dimensions) — not a verification failure. A genuine plan
			// mismatch on the fallback branch would also land here, so
			// distinguish by the error text.
			if isVerifyFailure(err) {
				t.Fatalf("nest %d (procs=%d) diverged:\n%s\n%v", i, procs, src, err)
			}
			rejected++
			continue
		}
		checked++
		if hit {
			hits++
		}
	}
	if checked < want {
		t.Fatalf("only %d nests checked (want ≥ %d); %d rejected", checked, want, rejected)
	}
	if hits == 0 || hits == checked {
		t.Errorf("branch coverage skew: %d/%d closed-form hits — the corpus must exercise both the analytic path and the fallback", hits, checked)
	}
	t.Logf("checked %d nests: %d closed-form hits, %d fallbacks, %d rejected", checked, hits, checked-hits, rejected)
}

// isVerifyFailure distinguishes DiffClosedForm's own mismatch reports
// from pipeline rejections (parse/analysis/search errors).
func isVerifyFailure(err error) bool {
	s := err.Error()
	return len(s) >= len("verify:") && s[:len("verify:")] == "verify:"
}
