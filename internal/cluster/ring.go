// Package cluster scales the planning service across replicas: a
// consistent-hash ring assigns every canonical plan key one owner
// replica, a peer-fill client lets a replica that misses locally fetch
// the owner's canonical plan bytes instead of searching itself, and
// per-tenant token buckets shed abusive callers before they reach the
// planner.
//
// The design target is the ROADMAP's "millions of users" fleet: any
// replica answers any request, but each distinct plan is searched once
// fleet-wide — the owner searches (its singleflight collapsing duplicate
// owner-side requests, local and peer-initiated alike), every other
// replica fills its LRU with the owner's canonical bytes, so responses
// stay byte-identical everywhere. Membership is static per process
// (flags at boot); determinism matters more than elasticity here, since
// two replicas that disagree about ownership merely search twice, never
// answer differently.
package cluster

import (
	"hash/fnv"
	"sort"
	"strconv"
)

// DefaultVNodes is the virtual-node count per member used when none is
// configured. 64 vnodes keep the max/mean ownership ratio under ~1.3 for
// small fleets without making ring construction or the ownership gauge
// noticeable.
const DefaultVNodes = 64

// Ring is a consistent-hash ring over replica members with virtual
// nodes. It is immutable after construction and therefore safe for
// concurrent use without locks. Two rings built from the same member
// set (in any order) and vnode count agree on every Owner answer, which
// is what keeps peer fill coherent across a fleet configured replica by
// replica.
type Ring struct {
	members []string
	vnodes  int
	points  []ringPoint // sorted by hash, then member
}

// ringPoint is one virtual node: a position on the 64-bit hash circle
// and the member it votes for.
type ringPoint struct {
	hash   uint64
	member string
}

// NewRing builds a ring over members (deduplicated, order-independent)
// with vnodes virtual nodes per member (DefaultVNodes when <= 0). An
// empty member list yields a ring whose Owner is always "".
func NewRing(members []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	uniq := make([]string, 0, len(members))
	seen := make(map[string]bool, len(members))
	for _, m := range members {
		if m == "" || seen[m] {
			continue
		}
		seen[m] = true
		uniq = append(uniq, m)
	}
	sort.Strings(uniq)
	r := &Ring{
		members: uniq,
		vnodes:  vnodes,
		points:  make([]ringPoint, 0, len(uniq)*vnodes),
	}
	for _, m := range uniq {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{hash: hash64(m + "#" + strconv.Itoa(v)), member: m})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].member < r.points[j].member
	})
	return r
}

// hash64 is FNV-1a over s with a splitmix64 finalizer: stable across
// processes and Go versions, which ring agreement between independently
// booted replicas requires (maphash would differ per process). Raw
// FNV-1a avalanches poorly on near-identical inputs — member#vnode
// strings differ by a digit or two, and without the finalizer a
// 3-member ring measured a 68%/25%/7% ownership split.
func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	x := h.Sum64()
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Members returns the ring's member set, sorted.
func (r *Ring) Members() []string { return r.members }

// VNodes returns the virtual-node count per member.
func (r *Ring) VNodes() int { return r.vnodes }

// Owner returns the member owning key: the member of the first virtual
// node at or clockwise of hash(key). When several virtual nodes collide
// on exactly that hash, the tie breaks by rendezvous hashing —
// highest-random-weight over (member, key) — so the winner is a
// deterministic function of the key, not of ring construction order.
func (r *Ring) Owner(key string) string {
	if len(r.points) == 0 {
		return ""
	}
	h := hash64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	// Collect the members tied at this ring position (hash collisions
	// across members are astronomically rare but must not make two
	// replicas disagree).
	tied := r.points[i].member
	var ties []string
	for j := i + 1; j < len(r.points) && r.points[j].hash == r.points[i].hash; j++ {
		if r.points[j].member != tied {
			if ties == nil {
				ties = []string{tied}
			}
			ties = append(ties, r.points[j].member)
		}
	}
	if ties == nil {
		return tied
	}
	return rendezvousPick(ties, key)
}

// rendezvousPick returns the member with the highest hash(member|key) —
// the highest-random-weight tie-break.
func rendezvousPick(members []string, key string) string {
	var (
		best     string
		bestHash uint64
	)
	for _, m := range members {
		h := hash64(m + "|" + key)
		if best == "" || h > bestHash || (h == bestHash && m < best) {
			best, bestHash = m, h
		}
	}
	return best
}

// Owners returns up to n distinct members in ring order starting at
// key's owner — the owner first, then the members a caller would fail
// over to.
func (r *Ring) Owners(key string, n int) []string {
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.members) {
		n = len(r.members)
	}
	h := hash64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]string, 0, n)
	seen := make(map[string]bool, n)
	for k := 0; k < len(r.points) && len(out) < n; k++ {
		m := r.points[(i+k)%len(r.points)].member
		if !seen[m] {
			seen[m] = true
			out = append(out, m)
		}
	}
	return out
}

// OwnedFraction returns the share of the hash circle member owns — the
// /metrics ring-ownership gauge. The fractions over all members sum to 1
// (up to float rounding).
func (r *Ring) OwnedFraction(member string) float64 {
	if len(r.points) == 0 {
		return 0
	}
	var owned float64
	for i, p := range r.points {
		if p.member != member {
			continue
		}
		prev := r.points[(i+len(r.points)-1)%len(r.points)].hash
		// Wrapping subtraction measures the clockwise arc ending at p,
		// including the wrap-around arc for the first point. Summed as
		// float64: a single-member ring owns the full 2^64 circle, which
		// a uint64 accumulator would wrap to zero.
		arc := p.hash - prev
		if arc == 0 && len(r.members) == 1 {
			// One point owning everything: the telescoping sum collapses.
			return 1
		}
		owned += float64(arc)
	}
	return owned / (1 << 63) / 2
}
