package cluster

import (
	"sync"
	"time"
)

// BreakerState is a circuit breaker's position.
type BreakerState int32

const (
	// BreakerClosed passes requests through (the healthy state).
	BreakerClosed BreakerState = iota
	// BreakerHalfOpen allows a single probe after the cooldown.
	BreakerHalfOpen
	// BreakerOpen fails fast without contacting the peer.
	BreakerOpen
)

// String returns the conventional lowercase state name.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerHalfOpen:
		return "half-open"
	case BreakerOpen:
		return "open"
	}
	return "unknown"
}

// Defaults for the per-peer breakers.
const (
	// DefaultBreakerThreshold is how many consecutive failures open a
	// breaker.
	DefaultBreakerThreshold = 5
	// DefaultBreakerCooldown is how long an open breaker fails fast
	// before allowing a half-open probe.
	DefaultBreakerCooldown = 2 * time.Second
)

// Breaker is a per-peer circuit breaker: consecutive failures trip it
// open, open fails fast for a cooldown, then a single half-open probe
// decides between closing and re-opening. Safe for concurrent use.
//
// Peer fill degrades gracefully without one — a dead owner just costs a
// timeout before the local-search fallback — but a breaker turns that
// per-request timeout into a cheap in-memory check while the owner is
// down, which is the difference between a slow fleet and a healthy one
// during a rolling restart.
type Breaker struct {
	threshold int
	cooldown  time.Duration
	now       func() time.Time

	mu       sync.Mutex
	state    BreakerState
	failures int
	openedAt time.Time
	probing  bool
}

// NewBreaker returns a closed breaker tripping after threshold
// consecutive failures (DefaultBreakerThreshold when <= 0) and cooling
// down for cooldown (DefaultBreakerCooldown when <= 0).
func NewBreaker(threshold int, cooldown time.Duration) *Breaker {
	if threshold <= 0 {
		threshold = DefaultBreakerThreshold
	}
	if cooldown <= 0 {
		cooldown = DefaultBreakerCooldown
	}
	return &Breaker{threshold: threshold, cooldown: cooldown, now: time.Now}
}

// Allow reports whether a request may proceed. In the open state it
// transitions to half-open once the cooldown has elapsed and admits
// exactly one probe; concurrent callers fail fast until that probe
// reports Success or Failure.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if b.now().Sub(b.openedAt) < b.cooldown {
			return false
		}
		b.state = BreakerHalfOpen
		b.probing = true
		return true
	case BreakerHalfOpen:
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
	return false
}

// Success records a successful request, closing the breaker.
func (b *Breaker) Success() {
	b.mu.Lock()
	b.state = BreakerClosed
	b.failures = 0
	b.probing = false
	b.mu.Unlock()
}

// Failure records a failed request: the half-open probe failing (or the
// threshold-th consecutive closed-state failure) opens the breaker and
// restarts the cooldown.
func (b *Breaker) Failure() {
	b.mu.Lock()
	switch b.state {
	case BreakerHalfOpen:
		b.state = BreakerOpen
		b.openedAt = b.now()
		b.probing = false
	case BreakerClosed:
		b.failures++
		if b.failures >= b.threshold {
			b.state = BreakerOpen
			b.openedAt = b.now()
		}
	}
	b.mu.Unlock()
}

// State returns the breaker's current position (open flips to half-open
// only on the next Allow, so a cooled-down breaker still reads open
// until probed).
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}
