package cluster

import (
	"fmt"
	"math"
	"testing"
)

func testMembers(n int) []string {
	m := make([]string, n)
	for i := range m {
		m[i] = fmt.Sprintf("http://127.0.0.1:%d", 8000+i)
	}
	return m
}

// TestRingDeterministicAcrossMemberOrder is the fleet-coherence
// invariant: every replica builds its ring from its own flag order, and
// all of them must agree on every owner.
func TestRingDeterministicAcrossMemberOrder(t *testing.T) {
	m := testMembers(5)
	a := NewRing(m, 64)
	b := NewRing([]string{m[3], m[1], m[4], m[0], m[2]}, 64)
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("rect/p16/key-%d", i)
		if ao, bo := a.Owner(key), b.Owner(key); ao != bo {
			t.Fatalf("owner disagreement for %s: %s vs %s", key, ao, bo)
		}
	}
}

func TestRingOwnerStableUnderUnrelatedKeys(t *testing.T) {
	r := NewRing(testMembers(3), 64)
	key := "skewed/p64/abcdef"
	want := r.Owner(key)
	for i := 0; i < 100; i++ {
		if got := r.Owner(key); got != want {
			t.Fatalf("owner changed between lookups: %s then %s", want, got)
		}
	}
}

func TestRingBalance(t *testing.T) {
	members := testMembers(3)
	r := NewRing(members, 64)
	counts := map[string]int{}
	const n = 30000
	for i := 0; i < n; i++ {
		counts[r.Owner(fmt.Sprintf("key-%d", i))]++
	}
	for _, m := range members {
		share := float64(counts[m]) / n
		if share < 0.15 || share > 0.55 {
			t.Errorf("member %s owns %.1f%% of keys; want a roughly even split", m, 100*share)
		}
	}
}

func TestRingOwnedFractionSumsToOne(t *testing.T) {
	r := NewRing(testMembers(4), 64)
	var sum float64
	for _, m := range r.Members() {
		f := r.OwnedFraction(m)
		if f <= 0 || f >= 1 {
			t.Errorf("fraction for %s out of range: %g", m, f)
		}
		sum += f
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("fractions sum to %g, want 1", sum)
	}
}

func TestRingSingleMemberOwnsEverything(t *testing.T) {
	r := NewRing([]string{"http://a"}, 8)
	if got := r.Owner("anything"); got != "http://a" {
		t.Fatalf("single-member ring owner = %q", got)
	}
	if f := r.OwnedFraction("http://a"); math.Abs(f-1) > 1e-9 {
		t.Errorf("single member owns fraction %g, want 1", f)
	}
}

func TestRingEmpty(t *testing.T) {
	r := NewRing(nil, 0)
	if got := r.Owner("k"); got != "" {
		t.Fatalf("empty ring owner = %q, want empty", got)
	}
	if got := r.Owners("k", 3); got != nil {
		t.Fatalf("empty ring owners = %v, want nil", got)
	}
}

func TestRingOwnersDistinctAndOwnerFirst(t *testing.T) {
	r := NewRing(testMembers(3), 64)
	for i := 0; i < 50; i++ {
		key := fmt.Sprintf("key-%d", i)
		owners := r.Owners(key, 3)
		if len(owners) != 3 {
			t.Fatalf("Owners(%s, 3) = %v", key, owners)
		}
		if owners[0] != r.Owner(key) {
			t.Fatalf("Owners[0] = %s, Owner = %s", owners[0], r.Owner(key))
		}
		seen := map[string]bool{}
		for _, o := range owners {
			if seen[o] {
				t.Fatalf("duplicate member in Owners: %v", owners)
			}
			seen[o] = true
		}
	}
}

// TestRendezvousPickDeterministic exercises the collision tie-break
// directly (forcing an FNV collision on the ring itself is impractical).
func TestRendezvousPickDeterministic(t *testing.T) {
	members := []string{"http://a", "http://b", "http://c"}
	perm := []string{"http://c", "http://a", "http://b"}
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("key-%d", i)
		if a, b := rendezvousPick(members, key), rendezvousPick(perm, key); a != b {
			t.Fatalf("tie-break order-dependent for %s: %s vs %s", key, a, b)
		}
	}
	// Different keys must not all pick the same member (HRW spreads).
	counts := map[string]int{}
	for i := 0; i < 300; i++ {
		counts[rendezvousPick(members, fmt.Sprintf("key-%d", i))]++
	}
	if len(counts) < 2 {
		t.Errorf("rendezvous tie-break never spread: %v", counts)
	}
}

func TestRingDeduplicatesMembers(t *testing.T) {
	r := NewRing([]string{"http://a", "http://a", "", "http://b"}, 4)
	if got := len(r.Members()); got != 2 {
		t.Fatalf("members = %v, want 2 unique", r.Members())
	}
}
