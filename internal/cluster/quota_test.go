package cluster

import (
	"testing"
	"time"
)

func newTestQuotas(rate, burst float64) (*Quotas, *fakeClock) {
	q := NewQuotas(rate, burst)
	clk := &fakeClock{t: time.Unix(1000, 0)}
	q.now = clk.now
	return q, clk
}

func TestQuotaBurstThenShed(t *testing.T) {
	q, _ := newTestQuotas(10, 3)
	for i := 0; i < 3; i++ {
		ok, _ := q.Allow("acme")
		if !ok {
			t.Fatalf("request %d inside the burst was shed", i)
		}
	}
	ok, retry := q.Allow("acme")
	if ok {
		t.Fatal("request beyond the burst admitted")
	}
	if retry <= 0 || retry > time.Second {
		t.Fatalf("retry-after = %v, want (0, 1s] at 10 rps", retry)
	}
}

func TestQuotaTenantsAreIndependent(t *testing.T) {
	q, _ := newTestQuotas(10, 1)
	if ok, _ := q.Allow("noisy"); !ok {
		t.Fatal("first noisy request shed")
	}
	if ok, _ := q.Allow("noisy"); ok {
		t.Fatal("noisy tenant not shed after exhausting its bucket")
	}
	if ok, _ := q.Allow("quiet"); !ok {
		t.Fatal("quiet tenant shed by the noisy tenant's exhaustion")
	}
}

func TestQuotaRefills(t *testing.T) {
	q, clk := newTestQuotas(10, 1)
	q.Allow("acme")
	if ok, _ := q.Allow("acme"); ok {
		t.Fatal("empty bucket admitted")
	}
	clk.advance(150 * time.Millisecond) // 1.5 tokens at 10/s
	if ok, _ := q.Allow("acme"); !ok {
		t.Fatal("refilled bucket shed")
	}
}

func TestQuotaAnonymousSharesOneBucket(t *testing.T) {
	q, _ := newTestQuotas(10, 1)
	if ok, _ := q.Allow(""); !ok {
		t.Fatal("first anonymous request shed")
	}
	if ok, _ := q.Allow(AnonTenant); ok {
		t.Fatal("anonymous header-less and explicit anon buckets are separate")
	}
}

func TestQuotaNilAdmitsEverything(t *testing.T) {
	var q *Quotas
	for i := 0; i < 100; i++ {
		if ok, _ := q.Allow("anyone"); !ok {
			t.Fatal("nil Quotas shed")
		}
	}
	if st := q.Stats(); st.Allowed != 0 {
		t.Fatalf("nil stats = %+v", st)
	}
	if NewQuotas(0, 5) != nil {
		t.Fatal("rate 0 should build the nil limiter")
	}
}

func TestQuotaStats(t *testing.T) {
	q, _ := newTestQuotas(10, 1)
	q.Allow("a")
	q.Allow("a")
	q.Allow("b")
	st := q.Stats()
	if st.Allowed != 2 || st.Rejected != 1 || st.Tenants != 2 {
		t.Fatalf("stats = %+v, want 2 allowed / 1 rejected / 2 tenants", st)
	}
}

// TestQuotaPruneSparesRecentSpenders: a tenant that spent a token within
// the last full refill window must survive the prune even when its
// bucket is projected full — deleting it would hand back a fresh full
// bucket early, the double-dip loophole.
func TestQuotaPruneSparesRecentSpenders(t *testing.T) {
	q, clk := newTestQuotas(1, 10) // refill window = burst/rate = 10s
	q.Allow("noisy")               // spends 1 of 10 tokens
	clk.advance(9 * time.Second)   // projected full (9 + 9 ≥ 10), spent 9s ago
	q.mu.Lock()
	q.prune()
	_, ok := q.tenants["noisy"]
	q.mu.Unlock()
	if !ok {
		t.Fatal("tenant pruned within a refill window of its last spend")
	}
	clk.advance(2 * time.Second) // 11s since the spend ≥ the 10s window
	q.mu.Lock()
	q.prune()
	_, ok = q.tenants["noisy"]
	q.mu.Unlock()
	if ok {
		t.Fatal("fully idle, fully refilled tenant survived the prune")
	}
}

func TestQuotaPrunesIdleTenants(t *testing.T) {
	q, clk := newTestQuotas(10, 1)
	for i := 0; i < maxTenants; i++ {
		q.Allow(time.Unix(int64(i), 0).String())
	}
	clk.advance(time.Minute) // everyone refills
	q.Allow("fresh")
	if st := q.Stats(); st.Tenants > 2 {
		t.Fatalf("tenants after prune = %d, want the fresh one (and maybe one survivor)", st.Tenants)
	}
}
