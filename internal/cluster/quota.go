package cluster

import (
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// AnonTenant is the bucket requests without an X-Tenant header share.
// Anonymous traffic competes with itself, not with named tenants, so a
// skewed anonymous burst cannot starve an identified one.
const AnonTenant = "anon"

// maxTenants bounds the tenant map; once exceeded, buckets idle long
// enough to have refilled completely are pruned. A pruned tenant
// restarts with a full bucket, so eligibility requires both projected
// fullness and no token spent within a full refill window — a tenant
// that just drained its burst cannot launder the drain through a prune
// and double-dip.
const maxTenants = 4096

// Quotas is a per-tenant token-bucket rate limiter for the planning
// routes: each tenant draws from its own bucket of burst tokens
// refilled at rate tokens/second, so one tenant's flood sheds with 429
// while every other tenant keeps planning. A nil *Quotas admits
// everything, the disabled state. Safe for concurrent use.
type Quotas struct {
	rate  float64
	burst float64
	now   func() time.Time

	mu      sync.Mutex
	tenants map[string]*bucket

	allowed  atomic.Int64
	rejected atomic.Int64
}

// bucket is one tenant's token state.
type bucket struct {
	tokens float64
	last   time.Time
	// spent is when the tenant last spent a token. Pruning a bucket
	// forgets its debt (a fresh bucket starts full), so prune only
	// considers tenants whose last spend is at least a full refill window
	// in the past — by then a surviving bucket would have refilled anyway
	// and forgetting it costs nothing.
	spent time.Time
}

// NewQuotas returns a limiter granting each tenant rate requests/second
// with bursts of burst (rate rounded up when burst < 1). A rate <= 0
// returns nil — the admit-everything limiter.
func NewQuotas(rate, burst float64) *Quotas {
	if rate <= 0 {
		return nil
	}
	if burst < 1 {
		burst = math.Max(1, math.Ceil(rate))
	}
	return &Quotas{
		rate:    rate,
		burst:   burst,
		now:     time.Now,
		tenants: make(map[string]*bucket),
	}
}

// Allow spends one token from tenant's bucket ("" draws from
// AnonTenant). When the bucket is empty it reports false and how long
// until a token accrues — the 429 Retry-After value.
func (q *Quotas) Allow(tenant string) (bool, time.Duration) {
	if q == nil {
		return true, 0
	}
	if tenant == "" {
		tenant = AnonTenant
	}
	now := q.now()
	q.mu.Lock()
	b, ok := q.tenants[tenant]
	if !ok {
		if len(q.tenants) >= maxTenants {
			q.prune()
		}
		b = &bucket{tokens: q.burst, last: now, spent: now}
		q.tenants[tenant] = b
	} else {
		b.tokens = math.Min(q.burst, b.tokens+q.rate*now.Sub(b.last).Seconds())
		b.last = now
	}
	if b.tokens >= 1 {
		b.tokens--
		b.spent = now
		q.mu.Unlock()
		q.allowed.Add(1)
		return true, 0
	}
	wait := time.Duration((1 - b.tokens) / q.rate * float64(time.Second))
	q.mu.Unlock()
	q.rejected.Add(1)
	return false, wait
}

// prune drops buckets that are both projected full and untouched for at
// least a full refill window (burst/rate seconds since the last spend),
// under the caller's lock. The spend-age gate closes the double-dip
// loophole: a tenant that drained its burst and went briefly idle is
// projected full only because of the drain it still owes, and deleting
// it would hand back a fresh full bucket early.
func (q *Quotas) prune() {
	now := q.now()
	refillWindow := time.Duration(q.burst / q.rate * float64(time.Second))
	for t, b := range q.tenants {
		full := math.Min(q.burst, b.tokens+q.rate*now.Sub(b.last).Seconds()) >= q.burst
		if full && now.Sub(b.spent) >= refillWindow {
			delete(q.tenants, t)
		}
	}
}

// QuotaStats is a point-in-time view of the limiter.
type QuotaStats struct {
	Rate     float64 `json:"rate"`
	Burst    float64 `json:"burst"`
	Tenants  int     `json:"tenants"`
	Allowed  int64   `json:"allowed"`
	Rejected int64   `json:"rejected"`
}

// Stats returns the current counters (zero value on nil).
func (q *Quotas) Stats() QuotaStats {
	if q == nil {
		return QuotaStats{}
	}
	q.mu.Lock()
	n := len(q.tenants)
	q.mu.Unlock()
	return QuotaStats{
		Rate:     q.rate,
		Burst:    q.burst,
		Tenants:  n,
		Allowed:  q.allowed.Load(),
		Rejected: q.rejected.Load(),
	}
}
