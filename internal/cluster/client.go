package cluster

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"looppart/internal/obs"
	"looppart/internal/telemetry"
)

// PeerPlanPath is the peer-fill endpoint every replica serves: POST a
// PlanRequest body, receive the owner's canonical plan bytes. The
// handler plans locally only (never peer-fills in turn), so a fill is
// structurally at most one hop.
const PeerPlanPath = "/v1/peer/plan"

// Header names of the peer-fill hop protocol.
const (
	// HopHeader carries the peer-fill hop count. The serving replica
	// sends 1; a receiving replica rejects anything above MaxHops, so a
	// misconfigured ring cannot forward a request in a loop.
	HopHeader = "X-Peer-Hop"
	// FromHeader names the requesting replica, for the owner's logs.
	FromHeader = "X-Peer-From"
	// traceHeader joins the peer hop into the originating request's
	// trace (the server's tracing middleware accepts it).
	traceHeader = "X-Trace-Id"
)

// MaxHops is the largest hop count a replica accepts on HopHeader.
// Peer fills are owner lookups, not routing: one hop reaches the owner.
const MaxHops = 1

// Client defaults.
const (
	// DefaultFillTimeout bounds one Fill including the hedge. It must
	// comfortably cover the owner's search (sub-2ms enumerated, but an
	// autotune tournament can take much longer), yet stay under the
	// server's own plan deadline so the fallback search still fits.
	DefaultFillTimeout = 5 * time.Second
	// DefaultHedgeDelay is how long Fill waits before duplicating the
	// in-flight request. The duplicate lands in the owner's singleflight
	// for the same key, so hedging costs a cheap coalesced wait, never a
	// second search.
	DefaultHedgeDelay = 250 * time.Millisecond
	// maxFillBody bounds a peer response body. Canonical plans are a few
	// hundred bytes; anything near this limit is not a plan.
	maxFillBody = 4 << 20
)

// Options configures a Client.
type Options struct {
	// Self is this replica's own member name (its advertised base URL).
	// Keys Self owns are not peer-filled — the caller searches locally.
	// Self may be absent from Members (a pure client), in which case
	// every key is peer-filled.
	Self string
	// Members are the ring members as base URLs (http://host:port).
	// Order-independent; duplicates and empty strings are dropped.
	Members []string
	// VNodes is the virtual-node count per member (DefaultVNodes if 0).
	VNodes int
	// FillTimeout bounds one Fill end to end (DefaultFillTimeout if 0).
	FillTimeout time.Duration
	// HedgeDelay is the straggler cutoff before the request is
	// duplicated (DefaultHedgeDelay if 0, negative disables hedging).
	HedgeDelay time.Duration
	// BreakerThreshold and BreakerCooldown parameterize the per-peer
	// circuit breakers (package defaults if 0).
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// HTTPClient overrides the transport (a client with keep-alives and
	// no overall timeout is built if nil — Fill applies its own).
	HTTPClient *http.Client
}

// Client is the peer-fill side of a replica: it maps keys to owners on
// the ring and fetches canonical plan bytes from them with per-peer
// circuit breakers, a fill timeout, and a hedged second request against
// stragglers. Safe for concurrent use.
type Client struct {
	self       string
	ring       *Ring
	http       *http.Client
	timeout    time.Duration
	hedgeDelay time.Duration
	breakers   map[string]*Breaker

	fills        atomic.Int64 // successful peer fills
	fillFailures atomic.Int64 // owner contacted, no plan obtained
	selfOwned    atomic.Int64 // key owned locally, no fill attempted
	breakerSkips atomic.Int64 // fill skipped, owner's breaker open
	hedges       atomic.Int64 // hedged duplicate requests sent
}

// New builds a Client for opts.
func New(opts Options) *Client {
	hc := opts.HTTPClient
	if hc == nil {
		hc = &http.Client{Transport: &http.Transport{
			MaxIdleConnsPerHost: 16,
			IdleConnTimeout:     90 * time.Second,
		}}
	}
	if opts.FillTimeout == 0 {
		opts.FillTimeout = DefaultFillTimeout
	}
	if opts.HedgeDelay == 0 {
		opts.HedgeDelay = DefaultHedgeDelay
	}
	c := &Client{
		self:       opts.Self,
		ring:       NewRing(opts.Members, opts.VNodes),
		http:       hc,
		timeout:    opts.FillTimeout,
		hedgeDelay: opts.HedgeDelay,
		breakers:   make(map[string]*Breaker),
	}
	for _, m := range c.ring.Members() {
		if m != c.self {
			c.breakers[m] = NewBreaker(opts.BreakerThreshold, opts.BreakerCooldown)
		}
	}
	return c
}

// Ring returns the client's ring.
func (c *Client) Ring() *Ring { return c.ring }

// Self returns this replica's member name.
func (c *Client) Self() string { return c.self }

// Owner returns the member owning key.
func (c *Client) Owner(key string) string { return c.ring.Owner(key) }

// Fill fetches key's canonical plan bytes from its owner replica. It
// returns ok=false — telling the caller to search locally — when this
// replica owns the key, the owner's breaker is open, or the owner could
// not produce the plan within the fill timeout. The attempt is traced as
// a peer.fill span with owner/hop/outcome attributes, and the hop
// carries the request's trace ID so the owner's flight record joins the
// originating trace.
func (c *Client) Fill(ctx context.Context, key string, reqBody []byte) ([]byte, bool) {
	_, sp := obs.StartSpan(ctx, "peer.fill")
	defer sp.End()
	sp.SetAttr("hop", 1)
	owner := c.ring.Owner(key)
	sp.SetAttr("owner", owner)
	if owner == "" || owner == c.self {
		c.selfOwned.Add(1)
		sp.SetAttr("outcome", "self")
		return nil, false
	}
	br := c.breakers[owner]
	if br == nil || !br.Allow() {
		c.breakerSkips.Add(1)
		telemetry.Active().Counter("cluster.peer_fill.breaker_open").Add(1)
		sp.SetAttr("outcome", "breaker_open")
		return nil, false
	}
	fctx, cancel := context.WithTimeout(ctx, c.timeout)
	defer cancel()
	raw, err := c.hedgedFetch(fctx, owner, reqBody, obs.TraceID(ctx))
	if err != nil {
		br.Failure()
		c.fillFailures.Add(1)
		telemetry.Active().Counter("cluster.peer_fill.failures").Add(1)
		sp.SetAttr("outcome", "error")
		sp.SetAttr("error", err.Error())
		return nil, false
	}
	br.Success()
	c.fills.Add(1)
	telemetry.Active().Counter("cluster.peer_fill.hits").Add(1)
	sp.SetAttr("outcome", "filled")
	sp.SetAttr("bytes", len(raw))
	return raw, true
}

// fillResult is one attempt's outcome.
type fillResult struct {
	raw []byte
	err error
}

// hedgedFetch posts reqBody to owner's peer endpoint, duplicating the
// request after the hedge delay; the first success wins and the loser
// is canceled via ctx. Duplicates collapse in the owner's singleflight,
// so a hedge never causes a second search.
func (c *Client) hedgedFetch(ctx context.Context, owner string, reqBody []byte, traceID string) ([]byte, error) {
	results := make(chan fillResult, 2)
	attempt := func() {
		raw, err := c.fetch(ctx, owner, reqBody, traceID)
		results <- fillResult{raw, err}
	}
	go attempt()
	outstanding := 1
	var hedgeTimer <-chan time.Time
	if c.hedgeDelay > 0 { // negative delay: hedging disabled
		t := time.NewTimer(c.hedgeDelay)
		defer t.Stop()
		hedgeTimer = t.C
	}
	var firstErr error
	for {
		select {
		case r := <-results:
			if r.err == nil {
				return r.raw, nil
			}
			if firstErr == nil {
				firstErr = r.err
			}
			if outstanding--; outstanding == 0 {
				// Every attempt has answered. A definitive refusal
				// arriving before the hedge timer also ends here: the
				// peer said no, a duplicate ask would too.
				return nil, firstErr
			}
		case <-hedgeTimer:
			hedgeTimer = nil
			c.hedges.Add(1)
			telemetry.Active().Counter("cluster.peer_fill.hedges").Add(1)
			outstanding++
			go attempt()
		case <-ctx.Done():
			if firstErr == nil {
				firstErr = ctx.Err()
			}
			return nil, firstErr
		}
	}
}

// fetch is one HTTP attempt against owner's peer endpoint.
func (c *Client) fetch(ctx context.Context, owner string, reqBody []byte, traceID string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, owner+PeerPlanPath, bytes.NewReader(reqBody))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(HopHeader, "1")
	if c.self != "" {
		req.Header.Set(FromHeader, c.self)
	}
	if traceID != "" {
		req.Header.Set(traceHeader, traceID)
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("cluster: peer %s answered %d", owner, resp.StatusCode)
	}
	raw, err := io.ReadAll(io.LimitReader(resp.Body, maxFillBody+1))
	if err != nil {
		return nil, err
	}
	if len(raw) == 0 || len(raw) > maxFillBody {
		return nil, fmt.Errorf("cluster: peer %s returned a %d-byte body", owner, len(raw))
	}
	return raw, nil
}

// BreakerStatus is one peer breaker's position for metrics and debug
// output.
type BreakerStatus struct {
	Peer  string `json:"peer"`
	State string `json:"state"`
	// Code is the numeric state (0 closed, 1 half-open, 2 open), the
	// /metrics gauge value.
	Code int `json:"code"`
}

// Stats is a point-in-time view of the client.
type Stats struct {
	Self         string          `json:"self"`
	Members      int             `json:"members"`
	VNodes       int             `json:"vnodes"`
	SelfFraction float64         `json:"self_fraction"`
	Fills        int64           `json:"fills"`
	FillFailures int64           `json:"fill_failures"`
	SelfOwned    int64           `json:"self_owned"`
	BreakerSkips int64           `json:"breaker_skips"`
	Hedges       int64           `json:"hedges"`
	Breakers     []BreakerStatus `json:"breakers"`
}

// Stats returns the current counters and breaker states.
func (c *Client) Stats() Stats {
	st := Stats{
		Self:         c.self,
		Members:      len(c.ring.Members()),
		VNodes:       c.ring.VNodes(),
		SelfFraction: c.ring.OwnedFraction(c.self),
		Fills:        c.fills.Load(),
		FillFailures: c.fillFailures.Load(),
		SelfOwned:    c.selfOwned.Load(),
		BreakerSkips: c.breakerSkips.Load(),
		Hedges:       c.hedges.Load(),
	}
	for peer, br := range c.breakers {
		s := br.State()
		st.Breakers = append(st.Breakers, BreakerStatus{Peer: peer, State: s.String(), Code: int(s)})
	}
	sort.Slice(st.Breakers, func(i, j int) bool { return st.Breakers[i].Peer < st.Breakers[j].Peer })
	return st
}

// MemberName canonicalizes a replica spec to its member name: a base
// URL without a trailing slash, defaulting the scheme to http. Replicas
// must agree on member names exactly for their rings to agree, so every
// boundary (flags, portfiles) funnels through this.
func MemberName(s string) string {
	s = strings.TrimSpace(s)
	s = strings.TrimSuffix(s, "/")
	if s == "" {
		return ""
	}
	if !strings.Contains(s, "://") {
		s = "http://" + s
	}
	return s
}
