package cluster

import (
	"testing"
	"time"
)

// fakeClock drives a breaker deterministically.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func newTestBreaker(threshold int, cooldown time.Duration) (*Breaker, *fakeClock) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	b := NewBreaker(threshold, cooldown)
	b.now = clk.now
	return b, clk
}

func TestBreakerOpensAfterThreshold(t *testing.T) {
	b, _ := newTestBreaker(3, time.Second)
	for i := 0; i < 2; i++ {
		if !b.Allow() {
			t.Fatalf("closed breaker refused request %d", i)
		}
		b.Failure()
	}
	if b.State() != BreakerClosed {
		t.Fatalf("state after 2/3 failures = %v", b.State())
	}
	b.Failure()
	if b.State() != BreakerOpen {
		t.Fatalf("state after threshold failures = %v, want open", b.State())
	}
	if b.Allow() {
		t.Fatal("open breaker allowed a request inside the cooldown")
	}
}

func TestBreakerHalfOpenProbe(t *testing.T) {
	b, clk := newTestBreaker(1, time.Second)
	b.Failure()
	if b.State() != BreakerOpen {
		t.Fatal("threshold-1 breaker did not open")
	}
	clk.advance(2 * time.Second)
	if !b.Allow() {
		t.Fatal("cooled-down breaker refused the probe")
	}
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state during probe = %v, want half-open", b.State())
	}
	// Only one probe at a time.
	if b.Allow() {
		t.Fatal("second concurrent probe allowed")
	}
	b.Success()
	if b.State() != BreakerClosed {
		t.Fatalf("state after probe success = %v, want closed", b.State())
	}
	if !b.Allow() {
		t.Fatal("closed breaker refused")
	}
}

func TestBreakerProbeFailureReopens(t *testing.T) {
	b, clk := newTestBreaker(1, time.Second)
	b.Failure()
	clk.advance(2 * time.Second)
	if !b.Allow() {
		t.Fatal("probe refused")
	}
	b.Failure()
	if b.State() != BreakerOpen {
		t.Fatalf("state after probe failure = %v, want open", b.State())
	}
	// The cooldown restarted at the probe failure.
	clk.advance(time.Second / 2)
	if b.Allow() {
		t.Fatal("reopened breaker allowed a request before the new cooldown elapsed")
	}
	clk.advance(time.Second)
	if !b.Allow() {
		t.Fatal("reopened breaker refused after the new cooldown")
	}
}

func TestBreakerSuccessResetsFailureStreak(t *testing.T) {
	b, _ := newTestBreaker(3, time.Second)
	b.Failure()
	b.Failure()
	b.Success()
	b.Failure()
	b.Failure()
	if b.State() != BreakerClosed {
		t.Fatalf("non-consecutive failures opened the breaker: %v", b.State())
	}
}
