package cluster

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// newPeer starts a fake owner replica serving handler on PeerPlanPath.
func newPeer(t *testing.T, handler http.HandlerFunc) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc(PeerPlanPath, handler)
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts
}

// ownedKey finds a key the ring assigns to owner.
func ownedKey(t *testing.T, r *Ring, owner string) string {
	t.Helper()
	for i := 0; i < 10000; i++ {
		key := "rect/p16/" + string(rune('a'+i%26)) + time.Unix(int64(i), 0).UTC().Format("150405") + "x"
		if r.Owner(key) == owner {
			return key
		}
	}
	t.Fatal("no key owned by " + owner)
	return ""
}

func TestClientFillFetchesFromOwner(t *testing.T) {
	var gotHop, gotTrace, gotBody atomic.Value
	ts := newPeer(t, func(w http.ResponseWriter, r *http.Request) {
		gotHop.Store(r.Header.Get(HopHeader))
		gotTrace.Store(r.Header.Get("X-Trace-Id"))
		b := make([]byte, r.ContentLength)
		r.Body.Read(b)
		gotBody.Store(string(b))
		w.Write([]byte(`{"key":"k"}`))
	})
	c := New(Options{Self: "http://client", Members: []string{ts.URL}})
	key := ownedKey(t, c.Ring(), ts.URL)
	raw, ok := c.Fill(context.Background(), key, []byte(`{"procs":16}`))
	if !ok {
		t.Fatal("fill against a healthy owner failed")
	}
	if string(raw) != `{"key":"k"}` {
		t.Fatalf("fill bytes = %q", raw)
	}
	if gotHop.Load() != "1" {
		t.Fatalf("hop header = %v, want 1", gotHop.Load())
	}
	if st := c.Stats(); st.Fills != 1 || st.FillFailures != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestClientFillSelfOwnedSkips(t *testing.T) {
	c := New(Options{Self: "http://self", Members: []string{"http://self"}})
	raw, ok := c.Fill(context.Background(), "anykey", nil)
	if ok || raw != nil {
		t.Fatal("self-owned key peer-filled")
	}
	if st := c.Stats(); st.SelfOwned != 1 {
		t.Fatalf("stats = %+v, want SelfOwned 1", st)
	}
}

func TestClientFillFailureTripsBreaker(t *testing.T) {
	ts := newPeer(t, func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	})
	c := New(Options{
		Self: "http://client", Members: []string{ts.URL},
		BreakerThreshold: 2, HedgeDelay: -1, FillTimeout: time.Second,
	})
	key := ownedKey(t, c.Ring(), ts.URL)
	for i := 0; i < 2; i++ {
		if _, ok := c.Fill(context.Background(), key, nil); ok {
			t.Fatal("fill against a 500 owner succeeded")
		}
	}
	st := c.Stats()
	if st.FillFailures != 2 {
		t.Fatalf("fill failures = %d, want 2", st.FillFailures)
	}
	if len(st.Breakers) != 1 || st.Breakers[0].State != "open" {
		t.Fatalf("breaker after threshold failures = %+v, want open", st.Breakers)
	}
	// Open breaker: the next fill is skipped without an HTTP request.
	if _, ok := c.Fill(context.Background(), key, nil); ok {
		t.Fatal("fill through an open breaker succeeded")
	}
	if st := c.Stats(); st.BreakerSkips != 1 {
		t.Fatalf("breaker skips = %d, want 1", st.BreakerSkips)
	}
}

func TestClientFillRecoversThroughHalfOpen(t *testing.T) {
	var healthy atomic.Bool
	ts := newPeer(t, func(w http.ResponseWriter, r *http.Request) {
		if !healthy.Load() {
			http.Error(w, "down", http.StatusServiceUnavailable)
			return
		}
		w.Write([]byte(`{"key":"k"}`))
	})
	c := New(Options{
		Self: "http://client", Members: []string{ts.URL},
		BreakerThreshold: 1, BreakerCooldown: 30 * time.Millisecond,
		HedgeDelay: -1, FillTimeout: time.Second,
	})
	key := ownedKey(t, c.Ring(), ts.URL)
	c.Fill(context.Background(), key, nil) // trips the breaker
	healthy.Store(true)
	time.Sleep(60 * time.Millisecond)
	if _, ok := c.Fill(context.Background(), key, nil); !ok {
		t.Fatal("half-open probe against a recovered owner failed")
	}
	if st := c.Stats(); st.Breakers[0].State != "closed" {
		t.Fatalf("breaker after recovery = %+v, want closed", st.Breakers)
	}
}

// TestClientHedgedFetch: the first request stalls past the hedge delay;
// the duplicate answers fast, so Fill returns well before the straggler
// would.
func TestClientHedgedFetch(t *testing.T) {
	var calls atomic.Int32
	release := make(chan struct{})
	ts := newPeer(t, func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			<-release // the straggler
		}
		w.Write([]byte(`{"key":"k"}`))
	})
	defer close(release)
	c := New(Options{
		Self: "http://client", Members: []string{ts.URL},
		HedgeDelay: 20 * time.Millisecond, FillTimeout: 5 * time.Second,
	})
	key := ownedKey(t, c.Ring(), ts.URL)
	start := time.Now()
	raw, ok := c.Fill(context.Background(), key, nil)
	if !ok {
		t.Fatal("hedged fill failed")
	}
	if string(raw) != `{"key":"k"}` {
		t.Fatalf("fill bytes = %q", raw)
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("hedged fill took %v; the hedge did not overtake the straggler", d)
	}
	if st := c.Stats(); st.Hedges != 1 {
		t.Fatalf("hedges = %d, want 1", st.Hedges)
	}
}

func TestClientFillTimesOut(t *testing.T) {
	ts := newPeer(t, func(w http.ResponseWriter, r *http.Request) {
		<-r.Context().Done()
	})
	c := New(Options{
		Self: "http://client", Members: []string{ts.URL},
		FillTimeout: 50 * time.Millisecond, HedgeDelay: -1,
	})
	key := ownedKey(t, c.Ring(), ts.URL)
	start := time.Now()
	if _, ok := c.Fill(context.Background(), key, nil); ok {
		t.Fatal("fill against a hung owner succeeded")
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("timed-out fill took %v", d)
	}
}

func TestMemberName(t *testing.T) {
	cases := map[string]string{
		"127.0.0.1:8077":         "http://127.0.0.1:8077",
		"http://127.0.0.1:8077":  "http://127.0.0.1:8077",
		"http://127.0.0.1:8077/": "http://127.0.0.1:8077",
		" 127.0.0.1:1 ":          "http://127.0.0.1:1",
		"":                       "",
	}
	for in, want := range cases {
		if got := MemberName(in); got != want {
			t.Errorf("MemberName(%q) = %q, want %q", in, got, want)
		}
	}
}
