package codegen

import (
	"strings"
	"testing"

	"looppart/internal/intmat"
	"looppart/internal/loopir"
	"looppart/internal/paperex"
	"looppart/internal/tile"
)

func TestGenerateSkewedParallelogram(t *testing.T) {
	// Example 3's skewed tiles: edge vectors along the (1,3) reuse
	// direction.
	n := loopir.MustParse(paperex.Example3, map[string]int64{"N": 24})
	space := tile.BoundsOf(n)
	tl := tile.Parallelepiped(intmat.FromRows([][]int64{{3, 9}, {0, 8}}))
	prog, err := GenerateSkewed(n, tl, space, layoutsFor(n, -30, 256), Options{FuncName: "SkewTile"})
	if err != nil {
		t.Fatal(err)
	}
	src := prog.Source
	for _, want := range []string{
		"func SkewTile(c0, c1 int, arrA []float64, arrB []float64)",
		"func ceilDiv(", "func floorDiv(", "func maxInt(", "func minInt(",
		"for i := ", "for j := ",
	} {
		if !strings.Contains(src, want) {
			t.Errorf("missing %q in:\n%s", want, src)
		}
	}
	// Inner loop bounds must reference the outer loop variable (the
	// skewed-tile signature) or the coords.
	if !strings.Contains(src, "c0") || !strings.Contains(src, "c1") {
		t.Errorf("tile coordinates unused:\n%s", src)
	}
}

func TestGenerateSkewedRectReducesToSimpleBounds(t *testing.T) {
	n := loopir.MustParse(`
doall (i, 0, 31)
  doall (j, 0, 31)
    A[i,j] = A[i,j] + 1
  enddoall
enddoall`, nil)
	space := tile.BoundsOf(n)
	prog, err := GenerateSkewed(n, tile.Rect(8, 8), space, layoutsFor(n, 0, 64), Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Rectangular tiles have no cross-variable terms: j's bounds should
	// not mention i.
	for _, line := range strings.Split(prog.Source, "\n") {
		if strings.Contains(line, "for j :=") && strings.Contains(line, "i") &&
			!strings.Contains(line, "minInt") == false {
			// Bounds may mention maxInt/minInt but not the variable i.
			trimmed := strings.ReplaceAll(line, "ceilDiv", "")
			trimmed = strings.ReplaceAll(trimmed, "floorDiv", "")
			trimmed = strings.ReplaceAll(trimmed, "minInt", "")
			trimmed = strings.ReplaceAll(trimmed, "maxInt", "")
			if strings.Contains(trimmed, "*i") || strings.Contains(trimmed, "+i") || strings.Contains(trimmed, "-i") {
				t.Errorf("rect tile inner bound depends on i: %s", line)
			}
		}
	}
}

func TestGenerateSkewedErrors(t *testing.T) {
	n := loopir.MustParse(`doall (i, 0, 7) A[i] = 0 enddoall`, nil)
	space := tile.BoundsOf(n)
	// Dimension mismatch.
	if _, err := GenerateSkewed(n, tile.Rect(4, 4), space, layoutsFor(n, 0, 16), Options{}); err == nil {
		t.Error("dimension mismatch accepted")
	}
	// Doseq rejected.
	n2 := loopir.MustParse(`
doseq (t, 1, 2)
  doall (i, 0, 7)
    A[i] = 0
  enddoall
enddoseq`, nil)
	if _, err := GenerateSkewed(n2, tile.Rect(4), tile.BoundsOf(n2), layoutsFor(n2, 0, 16), Options{}); err == nil {
		t.Error("doseq accepted")
	}
	// Missing layout.
	lay := layoutsFor(n, 0, 16)
	delete(lay, "A")
	if _, err := GenerateSkewed(n, tile.Rect(4), space, lay, Options{}); err == nil {
		t.Error("missing layout accepted")
	}
}

// TestSkewBoundsSemantics interprets the same symbolic bounds the code
// generator renders and checks they enumerate exactly the tile's
// iterations, for several tiles of a skewed partition.
func TestSkewBoundsSemantics(t *testing.T) {
	n := loopir.MustParse(paperex.Example3, map[string]int64{"N": 12})
	space := tile.BoundsOf(n)
	l := intmat.FromRows([][]int64{{3, 9}, {0, 4}})
	tt := tile.Parallelepiped(l)
	nest, err := tile.LoopBoundsSymbolic(tt, space.Lo, space)
	if err != nil {
		t.Fatal(err)
	}
	tiling, err := tile.NewTiling(tt, space.Lo)
	if err != nil {
		t.Fatal(err)
	}
	// Collect the distinct tile coords over the space.
	coords := map[[2]int64]bool{}
	space.ForEach(func(p []int64) bool {
		c := tiling.Coord(p)
		coords[[2]int64{c[0], c[1]}] = true
		return true
	})
	totalFromBounds := 0
	for c := range coords {
		outer := []int64{c[0], c[1]}
		lo0, hi0 := nest.Range(2, outer)
		for i := lo0; i <= hi0; i++ {
			lo1, hi1 := nest.Range(3, append(outer, i))
			for j := lo1; j <= hi1; j++ {
				got := tiling.Coord([]int64{i, j})
				if got[0] != c[0] || got[1] != c[1] {
					t.Fatalf("point (%d,%d) enumerated for tile %v but belongs to %v", i, j, c, got)
				}
				totalFromBounds++
			}
		}
	}
	if int64(totalFromBounds) != space.Size() {
		t.Fatalf("symbolic bounds enumerated %d points, space has %d", totalFromBounds, space.Size())
	}
}

func BenchmarkGenerateSkewed(b *testing.B) {
	n := loopir.MustParse(paperex.Example3, map[string]int64{"N": 24})
	space := tile.BoundsOf(n)
	tl := tile.Parallelepiped(intmat.FromRows([][]int64{{3, 9}, {0, 8}}))
	lay := layoutsFor(n, -30, 256)
	for i := 0; i < b.N; i++ {
		if _, err := GenerateSkewed(n, tl, space, lay, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}
