package codegen

import (
	"strings"
	"testing"

	"looppart/internal/loopir"
	"looppart/internal/paperex"
)

func layoutsFor(n *loopir.Nest, lo, size int64) map[string]ArrayLayout {
	out := map[string]ArrayLayout{}
	for _, acc := range n.Accesses() {
		r := acc.Ref
		if _, ok := out[r.Array]; ok {
			continue
		}
		los := make([]int64, r.Dim())
		sizes := make([]int64, r.Dim())
		for k := range los {
			los[k] = lo
			sizes[k] = size
		}
		out[r.Array] = ArrayLayout{Name: r.Array, Lo: los, Size: sizes}
	}
	return out
}

func TestGenerateExample2(t *testing.T) {
	n := loopir.MustParse(paperex.Example2, nil)
	prog, err := Generate(n, layoutsFor(n, -10, 512), Options{})
	if err != nil {
		t.Fatal(err)
	}
	src := prog.Source
	for _, want := range []string{
		"package kernel",
		"func RunTile(lo0, hi0 int, lo1, hi1 int, arrA []float64, arrB []float64)",
		"for i := lo0; i <= hi0; i++",
		"for j := lo1; j <= hi1; j++",
	} {
		if !strings.Contains(src, want) {
			t.Errorf("missing %q in:\n%s", want, src)
		}
	}
	// Subscript math folded: B[i+j, i-j-1] with lo=-10 → offset +10,
	// row-major stride 512.
	if !strings.Contains(src, "arrB[(i+j+10)*512+i-j+9]") {
		t.Errorf("B subscript not folded as expected:\n%s", src)
	}
}

func TestGenerateCustomOptions(t *testing.T) {
	n := loopir.MustParse(`doall (i, 1, 4) A[i] = A[i] + 1 enddoall`, nil)
	prog, err := Generate(n, layoutsFor(n, 0, 16), Options{PackageName: "mykern", FuncName: "Stencil"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(prog.Source, "package mykern") || !strings.Contains(prog.Source, "func Stencil(") {
		t.Fatalf("options ignored:\n%s", prog.Source)
	}
}

func TestGenerateRejectsDoseq(t *testing.T) {
	n := loopir.MustParse(`
doseq (t, 1, 4)
  doall (i, 1, 4)
    A[i] = A[i] + 1
  enddoall
enddoseq`, nil)
	if _, err := Generate(n, layoutsFor(n, 0, 16), Options{}); err == nil {
		t.Fatal("doseq accepted")
	}
}

func TestGenerateMissingLayout(t *testing.T) {
	n := loopir.MustParse(`doall (i, 1, 4) A[i] = B[i] enddoall`, nil)
	lay := layoutsFor(n, 0, 16)
	delete(lay, "B")
	if _, err := Generate(n, lay, Options{}); err == nil {
		t.Fatal("missing layout accepted")
	}
}

func TestGenerateRankMismatch(t *testing.T) {
	n := loopir.MustParse(`doall (i, 1, 4) A[i] = 1 enddoall`, nil)
	lay := map[string]ArrayLayout{"A": {Name: "A", Lo: []int64{0, 0}, Size: []int64{4, 4}}}
	if _, err := Generate(n, lay, Options{}); err == nil {
		t.Fatal("rank mismatch accepted")
	}
}

func TestGenerateAtomicComment(t *testing.T) {
	n := loopir.MustParse(paperex.MatmulSync, map[string]int64{"N": 4})
	prog, err := Generate(n, layoutsFor(n, 1, 8), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(prog.Source, "synchronizing accumulate") {
		t.Error("atomic marker lost")
	}
}

func TestGenerateScaledAndConstSubscripts(t *testing.T) {
	n := loopir.MustParse(`
doall (i, 1, 4)
  doall (j, 1, 4)
    C[i, 2*i, i+2*j-1] = C[i, 2*i, i+2*j-1] + 1
  enddoall
enddoall`, nil)
	prog, err := Generate(n, layoutsFor(n, 0, 32), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(prog.Source, "2*i") {
		t.Errorf("scaled subscript lost:\n%s", prog.Source)
	}
}

func TestGenerateVarAndConstRHS(t *testing.T) {
	n := loopir.MustParse(`
doall (i, 1, 4)
  A[i] = i * 2 + 7
enddoall`, nil)
	prog, err := Generate(n, layoutsFor(n, 0, 16), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(prog.Source, "float64(i)") || !strings.Contains(prog.Source, "float64(7)") {
		t.Errorf("RHS lowering wrong:\n%s", prog.Source)
	}
}

func TestAffineCode(t *testing.T) {
	e := loopir.NewAffine(-1).AddTerm("i", 1).AddTerm("j", 2)
	if got := affineCode(e, 0); got != "i+2*j-1" {
		t.Errorf("affineCode = %q", got)
	}
	if got := affineCode(e, 1); got != "i+2*j" {
		t.Errorf("affineCode+1 = %q", got)
	}
	if got := affineCode(loopir.NewAffine(0), 0); got != "0" {
		t.Errorf("zero = %q", got)
	}
	neg := loopir.NewAffine(0).AddTerm("i", -1)
	if got := affineCode(neg, 0); got != "-i" {
		t.Errorf("neg = %q", got)
	}
}

func BenchmarkGenerateExample10(b *testing.B) {
	n := loopir.MustParse(paperex.Example10, map[string]int64{"N": 64})
	lay := layoutsFor(n, -10, 256)
	for i := 0; i < b.N; i++ {
		if _, err := Generate(n, lay, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}
