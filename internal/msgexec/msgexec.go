// Package msgexec executes a partitioned loop nest under explicit
// message passing — no cache coherence, no shared memory.
//
// Each processor owns a private copy of every array. An epoch (one
// doseq iteration, or the whole nest when there is none) runs
// bulk-synchronously: every processor executes its iterations against
// its own store, a barrier, then the exchange phase moves exactly the
// per-pair transfer sets the communication-set analysis
// (internal/commsets) predicted — each producer sends its freshly
// written values to every consumer, one word per element. The words a
// run actually moves are counted and reported next to the analysis'
// prediction; when the plan admits deterministic message passing
// (commsets.Analysis.CanCheckValues), the final state — assembled by
// taking each element from its unique producer — is checked against the
// sequential reference execution.
//
// Reads see the local copy: a remote write lands only at the next epoch
// boundary. That is exactly the paper's doall contract (no cross-tile
// dependences within a parallel step) made operational, which is why
// backward same-epoch dependences disqualify the value check.
package msgexec

import (
	"fmt"
	"sync"

	"looppart/internal/commsets"
	"looppart/internal/exec"
	"looppart/internal/loopir"
)

// Report is one message-passing run's accounting.
type Report struct {
	Procs  int
	Epochs int
	// WordsMoved is the total words actually sent across the run;
	// PredictedWords is the analysis' per-epoch total × Epochs. The two
	// must agree for every plan — verify.DiffCommSets asserts it.
	WordsMoved     int64
	PredictedWords int64
	// ValuesChecked reports that the run also verified the assembled
	// final state against the sequential execution (and found it equal;
	// a mismatch is an error, not a report).
	ValuesChecked bool
}

// Run executes the nest under message passing for the plan whose
// communication sets are comm (which must be materialized). assign is
// the plan's iteration→processor map. Returns the run's accounting; a
// value mismatch against the sequential reference is an error.
func Run(n *loopir.Nest, assign func(p []int64) int, comm *commsets.Analysis) (*Report, error) {
	ex, err := comm.Exchange()
	if err != nil {
		return nil, err
	}
	procs := comm.Procs

	init, err := exec.StoreFor(n)
	if err != nil {
		return nil, err
	}
	// Deterministic non-trivial initial data: the value check must
	// distinguish "transfer sets suffice" from "everything was zero".
	for _, arr := range init {
		arr.Fill(func(idx []int64) float64 {
			h := int64(1)
			for _, v := range idx {
				h = h*31 + v
			}
			return float64(h%97) / 8
		})
	}

	// Sequential reference run.
	seq := cloneStore(init)
	exec.RunSequential(n, seq)

	// Private per-processor stores.
	locals := make([]exec.Store, procs)
	for p := range locals {
		locals[p] = cloneStore(init)
	}

	// Pre-split iterations per processor, in lexicographic order (the
	// order the sequential run uses within an epoch).
	vars := n.DoallVars()
	work := make([][]map[string]int64, procs)
	var bad error
	n.ForEachIteration(nil, func(env map[string]int64) bool {
		p := make([]int64, len(vars))
		for k, v := range vars {
			p[k] = env[v]
		}
		proc := assign(p)
		if proc < 0 || proc >= procs {
			bad = fmt.Errorf("msgexec: iteration %v assigned to processor %d of %d", p, proc, procs)
			return false
		}
		work[proc] = append(work[proc], env)
		return true
	})
	if bad != nil {
		return nil, bad
	}

	rep := &Report{Procs: procs}
	runEpoch := func(extra map[string]int64) {
		var wg sync.WaitGroup
		for proc := 0; proc < procs; proc++ {
			wg.Add(1)
			go func(proc int) {
				defer wg.Done()
				st := locals[proc]
				for _, env := range work[proc] {
					full := env
					if len(extra) > 0 {
						full = make(map[string]int64, len(env)+len(extra))
						for k, v := range env {
							full[k] = v
						}
						for k, v := range extra {
							full[k] = v
						}
					}
					exec.RunIteration(n, st, full)
				}
			}(proc)
		}
		wg.Wait()
		// Exchange: producers push their fresh values to consumers.
		for _, t := range ex.Pairs {
			src, dst := locals[t.From], locals[t.To]
			for _, e := range t.Elems {
				dst[e.Array].Set(e.Index, src[e.Array].At(e.Index))
			}
			rep.WordsMoved += int64(len(t.Elems))
		}
		rep.Epochs++
	}

	seqLoops := n.SeqLoops()
	var run func(k int, extra map[string]int64)
	run = func(k int, extra map[string]int64) {
		if k == len(seqLoops) {
			runEpoch(extra)
			return
		}
		l := seqLoops[k]
		for v := l.Lo; v <= l.Hi; v++ {
			next := make(map[string]int64, len(extra)+1)
			for kk, vv := range extra {
				next[kk] = vv
			}
			next[l.Var] = v
			run(k+1, next)
		}
	}
	run(0, map[string]int64{})

	rep.PredictedWords = comm.TotalWords * int64(rep.Epochs)
	if rep.WordsMoved != rep.PredictedWords {
		return rep, fmt.Errorf("msgexec: moved %d words, comm sets predicted %d (%d/epoch × %d epochs)",
			rep.WordsMoved, rep.PredictedWords, comm.TotalWords, rep.Epochs)
	}

	if comm.CanCheckValues() {
		// Assemble the final state: every element from its unique
		// producer, untouched elements from the initial store.
		final := cloneStore(init)
		for p := range ex.Owned {
			src := locals[p]
			for _, e := range ex.Owned[p] {
				final[e.Array].Set(e.Index, src[e.Array].At(e.Index))
			}
		}
		const eps = 1e-9
		for name, want := range seq {
			if !final[name].EqualWithin(want, eps) {
				return rep, fmt.Errorf("msgexec: array %s diverges from the sequential run", name)
			}
		}
		rep.ValuesChecked = true
	}
	return rep, nil
}

func cloneStore(st exec.Store) exec.Store {
	out := make(exec.Store, len(st))
	for name, arr := range st {
		out[name] = arr.Clone()
	}
	return out
}
