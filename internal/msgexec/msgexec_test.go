package msgexec

import (
	"testing"

	"looppart/internal/commsets"
	"looppart/internal/footprint"
	"looppart/internal/loopir"
	"looppart/internal/tile"
)

// plan builds the materialized communication sets for src under a
// hand-chosen rectangular tile, the same way the planner does.
func plan(t *testing.T, src string, tl tile.Tile, procs int) (*loopir.Nest, func([]int64) int, *commsets.Analysis) {
	t.Helper()
	n, err := loopir.Parse(src, nil)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	a, err := footprint.Analyze(n)
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	space := tile.BoundsOf(n)
	tiling, err := tile.NewTiling(tl, space.Lo)
	if err != nil {
		t.Fatalf("tiling: %v", err)
	}
	asg, err := tile.Assign(tiling, space, procs)
	if err != nil {
		t.Fatalf("assign: %v", err)
	}
	spec := commsets.Spec{Analysis: a, Space: space, Procs: procs, Tile: &tl, Assign: asg.ProcOf}
	comm, err := commsets.Compute(spec, commsets.Options{Materialize: true})
	if err != nil {
		t.Fatalf("commsets: %v", err)
	}
	return n, asg.ProcOf, comm
}

// TestRunMatchesSequential drives the message-passing executor against
// the sequential reference on forward-dependence nests: rectangular
// stencils, the paper's Example 2 skewed-subscript geometry, and a
// doseq-wrapped multi-epoch nest. Run under -race, this also checks the
// per-processor stores really are disjoint during the compute phase.
func TestRunMatchesSequential(t *testing.T) {
	cases := []struct {
		name   string
		src    string
		tl     tile.Tile
		procs  int
		epochs int
	}{
		{"rect1d", "doall (i, 0, 63) A[i] = A[i + 1] + B[i] enddoall", tile.Rect(16), 4, 1},
		{"rect2d", "doall (i, 1, 24) doall (j, 1, 24) A[i, j] = A[i + 1, j] + A[i, j + 2] + 1 enddoall enddoall", tile.Rect(12, 12), 4, 1},
		{"skewed", "doall (i, 101, 140) doall (j, 1, 20) B[i+j, i-j-1] = B[i+j+4, i-j+3] + 1 enddoall enddoall", tile.Rect(10, 20), 4, 1},
		{"doseq", "doseq (s, 1, 4) doall (i, 1, 20) doall (j, 1, 20) A[i, j] = A[i + 1, j] + A[i, j + 1] enddoall enddoall enddoseq", tile.Rect(10, 10), 4, 4},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			n, assign, comm := plan(t, tc.src, tc.tl, tc.procs)
			if !comm.CanCheckValues() {
				t.Fatalf("forward nest should be checkable: %+v", comm)
			}
			rep, err := Run(n, assign, comm)
			if err != nil {
				t.Fatalf("%v", err)
			}
			if !rep.ValuesChecked {
				t.Fatalf("value check did not run")
			}
			if rep.Epochs != tc.epochs {
				t.Fatalf("epochs = %d, want %d", rep.Epochs, tc.epochs)
			}
			if rep.WordsMoved != comm.TotalWords*int64(tc.epochs) {
				t.Fatalf("moved %d words, comm sets predict %d/epoch × %d", rep.WordsMoved, comm.TotalWords, tc.epochs)
			}
			if comm.TotalWords == 0 {
				t.Fatalf("fixture should communicate")
			}
		})
	}
}

// TestRunBackwardSkipsValueCheck: a backward dependence (A[i-1]) makes
// bulk-synchronous message passing diverge from the sequential order,
// so Run must still balance the books on words but not claim the value
// check.
func TestRunBackwardSkipsValueCheck(t *testing.T) {
	n, assign, comm := plan(t, "doall (i, 0, 31) A[i] = A[i - 1] + 1 enddoall", tile.Rect(8), 4)
	if comm.CanCheckValues() {
		t.Fatalf("backward RAW not flagged")
	}
	rep, err := Run(n, assign, comm)
	if err != nil {
		t.Fatalf("%v", err)
	}
	if rep.ValuesChecked {
		t.Fatalf("value check must be skipped for backward dependences")
	}
	if rep.WordsMoved != comm.TotalWords {
		t.Fatalf("moved %d, predicted %d", rep.WordsMoved, comm.TotalWords)
	}
}

// TestRunCommFree: a plan with no cross-tile dataflow moves zero words
// and still reproduces the sequential result.
func TestRunCommFree(t *testing.T) {
	n, assign, comm := plan(t, "doall (i, 0, 31) A[i] = B[i] + 1 enddoall", tile.Rect(8), 4)
	rep, err := Run(n, assign, comm)
	if err != nil {
		t.Fatalf("%v", err)
	}
	if rep.WordsMoved != 0 || !rep.ValuesChecked {
		t.Fatalf("report = %+v", rep)
	}
}

// TestRunRequiresMaterialized: counts-only analyses cannot drive an
// exchange.
func TestRunRequiresMaterialized(t *testing.T) {
	const src = "doall (i, 0, 31) A[i] = A[i + 1] enddoall"
	n, err := loopir.Parse(src, nil)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	a, err := footprint.Analyze(n)
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	space := tile.BoundsOf(n)
	tl := tile.Rect(8)
	tiling, err := tile.NewTiling(tl, space.Lo)
	if err != nil {
		t.Fatalf("tiling: %v", err)
	}
	asg, err := tile.Assign(tiling, space, 4)
	if err != nil {
		t.Fatalf("assign: %v", err)
	}
	comm, err := commsets.Compute(commsets.Spec{Analysis: a, Space: space, Procs: 4, Tile: &tl, Assign: asg.ProcOf}, commsets.Options{})
	if err != nil {
		t.Fatalf("commsets: %v", err)
	}
	if _, err := Run(n, asg.ProcOf, comm); err == nil {
		t.Fatalf("Run accepted a counts-only analysis")
	}
}
