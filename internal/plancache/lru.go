package plancache

import (
	"bytes"
	"container/list"
	"sort"
	"sync"

	"looppart/internal/telemetry"
)

// DefaultMaxBytes is the cache budget used when none is configured.
const DefaultMaxBytes = 64 << 20

// entryOverhead approximates the per-entry bookkeeping cost (list element,
// map bucket share, headers) charged against the byte budget on top of the
// key and value lengths.
const entryOverhead = 128

// Cache is a byte-bounded LRU of encoded plans, safe for concurrent use.
// Values are treated as immutable by both sides: Put keeps the given
// slice, Get returns it without copying. An entry may additionally carry
// a decoded form of the same value (PutDecoded/GetDecoded), sharing the
// entry's LRU position and lifetime, so hot read paths skip re-parsing
// the bytes they already hold.
type Cache struct {
	mu       sync.Mutex
	maxBytes int64
	bytes    int64
	ll       *list.List // front = most recently used
	items    map[string]*list.Element

	hits      int64
	misses    int64
	evictions int64

	// onInvalidate, when set, is called (outside the lock) for every key
	// whose entry left the cache or changed bytes: eviction, or a replace
	// whose new value differs from the old. A tier snapshotting cache
	// contents (HotTier) hooks this so it can never serve bytes the LRU
	// no longer holds.
	onInvalidate func(key string)
}

type entry struct {
	key string
	val []byte
	// decoded, when non-nil, is a parsed form of val with the same
	// immutability contract. It rides the entry: evicted together,
	// replaced together.
	decoded any
	hits    int64
}

// NewCache returns a cache bounded at maxBytes (DefaultMaxBytes when
// maxBytes <= 0).
func NewCache(maxBytes int64) *Cache {
	if maxBytes <= 0 {
		maxBytes = DefaultMaxBytes
	}
	return &Cache{
		maxBytes: maxBytes,
		ll:       list.New(),
		items:    make(map[string]*list.Element),
	}
}

// Get returns the cached value for key, marking it most recently used.
func (c *Cache) Get(key string) ([]byte, bool) {
	val, _, ok := c.GetDecoded(key)
	return val, ok
}

// GetDecoded is Get also returning the decoded value stored alongside the
// bytes, when one was supplied via PutDecoded (nil otherwise). Both
// returns are shared with the cache and must be treated as immutable.
func (c *Cache) GetDecoded(key string) ([]byte, any, bool) {
	c.mu.Lock()
	el, ok := c.items[key]
	if !ok {
		c.misses++
		c.mu.Unlock()
		telemetry.Active().Counter("plancache.misses").Add(1)
		return nil, nil, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	e := el.Value.(*entry)
	e.hits++
	val, dec := e.val, e.decoded
	c.mu.Unlock()
	telemetry.Active().Counter("plancache.hits").Add(1)
	return val, dec, true
}

// Put inserts or replaces the value for key and evicts from the LRU tail
// until the byte budget holds. A value that alone exceeds the budget is
// not cached.
func (c *Cache) Put(key string, val []byte) { c.PutDecoded(key, val, nil) }

// PutDecoded is Put also retaining decoded — a parsed form of val — for
// GetDecoded to return without re-parsing. Replacing an entry replaces
// its decoded value too (possibly with nil), so the two can never skew.
// The decoded value is not charged against the byte budget: it mirrors
// val's information, and the budget meters the canonical bytes.
func (c *Cache) PutDecoded(key string, val []byte, decoded any) {
	size := int64(len(key)+len(val)) + entryOverhead
	if size > c.maxBytes {
		return
	}
	var evicted int64
	// Keys whose bytes left the cache under the lock; the hook runs after
	// unlock (it may take its own lock) but before PutDecoded returns, so
	// a caller that completed a replace never races its own invalidation.
	var stale []string
	c.mu.Lock()
	if el, ok := c.items[key]; ok {
		e := el.Value.(*entry)
		if c.onInvalidate != nil && !bytes.Equal(e.val, val) {
			stale = append(stale, key)
		}
		c.bytes += int64(len(val)) - int64(len(e.val))
		e.val = val
		e.decoded = decoded
		c.ll.MoveToFront(el)
	} else {
		c.items[key] = c.ll.PushFront(&entry{key: key, val: val, decoded: decoded})
		c.bytes += size
	}
	for c.bytes > c.maxBytes {
		back := c.ll.Back()
		if back == nil {
			break
		}
		e := back.Value.(*entry)
		c.ll.Remove(back)
		delete(c.items, e.key)
		c.bytes -= int64(len(e.key)+len(e.val)) + entryOverhead
		c.evictions++
		evicted++
		if c.onInvalidate != nil {
			stale = append(stale, e.key)
		}
	}
	c.mu.Unlock()
	for _, k := range stale {
		c.onInvalidate(k)
	}
	if evicted > 0 {
		telemetry.Active().Counter("plancache.evictions").Add(evicted)
	}
}

// OnInvalidate registers fn to be called for every key whose entry is
// evicted or replaced with different bytes. Set once, before the cache
// is shared between goroutines; fn must not call back into the cache.
func (c *Cache) OnInvalidate(fn func(key string)) { c.onInvalidate = fn }

// Stats is a point-in-time view of the cache counters.
type Stats struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
	Entries   int   `json:"entries"`
	Bytes     int64 `json:"bytes"`
	MaxBytes  int64 `json:"max_bytes"`
}

// Stats returns the current counters and occupancy.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
		Entries:   c.ll.Len(),
		Bytes:     c.bytes,
		MaxBytes:  c.maxBytes,
	}
}

// HitRatio returns hits / (hits+misses), or 0 before any lookup.
func (s Stats) HitRatio() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

// KeyStat is one cached entry's hot-key accounting: how often the entry
// was served since admission and how many bytes it occupies. Hits are
// per-entry — eviction and re-admission reset them, which is the number
// a hot-key tier would actually shard on.
type KeyStat struct {
	Key   string `json:"key"`
	Hits  int64  `json:"hits"`
	Bytes int64  `json:"bytes"`
}

// AddHits credits key's entry with n extra hits and refreshes its
// recency — the hot tier's rebuild-time feedback, so entries served
// lock-free above the LRU neither lose their hit ranking nor age toward
// eviction. A key no longer cached is a no-op. The hits go to the
// entry's per-key count only, not the cache-wide hit counter: the tier
// reports its own serves.
func (c *Cache) AddHits(key string, n int64) {
	if n <= 0 {
		return
	}
	c.mu.Lock()
	if el, ok := c.items[key]; ok {
		el.Value.(*entry).hits += n
		c.ll.MoveToFront(el)
	}
	c.mu.Unlock()
}

// TopEntry is one cached entry with its value, for hot-tier rebuilds:
// unlike Get, collecting it does not promote the entry or count a hit.
type TopEntry struct {
	Key     string
	Raw     []byte
	Decoded any
	Hits    int64
}

// TopEntries returns the k most-hit entries with their (immutable)
// values, most-hit first with the TopKeys tie-break. One O(n log n)
// scan under the lock, amortized across a rebuild interval.
func (c *Cache) TopEntries(k int) []TopEntry {
	if k <= 0 {
		return nil
	}
	c.mu.Lock()
	all := make([]TopEntry, 0, c.ll.Len())
	for el := c.ll.Front(); el != nil; el = el.Next() {
		e := el.Value.(*entry)
		all = append(all, TopEntry{Key: e.key, Raw: e.val, Decoded: e.decoded, Hits: e.hits})
	}
	c.mu.Unlock()
	sort.Slice(all, func(i, j int) bool {
		if all[i].Hits != all[j].Hits {
			return all[i].Hits > all[j].Hits
		}
		return all[i].Key < all[j].Key
	})
	if len(all) > k {
		all = all[:k]
	}
	return all
}

// TopKeys returns the k most-hit entries, most-hit first (ties broken by
// key for a deterministic dump). An O(n log n) scan under the lock: this
// feeds the /debug/cache endpoint, not a serving path.
func (c *Cache) TopKeys(k int) []KeyStat {
	if k <= 0 {
		return nil
	}
	c.mu.Lock()
	all := make([]KeyStat, 0, c.ll.Len())
	for el := c.ll.Front(); el != nil; el = el.Next() {
		e := el.Value.(*entry)
		all = append(all, KeyStat{Key: e.key, Hits: e.hits, Bytes: int64(len(e.key)+len(e.val)) + entryOverhead})
	}
	c.mu.Unlock()
	sort.Slice(all, func(i, j int) bool {
		if all[i].Hits != all[j].Hits {
			return all[i].Hits > all[j].Hits
		}
		return all[i].Key < all[j].Key
	})
	if len(all) > k {
		all = all[:k]
	}
	return all
}
