package plancache

import (
	"context"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"looppart/internal/obs"
)

// Group deduplicates concurrent work by key: while a call for a key is in
// flight, further Do calls for the same key wait for its result instead
// of running fn again. Unlike a bare mutex, waiters honor their contexts —
// a caller whose context expires leaves without canceling the flight, so
// the search still completes and (via fn's side effects) lands in the
// cache for the next request.
//
// For request-scoped tracing, each flight remembers the trace ID of the
// request that started it (the owner): Do returns it, so a coalesced
// waiter's span tree can link to the trace that actually ran the search.
// Live flights are observable through Flights() for /debug/cache.
type Group struct {
	mu     sync.Mutex
	calls  map[string]*flight
	dedups atomic.Int64
}

type flight struct {
	done       chan struct{}
	val        []byte
	err        error
	ownerTrace string
	started    time.Time
	waiters    atomic.Int32
}

// Do runs fn for key, collapsing concurrent duplicates onto one
// execution. shared reports whether this caller joined an existing flight
// rather than starting one; ownerTrace is the flight owner's trace ID
// (obs.TraceID of the starting caller's context, "" when untraced). fn
// runs on its own goroutine detached from any caller's context.
func (g *Group) Do(ctx context.Context, key string, fn func() ([]byte, error)) (val []byte, shared bool, ownerTrace string, err error) {
	g.mu.Lock()
	if g.calls == nil {
		g.calls = make(map[string]*flight)
	}
	f, ok := g.calls[key]
	if ok {
		f.waiters.Add(1)
		g.mu.Unlock()
		g.dedups.Add(1)
		defer f.waiters.Add(-1)
		select {
		case <-f.done:
			return f.val, true, f.ownerTrace, f.err
		case <-ctx.Done():
			return nil, true, f.ownerTrace, ctx.Err()
		}
	}
	f = &flight{
		done:       make(chan struct{}),
		ownerTrace: obs.TraceID(ctx),
		started:    time.Now(),
	}
	g.calls[key] = f
	g.mu.Unlock()

	go func() {
		f.val, f.err = fn()
		g.mu.Lock()
		delete(g.calls, key)
		g.mu.Unlock()
		close(f.done)
	}()

	select {
	case <-f.done:
		return f.val, false, f.ownerTrace, f.err
	case <-ctx.Done():
		return nil, false, f.ownerTrace, ctx.Err()
	}
}

// Dedups returns how many Do calls joined an existing flight.
func (g *Group) Dedups() int64 { return g.dedups.Load() }

// FlightInfo describes one in-flight call for the debug endpoints.
type FlightInfo struct {
	Key        string `json:"key"`
	OwnerTrace string `json:"owner_trace,omitempty"`
	// Waiters counts callers currently blocked on this flight beyond the
	// owner.
	Waiters int   `json:"waiters"`
	AgeNs   int64 `json:"age_ns"`
}

// Flights snapshots the live flights, sorted by key.
func (g *Group) Flights() []FlightInfo {
	g.mu.Lock()
	out := make([]FlightInfo, 0, len(g.calls))
	for key, f := range g.calls {
		out = append(out, FlightInfo{
			Key:        key,
			OwnerTrace: f.ownerTrace,
			Waiters:    int(f.waiters.Load()),
			AgeNs:      time.Since(f.started).Nanoseconds(),
		})
	}
	g.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}
