package plancache

import (
	"context"
	"sync"
	"sync/atomic"
)

// Group deduplicates concurrent work by key: while a call for a key is in
// flight, further Do calls for the same key wait for its result instead
// of running fn again. Unlike a bare mutex, waiters honor their contexts —
// a caller whose context expires leaves without canceling the flight, so
// the search still completes and (via fn's side effects) lands in the
// cache for the next request.
type Group struct {
	mu     sync.Mutex
	calls  map[string]*flight
	dedups atomic.Int64
}

type flight struct {
	done chan struct{}
	val  []byte
	err  error
}

// Do runs fn for key, collapsing concurrent duplicates onto one
// execution. shared reports whether this caller joined an existing flight
// rather than starting one. fn runs on its own goroutine detached from
// any caller's context.
func (g *Group) Do(ctx context.Context, key string, fn func() ([]byte, error)) (val []byte, shared bool, err error) {
	g.mu.Lock()
	if g.calls == nil {
		g.calls = make(map[string]*flight)
	}
	f, ok := g.calls[key]
	if ok {
		g.mu.Unlock()
		g.dedups.Add(1)
		select {
		case <-f.done:
			return f.val, true, f.err
		case <-ctx.Done():
			return nil, true, ctx.Err()
		}
	}
	f = &flight{done: make(chan struct{})}
	g.calls[key] = f
	g.mu.Unlock()

	go func() {
		f.val, f.err = fn()
		g.mu.Lock()
		delete(g.calls, key)
		g.mu.Unlock()
		close(f.done)
	}()

	select {
	case <-f.done:
		return f.val, false, f.err
	case <-ctx.Done():
		return nil, false, ctx.Err()
	}
}

// Dedups returns how many Do calls joined an existing flight.
func (g *Group) Dedups() int64 { return g.dedups.Load() }
