package plancache

import (
	"bytes"
	"fmt"
	"testing"
)

func TestCacheGetPut(t *testing.T) {
	c := NewCache(1 << 20)
	if _, ok := c.Get("k"); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put("k", []byte("v1"))
	v, ok := c.Get("k")
	if !ok || !bytes.Equal(v, []byte("v1")) {
		t.Fatalf("got %q, %v", v, ok)
	}
	c.Put("k", []byte("v2"))
	v, _ = c.Get("k")
	if !bytes.Equal(v, []byte("v2")) {
		t.Fatalf("update not visible: %q", v)
	}
	s := c.Stats()
	if s.Hits != 2 || s.Misses != 1 || s.Entries != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestCacheEvictsLRU(t *testing.T) {
	// Room for roughly three entries of ~256 bytes each.
	val := make([]byte, 128)
	per := int64(1+len(val)) + entryOverhead
	c := NewCache(3 * per)
	for i := 0; i < 3; i++ {
		c.Put(fmt.Sprintf("%d", i), val)
	}
	c.Get("0") // refresh 0: the LRU victim becomes 1
	c.Put("3", val)
	if _, ok := c.Get("1"); ok {
		t.Error("LRU entry 1 survived eviction")
	}
	for _, k := range []string{"0", "2", "3"} {
		if _, ok := c.Get(k); !ok {
			t.Errorf("entry %s evicted out of LRU order", k)
		}
	}
	if s := c.Stats(); s.Evictions != 1 || s.Bytes > s.MaxBytes {
		t.Errorf("stats = %+v", s)
	}
}

func TestCacheRejectsOversizeValue(t *testing.T) {
	c := NewCache(256)
	c.Put("big", make([]byte, 1024))
	if _, ok := c.Get("big"); ok {
		t.Error("value larger than the whole budget was cached")
	}
	if s := c.Stats(); s.Bytes != 0 || s.Entries != 0 {
		t.Errorf("stats = %+v", s)
	}
}

func TestCacheByteAccounting(t *testing.T) {
	c := NewCache(1 << 20)
	c.Put("a", make([]byte, 100))
	c.Put("b", make([]byte, 200))
	want := int64(1+100) + entryOverhead + int64(1+200) + entryOverhead
	if s := c.Stats(); s.Bytes != want {
		t.Errorf("bytes = %d, want %d", s.Bytes, want)
	}
	c.Put("a", make([]byte, 50)) // shrink in place
	want -= 50
	if s := c.Stats(); s.Bytes != want {
		t.Errorf("bytes after update = %d, want %d", s.Bytes, want)
	}
}

func TestHitRatio(t *testing.T) {
	if r := (Stats{}).HitRatio(); r != 0 {
		t.Errorf("empty ratio = %v", r)
	}
	if r := (Stats{Hits: 3, Misses: 1}).HitRatio(); r != 0.75 {
		t.Errorf("ratio = %v", r)
	}
}

func TestCacheDecodedRidesEntry(t *testing.T) {
	c := NewCache(1 << 20)
	type decoded struct{ N int }

	// PutDecoded stores both forms; GetDecoded returns both.
	c.PutDecoded("k", []byte("v1"), &decoded{N: 1})
	v, d, ok := c.GetDecoded("k")
	if !ok || !bytes.Equal(v, []byte("v1")) {
		t.Fatalf("GetDecoded = %q, %v", v, ok)
	}
	if dd, _ := d.(*decoded); dd == nil || dd.N != 1 {
		t.Fatalf("decoded = %#v, want &{1}", d)
	}
	// Plain Get still serves the bytes.
	if v, ok := c.Get("k"); !ok || !bytes.Equal(v, []byte("v1")) {
		t.Fatalf("Get = %q, %v", v, ok)
	}

	// Replacing via plain Put must drop the stale decoded value: the two
	// forms can never skew.
	c.Put("k", []byte("v2"))
	v, d, ok = c.GetDecoded("k")
	if !ok || !bytes.Equal(v, []byte("v2")) {
		t.Fatalf("after Put: %q, %v", v, ok)
	}
	if d != nil {
		t.Fatalf("stale decoded value survived a bytes-only replace: %#v", d)
	}

	// And replacing via PutDecoded installs the new pair.
	c.PutDecoded("k", []byte("v3"), &decoded{N: 3})
	v, d, _ = c.GetDecoded("k")
	if !bytes.Equal(v, []byte("v3")) {
		t.Fatalf("after PutDecoded: %q", v)
	}
	if dd, _ := d.(*decoded); dd == nil || dd.N != 3 {
		t.Fatalf("decoded = %#v, want &{3}", d)
	}
}

func TestCacheDecodedEvictsWithEntry(t *testing.T) {
	// Budget sized for one small entry (see TestCacheEvictsLRU).
	c := NewCache(2 * (int64(len("k1")+len("xxxx")) + entryOverhead))
	c.PutDecoded("k1", []byte("xxxx"), "d1")
	c.PutDecoded("k2", []byte("xxxx"), "d2")
	c.PutDecoded("k3", []byte("xxxx"), "d3")
	if _, _, ok := c.GetDecoded("k1"); ok {
		t.Fatal("k1 should have been evicted")
	}
	if _, d, ok := c.GetDecoded("k3"); !ok || d != "d3" {
		t.Fatalf("k3 = %v, %v", d, ok)
	}
}
