package plancache

import (
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
)

func TestHotTierNilIsDisabled(t *testing.T) {
	var h *HotTier
	if _, _, ok := h.Get("k"); ok {
		t.Fatal("nil tier served a hit")
	}
	h.Rebuild(NewCache(0)) // must not panic
	if st := h.Stats(); st != (HotStats{}) {
		t.Fatalf("nil stats = %+v", st)
	}
	if NewHotTier(0) != nil {
		t.Fatal("capacity 0 should build the nil tier")
	}
}

func TestHotTierPinsHottestServedEntries(t *testing.T) {
	c := NewCache(0)
	for i := 0; i < 8; i++ {
		key := fmt.Sprintf("k%d", i)
		c.PutDecoded(key, []byte(fmt.Sprintf("v%d", i)), i)
		for j := 0; j <= i; j++ {
			c.Get(key) // k7 hottest, k0 coolest
		}
	}
	c.Put("cold", []byte("never served"))

	h := NewHotTier(3)
	h.Rebuild(c)
	if got := h.Len(); got != 3 {
		t.Fatalf("tier entries = %d, want 3", got)
	}
	for _, key := range []string{"k7", "k6", "k5"} {
		raw, dec, ok := h.Get(key)
		if !ok {
			t.Fatalf("hottest key %s missing from the tier", key)
		}
		if string(raw) == "" || dec == nil {
			t.Fatalf("tier entry %s lost value or decoded form", key)
		}
	}
	if _, _, ok := h.Get("k0"); ok {
		t.Fatal("cool key pinned over hotter ones")
	}
	if _, _, ok := h.Get("cold"); ok {
		t.Fatal("never-served entry pinned")
	}
}

func TestHotTierFeedsHitsBackToLRU(t *testing.T) {
	c := NewCache(0)
	c.PutDecoded("hot", []byte("v"), nil)
	c.Get("hot")
	h := NewHotTier(1)
	h.Rebuild(c)
	for i := 0; i < 10; i++ {
		if _, _, ok := h.Get("hot"); !ok {
			t.Fatal("pinned key missing")
		}
	}
	h.Rebuild(c)
	top := c.TopKeys(1)
	if len(top) != 1 || top[0].Hits != 11 {
		t.Fatalf("LRU hits after feedback = %+v, want 11 (1 direct + 10 tier)", top)
	}
}

func TestHotTierConcurrentGetAndRebuild(t *testing.T) {
	c := NewCache(0)
	for i := 0; i < 32; i++ {
		key := fmt.Sprintf("k%d", i)
		c.PutDecoded(key, []byte(key), nil)
		c.Get(key)
	}
	h := NewHotTier(16)
	h.Rebuild(c)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				key := fmt.Sprintf("k%d", (i+g)%32)
				if raw, _, ok := h.Get(key); ok && string(raw) != key {
					t.Errorf("tier served wrong bytes for %s: %q", key, raw)
					return
				}
				if i%100 == 0 {
					h.Rebuild(c)
				}
			}
		}(g)
	}
	wg.Wait()
	if st := h.Stats(); st.Hits == 0 || st.Rebuilds == 0 {
		t.Fatalf("stats = %+v, want hits and rebuilds", st)
	}
}

func TestCacheAddHitsRefreshesRecencyAndRanking(t *testing.T) {
	c := NewCache(3*(128+2+1) + 10) // room for ~3 tiny entries
	c.Put("a", []byte("1"))
	c.Put("b", []byte("1"))
	c.AddHits("a", 5)
	c.AddHits("missing", 5) // no-op
	// "a" was refreshed after "b": inserting two more should evict "b"
	// first.
	c.Put("c", []byte("1"))
	c.Put("d", []byte("1"))
	if _, ok := c.Get("a"); !ok {
		t.Fatal("AddHits did not refresh recency: a evicted before b")
	}
	if _, ok := c.Get("b"); ok {
		t.Fatal("b should have been evicted as least recent")
	}
	top := c.TopEntries(1)
	if len(top) != 1 || top[0].Key != "a" || top[0].Hits < 5 {
		t.Fatalf("top entry = %+v, want a with >= 5 hits", top)
	}
}

// TestHotTierInvalidatedOnReplace: a hot key whose LRU entry is replaced
// with different bytes must stop serving from the snapshot immediately —
// stale pinned bytes until the next rebuild was the bug.
func TestHotTierInvalidatedOnReplace(t *testing.T) {
	c := NewCache(0)
	h := NewHotTier(2)
	c.OnInvalidate(h.Invalidate)

	c.PutDecoded("k", []byte("v1"), "d1")
	c.Get("k")
	h.Rebuild(c)
	if raw, _, ok := h.Get("k"); !ok || string(raw) != "v1" {
		t.Fatalf("tier should serve v1 before the replace, got %q ok=%v", raw, ok)
	}

	c.PutDecoded("k", []byte("v2"), "d2")
	if raw, _, ok := h.Get("k"); ok {
		t.Fatalf("tier served %q after the LRU replaced the entry", raw)
	}
	if st := h.Stats(); st.Invalidations != 1 {
		t.Fatalf("invalidations = %d, want 1", st.Invalidations)
	}

	// Same-bytes re-puts (the canonical-content common case) must NOT
	// tombstone: the pinned bytes still match the cache.
	c.PutDecoded("k2", []byte("w"), nil)
	c.Get("k2")
	h.Rebuild(c)
	c.PutDecoded("k2", []byte("w"), nil)
	if _, _, ok := h.Get("k2"); !ok {
		t.Fatal("identical-bytes replace tombstoned a still-valid hot entry")
	}

	// The next rebuild re-pins the fresh bytes.
	c.Get("k")
	h.Rebuild(c)
	if raw, _, ok := h.Get("k"); !ok || string(raw) != "v2" {
		t.Fatalf("rebuilt tier = %q ok=%v, want v2", raw, ok)
	}
}

// TestHotTierInvalidatedOnEvict: a hot key evicted from the LRU must
// stop serving from the snapshot immediately.
func TestHotTierInvalidatedOnEvict(t *testing.T) {
	// Budget fits roughly two entries (key+val+overhead ≈ 132 each).
	c := NewCache(300)
	h := NewHotTier(4)
	c.OnInvalidate(h.Invalidate)

	c.PutDecoded("a", []byte("va"), nil)
	c.Get("a")
	h.Rebuild(c)
	if _, _, ok := h.Get("a"); !ok {
		t.Fatal("tier should serve a before the eviction")
	}

	// Two more entries push "a" (the LRU tail) out.
	c.PutDecoded("b", []byte("vb"), nil)
	c.PutDecoded("c", []byte("vc"), nil)
	if _, ok := c.Get("a"); ok {
		t.Fatal("test setup: a was not evicted")
	}
	if raw, _, ok := h.Get("a"); ok {
		t.Fatalf("tier served %q for a key the LRU evicted", raw)
	}
}

// TestHotTierReplaceRace hammers one key with byte-changing replaces
// while readers serve from the hot tier: a reader must never observe a
// version older than one fully replaced before its Get began. Run with
// -race.
func TestHotTierReplaceRace(t *testing.T) {
	c := NewCache(0)
	h := NewHotTier(2)
	c.OnInvalidate(h.Invalidate)

	var lastPut atomic.Int64
	version := func(raw []byte) int64 {
		n, err := strconv.ParseInt(string(raw), 10, 64)
		if err != nil {
			t.Errorf("unparseable hot value %q", raw)
		}
		return n
	}

	c.PutDecoded("k", []byte("0"), nil)
	c.Get("k")
	h.Rebuild(c)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				before := lastPut.Load()
				if raw, _, ok := h.Get("k"); ok {
					if v := version(raw); v < before {
						t.Errorf("hot tier served version %d after version %d was fully replaced", v, before)
						return
					}
				}
			}
		}()
	}
	for i := int64(1); i <= 2000; i++ {
		c.PutDecoded("k", []byte(strconv.FormatInt(i, 10)), nil)
		lastPut.Store(i)
		if i%100 == 0 {
			c.Get("k")
			h.Rebuild(c)
		}
	}
	close(stop)
	wg.Wait()
}
