package plancache

import (
	"fmt"
	"sync"
	"testing"
)

func TestHotTierNilIsDisabled(t *testing.T) {
	var h *HotTier
	if _, _, ok := h.Get("k"); ok {
		t.Fatal("nil tier served a hit")
	}
	h.Rebuild(NewCache(0)) // must not panic
	if st := h.Stats(); st != (HotStats{}) {
		t.Fatalf("nil stats = %+v", st)
	}
	if NewHotTier(0) != nil {
		t.Fatal("capacity 0 should build the nil tier")
	}
}

func TestHotTierPinsHottestServedEntries(t *testing.T) {
	c := NewCache(0)
	for i := 0; i < 8; i++ {
		key := fmt.Sprintf("k%d", i)
		c.PutDecoded(key, []byte(fmt.Sprintf("v%d", i)), i)
		for j := 0; j <= i; j++ {
			c.Get(key) // k7 hottest, k0 coolest
		}
	}
	c.Put("cold", []byte("never served"))

	h := NewHotTier(3)
	h.Rebuild(c)
	if got := h.Len(); got != 3 {
		t.Fatalf("tier entries = %d, want 3", got)
	}
	for _, key := range []string{"k7", "k6", "k5"} {
		raw, dec, ok := h.Get(key)
		if !ok {
			t.Fatalf("hottest key %s missing from the tier", key)
		}
		if string(raw) == "" || dec == nil {
			t.Fatalf("tier entry %s lost value or decoded form", key)
		}
	}
	if _, _, ok := h.Get("k0"); ok {
		t.Fatal("cool key pinned over hotter ones")
	}
	if _, _, ok := h.Get("cold"); ok {
		t.Fatal("never-served entry pinned")
	}
}

func TestHotTierFeedsHitsBackToLRU(t *testing.T) {
	c := NewCache(0)
	c.PutDecoded("hot", []byte("v"), nil)
	c.Get("hot")
	h := NewHotTier(1)
	h.Rebuild(c)
	for i := 0; i < 10; i++ {
		if _, _, ok := h.Get("hot"); !ok {
			t.Fatal("pinned key missing")
		}
	}
	h.Rebuild(c)
	top := c.TopKeys(1)
	if len(top) != 1 || top[0].Hits != 11 {
		t.Fatalf("LRU hits after feedback = %+v, want 11 (1 direct + 10 tier)", top)
	}
}

func TestHotTierConcurrentGetAndRebuild(t *testing.T) {
	c := NewCache(0)
	for i := 0; i < 32; i++ {
		key := fmt.Sprintf("k%d", i)
		c.PutDecoded(key, []byte(key), nil)
		c.Get(key)
	}
	h := NewHotTier(16)
	h.Rebuild(c)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				key := fmt.Sprintf("k%d", (i+g)%32)
				if raw, _, ok := h.Get(key); ok && string(raw) != key {
					t.Errorf("tier served wrong bytes for %s: %q", key, raw)
					return
				}
				if i%100 == 0 {
					h.Rebuild(c)
				}
			}
		}(g)
	}
	wg.Wait()
	if st := h.Stats(); st.Hits == 0 || st.Rebuilds == 0 {
		t.Fatalf("stats = %+v, want hits and rebuilds", st)
	}
}

func TestCacheAddHitsRefreshesRecencyAndRanking(t *testing.T) {
	c := NewCache(3*(128+2+1) + 10) // room for ~3 tiny entries
	c.Put("a", []byte("1"))
	c.Put("b", []byte("1"))
	c.AddHits("a", 5)
	c.AddHits("missing", 5) // no-op
	// "a" was refreshed after "b": inserting two more should evict "b"
	// first.
	c.Put("c", []byte("1"))
	c.Put("d", []byte("1"))
	if _, ok := c.Get("a"); !ok {
		t.Fatal("AddHits did not refresh recency: a evicted before b")
	}
	if _, ok := c.Get("b"); ok {
		t.Fatal("b should have been evicted as least recent")
	}
	top := c.TopEntries(1)
	if len(top) != 1 || top[0].Key != "a" || top[0].Hits < 5 {
		t.Fatalf("top entry = %+v, want a with >= 5 hits", top)
	}
}
