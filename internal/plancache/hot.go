package plancache

import (
	"sync"
	"sync/atomic"

	"looppart/internal/telemetry"
)

// DefaultHotRebuildEvery is the request cadence at which the service
// refreshes the hot tier when none is configured.
const DefaultHotRebuildEvery = 512

// HotTier pins the hottest plans above the LRU in an immutable,
// lock-free snapshot: a Get is one atomic pointer load and one read of
// a map that is never written after publication, so the fleet's most
// skewed keys — the "millions of users asking for the same ten plans"
// case — never touch the LRU mutex at all.
//
// The snapshot is rebuilt out of band (Rebuild) from the LRU's per-entry
// hit counts; between rebuilds it serves possibly stale membership but
// never stale bytes: wire Cache.OnInvalidate to Invalidate and an entry
// the LRU replaced with different bytes or evicted is tombstoned in the
// live snapshot immediately — Get treats it as a miss and the request
// falls through to the LRU (or a fresh search). Hits observed by the
// tier are fed back into the LRU at rebuild time, so pinned entries keep
// their recency and hit ranking even though serving them bypasses the
// LRU entirely.
type HotTier struct {
	capacity int
	snap     atomic.Pointer[hotSnap]

	// writeMu serializes snapshot publication (Rebuild) with
	// tombstoning (Invalidate). Gets never take it. The ordering
	// argument: an LRU change completes before its Invalidate call, so
	// either Rebuild's TopEntries scan already saw the new LRU state, or
	// Invalidate runs after the publication it raced with and tombstones
	// the stale entry in the snapshot that carried it.
	writeMu sync.Mutex

	hits         atomic.Int64
	misses       atomic.Int64
	rebuilds     atomic.Int64
	invalidation atomic.Int64
}

// hotSnap is one immutable snapshot. The map is written only before the
// snapshot is published via atomic pointer swap; after publication the
// only mutation is the per-entry atomic hit counters.
type hotSnap struct {
	entries map[string]*hotEntry
}

// hotEntry is one pinned plan.
type hotEntry struct {
	raw     []byte
	decoded any
	hits    atomic.Int64
	// dead tombstones an entry whose LRU counterpart was replaced or
	// evicted: the pinned bytes may no longer be what the cache holds,
	// so Get must miss instead of serving them.
	dead atomic.Bool
}

// NewHotTier returns a tier pinning up to capacity entries, or nil when
// capacity <= 0 — the disabled state; all methods are nil-safe.
func NewHotTier(capacity int) *HotTier {
	if capacity <= 0 {
		return nil
	}
	h := &HotTier{capacity: capacity}
	h.snap.Store(&hotSnap{entries: map[string]*hotEntry{}})
	return h
}

// Get returns the pinned bytes and decoded form for key. No locks: an
// atomic snapshot load, a map read, an atomic hit count.
func (h *HotTier) Get(key string) ([]byte, any, bool) {
	if h == nil {
		return nil, nil, false
	}
	e, ok := h.snap.Load().entries[key]
	if !ok || e.dead.Load() {
		h.misses.Add(1)
		return nil, nil, false
	}
	e.hits.Add(1)
	h.hits.Add(1)
	return e.raw, e.decoded, true
}

// Len returns the current snapshot's entry count.
func (h *HotTier) Len() int {
	if h == nil {
		return 0
	}
	return len(h.snap.Load().entries)
}

// Rebuild publishes a fresh snapshot of c's hottest entries. The hits
// the outgoing snapshot absorbed are credited back to the LRU first, so
// pinned entries stay hot in the LRU's own ranking and recency order
// instead of starving toward eviction. Concurrent rebuilds coalesce:
// the loser returns immediately, Gets never block.
func (h *HotTier) Rebuild(c *Cache) {
	if h == nil || c == nil {
		return
	}
	if !h.writeMu.TryLock() {
		return
	}
	defer h.writeMu.Unlock()
	old := h.snap.Load()
	for key, e := range old.entries {
		if n := e.hits.Load(); n > 0 {
			c.AddHits(key, n)
		}
	}
	top := c.TopEntries(h.capacity)
	next := &hotSnap{entries: make(map[string]*hotEntry, len(top))}
	for _, te := range top {
		if te.Hits <= 0 {
			// Never-served entries (e.g. store warm loads) are not hot;
			// pinning them would just shadow the LRU with dead weight.
			continue
		}
		next.entries[te.Key] = &hotEntry{raw: te.Raw, decoded: te.Decoded}
	}
	h.snap.Store(next)
	h.rebuilds.Add(1)
	telemetry.Active().Counter("plancache.hot.rebuilds").Add(1)
}

// Invalidate tombstones key's pinned entry, if any: the LRU replaced or
// evicted its counterpart, so the snapshot's bytes can no longer be
// trusted to match the cache. Wire this to Cache.OnInvalidate. Serialized
// with Rebuild so a publication racing with an LRU change cannot revive
// stale bytes — whichever runs second sees the other's effect.
func (h *HotTier) Invalidate(key string) {
	if h == nil {
		return
	}
	h.writeMu.Lock()
	defer h.writeMu.Unlock()
	if e, ok := h.snap.Load().entries[key]; ok && !e.dead.Swap(true) {
		h.invalidation.Add(1)
		telemetry.Active().Counter("plancache.hot.invalidations").Add(1)
	}
}

// HotStats is a point-in-time view of the tier.
type HotStats struct {
	Capacity      int   `json:"capacity"`
	Entries       int   `json:"entries"`
	Hits          int64 `json:"hits"`
	Misses        int64 `json:"misses"`
	Rebuilds      int64 `json:"rebuilds"`
	Invalidations int64 `json:"invalidations"`
}

// Stats returns the current counters (zero value on nil).
func (h *HotTier) Stats() HotStats {
	if h == nil {
		return HotStats{}
	}
	return HotStats{
		Capacity:      h.capacity,
		Entries:       h.Len(),
		Hits:          h.hits.Load(),
		Misses:        h.misses.Load(),
		Rebuilds:      h.rebuilds.Load(),
		Invalidations: h.invalidation.Load(),
	}
}
