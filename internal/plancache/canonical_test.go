package plancache

import (
	"strings"
	"testing"

	"looppart/internal/loopir"
)

func mustNest(t *testing.T, src string, params map[string]int64) *loopir.Nest {
	t.Helper()
	n, err := loopir.Parse(src, params)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	return n
}

func TestCanonicalNestNormalizesNaming(t *testing.T) {
	base := mustNest(t, `
doall (i, 1, 100)
  doall (j, 1, 100)
    A[i,j] = B[i+j,j] + B[i+j+1,j+2]
  enddoall
enddoall
`, nil)
	renamed := mustNest(t, `
doall (row, 1, 100)
  doall (col, 1, 100)
    A[row,col] = B[row+col,col] + B[row+col+1,col+2]
  enddoall
enddoall
`, nil)
	if CanonicalNest(base) != CanonicalNest(renamed) {
		t.Errorf("index renaming changed the canonical form:\n%s\nvs\n%s",
			CanonicalNest(base), CanonicalNest(renamed))
	}
}

func TestCanonicalNestNormalizesReferenceOrder(t *testing.T) {
	base := mustNest(t, `
doall (i, 1, 50)
  doall (j, 1, 50)
    A[i,j] = B[i,j] + B[i+1,j+3]
  enddoall
enddoall
`, nil)
	reordered := mustNest(t, `
doall (i, 1, 50)
  doall (j, 1, 50)
    A[i,j] = B[i+1,j+3] + B[i,j]
  enddoall
enddoall
`, nil)
	if CanonicalNest(base) != CanonicalNest(reordered) {
		t.Errorf("reference order changed the canonical form:\n%s\nvs\n%s",
			CanonicalNest(base), CanonicalNest(reordered))
	}
}

func TestCanonicalNestResolvesParams(t *testing.T) {
	sym := mustNest(t, `
doall (i, 1, N)
  A[i] = B[i+1]
enddoall
`, map[string]int64{"N": 64})
	lit := mustNest(t, `
doall (i, 1, 64)
  A[i] = B[i+1]
enddoall
`, nil)
	if CanonicalNest(sym) != CanonicalNest(lit) {
		t.Errorf("parameter resolution changed the canonical form:\n%s\nvs\n%s",
			CanonicalNest(sym), CanonicalNest(lit))
	}
}

func TestCanonicalNestDistinguishes(t *testing.T) {
	base := mustNest(t, `
doall (i, 1, 64)
  A[i] = B[i+1]
enddoall
`, nil)
	cases := map[string]*loopir.Nest{
		"different bounds": mustNest(t, `
doall (i, 1, 65)
  A[i] = B[i+1]
enddoall
`, nil),
		"different offset": mustNest(t, `
doall (i, 1, 64)
  A[i] = B[i+2]
enddoall
`, nil),
		"extra reference": mustNest(t, `
doall (i, 1, 64)
  A[i] = B[i+1] + B[i]
enddoall
`, nil),
		"different array": mustNest(t, `
doall (i, 1, 64)
  A[i] = C[i+1]
enddoall
`, nil),
	}
	for name, n := range cases {
		if CanonicalNest(base) == CanonicalNest(n) {
			t.Errorf("%s: canonical forms collide:\n%s", name, CanonicalNest(n))
		}
	}
}

func TestCanonicalNestKeepsLoopKinds(t *testing.T) {
	doall := mustNest(t, `
doall (t, 1, 4)
  doall (i, 1, 16)
    A[i] = A[i] + B[i]
  enddoall
enddoall
`, nil)
	doseq := mustNest(t, `
doseq (t, 1, 4)
  doall (i, 1, 16)
    A[i] = A[i] + B[i]
  enddoall
enddoseq
`, nil)
	if CanonicalNest(doall) == CanonicalNest(doseq) {
		t.Error("doseq and doall outer loops must not share a canonical form")
	}
}

func TestKeyVariesWithRequestParameters(t *testing.T) {
	n := mustNest(t, `
doall (i, 1, 64)
  A[i] = B[i+1]
enddoall
`, nil)
	k := Key(n, 16, "rect")
	if !strings.HasPrefix(k, "rect/p16/") {
		t.Errorf("key %q lacks the readable prefix", k)
	}
	if Key(n, 16, "rect") != k {
		t.Error("key not deterministic")
	}
	if Key(n, 32, "rect") == k || Key(n, 16, "skewed") == k {
		t.Error("procs/strategy must vary the key")
	}
}
