package plancache

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"looppart/internal/obs"
)

// TestGroupCollapsesConcurrentCalls proves real dedup: the leader's fn
// blocks until all other callers have joined the flight, so exactly one
// execution serves everyone.
func TestGroupCollapsesConcurrentCalls(t *testing.T) {
	const K = 8
	var g Group
	var runs atomic.Int64
	joined := make(chan struct{})
	release := make(chan struct{})

	fn := func() ([]byte, error) {
		runs.Add(1)
		<-release
		return []byte("plan"), nil
	}

	var wg sync.WaitGroup
	var sharedCount atomic.Int64
	wg.Add(K)
	for i := 0; i < K; i++ {
		go func() {
			defer wg.Done()
			<-joined
			v, shared, _, err := g.Do(context.Background(), "key", fn)
			if err != nil || string(v) != "plan" {
				t.Errorf("Do = %q, %v", v, err)
			}
			if shared {
				sharedCount.Add(1)
			}
		}()
	}
	// Start the leader flight, then let the rest pile on before releasing.
	close(joined)
	for g.Dedups() < K-1 {
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()

	if n := runs.Load(); n != 1 {
		t.Errorf("fn ran %d times, want 1", n)
	}
	if n := sharedCount.Load(); n != K-1 {
		t.Errorf("%d callers reported shared, want %d", n, K-1)
	}
}

func TestGroupSequentialCallsRunSeparately(t *testing.T) {
	var g Group
	var runs atomic.Int64
	fn := func() ([]byte, error) { runs.Add(1); return nil, nil }
	for i := 0; i < 3; i++ {
		if _, shared, _, err := g.Do(context.Background(), "k", fn); err != nil || shared {
			t.Fatalf("Do #%d: shared=%v err=%v", i, shared, err)
		}
	}
	if n := runs.Load(); n != 3 {
		t.Errorf("fn ran %d times, want 3 (no flight was in progress)", n)
	}
}

func TestGroupPropagatesError(t *testing.T) {
	var g Group
	boom := errors.New("boom")
	_, _, _, err := g.Do(context.Background(), "k", func() ([]byte, error) { return nil, boom })
	if !errors.Is(err, boom) {
		t.Errorf("err = %v", err)
	}
}

// TestGroupOwnerTraceAndFlights: waiters joining a flight learn the
// owner's trace ID, and Flights() exposes the live flight with its
// waiter count while the flight is held open.
func TestGroupOwnerTraceAndFlights(t *testing.T) {
	var g Group
	ownerCtx := obs.WithTrace(context.Background(), obs.NewTrace("owner-trace-1", "root"))
	release := make(chan struct{})
	started := make(chan struct{})

	ownerDone := make(chan string, 1)
	go func() {
		_, _, ot, _ := g.Do(ownerCtx, "k", func() ([]byte, error) {
			close(started)
			<-release
			return []byte("v"), nil
		})
		ownerDone <- ot
	}()
	<-started

	waiterDone := make(chan string, 1)
	go func() {
		_, shared, ot, _ := g.Do(context.Background(), "k", func() ([]byte, error) {
			t.Error("waiter fn must not run")
			return nil, nil
		})
		if !shared {
			t.Error("waiter not marked shared")
		}
		waiterDone <- ot
	}()
	for g.Dedups() < 1 {
		time.Sleep(time.Millisecond)
	}

	fl := g.Flights()
	if len(fl) != 1 || fl[0].Key != "k" || fl[0].OwnerTrace != "owner-trace-1" {
		t.Fatalf("Flights() = %+v, want one flight for k owned by owner-trace-1", fl)
	}
	if fl[0].Waiters != 1 {
		t.Fatalf("flight waiters = %d, want 1", fl[0].Waiters)
	}
	if fl[0].AgeNs <= 0 {
		t.Fatalf("flight age = %d, want > 0", fl[0].AgeNs)
	}

	close(release)
	if ot := <-ownerDone; ot != "owner-trace-1" {
		t.Fatalf("owner saw ownerTrace %q", ot)
	}
	if ot := <-waiterDone; ot != "owner-trace-1" {
		t.Fatalf("waiter saw ownerTrace %q, want owner-trace-1", ot)
	}
	if fl := g.Flights(); len(fl) != 0 {
		t.Fatalf("flights after completion = %+v, want none", fl)
	}
}

// TestGroupContextLeavesFlightRunning: a waiter whose context expires
// returns promptly, but the flight itself completes and its side effects
// (the cache fill) still happen.
func TestGroupContextLeavesFlightRunning(t *testing.T) {
	var g Group
	release := make(chan struct{})
	finished := make(chan struct{})
	ctx, cancel := context.WithCancel(context.Background())

	done := make(chan error, 1)
	go func() {
		_, _, _, err := g.Do(ctx, "k", func() ([]byte, error) {
			<-release
			close(finished)
			return []byte("x"), nil
		})
		done <- err
	}()

	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	close(release)
	select {
	case <-finished:
	case <-time.After(5 * time.Second):
		t.Fatal("flight did not complete after the waiter left")
	}
}
