package plancache

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestGroupCollapsesConcurrentCalls proves real dedup: the leader's fn
// blocks until all other callers have joined the flight, so exactly one
// execution serves everyone.
func TestGroupCollapsesConcurrentCalls(t *testing.T) {
	const K = 8
	var g Group
	var runs atomic.Int64
	joined := make(chan struct{})
	release := make(chan struct{})

	fn := func() ([]byte, error) {
		runs.Add(1)
		<-release
		return []byte("plan"), nil
	}

	var wg sync.WaitGroup
	var sharedCount atomic.Int64
	wg.Add(K)
	for i := 0; i < K; i++ {
		go func() {
			defer wg.Done()
			<-joined
			v, shared, err := g.Do(context.Background(), "key", fn)
			if err != nil || string(v) != "plan" {
				t.Errorf("Do = %q, %v", v, err)
			}
			if shared {
				sharedCount.Add(1)
			}
		}()
	}
	// Start the leader flight, then let the rest pile on before releasing.
	close(joined)
	for g.Dedups() < K-1 {
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()

	if n := runs.Load(); n != 1 {
		t.Errorf("fn ran %d times, want 1", n)
	}
	if n := sharedCount.Load(); n != K-1 {
		t.Errorf("%d callers reported shared, want %d", n, K-1)
	}
}

func TestGroupSequentialCallsRunSeparately(t *testing.T) {
	var g Group
	var runs atomic.Int64
	fn := func() ([]byte, error) { runs.Add(1); return nil, nil }
	for i := 0; i < 3; i++ {
		if _, shared, err := g.Do(context.Background(), "k", fn); err != nil || shared {
			t.Fatalf("Do #%d: shared=%v err=%v", i, shared, err)
		}
	}
	if n := runs.Load(); n != 3 {
		t.Errorf("fn ran %d times, want 3 (no flight was in progress)", n)
	}
}

func TestGroupPropagatesError(t *testing.T) {
	var g Group
	boom := errors.New("boom")
	_, _, err := g.Do(context.Background(), "k", func() ([]byte, error) { return nil, boom })
	if !errors.Is(err, boom) {
		t.Errorf("err = %v", err)
	}
}

// TestGroupContextLeavesFlightRunning: a waiter whose context expires
// returns promptly, but the flight itself completes and its side effects
// (the cache fill) still happen.
func TestGroupContextLeavesFlightRunning(t *testing.T) {
	var g Group
	release := make(chan struct{})
	finished := make(chan struct{})
	ctx, cancel := context.WithCancel(context.Background())

	done := make(chan error, 1)
	go func() {
		_, _, err := g.Do(ctx, "k", func() ([]byte, error) {
			<-release
			close(finished)
			return []byte("x"), nil
		})
		done <- err
	}()

	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	close(release)
	select {
	case <-finished:
	case <-time.After(5 * time.Second):
		t.Fatal("flight did not complete after the waiter left")
	}
}
