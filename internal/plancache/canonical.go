// Package plancache is the caching layer of the partition-planning
// service: a canonical plan key derived from a normalized loop nest, a
// byte-bounded LRU cache of encoded plans, and a singleflight group that
// collapses concurrent searches for the same nest into one.
//
// The paper's central observation makes plans highly cacheable: the
// communication-optimal tile shape depends only on the loop's affine
// reference structure (G, a), its iteration-space bounds, and the
// processor count P (Theorems 2 and 4) — not on who asks, when, or how
// the nest happens to spell its index variables. Canonicalization
// normalizes away exactly the request variation that cannot change the
// answer: whitespace, index naming, reference order within the body, and
// symbolic loop-bound parameters (already resolved to integers by the
// parser).
package plancache

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"

	"looppart/internal/loopir"
)

// CanonicalNest renders a parsed nest in canonical textual form:
//
//   - loop variables are renamed positionally (i00, i01, ... outermost
//     first), so index naming is erased;
//   - loop bounds are the resolved integers (symbolic parameters were
//     substituted at parse time);
//   - the body is reduced to its access multiset — one line per array
//     reference occurrence with its role (read, write, atomic) — sorted
//     lexicographically, so statement and operand order are erased.
//
// Two nests with equal canonical forms have identical reference analyses
// up to class ordering and therefore identical optimal plans. Array names
// are kept verbatim: renaming arrays canonically is reference-order
// dependent and the plan itself never depends on them, so distinct names
// only cost cache sharing, never correctness.
func CanonicalNest(n *loopir.Nest) string {
	rename := make(map[string]string, len(n.Loops))
	var b strings.Builder
	for k, l := range n.Loops {
		v := fmt.Sprintf("i%02d", k)
		rename[l.Var] = v
		if l.SymHi != "" {
			// Symbolic upper bounds keep their name: two nests agreeing
			// up to the unknown extent share a plan, different unknowns
			// do not. Concrete nests render exactly as before, so legacy
			// keys are unchanged.
			fmt.Fprintf(&b, "%s %s %d ?%s\n", l.Kind, v, l.Lo, l.SymHi)
		} else {
			fmt.Fprintf(&b, "%s %s %d %d\n", l.Kind, v, l.Lo, l.Hi)
		}
	}
	accs := n.Accesses()
	lines := make([]string, 0, len(accs))
	for _, acc := range accs {
		role := "r"
		switch {
		case acc.Write && acc.Atomic:
			role = "w$"
		case acc.Write:
			role = "w"
		case acc.Atomic:
			role = "r$"
		}
		lines = append(lines, role+" "+renderRef(acc.Ref, rename))
	}
	sort.Strings(lines)
	b.WriteString(strings.Join(lines, "\n"))
	return b.String()
}

// renderRef renders one reference with canonical index names. The
// canonical names share a fixed width, so AffineExpr's lexicographic
// variable order coincides with nest order.
func renderRef(r loopir.Ref, rename map[string]string) string {
	subs := make([]string, len(r.Subs))
	for i, sub := range r.Subs {
		e := loopir.NewAffine(sub.Const)
		for v, c := range sub.Coef {
			e = e.AddTerm(rename[v], c)
		}
		subs[i] = e.String()
	}
	return r.Array + "[" + strings.Join(subs, ",") + "]"
}

// Key returns the cache key for planning the nest on procs processors
// under the named strategy: a digest of the canonical nest, prefixed with
// the request parameters for debuggability.
func Key(n *loopir.Nest, procs int, strategy string) string {
	sum := sha256.Sum256([]byte(CanonicalNest(n)))
	return fmt.Sprintf("%s/p%d/%s", strategy, procs, hex.EncodeToString(sum[:16]))
}
