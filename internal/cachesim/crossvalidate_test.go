package cachesim

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"looppart/internal/footprint"
	"looppart/internal/loopir"
	"looppart/internal/tile"
)

// Cross-module invariant: on an infinite cache with a single processor,
// the simulator's cold misses equal the exact total footprint of the
// iteration space — Definition 3 measured two independent ways.

func randomAffineProgram(rng *rand.Rand) string {
	nPar := 1 + rng.Intn(2)
	var b strings.Builder
	vars := make([]string, nPar)
	for p := 0; p < nPar; p++ {
		vars[p] = fmt.Sprintf("i%d", p)
		fmt.Fprintf(&b, "doall (%s, 0, %d)\n", vars[p], 2+rng.Intn(6))
	}
	sub := func() string {
		v := vars[rng.Intn(len(vars))]
		c := 1 + rng.Intn(2)
		off := rng.Intn(5) - 2
		s := v
		if c != 1 {
			s = fmt.Sprintf("%d*%s", c, v)
		}
		if off > 0 {
			s += fmt.Sprintf("+%d", off)
		} else if off < 0 {
			s += fmt.Sprintf("%d", off)
		}
		return s
	}
	arrays := []string{"X", "Y"}
	nStmts := 1 + rng.Intn(2)
	for s := 0; s < nStmts; s++ {
		dims := 1 + rng.Intn(2)
		subs := make([]string, dims)
		for k := range subs {
			subs[k] = sub()
		}
		lhs := arrays[rng.Intn(len(arrays))] + "[" + strings.Join(subs, ",") + "]"
		reads := make([]string, 1+rng.Intn(2))
		for k := range reads {
			dims := 1 + rng.Intn(2)
			rsubs := make([]string, dims)
			for d := range rsubs {
				rsubs[d] = sub()
			}
			reads[k] = arrays[rng.Intn(len(arrays))] + "[" + strings.Join(rsubs, ",") + "]"
		}
		fmt.Fprintf(&b, "%s = %s\n", lhs, strings.Join(reads, " + "))
	}
	for p := 0; p < nPar; p++ {
		b.WriteString("enddoall\n")
	}
	return b.String()
}

func TestColdMissesEqualExactFootprint(t *testing.T) {
	rng := rand.New(rand.NewSource(31337))
	for trial := 0; trial < 120; trial++ {
		src := randomAffineProgram(rng)
		n, err := loopir.Parse(src, nil)
		if err != nil {
			t.Fatalf("trial %d: %v\n%s", trial, err, src)
		}
		a, err := footprint.Analyze(n)
		if err != nil {
			// Arrays used with conflicting ranks are rejected by the
			// executor but fine for footprint analysis; only dimension
			// conflicts within a class would error. Skip those programs.
			continue
		}

		// Exact footprint over the whole iteration space.
		var pts [][]int64
		tile.BoundsOf(n).ForEach(func(p []int64) bool {
			pts = append(pts, append([]int64(nil), p...))
			return true
		})
		want := a.ExactTotalFootprint(pts)

		// Simulate on one processor.
		m := mustMachine(t, DefaultConfig(1))
		if err := RunNest(m, n, func([]int64) int { return 0 }); err != nil {
			t.Fatal(err)
		}
		got := m.Finish()
		if got.ColdMisses != want {
			t.Fatalf("trial %d: cold misses %d != exact footprint %d\n%s",
				trial, got.ColdMisses, want, src)
		}
		if got.CoherenceMisses != 0 || got.Invalidations != 0 {
			t.Fatalf("trial %d: single processor produced coherence events", trial)
		}
	}
}

func TestPartitionedColdMissesEqualPerTileFootprints(t *testing.T) {
	// With P processors, cold misses = Σ per-processor footprints
	// (distinct elements each processor touches).
	rng := rand.New(rand.NewSource(555))
	for trial := 0; trial < 60; trial++ {
		src := randomAffineProgram(rng)
		n, err := loopir.Parse(src, nil)
		if err != nil {
			t.Fatal(err)
		}
		a, err := footprint.Analyze(n)
		if err != nil {
			continue
		}
		space := tile.BoundsOf(n)
		ext := make([]int64, space.Dim())
		for k, e := range space.Extents() {
			ext[k] = (e + 1) / 2
		}
		tl, err := tile.RectTilingFor(space, ext)
		if err != nil {
			t.Fatal(err)
		}
		procs := 4
		asg, err := tile.Assign(tl, space, procs)
		if err != nil {
			t.Fatal(err)
		}
		var want int64
		for _, procPts := range asg.PointsOf() {
			if len(procPts) > 0 {
				want += a.ExactTotalFootprint(procPts)
			}
		}
		m := mustMachine(t, DefaultConfig(procs))
		if err := RunNest(m, n, asg.ProcOf); err != nil {
			t.Fatal(err)
		}
		if got := m.Finish().ColdMisses; got != want {
			t.Fatalf("trial %d: cold %d != Σ footprints %d\n%s", trial, got, want, src)
		}
	}
}
