package cachesim

import (
	"testing"

	"looppart/internal/telemetry"
)

func TestMetricsMissesPerProc(t *testing.T) {
	cases := []struct {
		name string
		m    Metrics
		want float64
	}{
		{"zero procs (zero value)", Metrics{}, 0},
		{"zero procs with misses", Metrics{ColdMisses: 10, CoherenceMisses: 5}, 0},
		{"one proc", Metrics{Procs: 1, ColdMisses: 7}, 7},
		{"even split", Metrics{Procs: 4, ColdMisses: 8, CoherenceMisses: 4}, 3},
		{"capacity counted", Metrics{Procs: 2, ColdMisses: 1, CoherenceMisses: 2, CapacityMisses: 3}, 3},
		{"no misses", Metrics{Procs: 8}, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.m.MissesPerProc(); got != tc.want {
				t.Errorf("MissesPerProc() = %v, want %v", got, tc.want)
			}
		})
	}
}

func TestMetricsString(t *testing.T) {
	cases := []struct {
		name string
		m    Metrics
		want string
	}{
		{
			"zero value",
			Metrics{},
			"misses=0 (cold=0 coherence=0 capacity=0) inval=0 traffic=0 shared=0 cost=0",
		},
		{
			"all fields",
			Metrics{
				Procs: 4, ColdMisses: 10, CoherenceMisses: 20, CapacityMisses: 30,
				Invalidations: 5, NetworkTraffic: 65, SharedData: 7, Cost: 1234.4,
			},
			"misses=60 (cold=10 coherence=20 capacity=30) inval=5 traffic=65 shared=7 cost=1234",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.m.String(); got != tc.want {
				t.Errorf("String() = %q, want %q", got, tc.want)
			}
		})
	}
}

func TestMetricsPublish(t *testing.T) {
	m := Metrics{
		Procs: 2, Accesses: 100, ColdMisses: 10, CoherenceMisses: 4,
		CapacityMisses: 1, Invalidations: 3, NetworkTraffic: 18,
		SharedData: 6, Cost: 321.5, PerProc: []int64{9, 6},
	}
	reg := telemetry.New()
	m.Publish(reg, "sim.test.")
	snap := reg.Snapshot()
	wantCounters := map[string]int64{
		"sim.test.accesses":         100,
		"sim.test.misses":           15,
		"sim.test.cold_misses":      10,
		"sim.test.coherence_misses": 4,
		"sim.test.capacity_misses":  1,
		"sim.test.invalidations":    3,
		"sim.test.network_traffic":  18,
		"sim.test.shared_data":      6,
		"sim.test.proc.0.misses":    9,
		"sim.test.proc.1.misses":    6,
	}
	for name, want := range wantCounters {
		if got := snap.Counters[name]; got != want {
			t.Errorf("counter %s = %d, want %d", name, got, want)
		}
	}
	if got := snap.Gauges["sim.test.cost"]; got != 321.5 {
		t.Errorf("cost gauge = %v, want 321.5", got)
	}
	if got := snap.Gauges["sim.test.misses_per_proc"]; got != 7.5 {
		t.Errorf("misses_per_proc gauge = %v, want 7.5", got)
	}
	// Publishing to a nil registry must be a no-op, not a panic.
	m.Publish(nil, "x.")
}
