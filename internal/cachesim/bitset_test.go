package cachesim

import (
	"fmt"
	"reflect"
	"testing"
)

func TestProcSetInlineAndSpill(t *testing.T) {
	var s procSet
	for _, p := range []int{0, 5, 63, 64, 100, 191} {
		if s.has(p) {
			t.Fatalf("empty set has(%d)", p)
		}
		s.add(p)
		if !s.has(p) {
			t.Fatalf("after add, !has(%d)", p)
		}
	}
	if got := s.count(); got != 6 {
		t.Fatalf("count = %d, want 6", got)
	}
	var seen []int
	s.forEach(func(p int) bool { seen = append(seen, p); return true })
	if want := []int{0, 5, 63, 64, 100, 191}; !reflect.DeepEqual(seen, want) {
		t.Fatalf("forEach order = %v, want %v", seen, want)
	}
	s.remove(100)
	s.remove(5)
	s.remove(200) // never added: no-op
	if s.has(100) || s.has(5) {
		t.Fatal("removed members still present")
	}
	if got := s.count(); got != 4 {
		t.Fatalf("count after removes = %d, want 4", got)
	}
}

func TestProcSetForEachEarlyStop(t *testing.T) {
	var s procSet
	s.add(1)
	s.add(70)
	var seen []int
	s.forEach(func(p int) bool { seen = append(seen, p); return false })
	if len(seen) != 1 {
		t.Fatalf("early stop visited %v", seen)
	}
}

func TestBitvec(t *testing.T) {
	var b bitvec
	if b.get(100) {
		t.Fatal("empty bitvec get(100)")
	}
	b.set(0)
	b.set(63)
	b.set(64)
	b.set(1000)
	for _, i := range []int32{0, 63, 64, 1000} {
		if !b.get(i) {
			t.Fatalf("!get(%d) after set", i)
		}
	}
	if got := b.countOnes(); got != 4 {
		t.Fatalf("countOnes = %d, want 4", got)
	}
	b.clear(64)
	b.clear(5000) // out of range: no-op
	if b.get(64) {
		t.Fatal("get(64) after clear")
	}
}

// TestCoherenceBeyond64Procs drives the directory past the inline sharer
// word: 100 readers of one datum, then one writer invalidating them all.
func TestCoherenceBeyond64Procs(t *testing.T) {
	const procs = 100
	m, err := New(DefaultConfig(procs))
	if err != nil {
		t.Fatal(err)
	}
	for p := 0; p < procs; p++ {
		m.AccessDatum(p, "A", []int64{7}, false, false)
	}
	m.AccessDatum(42, "A", []int64{7}, true, false)
	got := m.Finish()
	if got.ColdMisses != procs {
		t.Errorf("ColdMisses = %d, want %d", got.ColdMisses, procs)
	}
	if got.Invalidations != procs-1 {
		t.Errorf("Invalidations = %d, want %d", got.Invalidations, procs-1)
	}
	if got.SharedData != 1 {
		t.Errorf("SharedData = %d, want 1", got.SharedData)
	}
	// A reader above 64 re-misses on coherence after the invalidation.
	m2, _ := New(DefaultConfig(procs))
	for p := 0; p < procs; p++ {
		m2.AccessDatum(p, "A", []int64{7}, false, false)
	}
	m2.AccessDatum(42, "A", []int64{7}, true, false)
	m2.AccessDatum(90, "A", []int64{7}, false, false)
	if got := m2.Finish(); got.CoherenceMisses != 1 {
		t.Errorf("CoherenceMisses = %d, want 1", got.CoherenceMisses)
	}
}

// TestAccessLineMatchesStringKeys checks the interned line path produces
// the same metrics as driving the simulator with the old "L<n>" keys.
func TestAccessLineMatchesStringKeys(t *testing.T) {
	type ref struct {
		proc  int
		line  int64
		write bool
	}
	refs := []ref{
		{0, 3, false}, {1, 3, false}, {0, 3, true}, {1, 3, false},
		{2, 9, true}, {0, 9, false}, {2, 9, true}, {1, 12, false},
	}
	byLine, _ := New(DefaultConfig(3))
	byKey, _ := New(DefaultConfig(3))
	for _, r := range refs {
		byLine.AccessLine(r.proc, r.line, r.write, false)
		byKey.Access(r.proc, fmt.Sprintf("L%d", r.line), r.write, false)
	}
	a, b := byLine.Finish(), byKey.Finish()
	if !reflect.DeepEqual(a, b) {
		t.Errorf("AccessLine metrics %+v != string-key metrics %+v", a, b)
	}
}

// TestExpectedDataHint checks presizing changes no observable behavior.
func TestExpectedDataHint(t *testing.T) {
	run := func(hint int) Metrics {
		cfg := DefaultConfig(4)
		cfg.CacheLines = 2
		cfg.ExpectedData = hint
		m, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 32; i++ {
			m.AccessDatum(i%4, "A", []int64{int64(i % 6)}, i%3 == 0, false)
		}
		return m.Finish()
	}
	if a, b := run(0), run(1000); !reflect.DeepEqual(a, b) {
		t.Errorf("metrics with hint %+v != without %+v", b, a)
	}
}

// TestDeepIndexFallback exercises the >4-dimensional intern fallback.
func TestDeepIndexFallback(t *testing.T) {
	m, _ := New(DefaultConfig(2))
	idx := []int64{1, 2, 3, 4, 5, 6}
	m.AccessDatum(0, "T", idx, false, false)
	m.AccessDatum(1, "T", idx, false, false)
	m.AccessDatum(0, "T", idx, false, false)
	m.Access(0, DatumKey("T", idx), false, false) // same datum via string key
	got := m.Finish()
	if got.ColdMisses != 2 {
		t.Errorf("ColdMisses = %d, want 2", got.ColdMisses)
	}
	if got.SharedData != 1 {
		t.Errorf("SharedData = %d, want 1", got.SharedData)
	}
	if got.Accesses != 4 {
		t.Errorf("Accesses = %d, want 4", got.Accesses)
	}
}
