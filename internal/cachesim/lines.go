package cachesim

import (
	"fmt"

	"looppart/internal/layout"
	"looppart/internal/loopir"
)

// Line-granular simulation: the paper assumes unit cache lines and notes
// that longer lines can be included as in Abraham–Hudak [6]. Mapping every
// array element to an address (package layout) and caching line numbers
// instead of elements does exactly that — spatial locality along the
// row-major storage order then shows up as fewer misses, and false
// sharing of boundary lines as extra coherence traffic.

// RunNestLines replays the nest like RunNest but at cache-line granularity
// under the given memory map.
func RunNestLines(m *Machine, n *loopir.Nest, assign func(p []int64) int, mm *layout.MemoryMap) error {
	vars := n.DoallVars()
	seqLoops := n.SeqLoops()

	runEpoch := func(extra map[string]int64) error {
		var err error
		p := make([]int64, len(vars))
		n.ForEachIteration(extra, func(env map[string]int64) bool {
			for k, v := range vars {
				p[k] = env[v]
			}
			proc := assign(p)
			if proc < 0 || proc >= m.cfg.Procs {
				err = fmt.Errorf("cachesim: iteration %v assigned to processor %d of %d", p, proc, m.cfg.Procs)
				return false
			}
			for _, mr := range n.TraceIteration(env) {
				line, lerr := mm.LineOf(mr.Array, mr.Index)
				if lerr != nil {
					err = lerr
					return false
				}
				m.AccessLine(proc, line, mr.Write, mr.Atomic)
			}
			return true
		})
		return err
	}

	var seq func(k int, extra map[string]int64) error
	seq = func(k int, extra map[string]int64) error {
		if k == len(seqLoops) {
			return runEpoch(extra)
		}
		l := seqLoops[k]
		for v := l.Lo; v <= l.Hi; v++ {
			next := make(map[string]int64, len(extra)+1)
			for kk, vv := range extra {
				next[kk] = vv
			}
			next[l.Var] = v
			if err := seq(k+1, next); err != nil {
				return err
			}
		}
		return nil
	}
	return seq(0, map[string]int64{})
}

// ReplayPoints replays the references of the given iteration points on one
// processor, in the order given. It exposes iteration-order effects that
// only matter for finite caches (§2.2: with small caches the tile is
// subdivided, not reshaped). extra supplies sequential-loop bindings.
func ReplayPoints(m *Machine, n *loopir.Nest, proc int, points [][]int64, extra map[string]int64) error {
	if proc < 0 || proc >= m.cfg.Procs {
		return fmt.Errorf("cachesim: processor %d of %d", proc, m.cfg.Procs)
	}
	vars := n.DoallVars()
	for _, p := range points {
		if len(p) != len(vars) {
			return fmt.Errorf("cachesim: point %v has %d coordinates, want %d", p, len(p), len(vars))
		}
		env := make(map[string]int64, len(vars)+len(extra))
		for k, v := range extra {
			env[k] = v
		}
		for k, v := range vars {
			env[v] = p[k]
		}
		for _, mr := range n.TraceIteration(env) {
			m.AccessDatum(proc, mr.Array, mr.Index, mr.Write, mr.Atomic)
		}
	}
	return nil
}
