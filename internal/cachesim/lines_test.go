package cachesim

import (
	"testing"

	"looppart/internal/layout"
	"looppart/internal/loopir"
	"looppart/internal/paperex"
	"looppart/internal/tile"
)

func runLines(t *testing.T, src string, params map[string]int64, ext []int64, procs int, lineSize int64) Metrics {
	t.Helper()
	n := loopir.MustParse(src, params)
	space := tile.BoundsOf(n)
	tl, err := tile.RectTilingFor(space, ext)
	if err != nil {
		t.Fatal(err)
	}
	assign, err := tile.Assign(tl, space, procs)
	if err != nil {
		t.Fatal(err)
	}
	mm, err := layout.MapNest(n, lineSize)
	if err != nil {
		t.Fatal(err)
	}
	m := mustMachine(t, DefaultConfig(procs))
	if err := RunNestLines(m, n, assign.ProcOf, mm); err != nil {
		t.Fatal(err)
	}
	return m.Finish()
}

func TestUnitLinesMatchElementSimulation(t *testing.T) {
	// Line size 1 must reproduce the element-granular results exactly
	// (Example 2's 204 and 240 misses per processor).
	a := runLines(t, paperex.Example2, nil, []int64{100, 1}, 100, 1)
	if a.MissesPerProc() != 204 {
		t.Fatalf("unit-line partition a misses = %v", a.MissesPerProc())
	}
	b := runLines(t, paperex.Example2, nil, []int64{10, 10}, 100, 1)
	if b.MissesPerProc() != 240 {
		t.Fatalf("unit-line partition b misses = %v", b.MissesPerProc())
	}
}

func TestLongerLinesReduceMisses(t *testing.T) {
	// A row-major stencil read sequentially gains spatial locality:
	// misses drop roughly by the line size along the storage dimension.
	src := `
doall (i, 1, 32)
  doall (j, 1, 32)
    A[i,j] = B[i,j-1] + B[i,j+1]
  enddoall
enddoall`
	m1 := runLines(t, src, nil, []int64{8, 32}, 4, 1)
	m4 := runLines(t, src, nil, []int64{8, 32}, 4, 4)
	m8 := runLines(t, src, nil, []int64{8, 32}, 4, 8)
	if !(m8.Misses() < m4.Misses() && m4.Misses() < m1.Misses()) {
		t.Fatalf("misses not decreasing with line size: %d, %d, %d",
			m1.Misses(), m4.Misses(), m8.Misses())
	}
	// Lower bound: distinct lines touched ≈ footprint/lineSize.
	if m4.Misses() > m1.Misses()/2 {
		t.Fatalf("line size 4 saved too little: %d vs %d", m4.Misses(), m1.Misses())
	}
}

func TestFalseSharingAppearsWithLongLines(t *testing.T) {
	// Column-strip tiles of a row-major array write adjacent elements of
	// the same line from different processors: with unit lines there is
	// no sharing; with long lines the boundary lines bounce (false
	// sharing), visible as invalidations.
	src := `
doall (i, 1, 16)
  doall (j, 1, 16)
    A[i,j] = A[i,j] + 1
  enddoall
enddoall`
	unit := runLines(t, src, nil, []int64{16, 4}, 4, 1)
	long := runLines(t, src, nil, []int64{16, 4}, 4, 8)
	if unit.Invalidations != 0 {
		t.Fatalf("unit lines should have no invalidations, got %d", unit.Invalidations)
	}
	if long.Invalidations == 0 {
		t.Fatal("long lines across column strips must false-share")
	}
}

func TestReplayPointsOrderingMatters(t *testing.T) {
	// §2.2: with a small cache, subdividing the tile (blocked order)
	// preserves reuse that a long row scan evicts.
	src := `
doall (i, 1, 24)
  doall (j, 1, 24)
    A[i,j] = B[i-1,j] + B[i+1,j] + B[i,j-1] + B[i,j+1]
  enddoall
enddoall`
	n := loopir.MustParse(src, nil)

	var rowOrder [][]int64
	tile.BoundsOf(n).ForEach(func(p []int64) bool {
		q := append([]int64(nil), p...)
		rowOrder = append(rowOrder, q)
		return true
	})
	// Blocked order: 6×6 subtiles.
	var blocked [][]int64
	for bi := int64(1); bi <= 24; bi += 6 {
		for bj := int64(1); bj <= 24; bj += 6 {
			for i := bi; i < bi+6; i++ {
				for j := bj; j < bj+6; j++ {
					blocked = append(blocked, []int64{i, j})
				}
			}
		}
	}
	run := func(points [][]int64) Metrics {
		cfg := DefaultConfig(1)
		cfg.CacheLines = 64 // far smaller than the ~1250-element footprint
		m := mustMachine(t, cfg)
		if err := ReplayPoints(m, n, 0, points, nil); err != nil {
			t.Fatal(err)
		}
		return m.Finish()
	}
	rowM := run(rowOrder)
	blockM := run(blocked)
	if blockM.Misses() >= rowM.Misses() {
		t.Fatalf("blocked order %d misses not below row order %d", blockM.Misses(), rowM.Misses())
	}
	if blockM.CapacityMisses >= rowM.CapacityMisses {
		t.Fatalf("blocked capacity misses %d not below row %d", blockM.CapacityMisses, rowM.CapacityMisses)
	}
}

func TestReplayPointsErrors(t *testing.T) {
	n := loopir.MustParse(`doall (i, 1, 4) A[i] = 0 enddoall`, nil)
	m := mustMachine(t, DefaultConfig(2))
	if err := ReplayPoints(m, n, 5, [][]int64{{1}}, nil); err == nil {
		t.Fatal("bad proc accepted")
	}
	if err := ReplayPoints(m, n, 0, [][]int64{{1, 2}}, nil); err == nil {
		t.Fatal("bad point rank accepted")
	}
}

func TestRunNestLinesDoseq(t *testing.T) {
	m := mustMachine(t, DefaultConfig(2))
	n := loopir.MustParse(`
doseq (t, 1, 2)
  doall (i, 1, 8)
    A[i] = A[i] + 1
  enddoall
enddoseq`, nil)
	mm, err := layout.MapNest(n, 4)
	if err != nil {
		t.Fatal(err)
	}
	space := tile.BoundsOf(n)
	tl, _ := tile.RectTilingFor(space, []int64{4})
	assign, _ := tile.Assign(tl, space, 2)
	if err := RunNestLines(m, n, assign.ProcOf, mm); err != nil {
		t.Fatal(err)
	}
	got := m.Finish()
	// 8 elements on 2 lines (4 elements each); 2 procs × 1 line each
	// cold; second epoch hits.
	if got.ColdMisses != 2 {
		t.Fatalf("cold = %d, want 2", got.ColdMisses)
	}
}

func BenchmarkRunNestLines(b *testing.B) {
	n := loopir.MustParse(paperex.Example2, nil)
	space := tile.BoundsOf(n)
	tl, _ := tile.RectTilingFor(space, []int64{10, 10})
	assign, _ := tile.Assign(tl, space, 100)
	mm, _ := layout.MapNest(n, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, _ := New(DefaultConfig(100))
		if err := RunNestLines(m, n, assign.ProcOf, mm); err != nil {
			b.Fatal(err)
		}
	}
}
