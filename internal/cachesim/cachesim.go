// Package cachesim simulates the system model of §2.2: P processors, each
// with a coherent cache, backed by uniform-access main memory over an
// interconnect (Figure 2). It replays the memory references of a
// partitioned loop nest and accounts for the events the paper's analysis
// predicts: cold (first-reference) misses, coherence misses and
// invalidations, and the total network traffic.
//
// The coherence protocol is a directory-based MSI over unit-length cache
// lines (the paper's assumption; larger lines are a straightforward
// extension it cites from Abraham and Hudak). Caches are infinite by
// default — the paper's operating regime, where tile footprints fit — but
// a finite LRU capacity can be configured to study the small-cache case.
//
// Data are identified internally by dense int32 IDs from an intern table,
// not by key strings: replaying a nest touches the same few thousand data
// millions of times, and formatting "A[i,j]" plus hashing it on every
// access dominated the simulation. Structured references intern on the
// (array, index) value; the key string is materialized lazily, only when a
// MissCost hook actually asks for it.
package cachesim

import (
	"fmt"
	"strconv"

	"looppart/internal/loopir"
)

// Config parameterizes a simulation.
type Config struct {
	Procs int
	// CacheLines bounds each processor cache in lines; 0 means infinite
	// (the paper's model).
	CacheLines int
	// ExpectedData sizes the directory, intern table, and census up front.
	// The footprint model predicts it (cumulative footprint ≈ distinct
	// data); 0 falls back to growth by doubling.
	ExpectedData int
	// CostCacheHit, CostMemory, CostAtomic are the charge-per-access
	// weights used for the Cost metric. Main memory is "much higher"
	// than cache (§2.2); synchronizing references are "slightly more
	// expensive communication than usual" (Appendix A).
	CostCacheHit float64
	CostMemory   float64
	CostAtomic   float64
	// MissCost, when non-nil, overrides CostMemory/CostAtomic for miss
	// fills: it returns the access cost and the network hop count for
	// processor proc reaching datum's home memory. This is how the
	// distributed-memory (Alewife mesh) model plugs in; the uniform
	// model of Figure 2 leaves it nil.
	MissCost func(proc int, datum string, atomic bool) (cost float64, hops int64)
}

// DefaultConfig mirrors the paper's qualitative model: memory 20× a cache
// hit, synchronizing traffic 1.5× ordinary memory traffic.
func DefaultConfig(procs int) Config {
	return Config{
		Procs:        procs,
		CacheLines:   0,
		CostCacheHit: 1,
		CostMemory:   20,
		CostAtomic:   30,
	}
}

// lineState is the directory state of one datum.
type lineState struct {
	// sharers is the set of processors with a valid copy.
	sharers procSet
	// owner is the last writer, -1 if the line is clean-shared.
	owner int32
}

// Metrics aggregates the simulation counters.
type Metrics struct {
	Procs int
	// Accesses is the total number of references replayed.
	Accesses int64
	// ColdMisses: first reference to a datum by a processor that never
	// held it (capacity evictions can re-trigger them; on infinite
	// caches this equals the sum of per-processor footprint sizes).
	ColdMisses int64
	// CoherenceMisses: references that missed because another processor
	// invalidated the local copy.
	CoherenceMisses int64
	// CapacityMisses: references that missed because the LRU evicted
	// the line (only with finite caches).
	CapacityMisses int64
	// Invalidations: copies invalidated by remote writes.
	Invalidations int64
	// NetworkTraffic: messages on the interconnect — one per miss fill
	// plus one per invalidation (unit-size lines).
	NetworkTraffic int64
	// SharedData counts data elements accessed by more than one
	// processor over the whole run.
	SharedData int64
	// HopTraffic accumulates network hops when a MissCost hook supplies
	// topology distances (zero under the uniform-memory model).
	HopTraffic int64
	// LocalMisses/RemoteMisses split misses by whether the MissCost hook
	// reported zero hops (local memory module) or not.
	LocalMisses  int64
	RemoteMisses int64
	// Cost is the weighted access cost under the Config weights.
	Cost float64
	// PerProc carries per-processor miss counts (cold + coherence +
	// capacity), indexed by processor.
	PerProc []int64
}

// Misses returns the total miss count.
func (m Metrics) Misses() int64 { return m.ColdMisses + m.CoherenceMisses + m.CapacityMisses }

// MissesPerProc returns the mean misses per processor.
func (m Metrics) MissesPerProc() float64 {
	if m.Procs == 0 {
		return 0
	}
	return float64(m.Misses()) / float64(m.Procs)
}

func (m Metrics) String() string {
	return fmt.Sprintf("misses=%d (cold=%d coherence=%d capacity=%d) inval=%d traffic=%d shared=%d cost=%.0f",
		m.Misses(), m.ColdMisses, m.CoherenceMisses, m.CapacityMisses,
		m.Invalidations, m.NetworkTraffic, m.SharedData, m.Cost)
}

// datumRec is the intern table's record of one datum: how to rebuild its
// key string on demand.
type datumRec struct {
	kind  uint8
	array int32   // recIdx: index into arrayNames
	index []int64 // recIdx
	line  int64   // recLine
	str   string  // recStr: the original key; otherwise built lazily
}

const (
	recStr = iota
	recIdx
	recLine
)

// idxKey is the hashable intern key for structured references of up to
// four dimensions (the common case; deeper nests fall back to the string
// key).
type idxKey struct {
	array int32
	dims  int8
	i     [4]int64
}

// Machine is the simulated multiprocessor.
type Machine struct {
	cfg    Config
	caches []*cache

	// Intern table: datum → dense ID.
	arrays     map[string]int32
	arrayNames []string
	byIdx      map[idxKey]int32
	byStr      map[string]int32
	byLine     map[int64]int32
	recs       []datumRec

	dir []lineState // directory, indexed by datum ID
	// touched is the shared-data census: which processors ever accessed
	// each datum.
	touched []procSet

	metrics Metrics
}

// New creates a machine.
func New(cfg Config) (*Machine, error) {
	if cfg.Procs <= 0 {
		return nil, fmt.Errorf("cachesim: need at least one processor")
	}
	if cfg.CacheLines < 0 {
		return nil, fmt.Errorf("cachesim: negative cache size")
	}
	hint := cfg.ExpectedData
	if hint < 0 {
		hint = 0
	}
	m := &Machine{
		cfg:     cfg,
		arrays:  make(map[string]int32, 8),
		byIdx:   make(map[idxKey]int32, hint),
		byLine:  make(map[int64]int32, hint),
		recs:    make([]datumRec, 0, hint),
		dir:     make([]lineState, 0, hint),
		touched: make([]procSet, 0, hint),
	}
	m.metrics.Procs = cfg.Procs
	m.metrics.PerProc = make([]int64, cfg.Procs)
	for p := 0; p < cfg.Procs; p++ {
		m.caches = append(m.caches, newCache(cfg.CacheLines))
	}
	return m, nil
}

// newID appends a fresh datum to the intern table, directory, and census.
func (m *Machine) newID(rec datumRec) int32 {
	id := int32(len(m.recs))
	m.recs = append(m.recs, rec)
	m.dir = append(m.dir, lineState{owner: -1})
	m.touched = append(m.touched, procSet{})
	return id
}

func (m *Machine) internString(datum string) int32 {
	if m.byStr == nil {
		m.byStr = make(map[string]int32)
	}
	if id, ok := m.byStr[datum]; ok {
		return id
	}
	id := m.newID(datumRec{kind: recStr, str: datum})
	m.byStr[datum] = id
	return id
}

func (m *Machine) internDatum(array string, index []int64) int32 {
	if len(index) > len(idxKey{}.i) {
		return m.internString(DatumKey(array, index))
	}
	aid, ok := m.arrays[array]
	if !ok {
		aid = int32(len(m.arrayNames))
		m.arrays[array] = aid
		m.arrayNames = append(m.arrayNames, array)
	}
	k := idxKey{array: aid, dims: int8(len(index))}
	copy(k.i[:], index)
	if id, ok := m.byIdx[k]; ok {
		return id
	}
	id := m.newID(datumRec{kind: recIdx, array: aid, index: append([]int64(nil), index...)})
	m.byIdx[k] = id
	return id
}

func (m *Machine) internLine(line int64) int32 {
	if id, ok := m.byLine[line]; ok {
		return id
	}
	id := m.newID(datumRec{kind: recLine, line: line})
	m.byLine[line] = id
	return id
}

// key materializes (and caches) the datum's key string — only the MissCost
// hook needs it.
func (m *Machine) key(id int32) string {
	rec := &m.recs[id]
	if rec.str == "" {
		switch rec.kind {
		case recIdx:
			rec.str = DatumKey(m.arrayNames[rec.array], rec.index)
		case recLine:
			rec.str = "L" + strconv.FormatInt(rec.line, 10)
		}
	}
	return rec.str
}

// Access replays one reference by processor proc to the named datum.
func (m *Machine) Access(proc int, datum string, write, atomic bool) {
	m.access(proc, m.internString(datum), write, atomic)
}

// AccessDatum is Access with structured array indices — the fast path: no
// key string is built.
func (m *Machine) AccessDatum(proc int, array string, index []int64, write, atomic bool) {
	m.access(proc, m.internDatum(array, index), write, atomic)
}

// AccessLine replays a reference at cache-line granularity; line is the
// line number from a layout.MemoryMap.
func (m *Machine) AccessLine(proc int, line int64, write, atomic bool) {
	m.access(proc, m.internLine(line), write, atomic)
}

func (m *Machine) access(proc int, id int32, write, atomic bool) {
	m.metrics.Accesses++
	// Appendix A: synchronizing reads and writes are both treated as
	// writes by the coherence system.
	if atomic {
		write = true
	}

	m.touched[id].add(proc)

	c := m.caches[proc]
	st := &m.dir[id]

	hit := c.has(id)
	if hit && write && st.owner != int32(proc) && st.sharers.count() > 1 {
		// Shared copy upgraded to exclusive: others invalidate, and the
		// upgrade costs a network round trip but not a refill.
		m.invalidateOthers(st, proc, id)
		st.owner = int32(proc)
		m.metrics.NetworkTraffic++
		m.chargeHit(atomic)
		c.touch(id)
		return
	}
	if hit {
		if write {
			st.owner = int32(proc)
		}
		m.chargeHit(atomic)
		c.touch(id)
		return
	}

	// Miss path: classify.
	switch {
	case c.wasInvalidated(id):
		m.metrics.CoherenceMisses++
	case c.wasEvicted(id):
		m.metrics.CapacityMisses++
	default:
		m.metrics.ColdMisses++
	}
	m.metrics.PerProc[proc]++
	m.metrics.NetworkTraffic++ // line fill from memory
	if write {
		m.invalidateOthers(st, proc, id)
		st.owner = int32(proc)
	} else if st.owner >= 0 && st.owner != int32(proc) {
		// Reading a dirty line: writeback traffic, line becomes shared.
		m.metrics.NetworkTraffic++
		st.owner = -1
	}
	st.sharers.add(proc)
	if victim, ok := c.insert(id); ok {
		m.dir[victim].sharers.remove(proc)
	}
	if m.cfg.MissCost != nil {
		cost, hops := m.cfg.MissCost(proc, m.key(id), atomic)
		m.metrics.Cost += cost
		m.metrics.HopTraffic += hops
		if hops == 0 {
			m.metrics.LocalMisses++
		} else {
			m.metrics.RemoteMisses++
		}
	} else if m.cfg.CostMemory > 0 {
		if atomic {
			m.metrics.Cost += m.cfg.CostAtomic
		} else {
			m.metrics.Cost += m.cfg.CostMemory
		}
	}
}

func (m *Machine) chargeHit(atomic bool) {
	if atomic {
		// A synchronizing hit still costs coherence arbitration.
		m.metrics.Cost += m.cfg.CostAtomic
		m.metrics.NetworkTraffic++
		return
	}
	m.metrics.Cost += m.cfg.CostCacheHit
}

func (m *Machine) invalidateOthers(st *lineState, proc int, id int32) {
	st.sharers.forEach(func(p int) bool {
		if p != proc {
			m.caches[p].invalidate(id)
			st.sharers.remove(p)
			m.metrics.Invalidations++
			m.metrics.NetworkTraffic++
		}
		return true
	})
}

// Finish computes the derived metrics and returns the totals.
func (m *Machine) Finish() Metrics {
	var shared int64
	for i := range m.touched {
		if m.touched[i].count() > 1 {
			shared++
		}
	}
	m.metrics.SharedData = shared
	return m.metrics
}

// DatumKey builds the canonical datum key for an array element.
func DatumKey(array string, index []int64) string {
	buf := make([]byte, 0, len(array)+2+8*len(index))
	buf = append(buf, array...)
	buf = append(buf, '[')
	for i, v := range index {
		if i > 0 {
			buf = append(buf, ',')
		}
		buf = strconv.AppendInt(buf, v, 10)
	}
	buf = append(buf, ']')
	return string(buf)
}

// RunNest replays the nest under an iteration→processor assignment. Outer
// sequential loops are replayed in order (each epoch revisits the whole
// doall space, exposing steady-state coherence traffic, Figure 9).
// assign maps a doall iteration point to its processor.
func RunNest(m *Machine, n *loopir.Nest, assign func(p []int64) int) error {
	vars := n.DoallVars()
	seqLoops := n.SeqLoops()

	var runEpoch func(extra map[string]int64) error
	runEpoch = func(extra map[string]int64) error {
		var err error
		p := make([]int64, len(vars))
		n.ForEachIteration(extra, func(env map[string]int64) bool {
			for k, v := range vars {
				p[k] = env[v]
			}
			proc := assign(p)
			if proc < 0 || proc >= m.cfg.Procs {
				err = fmt.Errorf("cachesim: iteration %v assigned to processor %d of %d", p, proc, m.cfg.Procs)
				return false
			}
			for _, mr := range n.TraceIteration(env) {
				m.AccessDatum(proc, mr.Array, mr.Index, mr.Write, mr.Atomic)
			}
			return true
		})
		return err
	}

	// Iterate the sequential loops as nested epochs.
	var seq func(k int, extra map[string]int64) error
	seq = func(k int, extra map[string]int64) error {
		if k == len(seqLoops) {
			return runEpoch(extra)
		}
		l := seqLoops[k]
		for v := l.Lo; v <= l.Hi; v++ {
			next := make(map[string]int64, len(extra)+1)
			for kk, vv := range extra {
				next[kk] = vv
			}
			next[l.Var] = v
			if err := seq(k+1, next); err != nil {
				return err
			}
		}
		return nil
	}
	return seq(0, map[string]int64{})
}
