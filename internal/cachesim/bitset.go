package cachesim

import "math/bits"

// procSet is a set of processor IDs. Directory entries hold one per datum
// (sharer set) plus one per datum for the shared-data census, so the
// representation matters: processors 0–63 live inline in a single word —
// no allocation, O(1) membership, popcount cardinality — and larger
// machines spill the remaining processors into extension words allocated
// only when a processor ≥ 64 actually joins the set.
type procSet struct {
	word  uint64
	spill []uint64 // processor p ≥ 64 lives at spill[p/64-1] bit p%64
}

func (s *procSet) add(p int) {
	if p < 64 {
		s.word |= 1 << uint(p)
		return
	}
	w := p/64 - 1
	if w >= len(s.spill) {
		grown := make([]uint64, w+1)
		copy(grown, s.spill)
		s.spill = grown
	}
	s.spill[w] |= 1 << uint(p%64)
}

func (s *procSet) remove(p int) {
	if p < 64 {
		s.word &^= 1 << uint(p)
		return
	}
	if w := p/64 - 1; w < len(s.spill) {
		s.spill[w] &^= 1 << uint(p%64)
	}
}

func (s *procSet) has(p int) bool {
	if p < 64 {
		return s.word&(1<<uint(p)) != 0
	}
	w := p/64 - 1
	return w < len(s.spill) && s.spill[w]&(1<<uint(p%64)) != 0
}

func (s *procSet) count() int {
	n := bits.OnesCount64(s.word)
	for _, w := range s.spill {
		n += bits.OnesCount64(w)
	}
	return n
}

// forEach visits the members in ascending order; return false to stop.
func (s *procSet) forEach(f func(p int) bool) {
	for w := s.word; w != 0; w &= w - 1 {
		if !f(bits.TrailingZeros64(w)) {
			return
		}
	}
	for wi, w := range s.spill {
		base := (wi + 1) * 64
		for ; w != 0; w &= w - 1 {
			if !f(base + bits.TrailingZeros64(w)) {
				return
			}
		}
	}
}

// bitvec is a growable bit vector indexed by dense datum IDs — the
// presence, invalidated, and evicted sets of an infinite cache, where the
// previous map[string]bool per set cost a hash and a string header per
// datum.
type bitvec struct{ w []uint64 }

func (b *bitvec) get(i int32) bool {
	wi := int(i) >> 6
	return wi < len(b.w) && b.w[wi]&(1<<uint(i&63)) != 0
}

func (b *bitvec) set(i int32) {
	wi := int(i) >> 6
	if wi >= len(b.w) {
		grown := make([]uint64, wi+1+wi/2)
		copy(grown, b.w)
		b.w = grown
	}
	b.w[wi] |= 1 << uint(i&63)
}

func (b *bitvec) clear(i int32) {
	if wi := int(i) >> 6; wi < len(b.w) {
		b.w[wi] &^= 1 << uint(i&63)
	}
}

func (b *bitvec) countOnes() int {
	n := 0
	for _, w := range b.w {
		n += bits.OnesCount64(w)
	}
	return n
}
