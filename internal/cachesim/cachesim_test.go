package cachesim

import (
	"testing"

	"looppart/internal/loopir"
	"looppart/internal/paperex"
	"looppart/internal/tile"
)

func mustMachine(t testing.TB, cfg Config) *Machine {
	t.Helper()
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestColdMissThenHit(t *testing.T) {
	m := mustMachine(t, DefaultConfig(1))
	m.Access(0, "A[0]", false, false)
	m.Access(0, "A[0]", false, false)
	got := m.Finish()
	if got.ColdMisses != 1 || got.Misses() != 1 {
		t.Fatalf("metrics = %v", got)
	}
	if got.Accesses != 2 {
		t.Fatalf("accesses = %d", got.Accesses)
	}
	if got.SharedData != 0 {
		t.Fatalf("shared = %d", got.SharedData)
	}
}

func TestCoherenceInvalidationAndMiss(t *testing.T) {
	m := mustMachine(t, DefaultConfig(2))
	m.Access(0, "X", false, false) // P0 reads: cold miss
	m.Access(1, "X", true, false)  // P1 writes: cold miss + invalidate P0
	m.Access(0, "X", false, false) // P0 reads again: coherence miss
	got := m.Finish()
	if got.ColdMisses != 2 {
		t.Errorf("cold = %d, want 2", got.ColdMisses)
	}
	if got.CoherenceMisses != 1 {
		t.Errorf("coherence = %d, want 1", got.CoherenceMisses)
	}
	if got.Invalidations != 1 {
		t.Errorf("invalidations = %d, want 1", got.Invalidations)
	}
	if got.SharedData != 1 {
		t.Errorf("shared = %d, want 1", got.SharedData)
	}
}

func TestWriteUpgradeInvalidatesSharers(t *testing.T) {
	m := mustMachine(t, DefaultConfig(3))
	m.Access(0, "X", false, false)
	m.Access(1, "X", false, false)
	m.Access(2, "X", false, false)
	m.Access(0, "X", true, false) // upgrade: invalidates P1, P2
	got := m.Finish()
	if got.Invalidations != 2 {
		t.Errorf("invalidations = %d, want 2", got.Invalidations)
	}
	if got.Misses() != 3 {
		t.Errorf("misses = %d, want 3 (the upgrade hits)", got.Misses())
	}
}

func TestReadOfDirtyLineCausesWriteback(t *testing.T) {
	m := mustMachine(t, DefaultConfig(2))
	m.Access(0, "X", true, false) // P0 dirty
	base := m.Finish().NetworkTraffic
	m.Access(1, "X", false, false) // P1 read: fill + writeback
	got := m.Finish()
	if got.NetworkTraffic != base+2 {
		t.Errorf("traffic = %d, want %d", got.NetworkTraffic, base+2)
	}
}

func TestAtomicTreatedAsWrite(t *testing.T) {
	// Appendix A: synchronizing reads are writes to the coherence system.
	m := mustMachine(t, DefaultConfig(2))
	m.Access(0, "C", false, true) // atomic read → exclusive on P0
	m.Access(1, "C", false, true) // atomic read on P1 → invalidates P0
	got := m.Finish()
	if got.Invalidations != 1 {
		t.Errorf("invalidations = %d, want 1", got.Invalidations)
	}
}

func TestAtomicCostsMore(t *testing.T) {
	cfg := DefaultConfig(1)
	m1 := mustMachine(t, cfg)
	m1.Access(0, "X", true, false)
	plain := m1.Finish().Cost

	m2 := mustMachine(t, cfg)
	m2.Access(0, "X", true, true)
	atomic := m2.Finish().Cost
	if atomic <= plain {
		t.Errorf("atomic cost %v not above plain %v", atomic, plain)
	}
}

func TestFiniteCacheCapacityMisses(t *testing.T) {
	cfg := DefaultConfig(1)
	cfg.CacheLines = 2
	m := mustMachine(t, cfg)
	m.Access(0, "A", false, false)
	m.Access(0, "B", false, false)
	m.Access(0, "C", false, false) // evicts A
	m.Access(0, "A", false, false) // capacity miss
	got := m.Finish()
	if got.ColdMisses != 3 {
		t.Errorf("cold = %d, want 3", got.ColdMisses)
	}
	if got.CapacityMisses != 1 {
		t.Errorf("capacity = %d, want 1", got.CapacityMisses)
	}
}

func TestLRUOrderRespectsTouches(t *testing.T) {
	cfg := DefaultConfig(1)
	cfg.CacheLines = 2
	m := mustMachine(t, cfg)
	m.Access(0, "A", false, false)
	m.Access(0, "B", false, false)
	m.Access(0, "A", false, false) // A now MRU
	m.Access(0, "C", false, false) // evicts B
	m.Access(0, "A", false, false) // still resident: hit
	got := m.Finish()
	if got.Misses() != 3 {
		t.Errorf("misses = %d, want 3", got.Misses())
	}
}

func TestInvalidConfig(t *testing.T) {
	if _, err := New(Config{Procs: 0}); err == nil {
		t.Error("0 procs accepted")
	}
	if _, err := New(Config{Procs: 1, CacheLines: -1}); err == nil {
		t.Error("negative cache accepted")
	}
}

func TestDatumKey(t *testing.T) {
	if got := DatumKey("A", []int64{1, -2}); got != "A[1,-2]" {
		t.Errorf("key = %q", got)
	}
	if DatumKey("A", []int64{1, 2}) == DatumKey("A", []int64{12}) {
		t.Error("ambiguous keys")
	}
}

// --- End-to-end nest simulations reproducing the paper's Example 2. ---

func runExample2(t *testing.T, extents []int64) Metrics {
	t.Helper()
	n := loopir.MustParse(paperex.Example2, nil)
	space := tile.BoundsOf(n)
	tl, err := tile.RectTilingFor(space, extents)
	if err != nil {
		t.Fatal(err)
	}
	assign, err := tile.Assign(tl, space, 100)
	if err != nil {
		t.Fatal(err)
	}
	m := mustMachine(t, DefaultConfig(100))
	if err := RunNest(m, n, assign.ProcOf); err != nil {
		t.Fatal(err)
	}
	return m.Finish()
}

func TestExample2PartitionA(t *testing.T) {
	// Partition a (Figure 3): 100×1 column strips; 104 B-misses + 100
	// A-misses per tile, and ZERO inter-processor sharing.
	got := runExample2(t, []int64{100, 1})
	if got.MissesPerProc() != 204 {
		t.Errorf("misses/proc = %v, want 204", got.MissesPerProc())
	}
	if got.SharedData != 0 {
		t.Errorf("shared data = %d, want 0 (comm-free partition)", got.SharedData)
	}
	if got.CoherenceMisses != 0 || got.Invalidations != 0 {
		t.Errorf("coherence events on a comm-free partition: %v", got)
	}
}

func TestExample2PartitionB(t *testing.T) {
	// Partition b: 10×10 blocks; 140 B-misses + 100 A-misses per tile,
	// with data shared between neighboring tiles.
	got := runExample2(t, []int64{10, 10})
	if got.MissesPerProc() != 240 {
		t.Errorf("misses/proc = %v, want 240", got.MissesPerProc())
	}
	if got.SharedData == 0 {
		t.Error("block partition should share boundary data")
	}
}

func TestExample2SimMatchesFootprintModel(t *testing.T) {
	// The simulator's cold misses equal the exact footprint per tile
	// summed over tiles — the analysis' central claim.
	a := runExample2(t, []int64{100, 1})
	b := runExample2(t, []int64{10, 10})
	if a.ColdMisses != 204*100 {
		t.Errorf("partition a cold misses = %d, want %d", a.ColdMisses, 204*100)
	}
	if b.ColdMisses != 240*100 {
		t.Errorf("partition b cold misses = %d, want %d", b.ColdMisses, 240*100)
	}
}

func TestDoseqSteadyStateCoherence(t *testing.T) {
	// Figure 9: with an outer time loop, partition-boundary data bounces
	// between processors every epoch; a comm-free partition stays quiet.
	src := `
doseq (t, 1, 3)
  doall (i, 1, 16)
    A[i] = A[i-1] + A[i+1]
  enddoall
enddoseq`
	n := loopir.MustParse(src, nil)
	space := tile.BoundsOf(n)
	tl, err := tile.RectTilingFor(space, []int64{4})
	if err != nil {
		t.Fatal(err)
	}
	assign, err := tile.Assign(tl, space, 4)
	if err != nil {
		t.Fatal(err)
	}
	m := mustMachine(t, DefaultConfig(4))
	if err := RunNest(m, n, assign.ProcOf); err != nil {
		t.Fatal(err)
	}
	got := m.Finish()
	if got.CoherenceMisses == 0 {
		t.Error("stencil across tile boundaries must coherence-miss every epoch")
	}
	// Epoch 1 has only cold misses; epochs 2-3 add coherence misses at
	// the 3 interior boundaries (2 boundary elements each side).
	if got.ColdMisses == 0 || got.ColdMisses >= got.Accesses {
		t.Errorf("cold = %d of %d accesses", got.ColdMisses, got.Accesses)
	}
}

func TestRunNestBadAssignment(t *testing.T) {
	n := loopir.MustParse(`doall (i, 1, 4) A[i] = 0 enddoall`, nil)
	m := mustMachine(t, DefaultConfig(2))
	err := RunNest(m, n, func(p []int64) int { return 5 })
	if err == nil {
		t.Fatal("out-of-range processor accepted")
	}
}

func TestPerProcCounts(t *testing.T) {
	got := runExample2(t, []int64{100, 1})
	for p, c := range got.PerProc {
		if c != 204 {
			t.Fatalf("proc %d misses = %d, want 204", p, c)
		}
	}
}

func BenchmarkSimExample2Blocks(b *testing.B) {
	n := loopir.MustParse(paperex.Example2, nil)
	space := tile.BoundsOf(n)
	tl, _ := tile.RectTilingFor(space, []int64{10, 10})
	assign, _ := tile.Assign(tl, space, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, _ := New(DefaultConfig(100))
		if err := RunNest(m, n, assign.ProcOf); err != nil {
			b.Fatal(err)
		}
		_ = m.Finish()
	}
}
