package cachesim

import (
	"fmt"

	"looppart/internal/telemetry"
)

// Publish feeds the simulation metrics into a telemetry registry so
// simulated misses and real wall time land in one report. prefix
// namespaces the counters (e.g. "sim.rect."); per-processor miss counts
// publish as <prefix>proc.<i>.misses. A nil registry is a no-op.
func (m Metrics) Publish(reg *telemetry.Registry, prefix string) {
	if reg == nil {
		return
	}
	for _, c := range []struct {
		name string
		v    int64
	}{
		{"accesses", m.Accesses},
		{"misses", m.Misses()},
		{"cold_misses", m.ColdMisses},
		{"coherence_misses", m.CoherenceMisses},
		{"capacity_misses", m.CapacityMisses},
		{"invalidations", m.Invalidations},
		{"network_traffic", m.NetworkTraffic},
		{"shared_data", m.SharedData},
		{"hop_traffic", m.HopTraffic},
		{"local_misses", m.LocalMisses},
		{"remote_misses", m.RemoteMisses},
	} {
		reg.Counter(prefix + c.name).Add(c.v)
	}
	reg.Gauge(prefix + "cost").Set(m.Cost)
	reg.Gauge(prefix + "misses_per_proc").Set(m.MissesPerProc())
	for p, v := range m.PerProc {
		reg.Counter(fmt.Sprintf("%sproc.%d.misses", prefix, p)).Add(v)
	}
}
