package cachesim

import "container/list"

// cache is one processor's cache: a set of datum keys with optional LRU
// capacity. It remembers why absent lines left (invalidation vs eviction)
// so misses can be classified.
type cache struct {
	capacity int // 0 = infinite
	lines    map[string]*list.Element
	lru      *list.List // front = most recent; values are datum keys

	invalidated map[string]bool
	evicted     map[string]bool
}

func newCache(capacity int) *cache {
	return &cache{
		capacity:    capacity,
		lines:       make(map[string]*list.Element),
		lru:         list.New(),
		invalidated: make(map[string]bool),
		evicted:     make(map[string]bool),
	}
}

func (c *cache) has(datum string) bool {
	_, ok := c.lines[datum]
	return ok
}

// touch marks the line most-recently used.
func (c *cache) touch(datum string) {
	if el, ok := c.lines[datum]; ok {
		c.lru.MoveToFront(el)
	}
}

// insert adds the line, evicting the LRU line if at capacity.
// It returns the evicted key, if any.
func (c *cache) insert(datum string) (string, bool) {
	if el, ok := c.lines[datum]; ok {
		c.lru.MoveToFront(el)
		return "", false
	}
	delete(c.invalidated, datum)
	delete(c.evicted, datum)
	c.lines[datum] = c.lru.PushFront(datum)
	if c.capacity > 0 && c.lru.Len() > c.capacity {
		back := c.lru.Back()
		victim := back.Value.(string)
		c.lru.Remove(back)
		delete(c.lines, victim)
		c.evicted[victim] = true
		return victim, true
	}
	return "", false
}

// invalidate removes the line due to a remote write.
func (c *cache) invalidate(datum string) {
	if el, ok := c.lines[datum]; ok {
		c.lru.Remove(el)
		delete(c.lines, datum)
		c.invalidated[datum] = true
	}
}

func (c *cache) wasInvalidated(datum string) bool { return c.invalidated[datum] }
func (c *cache) wasEvicted(datum string) bool     { return c.evicted[datum] }

// size returns the number of resident lines.
func (c *cache) size() int { return c.lru.Len() }
