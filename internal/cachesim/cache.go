package cachesim

import "container/list"

// cache is one processor's cache: a set of datum IDs with optional LRU
// capacity. It remembers why absent lines left (invalidation vs eviction)
// so misses can be classified.
//
// The common configuration — the paper's infinite cache — needs no
// recency order, so presence is three bit vectors and an access touches no
// heap at all. Finite caches keep the classic intrusive-list LRU, keyed by
// datum ID instead of key string.
type cache struct {
	capacity int // 0 = infinite

	present     bitvec // infinite-cache residency
	invalidated bitvec
	evicted     bitvec

	lines map[int32]*list.Element // finite-cache residency
	lru   *list.List              // front = most recent; values are datum IDs
}

func newCache(capacity int) *cache {
	c := &cache{capacity: capacity}
	if capacity > 0 {
		c.lines = make(map[int32]*list.Element, capacity+1)
		c.lru = list.New()
	}
	return c
}

func (c *cache) has(id int32) bool {
	if c.capacity == 0 {
		return c.present.get(id)
	}
	_, ok := c.lines[id]
	return ok
}

// touch marks the line most-recently used (meaningful only under LRU).
func (c *cache) touch(id int32) {
	if c.capacity == 0 {
		return
	}
	if el, ok := c.lines[id]; ok {
		c.lru.MoveToFront(el)
	}
}

// insert adds the line, evicting the LRU line if at capacity.
// It returns the evicted ID, if any.
func (c *cache) insert(id int32) (int32, bool) {
	if c.capacity == 0 {
		c.present.set(id)
		c.invalidated.clear(id)
		c.evicted.clear(id)
		return 0, false
	}
	if el, ok := c.lines[id]; ok {
		c.lru.MoveToFront(el)
		return 0, false
	}
	c.invalidated.clear(id)
	c.evicted.clear(id)
	c.lines[id] = c.lru.PushFront(id)
	if c.lru.Len() > c.capacity {
		back := c.lru.Back()
		victim := back.Value.(int32)
		c.lru.Remove(back)
		delete(c.lines, victim)
		c.evicted.set(victim)
		return victim, true
	}
	return 0, false
}

// invalidate removes the line due to a remote write.
func (c *cache) invalidate(id int32) {
	if c.capacity == 0 {
		if c.present.get(id) {
			c.present.clear(id)
			c.invalidated.set(id)
		}
		return
	}
	if el, ok := c.lines[id]; ok {
		c.lru.Remove(el)
		delete(c.lines, id)
		c.invalidated.set(id)
	}
}

func (c *cache) wasInvalidated(id int32) bool { return c.invalidated.get(id) }
func (c *cache) wasEvicted(id int32) bool     { return c.evicted.get(id) }

// size returns the number of resident lines.
func (c *cache) size() int {
	if c.capacity == 0 {
		return c.present.countOnes()
	}
	return c.lru.Len()
}
