// Package layout assigns memory addresses to array elements so that cache
// lines longer than one element can be modeled. The paper assumes unit
// lines ("the effect of larger cache lines can be included as suggested in
// [6]"); this package supplies that extension: row-major linearization of
// each array into a flat address space, from which the simulator and the
// footprint models derive line-granular miss counts.
package layout

import (
	"fmt"
	"math"

	"looppart/internal/loopir"
)

// Layout is the dense row-major placement of one array.
type Layout struct {
	Name string
	Lo   []int64 // per-dimension lower bounds
	Hi   []int64 // per-dimension upper bounds (inclusive)
	Base int64   // address of the element at Lo

	strides []int64
	size    int64
}

// New builds a layout covering [lo, hi] anchored at base.
func New(name string, lo, hi []int64, base int64) (*Layout, error) {
	if len(lo) != len(hi) {
		return nil, fmt.Errorf("layout: rank mismatch for %s", name)
	}
	l := &Layout{Name: name, Lo: lo, Hi: hi, Base: base}
	l.strides = make([]int64, len(lo))
	size := int64(1)
	for k := len(lo) - 1; k >= 0; k-- {
		if hi[k] < lo[k] {
			return nil, fmt.Errorf("layout: empty dimension %d of %s", k, name)
		}
		l.strides[k] = size
		size *= hi[k] - lo[k] + 1
	}
	l.size = size
	return l, nil
}

// Size returns the number of elements.
func (l *Layout) Size() int64 { return l.size }

// AddrOf returns the address of an element. Indices must be in bounds.
func (l *Layout) AddrOf(idx []int64) (int64, error) {
	if len(idx) != len(l.Lo) {
		return 0, fmt.Errorf("layout: %s indexed with rank %d, want %d", l.Name, len(idx), len(l.Lo))
	}
	addr := l.Base
	for k := range idx {
		if idx[k] < l.Lo[k] || idx[k] > l.Hi[k] {
			return 0, fmt.Errorf("layout: %s%v out of bounds", l.Name, idx)
		}
		addr += (idx[k] - l.Lo[k]) * l.strides[k]
	}
	return addr, nil
}

// LineOf returns the cache-line number of an element for the given line
// size (in elements).
func (l *Layout) LineOf(idx []int64, lineSize int64) (int64, error) {
	addr, err := l.AddrOf(idx)
	if err != nil {
		return 0, err
	}
	return addr / lineSize, nil
}

// MemoryMap lays out every array of a nest in one flat address space, each
// array aligned to a line boundary so arrays never share lines.
type MemoryMap struct {
	Arrays map[string]*Layout
	// LineSize in elements; addresses are element-granular.
	LineSize int64
	total    int64
}

// MapNest sizes each array from the nest's references (interval analysis
// over the affine subscripts) and packs them line-aligned.
func MapNest(n *loopir.Nest, lineSize int64) (*MemoryMap, error) {
	if lineSize <= 0 {
		return nil, fmt.Errorf("layout: line size must be positive")
	}
	type ext struct{ lo, hi []int64 }
	exts := map[string]*ext{}
	var order []string
	loops := map[string]loopir.Loop{}
	for _, l := range n.Loops {
		loops[l.Var] = l
	}
	for _, acc := range n.Accesses() {
		r := acc.Ref
		e, ok := exts[r.Array]
		if !ok {
			e = &ext{lo: make([]int64, r.Dim()), hi: make([]int64, r.Dim())}
			for k := range e.lo {
				e.lo[k] = math.MaxInt64
				e.hi[k] = math.MinInt64
			}
			exts[r.Array] = e
			order = append(order, r.Array)
		}
		if len(e.lo) != r.Dim() {
			return nil, fmt.Errorf("layout: array %s used with ranks %d and %d", r.Array, len(e.lo), r.Dim())
		}
		for k, sub := range r.Subs {
			lo, hi := sub.Const, sub.Const
			for v, c := range sub.Coef {
				l, ok := loops[v]
				if !ok {
					return nil, fmt.Errorf("layout: unknown variable %q", v)
				}
				a, b := c*l.Lo, c*l.Hi
				if a > b {
					a, b = b, a
				}
				lo += a
				hi += b
			}
			if lo < e.lo[k] {
				e.lo[k] = lo
			}
			if hi > e.hi[k] {
				e.hi[k] = hi
			}
		}
	}
	m := &MemoryMap{Arrays: map[string]*Layout{}, LineSize: lineSize}
	base := int64(0)
	for _, name := range order {
		e := exts[name]
		l, err := New(name, e.lo, e.hi, base)
		if err != nil {
			return nil, err
		}
		m.Arrays[name] = l
		base += l.Size()
		// Align the next array to a line boundary.
		if rem := base % lineSize; rem != 0 {
			base += lineSize - rem
		}
	}
	m.total = base
	return m, nil
}

// TotalSize returns the extent of the packed address space.
func (m *MemoryMap) TotalSize() int64 { return m.total }

// AddrOf resolves an array element to its address.
func (m *MemoryMap) AddrOf(array string, idx []int64) (int64, error) {
	l, ok := m.Arrays[array]
	if !ok {
		return 0, fmt.Errorf("layout: unknown array %q", array)
	}
	return l.AddrOf(idx)
}

// LineOf resolves an array element to its cache line.
func (m *MemoryMap) LineOf(array string, idx []int64) (int64, error) {
	addr, err := m.AddrOf(array, idx)
	if err != nil {
		return 0, err
	}
	return addr / m.LineSize, nil
}
