package layout

import (
	"testing"

	"looppart/internal/loopir"
	"looppart/internal/paperex"
)

func TestLayoutAddrRowMajor(t *testing.T) {
	l, err := New("A", []int64{0, 0}, []int64{3, 4}, 100)
	if err != nil {
		t.Fatal(err)
	}
	if l.Size() != 20 {
		t.Fatalf("size = %d", l.Size())
	}
	a0, _ := l.AddrOf([]int64{0, 0})
	a1, _ := l.AddrOf([]int64{0, 1})
	a2, _ := l.AddrOf([]int64{1, 0})
	if a0 != 100 || a1 != 101 || a2 != 105 {
		t.Fatalf("addrs = %d %d %d", a0, a1, a2)
	}
	last, _ := l.AddrOf([]int64{3, 4})
	if last != 119 {
		t.Fatalf("last = %d", last)
	}
}

func TestLayoutNegativeLowerBounds(t *testing.T) {
	l, err := New("B", []int64{-2, -3}, []int64{2, 3}, 0)
	if err != nil {
		t.Fatal(err)
	}
	a, err := l.AddrOf([]int64{-2, -3})
	if err != nil || a != 0 {
		t.Fatalf("corner addr = %d err=%v", a, err)
	}
}

func TestLayoutErrors(t *testing.T) {
	if _, err := New("A", []int64{0}, []int64{1, 2}, 0); err == nil {
		t.Error("rank mismatch accepted")
	}
	if _, err := New("A", []int64{5}, []int64{2}, 0); err == nil {
		t.Error("empty dim accepted")
	}
	l, _ := New("A", []int64{0}, []int64{3}, 0)
	if _, err := l.AddrOf([]int64{4}); err == nil {
		t.Error("out of bounds accepted")
	}
	if _, err := l.AddrOf([]int64{0, 0}); err == nil {
		t.Error("wrong rank accepted")
	}
}

func TestLineOf(t *testing.T) {
	l, _ := New("A", []int64{0}, []int64{15}, 0)
	for i := int64(0); i < 16; i++ {
		line, err := l.LineOf([]int64{i}, 4)
		if err != nil {
			t.Fatal(err)
		}
		if line != i/4 {
			t.Fatalf("LineOf(%d) = %d", i, line)
		}
	}
}

func TestMapNest(t *testing.T) {
	n := loopir.MustParse(paperex.Example2, nil)
	mm, err := MapNest(n, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(mm.Arrays) != 2 {
		t.Fatalf("arrays = %d", len(mm.Arrays))
	}
	// Arrays are line-aligned and non-overlapping.
	a, b := mm.Arrays["A"], mm.Arrays["B"]
	if a == nil || b == nil {
		t.Fatal("missing arrays")
	}
	first, second := a, b
	if b.Base < a.Base {
		first, second = b, a
	}
	if second.Base < first.Base+first.Size() {
		t.Fatal("arrays overlap")
	}
	if second.Base%8 != 0 {
		t.Fatalf("second array not line-aligned: base %d", second.Base)
	}
	if mm.TotalSize() < first.Size()+second.Size() {
		t.Fatalf("total %d too small", mm.TotalSize())
	}
	// Distinct elements of distinct arrays never share a line.
	la, err := mm.LineOf("A", []int64{101, 1})
	if err != nil {
		t.Fatal(err)
	}
	lb, err := mm.LineOf("B", []int64{102, 0})
	if err != nil {
		t.Fatal(err)
	}
	if la == lb {
		t.Fatal("cross-array line sharing")
	}
}

func TestMapNestBadLineSize(t *testing.T) {
	n := loopir.MustParse(`doall (i, 1, 4) A[i] = 0 enddoall`, nil)
	if _, err := MapNest(n, 0); err == nil {
		t.Fatal("line size 0 accepted")
	}
}

func TestMapNestRankConflict(t *testing.T) {
	n := loopir.MustParse(`doall (i, 1, 4) A[i] = A[i,i] enddoall`, nil)
	if _, err := MapNest(n, 4); err == nil {
		t.Fatal("rank conflict accepted")
	}
}

func TestMemoryMapUnknownArray(t *testing.T) {
	n := loopir.MustParse(`doall (i, 1, 4) A[i] = 0 enddoall`, nil)
	mm, err := MapNest(n, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mm.AddrOf("Z", []int64{1}); err == nil {
		t.Fatal("unknown array accepted")
	}
}

func BenchmarkAddrOf(b *testing.B) {
	l, _ := New("A", []int64{0, 0, 0}, []int64{63, 63, 63}, 0)
	idx := []int64{10, 20, 30}
	for i := 0; i < b.N; i++ {
		_, _ = l.AddrOf(idx)
	}
}
