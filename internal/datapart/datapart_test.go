package datapart

import (
	"testing"

	"looppart/internal/cachesim"
	"looppart/internal/footprint"
	"looppart/internal/loopir"
	"looppart/internal/machine"
	"looppart/internal/paperex"
	"looppart/internal/tile"
)

func setup(t testing.TB, src string, params map[string]int64, ext []int64, procs int) (*footprint.Analysis, *tile.Assignment) {
	t.Helper()
	n, err := loopir.Parse(src, params)
	if err != nil {
		t.Fatal(err)
	}
	a, err := footprint.Analyze(n)
	if err != nil {
		t.Fatal(err)
	}
	space := tile.BoundsOf(n)
	tl, err := tile.RectTilingFor(space, ext)
	if err != nil {
		t.Fatal(err)
	}
	assign, err := tile.Assign(tl, space, procs)
	if err != nil {
		t.Fatal(err)
	}
	return a, assign
}

func TestAlignedPlacementIdentityClass(t *testing.T) {
	// Simple stencil: A[i,j] written, B neighbors read. Aligned placement
	// must home A[i,j] and B[i,j] on the processor executing (i,j).
	src := `
doall (i, 1, 16)
  doall (j, 1, 16)
    A[i,j] = B[i-1,j] + B[i+1,j]
  enddoall
enddoall`
	a, assign := setup(t, src, nil, []int64{8, 8}, 4)
	al, err := NewAligner(a, assign, machine.RoundRobin(4))
	if err != nil {
		t.Fatal(err)
	}
	place := al.Placement()
	for _, p := range [][]int64{{1, 1}, {8, 8}, {9, 1}, {16, 16}} {
		want := assign.ProcOf(p)
		if got := place("A", p); got != want {
			t.Errorf("A%v homed on %d, want %d", p, got, want)
		}
	}
	// B's anchor is the median of offsets (−1,0),(1,0) → (1,0): datum
	// B[i+1,j] lands with iteration (i,j).
	if got, want := place("B", []int64{9, 4}), assign.ProcOf([]int64{8, 4}); got != want {
		t.Errorf("B[9,4] homed on %d, want %d", got, want)
	}
}

func TestAlignedBeatsRoundRobinLocally(t *testing.T) {
	// E12's claim: aligned data tiles give a (much) higher local-miss
	// fraction than hashed placement on the mesh.
	src := `
doall (i, 1, 32)
  doall (j, 1, 32)
    A[i,j] = B[i-1,j] + B[i+1,j] + B[i,j-1] + B[i,j+1]
  enddoall
enddoall`
	run := func(place machine.Placement) cachesim.Metrics {
		a, assign := setup(t, src, nil, []int64{16, 16}, 4)
		mesh, err := machine.SquarishMesh(4)
		if err != nil {
			t.Fatal(err)
		}
		cost := machine.DefaultCostModel()
		cfg := cachesim.DefaultConfig(4)
		cfg.MissCost = func(proc int, datum string, atomic bool) (float64, int64) {
			arr, idx := parseDatum(t, datum)
			return cost.MissCost(mesh, proc, place(arr, idx), atomic)
		}
		m, err := cachesim.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := cachesim.RunNest(m, a.Nest, assign.ProcOf); err != nil {
			t.Fatal(err)
		}
		return m.Finish()
	}

	a, assign := setup(t, src, nil, []int64{16, 16}, 4)
	al, err := NewAligner(a, assign, machine.RoundRobin(4))
	if err != nil {
		t.Fatal(err)
	}
	aligned := run(al.Placement())
	hashed := run(machine.RoundRobin(4))

	fa := LocalFraction(aligned.LocalMisses, aligned.RemoteMisses)
	fh := LocalFraction(hashed.LocalMisses, hashed.RemoteMisses)
	if fa <= fh {
		t.Fatalf("aligned local fraction %.2f not above hashed %.2f", fa, fh)
	}
	if fa < 0.9 {
		t.Fatalf("aligned local fraction %.2f; expected ≥ 0.9 for interior-dominated tiles", fa)
	}
	if aligned.Cost >= hashed.Cost {
		t.Fatalf("aligned cost %v not below hashed %v", aligned.Cost, hashed.Cost)
	}
}

func TestAlignerFallbackForNonInvertible(t *testing.T) {
	// A[i+j] has no square reduced G → falls back to the provided
	// placement.
	src := `
doall (i, 1, 8)
  doall (j, 1, 8)
    B[i,j] = A[i+j]
  enddoall
enddoall`
	a, assign := setup(t, src, nil, []int64{4, 4}, 4)
	fallbackHits := 0
	fallback := func(arr string, idx []int64) int {
		fallbackHits++
		return 0
	}
	al, err := NewAligner(a, assign, fallback)
	if err != nil {
		t.Fatal(err)
	}
	place := al.Placement()
	_ = place("A", []int64{5})
	if fallbackHits != 1 {
		t.Fatalf("fallback used %d times, want 1", fallbackHits)
	}
	// B is invertible (identity): no fallback.
	_ = place("B", []int64{3, 3})
	if fallbackHits != 1 {
		t.Fatal("B should not use fallback")
	}
}

func TestNewAlignerNilFallback(t *testing.T) {
	a, assign := setup(t, paperex.Example2, nil, []int64{100, 1}, 100)
	if _, err := NewAligner(a, assign, nil); err == nil {
		t.Fatal("nil fallback accepted")
	}
}

func TestMedianAnchorExample8(t *testing.T) {
	// B offsets: (−1,0,1), (0,1,0), (1,−2,−3): medians (0,0,0).
	a, assign := setup(t, paperex.Example8, map[string]int64{"N": 8}, []int64{4, 4, 4}, 8)
	al, err := NewAligner(a, assign, machine.RoundRobin(8))
	if err != nil {
		t.Fatal(err)
	}
	place := al.Placement()
	// With zero anchor, B[i,j,k] lives with iteration (i,j,k).
	if got, want := place("B", []int64{3, 3, 3}), assign.ProcOf([]int64{3, 3, 3}); got != want {
		t.Errorf("B[3,3,3] on %d, want %d", got, want)
	}
}

func TestLocalFraction(t *testing.T) {
	if LocalFraction(3, 1) != 0.75 {
		t.Fatal("fraction wrong")
	}
	if LocalFraction(0, 0) != 1 {
		t.Fatal("empty fraction should be 1")
	}
}

// parseDatum decodes cachesim.DatumKey("A", idx) back into parts.
func parseDatum(t testing.TB, datum string) (string, []int64) {
	t.Helper()
	open := -1
	for i, r := range datum {
		if r == '[' {
			open = i
			break
		}
	}
	if open < 0 || datum[len(datum)-1] != ']' {
		t.Fatalf("bad datum %q", datum)
	}
	name := datum[:open]
	var idx []int64
	v, sign, started := int64(0), int64(1), false
	for _, r := range datum[open+1 : len(datum)-1] {
		switch {
		case r == ',':
			idx = append(idx, sign*v)
			v, sign, started = 0, 1, false
		case r == '-':
			sign = -1
		default:
			v = v*10 + int64(r-'0')
			started = true
		}
	}
	if started || len(idx) == 0 {
		idx = append(idx, sign*v)
	}
	return name, idx
}

func BenchmarkAlignedPlacement(b *testing.B) {
	a, assign := setup(b, paperex.Example8, map[string]int64{"N": 16}, []int64{8, 8, 8}, 8)
	al, err := NewAligner(a, assign, machine.RoundRobin(8))
	if err != nil {
		b.Fatal(err)
	}
	place := al.Placement()
	idx := []int64{5, 6, 7}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = place("B", idx)
	}
}
