// Package datapart implements data partitioning and alignment (§4,
// footnote 2): distributing array tiles across the memory modules of a
// distributed-memory machine so that cache misses from each loop tile are
// served by the local module.
//
// The strategy is the paper's: partition each array with the same aspect
// ratios as the loop tiles of the nests that reference it, then align —
// assign the data tile to the node running the loop tile that makes the
// most references to it. For a class (G, {a_r}) the loop tile containing
// iteration i touches data i·G + a_r; anchoring at the median offset ā
// (the a⁺ formulation) sends datum d to the processor of the iteration
// solving i·G = d − ā.
package datapart

import (
	"fmt"
	"sort"

	"looppart/internal/footprint"
	"looppart/internal/intmat"
	"looppart/internal/machine"
	"looppart/internal/rational"
	"looppart/internal/tile"
)

// Aligner computes aligned placements for the arrays of an analysis.
type Aligner struct {
	analysis *footprint.Analysis
	assign   *tile.Assignment
	// perArray maps array name → alignment data.
	perArray map[string]*arrayAlign
}

type arrayAlign struct {
	// ginv is the rational inverse of the reduced G of the array's
	// dominant class.
	ginv intmat.RatMat
	cols []int
	// anchor is the median offset vector projected to the kept columns.
	anchor []int64
	// fallback placement for arrays with no invertible class.
	fallback machine.Placement
}

// NewAligner builds the aligned placement for the given loop-tile
// assignment. Arrays whose reference classes have no square reduced G fall
// back to the provided placement (typically RoundRobin).
func NewAligner(a *footprint.Analysis, assign *tile.Assignment, fallback machine.Placement) (*Aligner, error) {
	if fallback == nil {
		return nil, fmt.Errorf("datapart: nil fallback placement")
	}
	al := &Aligner{analysis: a, assign: assign, perArray: map[string]*arrayAlign{}}
	// Choose, per array, the class with the most references (dominant
	// use) whose reduced G is square and nonsingular.
	best := map[string]footprint.Class{}
	for _, c := range a.Classes {
		gr := c.Reduced.G
		if gr.Rows() != gr.Cols() || !gr.IsNonsingular() {
			continue
		}
		if cur, ok := best[c.Array]; !ok || len(c.Refs) > len(cur.Refs) {
			best[c.Array] = c
		}
	}
	for name, c := range best {
		inv, ok := c.Reduced.G.ToRat().Inverse()
		if !ok {
			continue
		}
		al.perArray[name] = &arrayAlign{
			ginv:     inv,
			cols:     c.Reduced.Cols,
			anchor:   medianOffsets(c),
			fallback: fallback,
		}
	}
	for _, name := range a.Nest.Arrays() {
		if _, ok := al.perArray[name]; !ok {
			al.perArray[name] = &arrayAlign{fallback: fallback}
		}
	}
	return al, nil
}

// medianOffsets returns the per-kept-column median of the class offsets —
// the a⁺ anchor of footnote 2.
func medianOffsets(c footprint.Class) []int64 {
	out := make([]int64, len(c.Reduced.Cols))
	for k, col := range c.Reduced.Cols {
		vals := make([]int64, len(c.Refs))
		for i, r := range c.Refs {
			vals[i] = r.A[col]
		}
		sort.Slice(vals, func(a, b int) bool { return vals[a] < vals[b] })
		out[k] = vals[len(vals)/2]
	}
	return out
}

// Placement returns the aligned placement function.
func (al *Aligner) Placement() machine.Placement {
	return func(array string, index []int64) int {
		aa, ok := al.perArray[array]
		if !ok || aa.ginv.Rows() == 0 {
			if aa != nil {
				return aa.fallback(array, index)
			}
			return 0
		}
		// Project the datum to the kept columns and solve i·G' = d − ā.
		l := aa.ginv.Rows()
		rel := make([]rational.Rat, l)
		for k, col := range aa.cols {
			rel[k] = rational.FromInt(index[col] - aa.anchor[k])
		}
		iter := make([]int64, l)
		for j := 0; j < l; j++ {
			s := rational.Zero
			for k := 0; k < l; k++ {
				s = s.Add(rel[k].Mul(aa.ginv.At(k, j)))
			}
			iter[j] = s.Floor()
		}
		// Clamp into the iteration space and hand to the loop-tile
		// assignment: the datum lives with the tile that (mostly) uses it.
		space := al.assign.Space
		for k := range iter {
			if iter[k] < space.Lo[k] {
				iter[k] = space.Lo[k]
			}
			if iter[k] > space.Hi[k] {
				iter[k] = space.Hi[k]
			}
		}
		return al.assign.ProcOf(iter)
	}
}

// LocalFraction is a reporting helper: the fraction of misses served
// locally.
func LocalFraction(local, remote int64) float64 {
	total := local + remote
	if total == 0 {
		return 1
	}
	return float64(local) / float64(total)
}
