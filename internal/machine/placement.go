package machine

import (
	"fmt"
)

// Placement of virtual processors onto mesh nodes — the third analysis of
// §4. Loop and data partitioning assign work and arrays to *virtual*
// processors; the physical mapping decides how many mesh hops each
// tile-boundary communication costs. The paper calls this "a smaller
// effect that may become important in very large machines"; GridPlacement
// quantifies it.

// GridPlacement maps a g₁×g₂×…-dimensional virtual processor grid onto a
// 2-D mesh so that virtually adjacent processors (neighboring tiles, which
// exchange halo data) land on nearby nodes. Each grid axis k is split as
// gₖ = pₖ·qₖ; the p-parts form the mesh x coordinate and the q-parts the
// y coordinate (a block decomposition: a step of 1 along a virtual axis
// moves one mesh hop except at a block boundary).
type GridPlacement struct {
	Grid []int64 // virtual grid dimensions; Π Grid = mesh nodes
	Mesh Mesh
	p, q []int64 // per-axis splits, Πp = mesh.W, Πq = mesh.H
}

// NewGridPlacement finds per-axis splits matching the mesh exactly,
// preferring splits that keep whole axes together (fewer cut axes). It
// returns an error when the grid size differs from the node count or no
// factorization fits (then LinearPlacement is the fallback).
func NewGridPlacement(grid []int64, mesh Mesh) (*GridPlacement, error) {
	total := int64(1)
	for _, g := range grid {
		if g <= 0 {
			return nil, fmt.Errorf("machine: bad grid dimension %d", g)
		}
		total *= g
	}
	if total != int64(mesh.Nodes()) {
		return nil, fmt.Errorf("machine: grid %v has %d processors for a %d-node mesh", grid, total, mesh.Nodes())
	}
	var best *GridPlacement
	bestCuts := len(grid) + 1
	var rec func(k int, xLeft int64, p, q []int64, cuts int)
	rec = func(k int, xLeft int64, p, q []int64, cuts int) {
		if cuts >= bestCuts {
			return
		}
		if k == len(grid) {
			if xLeft == 1 {
				gp := &GridPlacement{Grid: grid, Mesh: mesh,
					p: append([]int64(nil), p...), q: append([]int64(nil), q...)}
				best, bestCuts = gp, cuts
			}
			return
		}
		g := grid[k]
		for pk := int64(1); pk <= g; pk++ {
			if g%pk != 0 || xLeft%pk != 0 {
				continue
			}
			cut := 0
			if pk != 1 && pk != g {
				cut = 1
			}
			rec(k+1, xLeft/pk, append(p, pk), append(q, g/pk), cuts+cut)
		}
	}
	rec(0, int64(mesh.W), nil, nil, 0)
	if best == nil {
		return nil, fmt.Errorf("machine: no per-axis split of grid %v matches a %dx%d mesh", grid, mesh.W, mesh.H)
	}
	// Validate the y capacity (implied: Πq = total / Πp = H).
	qProd := int64(1)
	for _, v := range best.q {
		qProd *= v
	}
	if qProd != int64(mesh.H) {
		return nil, fmt.Errorf("machine: internal split mismatch for grid %v", grid)
	}
	return best, nil
}

// NodeOf maps a virtual processor id (row-major in the grid) to its node.
func (g *GridPlacement) NodeOf(virtual int) int {
	coords := make([]int64, len(g.Grid))
	v := int64(virtual)
	for k := len(g.Grid) - 1; k >= 0; k-- {
		coords[k] = v % g.Grid[k]
		v /= g.Grid[k]
	}
	x, y := int64(0), int64(0)
	for k := range g.Grid {
		// coords[k] = α·q[k] + β with α ∈ [0,p[k]), β ∈ [0,q[k]).
		alpha := coords[k] / g.q[k]
		beta := coords[k] % g.q[k]
		x = x*g.p[k] + alpha
		y = y*g.q[k] + beta
	}
	return int(y)*g.Mesh.W + int(x)
}

// LinearPlacement is the naive fallback: virtual processor v on node v.
func LinearPlacement(mesh Mesh) VirtualToPhysical {
	return func(v int) int { return v % mesh.Nodes() }
}

// NeighborHopCost sums the mesh distance over all pairs of virtually
// adjacent processors under the mapping — the cost model for
// tile-boundary (halo) communication, where each neighboring tile pair
// exchanges data every epoch.
func NeighborHopCost(grid []int64, mapping VirtualToPhysical, mesh Mesh) int64 {
	total := int64(1)
	for _, g := range grid {
		total *= g
	}
	coords := make([]int64, len(grid))
	var sum int64
	for v := int64(0); v < total; v++ {
		x := v
		for k := len(grid) - 1; k >= 0; k-- {
			coords[k] = x % grid[k]
			x /= grid[k]
		}
		// For each +1 neighbor along each axis.
		for k := range grid {
			if coords[k]+1 >= grid[k] {
				continue
			}
			stride := int64(1)
			for j := k + 1; j < len(grid); j++ {
				stride *= grid[j]
			}
			n := v + stride
			sum += int64(mesh.Hops(mapping(int(v)), mapping(int(n))))
		}
	}
	return sum
}
