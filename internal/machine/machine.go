// Package machine models the Alewife-class target of §4: a shared global
// address space with physically distributed memory, processors at the
// nodes of a 2-D mesh, and memory access time that grows with the mesh
// distance between the requesting node and the data's home node. It
// supplies the placement layer (the third analysis of §4) on top of the
// cachesim coherence model.
package machine

import (
	"fmt"
	"math"
)

// Mesh is a W×H grid of nodes numbered row-major: node = y*W + x.
type Mesh struct {
	W, H int
}

// NewMesh validates and builds a mesh.
func NewMesh(w, h int) (Mesh, error) {
	if w <= 0 || h <= 0 {
		return Mesh{}, fmt.Errorf("machine: bad mesh %dx%d", w, h)
	}
	return Mesh{W: w, H: h}, nil
}

// SquarishMesh returns the most square mesh with exactly n nodes.
func SquarishMesh(n int) (Mesh, error) {
	if n <= 0 {
		return Mesh{}, fmt.Errorf("machine: need at least one node")
	}
	best := Mesh{W: n, H: 1}
	for w := 1; w <= n; w++ {
		if n%w != 0 {
			continue
		}
		h := n / w
		if abs(w-h) < abs(best.W-best.H) {
			best = Mesh{W: w, H: h}
		}
	}
	return best, nil
}

// Nodes returns the node count.
func (m Mesh) Nodes() int { return m.W * m.H }

// Coord returns the (x, y) position of a node.
func (m Mesh) Coord(node int) (int, int) {
	return node % m.W, node / m.W
}

// Hops returns the Manhattan distance between two nodes (the mesh routing
// distance).
func (m Mesh) Hops(a, b int) int {
	ax, ay := m.Coord(a)
	bx, by := m.Coord(b)
	return abs(ax-bx) + abs(ay-by)
}

// MaxHops returns the mesh diameter.
func (m Mesh) MaxHops() int { return (m.W - 1) + (m.H - 1) }

func abs(a int) int {
	if a < 0 {
		return -a
	}
	return a
}

// CostModel prices one memory access on the mesh.
type CostModel struct {
	CacheHit    float64 // cost of a cache hit
	LocalMem    float64 // miss served by the local memory module
	RemoteBase  float64 // fixed remote-access overhead
	PerHop      float64 // added cost per mesh hop
	AtomicExtra float64 // surcharge for synchronizing references
}

// DefaultCostModel follows the paper's qualitative ordering: cache ≪ local
// memory < remote memory, with distance a smaller second-order effect
// ("Placement … is a smaller effect that may become important in very
// large machines").
func DefaultCostModel() CostModel {
	return CostModel{CacheHit: 1, LocalMem: 15, RemoteBase: 30, PerHop: 2, AtomicExtra: 10}
}

// MissCost prices a miss by proc on a datum homed at home.
func (c CostModel) MissCost(m Mesh, proc, home int, atomic bool) (float64, int64) {
	extra := 0.0
	if atomic {
		extra = c.AtomicExtra
	}
	if proc == home {
		return c.LocalMem + extra, 0
	}
	hops := m.Hops(proc, home)
	return c.RemoteBase + float64(hops)*c.PerHop + extra, int64(hops)
}

// Placement maps a datum to its home node.
type Placement func(array string, index []int64) int

// RoundRobin places elements across nodes by a hash of their flattened
// index — the "no locality" baseline.
func RoundRobin(nodes int) Placement {
	return func(array string, index []int64) int {
		// FNV-1a over the bytes of the name and each index word.
		h := uint64(14695981039346656037)
		for i := 0; i < len(array); i++ {
			h = (h ^ uint64(array[i])) * 1099511628211
		}
		for _, v := range index {
			u := uint64(v)
			for s := 0; s < 64; s += 8 {
				h = (h ^ (u >> s & 0xff)) * 1099511628211
			}
		}
		return int(h % uint64(nodes))
	}
}

// BlockRows places contiguous blocks of the first index dimension on
// consecutive nodes (a typical default layout).
func BlockRows(lo, hi int64, nodes int) Placement {
	span := hi - lo + 1
	block := (span + int64(nodes) - 1) / int64(nodes)
	return func(array string, index []int64) int {
		if len(index) == 0 {
			return 0
		}
		v := index[0] - lo
		if v < 0 {
			v = 0
		}
		n := int(v / block)
		if n >= nodes {
			n = nodes - 1
		}
		return n
	}
}

// VirtualToPhysical maps the virtual processor numbering of a loop
// partition onto mesh nodes; GridPlacement (placement.go) builds
// locality-preserving mappings and LinearPlacement the naive fallback.
type VirtualToPhysical func(virtual int) int

// IdentityMap is the trivial placement of virtual processors.
func IdentityMap() VirtualToPhysical { return func(v int) int { return v } }

// MeanAccessCost is a convenience for reporting: the cost metric divided
// by accesses.
func MeanAccessCost(cost float64, accesses int64) float64 {
	if accesses == 0 {
		return math.NaN()
	}
	return cost / float64(accesses)
}
