package machine

import (
	"testing"
	"testing/quick"
)

func TestMeshBasics(t *testing.T) {
	m, err := NewMesh(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if m.Nodes() != 8 {
		t.Fatalf("nodes = %d", m.Nodes())
	}
	x, y := m.Coord(5)
	if x != 1 || y != 1 {
		t.Fatalf("coord(5) = (%d,%d)", x, y)
	}
	if got := m.Hops(0, 5); got != 2 {
		t.Fatalf("hops(0,5) = %d", got)
	}
	if got := m.Hops(3, 3); got != 0 {
		t.Fatalf("hops(3,3) = %d", got)
	}
	if got := m.MaxHops(); got != 4 {
		t.Fatalf("diameter = %d", got)
	}
}

func TestNewMeshErrors(t *testing.T) {
	if _, err := NewMesh(0, 4); err == nil {
		t.Error("0-width mesh accepted")
	}
	if _, err := SquarishMesh(0); err == nil {
		t.Error("0-node mesh accepted")
	}
}

func TestSquarishMesh(t *testing.T) {
	cases := []struct{ n, w, h int }{
		{16, 4, 4}, {8, 2, 4}, {7, 1, 7}, {12, 3, 4}, {1, 1, 1},
	}
	for _, c := range cases {
		m, err := SquarishMesh(c.n)
		if err != nil {
			t.Fatal(err)
		}
		if m.Nodes() != c.n {
			t.Errorf("SquarishMesh(%d) has %d nodes", c.n, m.Nodes())
		}
		if abs(m.W-m.H) > abs(c.w-c.h) {
			t.Errorf("SquarishMesh(%d) = %dx%d, expected as square as %dx%d", c.n, m.W, m.H, c.w, c.h)
		}
	}
}

func TestPropHopsMetric(t *testing.T) {
	m, _ := NewMesh(5, 5)
	f := func(a, b, c uint8) bool {
		na, nb, nc := int(a)%25, int(b)%25, int(c)%25
		// Symmetry, identity, triangle inequality.
		if m.Hops(na, nb) != m.Hops(nb, na) {
			return false
		}
		if m.Hops(na, na) != 0 {
			return false
		}
		return m.Hops(na, nc) <= m.Hops(na, nb)+m.Hops(nb, nc)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMissCost(t *testing.T) {
	m, _ := NewMesh(4, 4)
	cm := DefaultCostModel()
	localCost, hops := cm.MissCost(m, 3, 3, false)
	if hops != 0 || localCost != cm.LocalMem {
		t.Fatalf("local = %v hops %d", localCost, hops)
	}
	remoteCost, hops := cm.MissCost(m, 0, 15, false)
	if hops != 6 {
		t.Fatalf("hops = %d", hops)
	}
	if remoteCost != cm.RemoteBase+6*cm.PerHop {
		t.Fatalf("remote = %v", remoteCost)
	}
	atomicCost, _ := cm.MissCost(m, 0, 15, true)
	if atomicCost <= remoteCost {
		t.Fatal("atomic surcharge missing")
	}
	if localCost >= remoteCost {
		t.Fatal("remote must cost more than local")
	}
}

func TestRoundRobinPlacementCoversNodes(t *testing.T) {
	p := RoundRobin(8)
	seen := map[int]bool{}
	for i := int64(0); i < 1024; i++ {
		n := p("A", []int64{i, i * 3})
		if n < 0 || n >= 8 {
			t.Fatalf("node %d out of range", n)
		}
		seen[n] = true
	}
	if len(seen) != 8 {
		t.Fatalf("only %d of 8 nodes used", len(seen))
	}
	// Deterministic.
	if p("A", []int64{5, 15}) != p("A", []int64{5, 15}) {
		t.Fatal("placement not deterministic")
	}
	// Array name matters.
	diff := false
	for i := int64(0); i < 64; i++ {
		if p("A", []int64{i}) != p("B", []int64{i}) {
			diff = true
			break
		}
	}
	if !diff {
		t.Error("array name ignored by hash placement")
	}
}

func TestBlockRowsPlacement(t *testing.T) {
	p := BlockRows(1, 100, 4)
	if p("A", []int64{1, 50}) != 0 {
		t.Error("first block wrong")
	}
	if p("A", []int64{100, 1}) != 3 {
		t.Error("last block wrong")
	}
	if p("A", []int64{26, 1}) != 1 {
		t.Error("second block wrong")
	}
	// Out-of-range clamps.
	if n := p("A", []int64{1000}); n != 3 {
		t.Errorf("clamp high = %d", n)
	}
	if n := p("A", []int64{-5}); n != 0 {
		t.Errorf("clamp low = %d", n)
	}
}

func TestVirtualToPhysical(t *testing.T) {
	m, _ := NewMesh(4, 4)
	id := IdentityMap()
	if id(7) != 7 {
		t.Fatal("identity broken")
	}
	lp := LinearPlacement(m)
	for v := 0; v < 32; v++ {
		if n := lp(v); n < 0 || n >= 16 {
			t.Fatalf("linear(%d) = %d", v, n)
		}
	}
}

func TestMeanAccessCost(t *testing.T) {
	if MeanAccessCost(100, 50) != 2 {
		t.Fatal("mean wrong")
	}
	if v := MeanAccessCost(100, 0); v == v { // NaN check
		t.Fatal("expected NaN for zero accesses")
	}
}

func BenchmarkHops(b *testing.B) {
	m, _ := NewMesh(16, 16)
	for i := 0; i < b.N; i++ {
		_ = m.Hops(i%256, (i*7)%256)
	}
}

// TestSquarishMeshPrimes: a prime node count has no nontrivial
// factorization, so the best mesh is a 1×p (or p×1) chain.
func TestSquarishMeshPrimes(t *testing.T) {
	for _, p := range []int{2, 3, 5, 7, 13, 31, 97} {
		m, err := SquarishMesh(p)
		if err != nil {
			t.Fatal(err)
		}
		if m.Nodes() != p {
			t.Errorf("SquarishMesh(%d) has %d nodes", p, m.Nodes())
		}
		if min(m.W, m.H) != 1 {
			t.Errorf("SquarishMesh(%d) = %dx%d, want a 1-wide chain", p, m.W, m.H)
		}
		// A chain's diameter is p-1 hops.
		if got := m.Hops(0, p-1); got != p-1 {
			t.Errorf("SquarishMesh(%d).Hops(0,%d) = %d, want %d", p, p-1, got, p-1)
		}
	}
}

// TestSquarishMeshPerfectSquares: a perfect square must come out exactly
// square — the factorization that minimizes the mesh diameter.
func TestSquarishMeshPerfectSquares(t *testing.T) {
	for _, r := range []int{1, 2, 3, 4, 7, 8, 10, 16} {
		n := r * r
		m, err := SquarishMesh(n)
		if err != nil {
			t.Fatal(err)
		}
		if m.W != r || m.H != r {
			t.Errorf("SquarishMesh(%d) = %dx%d, want %dx%d", n, m.W, m.H, r, r)
		}
		// Opposite corners are 2(r-1) hops apart.
		if got := m.Hops(0, n-1); got != 2*(r-1) {
			t.Errorf("SquarishMesh(%d).Hops(0,%d) = %d, want %d", n, n-1, got, 2*(r-1))
		}
	}
}
