package machine

import (
	"testing"
)

func TestGridPlacementMatchedGrid(t *testing.T) {
	mesh, _ := NewMesh(4, 4)
	gp, err := NewGridPlacement([]int64{4, 4}, mesh)
	if err != nil {
		t.Fatal(err)
	}
	// Virtual (r, c) row-major; with split=1, x = first axis? Verify the
	// mapping is a bijection and neighbor-preserving.
	seen := map[int]bool{}
	for v := 0; v < 16; v++ {
		n := gp.NodeOf(v)
		if n < 0 || n >= 16 {
			t.Fatalf("NodeOf(%d) = %d", v, n)
		}
		if seen[n] {
			t.Fatalf("node %d assigned twice", n)
		}
		seen[n] = true
	}
	// Virtually adjacent processors are physically adjacent.
	cost := NeighborHopCost([]int64{4, 4}, gp.NodeOf, mesh)
	pairs := int64(4*3 + 4*3) // 24 adjacent pairs
	if cost != pairs {
		t.Fatalf("matched grid neighbor cost = %d, want %d (all unit hops)", cost, pairs)
	}
}

func TestGridPlacementBeatsLinear(t *testing.T) {
	// An 8×2 virtual grid on a 4×4 mesh: the linear fold wraps rows and
	// pays long hops; the factored placement keeps neighbors close.
	mesh, _ := NewMesh(4, 4)
	grid := []int64{8, 2}
	gp, err := NewGridPlacement(grid, mesh)
	if err != nil {
		t.Fatal(err)
	}
	gridCost := NeighborHopCost(grid, gp.NodeOf, mesh)
	linCost := NeighborHopCost(grid, LinearPlacement(mesh), mesh)
	if gridCost >= linCost {
		t.Fatalf("grid placement %d not below linear %d", gridCost, linCost)
	}
}

func TestGridPlacement3D(t *testing.T) {
	// 2×2×4 virtual grid on a 4×4 mesh: split after two axes.
	mesh, _ := NewMesh(4, 4)
	gp, err := NewGridPlacement([]int64{2, 2, 4}, mesh)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for v := 0; v < 16; v++ {
		n := gp.NodeOf(v)
		if seen[n] {
			t.Fatalf("node %d reused", n)
		}
		seen[n] = true
	}
}

func TestGridPlacementErrors(t *testing.T) {
	mesh, _ := NewMesh(4, 4)
	if _, err := NewGridPlacement([]int64{3, 5}, mesh); err == nil {
		t.Error("15 processors on 16 nodes accepted")
	}
	if _, err := NewGridPlacement([]int64{0, 16}, mesh); err == nil {
		t.Error("zero dimension accepted")
	}
	// Per-axis splitting handles (2,8): p=(2,2), q=(1,4).
	gp, err := NewGridPlacement([]int64{2, 8}, mesh)
	if err != nil {
		t.Fatalf("(2,8) should split across a 4x4 mesh: %v", err)
	}
	seen := map[int]bool{}
	for v := 0; v < 16; v++ {
		n := gp.NodeOf(v)
		if seen[n] {
			t.Fatalf("node %d reused", n)
		}
		seen[n] = true
	}
}

func TestLinearPlacementWraps(t *testing.T) {
	mesh, _ := NewMesh(2, 2)
	lp := LinearPlacement(mesh)
	if lp(5) != 1 {
		t.Fatalf("lp(5) = %d", lp(5))
	}
}

func TestNeighborHopCostIdentityLowerBound(t *testing.T) {
	// Any mapping pays at least one hop per virtually adjacent pair on
	// distinct nodes.
	mesh, _ := NewMesh(4, 2)
	grid := []int64{4, 2}
	gp, err := NewGridPlacement(grid, mesh)
	if err != nil {
		t.Fatal(err)
	}
	pairs := int64(3*2 + 4*1)
	if got := NeighborHopCost(grid, gp.NodeOf, mesh); got < pairs {
		t.Fatalf("cost %d below pair count %d", got, pairs)
	}
}

func BenchmarkNeighborHopCost(b *testing.B) {
	mesh, _ := NewMesh(8, 8)
	gp, err := NewGridPlacement([]int64{8, 8}, mesh)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		_ = NeighborHopCost([]int64{8, 8}, gp.NodeOf, mesh)
	}
}
