package partition

import (
	"context"
	"fmt"
	"math"

	"looppart/internal/footprint"
	"looppart/internal/intmat"
	"looppart/internal/telemetry"
	"looppart/internal/tile"
)

// Communication lower bound for rectangular partitions, after the
// red/blue-pebble projective arguments of Dinh and Demmel ("Communication
// lower bounds for nested loops", arXiv:2003.00119), specialized to the
// paper's uniformly-intersecting reference classes.
//
// For a class whose reference matrix G is one-to-one and whose writes
// share a single offset, every array element has exactly one producing
// iteration, and each read reference r pins its consumers at a constant
// iteration-space offset δ_r (the lattice solution of δ·G = a_w − a_r).
// Under any rectangular processor grid, an element produced at x whose
// consumer x+δ_r falls in a different tile — and hence, because the grid
// has exactly P tiles, on a different processor — must cross the network
// at least once. Counting, per grid dimension, the produced elements
// whose consumer crosses a tile boundary along that dimension alone
// (staying interior along every other) yields pairwise-disjoint sets of
// must-move elements, so their sum is a valid per-grid lower bound, and
// the minimum over all grids of P lower-bounds what any rectangular plan
// of the same family can achieve.
//
// The bound is deliberately conservative: classes outside the one-to-one
// single-write-offset structure (or containing atomics) contribute zero,
// and each counted element is charged one word even when several remote
// processors consume it. Both slacks only lower the bound, never raise
// it, so bound ≤ measured words holds for every rectangular plan.

// LowerBoundResult is the communication lower bound for one nest.
type LowerBoundResult struct {
	// Words is min over processor grids of the per-grid must-move element
	// count: no rectangular plan of the standard grid family moves fewer
	// words per epoch.
	Words int64
	// Grid and Ext identify the comm-optimal grid attaining the minimum
	// (first in enumeration order among ties) and its tile extents.
	Grid []int64
	Ext  []int64
	// Classes counts the reference classes with the projective structure
	// the bound can charge; 0 means the bound is trivially zero.
	Classes int
}

// CommLowerBound computes the rectangular-partition communication lower
// bound for the analyzed nest over procs processors.
func CommLowerBound(a *footprint.Analysis, procs int) (*LowerBoundResult, error) {
	space := tile.BoundsOf(a.Nest)
	l := space.Dim()
	if l == 0 {
		return nil, fmt.Errorf("partition: nest has no doall loops")
	}
	if procs <= 0 {
		return nil, fmt.Errorf("partition: need at least one processor")
	}
	sizes := space.Extents()
	classes := lbClasses(a, l)
	grids := factorizations(int64(procs), l)

	best := &LowerBoundResult{Words: math.MaxInt64, Classes: len(classes)}
	for _, grid := range grids {
		ext, feasible := lbExtents(grid, sizes)
		if !feasible {
			continue
		}
		words, ok := lbGridWords(classes, sizes, ext)
		if !ok {
			// Arithmetic overflow in a count: the bound for this nest is
			// not trustworthy, report none rather than a wrong one.
			return nil, fmt.Errorf("partition: communication lower bound overflows for space %v", sizes)
		}
		if words < best.Words {
			best.Words, best.Grid, best.Ext = words, cloneGrid(grid), ext
		}
	}
	if best.Grid == nil {
		return nil, fmt.Errorf("partition: no feasible grid of %d processors for space %v", procs, sizes)
	}
	telemetry.Active().Counter("partition.lowerbound.computed").Add(1)
	return best, nil
}

// lbClass is one qualifying class, reduced to its consumer offsets.
type lbClass struct {
	deltas [][]int64 // per counted read reference: consumer − producer
}

// lbClasses extracts the classes the bound can charge. A class qualifies
// when G is one-to-one (unique producer per element), all writes share
// one offset, no member is atomic, and at least one read sits at a
// nonzero lattice offset from the write.
func lbClasses(a *footprint.Analysis, l int) []lbClass {
	var out []lbClass
	for _, c := range a.Classes {
		if c.G.Rows() != l || !intmat.IsOneToOne(c.G) {
			continue
		}
		var writeOff []int64
		qualified := true
		for _, r := range c.Refs {
			if r.Atomic {
				qualified = false
				break
			}
			if r.Writes == 0 {
				continue
			}
			if writeOff == nil {
				writeOff = r.A
			} else if !eqVec(writeOff, r.A) {
				qualified = false
				break
			}
		}
		if !qualified || writeOff == nil {
			continue
		}
		var deltas [][]int64
		for _, r := range c.Refs {
			if r.Reads == 0 {
				continue
			}
			diff := make([]int64, len(writeOff))
			for k := range diff {
				diff[k] = writeOff[k] - r.A[k]
			}
			d, ok, err := intmat.SolveIntLeftChecked(c.G, diff)
			if err != nil || !ok || allZero(d) {
				continue
			}
			deltas = append(deltas, d)
		}
		if len(deltas) > 0 {
			out = append(out, lbClass{deltas: deltas})
		}
	}
	return out
}

// lbExtents returns the tile extents the standard rect family induces for
// grid, or feasible=false when the grid oversubscribes a dimension (the
// rect search skips those candidates, so no served plan uses them).
func lbExtents(grid, sizes []int64) (ext []int64, feasible bool) {
	ext = make([]int64, len(grid))
	for k := range grid {
		if grid[k] > sizes[k] {
			return nil, false
		}
		ext[k] = ceilDiv(sizes[k], grid[k])
	}
	return ext, true
}

// lbGridWords is the per-grid bound: for each class and each dimension i,
// (max over refs of the 1-D boundary-crossing count along i) × (product
// over j≠i of producer positions interior to their chunk along j). ok is
// false on int64 overflow.
func lbGridWords(classes []lbClass, sizes, ext []int64) (words int64, ok bool) {
	l := len(sizes)
	spans := make([]int64, l)
	interior := make([]int64, l)
	for _, c := range classes {
		for j := 0; j < l; j++ {
			spans[j] = 0
			for _, d := range c.deltas {
				if s := abs64(d[j]); s > spans[j] {
					spans[j] = s
				}
			}
			interior[j] = interiorCount(sizes[j], ext[j], spans[j])
		}
		for i := 0; i < l; i++ {
			var maxCross int64
			for _, d := range c.deltas {
				if n := crossCount(sizes[i], ext[i], d[i]); n > maxCross {
					maxCross = n
				}
			}
			flow := maxCross
			for j := 0; j < l && flow > 0; j++ {
				if j == i {
					continue
				}
				if flow, ok = mulNoOvf(flow, interior[j]); !ok {
					return 0, false
				}
			}
			if words, ok = addNoOvf(words, flow); !ok {
				return 0, false
			}
		}
	}
	return words, true
}

// crossCount counts x in [0,N) with x+d in [0,N) and floor(x/E) ≠
// floor((x+d)/E): producers whose consumer at offset d lands in a
// different chunk of size E along this dimension.
func crossCount(n, e, d int64) int64 {
	if d < 0 {
		d = -d
	}
	if d == 0 || n <= 0 || e <= 0 {
		return 0
	}
	m := n - d // valid producers: x < m keeps the consumer in range
	if m <= 0 {
		return 0
	}
	if d >= e {
		return m // every in-range consumer skips at least one chunk
	}
	// Within each period of E the crossing residues are E−d … E−1.
	q, r := m/e, m%e
	extra := r - (e - d)
	if extra < 0 {
		extra = 0
	}
	return q*d + extra
}

// interiorCount counts x in [0,N) at distance ≥ s from both edges of
// their chunk of size E: positions whose consumers at any offset with
// magnitude ≤ s stay in the same chunk.
func interiorCount(n, e, s int64) int64 {
	if n <= 0 || e <= 0 {
		return 0
	}
	if s == 0 {
		return n
	}
	chunks := ceilDiv(n, e)
	last := n - (chunks-1)*e
	full := e - 2*s
	if full < 0 {
		full = 0
	}
	tail := last - 2*s
	if tail < 0 {
		tail = 0
	}
	return (chunks-1)*full + tail
}

func mulNoOvf(a, b int64) (int64, bool) {
	if a == 0 || b == 0 {
		return 0, true
	}
	p := a * b
	if p/b != a {
		return 0, false
	}
	return p, true
}

func addNoOvf(a, b int64) (int64, bool) {
	s := a + b
	if (b > 0 && s < a) || (b < 0 && s > a) {
		return 0, false
	}
	return s, true
}

func eqVec(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func allZero(v []int64) bool {
	for _, x := range v {
		if x != 0 {
			return false
		}
	}
	return true
}

// lowerBoundFamily plans the comm-optimal rectangular grid: the rect tile
// whose grid attains the communication lower bound. When no class has
// chargeable structure (the bound is uniformly zero), it degrades to the
// footprint-optimal rectangle, so the family always produces a plan.
type lowerBoundFamily struct{}

func (lowerBoundFamily) Name() string { return "lowerbound" }

func (lowerBoundFamily) Optimize(ctx context.Context, a *footprint.Analysis, procs int) (*FamilyPlan, error) {
	lb, err := CommLowerBound(a, procs)
	if err != nil || lb.Classes == 0 {
		// No chargeable structure: every grid bounds at zero, so fall back
		// to the footprint-optimal rectangle rather than pick arbitrarily.
		return rectFamily{}.Optimize(ctx, a, procs)
	}
	p := lbRectPlan(a, lb)
	t := p.Tile()
	return &FamilyPlan{
		Tile:               &t,
		PredictedFootprint: p.PredictedFootprint,
		PredictedTraffic:   p.PredictedTraffic,
		Exactness:          p.Exactness,
	}, nil
}

// TopK returns the rect family's ranked candidates with the comm-optimal
// tile appended as an extra contestant when it is not already among them
// — the tournament then measures whether trading model footprint for the
// lower-bound grid pays off.
func (lowerBoundFamily) TopK(a *footprint.Analysis, procs, k int, opt TopKOptions) ([]FamilyPlan, error) {
	out, err := rectFamily{}.TopK(a, procs, k, opt)
	if err != nil {
		return nil, err
	}
	lb, err := CommLowerBound(a, procs)
	if err != nil || lb.Classes == 0 {
		return out, nil
	}
	for _, p := range out {
		if eqVec(p.Tile.Extents(), lb.Ext) {
			return out, nil
		}
	}
	p := lbRectPlan(a, lb)
	t := p.Tile()
	return append(out, FamilyPlan{
		Tile:               &t,
		PredictedFootprint: p.PredictedFootprint,
		PredictedTraffic:   p.PredictedTraffic,
		Exactness:          p.Exactness,
	}), nil
}

// lbRectPlan scores the comm-optimal grid with the standard rect model
// terms so the plan carries the same predictions any rect plan would.
func lbRectPlan(a *footprint.Analysis, lb *LowerBoundResult) RectPlan {
	ev := footprint.NewEvaluator(a)
	fp, ex := ev.RectTotalFootprint(lb.Ext)
	tr, _ := a.RectTotalTraffic(lb.Ext)
	return RectPlan{
		Grid:               cloneGrid(lb.Grid),
		Ext:                lb.Ext,
		PredictedFootprint: fp,
		PredictedTraffic:   tr,
		Exactness:          ex,
	}
}

func init() {
	Register(lowerBoundFamily{})
}
