package partition

import (
	"reflect"
	"runtime"
	"testing"

	"looppart/internal/paperex"
	"looppart/internal/telemetry"
)

// referenceFactorizations is the original recursive enumerator, kept as
// the test oracle for the iterative preallocated replacement.
func referenceFactorizations(n int64, k int) [][]int64 {
	if k == 1 {
		return [][]int64{{n}}
	}
	var out [][]int64
	for d := int64(1); d <= n; d++ {
		if n%d != 0 {
			continue
		}
		for _, rest := range referenceFactorizations(n/d, k-1) {
			out = append(out, append([]int64{d}, rest...))
		}
	}
	return out
}

func TestFactorizationsMatchReference360(t *testing.T) {
	got := factorizations(360, 3)
	want := referenceFactorizations(360, 3)
	if len(got) != len(want) {
		t.Fatalf("factorizations(360,3) = %d tuples, want %d", len(got), len(want))
	}
	for i := range want {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Fatalf("factorizations(360,3)[%d] = %v, want %v (order must match the reference)", i, got[i], want[i])
		}
	}
	if !reflect.DeepEqual(got[0], []int64{1, 1, 360}) {
		t.Errorf("first tuple = %v, want [1 1 360]", got[0])
	}
	if !reflect.DeepEqual(got[len(got)-1], []int64{360, 1, 1}) {
		t.Errorf("last tuple = %v, want [360 1 1]", got[len(got)-1])
	}
}

func TestFactorizationsCountPinned(t *testing.T) {
	// d(360) with multiplicity over ordered 3-tuples: Π C(eᵢ+2, 2) for
	// 360 = 2³·3²·5 gives 10·6·3 = 180.
	if got := len(factorizations(360, 3)); got != 180 {
		t.Errorf("len(factorizations(360,3)) = %d, want 180", got)
	}
}

// searchCases are the paper-example analyses the engine tests sweep —
// E5/E7/E8's nests at their experiment parameters.
func searchCases(t *testing.T) map[string]struct {
	src    string
	params map[string]int64
	procs  int
} {
	t.Helper()
	return map[string]struct {
		src    string
		params map[string]int64
		procs  int
	}{
		"example8":  {paperex.Example8, map[string]int64{"N": 24}, 8},
		"example9":  {paperex.Example9, map[string]int64{"N": 24}, 8},
		"example10": {paperex.Example10, map[string]int64{"N": 36}, 6},
	}
}

// TestSearchDeterministicAcrossPoolSizes pins the engine's core contract:
// the chosen plan is bit-identical whatever the worker count.
func TestSearchDeterministicAcrossPoolSizes(t *testing.T) {
	for name, tc := range searchCases(t) {
		t.Run(name, func(t *testing.T) {
			a := analyze(t, tc.src, tc.params)

			prev := SetSearchWorkers(1)
			defer SetSearchWorkers(prev)
			rectSeq, err := OptimizeRect(a, tc.procs)
			if err != nil {
				t.Fatal(err)
			}
			skewSeq, err := OptimizeSkew(a, tc.procs, 2)
			if err != nil {
				t.Fatal(err)
			}

			for _, workers := range []int{8, runtime.GOMAXPROCS(0)} {
				SetSearchWorkers(workers)
				rect, err := OptimizeRect(a, tc.procs)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(rect, rectSeq) {
					t.Errorf("workers=%d: OptimizeRect = %+v, sequential %+v", workers, rect, rectSeq)
				}
				skew, err := OptimizeSkew(a, tc.procs, 2)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(skew, skewSeq) {
					t.Errorf("workers=%d: OptimizeSkew = %+v, sequential %+v", workers, skew, skewSeq)
				}
			}
		})
	}
}

// TestPruningDoesNotChangePlan compares pruned and unpruned searches:
// the admissible lower bounds must never discard a winner.
func TestPruningDoesNotChangePlan(t *testing.T) {
	for name, tc := range searchCases(t) {
		t.Run(name, func(t *testing.T) {
			a := analyze(t, tc.src, tc.params)

			pruneDisabled.Store(true)
			rectFull, err1 := OptimizeRect(a, tc.procs)
			skewFull, err2 := OptimizeSkew(a, tc.procs, 2)
			pruneDisabled.Store(false)
			if err1 != nil || err2 != nil {
				t.Fatal(err1, err2)
			}

			rect, err := OptimizeRect(a, tc.procs)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(rect, rectFull) {
				t.Errorf("pruned OptimizeRect = %+v, unpruned %+v", rect, rectFull)
			}
			skew, err := OptimizeSkew(a, tc.procs, 2)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(skew, skewFull) {
				t.Errorf("pruned OptimizeSkew = %+v, unpruned %+v", skew, skewFull)
			}
		})
	}
}

// TestSkewChosenCandidatesPerRun is the regression test for the chosen
// event reporting the cumulative process-wide counter instead of this
// run's count: two identical runs must report the same number.
func TestSkewChosenCandidatesPerRun(t *testing.T) {
	a := analyze(t, paperex.Example8, map[string]int64{"N": 12})
	reg := telemetry.New()
	prev := telemetry.SetActive(reg)
	defer telemetry.SetActive(prev)

	counts := make([]int64, 0, 2)
	for run := 0; run < 2; run++ {
		if _, err := OptimizeSkew(a, 4, 2); err != nil {
			t.Fatal(err)
		}
		events := reg.EventsOfKind("partition.skew.chosen")
		if len(events) != run+1 {
			t.Fatalf("run %d: %d chosen events, want %d", run, len(events), run+1)
		}
		v, ok := events[run].Fields["candidates"].(int64)
		if !ok {
			t.Fatalf("run %d: candidates field is %T, want int64", run, events[run].Fields["candidates"])
		}
		if v <= 0 {
			t.Fatalf("run %d: candidates = %d, want > 0", run, v)
		}
		counts = append(counts, v)
	}
	if counts[0] != counts[1] {
		t.Errorf("chosen event candidates differ across identical runs: %d then %d (cumulative counter leak)", counts[0], counts[1])
	}
}

// TestRectChosenReportsPruning checks the rect chosen event carries this
// run's evaluated/pruned split and that they account for every candidate.
func TestRectChosenReportsPruning(t *testing.T) {
	a := analyze(t, paperex.Example8, map[string]int64{"N": 96})
	reg := telemetry.New()
	prev := telemetry.SetActive(reg)
	defer telemetry.SetActive(prev)

	if _, err := OptimizeRect(a, 64); err != nil {
		t.Fatal(err)
	}
	events := reg.EventsOfKind("partition.rect.chosen")
	if len(events) != 1 {
		t.Fatalf("%d chosen events, want 1", len(events))
	}
	f := events[0].Fields
	evaluated, _ := f["evaluated"].(int64)
	pruned, _ := f["pruned"].(int64)
	if evaluated <= 0 {
		t.Errorf("evaluated = %d, want > 0", evaluated)
	}
	total := int64(len(factorizations(64, 3)))
	if evaluated+pruned > total {
		t.Errorf("evaluated %d + pruned %d exceeds candidate space %d", evaluated, pruned, total)
	}
}

// TestOptimizersSilentWithoutTelemetry pins the satellite fix: candidate
// scoring must not build telemetry payloads when no registry is active.
// (A crash or panic here would mean an unguarded Emit on a nil registry.)
func TestOptimizersSilentWithoutTelemetry(t *testing.T) {
	if telemetry.Enabled() {
		t.Fatal("test requires no active registry")
	}
	a := analyze(t, paperex.Example8, map[string]int64{"N": 24})
	if _, err := OptimizeRect(a, 8); err != nil {
		t.Fatal(err)
	}
	if _, err := OptimizeSkew(a, 8, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := OptimizeRectLines(a, 8, 4); err != nil {
		t.Fatal(err)
	}
}
