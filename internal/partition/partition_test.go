package partition

import (
	"math"
	"testing"

	"looppart/internal/footprint"
	"looppart/internal/loopir"
	"looppart/internal/paperex"
	"looppart/internal/tile"
)

func analyze(t testing.TB, src string, params map[string]int64) *footprint.Analysis {
	t.Helper()
	n, err := loopir.Parse(src, params)
	if err != nil {
		t.Fatal(err)
	}
	a, err := footprint.Analyze(n)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestContinuousRatiosExample8(t *testing.T) {
	// The paper's Example 8 headline: Li : Lj : Lk :: 2 : 3 : 4.
	a := analyze(t, paperex.Example8, map[string]int64{"N": 100})
	coeffs, ok := ContinuousRatios(a)
	if !ok {
		t.Fatal("no closed form")
	}
	if coeffs[0] != 2 || coeffs[1] != 3 || coeffs[2] != 4 {
		t.Fatalf("coeffs = %v, want [2 3 4]", coeffs)
	}
}

func TestContinuousRatiosExample10(t *testing.T) {
	// Example 10: B contributes u = (3,1), the C pair contributes (0,1),
	// the lone C ref and A are shape-invariant → coefficients (3, 2),
	// i.e. minimize 3(Lj+1)-ish terms... in extent form: the optimal
	// extents satisfy Li : Lj :: 3 : 2 (the paper's 2Li = 3Lj + 1).
	a := analyze(t, paperex.Example10, map[string]int64{"N": 100})
	coeffs, ok := ContinuousRatios(a)
	if !ok {
		t.Fatal("no closed form")
	}
	if coeffs[0] != 3 || coeffs[1] != 2 {
		t.Fatalf("coeffs = %v, want [3 2]", coeffs)
	}
}

func TestOptimizeRectExample8Ratios(t *testing.T) {
	// N=96, P=16: the optimizer should pick extents close to 2:3:4.
	a := analyze(t, paperex.Example8, map[string]int64{"N": 96})
	plan, err := OptimizeRect(a, 16)
	if err != nil {
		t.Fatal(err)
	}
	// Candidate grids for P=16 over 96³: best model value has extents
	// proportional to 2:3:4 as nearly as the divisors allow. Verify the
	// chosen plan beats the naive shapes in the model.
	rows, err := Naive(a, 16, ByRows)
	if err != nil {
		t.Fatal(err)
	}
	blocks, err := Naive(a, 16, ByBlocks)
	if err != nil {
		t.Fatal(err)
	}
	if plan.PredictedFootprint > rows.PredictedFootprint {
		t.Errorf("optimized %v worse than rows %v", plan, rows)
	}
	if plan.PredictedFootprint > blocks.PredictedFootprint+1e-9 {
		t.Errorf("optimized %v worse than blocks %v", plan, blocks)
	}
	// The i-extent must not exceed the k-extent (ratios 2 ≤ 4), and j
	// between them, modulo divisor granularity.
	if plan.Ext[0] > plan.Ext[2] {
		t.Errorf("extents %v not ordered toward 2:3:4", plan.Ext)
	}
}

func TestOptimizeRectExample2PrefersColumns(t *testing.T) {
	// Example 2 / Figure 3: the 100×1 strip partition (one full-i column
	// strip per processor) beats 10×10 blocks: 104 vs 140 B-misses.
	a := analyze(t, paperex.Example2, nil)
	plan, err := OptimizeRect(a, 100)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Grid[0] != 1 || plan.Grid[1] != 100 {
		t.Fatalf("grid = %v, want [1 100] (partition a)", plan.Grid)
	}
	if plan.Ext[0] != 100 || plan.Ext[1] != 1 {
		t.Fatalf("ext = %v", plan.Ext)
	}
	// Model footprint: A class 100 + B class 104 = 204.
	if plan.PredictedFootprint != 204 {
		t.Fatalf("footprint = %v, want 204", plan.PredictedFootprint)
	}
}

func TestOptimizeRectInfeasible(t *testing.T) {
	a := analyze(t, `doall (i, 1, 4) A[i] = A[i+1] enddoall`, nil)
	if _, err := OptimizeRect(a, 8); err == nil {
		t.Fatal("8 processors on 4 iterations should be infeasible")
	}
	if _, err := OptimizeRect(a, 0); err == nil {
		t.Fatal("0 processors should error")
	}
}

func TestFactorizations(t *testing.T) {
	f := factorizations(12, 2)
	if len(f) != 6 { // 1·12, 2·6, 3·4, 4·3, 6·2, 12·1
		t.Fatalf("factorizations(12,2) = %v", f)
	}
	f3 := factorizations(8, 3)
	// Ordered factorizations of 8 into 3 factors: (1,1,8),(1,2,4),(1,4,2),
	// (1,8,1),(2,1,4),(2,2,2),(2,4,1),(4,1,2),(4,2,1),(8,1,1) = 10.
	if len(f3) != 10 {
		t.Fatalf("factorizations(8,3) has %d entries", len(f3))
	}
	for _, g := range f3 {
		if g[0]*g[1]*g[2] != 8 {
			t.Fatalf("bad factorization %v", g)
		}
	}
}

func TestCommFreeExample2(t *testing.T) {
	// Partition a of Example 2 is communication-free; the normal is
	// (0,1): slabs of constant j ranges.
	a := analyze(t, paperex.Example2, nil)
	plan, ok := FindCommFree(a, 100, true)
	if !ok {
		t.Fatal("Example 2 has a communication-free partition")
	}
	if !plan.CommFree {
		t.Fatal("plan not marked comm-free")
	}
	// Normal must be parallel to (0,1): zero i-component.
	if plan.Normal[0] != 0 || plan.Normal[1] == 0 {
		t.Fatalf("normal = %v, want (0,±k)", plan.Normal)
	}
	// With 100 processors over 100 j-levels, width 1.
	if plan.Width != 1 {
		t.Fatalf("width = %d", plan.Width)
	}
	// Check slab assignment: same j → same slab; j and j+1 → different.
	s1 := plan.SlabOf([]int64{101, 7}, 100)
	s2 := plan.SlabOf([]int64{200, 7}, 100)
	s3 := plan.SlabOf([]int64{101, 8}, 100)
	if s1 != s2 {
		t.Error("same-j iterations in different slabs")
	}
	if s1 == s3 {
		t.Error("different-j iterations share a slab")
	}
}

func TestCommFreeVerifiedByEnumeration(t *testing.T) {
	// Ground-truth check: under the comm-free plan for Example 2, no two
	// slabs touch a common element of B or A.
	a := analyze(t, paperex.Example2, nil)
	n := a.Nest
	plan, ok := FindCommFree(a, 10, true)
	if !ok {
		t.Fatal("no comm-free plan")
	}
	touched := map[string]map[string]int{} // array -> datum -> first slab
	conflict := false
	n.ForEachIteration(nil, func(env map[string]int64) bool {
		p := []int64{env["i"], env["j"]}
		slab := plan.SlabOf(p, 10)
		for _, mr := range n.TraceIteration(env) {
			key := ""
			for _, v := range mr.Index {
				key += string(rune(v)) + ","
			}
			m, ok := touched[mr.Array]
			if !ok {
				m = map[string]int{}
				touched[mr.Array] = m
			}
			if prev, seen := m[key]; seen && prev != slab {
				conflict = true
				return false
			}
			m[key] = slab
		}
		return true
	})
	if conflict {
		t.Fatal("comm-free plan shares data between slabs")
	}
}

func TestCommFreeExample3Skewed(t *testing.T) {
	// Example 3: B[i,j] and B[i+1,j+3] share along δ = (1,3); the
	// comm-free normal must satisfy h·(1,3) = 0 → h ∝ (3,−1). The A
	// write class is a single identity reference (no constraints).
	a := analyze(t, paperex.Example3, map[string]int64{"N": 30})
	normals := CommFreeNormals(a, true)
	if len(normals) != 1 {
		t.Fatalf("normals = %v", normals)
	}
	h := normals[0]
	if h[0]*1+h[1]*3 != 0 {
		t.Fatalf("normal %v not orthogonal to (1,3)", h)
	}
	plan, ok := FindCommFree(a, 10, true)
	if !ok {
		t.Fatal("Example 3 should admit skewed comm-free slabs")
	}
	if plan.Normal[0]*1+plan.Normal[1]*3 != 0 {
		t.Fatalf("plan normal %v", plan.Normal)
	}
}

func TestCommFreeExample10Fails(t *testing.T) {
	// Example 10 has no communication-free partition (the case beyond
	// Ramanujam–Sadayappan); B's conflicts span both dimensions.
	a := analyze(t, paperex.Example10, map[string]int64{"N": 30})
	if _, ok := FindCommFree(a, 10, true); ok {
		t.Fatal("Example 10 should have no comm-free partition")
	}
	// But the footprint optimizer still returns a plan.
	if _, err := OptimizeRect(a, 10); err != nil {
		t.Fatal(err)
	}
}

func TestConflictDirectionsReadOnlyFilter(t *testing.T) {
	// A read-only class contributes no conflicts when filtered.
	a := analyze(t, `
doall (i, 1, 16)
  A[i] = B[i] + B[i+4]
enddoall`, nil)
	all := ConflictDirections(a, true)
	if len(all) == 0 {
		t.Fatal("expected B-pair conflict")
	}
	writesOnly := ConflictDirections(a, false)
	if len(writesOnly) != 0 {
		t.Fatalf("read-only conflicts leaked: %v", writesOnly)
	}
}

func TestAbrahamHudakExample8Domain(t *testing.T) {
	// The single-array restriction: Example 8 has classes for A and B,
	// so strict A–H rejects it; on the B-only variant it reproduces the
	// 2:3:4 ratios (the paper: "Abraham and Hudak's algorithm gives an
	// identical partition").
	full := analyze(t, paperex.Example8, map[string]int64{"N": 96})
	if _, err := AbrahamHudak(full, 16); err == nil {
		t.Fatal("A–H should reject the two-array nest")
	}
	bOnly := analyze(t, `
doall (i, 1, 96)
  doall (j, 1, 96)
    doall (k, 1, 96)
      B[i,j,k] = B[i-1,j,k+1] + B[i,j+1,k] + B[i+1,j-2,k-3]
    enddoall
  enddoall
enddoall`, nil)
	ah, err := AbrahamHudak(bOnly, 16)
	if err != nil {
		t.Fatal(err)
	}
	ours, err := OptimizeRect(bOnly, 16)
	if err != nil {
		t.Fatal(err)
	}
	for k := range ah.Ext {
		if ah.Ext[k] != ours.Ext[k] {
			t.Fatalf("A–H %v != ours %v", ah.Ext, ours.Ext)
		}
	}
}

func TestAbrahamHudakRejectsNonIdentityG(t *testing.T) {
	a := analyze(t, `
doall (i, 1, 16)
  doall (j, 1, 16)
    B[i+j,j] = B[i+j+1,j+2]
  enddoall
enddoall`, nil)
	if _, err := AbrahamHudak(a, 4); err == nil {
		t.Fatal("A–H should reject coupled subscripts")
	}
}

func TestNaiveShapes(t *testing.T) {
	a := analyze(t, paperex.Example2, nil)
	rows, err := Naive(a, 100, ByRows)
	if err != nil {
		t.Fatal(err)
	}
	if rows.Ext[0] != 1 || rows.Ext[1] != 100 {
		t.Fatalf("rows ext = %v", rows.Ext)
	}
	cols, err := Naive(a, 100, ByColumns)
	if err != nil {
		t.Fatal(err)
	}
	if cols.Ext[0] != 100 || cols.Ext[1] != 1 {
		t.Fatalf("cols ext = %v", cols.Ext)
	}
	blocks, err := Naive(a, 100, ByBlocks)
	if err != nil {
		t.Fatal(err)
	}
	if blocks.Ext[0] != 10 || blocks.Ext[1] != 10 {
		t.Fatalf("blocks ext = %v", blocks.Ext)
	}
	// Example 2 ordering: columns (104+100) < blocks (140+100) < rows.
	if !(cols.PredictedFootprint < blocks.PredictedFootprint) {
		t.Errorf("cols %v !< blocks %v", cols.PredictedFootprint, blocks.PredictedFootprint)
	}
	if !(blocks.PredictedFootprint < rows.PredictedFootprint) {
		t.Errorf("blocks %v !< rows %v", blocks.PredictedFootprint, rows.PredictedFootprint)
	}
}

func TestNaiveInfeasibleRows(t *testing.T) {
	a := analyze(t, `
doall (i, 1, 2)
  doall (j, 1, 64)
    A[i,j] = A[i,j]
  enddoall
enddoall`, nil)
	if _, err := Naive(a, 8, ByRows); err == nil {
		t.Fatal("8 row cuts of a 2-row space should fail")
	}
}

func TestOptimizeSkewExample3BeatsRect(t *testing.T) {
	// Example 3's point: parallelogram tiles beat every rectangle.
	a := analyze(t, paperex.Example3, map[string]int64{"N": 24})
	plan, err := OptimizeSkew(a, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Tile.IsRect() {
		t.Fatalf("skew search picked a rectangle: %v", plan)
	}
	if plan.PredictedFootprint >= plan.RectBaseline {
		t.Fatalf("skewed %v not better than best rect %.1f", plan, plan.RectBaseline)
	}
}

func TestOptimizeSkewMatchesRectWhenOptimal(t *testing.T) {
	// For Example 8 (G = I, pure stencil) no shear helps; the skew
	// search should not beat the rectangular optimum materially.
	a := analyze(t, paperex.Example8, map[string]int64{"N": 12})
	rect, err := OptimizeRect(a, 8)
	if err != nil {
		t.Fatal(err)
	}
	skew, err := OptimizeSkew(a, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Theorem 2's det model drops the +1 boundary sharpening, so allow
	// the comparison on the same model: skew's best must be ≤ rect's
	// Theorem 2 score and within a small factor of the rect optimum.
	rectTh2, _ := a.TileTotalFootprint(rect.Tile())
	if skew.PredictedFootprint > rectTh2+1e-9 {
		t.Fatalf("skew %v worse than rect Theorem-2 score %.1f", skew, rectTh2)
	}
}

func TestGridFromRatios(t *testing.T) {
	a := analyze(t, paperex.Example8, map[string]int64{"N": 96})
	coeffs, ok := ContinuousRatios(a)
	if !ok {
		t.Fatal("no ratios")
	}
	space := tile.BoundsOf(a.Nest)
	plan, err := GridFromRatios(space, coeffs, 16)
	if err != nil {
		t.Fatal(err)
	}
	// Extents should be ordered like the coefficients 2:3:4.
	if !(plan.Ext[0] <= plan.Ext[1] && plan.Ext[1] <= plan.Ext[2]) {
		t.Fatalf("ext = %v not ordered by ratios", plan.Ext)
	}
	vol := plan.Ext[0] * plan.Ext[1] * plan.Ext[2]
	if vol < 96*96*96/16 {
		t.Fatalf("volume %d below per-processor share", vol)
	}
}

func TestGridFromRatiosZeroCoeffs(t *testing.T) {
	// All-zero coefficients (single shape-invariant class): any feasible
	// grid is acceptable; the call must not fail.
	a := analyze(t, `
doall (i, 1, 16)
  doall (j, 1, 16)
    A[i,j] = A[i,j]
  enddoall
enddoall`, nil)
	coeffs, ok := ContinuousRatios(a)
	if !ok {
		t.Fatal("no ratios")
	}
	if coeffs[0] != 0 || coeffs[1] != 0 {
		t.Fatalf("coeffs = %v", coeffs)
	}
	if _, err := GridFromRatios(tile.BoundsOf(a.Nest), coeffs, 4); err != nil {
		t.Fatal(err)
	}
}

func TestOptimalityAgainstExhaustiveEnumeration(t *testing.T) {
	// Ground truth: for Example 10 on a small space, exhaustively
	// enumerate all grids and confirm OptimizeRect's choice minimizes
	// the EXACT total footprint (model and truth agree on the argmin).
	a := analyze(t, paperex.Example10, map[string]int64{"N": 24})
	plan, err := OptimizeRect(a, 8)
	if err != nil {
		t.Fatal(err)
	}
	bestExact := int64(math.MaxInt64)
	var bestExt []int64
	for _, grid := range factorizations(8, 2) {
		ext := []int64{ceilDiv(24, grid[0]), ceilDiv(24, grid[1])}
		if grid[0] > 24 || grid[1] > 24 {
			continue
		}
		pts := rectPointsForTest(ext)
		exact := a.ExactTotalFootprint(pts)
		if exact < bestExact {
			bestExact = exact
			bestExt = ext
		}
	}
	gotPts := rectPointsForTest(plan.Ext)
	gotExact := a.ExactTotalFootprint(gotPts)
	if gotExact != bestExact {
		t.Fatalf("optimizer chose %v (exact %d); exhaustive best %v (exact %d)",
			plan.Ext, gotExact, bestExt, bestExact)
	}
}

func rectPointsForTest(ext []int64) [][]int64 {
	var pts [][]int64
	hi := make([]int64, len(ext))
	for k := range ext {
		hi[k] = ext[k] - 1
	}
	(tile.Bounds{Lo: make([]int64, len(ext)), Hi: hi}).ForEach(func(p []int64) bool {
		pts = append(pts, p)
		return true
	})
	return pts
}

func BenchmarkOptimizeRectExample8(b *testing.B) {
	a := analyze(b, paperex.Example8, map[string]int64{"N": 96})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := OptimizeRect(a, 16); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOptimizeSkewExample3(b *testing.B) {
	a := analyze(b, paperex.Example3, map[string]int64{"N": 24})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := OptimizeSkew(a, 8, 2); err != nil {
			b.Fatal(err)
		}
	}
}

func TestContinuousRatiosDataDominates(t *testing.T) {
	// A class with interior offsets: â-based and a⁺-based coefficients
	// differ, and a⁺ dominates componentwise.
	a := analyze(t, `
doall (i, 1, 32)
  doall (j, 1, 32)
    A[i,j] = B[i,j] + B[i+1,j] + B[i+2,j] + B[i+7,j] + B[i,j+3]
  enddoall
enddoall`, nil)
	cache, ok := ContinuousRatios(a)
	if !ok {
		t.Fatal("no cache ratios")
	}
	data, ok := ContinuousRatiosData(a)
	if !ok {
		t.Fatal("no data ratios")
	}
	for k := range cache {
		if data[k] < cache[k] {
			t.Fatalf("a+ coefficient %v below â %v at dim %d", data, cache, k)
		}
	}
	// i offsets (0,1,2,7,0): median 1, a⁺ = 1+0+1+6+1 = 9 > â = 7.
	if cache[0] != 7 || data[0] != 9 {
		t.Fatalf("cache = %v, data = %v; want 7 and 9 in dim 0", cache, data)
	}
	// j offsets (0,0,0,0,3): median 0, a⁺ = 3 = â.
	if cache[1] != 3 || data[1] != 3 {
		t.Fatalf("cache = %v, data = %v; want 3 and 3 in dim 1", cache, data)
	}
}

func TestContinuousRatiosDataExample8(t *testing.T) {
	// Symmetric stencil offsets: â and a⁺ agree (2,3,4).
	a := analyze(t, paperex.Example8, map[string]int64{"N": 32})
	data, ok := ContinuousRatiosData(a)
	if !ok {
		t.Fatal("no data ratios")
	}
	if data[0] != 2 || data[1] != 3 || data[2] != 4 {
		t.Fatalf("data ratios = %v", data)
	}
}
