// Package partition derives loop partitions that minimize the predicted
// communication volume: rectangular tilings via discrete search over
// processor-grid factorizations guided by the paper's closed-form Lagrange
// ratios (Examples 8–10), hyperparallelepiped (skewed) tilings via a
// bounded search over integer edge matrices scored with the Theorem 2
// model, communication-free hyperplane partitions in the style of
// Ramanujam and Sadayappan, and the Abraham–Hudak rectangular baseline for
// its restricted program class.
package partition

import (
	"context"
	"fmt"
	"math"
	"sync/atomic"

	"looppart/internal/footprint"
	"looppart/internal/obs"
	"looppart/internal/telemetry"
	"looppart/internal/tile"
)

// RectPlan is a rectangular partition: a per-dimension processor grid and
// the induced tile extents.
type RectPlan struct {
	Grid []int64 // processors per dimension; Π Grid = P
	Ext  []int64 // tile extents per dimension: ceil(N_k / Grid_k)

	// PredictedFootprint is the model cumulative footprint per tile
	// (misses on an infinite cache) and PredictedTraffic the per-tile
	// communication term.
	PredictedFootprint float64
	PredictedTraffic   float64
	Exactness          footprint.Exactness
}

// Tile returns the plan's tile.
func (p RectPlan) Tile() tile.Tile { return tile.Rect(p.Ext...) }

func (p RectPlan) String() string {
	return fmt.Sprintf("grid=%v ext=%v footprint=%.1f traffic=%.1f",
		p.Grid, p.Ext, p.PredictedFootprint, p.PredictedTraffic)
}

// ContinuousRatios returns the closed-form optimal aspect ratios of the
// rectangular tile extents, from the Lagrange conditions on the linearized
// objective Σᵢ cᵢ·Π_{j≠i} Eⱼ with Π Eⱼ fixed: Eᵢ ∝ cᵢ, where
// cᵢ = Σ_classes |uᵢ| (Example 8's Li:Lj:Lk :: 2:3:4).
//
// ok is false if any class required enumeration (no closed form); classes
// whose footprint is shape-invariant contribute zero. A zero coefficient
// means the objective does not constrain that dimension (any extent is
// optimal in the model; larger is better for boundary effects).
func ContinuousRatios(a *footprint.Analysis) (coeffs []float64, ok bool) {
	l := len(a.Vars)
	coeffs = make([]float64, l)
	for _, c := range a.Classes {
		if c.FootprintInvariant() {
			continue
		}
		u, _, solvable := c.SpreadCoeffs()
		if !solvable {
			return nil, false
		}
		for i := range u {
			coeffs[i] += u[i]
		}
	}
	return coeffs, true
}

// ContinuousRatiosData is ContinuousRatios with the cumulative spread a⁺
// (footnote 2) in place of â: the aspect-ratio coefficients for DATA
// partitioning on local-memory machines, where interior references also
// cost traffic because remote data is not dynamically replicated. The
// coefficients dominate the cache (â) coefficients componentwise and
// differ exactly when a class has interior offsets away from the median.
func ContinuousRatiosData(a *footprint.Analysis) (coeffs []float64, ok bool) {
	l := len(a.Vars)
	coeffs = make([]float64, l)
	for _, c := range a.Classes {
		if c.FootprintInvariant() {
			continue
		}
		u, _, solvable := c.CumulativeSpreadCoeffs()
		if !solvable {
			return nil, false
		}
		for i := range u {
			coeffs[i] += u[i]
		}
	}
	return coeffs, true
}

// OptimizeRect finds the rectangular partition of the nest's iteration
// space over P processors minimizing the predicted cumulative footprint.
// It enumerates every factorization of P into a processor grid (one factor
// per doall dimension), computes the induced tile extents, and scores each
// with the footprint model; ties break toward the most balanced grid.
//
// Candidates are scored on the engine's worker pool with the per-class
// model terms memoized once (footprint.Evaluator) and dominated grids
// pruned by the admissible volume bound; the chosen plan is bit-identical
// to a sequential scan.
func OptimizeRect(a *footprint.Analysis, procs int) (RectPlan, error) {
	return OptimizeRectCtx(context.Background(), a, procs)
}

// OptimizeRectCtx is OptimizeRect with request-scoped tracing: when ctx
// carries an obs.Trace, the search runs under a "search.rect" span whose
// attributes record the candidate grid count and the evaluated / pruned /
// infeasible split, plus the winning grid. Without a trace it behaves
// exactly like OptimizeRect.
func OptimizeRectCtx(ctx context.Context, a *footprint.Analysis, procs int) (RectPlan, error) {
	_, sp := obs.StartSpan(ctx, "search.rect")
	defer sp.End()
	space := tile.BoundsOf(a.Nest)
	l := space.Dim()
	if l == 0 {
		return RectPlan{}, fmt.Errorf("partition: nest has no doall loops")
	}
	if procs <= 0 {
		return RectPlan{}, fmt.Errorf("partition: need at least one processor")
	}
	sizes := space.Extents()
	reg := telemetry.Active()
	grids := factorizations(int64(procs), l)
	ev := footprint.NewEvaluator(a)

	// Closed-form fast path: inside the model's analytic domain the
	// Lagrange-optimal shape is computed in O(1) and certified by a
	// zero-allocation sequential sweep (closedform.go); off-domain nests
	// fall through to the parallel enumerative search below. Either way
	// the returned plan is byte-identical.
	if plan, handled, err := closedFormRect(ctx, a, ev, sizes, grids, procs, sp, reg); handled {
		return plan, err
	}

	type rectCand struct {
		ext   []int64
		fp    float64
		ex    footprint.Exactness
		state uint8
	}
	cands := make([]rectCand, len(grids))
	bound := newMinBound()
	prune := !pruneDisabled.Load()
	var evaluated, pruned, infeasible atomic.Int64
	forEachCandidate(len(grids), func(i int) {
		c := &cands[i]
		grid := grids[i]
		ext := make([]int64, l)
		for k := range grid {
			if grid[k] > sizes[k] {
				infeasible.Add(1)
				return
			}
			ext[k] = ceilDiv(sizes[k], grid[k])
		}
		c.ext = ext
		if prune {
			if lb := ev.RectLowerBound(ext); lb > bound.value()+betterEps {
				c.state = candPruned
				pruned.Add(1)
				return
			}
		}
		c.fp, c.ex = ev.RectTotalFootprint(ext)
		c.state = candEvaluated
		evaluated.Add(1)
		bound.observe(c.fp)
	})
	reg.Counter("partition.rect.candidates").Add(evaluated.Load())
	reg.Counter("partition.rect.pruned").Add(pruned.Load())
	reg.Counter("partition.rect.infeasible").Add(infeasible.Load())
	sp.SetAttr("candidates", int64(len(grids)))
	sp.SetAttr("evaluated", evaluated.Load())
	sp.SetAttr("pruned", pruned.Load())
	sp.SetAttr("infeasible", infeasible.Load())

	// Deterministic reduction: fold the scored candidates in enumeration
	// order with the sequential comparison, so the winner (tie-breaks
	// included) does not depend on worker scheduling.
	var best RectPlan
	found := false
	for i := range cands {
		c := &cands[i]
		if c.state != candEvaluated {
			continue
		}
		cand := RectPlan{Grid: grids[i], Ext: c.ext, PredictedFootprint: c.fp, Exactness: c.ex}
		if reg != nil {
			reg.Emit("partition.rect.candidate", fmt.Sprintf("grid=%v", cand.Grid), map[string]any{
				"grid":      fmt.Sprint(cand.Grid),
				"ext":       fmt.Sprint(cand.Ext),
				"footprint": cand.PredictedFootprint,
				"exactness": cand.Exactness.String(),
			})
		}
		if !found || better(cand, best) {
			best = cand
			found = true
		}
	}
	if !found {
		return RectPlan{}, fmt.Errorf("partition: no feasible grid of %d processors for space %v", procs, sizes)
	}
	best.Grid = cloneGrid(best.Grid)
	tr, _ := a.RectTotalTraffic(best.Ext)
	best.PredictedTraffic = tr
	sp.SetAttr("grid", fmt.Sprint(best.Grid))
	sp.SetAttr("footprint", best.PredictedFootprint)
	if reg != nil {
		fields := chosenFields(a, best)
		fields["evaluated"] = evaluated.Load()
		fields["pruned"] = pruned.Load()
		reg.Emit("partition.rect.chosen", fmt.Sprintf("grid=%v", best.Grid), fields)
	}
	return best, nil
}

// chosenFields assembles the decision-trace payload for a winning
// rectangular plan: the grid and extents plus the per-class footprint cost
// terms the objective summed — |det LG| (the volume term of Theorems 2/4),
// the spread â, and each class's predicted footprint at the chosen extents.
func chosenFields(a *footprint.Analysis, p RectPlan) map[string]any {
	fields := map[string]any{
		"grid":      fmt.Sprint(p.Grid),
		"ext":       fmt.Sprint(p.Ext),
		"footprint": p.PredictedFootprint,
		"traffic":   p.PredictedTraffic,
		"exactness": p.Exactness.String(),
	}
	t := p.Tile()
	for i, c := range a.Classes {
		key := fmt.Sprintf("class%d.%s", i, c.Array)
		if vol, ok := c.SingleFootprintVolume(t); ok {
			fields[key+".detLG"] = vol
		}
		fields[key+".spread"] = fmt.Sprint(c.Spread())
		fp, _ := c.RectFootprint(p.Ext)
		fields[key+".footprint"] = fp
		fields[key+".invariant"] = c.FootprintInvariant()
	}
	return fields
}

// better orders candidate plans: lower footprint wins; ties go to the
// more balanced grid (smaller max/min factor), then lexicographic.
func better(a, b RectPlan) bool {
	const eps = betterEps
	if a.PredictedFootprint < b.PredictedFootprint-eps {
		return true
	}
	if a.PredictedFootprint > b.PredictedFootprint+eps {
		return false
	}
	if s, t := spreadOf(a.Grid), spreadOf(b.Grid); s != t {
		return s < t
	}
	for k := range a.Grid {
		if a.Grid[k] != b.Grid[k] {
			return a.Grid[k] < b.Grid[k]
		}
	}
	return false
}

func spreadOf(grid []int64) int64 {
	mn, mx := grid[0], grid[0]
	for _, g := range grid {
		if g < mn {
			mn = g
		}
		if g > mx {
			mx = g
		}
	}
	return mx - mn
}

// enumerateFactorizations enumerates all ordered factorizations of n into
// k positive factors, ascending-lexicographic by factor (the order the
// old recursive enumerator produced). The walk is iterative over divisor
// indices with the whole result preallocated in one flat backing array —
// no per-step slice copying. factorizations (factmemo.go) wraps it with
// the bounded (n, k) memo; call that instead.
func enumerateFactorizations(n int64, k int) [][]int64 {
	if k <= 0 || n <= 0 {
		return nil
	}
	divs := divisorsAsc(n)
	if k == 1 {
		return [][]int64{{n}}
	}
	count := countFactorizations(n, k, divs, map[factKey]int{})
	backing := make([]int64, 0, count*k)
	out := make([][]int64, 0, count)

	// idx[d] is the current divisor index chosen at depth d; rem[d] the
	// value left to factor at depth d. The last factor is forced to rem.
	idx := make([]int, k)
	rem := make([]int64, k)
	cur := make([]int64, k)
	rem[0] = n
	depth := 0
	for depth >= 0 {
		if depth == k-1 {
			cur[depth] = rem[depth]
			backing = append(backing, cur...)
			out = append(out, backing[len(backing)-k:])
			depth--
			continue
		}
		advanced := false
		for ; idx[depth] < len(divs); idx[depth]++ {
			d := divs[idx[depth]]
			if rem[depth]%d != 0 {
				continue
			}
			cur[depth] = d
			rem[depth+1] = rem[depth] / d
			idx[depth]++
			depth++
			idx[depth] = 0
			advanced = true
			break
		}
		if !advanced {
			depth--
		}
	}
	return out
}

// divisorsAsc returns the divisors of n in ascending order.
func divisorsAsc(n int64) []int64 {
	var lo, hi []int64
	for d := int64(1); d*d <= n; d++ {
		if n%d != 0 {
			continue
		}
		lo = append(lo, d)
		if q := n / d; q != d {
			hi = append(hi, q)
		}
	}
	for i := len(hi) - 1; i >= 0; i-- {
		lo = append(lo, hi[i])
	}
	return lo
}

type factKey struct {
	n int64
	k int
}

// countFactorizations counts ordered factorizations of n into k positive
// factors, memoized, so the enumerator can preallocate exactly.
func countFactorizations(n int64, k int, divs []int64, memo map[factKey]int) int {
	if k == 1 {
		return 1
	}
	key := factKey{n, k}
	if c, ok := memo[key]; ok {
		return c
	}
	total := 0
	for _, d := range divs {
		if n%d == 0 {
			total += countFactorizations(n/d, k-1, divs, memo)
		}
	}
	memo[key] = total
	return total
}

func ceilDiv(a, b int64) int64 { return (a + b - 1) / b }

// GridFromRatios picks the factorization of P whose induced extents best
// match the continuous ratio vector (largest coefficient gets the largest
// extent). It is the discretization step after ContinuousRatios; unlike
// OptimizeRect it never evaluates the footprint model, so it shows what
// closed-form-only optimization (the paper's worked method) produces.
func GridFromRatios(space tile.Bounds, coeffs []float64, procs int) (RectPlan, error) {
	l := space.Dim()
	if len(coeffs) != l {
		return RectPlan{}, fmt.Errorf("partition: %d coefficients for %d dimensions", len(coeffs), l)
	}
	sizes := space.Extents()
	var best RectPlan
	bestScore := math.Inf(1)
	for _, grid := range factorizations(int64(procs), l) {
		ext := make([]int64, l)
		feasible := true
		for k := range grid {
			if grid[k] > sizes[k] {
				feasible = false
				break
			}
			ext[k] = ceilDiv(sizes[k], grid[k])
		}
		if !feasible {
			continue
		}
		// Score: deviation of extent direction from coefficient
		// direction, comparing normalized log-ratios (scale-free). Zero
		// coefficients are unconstrained and excluded.
		score := 0.0
		var logs []float64
		var want []float64
		for k := range ext {
			if coeffs[k] <= 0 {
				continue
			}
			logs = append(logs, math.Log(float64(ext[k])))
			want = append(want, math.Log(coeffs[k]))
		}
		if len(logs) > 1 {
			ml, mw := mean(logs), mean(want)
			for i := range logs {
				d := (logs[i] - ml) - (want[i] - mw)
				score += d * d
			}
		}
		if score < bestScore {
			bestScore = score
			best = RectPlan{Grid: grid, Ext: ext}
		}
	}
	if best.Grid == nil {
		return RectPlan{}, fmt.Errorf("partition: no feasible grid")
	}
	best.Grid = cloneGrid(best.Grid)
	return best, nil
}

func mean(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
