package partition

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
)

// TestFactorizationsMemoConcurrent hammers the memo from many goroutines
// over a mix of keys and checks every returned table against the
// unmemoized recursive oracle. Run under -race this doubles as the
// data-race proof for the RWMutex protocol (including the lost-race
// re-check and bounded eviction paths).
func TestFactorizationsMemoConcurrent(t *testing.T) {
	type key struct {
		n int64
		k int
	}
	keys := []key{
		{16, 1}, {16, 2}, {16, 3}, {60, 2}, {60, 3},
		{64, 3}, {100, 2}, {128, 3}, {210, 3}, {360, 3},
	}
	want := make(map[key][][]int64, len(keys))
	for _, kk := range keys {
		want[kk] = referenceFactorizations(kk.n, kk.k)
	}

	const goroutines = 16
	const rounds = 40
	errs := make(chan error, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				kk := keys[(g+r)%len(keys)]
				got := factorizations(kk.n, kk.k)
				if !reflect.DeepEqual(got, want[kk]) {
					select {
					case errs <- fmt.Errorf("factorizations(%d,%d) diverged from the oracle", kk.n, kk.k):
					default:
					}
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	if err := <-errs; err != nil {
		t.Fatal(err)
	}
}

// TestFactorizationsMemoBounded fills the memo past its capacity and
// checks the entry count never exceeds the bound, and that evicted keys
// still answer correctly (re-enumerated, not lost).
func TestFactorizationsMemoBounded(t *testing.T) {
	for n := int64(1); n <= int64(factMemoMaxEntries)+20; n++ {
		factorizations(n, 2)
		factMemo.RLock()
		size := len(factMemo.m)
		factMemo.RUnlock()
		if size > factMemoMaxEntries {
			t.Fatalf("memo grew to %d entries, bound is %d", size, factMemoMaxEntries)
		}
	}
	// Every key — cached or evicted — still matches the oracle.
	for n := int64(1); n <= int64(factMemoMaxEntries)+20; n++ {
		if got, want := factorizations(n, 2), referenceFactorizations(n, 2); !reflect.DeepEqual(got, want) {
			t.Fatalf("factorizations(%d,2) = %v after eviction churn, want %v", n, got, want)
		}
	}
}
