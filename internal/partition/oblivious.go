package partition

import (
	"context"
	"fmt"

	"looppart/internal/footprint"
	"looppart/internal/tile"
)

// Cache-oblivious recursive bisection, after the parallel cache-oblivious
// tiling of "PCOT: Cache Oblivious Tiling of Polyhedral Programs"
// (arXiv:1802.00166): instead of baking tile extents for one cache size
// into the plan, the iteration space is split in half recursively —
// always along the currently longest (communication-weighted) dimension —
// until each leaf holds one processor's share. Every level of the
// recursion is a valid tiling, so the working set contracts geometrically
// and the plan's locality degrades by at most a constant factor across
// cache sizes, none of which it needs to know. That also makes it the
// one family that can plan a nest whose extents are symbolic (`?N`): the
// split ratios depend only on the processor count and the per-dimension
// weights, not on the extents themselves.

// ObliviousPlan is a cache-oblivious recursive-bisection partition.
type ObliviousPlan struct {
	// Weights order the dimensions for splitting: the recursion halves
	// the dimension maximizing weight × current extent, so heavily
	// communicating dimensions are cut first. Uniform (all 1) when the
	// analysis has no closed-form spread coefficients.
	Weights []float64
	// Order lists the dimensions by descending weight (ties by index) —
	// the serialized fingerprint of the split policy.
	Order []int
	// Symbolic records that the nest's extents were unknown at planning
	// time: the plan carries the policy but no concrete assignment.
	Symbolic bool
}

// OptimizeOblivious derives the bisection policy for the analyzed nest.
// It needs no concrete extents, so symbolic nests are planned too.
func OptimizeOblivious(a *footprint.Analysis, procs int) (*ObliviousPlan, error) {
	l := len(a.Vars)
	if l == 0 {
		return nil, fmt.Errorf("partition: nest has no doall loops")
	}
	if procs <= 0 {
		return nil, fmt.Errorf("partition: need at least one processor")
	}
	weights := make([]float64, l)
	for i := range weights {
		weights[i] = 1
	}
	if coeffs, ok := ContinuousRatiosData(a); ok {
		// Invert the Lagrange coefficients: a dimension with a large
		// boundary cost wants long extents, i.e. to be split last, so its
		// split weight is low. Guard against all-zero coefficients.
		any := false
		for _, c := range coeffs {
			if c > 0 {
				any = true
			}
		}
		if any {
			for i, c := range coeffs {
				weights[i] = 1 / (1 + c)
			}
		}
	}
	order := make([]int, l)
	for i := range order {
		order[i] = i
	}
	for i := 1; i < l; i++ { // stable insertion sort by descending weight
		for j := i; j > 0 && weights[order[j]] > weights[order[j-1]]; j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	return &ObliviousPlan{Weights: weights, Order: order, Symbolic: a.Nest.Symbolic()}, nil
}

// Assign returns the iteration→processor map the policy induces on a
// concrete space: walk the bisection tree, halving the processor range
// proportionally at each cut. Symbolic plans have no concrete space and
// return an error.
func (op *ObliviousPlan) Assign(space tile.Bounds, procs int) (func(p []int64) int, error) {
	if op.Symbolic {
		return nil, fmt.Errorf("partition: oblivious plan over symbolic bounds has no concrete assignment")
	}
	if len(op.Weights) != space.Dim() {
		return nil, fmt.Errorf("partition: oblivious plan dimension %d does not match space %d", len(op.Weights), space.Dim())
	}
	if procs <= 0 {
		return nil, fmt.Errorf("partition: need at least one processor")
	}
	l := space.Dim()
	return func(p []int64) int {
		lo := append([]int64(nil), space.Lo...)
		hi := append([]int64(nil), space.Hi...)
		base, cnt := 0, procs
		for cnt > 1 {
			d := op.splitDim(lo, hi, l)
			if d < 0 {
				break // single point left; surplus processors idle
			}
			ext := hi[d] - lo[d] + 1
			left := cnt / 2
			cut := lo[d] + ext*int64(left)/int64(cnt)
			if cut <= lo[d] {
				cut = lo[d] + 1
			}
			if p[d] < cut {
				hi[d] = cut - 1
				cnt = left
			} else {
				lo[d] = cut
				base += left
				cnt -= left
			}
		}
		return base
	}, nil
}

// splitDim picks the dimension maximizing weight × extent among those
// still splittable (extent ≥ 2); −1 when none is.
func (op *ObliviousPlan) splitDim(lo, hi []int64, l int) int {
	best, bestScore := -1, 0.0
	for d := 0; d < l; d++ {
		ext := hi[d] - lo[d] + 1
		if ext < 2 {
			continue
		}
		score := op.Weights[d] * float64(ext)
		if best < 0 || score > bestScore {
			best, bestScore = d, score
		}
	}
	return best
}

func (op *ObliviousPlan) String() string {
	suffix := ""
	if op.Symbolic {
		suffix = ", symbolic extents"
	}
	return fmt.Sprintf("recursive bisection (split order %v%s)", op.Order, suffix)
}

// obliviousFamily registers the bisection policy as a strategy.
type obliviousFamily struct{}

func (obliviousFamily) Name() string { return "oblivious" }

func (obliviousFamily) Optimize(_ context.Context, a *footprint.Analysis, procs int) (*FamilyPlan, error) {
	op, err := OptimizeOblivious(a, procs)
	if err != nil {
		return nil, err
	}
	return &FamilyPlan{Oblivious: op}, nil
}

func (obliviousFamily) TopK(a *footprint.Analysis, procs, k int, _ TopKOptions) ([]FamilyPlan, error) {
	return nil, ErrNoTopK
}

func init() {
	Register(obliviousFamily{})
}
