package partition

import (
	"testing"

	"looppart/internal/layout"
	"looppart/internal/paperex"
	"looppart/internal/tile"
)

func TestOptimizeRectLinesUnitMatchesPlain(t *testing.T) {
	// With unit lines the line-aware optimizer must make the same choice
	// as the element-granular one (same objective up to the exact-vs-
	// linearized difference for 2-ref classes, which does not move the
	// argmin on this symmetric stencil).
	src := `
doall (i, 1, 32)
  doall (j, 1, 32)
    B[i,j] = B[i-2,j] + B[i,j-2]
  enddoall
enddoall`
	a := analyze(t, src, nil)
	plain, err := OptimizeRect(a, 16)
	if err != nil {
		t.Fatal(err)
	}
	lines, err := OptimizeRectLines(a, 16, 1)
	if err != nil {
		t.Fatal(err)
	}
	for k := range plain.Ext {
		if plain.Ext[k] != lines.Ext[k] {
			t.Fatalf("unit-line plan %v differs from plain %v", lines.Ext, plain.Ext)
		}
	}
}

func TestOptimizeRectLinesElongatesStorageOrder(t *testing.T) {
	// A symmetric stencil wants square tiles at unit lines; long lines
	// make the storage-order (j) dimension cheaper, so the optimum
	// elongates along j.
	src := `
doall (i, 1, 64)
  doall (j, 1, 64)
    A[i,j] = B[i-2,j] + B[i+2,j] + B[i,j-2] + B[i,j+2]
  enddoall
enddoall`
	a := analyze(t, src, nil)
	unit, err := OptimizeRectLines(a, 16, 1)
	if err != nil {
		t.Fatal(err)
	}
	long, err := OptimizeRectLines(a, 16, 16)
	if err != nil {
		t.Fatal(err)
	}
	if unit.Ext[0] != unit.Ext[1] {
		t.Fatalf("unit-line optimum %v should be square", unit.Ext)
	}
	if long.Ext[1] <= long.Ext[0] {
		t.Fatalf("long-line optimum %v should elongate along storage order", long.Ext)
	}
}

func TestOptimizeRectLinesErrors(t *testing.T) {
	a := analyze(t, paperex.Example2, nil)
	if _, err := OptimizeRectLines(a, 100, 0); err == nil {
		t.Fatal("line size 0 accepted")
	}
	if _, err := OptimizeRectLines(a, 0, 4); err == nil {
		t.Fatal("0 procs accepted")
	}
}

func TestLineFootprintFallbackForNonIdentity(t *testing.T) {
	// Example 2's B class (G non-identity) takes the enumeration path;
	// the score at unit lines equals the exact element footprint.
	a := analyze(t, paperex.Example2, nil)
	space := tile.BoundsOf(a.Nest)
	mm, err := layout.MapNest(a.Nest, 1)
	if err != nil {
		t.Fatal(err)
	}
	got, err := LineFootprint(a, []int64{10, 10}, 1, mm, space)
	if err != nil {
		t.Fatal(err)
	}
	// A class: 100 (identity model); B class: 140 (exact enumeration).
	if got != 240 {
		t.Fatalf("line footprint = %v, want 240", got)
	}
}

func TestOptimizeRectLinesExample2(t *testing.T) {
	// The column-strip optimum survives the line extension at line size
	// 1 and remains at least as good as blocks at larger lines.
	a := analyze(t, paperex.Example2, nil)
	plan, err := OptimizeRectLines(a, 100, 4)
	if err != nil {
		t.Fatal(err)
	}
	space := tile.BoundsOf(a.Nest)
	mm, err := layout.MapNest(a.Nest, 4)
	if err != nil {
		t.Fatal(err)
	}
	blocks, err := LineFootprint(a, []int64{10, 10}, 4, mm, space)
	if err != nil {
		t.Fatal(err)
	}
	if plan.PredictedFootprint > blocks {
		t.Fatalf("optimizer %v (%v) worse than blocks %v", plan.PredictedFootprint, plan.Ext, blocks)
	}
}

func BenchmarkOptimizeRectLines(b *testing.B) {
	a := analyze(b, paperex.Example2, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := OptimizeRectLines(a, 100, 8); err != nil {
			b.Fatal(err)
		}
	}
}
