package partition

import (
	"fmt"

	"looppart/internal/footprint"
	"looppart/internal/intmat"
	"looppart/internal/tile"
)

// Baseline partitioners: the Abraham–Hudak algorithm on its restricted
// domain, and the naive shapes (rows, columns, square-ish blocks) that the
// paper's Figure 3 compares against.

// AbrahamHudak implements the rectangular partitioning of [6] for its
// program class: every reference in the nest must target a single array
// with index functions of the form A(i₁+a₁, …, i_d+a_d) — i.e. G = I for
// every reference (after ignoring other arrays that appear only once; the
// original restriction is one array total, and we enforce it).
//
// Their method sizes tile dimensions in proportion to the per-dimension
// offset spreads — exactly the paper's Example 8 result — realized here as
// a discrete search over processor grids scored by the spread objective
// Σᵢ âᵢ·Π_{j≠i} Eⱼ.
func AbrahamHudak(a *footprint.Analysis, procs int) (RectPlan, error) {
	// Domain check: exactly one array, one class, G = I.
	if len(a.Classes) != 1 {
		return RectPlan{}, fmt.Errorf("abraham-hudak: program references %d classes; the algorithm handles a single array", len(a.Classes))
	}
	c := a.Classes[0]
	if !c.G.Equal(intmat.Identity(len(a.Vars))) {
		return RectPlan{}, fmt.Errorf("abraham-hudak: reference matrix %v is not the identity; index expressions must be loop index plus constant", c.G)
	}
	spread := c.Spread()

	space := tile.BoundsOf(a.Nest)
	sizes := space.Extents()
	var best RectPlan
	bestScore := -1.0
	for _, grid := range factorizations(int64(procs), space.Dim()) {
		ext := make([]int64, space.Dim())
		feasible := true
		for k := range grid {
			if grid[k] > sizes[k] {
				feasible = false
				break
			}
			ext[k] = ceilDiv(sizes[k], grid[k])
		}
		if !feasible {
			continue
		}
		score := 0.0
		for i := range ext {
			term := float64(spread[i])
			for j := range ext {
				if j != i {
					term *= float64(ext[j])
				}
			}
			score += term
		}
		if bestScore < 0 || score < bestScore {
			bestScore = score
			fp, ex := a.RectTotalFootprint(ext)
			tr, _ := a.RectTotalTraffic(ext)
			best = RectPlan{Grid: grid, Ext: ext, PredictedFootprint: fp, PredictedTraffic: tr, Exactness: ex}
		}
	}
	if bestScore < 0 {
		return RectPlan{}, fmt.Errorf("abraham-hudak: no feasible grid")
	}
	best.Grid = cloneGrid(best.Grid)
	return best, nil
}

// NaiveShape names a fixed partition shape.
type NaiveShape int

const (
	// ByRows splits the outermost dimension only.
	ByRows NaiveShape = iota
	// ByColumns splits the innermost dimension only.
	ByColumns
	// ByBlocks uses the most balanced processor grid.
	ByBlocks
)

func (s NaiveShape) String() string {
	switch s {
	case ByRows:
		return "rows"
	case ByColumns:
		return "columns"
	default:
		return "blocks"
	}
}

// Naive returns the given fixed-shape partition for P processors.
func Naive(a *footprint.Analysis, procs int, shape NaiveShape) (RectPlan, error) {
	space := tile.BoundsOf(a.Nest)
	l := space.Dim()
	sizes := space.Extents()
	grid := make([]int64, l)
	for k := range grid {
		grid[k] = 1
	}
	switch shape {
	case ByRows:
		grid[0] = int64(procs)
	case ByColumns:
		grid[l-1] = int64(procs)
	case ByBlocks:
		best := int64(-1)
		var bestGrid []int64
		for _, g := range factorizations(int64(procs), l) {
			feasible := true
			for k := range g {
				if g[k] > sizes[k] {
					feasible = false
					break
				}
			}
			if !feasible {
				continue
			}
			if s := spreadOf(g); best < 0 || s < best {
				best = s
				bestGrid = g
			}
		}
		if bestGrid == nil {
			return RectPlan{}, fmt.Errorf("partition: no feasible block grid")
		}
		grid = bestGrid
	}
	ext := make([]int64, l)
	for k := range grid {
		if grid[k] > sizes[k] {
			return RectPlan{}, fmt.Errorf("partition: %s shape infeasible: %d cuts in dimension of size %d", shape, grid[k], sizes[k])
		}
		ext[k] = ceilDiv(sizes[k], grid[k])
	}
	fp, ex := a.RectTotalFootprint(ext)
	tr, _ := a.RectTotalTraffic(ext)
	return RectPlan{Grid: grid, Ext: ext, PredictedFootprint: fp, PredictedTraffic: tr, Exactness: ex}, nil
}
