package partition

import (
	"fmt"
	"testing"

	"looppart/internal/footprint"
	"looppart/internal/paperex"
)

func analysisFor(t *testing.T, src string, params map[string]int64) *footprint.Analysis {
	t.Helper()
	n := paperex.MustParse(src, params)
	a, err := footprint.Analyze(n)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestRectTopKFirstMatchesArgmin(t *testing.T) {
	for name, src := range map[string]string{
		"example8":  paperex.Example8,
		"example9":  paperex.Example9,
		"example10": paperex.Example10,
	} {
		a := analysisFor(t, src, map[string]int64{"N": 24, "T": 2})
		for _, procs := range []int{4, 8, 16} {
			argmin, err := OptimizeRect(a, procs)
			if err != nil {
				t.Fatalf("%s P=%d: %v", name, procs, err)
			}
			top, err := OptimizeRectTopK(a, procs, 4)
			if err != nil {
				t.Fatalf("%s P=%d: %v", name, procs, err)
			}
			if got, want := fmt.Sprint(top[0]), fmt.Sprint(argmin); got != want {
				t.Errorf("%s P=%d: topk[0] = %s, argmin = %s", name, procs, got, want)
			}
		}
	}
}

func TestRectTopKRankedAndDeduplicated(t *testing.T) {
	a := analysisFor(t, paperex.Example8, map[string]int64{"N": 24})
	top, err := OptimizeRectTopK(a, 8, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(top) < 2 {
		t.Fatalf("expected several ranked plans, got %d", len(top))
	}
	seen := map[string]bool{}
	for i, p := range top {
		key := fmt.Sprint(p.Ext)
		if seen[key] {
			t.Errorf("duplicate extents %s at rank %d", key, i)
		}
		seen[key] = true
		if i > 0 && p.PredictedFootprint < top[i-1].PredictedFootprint-betterEps {
			t.Errorf("rank %d footprint %.1f better than rank %d's %.1f",
				i, p.PredictedFootprint, i-1, top[i-1].PredictedFootprint)
		}
	}
}

func TestRectTopKDeterministicAcrossPoolSizes(t *testing.T) {
	a := analysisFor(t, paperex.Example8, map[string]int64{"N": 24})
	var want string
	for _, workers := range []int{1, 2, 8} {
		prev := SetSearchWorkers(workers)
		top, err := OptimizeRectTopK(a, 16, 5)
		SetSearchWorkers(prev)
		if err != nil {
			t.Fatal(err)
		}
		got := fmt.Sprint(top)
		if want == "" {
			want = got
		} else if got != want {
			t.Errorf("workers=%d: %s != %s", workers, got, want)
		}
	}
}

func TestSkewTopKFirstMatchesArgmin(t *testing.T) {
	for name, src := range map[string]string{
		"example3": paperex.Example3,
		"example8": paperex.Example8,
	} {
		a := analysisFor(t, src, map[string]int64{"N": 24})
		argmin, err := OptimizeSkew(a, 8, 2)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		top, err := OptimizeSkewTopK(a, 8, 2, 3)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got, want := top[0].Tile.String(), argmin.Tile.String(); got != want {
			t.Errorf("%s: topk[0] tile %s, argmin tile %s", name, got, want)
		}
		if top[0].PredictedFootprint != argmin.PredictedFootprint {
			t.Errorf("%s: topk[0] fp %.1f, argmin fp %.1f",
				name, top[0].PredictedFootprint, argmin.PredictedFootprint)
		}
		for i := 1; i < len(top); i++ {
			if top[i].PredictedFootprint < top[i-1].PredictedFootprint {
				t.Errorf("%s: rank %d better than rank %d", name, i, i-1)
			}
		}
	}
}

func TestTopKErrors(t *testing.T) {
	a := analysisFor(t, paperex.Example2, nil)
	if _, err := OptimizeRectTopK(a, 0, 3); err == nil {
		t.Error("procs=0 accepted")
	}
	if _, err := OptimizeSkewTopK(a, 1<<40, 2, 3); err == nil {
		t.Error("more processors than iterations accepted")
	}
}
