package partition

import (
	"fmt"

	"looppart/internal/footprint"
	"looppart/internal/layout"
	"looppart/internal/tile"
)

// Line-aware rectangular partitioning: with cache lines longer than one
// element, a fetched line drags in its storage-order neighborhood, so the
// innermost (storage-order) dimension of the tile is effectively cheaper
// to extend than the model with unit lines predicts. The optimizer scores
// candidate grids with the line-granular footprint — the closed-form
// model for identity-reduced classes, exact line enumeration otherwise —
// and the optimum elongates along storage order as lines grow.

// OptimizeRectLines is OptimizeRect with a line-granular objective.
// The enumeration fallback bounds the candidate tile volume; keep the
// per-processor share modest (≲ 10⁵ iterations) when non-identity classes
// are present.
func OptimizeRectLines(a *footprint.Analysis, procs int, lineSize int64) (RectPlan, error) {
	if lineSize <= 0 {
		return RectPlan{}, fmt.Errorf("partition: line size must be positive")
	}
	space := tile.BoundsOf(a.Nest)
	l := space.Dim()
	if l == 0 {
		return RectPlan{}, fmt.Errorf("partition: nest has no doall loops")
	}
	if procs <= 0 {
		return RectPlan{}, fmt.Errorf("partition: need at least one processor")
	}
	mm, err := layout.MapNest(a.Nest, lineSize)
	if err != nil {
		return RectPlan{}, err
	}
	sizes := space.Extents()
	grids := factorizations(int64(procs), l)

	// Candidates score on the engine's worker pool; the line objective has
	// no cheap admissible bound (line enumeration can undercut the unit-line
	// volume), so every feasible grid is evaluated. The fold below picks the
	// winner in enumeration order, matching the sequential scan exactly.
	type lineCand struct {
		ext   []int64
		fp    float64
		err   error
		state uint8
	}
	cands := make([]lineCand, len(grids))
	forEachCandidate(len(grids), func(i int) {
		grid := grids[i]
		c := &cands[i]
		ext := make([]int64, l)
		for k := range grid {
			if grid[k] > sizes[k] {
				return // infeasible
			}
			ext[k] = ceilDiv(sizes[k], grid[k])
		}
		c.ext = ext
		c.fp, c.err = LineFootprint(a, ext, lineSize, mm, space)
		c.state = candEvaluated
	})

	var best RectPlan
	found := false
	for i := range cands {
		c := &cands[i]
		if c.state != candEvaluated {
			continue
		}
		if c.err != nil {
			// First error in enumeration order, as the sequential loop
			// surfaced it.
			return RectPlan{}, c.err
		}
		cand := RectPlan{Grid: grids[i], Ext: c.ext, PredictedFootprint: c.fp, Exactness: footprint.Approximate}
		if !found || better(cand, best) {
			best = cand
			found = true
		}
	}
	if !found {
		return RectPlan{}, fmt.Errorf("partition: no feasible grid of %d processors for space %v", procs, sizes)
	}
	best.Grid = cloneGrid(best.Grid)
	return best, nil
}

// LineFootprint scores one rectangular tile at line granularity: the
// closed-form model per identity-reduced class, exact line enumeration of
// the tile anchored at the space's lower corner (clamped to the space, so
// ragged last tiles never index outside the mapped arrays) for the rest.
func LineFootprint(a *footprint.Analysis, ext []int64, lineSize int64, mm *layout.MemoryMap, space tile.Bounds) (float64, error) {
	total := 0.0
	var pts [][]int64 // lazily built anchored tile points
	for _, c := range a.Classes {
		if v, ok := c.RectFootprintLinesModel(ext, lineSize); ok {
			total += v
			continue
		}
		if pts == nil {
			hi := make([]int64, len(ext))
			for k := range ext {
				hi[k] = space.Lo[k] + ext[k] - 1
				if hi[k] > space.Hi[k] {
					hi[k] = space.Hi[k]
				}
			}
			(tile.Bounds{Lo: space.Lo, Hi: hi}).ForEach(func(p []int64) bool {
				pts = append(pts, append([]int64(nil), p...))
				return true
			})
		}
		one := &footprint.Analysis{Nest: a.Nest, Vars: a.Vars, Classes: []footprint.Class{c}}
		n, err := one.ExactLineFootprint(pts, mm)
		if err != nil {
			return 0, err
		}
		total += float64(n)
	}
	return total, nil
}
