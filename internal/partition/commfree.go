package partition

import (
	"fmt"

	"looppart/internal/footprint"
	"looppart/internal/intmat"
	"looppart/internal/telemetry"
)

// Communication-free loop partitioning in the style of Ramanujam and
// Sadayappan [7], recovered inside the paper's framework (§1.1, Example 2).
//
// A hyperplane family h·i = c partitions the iteration space into slabs.
// Two iterations i₁ ≠ i₂ touch the same datum of a class (G, {a_r}) iff
// (i₁ − i₂)·G = a_s − a_r for some member pair, i.e. the difference lies
// in the affine set  δ_rs + null_L(G)  where δ_rs is any particular
// solution and null_L(G) the left null space. The slab partition is
// communication-free iff every such difference is parallel to the slabs:
// h·δ = 0 for every particular solution and every null-space basis vector
// of every class with a write (read-only sharing costs nothing after the
// cold miss; the strict variant includes all classes).

// ConflictDirections returns a spanning set of iteration-space difference
// vectors along which data sharing occurs. Every communication-free
// hyperplane normal must be orthogonal to all of them.
//
// includeReadOnly controls whether classes without writes contribute
// (true reproduces [7]'s strict notion, which Example 2's partition a
// satisfies; false optimizes only coherence traffic).
func ConflictDirections(a *footprint.Analysis, includeReadOnly bool) [][]int64 {
	var dirs [][]int64
	for _, c := range a.Classes {
		if !includeReadOnly && !c.HasWrite() {
			continue
		}
		// Left null space of G: same-datum differences within one ref.
		for _, n := range intmat.LeftNullspaceInt(c.G) {
			dirs = append(dirs, n)
		}
		// Particular solutions for each member pair relative to the
		// first member (differences are closed under subtraction, so
		// pairs with the first member span all pairs modulo null space).
		base := c.Refs[0].A
		for _, r := range c.Refs[1:] {
			diff := make([]int64, len(base))
			for k := range diff {
				diff[k] = r.A[k] - base[k]
			}
			if delta, ok := intmat.SolveIntLeft(c.G, diff); ok {
				dirs = append(dirs, delta)
			}
		}
	}
	return nonZero(dirs)
}

func nonZero(vs [][]int64) [][]int64 {
	var out [][]int64
	for _, v := range vs {
		zero := true
		for _, x := range v {
			if x != 0 {
				zero = false
				break
			}
		}
		if !zero {
			out = append(out, v)
		}
	}
	return out
}

// CommFreeNormals returns an integer basis of hyperplane normals h with
// h·δ = 0 for every conflict direction δ. An empty result means no
// communication-free hyperplane partition exists (the [7] algorithm
// fails; the footprint optimizer still produces a minimal-traffic
// partition — the paper's Example 10 case).
func CommFreeNormals(a *footprint.Analysis, includeReadOnly bool) [][]int64 {
	dirs := ConflictDirections(a, includeReadOnly)
	l := len(a.Vars)
	if len(dirs) == 0 {
		// No sharing at all: every direction works; return the axes.
		basis := make([][]int64, l)
		for k := range basis {
			v := make([]int64, l)
			v[k] = 1
			basis[k] = v
		}
		return basis
	}
	m := intmat.FromRows(dirs)
	// h must satisfy m·hᵗ = 0.
	return intmat.RightNullspaceInt(m)
}

// SlabPlan is a communication-free (or minimal-communication) slab
// partition: the iteration space is cut into P slabs c ≤ h·i < c + w.
type SlabPlan struct {
	Normal []int64 // the hyperplane normal h
	// Width is the slab width w in units of h·i, chosen so P slabs cover
	// the iteration space.
	Width int64
	// CommFree reports whether the plan is provably communication-free.
	CommFree bool
	// base is the minimum of h·i over the iteration space, so slab
	// indices start at zero.
	base int64
}

func (s SlabPlan) String() string {
	return fmt.Sprintf("slabs normal=%v width=%d commfree=%v", s.Normal, s.Width, s.CommFree)
}

// SlabOf returns the slab index of iteration p.
func (s SlabPlan) SlabOf(p []int64, procs int) int {
	v := int64(0)
	for k := range p {
		v += s.Normal[k] * p[k]
	}
	idx := floorDivInt(v-s.base, s.Width)
	if idx < 0 {
		idx = 0
	}
	if idx >= int64(procs) {
		idx = int64(procs) - 1
	}
	return int(idx)
}

// SlabPlanFor reconstructs a SlabPlan from its serialized fields (normal,
// width, comm-free flag) and the iteration space it partitions. The base
// — the minimum of h·i over the space, which anchors slab indices at
// zero — is not serialized because it is derivable; recomputing it here
// keeps SlabOf identical to the plan the search produced.
func SlabPlanFor(normal []int64, width int64, commFree bool, lo, hi []int64) (SlabPlan, error) {
	if len(normal) == 0 || len(normal) != len(lo) || len(lo) != len(hi) {
		return SlabPlan{}, fmt.Errorf("partition: slab normal of dimension %d for a %d-D space", len(normal), len(lo))
	}
	if width <= 0 {
		return SlabPlan{}, fmt.Errorf("partition: non-positive slab width %d", width)
	}
	base, _ := hyperplaneRange(normal, lo, hi)
	return SlabPlan{Normal: normal, Width: width, CommFree: commFree, base: base}, nil
}

// FindCommFree looks for a communication-free slab partition of the
// analysis over P processors. It returns ok = false when none exists.
func FindCommFree(a *footprint.Analysis, procs int, includeReadOnly bool) (SlabPlan, bool) {
	reg := telemetry.Active()
	normals := CommFreeNormals(a, includeReadOnly)
	if len(normals) == 0 {
		if reg != nil {
			reg.Emit("partition.commfree.none", "no conflict-orthogonal normal", nil)
		}
		return SlabPlan{}, false
	}
	// Prefer the normal giving the widest slabs (most h·i levels per
	// processor → best load balance granularity).
	space := boundsOfAnalysis(a)
	best := SlabPlan{}
	found := false
	for _, h := range normals {
		lo, hi := hyperplaneRange(h, space.Lo, space.Hi)
		levels := hi - lo + 1
		if reg != nil {
			reg.Emit("partition.commfree.candidate", fmt.Sprintf("normal=%v", h), map[string]any{
				"normal":   fmt.Sprint(h),
				"levels":   levels,
				"feasible": levels >= int64(procs),
			})
		}
		if levels < int64(procs) {
			continue // cannot give every processor work
		}
		w := ceilDiv(levels, int64(procs))
		plan := SlabPlan{Normal: h, Width: w, CommFree: true, base: lo}
		if !found || plan.Width > best.Width {
			best = plan
			found = true
		}
	}
	if found && reg != nil {
		reg.Emit("partition.commfree.chosen", fmt.Sprintf("normal=%v", best.Normal), map[string]any{
			"normal": fmt.Sprint(best.Normal),
			"width":  best.Width,
		})
	}
	return best, found
}

func boundsOfAnalysis(a *footprint.Analysis) boundsLoHi {
	loops := a.Nest.DoallLoops()
	b := boundsLoHi{Lo: make([]int64, len(loops)), Hi: make([]int64, len(loops))}
	for k, l := range loops {
		b.Lo[k] = l.Lo
		b.Hi[k] = l.Hi
	}
	return b
}

type boundsLoHi struct{ Lo, Hi []int64 }

// hyperplaneRange returns the min and max of h·i over the box [lo, hi].
func hyperplaneRange(h, lo, hi []int64) (int64, int64) {
	var mn, mx int64
	for k := range h {
		a := h[k] * lo[k]
		b := h[k] * hi[k]
		if a > b {
			a, b = b, a
		}
		mn += a
		mx += b
	}
	return mn, mx
}

func floorDivInt(a, b int64) int64 {
	q := a / b
	if a%b != 0 && (a < 0) != (b < 0) {
		q--
	}
	return q
}
