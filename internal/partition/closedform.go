package partition

import (
	"context"
	"fmt"
	"math"
	"sync/atomic"

	"looppart/internal/footprint"
	"looppart/internal/obs"
	"looppart/internal/telemetry"
)

// Closed-form analytic fast path for the rectangular search.
//
// The paper solves its own tile-shape problem analytically: minimize the
// linearized cumulative footprint Σᵢ cᵢ·Π_{j≠i} Eⱼ subject to Π Eⱼ =
// |I|/P by Lagrange multipliers, giving Eᵢ ∝ cᵢ (Examples 8–10). When a
// nest is inside the model's domain — every class reduces to a square
// nonsingular G' (§3.4.1) with a closed-form footprint expression, and
// the iteration-space extents strictly dominate the spread coefficients
// (§2.2's "tile sizes are large relative to the offsets") — the optimal
// shape is available in O(1): compute the continuous Lagrange extents,
// round them to the nearest feasible factorization of P by dealing the
// prime factors of P greedily against the continuous targets.
//
// Integer rounding can disagree with the discrete argmin (ceil-induced
// volume variation across grids, the exact Lemma 3 pair term), so the
// analytic candidate is certified: its footprint seeds the admissible
// volume lower bound and a sequential zero-allocation sweep over the
// memoized factorization table confirms (or corrects) the choice with
// exactly the enumeration-order fold and tie-breaks of the engine path.
// The served plan is therefore byte-identical to the enumerated argmin by
// construction — the differential harness in internal/verify pins this —
// while the sweep itself is allocation-free: the factorization table is
// memoized, extents live in two reused buffers, and the evaluator scores
// through caller-provided scratch. Off-domain nests fall back to the
// parallel enumerative search unchanged.

// closedFormDisabled forces the enumerative path when set — the
// differential harness compares the two, and benchmarks isolate the fast
// path's effect. Mirrors pruneDisabled.
var closedFormDisabled atomic.Bool

// SetClosedFormDisabled toggles the closed-form fast path off (true) or
// on (false) process-wide and returns the previous setting. The
// enumerative fallback produces byte-identical plans; the toggle exists
// so tests and harnesses can prove exactly that.
func SetClosedFormDisabled(disabled bool) bool {
	return closedFormDisabled.Swap(disabled)
}

// closedFormRect attempts the analytic fast path. handled reports whether
// the request was served here (eligible nest, fast path enabled); when
// false the caller must run the enumerative search. The span
// "search.closedform" records eligibility, the fallback reason, the
// analytic grid, and whether the O(1) rounding already was the argmin.
func closedFormRect(ctx context.Context, a *footprint.Analysis, ev *footprint.Evaluator,
	sizes []int64, grids [][]int64, procs int, parent *obs.Span, reg *telemetry.Registry,
) (RectPlan, bool, error) {
	_, sp := obs.StartSpan(ctx, "search.closedform")
	defer sp.End()

	coeffs, reason := closedFormEligible(a, ev, sizes)
	if reason != "" {
		sp.SetAttr("eligible", false)
		sp.SetAttr("fallback", reason)
		reg.Counter("partition.closedform.fallbacks").Add(1)
		return RectPlan{}, false, nil
	}
	sp.SetAttr("eligible", true)

	analytic := analyticGrid(coeffs, sizes, int64(procs))
	seed := math.Inf(1)
	if analytic != nil {
		sp.SetAttr("analytic_grid", fmt.Sprint(analytic))
		ext := make([]int64, len(sizes))
		for k := range analytic {
			ext[k] = ceilDiv(sizes[k], analytic[k])
		}
		seed, _ = ev.RectTotalFootprintScratch(ext, nil)
	}

	best, evaluated, pruned, infeasible, found := certifySweep(ev, grids, sizes, seed, reg)
	reg.Counter("partition.rect.candidates").Add(evaluated)
	reg.Counter("partition.rect.pruned").Add(pruned)
	reg.Counter("partition.rect.infeasible").Add(infeasible)
	reg.Counter("partition.closedform.hits").Add(1)
	for _, s := range []*obs.Span{parent, sp} {
		s.SetAttr("candidates", int64(len(grids)))
		s.SetAttr("evaluated", evaluated)
		s.SetAttr("pruned", pruned)
		s.SetAttr("infeasible", infeasible)
	}
	if !found {
		return RectPlan{}, true, fmt.Errorf("partition: no feasible grid of %d processors for space %v", procs, sizes)
	}
	match := analytic != nil && sameVec64(analytic, best.Grid)
	sp.SetAttr("analytic_match", match)
	tr, _ := a.RectTotalTraffic(best.Ext)
	best.PredictedTraffic = tr
	parent.SetAttr("grid", fmt.Sprint(best.Grid))
	parent.SetAttr("footprint", best.PredictedFootprint)
	if reg != nil {
		fields := chosenFields(a, best)
		fields["evaluated"] = evaluated
		fields["pruned"] = pruned
		fields["closed_form"] = true
		fields["analytic_match"] = match
		reg.Emit("partition.rect.chosen", fmt.Sprintf("grid=%v", best.Grid), fields)
	}
	return best, true, nil
}

// closedFormEligible reports why the nest is outside the closed-form
// domain (reason "" = eligible, with the Lagrange aspect-ratio
// coefficients returned for the rounding step): the fast path requires
// every class to score through a closed-form expression (square
// nonsingular reduced G' with a volume, Lemma 3 pair, or Theorem 4
// linearized form), the Lagrange coefficients to exist, and the
// iteration-space extents to strictly dominate every class's spread
// coefficients — the regime the paper's model claims (§2.2).
func closedFormEligible(a *footprint.Analysis, ev *footprint.Evaluator, sizes []int64) (coeffs []float64, reason string) {
	if closedFormDisabled.Load() {
		return nil, "disabled"
	}
	if !ev.RectClosedForm() {
		return nil, "class-without-closed-form"
	}
	coeffs, ok := ContinuousRatios(a)
	if !ok {
		return nil, "no-lagrange-ratios"
	}
	for i := range a.Classes {
		for k := range sizes {
			if u, ok := ev.SpreadCoeff(i, k); ok && float64(sizes[k]) <= u {
				return nil, "extent-not-dominating-spread"
			}
		}
	}
	return coeffs, ""
}

// analyticGrid rounds the continuous Lagrange solution to a feasible
// processor grid in O(l·log P): constrained dimensions get continuous
// target extents Eᵢ ∝ cᵢ sharing the per-tile volume, unconstrained
// (cᵢ = 0) dimensions keep their full extent, and the prime factors of P
// are dealt largest-first, each to the feasible dimension whose current
// extent overshoots its target by the largest ratio. Returns nil when the
// greedy deal cannot place a factor (the certification sweep then starts
// unseeded).
func analyticGrid(coeffs []float64, sizes []int64, procs int64) []int64 {
	l := len(sizes)
	vol := 1.0
	for _, s := range sizes {
		vol *= float64(s)
	}
	vol /= float64(procs)

	target := make([]float64, l)
	prodC, volC, constrained := 1.0, vol, 0
	for k, c := range coeffs {
		if c > 0 {
			prodC *= c
			constrained++
		} else {
			volC /= float64(sizes[k])
		}
	}
	for k, c := range coeffs {
		switch {
		case constrained == 0:
			target[k] = math.Pow(vol, 1/float64(l)) // all invariant: balance
		case c > 0:
			target[k] = c * math.Pow(volC/prodC, 1/float64(constrained))
		default:
			target[k] = float64(sizes[k])
		}
		if target[k] < 1 {
			target[k] = 1
		}
	}

	grid := make([]int64, l)
	ext := make([]int64, l)
	for k := range grid {
		grid[k] = 1
		ext[k] = sizes[k]
	}
	for _, p := range primeFactorsDesc(procs) {
		bestK := -1
		bestRatio := 0.0
		for k := 0; k < l; k++ {
			if grid[k]*p > sizes[k] {
				continue
			}
			if r := float64(ext[k]) / target[k]; bestK < 0 || r > bestRatio {
				bestK, bestRatio = k, r
			}
		}
		if bestK < 0 {
			return nil
		}
		grid[bestK] *= p
		ext[bestK] = ceilDiv(sizes[bestK], grid[bestK])
	}
	return grid
}

// primeFactorsDesc returns the prime factorization of n (with
// multiplicity), largest factor first.
func primeFactorsDesc(n int64) []int64 {
	var out []int64
	for d := int64(2); d*d <= n; d++ {
		for n%d == 0 {
			out = append(out, d)
			n /= d
		}
	}
	if n > 1 {
		out = append(out, n)
	}
	for i, j := 0, len(out)-1; i < j; i, j = i+1, j-1 {
		out[i], out[j] = out[j], out[i]
	}
	return out
}

// certifySweep scans the factorization table sequentially in enumeration
// order with the exact engine arithmetic: the same evaluator, the same
// admissible volume bound (seeded with the analytic candidate's
// footprint), the same betterEps margin, and the same better() fold — so
// the winner is byte-identical to the parallel enumerative search with or
// without pruning. The sweep is allocation-free outside telemetry: the
// candidate and incumbent extents live in two reused buffers and the
// evaluator scores through scratch.
func certifySweep(ev *footprint.Evaluator, grids [][]int64, sizes []int64,
	seed float64, reg *telemetry.Registry,
) (RectPlan, int64, int64, int64, bool) {
	l := len(sizes)
	cur := make([]int64, l)
	scratch := make([]int64, l)
	bestExt := make([]int64, l)
	var best RectPlan
	var evaluated, pruned, infeasible int64
	prune := !pruneDisabled.Load()
	bound := seed
	found := false
	for _, grid := range grids {
		feasible := true
		for k := range grid {
			if grid[k] > sizes[k] {
				feasible = false
				break
			}
			cur[k] = ceilDiv(sizes[k], grid[k])
		}
		if !feasible {
			infeasible++
			continue
		}
		if prune {
			if lb := ev.RectLowerBound(cur); lb > bound+betterEps {
				pruned++
				continue
			}
		}
		fp, ex := ev.RectTotalFootprintScratch(cur, scratch)
		evaluated++
		if fp < bound {
			bound = fp
		}
		cand := RectPlan{Grid: grid, Ext: cur, PredictedFootprint: fp, Exactness: ex}
		if reg != nil {
			reg.Emit("partition.rect.candidate", fmt.Sprintf("grid=%v", grid), map[string]any{
				"grid":      fmt.Sprint(cand.Grid),
				"ext":       fmt.Sprint(cand.Ext),
				"footprint": cand.PredictedFootprint,
				"exactness": cand.Exactness.String(),
			})
		}
		if !found || better(cand, best) {
			copy(bestExt, cur)
			best = cand
			best.Ext = bestExt
			found = true
		}
	}
	if found {
		best.Grid = cloneGrid(best.Grid)
		best.Ext = cloneGrid(best.Ext)
	}
	return best, evaluated, pruned, infeasible, found
}

func sameVec64(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
