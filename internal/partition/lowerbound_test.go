package partition

import (
	"context"
	"testing"

	"looppart/internal/footprint"
	"looppart/internal/loopir"
)

func lbAnalyze(t *testing.T, src string, params map[string]int64) *footprint.Analysis {
	t.Helper()
	n, err := loopir.Parse(src, params)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	a, err := footprint.Analyze(n)
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	return a
}

// The closed forms must agree with direct enumeration everywhere: they
// are what makes the bound exact, so any divergence is a soundness bug.
func TestCrossCountMatchesEnumeration(t *testing.T) {
	for n := int64(1); n <= 24; n++ {
		for e := int64(1); e <= n+2; e++ {
			for d := -n - 1; d <= n+1; d++ {
				var want int64
				for x := int64(0); x < n; x++ {
					y := x + d
					if y >= 0 && y < n && x/e != y/e {
						want++
					}
				}
				if got := crossCount(n, e, d); got != want {
					t.Fatalf("crossCount(%d,%d,%d) = %d, want %d", n, e, d, got, want)
				}
			}
		}
	}
}

func TestInteriorCountMatchesEnumeration(t *testing.T) {
	for n := int64(1); n <= 24; n++ {
		for e := int64(1); e <= n+2; e++ {
			for s := int64(0); s <= e+1; s++ {
				var want int64
				for x := int64(0); x < n; x++ {
					chunk := x / e
					lo := chunk * e
					hi := lo + e - 1
					if hi > n-1 {
						hi = n - 1
					}
					if x-lo >= s && hi-x >= s {
						want++
					}
				}
				if got := interiorCount(n, e, s); got != want {
					t.Fatalf("interiorCount(%d,%d,%d) = %d, want %d", n, e, s, got, want)
				}
			}
		}
	}
}

// A 1-D unit stencil over 4 processors: exactly the three chunk-boundary
// elements must cross, and the bound is exact.
func TestCommLowerBoundUnitStencil(t *testing.T) {
	a := lbAnalyze(t, `
doall (i, 0, 63)
  A[i] = A[i-1]
enddoall
`, nil)
	lb, err := CommLowerBound(a, 4)
	if err != nil {
		t.Fatalf("CommLowerBound: %v", err)
	}
	if lb.Classes != 1 {
		t.Fatalf("qualifying classes = %d, want 1", lb.Classes)
	}
	if lb.Words != 3 {
		t.Fatalf("bound = %d, want 3 (one element per internal chunk boundary)", lb.Words)
	}
	if len(lb.Grid) != 1 || lb.Grid[0] != 4 || lb.Ext[0] != 16 {
		t.Fatalf("grid/ext = %v/%v, want [4]/[16]", lb.Grid, lb.Ext)
	}
}

// A 2-D stencil: the argmin grid must be the one splitting only along
// the communication-free dimension, driving the bound to zero.
func TestCommLowerBoundPrefersCommFreeAxis(t *testing.T) {
	a := lbAnalyze(t, `
doall (i, 0, 31)
  doall (j, 0, 31)
    A[i,j] = A[i,j-1]
  enddoall
enddoall
`, nil)
	lb, err := CommLowerBound(a, 4)
	if err != nil {
		t.Fatalf("CommLowerBound: %v", err)
	}
	// Splitting along i alone communicates nothing: the j-offset stencil
	// never crosses an i boundary.
	if lb.Words != 0 {
		t.Fatalf("bound = %d, want 0 via the (4,1) grid", lb.Words)
	}
	if lb.Grid[0] != 4 || lb.Grid[1] != 1 {
		t.Fatalf("argmin grid = %v, want [4 1]", lb.Grid)
	}
}

// Read-only and write-only classes have no chargeable structure: the
// bound must be zero with no qualifying classes, and the family must
// degrade to the footprint-optimal rectangle.
func TestCommLowerBoundNoStructure(t *testing.T) {
	a := lbAnalyze(t, `
doall (i, 1, 32)
  doall (j, 1, 32)
    A[i,j] = B[i,j] + B[i+1,j+3]
  enddoall
enddoall
`, nil)
	lb, err := CommLowerBound(a, 4)
	if err != nil {
		t.Fatalf("CommLowerBound: %v", err)
	}
	if lb.Classes != 0 || lb.Words != 0 {
		t.Fatalf("bound = %+v, want zero with no qualifying classes", lb)
	}

	fam, ok := Lookup("lowerbound")
	if !ok {
		t.Fatal("lowerbound family not registered")
	}
	got, err := fam.Optimize(context.Background(), a, 4)
	if err != nil {
		t.Fatalf("lowerbound optimize: %v", err)
	}
	want, err := rectFamily{}.Optimize(context.Background(), a, 4)
	if err != nil {
		t.Fatalf("rect optimize: %v", err)
	}
	if !eqVec(got.Tile.Extents(), want.Tile.Extents()) {
		t.Fatalf("fallback plan %v, want rect plan %v", got.Tile, want.Tile)
	}
}

// The lower bound must never exceed the rect plan's exact communication:
// bound(P) minimizes over the same grid family the rect search draws
// from. Checked structurally here (grid is a factorization, extents are
// the induced ones); the full corpus sandwich against measured comm-set
// words lives in internal/verify.
func TestCommLowerBoundGridIsFromRectFamily(t *testing.T) {
	a := lbAnalyze(t, `
doall (i, 0, 23)
  doall (j, 0, 23)
    A[i,j] = A[i-1,j] + A[i,j-1]
  enddoall
enddoall
`, nil)
	for _, procs := range []int{1, 2, 4, 16} {
		lb, err := CommLowerBound(a, procs)
		if err != nil {
			t.Fatalf("procs=%d: %v", procs, err)
		}
		var prod int64 = 1
		for _, g := range lb.Grid {
			prod *= g
		}
		if prod != int64(procs) {
			t.Fatalf("procs=%d: grid %v does not multiply to P", procs, lb.Grid)
		}
		if procs == 1 && lb.Words != 0 {
			t.Fatalf("single processor must bound at zero, got %d", lb.Words)
		}
		if procs > 1 && lb.Words <= 0 {
			t.Fatalf("procs=%d: diagonal stencil must communicate, bound = %d", procs, lb.Words)
		}
	}
}

func TestFamiliesRegistered(t *testing.T) {
	want := []string{"comm-free", "lowerbound", "oblivious", "rect", "skewed"}
	got := Families()
	if len(got) != len(want) {
		t.Fatalf("Families() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Families() = %v, want %v", got, want)
		}
	}
}

// The comm-optimal contestant must join the tournament candidates when
// its extents are not already among the rect top-K.
func TestLowerBoundTopKAppendsCommOptimal(t *testing.T) {
	a := lbAnalyze(t, `
doall (i, 0, 31)
  doall (j, 0, 31)
    A[i,j] = A[i,j-1]
  enddoall
enddoall
`, nil)
	fam, _ := Lookup("lowerbound")
	plans, err := fam.TopK(a, 4, 2, TopKOptions{})
	if err != nil {
		t.Fatalf("TopK: %v", err)
	}
	lb, err := CommLowerBound(a, 4)
	if err != nil {
		t.Fatalf("CommLowerBound: %v", err)
	}
	found := false
	for _, p := range plans {
		if eqVec(p.Tile.Extents(), lb.Ext) {
			found = true
		}
	}
	if !found {
		t.Fatalf("comm-optimal extents %v missing from top-K %d plans", lb.Ext, len(plans))
	}
}
