package partition

import (
	"context"
	"fmt"
	"math"
	"sync/atomic"

	"looppart/internal/footprint"
	"looppart/internal/intmat"
	"looppart/internal/obs"
	"looppart/internal/telemetry"
	"looppart/internal/tile"
)

const minInt64 = math.MinInt64

// Hyperparallelepiped (skewed) partition search. Rectangular tiles are a
// special case; the paper motivates the general case with Example 3, where
// a parallelogram tile internalizes the inter-iteration communication that
// every rectangular tile must pay for.
//
// The search enumerates tiles L = D·S where S is a small-entry unimodular
// skew matrix (so the tiling still covers the integer lattice exactly) and
// D a diagonal matrix of extents drawn from the factorizations of the
// per-processor volume, scoring each candidate with the Theorem 2 model
// (falling back to enumeration for classes without a closed form).
//
// The Theorem 2 terms factor: with L = D·S and G' square, the objective is
//
//	|det LG'| + Σᵢ |det (LG')_{i→â'}|
//	  = vol·|det G'| + Σᵢ (vol/dᵢ)·|det ((S·G')_{i→â'})|
//
// because row i of D·S·G' is dᵢ·(S·G')ᵢ and the determinant is linear in
// each row. The |det ((S·G')_{i→â'})| coefficients depend only on the skew
// and the class, so the engine computes them once per (skew, class) pair
// and each of the |skews|×|factorizations| candidates costs l integer
// multiply-adds per class instead of l+1 determinant eliminations.

// SkewPlan is the result of the parallelepiped search.
type SkewPlan struct {
	Tile               tile.Tile
	PredictedFootprint float64
	Exactness          footprint.Exactness
	// RectBaseline is the best rectangular footprint found during the
	// same search, for reporting the skew advantage.
	RectBaseline float64
}

func (p SkewPlan) String() string {
	return fmt.Sprintf("%v footprint=%.1f (best rect %.1f)", p.Tile, p.PredictedFootprint, p.RectBaseline)
}

// unimodularSkews enumerates l×l unimodular matrices of the form
// I + single off-diagonal entry in [-maxSkew, maxSkew], plus the identity
// (always first). These generate the practically useful shears; composing
// two shears is covered by scoring tiles after extent scaling.
func unimodularSkews(l int, maxSkew int64) []intmat.Mat {
	out := []intmat.Mat{intmat.Identity(l)}
	for r := 0; r < l; r++ {
		for c := 0; c < l; c++ {
			if r == c {
				continue
			}
			for s := -maxSkew; s <= maxSkew; s++ {
				if s == 0 {
					continue
				}
				m := intmat.Identity(l)
				m.Set(r, c, s)
				out = append(out, m)
			}
		}
	}
	return out
}

// skewClassTerms carries the shape-independent Theorem 2 coefficients of
// one (skew, class) pair: volCoeff = |det G'| and rowCoeff[i] =
// |det ((S·G')_{i→â'})|. closed is false for classes without a square
// reduced G, which fall back to exact enumeration per candidate.
type skewClassTerms struct {
	closed   bool
	volCoeff int64
	rowCoeff []int64
}

// skewTermsFor computes the per-class coefficients for one skew matrix.
// A class whose coefficients are not representable in int64 (overflow in
// S·G' or a determinant beyond int64) is left closed=false, so those
// candidates score through the overflow-checked TileTotalFootprint path
// instead of a wrapped coefficient.
func skewTermsFor(ev *footprint.Evaluator, s intmat.Mat) []skewClassTerms {
	a := ev.Analysis()
	terms := make([]skewClassTerms, len(a.Classes))
	for ci := range a.Classes {
		c := &a.Classes[ci]
		gr := c.Reduced.G
		if gr.Rows() != gr.Cols() || !gr.IsNonsingular() {
			continue // enumerated per candidate
		}
		if t, ok := classTermsFor(c, s, gr); ok {
			terms[ci] = t
		}
	}
	return terms
}

func classTermsFor(c *footprint.Class, s, gr intmat.Mat) (skewClassTerms, bool) {
	sg, err := s.MulChecked(gr)
	if err != nil {
		return skewClassTerms{}, false
	}
	grd, err := gr.DetChecked()
	if err != nil || grd == minInt64 {
		return skewClassTerms{}, false
	}
	spread := c.Reduced.Project(c.Spread())
	t := skewClassTerms{closed: true, rowCoeff: make([]int64, sg.Rows())}
	t.volCoeff = abs64(grd)
	for i := 0; i < sg.Rows(); i++ {
		rd, err := sg.WithRow(i, spread).DetChecked()
		if err != nil || rd == minInt64 {
			return skewClassTerms{}, false
		}
		t.rowCoeff[i] = abs64(rd)
	}
	return t, true
}

func abs64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}

// OptimizeSkew searches hyperparallelepiped tiles of volume |space|/P for
// the minimal predicted cumulative footprint. maxSkew bounds the shear
// entries (2 or 3 covers the paper's examples). Candidates are scored on
// the engine's worker pool; the plan is bit-identical to a sequential
// scan regardless of pool size.
func OptimizeSkew(a *footprint.Analysis, procs int, maxSkew int64) (SkewPlan, error) {
	return OptimizeSkewCtx(context.Background(), a, procs, maxSkew)
}

// OptimizeSkewCtx is OptimizeSkew with request-scoped tracing: when ctx
// carries an obs.Trace, the search runs under a "search.skewed" span
// recording the candidate count, the evaluated/pruned split, and the
// winning tile. Without a trace it behaves exactly like OptimizeSkew.
func OptimizeSkewCtx(ctx context.Context, a *footprint.Analysis, procs int, maxSkew int64) (SkewPlan, error) {
	_, sp := obs.StartSpan(ctx, "search.skewed")
	defer sp.End()
	space := tile.BoundsOf(a.Nest)
	l := space.Dim()
	if l == 0 {
		return SkewPlan{}, fmt.Errorf("partition: nest has no doall loops")
	}
	vol := space.Size() / int64(procs)
	if vol == 0 {
		return SkewPlan{}, fmt.Errorf("partition: more processors than iterations")
	}

	reg := telemetry.Active()
	exts := volumeFactorizations(vol, l)
	skews := unimodularSkews(l, maxSkew)
	ev := footprint.NewEvaluator(a)

	// Shape-independent Theorem 2 coefficients, once per (skew, class).
	terms := make([][]skewClassTerms, len(skews))
	allClosed := true
	forEachCandidate(len(skews), func(si int) {
		terms[si] = skewTermsFor(ev, skews[si])
	})
	for _, t := range terms[0] {
		if !t.closed {
			allClosed = false
		}
	}

	ns := len(skews)
	n := len(exts) * ns
	type skewCand struct {
		fp    float64
		ex    footprint.Exactness
		state uint8
	}
	cands := make([]skewCand, n)
	bound := newMinBound()
	prune := !pruneDisabled.Load()
	var evaluated, pruned atomic.Int64
	forEachCandidate(n, func(i int) {
		ext := exts[i/ns]
		si := i % ns
		c := &cands[i]
		// With every extent positive and S unimodular, L = D·S is always
		// nonsingular (|det L| = vol), so every candidate is feasible.
		if allClosed {
			// Pure closed-form: evaluate from the memoized coefficients
			// without materializing L. Same float accumulation order as
			// Analysis.TileTotalFootprint: per class, volume term then row
			// terms i ascending; classes in order; worst exactness.
			total := 0.0
			for _, t := range terms[si] {
				total += float64(intmat.SatMul(vol, t.volCoeff))
				for k, rc := range t.rowCoeff {
					total += float64(intmat.SatMul(vol/ext[k], rc))
				}
			}
			c.fp, c.ex = total, footprint.Approximate
			c.state = candEvaluated
			evaluated.Add(1)
			bound.observe(c.fp)
			return
		}
		// Mixed closed/enumerated classes: the closed-form subtotal is an
		// admissible lower bound on the full objective (enumerated classes
		// contribute ≥ 0), so dominated candidates skip the expensive
		// enumeration. Rect candidates (identity skew, si == 0) are never
		// pruned: RectBaseline is the exact minimum over all of them.
		closedPart := 0.0
		for _, t := range terms[si] {
			if !t.closed {
				continue
			}
			closedPart += float64(intmat.SatMul(vol, t.volCoeff))
			for k, rc := range t.rowCoeff {
				closedPart += float64(intmat.SatMul(vol/ext[k], rc))
			}
		}
		if prune && si != 0 && closedPart > bound.value() {
			c.state = candPruned
			pruned.Add(1)
			return
		}
		t := tile.Tile{L: intmat.Diag(ext...).Mul(skews[si])}
		c.fp, c.ex = ev.TileTotalFootprint(t)
		c.state = candEvaluated
		evaluated.Add(1)
		bound.observe(c.fp)
	})
	reg.Counter("partition.skew.candidates").Add(evaluated.Load())
	reg.Counter("partition.skew.pruned").Add(pruned.Load())
	sp.SetAttr("candidates", int64(n))
	sp.SetAttr("evaluated", evaluated.Load())
	sp.SetAttr("pruned", pruned.Load())
	sp.SetAttr("skews", int64(ns))

	// Deterministic reduction in enumeration order: first strict
	// improvement wins, exactly as the sequential scan chose.
	buildTile := func(i int) tile.Tile {
		return tile.Tile{L: intmat.Diag(exts[i/ns]...).Mul(skews[i%ns])}
	}
	var best SkewPlan
	bestRect := -1.0
	found := false
	for i := range cands {
		c := &cands[i]
		if c.state != candEvaluated {
			continue
		}
		if i%ns == 0 && (bestRect < 0 || c.fp < bestRect) {
			bestRect = c.fp
		}
		if !found || c.fp < best.PredictedFootprint {
			t := buildTile(i)
			best = SkewPlan{Tile: t, PredictedFootprint: c.fp, Exactness: c.ex}
			found = true
			// The decision trace records only the improvements (the chain
			// of running minima), not every candidate; pruned candidates
			// never appear — they cannot improve on the bound.
			if reg != nil {
				reg.Emit("partition.skew.improved", t.String(), map[string]any{
					"footprint": c.fp,
					"exactness": c.ex.String(),
					"detL":      t.Volume(),
				})
			}
		}
	}
	if !found {
		return SkewPlan{}, fmt.Errorf("partition: no feasible tile of volume %d", vol)
	}
	best.RectBaseline = bestRect
	sp.SetAttr("tile", best.Tile.String())
	sp.SetAttr("footprint", best.PredictedFootprint)
	if reg != nil {
		// candidates reports this run's evaluations, not the cumulative
		// process-wide counter (which spans successive optimizer runs).
		reg.Emit("partition.skew.chosen", best.Tile.String(), map[string]any{
			"footprint":     best.PredictedFootprint,
			"rect_baseline": best.RectBaseline,
			"exactness":     best.Exactness.String(),
			"candidates":    evaluated.Load(),
			"pruned":        pruned.Load(),
		})
	}
	return best, nil
}

// volumeFactorizations enumerates ordered factorizations of v into l
// positive extents. Volumes with large prime factors yield few shapes;
// that matches the reality that load balance constrains tile volumes.
func volumeFactorizations(v int64, l int) [][]int64 {
	return factorizations(v, l)
}
