package partition

import (
	"fmt"

	"looppart/internal/footprint"
	"looppart/internal/intmat"
	"looppart/internal/telemetry"
	"looppart/internal/tile"
)

// Hyperparallelepiped (skewed) partition search. Rectangular tiles are a
// special case; the paper motivates the general case with Example 3, where
// a parallelogram tile internalizes the inter-iteration communication that
// every rectangular tile must pay for.
//
// The search enumerates tiles L = D·S where S is a small-entry unimodular
// skew matrix (so the tiling still covers the integer lattice exactly) and
// D a diagonal matrix of extents drawn from the factorizations of the
// per-processor volume, scoring each candidate with the Theorem 2 model
// (falling back to enumeration for classes without a closed form).

// SkewPlan is the result of the parallelepiped search.
type SkewPlan struct {
	Tile               tile.Tile
	PredictedFootprint float64
	Exactness          footprint.Exactness
	// RectBaseline is the best rectangular footprint found during the
	// same search, for reporting the skew advantage.
	RectBaseline float64
}

func (p SkewPlan) String() string {
	return fmt.Sprintf("%v footprint=%.1f (best rect %.1f)", p.Tile, p.PredictedFootprint, p.RectBaseline)
}

// unimodularSkews enumerates l×l unimodular matrices of the form
// I + single off-diagonal entry in [-maxSkew, maxSkew], plus the identity.
// These generate the practically useful shears; composing two shears is
// covered by scoring tiles after extent scaling.
func unimodularSkews(l int, maxSkew int64) []intmat.Mat {
	out := []intmat.Mat{intmat.Identity(l)}
	for r := 0; r < l; r++ {
		for c := 0; c < l; c++ {
			if r == c {
				continue
			}
			for s := -maxSkew; s <= maxSkew; s++ {
				if s == 0 {
					continue
				}
				m := intmat.Identity(l)
				m.Set(r, c, s)
				out = append(out, m)
			}
		}
	}
	return out
}

// OptimizeSkew searches hyperparallelepiped tiles of volume |space|/P for
// the minimal predicted cumulative footprint. maxSkew bounds the shear
// entries (2 or 3 covers the paper's examples).
func OptimizeSkew(a *footprint.Analysis, procs int, maxSkew int64) (SkewPlan, error) {
	space := tile.BoundsOf(a.Nest)
	l := space.Dim()
	if l == 0 {
		return SkewPlan{}, fmt.Errorf("partition: nest has no doall loops")
	}
	vol := space.Size() / int64(procs)
	if vol == 0 {
		return SkewPlan{}, fmt.Errorf("partition: more processors than iterations")
	}

	reg := telemetry.Active()
	var best SkewPlan
	bestRect := -1.0
	found := false
	for _, ext := range volumeFactorizations(vol, l) {
		d := intmat.Diag(ext...)
		for _, s := range unimodularSkews(l, maxSkew) {
			lmat := d.Mul(s)
			if !lmat.IsNonsingular() {
				continue
			}
			t := tile.Tile{L: lmat}
			fp, ex := a.TileTotalFootprint(t)
			reg.Counter("partition.skew.candidates").Add(1)
			if t.IsRect() && (bestRect < 0 || fp < bestRect) {
				bestRect = fp
			}
			if !found || fp < best.PredictedFootprint {
				best = SkewPlan{Tile: t, PredictedFootprint: fp, Exactness: ex}
				found = true
				// The skew search scores |skews|×|factorizations| tiles;
				// the decision trace records only the improvements (the
				// chain of running minima), not every candidate.
				reg.Emit("partition.skew.improved", t.String(), map[string]any{
					"footprint": fp,
					"exactness": ex.String(),
					"detL":      t.Volume(),
				})
			}
		}
	}
	if !found {
		return SkewPlan{}, fmt.Errorf("partition: no feasible tile of volume %d", vol)
	}
	best.RectBaseline = bestRect
	if reg != nil {
		reg.Emit("partition.skew.chosen", best.Tile.String(), map[string]any{
			"footprint":     best.PredictedFootprint,
			"rect_baseline": best.RectBaseline,
			"exactness":     best.Exactness.String(),
			"candidates":    reg.Counter("partition.skew.candidates").Value(),
		})
	}
	return best, nil
}

// volumeFactorizations enumerates ordered factorizations of v into l
// positive extents. Volumes with large prime factors yield few shapes;
// that matches the reality that load balance constrains tile volumes.
func volumeFactorizations(v int64, l int) [][]int64 {
	return factorizations(v, l)
}
