package partition

import (
	"math"
	"runtime"
	"sync"
	"sync/atomic"
)

// The search engine: every optimizer in this package enumerates an indexed
// candidate space (processor grids, extent factorizations × skews) and
// scores each candidate with a footprint model. The engine evaluates
// candidates on a bounded worker pool and leaves the choice of winner to a
// deterministic fold over the scored candidates in enumeration order — the
// exact loop the sequential implementation ran — so the chosen plan is
// bit-identical to the sequential result, tie-breaks included, whatever
// the pool size or scheduling.
//
// Workers share a running upper bound (the best footprint evaluated so
// far, across all workers) used for pruning: a candidate whose admissible
// lower bound — the monotone volume term of the Theorem 2/4 objective —
// already exceeds the bound cannot win and is skipped before model
// evaluation. Pruning never discards a potential winner: a pruned
// candidate's footprint is at least its lower bound, which strictly
// exceeds the footprint of an evaluated candidate, and the model's values
// are separated by far more than the better() tie epsilon, so the fold's
// outcome is unchanged.

// searchWorkers holds the configured pool size; 0 means GOMAXPROCS.
var searchWorkers atomic.Int32

// pruneDisabled turns off lower-bound pruning (tests compare pruned and
// unpruned searches for identical plans).
var pruneDisabled atomic.Bool

// SetSearchWorkers bounds the candidate-evaluation pool at n workers and
// returns the previous setting. n <= 0 restores the default (GOMAXPROCS).
// The plan found does not depend on the pool size; only wall-clock does.
func SetSearchWorkers(n int) int {
	if n < 0 {
		n = 0
	}
	return int(searchWorkers.Swap(int32(n)))
}

// poolSize returns the effective worker count.
func poolSize() int {
	if n := int(searchWorkers.Load()); n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// forEachCandidate runs eval(i) for every i in [0, n) on the worker pool.
// eval must be safe for concurrent invocation on distinct indices; with a
// single worker the calls are inline and in order.
func forEachCandidate(n int, eval func(i int)) {
	workers := poolSize()
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			eval(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				eval(i)
			}
		}()
	}
	wg.Wait()
}

// minBound is an atomically maintained running minimum, shared by the
// workers as the pruning bound. Footprints are nonnegative, so the
// monotone-under-min property of the IEEE bit pattern does not hold in
// general; a CAS loop keeps the update exact.
type minBound struct{ bits atomic.Uint64 }

func newMinBound() *minBound {
	b := &minBound{}
	b.bits.Store(math.Float64bits(math.Inf(1)))
	return b
}

func (b *minBound) value() float64 { return math.Float64frombits(b.bits.Load()) }

// observe lowers the bound to v if v is smaller.
func (b *minBound) observe(v float64) {
	for {
		old := b.bits.Load()
		if v >= math.Float64frombits(old) {
			return
		}
		if b.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// candidate evaluation states recorded by the parallel pass and read by
// the deterministic fold.
const (
	candInfeasible = iota // grid exceeds the space, or never reached
	candPruned            // lower bound exceeded the shared bound
	candEvaluated         // footprint model evaluated
)

// betterEps is the tie tolerance of better(); pruning leaves this margin
// so a candidate that could still tie on footprint is never skipped.
const betterEps = 1e-9
