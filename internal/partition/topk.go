package partition

import (
	"fmt"
	"sync/atomic"

	"looppart/internal/footprint"
	"looppart/internal/intmat"
	"looppart/internal/telemetry"
	"looppart/internal/tile"
)

// Top-K candidate surfacing for the autotune tournament: instead of the
// argmin alone, return the K best-ranked plans of a search so a measured
// replay can arbitrate among them. The ranking is the exact sequential
// ordering the argmin searches use (better() for rectangles, strict
// footprint improvement in enumeration order for skews), applied as a
// repeated deterministic selection over the fully evaluated candidate set
// — so result[0] is always bit-identical to the corresponding argmin
// search, whatever the worker-pool size.
//
// Lower-bound pruning is disabled here on purpose: pruning is admissible
// only against the global minimum, and a candidate dominated by the best
// plan can still be a legitimate runner-up.

// OptimizeRectTopK returns up to k rectangular plans ranked best-first by
// the sequential comparison (footprint, then grid balance, then
// lexicographic grid). Plans are deduplicated by tile extents: two grids
// inducing the same extents yield identical tilings, hence identical
// measurements, so only the better-ranked one is kept. result[0] equals
// the OptimizeRect plan.
func OptimizeRectTopK(a *footprint.Analysis, procs, k int) ([]RectPlan, error) {
	space := tile.BoundsOf(a.Nest)
	l := space.Dim()
	if l == 0 {
		return nil, fmt.Errorf("partition: nest has no doall loops")
	}
	if procs <= 0 {
		return nil, fmt.Errorf("partition: need at least one processor")
	}
	if k < 1 {
		k = 1
	}
	sizes := space.Extents()
	grids := factorizations(int64(procs), l)
	ev := footprint.NewEvaluator(a)

	type rectCand struct {
		ext   []int64
		fp    float64
		ex    footprint.Exactness
		state uint8
	}
	cands := make([]rectCand, len(grids))
	var evaluated atomic.Int64
	forEachCandidate(len(grids), func(i int) {
		c := &cands[i]
		grid := grids[i]
		ext := make([]int64, l)
		for d := range grid {
			if grid[d] > sizes[d] {
				return
			}
			ext[d] = ceilDiv(sizes[d], grid[d])
		}
		c.ext = ext
		c.fp, c.ex = ev.RectTotalFootprint(ext)
		c.state = candEvaluated
		evaluated.Add(1)
	})
	reg := telemetry.Active()
	reg.Counter("partition.rect.topk.candidates").Add(evaluated.Load())

	// Repeated deterministic selection: each round folds the remaining
	// candidates in enumeration order with better(), exactly the argmin
	// reduction, then retires the winner.
	taken := make([]bool, len(cands))
	seen := map[string]bool{}
	var out []RectPlan
	for len(out) < k {
		best, found := -1, false
		var bestPlan RectPlan
		for i := range cands {
			if taken[i] || cands[i].state != candEvaluated {
				continue
			}
			cand := RectPlan{Grid: grids[i], Ext: cands[i].ext,
				PredictedFootprint: cands[i].fp, Exactness: cands[i].ex}
			if !found || better(cand, bestPlan) {
				best, bestPlan, found = i, cand, true
			}
		}
		if !found {
			break
		}
		taken[best] = true
		key := fmt.Sprint(bestPlan.Ext)
		if seen[key] {
			continue // same extents as a better-ranked plan: same tiling
		}
		seen[key] = true
		bestPlan.Grid = cloneGrid(bestPlan.Grid)
		tr, _ := a.RectTotalTraffic(bestPlan.Ext)
		bestPlan.PredictedTraffic = tr
		out = append(out, bestPlan)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("partition: no feasible grid of %d processors for space %v", procs, sizes)
	}
	return out, nil
}

// OptimizeSkewTopK returns up to k hyperparallelepiped plans ranked
// best-first by predicted footprint (ties to the earlier candidate in
// enumeration order, the sequential search's tie-break). Plans are
// deduplicated by the tile matrix L. result[0] equals the OptimizeSkew
// plan.
func OptimizeSkewTopK(a *footprint.Analysis, procs int, maxSkew int64, k int) ([]SkewPlan, error) {
	space := tile.BoundsOf(a.Nest)
	l := space.Dim()
	if l == 0 {
		return nil, fmt.Errorf("partition: nest has no doall loops")
	}
	vol := space.Size() / int64(procs)
	if vol == 0 {
		return nil, fmt.Errorf("partition: more processors than iterations")
	}
	if k < 1 {
		k = 1
	}
	exts := volumeFactorizations(vol, l)
	skews := unimodularSkews(l, maxSkew)
	ev := footprint.NewEvaluator(a)

	terms := make([][]skewClassTerms, len(skews))
	forEachCandidate(len(skews), func(si int) {
		terms[si] = skewTermsFor(ev, skews[si])
	})
	allClosed := true
	for _, t := range terms[0] {
		if !t.closed {
			allClosed = false
		}
	}

	ns := len(skews)
	n := len(exts) * ns
	type skewCand struct {
		fp float64
		ex footprint.Exactness
	}
	cands := make([]skewCand, n)
	forEachCandidate(n, func(i int) {
		ext := exts[i/ns]
		si := i % ns
		c := &cands[i]
		if allClosed {
			total := 0.0
			for _, t := range terms[si] {
				total += float64(vol * t.volCoeff)
				for d, rc := range t.rowCoeff {
					total += float64((vol / ext[d]) * rc)
				}
			}
			c.fp, c.ex = total, footprint.Approximate
			return
		}
		t := tile.Tile{L: intmat.Diag(ext...).Mul(skews[si])}
		c.fp, c.ex = ev.TileTotalFootprint(t)
	})
	reg := telemetry.Active()
	reg.Counter("partition.skew.topk.candidates").Add(int64(n))

	bestRect := -1.0
	for i := 0; i < len(exts); i++ {
		if fp := cands[i*ns].fp; bestRect < 0 || fp < bestRect {
			bestRect = fp
		}
	}

	taken := make([]bool, n)
	seen := map[string]bool{}
	var out []SkewPlan
	for len(out) < k {
		best := -1
		for i := range cands {
			// Strict improvement in enumeration order: identical to the
			// sequential argmin scan's running-minimum chain.
			if !taken[i] {
				if best < 0 || cands[i].fp < cands[best].fp {
					best = i
				}
			}
		}
		if best < 0 {
			break
		}
		taken[best] = true
		t := tile.Tile{L: intmat.Diag(exts[best/ns]...).Mul(skews[best%ns])}
		key := t.L.String()
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, SkewPlan{
			Tile:               t,
			PredictedFootprint: cands[best].fp,
			Exactness:          cands[best].ex,
			RectBaseline:       bestRect,
		})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("partition: no feasible tile of volume %d", vol)
	}
	return out, nil
}
