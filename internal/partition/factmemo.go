package partition

import "sync"

// A long-lived daemon asks the optimizers about the same handful of
// (processor count, rank) and (tile volume, rank) pairs for its whole
// lifetime, yet every search used to re-enumerate the ordered
// factorization table from the divisor list. The memo below caches the
// enumerated tables keyed by (n, k), bounded, behind an RWMutex so
// concurrent searches share one table without a write lock on the hot
// path.
//
// The cached tables are shared across callers and across time: they are
// strictly read-only. Optimizers that embed a winning grid in a returned
// plan copy it first (cloneGrid) — plans are caller-owned and mutable,
// and a caller writing through plan.Grid must never corrupt the memo.

// factMemoMaxEntries bounds the memo. Tables are small (the largest in
// practice, factorizations(360, 3), is 180 grids ≈ 6 KB), so the bound
// is about predictability, not memory pressure.
const factMemoMaxEntries = 64

var factMemo = struct {
	sync.RWMutex
	m map[factKey][][]int64
}{m: make(map[factKey][][]int64, factMemoMaxEntries)}

// factorizations returns the ordered factorizations of n into k positive
// factors, ascending-lexicographic by factor, from the bounded (n, k)
// memo. The returned table is shared: callers must not modify the grids.
func factorizations(n int64, k int) [][]int64 {
	key := factKey{n, k}
	factMemo.RLock()
	cached, ok := factMemo.m[key]
	factMemo.RUnlock()
	if ok {
		return cached
	}
	out := enumerateFactorizations(n, k)
	factMemo.Lock()
	if cached, ok := factMemo.m[key]; ok {
		// Lost an enumeration race: every caller sees the first table.
		out = cached
	} else {
		if len(factMemo.m) >= factMemoMaxEntries {
			// Bounded eviction: drop one arbitrary entry. The working set
			// of a daemon is a few keys, so any victim choice is fine.
			for victim := range factMemo.m {
				delete(factMemo.m, victim)
				break
			}
		}
		factMemo.m[key] = out
	}
	factMemo.Unlock()
	return out
}

// cloneGrid copies a memo-backed grid so a returned plan owns its slice.
func cloneGrid(g []int64) []int64 {
	return append([]int64(nil), g...)
}
