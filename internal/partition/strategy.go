package partition

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"looppart/internal/footprint"
	"looppart/internal/tile"
)

// The strategy registry turns the package's optimizers into pluggable
// families behind one interface: a caller resolves a family by name and
// asks it for the argmin plan (Optimize) or the K best-ranked candidates
// for a measured tournament (TopK). The built-in families — rect, skewed,
// comm-free — register at init; new families (lowerbound, oblivious)
// plug in the same way without the callers growing another switch arm.
//
// Registration is init-time only: the map is read-only once the program
// is serving, so lookups take no lock.

// ErrNoCommFree reports that a family requiring a communication-free
// hyperplane partition found none for the nest.
var ErrNoCommFree = errors.New("partition: no communication-free partition exists")

// ErrNoTopK reports that a family has no candidate ranking to offer a
// tournament (e.g. comm-free: the partition either exists or it does not;
// there is no K-best spectrum to measure).
var ErrNoTopK = errors.New("partition: family has no top-K candidate ranking")

// FamilyPlan is the family-independent result shape: exactly one of
// Tile, Slab, or Oblivious is set, plus the model predictions that
// selected the plan.
type FamilyPlan struct {
	Tile      *tile.Tile
	Slab      *SlabPlan
	Oblivious *ObliviousPlan

	// PredictedFootprint and PredictedTraffic are per-tile model values
	// (tile plans only; slab plans communicate nothing by construction).
	PredictedFootprint float64
	PredictedTraffic   float64
	Exactness          footprint.Exactness
}

// TopKOptions carries the tournament-facing knobs a family may honor.
type TopKOptions struct {
	// MaxSkew bounds the off-diagonal shear entries for families that
	// enumerate unimodular skews; <= 0 means the family default (3).
	MaxSkew int64
}

// Family is one partitioning strategy: a named search over a plan family.
type Family interface {
	// Name returns the registry name ("rect", "skewed", ...).
	Name() string
	// Optimize returns the family's best plan for procs processors.
	Optimize(ctx context.Context, a *footprint.Analysis, procs int) (*FamilyPlan, error)
	// TopK returns up to k plans ranked best-first for tournament
	// arbitration; result[0] must equal the Optimize plan. Families with
	// no candidate spectrum return ErrNoTopK.
	TopK(a *footprint.Analysis, procs, k int, opt TopKOptions) ([]FamilyPlan, error)
}

var families = map[string]Family{}

// Register adds f to the registry under f.Name(). It panics on a
// duplicate name: families register from init functions, and a silent
// overwrite would hide a wiring bug. Not safe for concurrent use —
// registration is init-time only.
func Register(f Family) {
	name := f.Name()
	if _, dup := families[name]; dup {
		panic(fmt.Sprintf("partition: duplicate strategy family %q", name))
	}
	families[name] = f
}

// Lookup resolves a registered family by name.
func Lookup(name string) (Family, bool) {
	f, ok := families[name]
	return f, ok
}

// Families returns the registered family names, sorted.
func Families() []string {
	out := make([]string, 0, len(families))
	for name := range families {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

func init() {
	Register(rectFamily{})
	Register(skewFamily{})
	Register(commFreeFamily{})
}

// rectFamily wraps the rectangular-tile search (Theorem 4 objective).
type rectFamily struct{}

func (rectFamily) Name() string { return "rect" }

func (rectFamily) Optimize(ctx context.Context, a *footprint.Analysis, procs int) (*FamilyPlan, error) {
	rp, err := OptimizeRectCtx(ctx, a, procs)
	if err != nil {
		return nil, err
	}
	t := rp.Tile()
	return &FamilyPlan{
		Tile:               &t,
		PredictedFootprint: rp.PredictedFootprint,
		PredictedTraffic:   rp.PredictedTraffic,
		Exactness:          rp.Exactness,
	}, nil
}

func (rectFamily) TopK(a *footprint.Analysis, procs, k int, _ TopKOptions) ([]FamilyPlan, error) {
	plans, err := OptimizeRectTopK(a, procs, k)
	if err != nil {
		return nil, err
	}
	out := make([]FamilyPlan, len(plans))
	for i, p := range plans {
		t := p.Tile()
		out[i] = FamilyPlan{
			Tile:               &t,
			PredictedFootprint: p.PredictedFootprint,
			PredictedTraffic:   p.PredictedTraffic,
			Exactness:          p.Exactness,
		}
	}
	return out, nil
}

// skewFamily wraps the hyperparallelepiped search (Theorem 2 objective).
type skewFamily struct{}

// defaultMaxSkew bounds the shear enumeration when the caller does not
// say otherwise; it matches the historical top-level default.
const defaultMaxSkew = 3

func (skewFamily) Name() string { return "skewed" }

func (skewFamily) Optimize(ctx context.Context, a *footprint.Analysis, procs int) (*FamilyPlan, error) {
	sp, err := OptimizeSkewCtx(ctx, a, procs, defaultMaxSkew)
	if err != nil {
		return nil, err
	}
	t := sp.Tile
	return &FamilyPlan{
		Tile:               &t,
		PredictedFootprint: sp.PredictedFootprint,
		Exactness:          sp.Exactness,
	}, nil
}

func (skewFamily) TopK(a *footprint.Analysis, procs, k int, opt TopKOptions) ([]FamilyPlan, error) {
	maxSkew := opt.MaxSkew
	if maxSkew <= 0 {
		maxSkew = defaultMaxSkew
	}
	plans, err := OptimizeSkewTopK(a, procs, maxSkew, k)
	if err != nil {
		return nil, err
	}
	out := make([]FamilyPlan, len(plans))
	for i, p := range plans {
		t := p.Tile
		out[i] = FamilyPlan{
			Tile:               &t,
			PredictedFootprint: p.PredictedFootprint,
			Exactness:          p.Exactness,
		}
	}
	return out, nil
}

// commFreeFamily wraps the communication-free hyperplane finder (the
// Ramanujam–Sadayappan class).
type commFreeFamily struct{}

func (commFreeFamily) Name() string { return "comm-free" }

func (commFreeFamily) Optimize(_ context.Context, a *footprint.Analysis, procs int) (*FamilyPlan, error) {
	sp, ok := FindCommFree(a, procs, true)
	if !ok {
		return nil, ErrNoCommFree
	}
	return &FamilyPlan{Slab: &sp}, nil
}

func (commFreeFamily) TopK(a *footprint.Analysis, procs, k int, _ TopKOptions) ([]FamilyPlan, error) {
	return nil, ErrNoTopK
}
