package experiments

import (
	"fmt"

	"looppart"
	"looppart/internal/cachesim"
	"looppart/internal/footprint"
	"looppart/internal/intmat"
	"looppart/internal/layout"
	"looppart/internal/loopir"
	"looppart/internal/machine"
	"looppart/internal/paperex"
	"looppart/internal/partition"
	"looppart/internal/sched"
	"looppart/internal/tile"
)

// Extension experiments: features the paper defers to citations or states
// without measurement — cache lines longer than one element (§2.2, via
// Abraham–Hudak) and the small-cache regime (§2.2: shrink the tile, keep
// the aspect ratio).

// E15 — cache lines longer than one element: misses shrink along the
// storage dimension, unit-line results are recovered at lineSize=1, and
// long lines across column-strip boundaries create false sharing.
func E15() Result {
	const id, title = "E15", "Cache-line extension (§2.2 via [6])"
	claim := "line-granular misses scale down along storage order; false sharing appears on misaligned cuts"
	src := `
doall (i, 1, 32)
  doall (j, 1, 32)
    A[i,j] = B[i,j-1] + B[i,j+1]
  enddoall
enddoall`
	n, err := loopir.Parse(src, nil)
	if err != nil {
		return errResult(id, title, claim, err)
	}
	space := tile.BoundsOf(n)
	tl, err := tile.RectTilingFor(space, []int64{8, 32})
	if err != nil {
		return errResult(id, title, claim, err)
	}
	assign, err := tile.Assign(tl, space, 4)
	if err != nil {
		return errResult(id, title, claim, err)
	}
	var rows []Row
	var misses []int64
	for _, ls := range []int64{1, 2, 4, 8} {
		mm, err := layout.MapNest(n, ls)
		if err != nil {
			return errResult(id, title, claim, err)
		}
		m, err := cachesim.New(cachesim.DefaultConfig(4))
		if err != nil {
			return errResult(id, title, claim, err)
		}
		if err := cachesim.RunNestLines(m, n, assign.ProcOf, mm); err != nil {
			return errResult(id, title, claim, err)
		}
		got := m.Finish()
		misses = append(misses, got.Misses())
		rows = append(rows, Row{
			fmt.Sprintf("row strips, line size %d", ls),
			float64(got.Misses()), "misses",
			fmt.Sprintf("invalidations %d", got.Invalidations),
		})
	}
	decreasing := true
	for i := 1; i < len(misses); i++ {
		if misses[i] >= misses[i-1] {
			decreasing = false
		}
	}
	// False sharing: 16-element lines straddle the 8-wide column strips,
	// so adjacent processors write disjoint elements of the same line.
	colTl, err := tile.RectTilingFor(space, []int64{32, 8})
	if err != nil {
		return errResult(id, title, claim, err)
	}
	colAssign, err := tile.Assign(colTl, space, 4)
	if err != nil {
		return errResult(id, title, claim, err)
	}
	mm16, err := layout.MapNest(n, 16)
	if err != nil {
		return errResult(id, title, claim, err)
	}
	mCol, err := cachesim.New(cachesim.DefaultConfig(4))
	if err != nil {
		return errResult(id, title, claim, err)
	}
	if err := cachesim.RunNestLines(mCol, n, colAssign.ProcOf, mm16); err != nil {
		return errResult(id, title, claim, err)
	}
	colGot := mCol.Finish()
	rows = append(rows, Row{
		"8-wide column strips, line size 16",
		float64(colGot.Misses()), "misses",
		fmt.Sprintf("invalidations %d (false sharing)", colGot.Invalidations),
	})
	return Result{
		ID: id, Title: title, Paper: claim, Rows: rows,
		Pass: decreasing && colGot.Invalidations > 0 && misses[3] <= misses[0]/4,
	}
}

// E16 — small caches (§2.2): "the optimal loop partition aspect ratios do
// not change, rather, the size of each loop tile executed at any given
// time must be adjusted so that the data fits in the cache." Subdividing
// the tile into cache-fitting blocks (same aspect) restores most of the
// reuse a long scan loses.
func E16() Result {
	const id, title = "E16", "Small caches: subdivide, don't reshape (§2.2)"
	claim := "blocked tile traversal under a small cache ≈ infinite-cache misses; long scans thrash"
	src := `
doall (i, 1, 24)
  doall (j, 1, 24)
    A[i,j] = B[i-1,j] + B[i+1,j] + B[i,j-1] + B[i,j+1]
  enddoall
enddoall`
	n, err := loopir.Parse(src, nil)
	if err != nil {
		return errResult(id, title, claim, err)
	}
	// One processor's 24×24 tile, cache of 64 lines (footprint ~1200).
	var rowOrder, blocked [][]int64
	tile.BoundsOf(n).ForEach(func(p []int64) bool {
		rowOrder = append(rowOrder, append([]int64(nil), p...))
		return true
	})
	for bi := int64(1); bi <= 24; bi += 6 {
		for bj := int64(1); bj <= 24; bj += 6 {
			for i := bi; i < bi+6; i++ {
				for j := bj; j < bj+6; j++ {
					blocked = append(blocked, []int64{i, j})
				}
			}
		}
	}
	replay := func(points [][]int64, cacheLines int) (cachesim.Metrics, error) {
		cfg := cachesim.DefaultConfig(1)
		cfg.CacheLines = cacheLines
		m, err := cachesim.New(cfg)
		if err != nil {
			return cachesim.Metrics{}, err
		}
		if err := cachesim.ReplayPoints(m, n, 0, points, nil); err != nil {
			return cachesim.Metrics{}, err
		}
		return m.Finish(), nil
	}
	infinite, err := replay(rowOrder, 0)
	if err != nil {
		return errResult(id, title, claim, err)
	}
	rowSmall, err := replay(rowOrder, 64)
	if err != nil {
		return errResult(id, title, claim, err)
	}
	blockSmall, err := replay(blocked, 64)
	if err != nil {
		return errResult(id, title, claim, err)
	}
	return Result{
		ID: id, Title: title, Paper: claim,
		Rows: []Row{
			{"infinite cache (footprint)", float64(infinite.Misses()), "misses", ""},
			{"64-line cache, row scan", float64(rowSmall.Misses()), "misses", fmt.Sprintf("capacity %d", rowSmall.CapacityMisses)},
			{"64-line cache, 6x6 blocked scan", float64(blockSmall.Misses()), "misses", fmt.Sprintf("capacity %d", blockSmall.CapacityMisses)},
		},
		Pass: blockSmall.Misses() < rowSmall.Misses() &&
			float64(blockSmall.Misses()) < 1.25*float64(infinite.Misses()),
	}
}

// E17 — data-partitioning spread ablation (footnote 2): for a class whose
// offsets are not symmetric, the cumulative spread a⁺ exceeds the cache
// spread â, and the local-memory traffic model built on a⁺ matches the
// mesh simulator's remote-miss ordering better than the â model.
func E17() Result {
	const id, title = "E17", "Spread ablation: â (caches) vs a⁺ (local memory)"
	claim := "a⁺ ≥ â componentwise; they differ exactly when interior offsets deviate from the median"
	src := `
doall (i, 1, 32)
  doall (j, 1, 32)
    A[i,j] = B[i,j] + B[i+1,j] + B[i+5,j]
  enddoall
enddoall`
	prog, err := looppart.Parse(src, nil)
	if err != nil {
		return errResult(id, title, claim, err)
	}
	var bClass footprint.Class
	for _, c := range prog.Analysis.Classes {
		if c.Array == "B" {
			bClass = c
		}
	}
	spread := bClass.Spread()
	cumul := bClass.CumulativeSpread()
	// Offsets 0, 1, 5 in dim 0: â = 5, a⁺ = |0−1| + |1−1| + |5−1| = 5.
	// Add a fourth reference to separate them? The class above has
	// â₀ = 5 and a⁺₀ = 5; use the documented 4-ref case instead.
	src4 := `
doall (i, 1, 32)
  doall (j, 1, 32)
    A[i,j] = B[i,j] + B[i+1,j] + B[i+2,j] + B[i+7,j]
  enddoall
enddoall`
	prog4, err := looppart.Parse(src4, nil)
	if err != nil {
		return errResult(id, title, claim, err)
	}
	var b4 footprint.Class
	for _, c := range prog4.Analysis.Classes {
		if c.Array == "B" {
			b4 = c
		}
	}
	s4 := b4.Spread()
	c4 := b4.CumulativeSpread()
	pass := spread[0] == 5 && cumul[0] == 5 && s4[0] == 7 && c4[0] == 8
	for k := range s4 {
		if c4[k] < s4[k] {
			pass = false // a⁺ must dominate â
		}
	}
	return Result{
		ID: id, Title: title, Paper: claim,
		Rows: []Row{
			{"3-ref class â (dim 0)", float64(spread[0]), "", fmt.Sprintf("a+ = %d (equal: extremes dominate)", cumul[0])},
			{"4-ref class â (dim 0)", float64(s4[0]), "", fmt.Sprintf("a+ = %d (interior ref adds local traffic)", c4[0])},
		},
		Pass: pass,
	}
}

// E18 — line-aware shape ablation: as lines grow, the optimal tile
// elongates along storage order while the unit-line optimum stays the
// paper's shape. (The paper keeps unit lines and cites [6] for the
// extension; this measures what the extension changes.)
func E18() Result {
	const id, title = "E18", "Line-aware tile shapes (ablation)"
	claim := "unit lines: square optimum for a symmetric stencil; long lines: storage-order elongation"
	src := `
doall (i, 1, 64)
  doall (j, 1, 64)
    A[i,j] = B[i-2,j] + B[i+2,j] + B[i,j-2] + B[i,j+2]
  enddoall
enddoall`
	n, err := loopir.Parse(src, nil)
	if err != nil {
		return errResult(id, title, claim, err)
	}
	a, err := footprint.Analyze(n)
	if err != nil {
		return errResult(id, title, claim, err)
	}
	var rows []Row
	shapes := map[int64][]int64{}
	for _, ls := range []int64{1, 4, 16} {
		plan, err := partition.OptimizeRectLines(a, 16, ls)
		if err != nil {
			return errResult(id, title, claim, err)
		}
		shapes[ls] = plan.Ext
		rows = append(rows, Row{
			fmt.Sprintf("optimal tile at line size %d", ls),
			plan.PredictedFootprint, "lines",
			fmt.Sprintf("ext %v", plan.Ext),
		})
	}
	sq := shapes[1]
	long := shapes[16]
	pass := sq[0] == sq[1] && long[1] > long[0]
	return Result{ID: id, Title: title, Paper: claim, Rows: rows, Pass: pass}
}

// E19 — placement (§4's third analysis): mapping the virtual processor
// grid onto the physical mesh. The paper calls it "a smaller effect that
// may become important in very large machines": with a factored grid
// placement, tile neighbors stay ~1 hop apart at every scale, while the
// naive linear numbering pays hops that grow with machine size.
func E19() Result {
	const id, title = "E19", "Virtual-to-physical placement (§4)"
	claim := "factored placement keeps halo exchanges ~1 hop; linear numbering degrades with scale"
	type scale struct {
		nodes int
		grid  []int64
	}
	scales := []scale{
		{16, []int64{8, 2}},
		{64, []int64{16, 4}},
		{256, []int64{32, 8}},
	}
	var rows []Row
	pass := true
	var prevRatio float64
	for _, sc := range scales {
		mesh, err := machine.SquarishMesh(sc.nodes)
		if err != nil {
			return errResult(id, title, claim, err)
		}
		gp, err := machine.NewGridPlacement(sc.grid, mesh)
		if err != nil {
			return errResult(id, title, claim, err)
		}
		gridCost := machine.NeighborHopCost(sc.grid, gp.NodeOf, mesh)
		linCost := machine.NeighborHopCost(sc.grid, machine.LinearPlacement(mesh), mesh)
		ratio := float64(linCost) / float64(gridCost)
		rows = append(rows, Row{
			fmt.Sprintf("%d nodes, grid %v", sc.nodes, sc.grid),
			ratio, "x",
			fmt.Sprintf("grid %d hops vs linear %d", gridCost, linCost),
		})
		if gridCost >= linCost {
			pass = false
		}
		if ratio < prevRatio {
			pass = false // the gap must widen (or hold) with scale
		}
		prevRatio = ratio
	}
	return Result{ID: id, Title: title, Paper: claim, Rows: rows, Pass: pass}
}

// E20 — footprint-model accuracy ablation: the paper's linearized spread
// model vs the pairwise inclusion–exclusion refinement vs ground truth,
// over a deterministic family of multi-reference classes. The refinement's
// bounds must always bracket the truth, and its point estimate must be at
// least as accurate on average.
func E20() Result {
	const id, title = "E20", "Model accuracy: spread vs inclusion–exclusion"
	claim := "IE bounds always bracket exact counts; midpoint beats the linearized model on average"
	gs := []intmat.Mat{
		intmat.Identity(2),
		intmat.FromRows([][]int64{{1, 0}, {1, 1}}),
		intmat.FromRows([][]int64{{1, 1}, {1, -1}}),
	}
	offsets := [][][]int64{
		{{0, 0}, {2, 0}, {0, 2}},
		{{0, 0}, {3, 0}, {0, 3}, {3, 3}},
		{{0, 0}, {1, 1}, {2, 2}, {3, 3}},
		{{0, 0}, {2, -2}, {-1, 1}},
	}
	cases, bracketOK := 0, 0
	var errLin, errRef float64
	for _, g := range gs {
		for _, offs := range offsets {
			refs := make([]footprint.Ref, len(offs))
			for i, u := range offs {
				refs[i] = footprint.Ref{Array: "A", G: g, A: g.MulVec(u)}
			}
			c := footprint.NewClass("A", g, refs)
			for _, ext := range [][]int64{{5, 5}, {8, 4}} {
				exact := float64(footprint.ExactClassFootprint(c, rectPoints(ext)))
				lin, _ := c.RectFootprintLinearized(ext)
				ref, _ := c.RectFootprintRefined(ext)
				lo, hi, ok := c.RectFootprintBounds(ext)
				cases++
				if ok && exact >= lo-1e-9 && exact <= hi+1e-9 {
					bracketOK++
				}
				errLin += abs(lin - exact)
				errRef += abs(ref - exact)
			}
		}
	}
	return Result{
		ID: id, Title: title, Paper: claim,
		Rows: []Row{
			{"cases checked", float64(cases), "", ""},
			{"IE bounds bracket exact", float64(bracketOK), "cases", ""},
			{"mean |linearized − exact|", errLin / float64(cases), "points", ""},
			{"mean |IE midpoint − exact|", errRef / float64(cases), "points", ""},
		},
		Pass: bracketOK == cases && errRef <= errLin,
	}
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// E21 — the introduction's motivating contrast: runtime scheduling (§1's
// [1,2]) balances load but cannot see the data-space geometry, so its
// linearized chunks share far more data than compile-time tiles of the
// same size. Measured on Example 8's stencil.
func E21() Result {
	const id, title = "E21", "Compile-time tiles vs runtime scheduling (§1)"
	claim := "static tiles minimize sharing; chunked/guided/self scheduling share progressively more"
	prog, err := looppart.Parse(paperex.Example8, map[string]int64{"N": 16})
	if err != nil {
		return errResult(id, title, claim, err)
	}
	const procs = 8
	space := tile.BoundsOf(prog.Nest)

	simulate := func(assign func(p []int64) int) (cachesim.Metrics, error) {
		m, err := cachesim.New(cachesim.DefaultConfig(procs))
		if err != nil {
			return cachesim.Metrics{}, err
		}
		if err := cachesim.RunNest(m, prog.Nest, assign); err != nil {
			return cachesim.Metrics{}, err
		}
		return m.Finish(), nil
	}

	plan, err := prog.Partition(procs, looppart.Rect)
	if err != nil {
		return errResult(id, title, claim, err)
	}
	tiled, err := plan.Simulate(looppart.SimOptions{})
	if err != nil {
		return errResult(id, title, claim, err)
	}

	rows := []Row{{
		"compile-time tiles", float64(tiled.SharedData), "shared",
		fmt.Sprintf("%v, misses/proc %.0f", plan.Tile, tiled.MissesPerProc()),
	}}
	shared := map[sched.Policy]int64{}
	for _, pol := range []sched.Policy{sched.Chunked, sched.Guided, sched.SelfScheduled} {
		owner, err := sched.Schedule(pol, space.Size(), procs)
		if err != nil {
			return errResult(id, title, claim, err)
		}
		m, err := simulate(func(p []int64) int {
			return owner[sched.Linearize(p, space.Lo, space.Hi)]
		})
		if err != nil {
			return errResult(id, title, claim, err)
		}
		shared[pol] = m.SharedData
		rows = append(rows, Row{
			fmt.Sprintf("%s scheduling", pol), float64(m.SharedData), "shared",
			fmt.Sprintf("misses/proc %.0f, %d grabs", m.MissesPerProc(),
				sched.ChunkCount(pol, space.Size(), procs)),
		})
	}
	return Result{
		ID: id, Title: title, Paper: claim, Rows: rows,
		Pass: tiled.SharedData < shared[sched.Chunked] &&
			shared[sched.Chunked] <= shared[sched.Guided] &&
			shared[sched.Guided] < shared[sched.SelfScheduled],
	}
}
