// Package experiments reproduces every quantitative artifact of the paper
// — its worked examples, figures, and comparative claims — as structured,
// checkable results. cmd/paperbench prints them as tables; bench_test.go
// regenerates each under `go test -bench`; EXPERIMENTS.md records the
// paper-vs-measured comparison.
package experiments

import (
	"fmt"
	"math"
	"strings"

	"looppart"
	"looppart/internal/footprint"
	"looppart/internal/intmat"
	"looppart/internal/lattice"
	"looppart/internal/paperex"
	"looppart/internal/partition"
	"looppart/internal/telemetry"
	"looppart/internal/tile"
)

// Row is one measured line of an experiment.
type Row struct {
	Name  string
	Value float64
	Unit  string
	Note  string
}

// Result is one experiment's outcome.
type Result struct {
	ID    string
	Title string
	// Paper is the claim as stated in the paper.
	Paper string
	Rows  []Row
	// Pass reports whether the measured values support the claim.
	Pass bool
	Err  error
	// Telemetry holds the per-experiment instrument snapshot when the
	// experiment ran under an active telemetry registry (see RunAll);
	// nil otherwise.
	Telemetry *telemetry.Snapshot
}

func (r Result) String() string {
	var b strings.Builder
	status := "PASS"
	if !r.Pass {
		status = "FAIL"
	}
	if r.Err != nil {
		status = "ERROR: " + r.Err.Error()
	}
	fmt.Fprintf(&b, "%s %s — %s [%s]\n", r.ID, r.Title, r.Paper, status)
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "    %-44s %12.2f %-10s %s\n", row.Name, row.Value, row.Unit, row.Note)
	}
	return b.String()
}

// Catalog lists every experiment in run order, so callers can enumerate,
// filter, or run them individually.
var Catalog = []struct {
	ID  string
	Run func() Result
}{
	{"E1", E1}, {"E2", E2}, {"E3", E3}, {"E4", E4}, {"E5", E5},
	{"E6", E6}, {"E7", E7}, {"E8", E8}, {"E9", E9}, {"E10", E10},
	{"E11", E11}, {"E12", E12}, {"E13", E13}, {"E14", E14},
	{"E15", E15}, {"E16", E16}, {"E17", E17}, {"E18", E18},
	{"E19", E19}, {"E20", E20}, {"E21", E21},
}

// IDs returns the known experiment IDs in run order.
func IDs() []string {
	out := make([]string, len(Catalog))
	for i, e := range Catalog {
		out[i] = e.ID
	}
	return out
}

// All runs every experiment.
func All() []Result {
	results, _ := RunAll(nil, nil)
	return results
}

// RunAll runs the selected experiments (nil or empty ids = all). When reg
// is non-nil it is installed as the active telemetry registry for the
// duration (restoring the previous one afterwards); each experiment then
// runs inside an experiment.<ID> span and carries the per-experiment
// snapshot delta in Result.Telemetry. Unknown ids produce an error listing
// the known IDs.
func RunAll(ids []string, reg *telemetry.Registry) ([]Result, error) {
	selected := Catalog
	if len(ids) > 0 {
		selected = selected[:0:0]
		for _, id := range ids {
			found := false
			for _, e := range Catalog {
				if e.ID == id {
					selected = append(selected, e)
					found = true
					break
				}
			}
			if !found {
				return nil, fmt.Errorf("unknown experiment %q (known: %s)", id, strings.Join(IDs(), ", "))
			}
		}
	}
	if reg != nil {
		prev := telemetry.SetActive(reg)
		defer telemetry.SetActive(prev)
	}
	results := make([]Result, 0, len(selected))
	for _, e := range selected {
		if reg == nil {
			results = append(results, e.Run())
			continue
		}
		before := reg.Snapshot()
		eventsBefore, spansBefore := len(reg.Events()), len(reg.Spans())
		sp := reg.StartSpan("experiment." + e.ID)
		r := e.Run()
		sp.End()
		delta := reg.Snapshot().Delta(before)
		delta.Counters["telemetry.events"] = int64(len(reg.Events()) - eventsBefore)
		delta.Counters["telemetry.spans"] = int64(len(reg.Spans()) - spansBefore)
		r.Telemetry = &delta
		reg.Counter("experiments.run").Add(1)
		if r.Pass {
			reg.Counter("experiments.pass").Add(1)
		}
		results = append(results, r)
	}
	return results, nil
}

// FormatTable renders results for the CLI.
func FormatTable(results []Result) string {
	var b strings.Builder
	for _, r := range results {
		b.WriteString(r.String())
		b.WriteString("\n")
	}
	pass := 0
	for _, r := range results {
		if r.Pass {
			pass++
		}
	}
	fmt.Fprintf(&b, "%d/%d experiments reproduce the paper's claims\n", pass, len(results))
	return b.String()
}

func errResult(id, title, claim string, err error) Result {
	return Result{ID: id, Title: title, Paper: claim, Err: err}
}

// E1 — Example 2 / Figure 3: partition a (100×1 strips) gives 104 misses
// per tile on the B class and zero coherence traffic; partition b (10×10
// blocks) gives 140.
func E1() Result {
	const id, title = "E1", "Example 2 partitions (Figure 3)"
	claim := "partition a: 104 B-misses/tile, zero coherence; partition b: 140"
	prog, err := looppart.Parse(paperex.Example2, nil)
	if err != nil {
		return errResult(id, title, claim, err)
	}
	var bClass footprint.Class
	for _, c := range prog.Analysis.Classes {
		if c.Array == "B" {
			bClass = c
		}
	}
	fpA, _ := bClass.RectFootprint([]int64{100, 1})
	fpB, _ := bClass.RectFootprint([]int64{10, 10})

	cols, err := prog.Partition(100, looppart.Columns)
	if err != nil {
		return errResult(id, title, claim, err)
	}
	mCols, err := cols.Simulate(looppart.SimOptions{})
	if err != nil {
		return errResult(id, title, claim, err)
	}
	blocks, err := prog.Partition(100, looppart.Blocks)
	if err != nil {
		return errResult(id, title, claim, err)
	}
	mBlocks, err := blocks.Simulate(looppart.SimOptions{})
	if err != nil {
		return errResult(id, title, claim, err)
	}
	return Result{
		ID: id, Title: title, Paper: claim,
		Rows: []Row{
			{"model B-footprint, partition a (100x1)", fpA, "misses", "paper: 104"},
			{"model B-footprint, partition b (10x10)", fpB, "misses", "paper: 140"},
			{"simulated misses/proc, partition a", mCols.MissesPerProc(), "misses", "104 B + 100 A"},
			{"simulated misses/proc, partition b", mBlocks.MissesPerProc(), "misses", "140 B + 100 A"},
			{"simulated shared data, partition a", float64(mCols.SharedData), "elements", "paper: zero coherence traffic"},
			{"simulated shared data, partition b", float64(mBlocks.SharedData), "elements", ""},
		},
		Pass: fpA == 104 && fpB == 140 &&
			mCols.MissesPerProc() == 204 && mBlocks.MissesPerProc() == 240 &&
			mCols.SharedData == 0 && mBlocks.SharedData > 0,
	}
}

// E2 — Example 3: parallelogram tiles beat every rectangular partition.
func E2() Result {
	const id, title = "E2", "Example 3 parallelogram tiles"
	claim := "skewed tiles internalize the (1,3)-direction reuse that rectangles pay for"
	prog, err := looppart.Parse(paperex.Example3, map[string]int64{"N": 24})
	if err != nil {
		return errResult(id, title, claim, err)
	}
	skew, err := prog.Partition(8, looppart.Skewed)
	if err != nil {
		return errResult(id, title, claim, err)
	}
	rect, err := prog.Partition(8, looppart.Rect)
	if err != nil {
		return errResult(id, title, claim, err)
	}
	mSkew, err := skew.Simulate(looppart.SimOptions{})
	if err != nil {
		return errResult(id, title, claim, err)
	}
	mRect, err := rect.Simulate(looppart.SimOptions{})
	if err != nil {
		return errResult(id, title, claim, err)
	}
	return Result{
		ID: id, Title: title, Paper: claim,
		Rows: []Row{
			{"best rect misses/proc", mRect.MissesPerProc(), "misses", fmt.Sprint(rect.Tile)},
			{"best skew misses/proc", mSkew.MissesPerProc(), "misses", fmt.Sprint(skew.Tile)},
			{"rect shared data", float64(mRect.SharedData), "elements", ""},
			{"skew shared data", float64(mSkew.SharedData), "elements", ""},
		},
		Pass: mSkew.SharedData < mRect.SharedData && mSkew.MissesPerProc() <= mRect.MissesPerProc(),
	}
}

// E3 — Example 6 / Figures 5–6: footprint of L=[[L1,L1],[L2,0]] w.r.t.
// B[i+j,j] is |det LG| = L1·L2 (+ boundary terms in the closed-tile
// count).
func E3() Result {
	const id, title = "E3", "Example 6 single-reference footprint"
	claim := "footprint size |det LG| = L1*L2 for L=[[L1,L1],[L2,0]], G=[[1,0],[1,1]]"
	prog, err := looppart.Parse(paperex.Example6, nil)
	if err != nil {
		return errResult(id, title, claim, err)
	}
	var bClass footprint.Class
	for _, c := range prog.Analysis.Classes {
		if c.Array == "B" {
			bClass = c
		}
	}
	single := footprint.Class{Array: bClass.Array, G: bClass.G, Refs: bClass.Refs[:1], Reduced: bClass.Reduced}
	pass := true
	var rows []Row
	for _, dims := range [][2]int64{{4, 3}, {6, 5}, {10, 10}, {8, 2}} {
		L1, L2 := dims[0], dims[1]
		t := tile.Parallelepiped(intmat.FromRows([][]int64{{L1, L1}, {L2, 0}}))
		vol, _ := single.SingleFootprintVolume(t)
		exact := footprint.ExactClassFootprint(single, tile.OriginPoints(t))
		rows = append(rows, Row{
			fmt.Sprintf("L1=%d L2=%d: |det LG| vs exact", L1, L2),
			float64(exact), "points",
			fmt.Sprintf("model %d", vol),
		})
		if vol != L1*L2 || exact != vol {
			pass = false
		}
	}
	return Result{ID: id, Title: title, Paper: claim, Rows: rows, Pass: pass}
}

// E4 — Example 6 / Figures 7–8: the cumulative footprint via Theorem 2
// with â = (1,2) tracks exact enumeration.
func E4() Result {
	const id, title = "E4", "Example 6 cumulative footprint (Theorem 2)"
	claim := "|det LG| + |det LG(1→â)| + |det LG(2→â)| approximates the union"
	prog, err := looppart.Parse(paperex.Example6, nil)
	if err != nil {
		return errResult(id, title, claim, err)
	}
	var bClass footprint.Class
	for _, c := range prog.Analysis.Classes {
		if c.Array == "B" {
			bClass = c
		}
	}
	pass := true
	var rows []Row
	for _, l := range []intmat.Mat{
		intmat.FromRows([][]int64{{6, 6}, {5, 0}}),
		intmat.FromRows([][]int64{{10, 0}, {0, 10}}),
		intmat.FromRows([][]int64{{8, 4}, {2, 6}}),
	} {
		t := tile.Parallelepiped(l)
		model, _ := bClass.TileFootprint(t)
		exact := float64(footprint.ExactClassFootprint(bClass, tile.OriginPoints(t)))
		relErr := math.Abs(model-exact) / exact
		rows = append(rows, Row{
			fmt.Sprintf("L=%v", l), exact, "points",
			fmt.Sprintf("model %.0f, rel.err %.1f%%", model, 100*relErr),
		})
		if relErr > 0.20 {
			pass = false
		}
	}
	return Result{ID: id, Title: title, Paper: claim, Rows: rows, Pass: pass}
}

// E5 — Example 8: optimal rectangular aspect ratios Li:Lj:Lk = 2:3:4;
// Abraham–Hudak agrees; the simulator confirms the miss ordering.
func E5() Result {
	const id, title = "E5", "Example 8 optimal aspect ratios"
	claim := "Li:Lj:Lk :: 2:3:4; matches Abraham–Hudak; beats naive shapes"
	prog, err := looppart.Parse(paperex.Example8, map[string]int64{"N": 24})
	if err != nil {
		return errResult(id, title, claim, err)
	}
	coeffs, ok := partition.ContinuousRatios(prog.Analysis)
	if !ok {
		return errResult(id, title, claim, fmt.Errorf("no closed form"))
	}
	opt, err := prog.Partition(8, looppart.Rect)
	if err != nil {
		return errResult(id, title, claim, err)
	}
	blocks, err := prog.Partition(8, looppart.Blocks)
	if err != nil {
		return errResult(id, title, claim, err)
	}
	rows8, err := prog.Partition(8, looppart.Rows)
	if err != nil {
		return errResult(id, title, claim, err)
	}
	mOpt, err := opt.Simulate(looppart.SimOptions{})
	if err != nil {
		return errResult(id, title, claim, err)
	}
	mBlocks, err := blocks.Simulate(looppart.SimOptions{})
	if err != nil {
		return errResult(id, title, claim, err)
	}
	mRows, err := rows8.Simulate(looppart.SimOptions{})
	if err != nil {
		return errResult(id, title, claim, err)
	}
	return Result{
		ID: id, Title: title, Paper: claim,
		Rows: []Row{
			{"Lagrange coefficients (i,j,k)", coeffs[0], "", fmt.Sprintf("full: %v (paper 2:3:4)", coeffs)},
			{"optimized misses/proc", mOpt.MissesPerProc(), "misses", fmt.Sprint(opt.Tile)},
			{"cubic blocks misses/proc", mBlocks.MissesPerProc(), "misses", fmt.Sprint(blocks.Tile)},
			{"row slabs misses/proc", mRows.MissesPerProc(), "misses", fmt.Sprint(rows8.Tile)},
		},
		Pass: coeffs[0] == 2 && coeffs[1] == 3 && coeffs[2] == 4 &&
			mOpt.MissesPerProc() <= mBlocks.MissesPerProc() &&
			mOpt.MissesPerProc() < mRows.MissesPerProc(),
	}
}

// E6 — Figure 9: under an outer doseq, per-epoch coherence traffic follows
// the spread terms and the same tile shape stays optimal.
func E6() Result {
	const id, title = "E6", "Doseq steady-state coherence (Figure 9)"
	claim := "per-epoch coherence traffic = spread terms; 2:3:4 tiles minimize it"
	prog, err := looppart.Parse(paperex.Fig9Stencil, map[string]int64{"N": 12, "T": 3})
	if err != nil {
		return errResult(id, title, claim, err)
	}
	// Compare the optimal-shape tiles against slab tiles of equal volume.
	simShape := func(s looppart.Strategy) (float64, float64, error) {
		plan, err := prog.Partition(8, s)
		if err != nil {
			return 0, 0, err
		}
		m, err := plan.Simulate(looppart.SimOptions{})
		if err != nil {
			return 0, 0, err
		}
		return float64(m.CoherenceMisses), float64(m.Invalidations), nil
	}
	optCoh, optInv, err := simShape(looppart.Rect)
	if err != nil {
		return errResult(id, title, claim, err)
	}
	rowCoh, rowInv, err := simShape(looppart.Rows)
	if err != nil {
		return errResult(id, title, claim, err)
	}
	return Result{
		ID: id, Title: title, Paper: claim,
		Rows: []Row{
			{"optimal tile coherence misses (3 epochs)", optCoh, "misses", fmt.Sprintf("invalidations %.0f", optInv)},
			{"row slab coherence misses (3 epochs)", rowCoh, "misses", fmt.Sprintf("invalidations %.0f", rowInv)},
		},
		Pass: optCoh < rowCoh,
	}
}

// E7 — Example 9: two uniformly intersecting classes add; the optimizer's
// argmin matches exhaustive exact enumeration.
func E7() Result {
	const id, title = "E7", "Example 9 multiple classes"
	claim := "B and C traffic add: coefficients (1+3, 2+2); optimizer matches exact argmin"
	prog, err := looppart.Parse(paperex.Example9, map[string]int64{"N": 24})
	if err != nil {
		return errResult(id, title, claim, err)
	}
	coeffs, ok := partition.ContinuousRatios(prog.Analysis)
	if !ok {
		return errResult(id, title, claim, fmt.Errorf("no closed form"))
	}
	plan, err := prog.Partition(8, looppart.Rect)
	if err != nil {
		return errResult(id, title, claim, err)
	}
	// Exhaustive exact check over the 8-processor grids.
	type cand struct {
		ext   []int64
		exact int64
	}
	var cands []cand
	for _, grid := range [][2]int64{{1, 8}, {2, 4}, {4, 2}, {8, 1}} {
		ext := []int64{24 / grid[0], 24 / grid[1]}
		pts := rectPoints(ext)
		cands = append(cands, cand{ext, prog.Analysis.ExactTotalFootprint(pts)})
	}
	best := cands[0]
	for _, c := range cands[1:] {
		if c.exact < best.exact {
			best = c
		}
	}
	planPts := rectPoints(plan.Tile.Extents())
	planExact := prog.Analysis.ExactTotalFootprint(planPts)
	rows := []Row{
		{"traffic coefficients (i,j)", coeffs[0], "", fmt.Sprintf("full: %v", coeffs)},
		{"optimizer tile exact footprint", float64(planExact), "points", fmt.Sprint(plan.Tile)},
		{"exhaustive best exact footprint", float64(best.exact), "points", fmt.Sprint(best.ext)},
	}
	return Result{
		ID: id, Title: title, Paper: claim, Rows: rows,
		Pass: coeffs[0] == 4 && coeffs[1] == 4 && planExact == best.exact,
	}
}

// E8 — Example 10: non-unimodular class handled via the lattice; optimum
// near 2Li = 3Lj + 1; model matches enumeration exactly for the 2-ref
// classes.
func E8() Result {
	const id, title = "E8", "Example 10 non-unimodular lattice class"
	claim := "â=(4,2)=3g1+1g2; footprint exact on the det=-2 lattice; optimum Li:Lj ≈ 3:2"
	prog, err := looppart.Parse(paperex.Example10, map[string]int64{"N": 36})
	if err != nil {
		return errResult(id, title, claim, err)
	}
	var bClass footprint.Class
	for _, c := range prog.Analysis.Classes {
		if c.Array == "B" && len(c.Refs) == 2 {
			bClass = c
		}
	}
	u, integral, ok := bClass.SpreadCoeffs()
	if !ok || !integral {
		return errResult(id, title, claim, fmt.Errorf("spread decomposition failed"))
	}
	pass := u[0] == 3 && u[1] == 1
	var rows []Row
	rows = append(rows, Row{"spread coefficients |u|", u[0], "", fmt.Sprintf("full: %v (paper 3,1)", u)})
	for _, ext := range [][]int64{{6, 6}, {9, 4}, {12, 3}, {4, 9}} {
		model, _ := bClass.RectFootprint(ext)
		exact := float64(footprint.ExactClassFootprint(bClass, rectPoints(ext)))
		rows = append(rows, Row{
			fmt.Sprintf("B footprint ext=%v", ext), exact, "points",
			fmt.Sprintf("model %.0f", model),
		})
		if model != exact {
			pass = false
		}
	}
	plan, err := prog.Partition(6, looppart.Rect)
	if err != nil {
		return errResult(id, title, claim, err)
	}
	ext := plan.Tile.Extents()
	rows = append(rows, Row{"optimizer extents (36x36, P=6)", float64(ext[0]), "", fmt.Sprintf("ext %v; 3:2 ratio → (18,12)", ext)})
	if !(ext[0] > ext[1]) {
		pass = false
	}
	return Result{ID: id, Title: title, Paper: claim, Rows: rows, Pass: pass}
}

// E9 — Theorem 3 and Lemma 3: bounded-lattice intersection and union size
// against brute force over a deterministic sweep.
func E9() Result {
	const id, title = "E9", "Lattice union size (Lemma 3)"
	claim := "|L1 ∪ L2| = 2Π(λ+1) − Π(λ+1−u) exactly; linearized error = Πu terms"
	g := intmat.FromRows([][]int64{{1, 1}, {1, -1}})
	checks, exactHits := 0, 0
	maxLinErr := 0.0 // over overlapping cases only (u within bounds)
	for l1 := int64(1); l1 <= 6; l1++ {
		for l2 := int64(1); l2 <= 6; l2++ {
			for u1 := int64(0); u1 <= 3; u1++ {
				for u2 := int64(0); u2 <= 3; u2++ {
					bounds := []int64{l1, l2}
					b := lattice.New(g, bounds)
					pts := b.Points()
					tvec := g.MulVec([]int64{u1, u2})
					exact := lattice.UnionSize(pts, lattice.Translate(pts, tvec))
					model := lattice.UnionSizeModel(bounds, []int64{u1, u2})
					lin := lattice.UnionSizeLinearized(bounds, []int64{u1, u2})
					checks++
					if exact == model {
						exactHits++
					}
					// The linearized form is the paper's approximation
					// for spreads small relative to the tile; outside
					// that regime (disjoint translates) it is not used.
					if u1 <= l1 && u2 <= l2 {
						if e := math.Abs(float64(lin - exact)); e > maxLinErr {
							maxLinErr = e
						}
					}
				}
			}
		}
	}
	return Result{
		ID: id, Title: title, Paper: claim,
		Rows: []Row{
			{"lattice union checks", float64(checks), "cases", ""},
			{"exact matches (Lemma 3 closed form)", float64(exactHits), "cases", ""},
			{"max |linearized − exact| (overlapping)", maxLinErr, "points", "= Π|u| cross term, ≤ 9"},
		},
		Pass: checks == exactHits && maxLinErr <= 3*3,
	}
}

// E10 — the beyond-[7] claim: communication-free partitions are found
// exactly when they exist.
func E10() Result {
	const id, title = "E10", "Communication-free partitions ([7] reproduction)"
	claim := "found for Examples 2 and 3 (skewed); impossible for Example 10"
	progs := []struct {
		name   string
		src    string
		params map[string]int64
		want   bool
	}{
		{"example2", paperex.Example2, nil, true},
		{"example3", paperex.Example3, map[string]int64{"N": 20}, true},
		{"example10", paperex.Example10, map[string]int64{"N": 20}, false},
	}
	pass := true
	var rows []Row
	for _, pc := range progs {
		prog, err := looppart.Parse(pc.src, pc.params)
		if err != nil {
			return errResult(id, title, claim, err)
		}
		plan, err := prog.Partition(10, looppart.CommFree)
		found := err == nil
		note := "not found"
		shared := float64(-1)
		if found {
			m, err := plan.Simulate(looppart.SimOptions{})
			if err != nil {
				return errResult(id, title, claim, err)
			}
			shared = float64(m.SharedData)
			note = fmt.Sprintf("normal %v, simulated shared=%d", plan.Slab.Normal, m.SharedData)
			if m.SharedData != 0 {
				pass = false
			}
		}
		if found != pc.want {
			pass = false
		}
		rows = append(rows, Row{pc.name, boolToF(found), "found", note})
		_ = shared
	}
	return Result{ID: id, Title: title, Paper: claim, Rows: rows, Pass: pass}
}

// E11 — Appendix A / Figure 11: matmul with synchronizing accumulates;
// square tiles beat row strips on traffic and weighted cost.
func E11() Result {
	const id, title = "E11", "Matmul with fine-grain synchronization (Fig. 11)"
	claim := "l$ refs behave as writes; blocked tiles beat row strips"
	prog, err := looppart.Parse(paperex.MatmulSync, map[string]int64{"N": 12})
	if err != nil {
		return errResult(id, title, claim, err)
	}
	sim := func(s looppart.Strategy) (looppart.Plan, float64, float64, error) {
		plan, err := prog.Partition(8, s)
		if err != nil {
			return looppart.Plan{}, 0, 0, err
		}
		m, err := plan.Simulate(looppart.SimOptions{})
		if err != nil {
			return looppart.Plan{}, 0, 0, err
		}
		return *plan, float64(m.Misses()), m.Cost, nil
	}
	_, blockMiss, blockCost, err := sim(looppart.Rect)
	if err != nil {
		return errResult(id, title, claim, err)
	}
	_, rowMiss, rowCost, err := sim(looppart.Rows)
	if err != nil {
		return errResult(id, title, claim, err)
	}
	return Result{
		ID: id, Title: title, Paper: claim,
		Rows: []Row{
			{"optimized tile total misses", blockMiss, "misses", fmt.Sprintf("cost %.0f", blockCost)},
			{"row strips total misses", rowMiss, "misses", fmt.Sprintf("cost %.0f", rowCost)},
		},
		Pass: blockMiss < rowMiss && blockCost < rowCost,
	}
}

// E12 — footnote 2: aligned data partitioning on the mesh maximizes the
// local-miss fraction.
func E12() Result {
	const id, title = "E12", "Data partitioning & alignment (footnote 2, §4)"
	claim := "aligned array tiles serve most misses from local memory"
	prog, err := looppart.Parse(paperex.Example8, map[string]int64{"N": 16})
	if err != nil {
		return errResult(id, title, claim, err)
	}
	plan, err := prog.Partition(8, looppart.Rect)
	if err != nil {
		return errResult(id, title, claim, err)
	}
	aligned, err := plan.SimulateMesh(looppart.MeshOptions{Aligned: true})
	if err != nil {
		return errResult(id, title, claim, err)
	}
	hashed, err := plan.SimulateMesh(looppart.MeshOptions{Aligned: false})
	if err != nil {
		return errResult(id, title, claim, err)
	}
	fAligned := frac(aligned.LocalMisses, aligned.RemoteMisses)
	fHashed := frac(hashed.LocalMisses, hashed.RemoteMisses)
	return Result{
		ID: id, Title: title, Paper: claim,
		Rows: []Row{
			{"aligned local-miss fraction", fAligned, "", fmt.Sprintf("cost %.0f, hops %d", aligned.Cost, aligned.HopTraffic)},
			{"hashed local-miss fraction", fHashed, "", fmt.Sprintf("cost %.0f, hops %d", hashed.Cost, hashed.HopTraffic)},
		},
		Pass: fAligned > fHashed && aligned.Cost < hashed.Cost && aligned.HopTraffic < hashed.HopTraffic,
	}
}

// E13 — Example 1 / §3.4.1 / Example 7: zero-column dropping and maximal
// independent columns give correct footprints for rank-deficient G.
func E13() Result {
	const id, title = "E13", "Rank-deficient reference matrices (§3.4.1)"
	claim := "footprints via maximal independent columns match enumeration"
	pass := true
	var rows []Row
	// Example 7's A[i,2i,i+j]: reduced to [[1,1],[0,1]] — unimodular, so
	// the footprint equals the tile size.
	prog7, err := looppart.Parse(paperex.Example7Ref, map[string]int64{"N": 16})
	if err != nil {
		return errResult(id, title, claim, err)
	}
	for _, c := range prog7.Analysis.Classes {
		if c.Array != "A" {
			continue
		}
		for _, ext := range [][]int64{{4, 4}, {8, 2}, {3, 5}} {
			model, _ := c.RectFootprint(ext)
			exact := float64(footprint.ExactClassFootprint(c, rectPoints(ext)))
			rows = append(rows, Row{
				fmt.Sprintf("A[i,2i,i+j] ext=%v", ext), exact, "points",
				fmt.Sprintf("model %.0f", model),
			})
			if model != exact {
				pass = false
			}
		}
	}
	// Example 1's A[i3+2,5,i2-1,4]: two zero columns dropped; footprint =
	// extents of i2 and i3 only.
	prog1, err := looppart.Parse(paperex.Example1Ref, map[string]int64{"N": 8})
	if err != nil {
		return errResult(id, title, claim, err)
	}
	for _, c := range prog1.Analysis.Classes {
		if c.Array != "A" {
			continue
		}
		ext := []int64{8, 4, 2} // i1 extent irrelevant
		model, _ := c.RectFootprint(ext)
		exact := float64(footprint.ExactClassFootprint(c, rectPoints(ext)))
		rows = append(rows, Row{"A[i3+2,5,i2-1,4] ext=[8,4,2]", exact, "points", fmt.Sprintf("model %.0f (want 4*2)", model)})
		if model != exact || exact != 8 {
			pass = false
		}
	}
	return Result{ID: id, Title: title, Paper: claim, Rows: rows, Pass: pass}
}

// E14 — generality ablation vs Abraham–Hudak: identical on their domain,
// and our framework covers programs they reject.
func E14() Result {
	const id, title = "E14", "Generality vs Abraham–Hudak [6]"
	claim := "A–H reproduced on its domain; coupled subscripts handled beyond it"
	bOnly := `
doall (i, 1, 48)
  doall (j, 1, 48)
    doall (k, 1, 48)
      B[i,j,k] = B[i-1,j,k+1] + B[i,j+1,k] + B[i+1,j-2,k-3]
    enddoall
  enddoall
enddoall`
	prog, err := looppart.Parse(bOnly, nil)
	if err != nil {
		return errResult(id, title, claim, err)
	}
	ah, err := partition.AbrahamHudak(prog.Analysis, 8)
	if err != nil {
		return errResult(id, title, claim, err)
	}
	ours, err := partition.OptimizeRect(prog.Analysis, 8)
	if err != nil {
		return errResult(id, title, claim, err)
	}
	same := true
	for k := range ah.Ext {
		if ah.Ext[k] != ours.Ext[k] {
			same = false
		}
	}
	// Beyond the domain: Example 6 has coupled subscripts; A–H must
	// reject it while our optimizer partitions it.
	prog6, err := looppart.Parse(paperex.Example6, nil)
	if err != nil {
		return errResult(id, title, claim, err)
	}
	_, errAH := partition.AbrahamHudak(prog6.Analysis, 10)
	_, errOurs := partition.OptimizeRect(prog6.Analysis, 10)
	return Result{
		ID: id, Title: title, Paper: claim,
		Rows: []Row{
			{"A–H extents on its domain", float64(ah.Ext[0]), "", fmt.Sprintf("A–H %v vs ours %v", ah.Ext, ours.Ext)},
			{"A–H rejects coupled subscripts", boolToF(errAH != nil), "", fmt.Sprint(errAH)},
			{"our framework handles them", boolToF(errOurs == nil), "", ""},
		},
		Pass: same && errAH != nil && errOurs == nil,
	}
}

func rectPoints(ext []int64) [][]int64 {
	hi := make([]int64, len(ext))
	for k := range ext {
		hi[k] = ext[k] - 1
	}
	var pts [][]int64
	(tile.Bounds{Lo: make([]int64, len(ext)), Hi: hi}).ForEach(func(p []int64) bool {
		pts = append(pts, p)
		return true
	})
	return pts
}

func frac(local, remote int64) float64 {
	if local+remote == 0 {
		return 1
	}
	return float64(local) / float64(local+remote)
}

func boolToF(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
