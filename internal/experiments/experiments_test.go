package experiments

import (
	"strings"
	"testing"
)

// Every experiment must reproduce its paper claim. These tests are the
// contract behind EXPERIMENTS.md.

func TestAllExperimentsPass(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are slow under -short")
	}
	for _, r := range All() {
		r := r
		t.Run(r.ID, func(t *testing.T) {
			if r.Err != nil {
				t.Fatalf("%s errored: %v", r.ID, r.Err)
			}
			if !r.Pass {
				t.Fatalf("%s failed:\n%s", r.ID, r)
			}
		})
	}
}

func TestFormatTable(t *testing.T) {
	out := FormatTable([]Result{E1()})
	if !strings.Contains(out, "E1") || !strings.Contains(out, "experiments reproduce") {
		t.Fatalf("table = %s", out)
	}
}

func TestResultStringStates(t *testing.T) {
	r := Result{ID: "EX", Title: "x", Paper: "y", Pass: false}
	if !strings.Contains(r.String(), "FAIL") {
		t.Error("FAIL missing")
	}
	r.Pass = true
	if !strings.Contains(r.String(), "PASS") {
		t.Error("PASS missing")
	}
}
