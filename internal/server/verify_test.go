package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"testing"

	"looppart/internal/telemetry"
	"looppart/internal/verify"
)

// ?verify=1 must return the plan bytes unchanged — byte-identical to what
// the plain endpoint serves — wrapped with a populated verification block.
func TestPlanVerifyParam(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	body := planBody("rect", 4)

	plain, plainRaw := postPlan(t, ts.URL, body)
	if plain.StatusCode != http.StatusOK {
		t.Fatalf("plain plan: status %d: %s", plain.StatusCode, plainRaw)
	}

	resp, err := http.Post(ts.URL+"/v1/plan?verify=1", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("verified plan: status %d", resp.StatusCode)
	}
	var vr struct {
		Result json.RawMessage `json:"result"`
		Verify *verify.Report  `json:"verify"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&vr); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(vr.Result, plainRaw) {
		t.Errorf("verified plan bytes differ from the plain serving:\n%s\nvs\n%s", vr.Result, plainRaw)
	}
	if vr.Verify == nil || len(vr.Verify.Checks) == 0 {
		t.Fatal("verification block missing or empty")
	}
	if !vr.Verify.OK() {
		t.Errorf("healthy plan failed verification: %+v", vr.Verify)
	}
}

// With Config.SelfCheck every plan response carries the verification
// block, no query parameter needed.
func TestSelfCheckConfig(t *testing.T) {
	reg := telemetry.New()
	_, ts := newTestServer(t, Config{SelfCheck: true, Registry: reg})

	resp, data := postPlan(t, ts.URL, planBody("rect", 4))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var vr struct {
		Result json.RawMessage `json:"result"`
		Verify *verify.Report  `json:"verify"`
	}
	if err := json.Unmarshal(data, &vr); err != nil {
		t.Fatalf("self-check response is not a verify envelope: %v\n%s", err, data)
	}
	if vr.Verify == nil || !vr.Verify.OK() {
		t.Fatalf("self-check block missing or failing: %+v", vr.Verify)
	}
	if reg.Snapshot().Counters["server.verifies"] == 0 {
		t.Error("server.verifies counter not incremented")
	}
}
