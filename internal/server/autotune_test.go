package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"looppart"
	"looppart/internal/autotune"
	"looppart/internal/telemetry"
)

func TestServerAutotuneEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Post(ts.URL+"/v1/autotune", "application/json", bytes.NewReader(planBody("rect", 16)))
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d (%s)", resp.StatusCode, data)
	}
	var res autotune.Result
	if err := json.Unmarshal(data, &res); err != nil {
		t.Fatalf("undecodable tournament result: %v\n%s", err, data)
	}
	if len(res.Candidates) < 2 {
		t.Fatalf("tournament ran %d candidates", len(res.Candidates))
	}
	w := res.Candidates[res.Winner]
	if w.MeasuredMisses > res.Candidates[0].MeasuredMisses {
		t.Errorf("winner measured %d misses, analytic candidate %d", w.MeasuredMisses, res.Candidates[0].MeasuredMisses)
	}

	// The winner is persisted: the next plain plan request hits.
	planResp, _ := postPlan(t, ts.URL, planBody("rect", 16))
	if got := planResp.Header.Get("X-Plancache"); got != "hit" {
		t.Errorf("post-tournament plan served %q, want hit", got)
	}
}

func TestServerAutotuneMethodAndErrors(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/v1/autotune")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET status = %d, want 405", resp.StatusCode)
	}
	bad, _ := json.Marshal(looppart.PlanRequest{Source: "not a nest", Procs: 4})
	resp, err = http.Post(ts.URL+"/v1/autotune", "application/json", bytes.NewReader(bad))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("bad nest status = %d, want 422", resp.StatusCode)
	}
}

func TestServerMetricsExposeStore(t *testing.T) {
	store, err := autotune.OpenStore(t.TempDir(), autotune.ModelFingerprint())
	if err != nil {
		t.Fatal(err)
	}
	svc := looppart.NewService(looppart.ServiceOptions{Store: store})
	_, ts := newTestServer(t, Config{Service: svc, Registry: telemetry.New()})

	postPlan(t, ts.URL, planBody("rect", 16))
	m, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mBody, _ := io.ReadAll(m.Body)
	m.Body.Close()
	for _, want := range []string{"autotune_store_entries 1", "autotune_store_quarantined_entries 0"} {
		if !strings.Contains(string(mBody), want) {
			t.Errorf("metrics lack %q:\n%s", want, mBody)
		}
	}
}
